// Quickstart: run the BIVoC pipeline on a synthetic car-rental
// engagement and print the paper's headline analysis — the association
// between how a customer opens a call and whether a booking happens
// (Table III of the paper).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bivoc"
)

func main() {
	cfg := bivoc.DefaultCallAnalysisConfig()
	// Reference-transcript mode keeps the quickstart instant; set
	// UseASR=true to push every call through the speech recognizer.
	cfg.UseASR = false
	cfg.World.CallsPerDay = 300
	cfg.World.Days = 5

	ca, err := bivoc.RunCallAnalysis(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("indexed %d calls from %d agents\n\n", ca.Index.Len(), len(ca.World.Agents))

	fmt.Println("customer intention vs call outcome (paper Table III: 63/37, 32/68):")
	fmt.Print(ca.IntentOutcomeTable().Render())

	fmt.Println("\nagent utterance vs call outcome (paper Table IV: 59/41, 72/28):")
	fmt.Print(ca.AgentUtteranceTable().Render())

	// The paper's §V.B insight: weak-start calls that converted did so
	// because agents offered discounts.
	fmt.Println("\nconcepts over-represented in converted calls:")
	for _, r := range ca.WeakStartConversionDrivers() {
		fmt.Printf("  %-12s ×%.2f\n", r.Concept, r.Ratio)
	}
}
