// Voice dashboard — the operational-monitoring view (§II) side by side
// with BIVoC's business-insight view, plus the two auxiliary signals the
// paper discusses: keyword spotting (how commercial tools index audio)
// and sentiment (the "(dis)satisfaction" of §III).
//
//	go run ./examples/voicedashboard
package main

import (
	"fmt"
	"log"

	"bivoc"
	"bivoc/internal/report"
	"bivoc/internal/rng"
	"bivoc/internal/sentiment"
)

func main() {
	cfg := bivoc.DefaultCallAnalysisConfig()
	cfg.UseASR = false
	cfg.World.CallsPerDay = 200
	cfg.World.Days = 5
	ca, err := bivoc.RunCallAnalysis(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("═══ operational view (what KPI tools show) ═══")
	fmt.Print(report.RenderCenterDashboard(report.CenterKPIs(ca.World.Calls)))
	fmt.Println()
	fmt.Print(report.RenderAgentDashboard(report.AgentKPIs(ca.World, ca.World.Calls), 3))

	fmt.Println("\n═══ keyword spotting (how monitoring tools index audio) ═══")
	rec, err := bivoc.NewCarRentalRecognizer(bivoc.CallCenterChannel, bivoc.DefaultDecoderConfig())
	if err != nil {
		log.Fatal(err)
	}
	sp := bivoc.NewSpotter(rec.Lex)
	sp.Threshold = 0.55
	r := rng.New(99)
	spotted := 0
	const sample = 40
	for i, call := range ca.World.Calls {
		if i >= sample {
			break
		}
		phones, err := rec.Lex.Phones(call.Transcript)
		if err != nil {
			continue
		}
		obs := rec.Channel.Corrupt(r.SplitString(call.ID), phones)
		if len(sp.Find("discount", obs)) > 0 {
			spotted++
		}
	}
	fmt.Printf("'discount' spotted in %d of %d noisy calls — a keyword index,\n", spotted, sample)
	fmt.Println("but no link to outcomes. BIVoC's association view supplies that:")
	fmt.Print(ca.AgentUtteranceTable().Render())

	fmt.Println("\n═══ sentiment (§III: dissatisfaction marks churn propensity) ═══")
	texts := []string{
		"the agent was very helpful thank you so much",
		"i was not happy with the rate but the agent offered a discount",
		"this is the worst service i am leaving goodbye",
	}
	for _, t := range texts {
		res := sentiment.Analyze(t)
		fmt.Printf("  %-58q %-8s (%+.2f)\n", t, res.Label, res.Score)
	}
}
