// Agent productivity improvement — the §V use case end to end:
//
//  1. mine the associations between call behaviour and outcomes,
//
//  2. derive the actionable insights (offer discounts to weak starts,
//     use value-selling phrases),
//
//  3. train 20 of 90 agents on the insights,
//
//  4. measure the booking-ratio uplift against the control group with a
//     Welch t-test (the paper reports +3%, p ≈ 0.0675).
//
//     go run ./examples/agentproductivity
package main

import (
	"fmt"
	"log"

	"bivoc"
)

func main() {
	// Step 1-2: the mining phase (see examples/quickstart for the full
	// report). Here we go straight to the intervention.
	fmt.Println("insights from mining (§V.B):")
	fmt.Println("  * weak-start customers rarely book unless offered a discount")
	fmt.Println("  * value-selling phrases lift conversion in every segment")
	fmt.Println()

	// Steps 3-4: the training experiment.
	cfg := bivoc.DefaultTrainingConfig()
	cfg.TrainedCount = 20
	res, err := bivoc.RunTrainingExperiment(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("trained group:  %.1f%% → %.1f%% conversion\n",
		100*res.TrainedBefore, 100*res.TrainedAfter)
	fmt.Printf("control group:  %.1f%% → %.1f%% conversion\n",
		100*res.ControlBefore, 100*res.ControlAfter)
	fmt.Printf("uplift: %+.1f points (before-gap %+.1f)\n",
		100*res.Uplift, 100*res.BeforeGap)
	fmt.Printf("Welch t-test: t=%.2f df=%.1f one-sided p=%.4f\n",
		res.TTest.T, res.TTest.DF, res.TTest.POneSided)

	// Per-agent view of the biggest movers.
	fmt.Println("\nbiggest improvements among trained agents:")
	type delta struct {
		id   string
		gain float64
	}
	byID := map[string]float64{}
	for _, a := range res.Before {
		byID[a.AgentID] = a.ConversionRate()
	}
	var best delta
	count := 0
	for _, a := range res.After {
		if !a.Trained {
			continue
		}
		g := a.ConversionRate() - byID[a.AgentID]
		if g > best.gain || best.id == "" {
			best = delta{a.AgentID, g}
		}
		if g > 0 {
			count++
		}
	}
	fmt.Printf("  %d of %d trained agents improved; best: %s (%+.1f points)\n",
		count, len(res.After), best.id, 100*best.gain)
}
