// ASR + data linking — the §IV.A/§IV.B machinery on a single call:
//
//  1. a customer call is synthesized and passed through the noisy
//     acoustic channel,
//
//  2. the Viterbi decoder produces a (noisy) transcript,
//
//  3. identity annotators extract the partially recognized name and
//     phone-number fragments,
//
//  4. the linking engine matches them jointly against the customer
//     table (Fagin-merge over fuzzy per-token candidate lists),
//
//  5. the top-N candidate identities constrain a second decoding pass
//     that usually repairs the name (§IV.A.1's +10% mechanism).
//
//     go run ./examples/asrlinking
package main

import (
	"fmt"
	"log"
	"strings"

	"bivoc"
	"bivoc/internal/rng"
)

func main() {
	worldCfg := bivoc.DefaultCarRentalConfig()
	worldCfg.CallsPerDay = 12
	worldCfg.Days = 0
	world, err := bivoc.NewCarRentalWorld(worldCfg)
	if err != nil {
		log.Fatal(err)
	}
	rec, err := bivoc.NewCarRentalRecognizer(bivoc.CallCenterChannel, bivoc.DefaultDecoderConfig())
	if err != nil {
		log.Fatal(err)
	}
	engine, err := bivoc.NewCustomerLinker(world.DB)
	if err != nil {
		log.Fatal(err)
	}
	annotators := bivoc.NewCarRentalAnnotators()

	world.Config.CallsPerDay = 12
	calls := world.GenerateCalls(0, 1)
	noiseRnd := rng.New(worldCfg.Seed).SplitString("example")

	shown := 0
	for _, call := range calls {
		cust := world.Customers[call.CustIdx]
		phones, err := rec.Lex.Phones(call.Transcript)
		if err != nil {
			log.Fatal(err)
		}
		obs := rec.Channel.Corrupt(noiseRnd.SplitString(call.ID), phones)
		first := rec.TranscribePhones(obs)

		tokens := annotators.ExtractIdentity(strings.Join(first, " "))
		if len(tokens) == 0 {
			continue // identity fully garbled; nothing to link
		}
		matches := engine.LinkTable(tokens, "customers", 3)
		if len(matches) == 0 {
			continue
		}
		shown++
		fmt.Printf("call %s — true customer: %s (%s)\n", call.ID, cust.Name(), cust.Phone)
		fmt.Printf("  reference : %s\n", clip(strings.Join(call.Transcript, " "), 90))
		fmt.Printf("  transcript: %s\n", clip(strings.Join(first, " "), 90))
		var toks []string
		for _, t := range tokens {
			toks = append(toks, fmt.Sprintf("%s(%s)", t.Text, t.Type))
		}
		fmt.Printf("  identity tokens: %s\n", strings.Join(toks, " "))
		for rank, m := range matches {
			tab := world.DB.MustTable("customers")
			fmt.Printf("  link #%d: %-22s score %.2f\n",
				rank+1, tab.GetString(m.Row, "name"), m.Score)
		}
		// Second pass: rescore name slots against the candidates.
		names := engine.TopNames(tokens, "customers", "name", 5)
		allowed := map[string]bool{}
		for _, n := range names {
			allowed[n] = true
		}
		second := rec.RescoreNames(first, obs, allowed)
		if strings.Join(second, " ") != strings.Join(first, " ") {
			fmt.Printf("  second pass repaired: %s\n", clip(strings.Join(second, " "), 90))
		}
		fmt.Println()
		if shown >= 4 {
			break
		}
	}
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
