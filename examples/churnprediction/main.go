// Churn prediction — the §VI use case: predict which telecom
// subscribers will churn from the language of their emails, by cleaning
// the corpus, linking each message to its subscriber record (which
// carries the churn label), training a classifier on earlier months and
// detecting churners in the final month. The paper reports 53.6% of
// churners detected and ~18% of emails unlinkable.
//
//	go run ./examples/churnprediction
package main

import (
	"fmt"
	"log"
	"strings"

	"bivoc"
)

func main() {
	cfg := bivoc.DefaultChurnExperimentConfig()
	res, err := bivoc.RunChurnExperiment(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("corpus: %d emails\n", res.Messages)
	fmt.Printf("cleaning: discarded %d spam, %d non-english, %d empty\n",
		res.Spam, res.NonEnglish, res.Empty)
	fmt.Printf("linking: %d linked (%.1f%% to the true author), %.1f%% unlinkable (paper: 18%%)\n",
		res.Linked, 100*res.LinkCorrect, 100*res.UnlinkableRate)
	fmt.Printf("detection: %d of %d churners flagged = %.1f%% recall (paper: 53.6%%)\n",
		res.ChurnersFlagged, res.ChurnersInEval, 100*res.ChurnerRecall)
	fmt.Printf("message-level: TP=%d FP=%d TN=%d FN=%d\n", res.TP, res.FP, res.TN, res.FN)

	fmt.Println("\nlearned churn-driver language (the 'why' behind the churn):")
	fmt.Printf("  %s\n", strings.Join(res.TopFeatures, ", "))

	// The detector can also be asked which pre-defined churn drivers a
	// single message expresses — the dashboard view of §VI.
	detector := bivoc.NewChurnDriverDetector()
	fmt.Println("\ndriver detection on sample complaints:")
	for _, msg := range []string{
		"the network is always down in my area and my bill is too high",
		"i am switching to a cheaper provider nobody resolves my complaint",
		"please tell me the balance on my account",
	} {
		fmt.Printf("  %-64q → %s\n", msg, strings.Join(detector.Detect(msg), "; "))
	}
}
