package bivoc_test

import (
	"net/url"
	"testing"

	"bivoc/internal/mining"
)

// Analytics hot-path benchmarks: each operation runs once through the
// naive hash-set oracle (mining.UseNaiveSets) and once through the
// default sorted-postings path, over the same sealed call-analysis
// index. `make bench-mine` records the pairs in BENCH_mine.json.

// mineBenchIndex builds the sealed (and therefore Prepared) reference
// index plus the dimension set the benchmarks query.
func mineBenchIndex(b *testing.B) (*mining.Index, []mining.Dim) {
	b.Helper()
	ca := referenceAnalysis(b)
	dims := []mining.Dim{
		mining.ConceptDim("customer intention", "weak start"),
		mining.FieldDim("outcome", "reservation"),
		mining.CategoryDim("discount"),
		mining.AndDim(
			mining.ConceptDim("customer intention", "weak start"),
			mining.FieldDim("outcome", "reservation")),
	}
	return ca.Index, dims
}

// runMineModes benchmarks fn under the oracle and the fast path.
func runMineModes(b *testing.B, fn func(b *testing.B)) {
	for _, mode := range []struct {
		name  string
		naive bool
	}{{"naive", true}, {"fast", false}} {
		b.Run(mode.name, func(b *testing.B) {
			old := mining.UseNaiveSets
			mining.UseNaiveSets = mode.naive
			defer func() { mining.UseNaiveSets = old }()
			b.ReportAllocs()
			b.ResetTimer()
			fn(b)
		})
	}
}

func BenchmarkMineCount(b *testing.B) {
	ix, dims := mineBenchIndex(b)
	runMineModes(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, d := range dims {
				ix.Count(d)
			}
		}
	})
}

func BenchmarkMineCountBoth(b *testing.B) {
	ix, dims := mineBenchIndex(b)
	runMineModes(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix.CountBoth(dims[0], dims[1])
			ix.CountBoth(dims[2], dims[3])
		}
	})
}

func BenchmarkMineDrillDown(b *testing.B) {
	ix, dims := mineBenchIndex(b)
	runMineModes(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix.DrillDown(dims[0], dims[1])
		}
	})
}

func BenchmarkMineRelativeFrequency(b *testing.B) {
	ix, dims := mineBenchIndex(b)
	runMineModes(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix.RelativeFrequency("discount", dims[3])
		}
	})
}

// BenchmarkMineAssociate crosses every city with every vehicle type —
// the widest table the core layer builds — at 1/4/8 workers. The naive
// oracle ignores the worker knob (it exists to prove the fast path is
// byte-identical at any fan-out, and to overlap cells when a cell's
// postings work is large); on a single-core host the fast path's win
// comes from hoisted column marginals, the conjunction memo, and
// merge-based cell counts, not parallelism.
func BenchmarkMineAssociate(b *testing.B) {
	ca := referenceAnalysis(b)
	var rows, cols []mining.Dim
	for _, c := range ca.Index.ConceptsInCategory("place") {
		rows = append(rows, mining.ConceptDim("place", c))
	}
	for _, v := range ca.Index.ConceptsInCategory("vehicle type") {
		cols = append(cols, mining.ConceptDim("vehicle type", v))
	}
	b.Run("naive", func(b *testing.B) {
		mining.UseNaiveSets = true
		defer func() { mining.UseNaiveSets = false }()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ca.Index.Associate(rows, cols, 0.95)
		}
	})
	for _, workers := range []int{1, 4, 8} {
		b.Run("fast-workers="+itoa(workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ca.Index.AssociateN(rows, cols, 0.95, workers)
			}
		})
	}
}

// BenchmarkServerAssociate measures /v1/associate end to end with the
// response cache disabled, so every request rebuilds its table through
// the hot path. 1/4/8 clients share the iteration budget.
func BenchmarkServerAssociate(b *testing.B) {
	q := url.Values{
		"row": {"strong start[customer intention]", "weak start[customer intention]"},
		"col": {"outcome=reservation", "outcome=unbooked"},
	}.Encode()
	s := benchQueryServer(b, -1)
	u := "http://" + s.Addr() + "/v1/associate?" + q
	for _, clients := range []int{1, 4, 8} {
		b.Run("clients="+itoa(clients), func(b *testing.B) {
			serverQueryClients(b, u, clients)
		})
	}
}
