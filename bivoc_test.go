package bivoc_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"bivoc"
	"bivoc/internal/rng"
)

// These tests exercise the public facade end to end — what a downstream
// user of the library sees.

func TestFacadeCallAnalysis(t *testing.T) {
	cfg := bivoc.DefaultCallAnalysisConfig()
	cfg.UseASR = false
	cfg.World.NumAgents = 20
	cfg.World.NumCustomers = 80
	cfg.World.CallsPerDay = 100
	cfg.World.Days = 3
	ca, err := bivoc.RunCallAnalysis(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t3 := ca.IntentOutcomeTable()
	if t3.Cells[0][0].RowShare <= t3.Cells[1][0].RowShare {
		t.Error("facade Table III shape broken")
	}
	if out := t3.Render(); !strings.Contains(out, "strong start") {
		t.Error("render missing rows")
	}
}

func TestFacadeChurn(t *testing.T) {
	cfg := bivoc.DefaultChurnExperimentConfig()
	cfg.World.NumCustomers = 300
	cfg.World.Emails = 800
	cfg.World.SMS = 0
	res, err := bivoc.RunChurnExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Linked == 0 || res.Spam == 0 {
		t.Errorf("facade churn pipeline incomplete: %+v", res)
	}
}

func TestFacadeRecognizerAndSpotter(t *testing.T) {
	rec, err := bivoc.NewCarRentalRecognizer(bivoc.ChannelConfig{}, bivoc.DefaultDecoderConfig())
	if err != nil {
		t.Fatal(err)
	}
	ref := strings.Fields("i want to book a car today")
	hyp, err := rec.Transcribe(rng.New(1), ref)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(hyp, " ") != strings.Join(ref, " ") {
		t.Errorf("clean decode through facade: %v", hyp)
	}
	sp := bivoc.NewSpotter(rec.Lex)
	sp.Threshold = 0.7
	phones, err := rec.Lex.Phones(ref)
	if err != nil {
		t.Fatal(err)
	}
	if hits := sp.Find("book", phones); len(hits) != 1 {
		t.Errorf("spotter through facade: %v", hits)
	}
}

func TestFacadeLinker(t *testing.T) {
	cfg := bivoc.DefaultCarRentalConfig()
	cfg.NumCustomers = 50
	world, err := bivoc.NewCarRentalWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := bivoc.NewCustomerLinker(world.DB)
	if err != nil {
		t.Fatal(err)
	}
	annotators := bivoc.NewCarRentalAnnotators()
	c := world.Customers[0]
	tokens := annotators.Extract("name is " + c.Given + " " + c.Surname + " phone " + c.Phone)
	m := engine.LinkTable(tokens, "customers", 1)
	if len(m) != 1 {
		t.Fatal("facade linking failed")
	}
	if world.DB.MustTable("customers").GetString(m[0].Row, "id") != c.ID {
		t.Errorf("linked to wrong customer")
	}
}

func TestFacadeDriverDetector(t *testing.T) {
	d := bivoc.NewChurnDriverDetector()
	drivers := d.Detect("the network is always down and my bill is too high")
	if len(drivers) < 2 {
		t.Errorf("facade driver detection: %v", drivers)
	}
}

func TestFacadeDims(t *testing.T) {
	if bivoc.ConceptDim("c", "v").Label() != "v[c]" {
		t.Error("ConceptDim label")
	}
	if bivoc.FieldDim("f", "v").Label() != "f=v" {
		t.Error("FieldDim label")
	}
	if bivoc.CategoryDim("c").Label() != "c" {
		t.Error("CategoryDim label")
	}
}

func TestFacadeVersion(t *testing.T) {
	if bivoc.Version == "" {
		t.Error("version empty")
	}
}

// TestFacadeFaultTolerance drives the fault-tolerance surface through
// the public API: transient faults retried away, permanent faults
// dead-lettered and accounted, the same way a production ingest would
// configure it.
func TestFacadeFaultTolerance(t *testing.T) {
	cfg := bivoc.DefaultCallAnalysisConfig()
	cfg.UseASR = false
	cfg.World.NumAgents = 20
	cfg.World.NumCustomers = 80
	cfg.World.CallsPerDay = 80
	cfg.World.Days = 2
	cfg.Workers = 4
	cfg.FaultTolerance = bivoc.FaultTolerance{
		Retry:          bivoc.RetryPolicy{MaxAttempts: 3, BaseDelay: 50 * time.Microsecond, Jitter: 0.5},
		MaxDeadLetters: 50,
	}
	cfg.FaultInject = func(stage, key string, attempt int) error {
		switch {
		case stage == "annotate" && strings.HasSuffix(key, "3") && attempt == 1:
			return bivoc.Transient(errors.New("flaky annotator"))
		case stage == "annotate" && strings.HasSuffix(key, "7"):
			return errors.New("corrupt call")
		}
		return nil
	}
	ca, err := bivoc.RunCallAnalysis(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ca.DeadLetters) == 0 {
		t.Fatal("permanent faults produced no dead letters through the facade")
	}
	var dl bivoc.DeadLetter = ca.DeadLetters[0]
	if dl.Stage != "annotate" || !strings.HasSuffix(dl.Key, "7") {
		t.Fatalf("unexpected dead letter %+v", dl)
	}
	if got, want := ca.Index.Len(), len(ca.World.Calls)-len(ca.DeadLetters); got != want {
		t.Fatalf("facade index holds %d docs, want %d", got, want)
	}
	if !errors.Is(bivoc.Transient(errors.New("x")), bivoc.ErrTransient) {
		t.Fatal("facade Transient does not mark errors with ErrTransient")
	}
}
