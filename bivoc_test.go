package bivoc_test

import (
	"strings"
	"testing"

	"bivoc"
	"bivoc/internal/rng"
)

// These tests exercise the public facade end to end — what a downstream
// user of the library sees.

func TestFacadeCallAnalysis(t *testing.T) {
	cfg := bivoc.DefaultCallAnalysisConfig()
	cfg.UseASR = false
	cfg.World.NumAgents = 20
	cfg.World.NumCustomers = 80
	cfg.World.CallsPerDay = 100
	cfg.World.Days = 3
	ca, err := bivoc.RunCallAnalysis(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t3 := ca.IntentOutcomeTable()
	if t3.Cells[0][0].RowShare <= t3.Cells[1][0].RowShare {
		t.Error("facade Table III shape broken")
	}
	if out := t3.Render(); !strings.Contains(out, "strong start") {
		t.Error("render missing rows")
	}
}

func TestFacadeChurn(t *testing.T) {
	cfg := bivoc.DefaultChurnExperimentConfig()
	cfg.World.NumCustomers = 300
	cfg.World.Emails = 800
	cfg.World.SMS = 0
	res, err := bivoc.RunChurnExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Linked == 0 || res.Spam == 0 {
		t.Errorf("facade churn pipeline incomplete: %+v", res)
	}
}

func TestFacadeRecognizerAndSpotter(t *testing.T) {
	rec, err := bivoc.NewCarRentalRecognizer(bivoc.ChannelConfig{}, bivoc.DefaultDecoderConfig())
	if err != nil {
		t.Fatal(err)
	}
	ref := strings.Fields("i want to book a car today")
	hyp, err := rec.Transcribe(rng.New(1), ref)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(hyp, " ") != strings.Join(ref, " ") {
		t.Errorf("clean decode through facade: %v", hyp)
	}
	sp := bivoc.NewSpotter(rec.Lex)
	sp.Threshold = 0.7
	phones, err := rec.Lex.Phones(ref)
	if err != nil {
		t.Fatal(err)
	}
	if hits := sp.Find("book", phones); len(hits) != 1 {
		t.Errorf("spotter through facade: %v", hits)
	}
}

func TestFacadeLinker(t *testing.T) {
	cfg := bivoc.DefaultCarRentalConfig()
	cfg.NumCustomers = 50
	world, err := bivoc.NewCarRentalWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := bivoc.NewCustomerLinker(world.DB)
	if err != nil {
		t.Fatal(err)
	}
	annotators := bivoc.NewCarRentalAnnotators()
	c := world.Customers[0]
	tokens := annotators.Extract("name is " + c.Given + " " + c.Surname + " phone " + c.Phone)
	m := engine.LinkTable(tokens, "customers", 1)
	if len(m) != 1 {
		t.Fatal("facade linking failed")
	}
	if world.DB.MustTable("customers").GetString(m[0].Row, "id") != c.ID {
		t.Errorf("linked to wrong customer")
	}
}

func TestFacadeDriverDetector(t *testing.T) {
	d := bivoc.NewChurnDriverDetector()
	drivers := d.Detect("the network is always down and my bill is too high")
	if len(drivers) < 2 {
		t.Errorf("facade driver detection: %v", drivers)
	}
}

func TestFacadeDims(t *testing.T) {
	if bivoc.ConceptDim("c", "v").Label() != "v[c]" {
		t.Error("ConceptDim label")
	}
	if bivoc.FieldDim("f", "v").Label() != "f=v" {
		t.Error("FieldDim label")
	}
	if bivoc.CategoryDim("c").Label() != "c" {
		t.Error("CategoryDim label")
	}
}

func TestFacadeVersion(t *testing.T) {
	if bivoc.Version == "" {
		t.Error("version empty")
	}
}
