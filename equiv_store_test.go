package bivoc_test

import (
	"context"
	"io"
	"net/http"
	"net/url"
	"testing"
	"time"

	"bivoc"
	"bivoc/internal/mining"
)

// End-to-end equivalence for the persistence subsystem: a bivocd warm
// restart — where the index is decoded from an on-disk segment instead
// of rebuilt by the ingest pipeline — must answer every endpoint
// byte-identically to the in-memory daemon, at every Associate worker
// count. This is the acceptance gate that lets the segment format
// change representation (varint deltas, interned strings) without any
// observable difference at the API.

// storeEquivEndpoints is the full bivocd surface the disk-loaded index
// is pinned against: the six /v1 analytics endpoints (concepts counted
// twice, once per selector) plus /healthz. /statsz is excluded from the
// byte-level comparison only because its cache counters and store
// section legitimately differ between a cold and a warm process.
func storeEquivEndpoints() map[string]string {
	weak := "weak start[customer intention]"
	strong := "strong start[customer intention]"
	res := "outcome=reservation"
	unb := "outcome=unbooked"
	conj := weak + " ∧ " + res
	return map[string]string{
		"count": "/v1/count?" + url.Values{"dim": {res, weak, conj}}.Encode(),
		"associate": "/v1/associate?" + url.Values{
			"row": {strong, weak}, "col": {res, unb}, "confidence": {"0.9"},
		}.Encode(),
		"relfreq":        "/v1/relfreq?" + url.Values{"category": {"discount"}, "featured": {conj}}.Encode(),
		"drilldown":      "/v1/drilldown?" + url.Values{"row": {weak}, "col": {res}, "limit": {"5"}}.Encode(),
		"trend":          "/v1/trend?" + url.Values{"dim": {weak}}.Encode(),
		"concepts-cat":   "/v1/concepts?" + url.Values{"category": {"customer intention"}}.Encode(),
		"concepts-field": "/v1/concepts?" + url.Values{"field": {"outcome"}}.Encode(),
		"healthz":        "/healthz",
	}
}

// storeEquivConfig pins both snapshot cadences off so every run ends at
// generation 1 regardless of ingest timing — generation appears in the
// response bodies, and the byte comparison must not depend on how many
// intermediate snapshots a run happened to publish.
func storeEquivConfig(dataDir string) bivoc.ServeConfig {
	cfg := bivoc.DefaultServeConfig()
	cfg.Analysis.World.CallsPerDay = 60
	cfg.Analysis.World.Days = 3
	cfg.Addr = "127.0.0.1:0"
	cfg.CacheSize = -1 // every request recomputes against the index
	cfg.SwapInterval = 0
	cfg.SwapEvery = 0
	cfg.DataDir = dataDir
	return cfg
}

// runSealedServer boots a daemon, waits for the sealed snapshot, and
// returns it with a shutdown func.
func runSealedServer(t *testing.T, cfg bivoc.ServeConfig) (*bivoc.QueryServer, func()) {
	t.Helper()
	s, err := bivoc.NewQueryServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Error(err)
		}
	}
	select {
	case <-s.IngestDone():
	case <-time.After(120 * time.Second):
		stop()
		t.Fatal("ingest did not seal")
	}
	return s, stop
}

func fetchBody(t *testing.T, addr, path string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
	}
	return string(body)
}

// TestServerEndpointsDiskMemoryEquivalence runs the same synthetic
// engagement through three daemon incarnations — pure in-memory,
// persistence-enabled first boot, and a warm restart whose index came
// off disk — and requires byte-identical bodies across all of them on
// every endpoint, at Associate worker counts {1, 4, 8}.
func TestServerEndpointsDiskMemoryEquivalence(t *testing.T) {
	restore := setMiningMode(false, 0)
	defer restore()
	endpoints := storeEquivEndpoints()
	dir := t.TempDir()

	// Oracle: the plain in-memory daemon.
	mem, stopMem := runSealedServer(t, storeEquivConfig(""))
	want := make(map[string]string, len(endpoints))
	for name, path := range endpoints {
		want[name] = fetchBody(t, mem.Addr(), path)
	}
	stopMem()

	// First durable boot: same pipeline, but the seal also writes the
	// segment. Its answers must not be perturbed by the persistence work.
	disk1, stopDisk1 := runSealedServer(t, storeEquivConfig(dir))
	if err := disk1.PersistErr(); err != nil {
		t.Fatalf("persistence error on first durable boot: %v", err)
	}
	for name, path := range endpoints {
		if got := fetchBody(t, disk1.Addr(), path); got != want[name] {
			t.Errorf("durable boot: %s diverges from in-memory daemon:\n got %s\nwant %s", name, got, want[name])
		}
	}
	stopDisk1()

	// Warm restart: the served index was decoded from the segment, not
	// rebuilt — the strongest test of the on-disk representation.
	disk2, stopDisk2 := runSealedServer(t, storeEquivConfig(dir))
	defer stopDisk2()
	segDocs, walDocs, walDropped := disk2.RecoveryInfo()
	if segDocs != 60*3 || walDocs != 0 || walDropped != 0 {
		t.Errorf("warm restart recovered (%d, %d, %d), want (180, 0, 0)", segDocs, walDocs, walDropped)
	}
	for name, path := range endpoints {
		for _, workers := range assocWorkerCounts {
			mining.AssociateWorkers = workers
			if got := fetchBody(t, disk2.Addr(), path); got != want[name] {
				t.Errorf("disk-loaded (workers=%d): %s diverges from in-memory daemon:\n got %s\nwant %s",
					workers, name, got, want[name])
			}
		}
	}
}
