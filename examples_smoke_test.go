package bivoc_test

import (
	"os/exec"
	"testing"
)

// TestExamplesBuild is a build-only smoke test: every example program
// must keep compiling against the current public API. Runtime behaviour
// is covered by the library tests; this just stops the examples from
// rotting when entry points move.
func TestExamplesBuild(t *testing.T) {
	gobin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	out, err := exec.Command(gobin, "build", "./examples/...").CombinedOutput()
	if err != nil {
		t.Fatalf("examples no longer build: %v\n%s", err, out)
	}
}
