// Linking hot-path benchmarks (`make bench-link`, recorded in
// BENCH_link.json): the per-call cost of the §IV.B data-linking engine
// and its feeder stages. BenchmarkLink is the headline number — the
// Threshold-Algorithm top-k merge over noisy identity documents against
// an 800-customer warehouse. BenchmarkLinkFullScan pins the naive
// baseline's cost per scored row, BenchmarkDictionaryTag isolates the
// §IV.C longest-match dictionary tagger that dominates the annotate
// stage, and BenchmarkRunCallAnalysis measures the end-to-end
// analysis-only pipeline the daemon's background ingest loop runs.
//
// Profile with:
//
//	make bench-link BENCH_FLAGS='-cpuprofile=cpu.out'
package bivoc_test

import (
	"strings"
	"testing"

	"bivoc"
)

// --- Link: TA merge over per-token candidate lists ---

func BenchmarkLink(b *testing.B) {
	world, engine, annotators := linkerFixture(b)
	docs := identityDocs(b, world, annotators, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range docs {
			engine.Link(d, 3)
		}
	}
	b.ReportMetric(float64(len(docs)), "docs/op")
}

// --- LinkFullScan: score every row (candidate-generation ablation) ---

func BenchmarkLinkFullScan(b *testing.B) {
	world, engine, annotators := linkerFixture(b)
	docs := identityDocs(b, world, annotators, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range docs {
			engine.LinkFullScan(d, 3)
		}
	}
	b.ReportMetric(float64(len(docs)), "docs/op")
}

// --- Dictionary tagging: the annotate stage's inner loop ---

func BenchmarkDictionaryTag(b *testing.B) {
	en := bivoc.NewCarRentalAnnotationEngine()
	dict := en.Dictionary()
	cfg := bivoc.DefaultCarRentalConfig()
	cfg.CallsPerDay = 50
	cfg.Days = 1
	world, err := bivoc.NewCarRentalWorld(cfg)
	if err != nil {
		b.Fatal(err)
	}
	calls := world.GenerateCalls(0, 1)
	texts := make([]string, len(calls))
	words := 0
	for i, c := range calls {
		texts[i] = strings.Join(c.Transcript, " ")
		words += len(c.Transcript)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tx := range texts {
			dict.Tag(tx)
		}
	}
	b.ReportMetric(float64(words), "words/op")
}

// --- End-to-end analysis-only call pipeline (bivocd's ingest loop) ---

func BenchmarkRunCallAnalysis(b *testing.B) {
	cfg := bivoc.DefaultCallAnalysisConfig()
	cfg.UseASR = false
	cfg.World.CallsPerDay = 200
	cfg.World.Days = 2
	cfg.Workers = 1
	b.ReportAllocs()
	b.ResetTimer()
	var calls int
	for i := 0; i < b.N; i++ {
		ca, err := bivoc.RunCallAnalysis(cfg)
		if err != nil {
			b.Fatal(err)
		}
		calls = ca.Index.Len()
	}
	b.ReportMetric(float64(calls), "calls/op")
}
