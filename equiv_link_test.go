package bivoc_test

import (
	"reflect"
	"testing"

	"bivoc/internal/linker"
)

// TestLinkGoldenCarRentalEquivalence is the golden byte-identity test of
// the ISSUE's equivalence contract: top-k linking of noisy identity
// documents against the synthetic car-rental world must return exactly
// the same matches — same rows, same float scores, same order — whether
// similarities come from the naive recompute path or the cached
// warehouse features.
func TestLinkGoldenCarRentalEquivalence(t *testing.T) {
	world, engine, annotators := linkerFixture(t)
	docs := identityDocs(t, world, annotators, 40)
	defer func() { linker.UseNaiveSimilarity = false }()
	for di, d := range docs {
		for _, k := range []int{1, 3} {
			linker.UseNaiveSimilarity = true
			want := engine.Link(d, k)
			linker.UseNaiveSimilarity = false
			got := engine.Link(d, k)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("doc %d k=%d: cached link differs from naive oracle:\ngot  %v\nwant %v", di, k, got, want)
			}
		}
	}
}
