// Package bivoc is the public API of the BIVoC system — Business
// Intelligence from Voice of Customer (Subramaniam, Faruquie, Ikbal,
// Godbole, Mohania; ICDE 2009) — reproduced from scratch in pure Go.
//
// BIVoC combines unstructured Voice-of-Customer data (noisy call
// transcripts, emails, SMS) with structured warehouse data to derive
// business insights neither side yields alone. The pipeline stages map
// one-to-one onto the paper's Figure 3:
//
//	ASR / cleaning  →  data linking  →  annotation  →  indexing & reporting
//
// This package re-exports the stable surface of the system. The
// submodules (internal/...) hold the implementations:
//
//   - ASR substrate: pronunciation lexicon, articulatory noisy channel,
//     token-passing Viterbi beam decoder, interpolated N-gram LM,
//     per-entity-class WER scoring, constrained second-pass decoding.
//   - Cleaning: spam gate, language filter, email segmentation, SMS
//     lingo normalization.
//   - Linking: annotator extraction, Eqn-2/Eqn-3 fuzzy entity scoring,
//     Fagin/Threshold-Algorithm top-k merge, unsupervised EM attribute
//     weights.
//   - Annotation: domain dictionary with canonical forms and semantic
//     categories, PoS tagging, phrase patterns, polarity rules.
//   - Mining: concept index, relative-frequency relevancy, 2-D
//     association analysis with interval-estimated indexes, trends,
//     drill-down.
//   - Use cases: agent-productivity improvement (§V) and churn
//     prediction (§VI), with synthetic worlds standing in for the
//     paper's proprietary engagement data.
//
// # Quickstart
//
//	cfg := bivoc.DefaultCallAnalysisConfig()
//	cfg.UseASR = false // analysis-only mode; true runs the full recognizer
//	ca, err := bivoc.RunCallAnalysis(cfg)
//	if err != nil { ... }
//	fmt.Print(ca.IntentOutcomeTable().Render()) // the paper's Table III
//
// See examples/ for runnable programs and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package bivoc

import (
	"context"

	"bivoc/internal/annotate"
	"bivoc/internal/asr"
	"bivoc/internal/churn"
	"bivoc/internal/core"
	"bivoc/internal/fed"
	"bivoc/internal/linker"
	"bivoc/internal/mining"
	"bivoc/internal/pipeline"
	"bivoc/internal/server"
	"bivoc/internal/synth"
	"bivoc/internal/warehouse"
)

// Version is the library version.
const Version = "1.0.0"

// --- Car-rental (§V) pipeline ---

// CallAnalysisConfig configures the §V car-rental pipeline.
type CallAnalysisConfig = core.CallAnalysisConfig

// CallAnalysis is the assembled pipeline state with its mining index.
type CallAnalysis = core.CallAnalysis

// DefaultCallAnalysisConfig returns the standard configuration (full ASR
// at the call-centre channel operating point).
func DefaultCallAnalysisConfig() CallAnalysisConfig {
	return core.DefaultCallAnalysisConfig()
}

// RunCallAnalysis executes generate → transcribe → link → annotate →
// index on the staged streaming pipeline (cfg.Workers per stage;
// Workers=1 recovers the sequential path).
func RunCallAnalysis(cfg CallAnalysisConfig) (*CallAnalysis, error) {
	return core.RunCallAnalysis(cfg)
}

// RunCallAnalysisContext is RunCallAnalysis with cancellation: cancel
// ctx and the streaming pipeline aborts promptly.
func RunCallAnalysisContext(ctx context.Context, cfg CallAnalysisConfig) (*CallAnalysis, error) {
	return core.RunCallAnalysisContext(ctx, cfg)
}

// --- Streaming pipeline surface ---

// StreamMonitor is the live view handed to CallAnalysisConfig.Monitor
// while a streaming run is in flight: per-stage counters plus the
// query-while-indexing mining index.
type StreamMonitor = core.StreamMonitor

// PipelineStageStats is one stage's counter snapshot (in/out/skipped/
// errors, queue depth and capacity, latency).
type PipelineStageStats = pipeline.StageStats

// StreamIndex is the incremental, concurrency-safe mining index: Add
// documents from pipeline workers while association tables and relevancy
// reports are queried concurrently; Seal freezes it into a deterministic
// batch Index.
type StreamIndex = mining.StreamIndex

// NewStreamIndex returns an empty streaming mining index.
func NewStreamIndex() *StreamIndex { return mining.NewStreamIndex() }

// --- Query serving (bivocd) ---

// ServeConfig configures the query daemon: a call-analysis ingest
// pipeline continuously publishing hot-swappable index snapshots behind
// an HTTP JSON API (/v1/count, /v1/associate, /v1/relfreq,
// /v1/drilldown, /v1/trend, /v1/concepts, /healthz, /statsz).
type ServeConfig = core.ServeConfig

// QueryServer is the serving-tier server: hot-swappable snapshots, a
// per-snapshot result cache, lock-free reads and graceful shutdown.
type QueryServer = server.Server

// DefaultServeConfig serves reference transcripts on localhost:8080
// with a one-second snapshot cadence.
func DefaultServeConfig() ServeConfig { return core.DefaultServeConfig() }

// NewQueryServer builds an unstarted query server from cfg; pair
// Start/Shutdown, or use Serve for the blocking daemon loop.
func NewQueryServer(cfg ServeConfig) (*QueryServer, error) { return core.NewServeServer(cfg) }

// Serve runs the query daemon until ctx is cancelled, then drains
// in-flight requests and stops the ingest pipeline cleanly.
func Serve(ctx context.Context, cfg ServeConfig) error { return core.Serve(ctx, cfg) }

// ParseDim parses a dimension label — `canonical[category]`,
// `field=value`, a bare category, or a " ∧ "-joined conjunction — into
// the Dim it renders from: ParseDim(d.Label()) == d. This is the query
// syntax of the daemon's dim/row/col/featured parameters.
func ParseDim(label string) (Dim, error) { return mining.ParseDim(label) }

// --- Federation (bivocfed) ---

// FedConfig configures the scatter-gather federation coordinator: the
// shard base URLs (in ShardOf placement order), per-shard timeout,
// fan-out bound and default association confidence.
type FedConfig = fed.Config

// FedCoordinator serves the same /v1 API as a single bivocd by
// scattering each query to every shard and merging the integer
// marginals before any float math — healthy responses are byte-identical
// to a single daemon over the union of the shards' documents.
type FedCoordinator = fed.Coordinator

// NewFedCoordinator builds an unstarted federation coordinator; pair
// Start/Shutdown, or use its Run for the blocking daemon loop.
func NewFedCoordinator(cfg FedConfig) (*FedCoordinator, error) { return fed.NewCoordinator(cfg) }

// ShardOf maps a document ID onto one of n shards — the placement
// contract shared by sharded bivocd ingest (ServeConfig.ShardIndex/
// ShardCount) and the coordinator's shard list.
func ShardOf(docID string, shards int) int { return fed.ShardOf(docID, shards) }

// --- Fault tolerance ---

// FaultTolerance bundles the streaming pipeline's failure knobs — retry
// policy, per-attempt timeout and dead-letter budget — threaded into a
// run via CallAnalysisConfig.FaultTolerance or
// ChurnExperimentConfig.FaultTolerance. The zero value keeps fail-fast
// semantics.
type FaultTolerance = pipeline.FaultTolerance

// RetryPolicy controls re-execution of transient stage failures:
// max attempts, capped exponential backoff, deterministic jitter, and
// the transient-error classifier.
type RetryPolicy = pipeline.RetryPolicy

// DeadLetter records one item that exhausted its retries and was
// dropped from the flow instead of aborting the run.
type DeadLetter = pipeline.DeadLetter

// FaultFn injects failures into pipeline stages — the chaos-testing
// hook behind CallAnalysisConfig.FaultInject and
// ChurnExperimentConfig.FaultInject.
type FaultFn = pipeline.FaultFn

// ErrTransient marks an error as retryable under the default transient
// classifier.
var ErrTransient = pipeline.ErrTransient

// Transient wraps err so the default retry classifier treats it as
// retryable.
func Transient(err error) error { return pipeline.Transient(err) }

// --- Agent-training experiment (§V.C) ---

// TrainingConfig configures the agent-training A/B experiment.
type TrainingConfig = core.TrainingConfig

// TrainingResult is the experiment outcome, including the Welch t-test.
type TrainingResult = core.TrainingResult

// DefaultTrainingConfig returns the paper-shaped configuration (90
// agents, 20 trained).
func DefaultTrainingConfig() TrainingConfig { return core.DefaultTrainingConfig() }

// RunTrainingExperiment runs the before/training/after windows and
// compares trained versus control agents.
func RunTrainingExperiment(cfg TrainingConfig) (*TrainingResult, error) {
	return core.RunTrainingExperiment(cfg)
}

// --- ASR evaluation (Table I, §IV.A.1) ---

// ASRExperimentConfig configures the Table I WER measurement.
type ASRExperimentConfig = core.ASRExperimentConfig

// ASRResult holds per-entity-class word error rates.
type ASRResult = core.ASRResult

// DefaultASRExperimentConfig returns the Table I configuration.
func DefaultASRExperimentConfig() ASRExperimentConfig {
	return core.DefaultASRExperimentConfig()
}

// RunASRExperiment measures WER for entire speech, names and numbers.
func RunASRExperiment(cfg ASRExperimentConfig) (*ASRResult, error) {
	return core.RunASRExperiment(cfg)
}

// SecondPassConfig configures the constrained second-pass experiment.
type SecondPassConfig = core.SecondPassConfig

// SecondPassResult reports first- versus second-pass name accuracy.
type SecondPassResult = core.SecondPassResult

// DefaultSecondPassConfig returns the §IV.A.1 improvement configuration.
func DefaultSecondPassConfig() SecondPassConfig { return core.DefaultSecondPassConfig() }

// RunSecondPassExperiment measures the name-accuracy gain from linking
// the first pass to the database and re-decoding name slots against the
// top-N candidate identities.
func RunSecondPassExperiment(cfg SecondPassConfig) (*SecondPassResult, error) {
	return core.RunSecondPassExperiment(cfg)
}

// --- Churn prediction (§VI) ---

// ChurnExperimentConfig configures the churn use case.
type ChurnExperimentConfig = core.ChurnExperimentConfig

// ChurnExperimentResult reports cleaning, linking and detection metrics.
type ChurnExperimentResult = core.ChurnExperimentResult

// DefaultChurnExperimentConfig returns the paper-shaped configuration.
func DefaultChurnExperimentConfig() ChurnExperimentConfig {
	return core.DefaultChurnExperimentConfig()
}

// RunChurnExperiment executes clean → link → train → detect, with the
// clean and link stages on the streaming pipeline (cfg.Workers each).
func RunChurnExperiment(cfg ChurnExperimentConfig) (*ChurnExperimentResult, error) {
	return core.RunChurnExperiment(cfg)
}

// RunChurnExperimentContext is RunChurnExperiment with cancellation.
func RunChurnExperimentContext(ctx context.Context, cfg ChurnExperimentConfig) (*ChurnExperimentResult, error) {
	return core.RunChurnExperimentContext(ctx, cfg)
}

// --- Building blocks re-exported for custom pipelines ---

// Channel operating points for the ASR substrate.
var (
	CleanChannel      = asr.CleanChannel
	TelephoneChannel  = asr.TelephoneChannel
	CallCenterChannel = asr.CallCenterChannel
)

// ChannelConfig parameterizes the acoustic noisy channel.
type ChannelConfig = asr.ChannelConfig

// DecoderConfig tunes the Viterbi beam decoder.
type DecoderConfig = asr.DecoderConfig

// DefaultDecoderConfig returns the standard first-pass decoder settings.
func DefaultDecoderConfig() DecoderConfig { return asr.DefaultDecoderConfig() }

// Recognizer is the full ASR pipeline (lexicon + channel + LM + decoder).
type Recognizer = asr.Recognizer

// NewCarRentalRecognizer assembles the car-rental domain recognizer.
func NewCarRentalRecognizer(channel ChannelConfig, decoder DecoderConfig) (*Recognizer, error) {
	return synth.BuildRecognizer(channel, decoder)
}

// Spotter detects keywords directly in phone streams — the word-spotting
// baseline (§II) that commercial monitoring tools use for indexing.
type Spotter = asr.Spotter

// NewSpotter returns a keyword spotter over a lexicon's pronunciations.
func NewSpotter(lex *asr.Lexicon) *Spotter { return asr.NewSpotter(lex) }

// AnnotationEngine is the §IV.C dictionary + pattern annotator.
type AnnotationEngine = annotate.Engine

// NewCarRentalAnnotationEngine builds the §V annotation engine (vehicle
// dictionary, cities, discount vocabulary, value-selling patterns).
func NewCarRentalAnnotationEngine() *AnnotationEngine {
	return core.BuildCarRentalAnnotator()
}

// MiningIndex is the concept/field inverted index of §IV.D.
type MiningIndex = mining.Index

// MiningDocument is one indexed VoC item: extracted concepts, linked
// structured fields, and a time bucket.
type MiningDocument = mining.Document

// AssocTable is a two-dimensional association analysis result.
type AssocTable = mining.AssocTable

// Dim identifies one analysis dimension (concept or structured field).
type Dim = mining.Dim

// ConceptDim returns a concept dimension.
func ConceptDim(category, canonical string) Dim { return mining.ConceptDim(category, canonical) }

// CategoryDim returns a dimension matching any concept of a category.
func CategoryDim(category string) Dim { return mining.CategoryDim(category) }

// FieldDim returns a structured-field dimension.
func FieldDim(field, value string) Dim { return mining.FieldDim(field, value) }

// AndDim returns the conjunction of dimensions — a document matches only
// if it matches every child.
func AndDim(dims ...Dim) Dim { return mining.AndDim(dims...) }

// CarRentalConfig sizes the synthetic car-rental world.
type CarRentalConfig = synth.CarRentalConfig

// DefaultCarRentalConfig returns the paper-scale car-rental world.
func DefaultCarRentalConfig() CarRentalConfig { return synth.DefaultCarRentalConfig() }

// CarRentalWorld is the generated car-rental engagement: agents,
// customers, warehouse tables and calls.
type CarRentalWorld = synth.CarRentalWorld

// NewCarRentalWorld generates a car-rental world.
func NewCarRentalWorld(cfg CarRentalConfig) (*CarRentalWorld, error) {
	return synth.NewCarRentalWorld(cfg)
}

// TelecomConfig sizes the synthetic telecom world.
type TelecomConfig = synth.TelecomConfig

// DefaultTelecomConfig returns the laptop-scale telecom world with the
// paper's proportions.
func DefaultTelecomConfig() TelecomConfig { return synth.DefaultTelecomConfig() }

// TelecomWorld is the generated telecom engagement.
type TelecomWorld = synth.TelecomWorld

// NewTelecomWorld generates a telecom world.
func NewTelecomWorld(cfg TelecomConfig) (*TelecomWorld, error) {
	return synth.NewTelecomWorld(cfg)
}

// LinkerEngine is the §IV.B data-linking engine.
type LinkerEngine = linker.Engine

// LinkerAnnotators extract typed identity tokens from documents.
type LinkerAnnotators = linker.Annotators

// NewCustomerLinker builds a linking engine over a car-rental world's
// customer table.
func NewCustomerLinker(db *warehouse.DB) (*LinkerEngine, error) {
	return core.NewCustomerLinker(db)
}

// NewCarRentalAnnotators builds identity annotators with the car-rental
// name and city inventories.
func NewCarRentalAnnotators() *LinkerAnnotators { return core.NewCarRentalAnnotators() }

// WarehouseDB is the structured-database substrate.
type WarehouseDB = warehouse.DB

// LinkerToken is a typed identity token extracted from a document.
type LinkerToken = linker.Token

// LinkerTokenType classifies identity tokens by their annotator.
type LinkerTokenType = linker.TokenType

// Token types (see LinkerTokenType).
const (
	TokName   = linker.TokName
	TokDigits = linker.TokDigits
	TokAmount = linker.TokAmount
	TokPlace  = linker.TokPlace
)

// LinkerGoldLabel is the true entity behind an evaluation document.
type LinkerGoldLabel = linker.GoldLabel

// LinkerAttribute names one matchable column of one entity type.
type LinkerAttribute = linker.Attribute

// DriverDetector finds churn-driver mentions in message text (§VI).
type DriverDetector = churn.DriverDetector

// NewChurnDriverDetector builds a detector over the standard churn-driver
// phrase inventory (competitor tariff, problem resolution, service
// issues, billing issues, low awareness).
func NewChurnDriverDetector() *DriverDetector {
	return churn.NewDriverDetector(synth.DriverPhraseSeed())
}
