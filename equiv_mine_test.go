package bivoc_test

import (
	"context"
	"io"
	"net/http"
	"net/url"
	"reflect"
	"testing"
	"time"

	"bivoc"
	"bivoc/internal/mining"
)

// End-to-end equivalence for the analytics hot path: the full pipelines
// (RunCallAnalysis, RunChurnExperiment) and every bivocd endpoint must
// produce byte-identical output whether mining queries run through the
// naive hash-set oracle or the sorted-postings fast path, at any
// Associate worker count. Complements the per-operation property suite
// in internal/mining.

// setMiningMode flips the package-level analytics knobs and returns a
// restore func for defer.
func setMiningMode(naive bool, workers int) func() {
	oldNaive, oldWorkers := mining.UseNaiveSets, mining.AssociateWorkers
	mining.UseNaiveSets, mining.AssociateWorkers = naive, workers
	return func() { mining.UseNaiveSets, mining.AssociateWorkers = oldNaive, oldWorkers }
}

// assocWorkerCounts are the fan-outs the determinism contract is pinned
// at: sequential, moderate, and more workers than some tables have cells.
var assocWorkerCounts = []int{1, 4, 8}

// callAnalysisReports runs the call-analysis pipeline and materializes
// every §IV.D report the core layer derives from its index.
func callAnalysisReports(t *testing.T) map[string]any {
	t.Helper()
	cfg := bivoc.DefaultCallAnalysisConfig()
	cfg.UseASR = false
	cfg.World.CallsPerDay = 80
	cfg.World.Days = 3
	ca, err := bivoc.RunCallAnalysis(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]any{
		"intent-outcome":   ca.IntentOutcomeTable(),
		"agent-utterance":  ca.AgentUtteranceTable(),
		"location-vehicle": ca.LocationVehicleTable(),
		"weak-drivers":     ca.WeakStartConversionDrivers(),
		"drilldown": ca.Index.DrillDown(
			bivoc.ConceptDim("customer intention", "weak start"),
			bivoc.FieldDim("outcome", "reservation")),
		"trend":    ca.Index.Trend(bivoc.FieldDim("outcome", "reservation")),
		"concepts": ca.Index.ConceptsInCategory("discount"),
	}
}

func TestCallAnalysisNaiveFastEquivalence(t *testing.T) {
	restore := setMiningMode(true, 0)
	defer restore()
	want := callAnalysisReports(t)
	for _, workers := range assocWorkerCounts {
		mining.UseNaiveSets, mining.AssociateWorkers = false, workers
		got := callAnalysisReports(t)
		for name, w := range want {
			if !reflect.DeepEqual(got[name], w) {
				t.Errorf("workers=%d: report %q diverges from naive oracle", workers, name)
			}
		}
	}
}

func TestChurnExperimentNaiveFastEquivalence(t *testing.T) {
	restore := setMiningMode(true, 0)
	defer restore()
	cfg := bivoc.DefaultChurnExperimentConfig()
	cfg.World.NumCustomers = 300
	cfg.World.Emails = 600
	cfg.World.SMS = 0
	want, err := bivoc.RunChurnExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range assocWorkerCounts {
		mining.UseNaiveSets, mining.AssociateWorkers = false, workers
		got, err := bivoc.RunChurnExperiment(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: churn result diverges from naive oracle:\n got %+v\nwant %+v",
				workers, got, want)
		}
	}
}

// TestServerEndpointsNaiveFastEquivalence drives every bivocd analytics
// endpoint against one sealed daemon, toggling the oracle flag between
// requests: queries sample the flag per call, so a single server can
// answer the same URL from both implementations. The response cache is
// disabled so each request really recomputes.
func TestServerEndpointsNaiveFastEquivalence(t *testing.T) {
	restore := setMiningMode(false, 0)
	defer restore()
	cfg := bivoc.DefaultServeConfig()
	cfg.Analysis.World.CallsPerDay = 60
	cfg.Analysis.World.Days = 3
	cfg.Addr = "127.0.0.1:0"
	cfg.CacheSize = -1 // no LRU: every request must hit the index
	s, err := bivoc.NewQueryServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-s.IngestDone():
	case <-time.After(60 * time.Second):
		t.Fatal("ingest did not seal")
	}

	weak := "weak start[customer intention]"
	strong := "strong start[customer intention]"
	res := "outcome=reservation"
	unb := "outcome=unbooked"
	conj := weak + " ∧ " + res
	endpoints := map[string]string{
		"count": "/v1/count?" + url.Values{"dim": {res, weak, conj}}.Encode(),
		"associate": "/v1/associate?" + url.Values{
			"row": {strong, weak}, "col": {res, unb}, "confidence": {"0.9"},
		}.Encode(),
		"relfreq":        "/v1/relfreq?" + url.Values{"category": {"discount"}, "featured": {conj}}.Encode(),
		"drilldown":      "/v1/drilldown?" + url.Values{"row": {weak}, "col": {res}, "limit": {"5"}}.Encode(),
		"trend":          "/v1/trend?" + url.Values{"dim": {weak}}.Encode(),
		"concepts-cat":   "/v1/concepts?" + url.Values{"category": {"customer intention"}}.Encode(),
		"concepts-field": "/v1/concepts?" + url.Values{"field": {"outcome"}}.Encode(),
	}
	fetch := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		return string(body)
	}
	for name, path := range endpoints {
		mining.UseNaiveSets = true
		want := fetch(path)
		mining.UseNaiveSets = false
		for _, workers := range assocWorkerCounts {
			mining.AssociateWorkers = workers
			if got := fetch(path); got != want {
				t.Errorf("%s (workers=%d): body diverges from naive oracle:\n got %s\nwant %s",
					name, workers, got, want)
			}
		}
	}
}
