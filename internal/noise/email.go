package noise

import (
	"fmt"
	"strings"

	"bivoc/internal/rng"
)

// Email wrapping: the cleaning stage (§IV.A.2) must "remove headers,
// disclaimers and promotional material from actual messages" and
// "segregate the agent conversation from customer conversation". These
// generators produce that wrapping deterministically so the cleaner can
// be evaluated exactly.

// Markers recognized by the cleaner. Real systems learn these; the paper
// treats them as fixed engagement-specific patterns.
const (
	DisclaimerMarker = "DISCLAIMER:"
	PromoMarker      = "*** OFFER ***"
	AgentQuotePrefix = "> "
)

var disclaimers = []string{
	DisclaimerMarker + " This e-mail and any attachments are confidential and intended solely for the addressee.",
	DisclaimerMarker + " The information contained in this message is legally privileged. If you are not the intended recipient please delete it.",
	DisclaimerMarker + " Internet communications cannot be guaranteed to be secure or error-free.",
}

var promos = []string{
	PromoMarker + " Upgrade to our platinum plan and get 500 free minutes every month!",
	PromoMarker + " Refer a friend and earn 100 rupees of talk time.",
	PromoMarker + " Download our new self-care app for instant balance checks.",
}

var agentReplies = []string{
	"Dear customer, thank you for contacting us. We have registered your request and it will be resolved in 48 hours.",
	"Dear customer, we regret the inconvenience caused. Our team is looking into the matter.",
	"Thank you for writing to us. Your complaint has been escalated to the concerned department.",
}

// WrapEmailOptions controls which wrappers are attached.
type WrapEmailOptions struct {
	From       string
	To         string
	Subject    string
	QuoteAgent bool // include a quoted agent reply below the customer text
	Promo      bool
	Disclaimer bool
}

// WrapEmail embeds the customer body in a realistic raw email: headers,
// optional quoted agent reply, promotional block and disclaimer.
func WrapEmail(r *rng.RNG, body string, opt WrapEmailOptions) string {
	var b strings.Builder
	fmt.Fprintf(&b, "From: %s\n", opt.From)
	fmt.Fprintf(&b, "To: %s\n", opt.To)
	fmt.Fprintf(&b, "Subject: %s\n", opt.Subject)
	fmt.Fprintf(&b, "Date: Mon, %d Mar 2008 %02d:%02d:00 +0530\n", 1+r.Intn(28), r.Intn(24), r.Intn(60))
	b.WriteString("\n")
	b.WriteString(body)
	b.WriteString("\n")
	if opt.QuoteAgent {
		b.WriteString("\n")
		reply := rng.Pick(r, agentReplies)
		for _, line := range strings.Split(reply, "\n") {
			b.WriteString(AgentQuotePrefix + line + "\n")
		}
	}
	if opt.Promo {
		b.WriteString("\n" + rng.Pick(r, promos) + "\n")
	}
	if opt.Disclaimer {
		b.WriteString("\n" + rng.Pick(r, disclaimers) + "\n")
	}
	return b.String()
}

// spamBodies seed the spam generator; junk mail "not related to
// enterprise operations" that the first cleaning step must discard.
var spamTemplates = []string{
	"congratulations you have won a lottery of one million dollars claim your prize now by sending your bank details",
	"cheap replica watches best prices in the market visit our online store today limited offer",
	"work from home and earn five thousand per day no experience required join immediately",
	"hot stock tip this share will triple next week buy now before it is too late",
	"miracle weight loss pills lose ten kilos in one month order today free shipping worldwide",
	"urgent business proposal i am a prince and need your help transferring funds you will receive a commission",
	"lowest interest loans approved in minutes no documents needed apply online now",
	"enlarge your confidence with our herbal supplement discreet packaging guaranteed results",
}

// SpamEmail generates one spam message with light typo noise so spam
// detection cannot rely on exact template matching.
func SpamEmail(r *rng.RNG) string {
	base := rng.Pick(r, spamTemplates)
	words := strings.Fields(base)
	for i := range words {
		if r.Bool(0.05) {
			words[i] = typo(r, words[i])
		}
	}
	// Spam loves exclamation marks and caps.
	if r.Bool(0.5) {
		words[r.Intn(len(words))] = strings.ToUpper(words[r.Intn(len(words))])
	}
	return strings.Join(words, " ") + "!!!"
}

// SpamSeedCorpus returns template spam texts for training the spam
// filter (the templates themselves, not generated instances, so the
// filter generalizes rather than memorizes).
func SpamSeedCorpus() []string {
	out := make([]string, len(spamTemplates))
	copy(out, spamTemplates)
	return out
}
