// Package noise injects the textual noise phenomena the paper documents
// in Voice-of-Customer channels (§III.A, Figure 1): SMS lingo and
// unconventional shorthands, keyboard typos, missing vowels, multilingual
// code-switching fragments, inconsistent casing and punctuation, plus the
// email-specific wrappers (headers, signatures, disclaimers, promotional
// blocks) that the cleaning stage must strip.
//
// The generators are deterministic given an rng stream, so every corpus
// in EXPERIMENTS.md is reproducible.
package noise

import (
	"strings"

	"bivoc/internal/rng"
)

// smsLingo maps standard words to the shorthand forms observed in text
// messages (Fig 1: "pl.", "tht", "inf", "custmer"...).
var smsLingo = map[string][]string{
	"please":       {"pls", "plz", "pl"},
	"you":          {"u"},
	"your":         {"ur", "yr"},
	"are":          {"r"},
	"for":          {"4", "fr"},
	"to":           {"2"},
	"today":        {"2day"},
	"tomorrow":     {"2moro", "tmrw"},
	"great":        {"gr8"},
	"late":         {"l8"},
	"wait":         {"w8"},
	"before":       {"b4"},
	"thanks":       {"thx", "tnx", "thnks"},
	"thank":        {"thk"},
	"because":      {"bcoz", "cuz", "bcz"},
	"message":      {"msg"},
	"messages":     {"msgs"},
	"number":       {"no.", "num", "nmbr"},
	"account":      {"acct", "a/c", "acnt"},
	"customer":     {"cust", "custmer", "custmr"},
	"received":     {"recd", "rcvd"},
	"payment":      {"pymt", "paymnt"},
	"balance":      {"bal"},
	"minutes":      {"mins"},
	"service":      {"svc", "servce"},
	"that":         {"tht", "dat"},
	"the":          {"teh", "d"},
	"with":         {"wid", "wth"},
	"without":      {"w/o"},
	"informed":     {"inf", "infrmd"},
	"regarding":    {"re", "regd"},
	"and":          {"n", "&"},
	"good":         {"gud"},
	"very":         {"v"},
	"not":          {"nt"},
	"what":         {"wat", "wt"},
	"have":         {"hv", "hav"},
	"be":           {"b"},
	"see":          {"c"},
	"okay":         {"ok", "k"},
	"problem":      {"prob", "prblm"},
	"request":      {"req", "reqst"},
	"activate":     {"actvte"},
	"confirm":      {"cnfrm"},
	"connect":      {"connct"},
	"disconnected": {"disconn", "discnctd"},
	"recharge":     {"rechrge", "rchrg"},
	"network":      {"ntwrk", "n/w"},
	"mobile":       {"mob", "mobil"},
	"week":         {"wk"},
	"month":        {"mnth"},
	"rupees":       {"rs", "rs."},
}

// hindiPhrases are the code-switching fragments (Fig 1 shows
// "hai.custmer ko satisfied hi nahi karte") inserted into multilingual
// messages.
var hindiPhrases = []string{
	"kya hua", "nahi chahiye", "bahut kharab", "theek nahi hai",
	"paisa wapas karo", "kab tak", "jaldi karo", "bilkul bekar",
	"koi sunta nahi", "hadd hai", "samajh nahi aata", "band karo",
}

// keyboardNeighbors maps each letter to its QWERTY neighbours for typo
// simulation.
var keyboardNeighbors = map[byte]string{
	'a': "qwsz", 'b': "vghn", 'c': "xdfv", 'd': "erfcxs", 'e': "wsdr",
	'f': "rtgvcd", 'g': "tyhbvf", 'h': "yujnbg", 'i': "ujko", 'j': "uikmnh",
	'k': "iolmj", 'l': "opk", 'm': "njk", 'n': "bhjm", 'o': "iklp",
	'p': "ol", 'q': "wa", 'r': "edft", 's': "awedxz", 't': "rfgy",
	'u': "yhji", 'v': "cfgb", 'w': "qase", 'x': "zsdc", 'y': "tghu",
	'z': "asx",
}

// Config sets the rates of each noise phenomenon, all per-word except
// where noted.
type Config struct {
	// LingoProb replaces a word with SMS shorthand when one exists.
	LingoProb float64
	// TypoProb garbles a word with a keyboard typo (substitution,
	// transposition, doubling or dropping).
	TypoProb float64
	// DropVowelProb removes the word's vowels ("problem" → "prblm").
	DropVowelProb float64
	// CaseNoiseProb flips the casing of a word (ALL CAPS or random).
	CaseNoiseProb float64
	// DropPunctProb removes each punctuation mark.
	DropPunctProb float64
	// CodeSwitchProb inserts a Hindi fragment after a sentence (per
	// message).
	CodeSwitchProb float64
	// RunOnProb joins two words without a space.
	RunOnProb float64
}

// SMSNoise is the heavy noise of text messages.
var SMSNoise = Config{
	LingoProb: 0.45, TypoProb: 0.08, DropVowelProb: 0.06,
	CaseNoiseProb: 0.05, DropPunctProb: 0.5, CodeSwitchProb: 0.25,
	RunOnProb: 0.04,
}

// EmailNoise is the lighter noise of customer emails (Fig 1: spelling
// slips and run-ons, but few shorthands).
var EmailNoise = Config{
	LingoProb: 0.06, TypoProb: 0.05, DropVowelProb: 0.01,
	CaseNoiseProb: 0.02, DropPunctProb: 0.2, CodeSwitchProb: 0.05,
	RunOnProb: 0.06,
}

// AgentNoteNoise approximates hurried contact-centre agent notes (Fig 1's
// first examples): heavy shorthand, light typos.
var AgentNoteNoise = Config{
	LingoProb: 0.35, TypoProb: 0.07, DropVowelProb: 0.08,
	CaseNoiseProb: 0.03, DropPunctProb: 0.4, CodeSwitchProb: 0.0,
	RunOnProb: 0.05,
}

// Noiser applies a Config to clean text.
type Noiser struct {
	cfg Config
}

// New returns a Noiser for the config.
func New(cfg Config) *Noiser { return &Noiser{cfg: cfg} }

// typo applies one random keyboard-level corruption to w.
func typo(r *rng.RNG, w string) string {
	if len(w) == 0 {
		return w
	}
	b := []byte(strings.ToLower(w))
	pos := r.Intn(len(b))
	switch r.Intn(4) {
	case 0: // neighbour substitution
		if nb, ok := keyboardNeighbors[b[pos]]; ok && len(nb) > 0 {
			b[pos] = nb[r.Intn(len(nb))]
		}
	case 1: // transposition
		if pos+1 < len(b) {
			b[pos], b[pos+1] = b[pos+1], b[pos]
		}
	case 2: // doubling
		b = append(b[:pos+1], b[pos:]...)
	default: // deletion
		if len(b) > 1 {
			b = append(b[:pos], b[pos+1:]...)
		}
	}
	return string(b)
}

// dropVowels removes interior vowels, keeping the first letter.
func dropVowels(w string) string {
	if len(w) <= 2 {
		return w
	}
	var b strings.Builder
	b.WriteByte(w[0])
	for i := 1; i < len(w); i++ {
		switch w[i] {
		case 'a', 'e', 'i', 'o', 'u':
		default:
			b.WriteByte(w[i])
		}
	}
	if b.Len() < 2 {
		return w
	}
	return b.String()
}

// isPunct reports whether the token is a single punctuation mark.
func isPunct(tok string) bool {
	if len(tok) != 1 {
		return false
	}
	c := tok[0]
	return !(c >= 'a' && c <= 'z') && !(c >= 'A' && c <= 'Z') && !(c >= '0' && c <= '9')
}

// Apply corrupts the message. Word order is preserved; individual words
// are replaced by lingo, typos or vowel-dropped forms, punctuation is
// thinned, and code-switch fragments may be appended.
func (n *Noiser) Apply(r *rng.RNG, text string) string {
	words := strings.Fields(text)
	var out []string
	for _, w := range words {
		trailPunct := ""
		core := w
		for len(core) > 0 && isPunct(core[len(core)-1:]) {
			trailPunct = core[len(core)-1:] + trailPunct
			core = core[:len(core)-1]
		}
		lower := strings.ToLower(core)
		switch {
		case core == "":
		case n.cfg.LingoProb > 0 && r.Bool(n.cfg.LingoProb):
			if subs, ok := smsLingo[lower]; ok {
				core = rng.Pick(r, subs)
			} else if r.Bool(n.cfg.TypoProb * 2) {
				core = typo(r, core)
			}
		case r.Bool(n.cfg.TypoProb):
			core = typo(r, core)
		case r.Bool(n.cfg.DropVowelProb):
			core = dropVowels(lower)
		}
		if r.Bool(n.cfg.CaseNoiseProb) {
			if r.Bool(0.5) {
				core = strings.ToUpper(core)
			} else {
				core = strings.ToLower(core)
			}
		}
		if trailPunct != "" && r.Bool(n.cfg.DropPunctProb) {
			trailPunct = ""
		}
		tok := core + trailPunct
		if tok == "" {
			continue
		}
		if len(out) > 0 && r.Bool(n.cfg.RunOnProb) {
			out[len(out)-1] += tok
		} else {
			out = append(out, tok)
		}
	}
	msg := strings.Join(out, " ")
	if r.Bool(n.cfg.CodeSwitchProb) {
		msg = msg + " " + rng.Pick(r, hindiPhrases)
	}
	return msg
}

// IsLingo reports whether tok is a known SMS shorthand, and returns its
// expansion. The cleaning stage builds its normalization dictionary from
// the same inventory ("building domain specific dictionaries ... for
// common lingo used in text messaging", §IV.A.2).
func IsLingo(tok string) (string, bool) {
	for full, shorts := range smsLingo {
		for _, s := range shorts {
			if tok == s {
				return full, true
			}
		}
	}
	return "", false
}

// LingoTable returns a copy of the shorthand → canonical mapping.
func LingoTable() map[string]string {
	out := make(map[string]string)
	for full, shorts := range smsLingo {
		for _, s := range shorts {
			out[s] = full
		}
	}
	return out
}

// HindiMarkers returns tokens that indicate code-switched (non-English)
// content, for the language filter.
func HindiMarkers() []string {
	set := map[string]bool{}
	var out []string
	for _, p := range hindiPhrases {
		for _, w := range strings.Fields(p) {
			if !set[w] {
				set[w] = true
				out = append(out, w)
			}
		}
	}
	return out
}
