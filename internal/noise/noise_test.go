package noise

import (
	"strings"
	"testing"

	"bivoc/internal/rng"
)

func TestApplyDeterministic(t *testing.T) {
	n := New(SMSNoise)
	text := "please confirm the receipt of payment thanks"
	a := n.Apply(rng.New(3), text)
	b := n.Apply(rng.New(3), text)
	if a != b {
		t.Errorf("non-deterministic: %q vs %q", a, b)
	}
}

func TestApplyZeroConfigIdentity(t *testing.T) {
	n := New(Config{})
	text := "please confirm the receipt of payment. thanks"
	if got := n.Apply(rng.New(1), text); got != text {
		t.Errorf("zero noise altered text: %q", got)
	}
}

func TestSMSNoiseProducesLingo(t *testing.T) {
	n := New(SMSNoise)
	r := rng.New(17)
	lingoSeen := false
	for i := 0; i < 50 && !lingoSeen; i++ {
		out := n.Apply(r.Split(uint64(i)), "please confirm your payment thanks you are great")
		for _, w := range strings.Fields(out) {
			if _, ok := IsLingo(strings.ToLower(w)); ok {
				lingoSeen = true
				break
			}
		}
	}
	if !lingoSeen {
		t.Error("SMS noise never produced shorthand")
	}
}

func TestSMSNoiseCodeSwitches(t *testing.T) {
	n := New(Config{CodeSwitchProb: 1})
	out := n.Apply(rng.New(5), "this is not solving my problem")
	markers := map[string]bool{}
	for _, m := range HindiMarkers() {
		markers[m] = true
	}
	found := false
	for _, w := range strings.Fields(out) {
		if markers[w] {
			found = true
		}
	}
	if !found {
		t.Errorf("no code-switch fragment in %q", out)
	}
}

func TestNoiseChangesText(t *testing.T) {
	n := New(SMSNoise)
	text := "customer was charged for sms pack but did not give request for activation please deactivate"
	changed := 0
	for i := 0; i < 20; i++ {
		if n.Apply(rng.New(uint64(i)), text) != text {
			changed++
		}
	}
	if changed < 15 {
		t.Errorf("heavy SMS noise left text unchanged in %d/20 runs", 20-changed)
	}
}

func TestEmailNoiseLighterThanSMS(t *testing.T) {
	text := "please confirm the receipt of payment for your account thanks and regards"
	dist := func(a, b string) int {
		// crude token-level difference count
		aw, bw := strings.Fields(a), strings.Fields(b)
		diff := len(aw) - len(bw)
		if diff < 0 {
			diff = -diff
		}
		n := len(aw)
		if len(bw) < n {
			n = len(bw)
		}
		for i := 0; i < n; i++ {
			if aw[i] != bw[i] {
				diff++
			}
		}
		return diff
	}
	smsTotal, emailTotal := 0, 0
	for i := 0; i < 30; i++ {
		smsTotal += dist(text, New(SMSNoise).Apply(rng.New(uint64(i)), text))
		emailTotal += dist(text, New(EmailNoise).Apply(rng.New(uint64(1000+i)), text))
	}
	if emailTotal >= smsTotal {
		t.Errorf("email noise (%d) should be lighter than sms noise (%d)", emailTotal, smsTotal)
	}
}

func TestIsLingoRoundTrip(t *testing.T) {
	if full, ok := IsLingo("pls"); !ok || full != "please" {
		t.Errorf("pls → %q %v", full, ok)
	}
	if _, ok := IsLingo("reservation"); ok {
		t.Error("content word should not be lingo")
	}
	table := LingoTable()
	if table["u"] != "you" || table["thx"] != "thanks" {
		t.Error("lingo table incomplete")
	}
}

func TestTypoPreservesRoughShape(t *testing.T) {
	r := rng.New(9)
	for i := 0; i < 200; i++ {
		w := "payment"
		got := typo(r, w)
		if len(got) < len(w)-1 || len(got) > len(w)+1 {
			t.Fatalf("typo changed length too much: %q", got)
		}
	}
	if typo(r, "") != "" {
		t.Error("empty word typo should be empty")
	}
}

func TestDropVowels(t *testing.T) {
	if got := dropVowels("problem"); got != "prblm" {
		t.Errorf("got %q", got)
	}
	if got := dropVowels("ok"); got != "ok" {
		t.Errorf("short word altered: %q", got)
	}
	// A word that would vanish keeps its original form.
	if got := dropVowels("aeiou"); got == "" || len(got) < 2 {
		t.Errorf("all-vowel word reduced to %q", got)
	}
}

func TestWrapEmailStructure(t *testing.T) {
	r := rng.New(11)
	body := "my bill is too high i almost feel robbed when paying"
	raw := WrapEmail(r, body, WrapEmailOptions{
		From: "cust@example.com", To: "care@telco.example",
		Subject: "billing complaint", QuoteAgent: true, Promo: true, Disclaimer: true,
	})
	for _, want := range []string{"From: cust@example.com", "Subject: billing complaint", body, DisclaimerMarker, PromoMarker, AgentQuotePrefix} {
		if !strings.Contains(raw, want) {
			t.Errorf("wrapped email missing %q", want)
		}
	}
}

func TestWrapEmailMinimal(t *testing.T) {
	r := rng.New(12)
	raw := WrapEmail(r, "body text", WrapEmailOptions{From: "a@b", To: "c@d", Subject: "s"})
	if strings.Contains(raw, DisclaimerMarker) || strings.Contains(raw, PromoMarker) {
		t.Error("optional blocks attached when disabled")
	}
}

func TestSpamEmailVaries(t *testing.T) {
	r := rng.New(13)
	seen := map[string]bool{}
	for i := 0; i < 20; i++ {
		seen[SpamEmail(r.Split(uint64(i)))] = true
	}
	if len(seen) < 5 {
		t.Errorf("spam generator too repetitive: %d distinct", len(seen))
	}
}

func TestSpamSeedCorpusIsCopy(t *testing.T) {
	a := SpamSeedCorpus()
	a[0] = "mutated"
	b := SpamSeedCorpus()
	if b[0] == "mutated" {
		t.Error("SpamSeedCorpus leaks internal state")
	}
	if len(b) < 5 {
		t.Error("spam seed corpus too small")
	}
}

func TestHindiMarkersNonEmpty(t *testing.T) {
	m := HindiMarkers()
	if len(m) < 5 {
		t.Errorf("only %d hindi markers", len(m))
	}
	seen := map[string]bool{}
	for _, w := range m {
		if seen[w] {
			t.Errorf("duplicate marker %q", w)
		}
		seen[w] = true
	}
}

func TestRunOnJoinsWords(t *testing.T) {
	n := New(Config{RunOnProb: 1})
	out := n.Apply(rng.New(2), "a b c d")
	if len(strings.Fields(out)) != 1 {
		t.Errorf("run-on should join everything: %q", out)
	}
}
