package linker

import (
	"fmt"
	"reflect"
	"testing"

	"bivoc/internal/warehouse"
)

func testDB(t *testing.T) *warehouse.DB {
	t.Helper()
	db := warehouse.NewDB()
	customers, err := db.CreateTable(warehouse.Schema{
		Table: "customers", Key: "id",
		Columns: []warehouse.Column{
			{Name: "id", Type: warehouse.TypeString, Match: warehouse.MatchExact},
			{Name: "name", Type: warehouse.TypeString, Match: warehouse.MatchName},
			{Name: "phone", Type: warehouse.TypeString, Match: warehouse.MatchDigits},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	transactions, err := db.CreateTable(warehouse.Schema{
		Table: "transactions", Key: "id",
		Columns: []warehouse.Column{
			{Name: "id", Type: warehouse.TypeString, Match: warehouse.MatchExact},
			{Name: "customer", Type: warehouse.TypeString, Match: warehouse.MatchName},
			{Name: "amount", Type: warehouse.TypeFloat, Match: warehouse.MatchNumeric},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cards, err := db.CreateTable(warehouse.Schema{
		Table: "cards", Key: "id",
		Columns: []warehouse.Column{
			{Name: "id", Type: warehouse.TypeString, Match: warehouse.MatchExact},
			{Name: "number", Type: warehouse.TypeString, Match: warehouse.MatchDigits},
			{Name: "holder", Type: warehouse.TypeString, Match: warehouse.MatchName},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	names := []string{"john smith", "mary jones", "robert brown", "susan miller", "james wilson"}
	phones := []string{"9876543210", "9123456789", "9988776655", "9000011111", "9555566666"}
	for i := range names {
		customers.MustInsert(
			warehouse.StringValue(fmt.Sprintf("c%d", i)),
			warehouse.StringValue(names[i]),
			warehouse.StringValue(phones[i]),
		)
	}
	for i := range names {
		transactions.MustInsert(
			warehouse.StringValue(fmt.Sprintf("t%d", i)),
			warehouse.StringValue(names[i]),
			warehouse.FloatValue(float64(100+50*i)),
		)
	}
	// Two cards for john smith, one for mary jones.
	cards.MustInsert(warehouse.StringValue("k0"), warehouse.StringValue("4111222233334444"), warehouse.StringValue("john smith"))
	cards.MustInsert(warehouse.StringValue("k1"), warehouse.StringValue("4555666677778888"), warehouse.StringValue("john smith"))
	cards.MustInsert(warehouse.StringValue("k2"), warehouse.StringValue("4999000011112222"), warehouse.StringValue("mary jones"))
	return db
}

func testEngine(t *testing.T, db *warehouse.DB) *Engine {
	t.Helper()
	e, err := NewEngine(db, Config{Targets: map[TokenType][]Attribute{
		TokName: {
			{Table: "customers", Column: "name"},
			{Table: "transactions", Column: "customer"},
			{Table: "cards", Column: "holder"},
		},
		TokDigits: {
			{Table: "customers", Column: "phone"},
			{Table: "cards", Column: "number"},
		},
		TokAmount: {
			{Table: "transactions", Column: "amount"},
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// --- Annotator tests ---

func TestExtractTokens(t *testing.T) {
	a := NewAnnotators([]string{"smith", "john"}, []string{"boston"})
	toks := a.Extract("my name is John Smith calling from Boston phone 9876543210 about rs 500")
	byType := map[TokenType][]string{}
	for _, tok := range toks {
		byType[tok.Type] = append(byType[tok.Type], tok.Text)
	}
	if !reflect.DeepEqual(byType[TokName], []string{"john", "smith"}) {
		t.Errorf("names = %v", byType[TokName])
	}
	if !reflect.DeepEqual(byType[TokPlace], []string{"boston"}) {
		t.Errorf("places = %v", byType[TokPlace])
	}
	if !reflect.DeepEqual(byType[TokDigits], []string{"9876543210"}) {
		t.Errorf("digits = %v", byType[TokDigits])
	}
	if !reflect.DeepEqual(byType[TokAmount], []string{"500"}) {
		t.Errorf("amounts = %v", byType[TokAmount])
	}
}

func TestExtractSpokenDigits(t *testing.T) {
	a := NewAnnotators(nil, nil)
	toks := a.Extract("my number is nine eight seven six five four three two one zero thank you")
	if len(toks) != 1 || toks[0].Type != TokDigits || toks[0].Text != "9876543210" {
		t.Errorf("spoken digits = %v", toks)
	}
}

func TestExtractShortDigitRunsIgnored(t *testing.T) {
	a := NewAnnotators(nil, nil)
	// "one car" should not become a digit token, nor should bare "42".
	toks := a.Extract("i want one car for 42")
	for _, tok := range toks {
		if tok.Type == TokDigits {
			t.Errorf("short digit run extracted: %v", tok)
		}
	}
}

func TestExtractAmountContext(t *testing.T) {
	a := NewAnnotators(nil, nil)
	toks := a.Extract("charged rs 2013 for sms")
	if len(toks) != 1 || toks[0].Type != TokAmount || toks[0].Text != "2013" {
		t.Errorf("amount = %v", toks)
	}
	// Currency marker after the number ("500 rupees").
	toks = a.Extract("paid 500 rupees yesterday")
	if len(toks) != 1 || toks[0].Type != TokAmount {
		t.Errorf("postfix amount = %v", toks)
	}
}

func TestParseAmount(t *testing.T) {
	if v, ok := ParseAmount("500"); !ok || v != 500 {
		t.Error("parse failed")
	}
	if _, ok := ParseAmount("abc"); ok {
		t.Error("non-numeric parsed")
	}
}

func TestTokenTypeString(t *testing.T) {
	for tt, want := range map[TokenType]string{
		TokName: "name", TokDigits: "digits", TokAmount: "amount",
		TokPlace: "place", TokWord: "word",
	} {
		if tt.String() != want {
			t.Errorf("%d → %q", tt, tt.String())
		}
	}
}

// --- Engine config tests ---

func TestNewEngineValidation(t *testing.T) {
	db := testDB(t)
	if _, err := NewEngine(db, Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := NewEngine(db, Config{Targets: map[TokenType][]Attribute{
		TokName: {{Table: "ghost", Column: "x"}},
	}}); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := NewEngine(db, Config{Targets: map[TokenType][]Attribute{
		TokName: {{Table: "customers", Column: "ghost"}},
	}}); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestInitialWeightsUniformPerTable(t *testing.T) {
	e := testEngine(t, testDB(t))
	// customers has two configured attrs (name, phone) → 0.5 each.
	if w := e.Weight(Attribute{"customers", "name"}); w != 0.5 {
		t.Errorf("customers.name weight = %v", w)
	}
	if w := e.Weight(Attribute{"cards", "number"}); w != 0.5 {
		t.Errorf("cards.number weight = %v", w)
	}
}

// --- Single-type linking ---

func TestLinkTableExactTokens(t *testing.T) {
	e := testEngine(t, testDB(t))
	tokens := []Token{
		{Text: "smith", Type: TokName},
		{Text: "9876543210", Type: TokDigits},
	}
	m := e.LinkTable(tokens, "customers", 3)
	if len(m) == 0 {
		t.Fatal("no matches")
	}
	if m[0].Row != 0 {
		t.Errorf("top match row %d, want 0 (john smith)", m[0].Row)
	}
}

func TestLinkCombinedBeatsIndividualOnPartialEntities(t *testing.T) {
	e := testEngine(t, testDB(t))
	// Garbled name + partial phone: individually ambiguous, jointly
	// decisive — §IV.A.1's accuracy-of-linking claim.
	tokens := []Token{
		{Text: "smyth", Type: TokName},    // garbled surname
		{Text: "987654", Type: TokDigits}, // 6 of 10 digits
	}
	m := e.LinkTable(tokens, "customers", 1)
	if len(m) != 1 || m[0].Row != 0 {
		t.Fatalf("combined link failed: %v", m)
	}
}

func TestLinkEmptyTokens(t *testing.T) {
	e := testEngine(t, testDB(t))
	if m := e.Link(nil, 5); len(m) != 0 {
		t.Errorf("empty tokens linked: %v", m)
	}
}

func TestLinkKClamped(t *testing.T) {
	e := testEngine(t, testDB(t))
	tokens := []Token{{Text: "smith", Type: TokName}}
	if m := e.LinkTable(tokens, "customers", 0); len(m) != 1 {
		t.Errorf("k=0 should clamp to 1, got %d matches", len(m))
	}
}

func TestThresholdMergeAgreesWithFullScan(t *testing.T) {
	e := testEngine(t, testDB(t))
	docs := [][]Token{
		{{Text: "smyth", Type: TokName}, {Text: "987654", Type: TokDigits}},
		{{Text: "jones", Type: TokName}},
		{{Text: "9123456789", Type: TokDigits}},
		{{Text: "miller", Type: TokName}, {Text: "9000011111", Type: TokDigits}},
	}
	for i, tokens := range docs {
		ta := e.Link(tokens, 1)
		fs := e.LinkFullScan(tokens, 1)
		if len(ta) == 0 || len(fs) == 0 {
			t.Fatalf("doc %d: empty result ta=%v fs=%v", i, ta, fs)
		}
		if ta[0].Table != fs[0].Table || ta[0].Row != fs[0].Row {
			t.Errorf("doc %d: TA %v disagrees with full scan %v", i, ta[0], fs[0])
		}
		if abs(ta[0].Score-fs[0].Score) > 1e-9 {
			t.Errorf("doc %d: score mismatch %v vs %v", i, ta[0].Score, fs[0].Score)
		}
	}
}

// --- Multi-type linking ---

func TestMultiTypeCreditCardDocPointsToCustomer(t *testing.T) {
	// The paper's example: "a document where a customer lists all his
	// credit card numbers to identify himself ... each credit card
	// reference contributes to a different credit card entity ... but they
	// all point to the same customer entity. Therefore the aggregate score
	// for the (customer) pair turns out to be higher."
	e := testEngine(t, testDB(t))
	// Weight the holder attribute so both cards' name evidence aggregates.
	tokens := []Token{
		{Text: "4111222233334444", Type: TokDigits},
		{Text: "4555666677778888", Type: TokDigits},
		{Text: "smith", Type: TokName},
		{Text: "john", Type: TokName},
	}
	m := e.Link(tokens, 1)
	if len(m) != 1 {
		t.Fatal("no match")
	}
	// Each card matches only one number token, but the cards type gets
	// name evidence too; what must hold is that the chosen entity is
	// either the customer John Smith or a John Smith card — and with two
	// different card numbers the single cards row cannot dominate the
	// aggregated customer evidence once weights are learned. At uniform
	// weights, verify at least that John Smith's customer row outranks
	// every card on aggregate score.
	custScore := e.scoreEntity(tokens, "customers", 0)
	cardBest := e.scoreEntity(tokens, "cards", 0)
	if s := e.scoreEntity(tokens, "cards", 1); s > cardBest {
		cardBest = s
	}
	if custScore <= 0 {
		t.Fatal("customer aggregate score should be positive")
	}
	_ = m
	if cardBest >= custScore+1.0 {
		t.Errorf("a single card (%v) towers over aggregated customer (%v)", cardBest, custScore)
	}
}

func TestMultiTypeAmountDocPointsToTransaction(t *testing.T) {
	e := testEngine(t, testDB(t))
	tokens := []Token{
		{Text: "jones", Type: TokName},
		{Text: "150", Type: TokAmount}, // t1's amount, mary jones
	}
	m := e.Link(tokens, 3)
	found := false
	for _, match := range m {
		if match.Table == "transactions" && match.Row == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("transaction t1 not in top matches: %v", m)
	}
}

// --- EM weight learning ---

func TestLearnWeightsConvergesAndNormalizes(t *testing.T) {
	e := testEngine(t, testDB(t))
	docs := [][]Token{
		{{Text: "smith", Type: TokName}, {Text: "9876543210", Type: TokDigits}},
		{{Text: "jones", Type: TokName}, {Text: "9123456789", Type: TokDigits}},
		{{Text: "brown", Type: TokName}},
		{{Text: "miller", Type: TokName}},
		{{Text: "4111222233334444", Type: TokDigits}},
	}
	history := e.LearnWeights(docs, 10)
	if len(history) == 0 {
		t.Fatal("no EM iterations ran")
	}
	// Deltas should shrink (broadly monotone convergence).
	if history[len(history)-1] > history[0]+1e-9 {
		t.Errorf("EM diverging: %v", history)
	}
	// Weights stay normalized per table.
	totals := map[string]float64{}
	for at, w := range e.Weights() {
		if w < 0 {
			t.Errorf("negative weight for %v", at)
		}
		totals[at.Table] += w
	}
	for table, total := range totals {
		if abs(total-1) > 1e-9 {
			t.Errorf("table %s weights sum to %v", table, total)
		}
	}
}

func TestLearnWeightsFavorsInformativeAttribute(t *testing.T) {
	e := testEngine(t, testDB(t))
	// Transaction-type documents mention both given and family name (two
	// occurrences of the customer attribute) but only one amount, so EM
	// should shift transaction weight toward the name attribute.
	docs := [][]Token{
		{{Text: "john", Type: TokName}, {Text: "smith", Type: TokName}, {Text: "100", Type: TokAmount}},
		{{Text: "mary", Type: TokName}, {Text: "jones", Type: TokName}, {Text: "150", Type: TokAmount}},
		{{Text: "robert", Type: TokName}, {Text: "brown", Type: TokName}, {Text: "200", Type: TokAmount}},
		{{Text: "susan", Type: TokName}, {Text: "miller", Type: TokName}, {Text: "250", Type: TokAmount}},
	}
	e.LearnWeights(docs, 5)
	nameW := e.Weight(Attribute{"transactions", "customer"})
	amountW := e.Weight(Attribute{"transactions", "amount"})
	if nameW <= amountW {
		t.Errorf("name weight %v should exceed amount weight %v", nameW, amountW)
	}
}

func TestLearnWeightsEmptyDocs(t *testing.T) {
	e := testEngine(t, testDB(t))
	before := e.Weights()
	e.LearnWeights(nil, 3)
	after := e.Weights()
	for at, w := range before {
		if abs(after[at]-w) > 1e-9 {
			t.Errorf("weights changed with no data: %v %v→%v", at, w, after[at])
		}
	}
}

// --- Evaluation ---

func TestEvaluate(t *testing.T) {
	e := testEngine(t, testDB(t))
	docs := [][]Token{
		{{Text: "smith", Type: TokName}, {Text: "9876543210", Type: TokDigits}},
		{{Text: "jones", Type: TokName}, {Text: "9123456789", Type: TokDigits}},
		{{Text: "zzz", Type: TokName}}, // unlinkable junk
	}
	gold := []*GoldLabel{
		{Table: "customers", Row: 0},
		{Table: "customers", Row: 1},
		nil,
	}
	res := e.Evaluate(docs, gold, 3)
	if res.Docs != 3 {
		t.Errorf("docs = %d", res.Docs)
	}
	if res.Correct != 2 {
		t.Errorf("correct = %d (res=%+v)", res.Correct, res)
	}
	if res.Unlinkable != 1 {
		t.Errorf("unlinkable = %d", res.Unlinkable)
	}
	if res.Recall() != 2.0/3.0 {
		t.Errorf("recall = %v", res.Recall())
	}
	if res.UnlinkableRate() != 1.0/3.0 {
		t.Errorf("unlinkable rate = %v", res.UnlinkableRate())
	}
	if res.RecallAtK() < res.Recall() {
		t.Error("recall@k cannot be below recall@1")
	}
}

func TestEvalResultEmpty(t *testing.T) {
	var r EvalResult
	if r.Precision() != 0 || r.Recall() != 0 || r.RecallAtK() != 0 || r.UnlinkableRate() != 0 {
		t.Error("empty result should be zeros")
	}
}

// --- TopNames for second-pass ASR ---

func TestTopNames(t *testing.T) {
	e := testEngine(t, testDB(t))
	tokens := []Token{{Text: "smyth", Type: TokName}, {Text: "987654", Type: TokDigits}}
	names := e.TopNames(tokens, "customers", "name", 3)
	found := false
	for _, n := range names {
		if n == "smith" {
			found = true
		}
	}
	if !found {
		t.Errorf("top names %v missing smith", names)
	}
}

// --- Individual-entity baseline ---

func TestLinkIndividualBest(t *testing.T) {
	e := testEngine(t, testDB(t))
	tokens := []Token{
		{Text: "smith", Type: TokName},
		{Text: "9876543210", Type: TokDigits},
	}
	m, ok := e.LinkIndividualBest(tokens, "customers")
	if !ok || m.Row != 0 {
		t.Errorf("individual best = %v %v", m, ok)
	}
	if _, ok := e.LinkIndividualBest(nil, "customers"); ok {
		t.Error("no tokens should not link")
	}
}
