package linker

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"bivoc/internal/warehouse"
)

// The equivalence contract of the linking hot path: the cached-feature
// similarity (featSim), the memoized TA merge, and the heap-based top-k
// must all be byte-identical to the naive recompute-everything oracle
// kept alive behind UseNaiveSimilarity.

// propSchema has one column per MatchKind so the property test exercises
// every similarity branch.
func propTable(t *testing.T) (*warehouse.DB, *warehouse.Table) {
	t.Helper()
	db := warehouse.NewDB()
	tab, err := db.CreateTable(warehouse.Schema{
		Table: "props",
		Columns: []warehouse.Column{
			{Name: "exact", Type: warehouse.TypeString, Match: warehouse.MatchExact},
			{Name: "name", Type: warehouse.TypeString, Match: warehouse.MatchName},
			{Name: "text", Type: warehouse.TypeString, Match: warehouse.MatchText},
			{Name: "digits", Type: warehouse.TypeString, Match: warehouse.MatchDigits},
			{Name: "amount", Type: warehouse.TypeString, Match: warehouse.MatchNumeric},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return db, tab
}

// randomSurface makes deliberately messy strings: mixed case, garbled
// words, digit runs, numbers, stray whitespace, empty strings.
func randomSurface(rng *rand.Rand) string {
	words := []string{
		"John", "smith", "GEOFFREY", "jeffrey", "lake", "Shore", "drive",
		"9876543210", "555", "0142", "12.50", "1200", "-3.75", "rs",
		"miller", "  ", "", "o'brien", "sánchez", "x",
	}
	n := rng.Intn(4)
	out := ""
	for i := 0; i <= n; i++ {
		if i > 0 {
			out += " "
		}
		out += words[rng.Intn(len(words))]
	}
	return out
}

// TestSimilarityFeatureEquivalence is the property test of the ISSUE's
// equivalence contract: for random tokens and stored values across all
// MatchKinds, the cached-feature similarity must equal the naive
// recomputation exactly (==, not within epsilon).
func TestSimilarityFeatureEquivalence(t *testing.T) {
	_, tab := propTable(t)
	rng := rand.New(rand.NewSource(42))
	const rows = 40
	for r := 0; r < rows; r++ {
		tab.MustInsert(
			warehouse.StringValue(randomSurface(rng)),
			warehouse.StringValue(randomSurface(rng)),
			warehouse.StringValue(randomSurface(rng)),
			warehouse.StringValue(randomSurface(rng)),
			warehouse.StringValue(randomSurface(rng)),
		)
	}
	kinds := []struct {
		col  string
		kind warehouse.MatchKind
	}{
		{"exact", warehouse.MatchExact},
		{"name", warehouse.MatchName},
		{"text", warehouse.MatchText},
		{"digits", warehouse.MatchDigits},
		{"amount", warehouse.MatchNumeric},
	}
	for trial := 0; trial < 60; trial++ {
		token := randomSurface(rng)
		for _, kc := range kinds {
			feats := tab.Features(kc.col)
			ctx := &linkCtx{byText: map[string]*tokenFeats{}}
			ca := &ctxAttr{kind: kc.kind, col: kc.col, tab: tab, feats: feats}
			tf := &tokenFeats{text: token, lower: strings.ToLower(token), memo: make([]map[warehouse.RowID]float64, 1)}
			for row := 0; row < rows; row++ {
				naive := similarity(kc.kind, token, tab.GetString(warehouse.RowID(row), kc.col))
				cached := ctx.featSim(tf, ca, warehouse.RowID(row))
				if naive != cached {
					t.Fatalf("kind=%v token=%q row=%d: naive=%v cached=%v",
						kc.kind, token, row, naive, cached)
				}
			}
		}
	}
}

// TestLinkNaiveOracleEquivalence compares every public link entry point
// against the naive oracle on the shared fixture.
func TestLinkNaiveOracleEquivalence(t *testing.T) {
	e := testEngine(t, testDB(t))
	docs := [][]Token{
		{{Text: "jon", Type: TokName}, {Text: "smth", Type: TokName}, {Text: "987654", Type: TokDigits}},
		{{Text: "mary", Type: TokName}, {Text: "150", Type: TokAmount}},
		{{Text: "4111222233334444", Type: TokDigits}},
		{{Text: "robert", Type: TokName}, {Text: "robert", Type: TokName}}, // duplicate tokens share memo
		{{Text: "zzzz", Type: TokName}},                                   // no candidates anywhere
		{},
	}
	defer func() { UseNaiveSimilarity = false }()
	for di, doc := range docs {
		for _, k := range []int{1, 2, 3} {
			UseNaiveSimilarity = true
			wantLink := e.Link(doc, k)
			wantScan := e.LinkFullScan(doc, k)
			wantTab := e.LinkTable(doc, "customers", k)
			UseNaiveSimilarity = false
			if got := e.Link(doc, k); !reflect.DeepEqual(got, wantLink) {
				t.Errorf("doc %d k=%d Link: got %v want %v", di, k, got, wantLink)
			}
			if got := e.LinkFullScan(doc, k); !reflect.DeepEqual(got, wantScan) {
				t.Errorf("doc %d k=%d LinkFullScan: got %v want %v", di, k, got, wantScan)
			}
			if got := e.LinkTable(doc, "customers", k); !reflect.DeepEqual(got, wantTab) {
				t.Errorf("doc %d k=%d LinkTable: got %v want %v", di, k, got, wantTab)
			}
		}
	}
}

// TestLinkIndividualBestPinned pins the shared-lists rewrite of
// LinkIndividualBest against a reference implementation of the original
// algorithm (one LinkTable call per token).
func TestLinkIndividualBestPinned(t *testing.T) {
	e := testEngine(t, testDB(t))
	reference := func(tokens []Token, table string) (Match, bool) {
		votes := map[warehouse.RowID]int{}
		for _, tok := range tokens {
			m := e.LinkTable([]Token{tok}, table, 1)
			if len(m) == 1 {
				votes[m[0].Row]++
			}
		}
		bestRow, bestVotes := warehouse.RowID(-1), 0
		for row, v := range votes {
			if v > bestVotes || (v == bestVotes && row < bestRow) {
				bestRow, bestVotes = row, v
			}
		}
		if bestVotes == 0 {
			return Match{}, false
		}
		return Match{Table: table, Row: bestRow, Score: float64(bestVotes)}, true
	}
	docs := [][]Token{
		{{Text: "jon", Type: TokName}, {Text: "smith", Type: TokName}, {Text: "9876543210", Type: TokDigits}},
		{{Text: "mary", Type: TokName}, {Text: "jones", Type: TokName}},
		{{Text: "susan", Type: TokName}, {Text: "9000011111", Type: TokDigits}, {Text: "wilson", Type: TokName}},
		{{Text: "zzzz", Type: TokName}},
		{},
	}
	for di, doc := range docs {
		wantM, wantOK := reference(doc, "customers")
		gotM, gotOK := e.LinkIndividualBest(doc, "customers")
		if gotOK != wantOK || gotM != wantM {
			t.Errorf("doc %d: got (%v,%v) want (%v,%v)", di, gotM, gotOK, wantM, wantOK)
		}
	}
}

// TestTopKMatchesSortTruncate cross-checks the bounded heap against the
// sort-and-truncate baseline on random match streams.
func TestTopKMatchesSortTruncate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(5)
		n := rng.Intn(30)
		heap := topK{k: k}
		var all []Match
		for i := 0; i < n; i++ {
			// Duplicate scores are common (quantized similarity sums); rows
			// are unique as in the merge (seen-set dedup).
			m := Match{Table: "t", Row: warehouse.RowID(i), Score: float64(rng.Intn(6)) / 3}
			heap.push(m)
			all = append(all, m)
		}
		want := append([]Match(nil), all...)
		sortMatchesDesc(want)
		if len(want) > k {
			want = want[:k]
		}
		got := heap.sorted()
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d k=%d: heap %v want %v", trial, k, got, want)
		}
	}
}

func sortMatchesDesc(ms []Match) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && outranks(ms[j], ms[j-1]); j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}
