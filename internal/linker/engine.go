package linker

import (
	"fmt"
	"sort"
	"strings"

	"bivoc/internal/fuzzy"
	"bivoc/internal/phonetics"
	"bivoc/internal/warehouse"
)

// Attribute names one matchable column of one entity type (table).
type Attribute struct {
	Table  string
	Column string
}

func (a Attribute) String() string { return a.Table + "." + a.Column }

// Engine links annotated documents to warehouse entities.
type Engine struct {
	db *warehouse.DB
	// targets maps each token type to the attributes it may match — the
	// annotator-to-attribute routing of §IV.B.
	targets map[TokenType][]Attribute
	// weights holds w_jk: the weight of attribute j for entity type k
	// (Eqn 3). Initialized uniform; LearnWeights re-estimates them.
	weights map[Attribute]float64
	// simFloor discards candidate matches below this similarity so junk
	// tokens do not accumulate score.
	simFloor float64
	// attrOrder/attrIndex give every configured attribute a dense
	// engine-wide index, used by the per-call similarity memo (see
	// hotpath.go) to key cached scores without hashing Attribute structs.
	attrOrder []Attribute
	attrIndex map[Attribute]int
}

// Config declares the attribute routing for an engine.
type Config struct {
	// Targets routes token types to attributes. Every attribute must
	// exist in the database with a compatible MatchKind.
	Targets map[TokenType][]Attribute
	// SimFloor is the minimum per-token similarity contributing to a
	// score (default 0.55).
	SimFloor float64
}

// NewEngine validates the config against the database and returns an
// engine with uniform attribute weights.
func NewEngine(db *warehouse.DB, cfg Config) (*Engine, error) {
	e := &Engine{
		db:        db,
		targets:   make(map[TokenType][]Attribute),
		weights:   make(map[Attribute]float64),
		simFloor:  cfg.SimFloor,
		attrIndex: make(map[Attribute]int),
	}
	if e.simFloor <= 0 {
		e.simFloor = 0.55
	}
	perTable := map[string]int{}
	for tt, attrs := range cfg.Targets {
		for _, at := range attrs {
			tab, ok := db.Table(at.Table)
			if !ok {
				return nil, fmt.Errorf("linker: unknown table %s", at.Table)
			}
			if col := schemaCol(tab.Schema(), at.Column); col < 0 {
				return nil, fmt.Errorf("linker: unknown column %s", at)
			}
			e.targets[tt] = append(e.targets[tt], at)
			perTable[at.Table]++
		}
	}
	if len(e.targets) == 0 {
		return nil, fmt.Errorf("linker: no attribute targets configured")
	}
	// Uniform initial weights per entity type.
	seen := map[Attribute]bool{}
	for _, attrs := range e.targets {
		for _, at := range attrs {
			if !seen[at] {
				seen[at] = true
				e.weights[at] = 1 / float64(perTable[at.Table])
				e.attrIndex[at] = len(e.attrOrder)
				e.attrOrder = append(e.attrOrder, at)
			}
		}
	}
	return e, nil
}

func schemaCol(s warehouse.Schema, name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Weight returns the current weight of an attribute.
func (e *Engine) Weight(at Attribute) float64 { return e.weights[at] }

// SetWeight overrides one attribute weight (tests and ablations).
func (e *Engine) SetWeight(at Attribute, w float64) { e.weights[at] = w }

// Tables returns the entity types the engine links against, sorted.
func (e *Engine) Tables() []string {
	set := map[string]bool{}
	for _, attrs := range e.targets {
		for _, at := range attrs {
			set[at.Table] = true
		}
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// similarity scores token text against a stored attribute value using
// the column's declared MatchKind — the pluggable sim(t_i, e.A_j) of
// Eqn 2.
func similarity(kind warehouse.MatchKind, token, value string) float64 {
	token = strings.ToLower(token)
	value = strings.ToLower(value)
	switch kind {
	case warehouse.MatchName:
		// Blend orthographic similarity (Jaro-Winkler over the best value
		// word) with phonetic similarity: ASR errors substitute
		// similar-SOUNDING names (§IV.A.1), which can be orthographically
		// distant ("geoffrey"/"jeffrey").
		best := fuzzy.TokenSetSimilarityBest(token, value)
		tokPhones := phonetics.ToPhones(token)
		for _, w := range strings.Fields(value) {
			if ps := phonetics.PhoneSimilarity(tokPhones, phonetics.ToPhones(w)); ps > best {
				best = ps
			}
		}
		return best
	case warehouse.MatchDigits:
		return fuzzy.DigitSimilarity(token, value)
	case warehouse.MatchText:
		return fuzzy.DiceNGram(token, value, 3)
	case warehouse.MatchNumeric:
		tv, ok1 := ParseAmount(token)
		vv, ok2 := ParseAmount(value)
		if !ok1 || !ok2 {
			return 0
		}
		return fuzzy.NumericProximity(tv, vv, 0.5)
	default:
		if token == value {
			return 1
		}
		return 0
	}
}

// floorFor returns the per-kind similarity floor. Digit evidence is
// inherently partial — the paper's example is 6 of 10 phone digits
// recognized, and fragments shorter still carry signal when combined
// with other entities — so the digit floor sits well below the name and
// text floor.
func (e *Engine) floorFor(kind warehouse.MatchKind) float64 {
	if kind == warehouse.MatchDigits {
		return e.simFloor * 0.4
	}
	return e.simFloor
}

// Match is one linked entity with its aggregate score.
type Match struct {
	Table string
	Row   warehouse.RowID
	Score float64
}

// scoreEntity computes the full Eqn-3 score of an entity for the tokens
// through a one-shot link context (tests and single-scoring callers; the
// link entry points thread a shared context instead).
func (e *Engine) scoreEntity(tokens []Token, table string, row warehouse.RowID) float64 {
	ctx := e.newLinkCtx()
	return ctx.scoreEntity(tokens, ctx.resolveFeats(tokens), ctx.route(table), row)
}

// tokenList is one token's ranked candidate list within a table.
type tokenList struct {
	entries []listEntry // sorted by score desc
}

type listEntry struct {
	row   warehouse.RowID
	score float64 // weighted similarity for this token only
}

// buildLists produces per-token ranked lists for a table via the fuzzy
// indexes ("performing fuzzy match on each extracted token ... results
// in a ranked list of possible entities"). Lists are aligned with
// tokens — a token with no surviving candidates gets an empty list,
// which the TA merge treats as immediately exhausted — so callers like
// LinkIndividualBest can slice per token without rebuilding.
func (ctx *linkCtx) buildLists(tokens []Token, feats []*tokenFeats, route map[TokenType][]ctxAttr, table string) []tokenList {
	lists := make([]tokenList, len(tokens))
	for i := range tokens {
		best := map[warehouse.RowID]float64{}
		cas := route[tokens[i].Type]
		for j := range cas {
			ca := &cas[j]
			ctx.buf = ca.tab.CandidatesAppend(ctx.buf, ca.col, tokens[i].Text)
			for _, row := range ctx.buf {
				sim := ctx.sim(feats[i], ca, row)
				if sim < ca.floor {
					continue
				}
				w := ca.weight * sim
				if w > best[row] {
					best[row] = w
				}
			}
		}
		if len(best) == 0 {
			continue
		}
		tl := tokenList{entries: make([]listEntry, 0, len(best))}
		for row, s := range best {
			tl.entries = append(tl.entries, listEntry{row, s})
		}
		sort.Slice(tl.entries, func(i, j int) bool {
			if tl.entries[i].score != tl.entries[j].score {
				return tl.entries[i].score > tl.entries[j].score
			}
			return tl.entries[i].row < tl.entries[j].row
		})
		lists[i] = tl
	}
	return lists
}

// thresholdMerge runs the Threshold Algorithm (the Fagin-family merge of
// §IV.B) over per-token ranked lists: pop lists round-robin; for each
// newly seen entity compute its exact aggregate score by random access;
// stop when the k-th best score reaches the threshold τ = Σ_i (current
// list frontier scores), which bounds every unseen entity.
func (ctx *linkCtx) thresholdMerge(tokens []Token, feats []*tokenFeats, route map[TokenType][]ctxAttr, table string, lists []tokenList, k int) []Match {
	if len(lists) == 0 {
		return nil
	}
	pos := make([]int, len(lists))
	seen := map[warehouse.RowID]bool{}
	top := topK{k: k}
	for {
		advanced := false
		for li := range lists {
			if pos[li] >= len(lists[li].entries) {
				continue
			}
			entry := lists[li].entries[pos[li]]
			pos[li]++
			advanced = true
			if !seen[entry.row] {
				seen[entry.row] = true
				top.push(Match{Table: table, Row: entry.row, Score: ctx.scoreEntity(tokens, feats, route, entry.row)})
			}
		}
		if !advanced {
			break
		}
		// Threshold: sum of frontier scores across lists.
		tau := 0.0
		exhausted := true
		for li := range lists {
			if pos[li] < len(lists[li].entries) {
				tau += lists[li].entries[pos[li]].score
				exhausted = false
			}
		}
		if exhausted {
			break
		}
		if top.full() && top.kth().Score >= tau {
			break
		}
	}
	return top.sorted()
}

// linkTable runs build + merge for one table within a shared context.
func (ctx *linkCtx) linkTable(tokens []Token, feats []*tokenFeats, table string, k int) []Match {
	route := ctx.route(table)
	lists := ctx.buildLists(tokens, feats, route, table)
	return ctx.thresholdMerge(tokens, feats, route, table, lists, k)
}

// LinkTable solves the single-type entity identification problem:
// top-k entities of one table for the document's tokens (Eqn 2).
func (e *Engine) LinkTable(tokens []Token, table string, k int) []Match {
	if k <= 0 {
		k = 1
	}
	ctx := e.newLinkCtx()
	return ctx.linkTable(tokens, ctx.resolveFeats(tokens), table, k)
}

// Link solves the multi-type problem: top-k (entity, type) pairs across
// all configured tables (Eqn 3). Scores across tables are comparable
// because weights are normalized per type.
func (e *Engine) Link(tokens []Token, k int) []Match {
	if k <= 0 {
		k = 1
	}
	ctx := e.newLinkCtx()
	feats := ctx.resolveFeats(tokens)
	var all []Match
	for _, table := range e.Tables() {
		all = append(all, ctx.linkTable(tokens, feats, table, k)...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		if all[i].Table != all[j].Table {
			return all[i].Table < all[j].Table
		}
		return all[i].Row < all[j].Row
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// LinkFullScan is the naive baseline: score every row of every table
// (no candidate generation, no threshold early-exit). Kept for the
// ablation benchmark quantifying the paper's efficiency claim.
func (e *Engine) LinkFullScan(tokens []Token, k int) []Match {
	if k <= 0 {
		k = 1
	}
	ctx := e.newLinkCtx()
	feats := ctx.resolveFeats(tokens)
	var all []Match
	for _, table := range e.Tables() {
		route := ctx.route(table)
		tab := e.db.MustTable(table)
		for row := 0; row < tab.Len(); row++ {
			s := ctx.scoreEntity(tokens, feats, route, warehouse.RowID(row))
			if s > 0 {
				all = append(all, Match{Table: table, Row: warehouse.RowID(row), Score: s})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		if all[i].Table != all[j].Table {
			return all[i].Table < all[j].Table
		}
		return all[i].Row < all[j].Row
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// LinkIndividualBest is the per-entity-token baseline for the paper's
// combination claim ("As opposed to finding the identity based on
// individual entities we take all the partially recognized entities
// together"): each token votes for its single best entity and the
// entity with the most votes wins.
// Candidate lists are built once and sliced per token — the old
// implementation rebuilt every list from scratch per token, turning the
// vote into a quadratic pass.
func (e *Engine) LinkIndividualBest(tokens []Token, table string) (Match, bool) {
	ctx := e.newLinkCtx()
	feats := ctx.resolveFeats(tokens)
	route := ctx.route(table)
	lists := ctx.buildLists(tokens, feats, route, table)
	votes := map[warehouse.RowID]int{}
	for i := range tokens {
		m := ctx.thresholdMerge(tokens[i:i+1], feats[i:i+1], route, table, lists[i:i+1], 1)
		if len(m) == 1 {
			votes[m[0].Row]++
		}
	}
	bestRow, bestVotes := warehouse.RowID(-1), 0
	for row, v := range votes {
		if v > bestVotes || (v == bestVotes && row < bestRow) {
			bestRow, bestVotes = row, v
		}
	}
	if bestVotes == 0 {
		return Match{}, false
	}
	return Match{Table: table, Row: bestRow, Score: float64(bestVotes)}, true
}
