package linker

import (
	"sort"

	"bivoc/internal/warehouse"
)

// LearnWeights runs the unsupervised EM-style weight estimation of
// §IV.B: "We start from an initial estimate of the weights, which we use
// to assign each document to an entity of a specific type. From this
// assignment, we re-estimate the weights as w_ij = n_ij / Σ n_ij, where
// n_ij is the number of occurrences of attribute A_i in documents
// assigned to type T_j. This two-step process is continued for a fixed
// number of iterations or until convergence."
//
// An "occurrence of attribute A_i" is a token whose similarity against
// the assigned entity's attribute A_i clears the engine's floor. The
// returned history holds, per iteration, the total weight change — zero
// change means convergence.
func (e *Engine) LearnWeights(docs [][]Token, iterations int) []float64 {
	if iterations <= 0 {
		iterations = 5
	}
	var history []float64
	const floorWeight = 1e-3
	for it := 0; it < iterations; it++ {
		// E-step: assign each document to its best (entity, type) pair
		// under current weights.
		counts := map[Attribute]float64{}
		typeTotals := map[string]float64{}
		for _, tokens := range docs {
			m := e.Link(tokens, 1)
			if len(m) == 0 {
				continue
			}
			assigned := m[0]
			tab := e.db.MustTable(assigned.Table)
			schema := tab.Schema()
			for _, tok := range tokens {
				for _, at := range e.targets[tok.Type] {
					if at.Table != assigned.Table {
						continue
					}
					ci := schemaCol(schema, at.Column)
					sim := similarity(schema.Columns[ci].Match, tok.Text, tab.GetString(assigned.Row, at.Column))
					if sim >= e.floorFor(schema.Columns[ci].Match) {
						counts[at]++
						typeTotals[at.Table]++
					}
				}
			}
		}
		// M-step: re-normalize per type, with a floor so attributes that
		// happened to match nothing this round can recover.
		delta := 0.0
		for at, old := range e.weights {
			total := typeTotals[at.Table]
			var next float64
			if total > 0 {
				next = counts[at] / total
			} else {
				next = old // no evidence for this type this round
			}
			if next < floorWeight {
				next = floorWeight
			}
			delta += abs(next - old)
			e.weights[at] = next
		}
		// Renormalize per table after flooring.
		e.normalizeWeights()
		history = append(history, delta)
		if delta < 1e-9 {
			break
		}
	}
	return history
}

func (e *Engine) normalizeWeights() {
	totals := map[string]float64{}
	for at, w := range e.weights {
		totals[at.Table] += w
	}
	for at, w := range e.weights {
		if t := totals[at.Table]; t > 0 {
			e.weights[at] = w / t
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Weights returns a copy of the current attribute weights, for reporting
// and tests.
func (e *Engine) Weights() map[Attribute]float64 {
	out := make(map[Attribute]float64, len(e.weights))
	for k, v := range e.weights {
		out[k] = v
	}
	return out
}

// GoldLabel is the true entity for an evaluation document.
type GoldLabel struct {
	Table string
	Row   warehouse.RowID
}

// EvalResult summarizes linking quality over a labeled corpus. The paper
// discusses linking recall and precision qualitatively; the churn use
// case reports the unlinkable fraction (≈18% of emails).
type EvalResult struct {
	Docs       int
	Linked     int // documents with at least one match
	Correct    int // top-1 match equals gold
	CorrectIn  int // gold appears within top-k
	Unlinkable int // no match produced
	K          int
}

// Precision returns Correct / Linked.
func (r EvalResult) Precision() float64 {
	if r.Linked == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Linked)
}

// Recall returns Correct / Docs.
func (r EvalResult) Recall() float64 {
	if r.Docs == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Docs)
}

// RecallAtK returns CorrectIn / Docs.
func (r EvalResult) RecallAtK() float64 {
	if r.Docs == 0 {
		return 0
	}
	return float64(r.CorrectIn) / float64(r.Docs)
}

// UnlinkableRate returns Unlinkable / Docs.
func (r EvalResult) UnlinkableRate() float64 {
	if r.Docs == 0 {
		return 0
	}
	return float64(r.Unlinkable) / float64(r.Docs)
}

// Evaluate links every document and scores against gold labels. Docs
// with a nil gold entry count toward the total and are correct only if
// they produce no link (they represent non-customers).
func (e *Engine) Evaluate(docs [][]Token, gold []*GoldLabel, k int) EvalResult {
	if k <= 0 {
		k = 1
	}
	res := EvalResult{Docs: len(docs), K: k}
	for i, tokens := range docs {
		matches := e.Link(tokens, k)
		if len(matches) == 0 {
			res.Unlinkable++
			continue
		}
		res.Linked++
		g := gold[i]
		if g == nil {
			continue // spurious link for a non-customer
		}
		if matches[0].Table == g.Table && matches[0].Row == g.Row {
			res.Correct++
		}
		for _, m := range matches {
			if m.Table == g.Table && m.Row == g.Row {
				res.CorrectIn++
				break
			}
		}
	}
	return res
}

// TopNames returns the distinct values of a name attribute among the
// top-k matches — the candidate list handed to the second-pass ASR
// (§IV.A.1: "extract topN matching identities from the structured
// database ... to limit the number of possibilities for a named entity").
func (e *Engine) TopNames(tokens []Token, table, column string, k int) []string {
	matches := e.LinkTable(tokens, table, k)
	tab := e.db.MustTable(table)
	seen := map[string]bool{}
	var out []string
	for _, m := range matches {
		full := tab.GetString(m.Row, column)
		for _, w := range splitWords(full) {
			if !seen[w] {
				seen[w] = true
				out = append(out, w)
			}
		}
	}
	sort.Strings(out)
	return out
}

func splitWords(s string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(s); i++ {
		if i < len(s) && s[i] != ' ' {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			out = append(out, lower(s[start:i]))
			start = -1
		}
	}
	return out
}

func lower(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}
