package linker

import (
	"fmt"
	"testing"

	"bivoc/internal/rng"
	"bivoc/internal/warehouse"
)

// Multi-type identification at scale: a corpus of documents that each
// reference one of three entity types (customer / transaction / card),
// evaluated before and after EM weight learning. This is the §IV.B
// scenario end to end — including the overlapping-attribute ambiguity
// the per-type weights exist to resolve.

func multiTypeWorld(t *testing.T, n int) (*warehouse.DB, []Customer3) {
	t.Helper()
	db := warehouse.NewDB()
	customers, err := db.CreateTable(warehouse.Schema{
		Table: "customers", Key: "id",
		Columns: []warehouse.Column{
			{Name: "id", Type: warehouse.TypeString, Match: warehouse.MatchExact},
			{Name: "name", Type: warehouse.TypeString, Match: warehouse.MatchName},
			{Name: "phone", Type: warehouse.TypeString, Match: warehouse.MatchDigits},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	transactions, err := db.CreateTable(warehouse.Schema{
		Table: "transactions", Key: "id",
		Columns: []warehouse.Column{
			{Name: "id", Type: warehouse.TypeString, Match: warehouse.MatchExact},
			{Name: "customer", Type: warehouse.TypeString, Match: warehouse.MatchName},
			{Name: "amount", Type: warehouse.TypeFloat, Match: warehouse.MatchNumeric},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cards, err := db.CreateTable(warehouse.Schema{
		Table: "cards", Key: "id",
		Columns: []warehouse.Column{
			{Name: "id", Type: warehouse.TypeString, Match: warehouse.MatchExact},
			{Name: "number", Type: warehouse.TypeString, Match: warehouse.MatchDigits},
			{Name: "holder", Type: warehouse.TypeString, Match: warehouse.MatchName},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	givens := []string{"alice", "bruno", "carla", "dmitri", "elena", "farid", "greta", "hassan", "ingrid", "jorge"}
	surs := []string{"keller", "lindqvist", "moreau", "novak", "okafor", "petrov", "quinn", "rossi", "santos", "tanaka"}
	var out []Customer3
	for i := 0; i < n; i++ {
		c := Customer3{
			ID:    fmt.Sprintf("c%03d", i),
			Name:  givens[r.Intn(len(givens))] + " " + surs[r.Intn(len(surs))],
			Phone: fmt.Sprintf("9%09d", r.Intn(1000000000)),
		}
		out = append(out, c)
		customers.MustInsert(
			warehouse.StringValue(c.ID),
			warehouse.StringValue(c.Name),
			warehouse.StringValue(c.Phone),
		)
		transactions.MustInsert(
			warehouse.StringValue("t"+c.ID),
			warehouse.StringValue(c.Name),
			warehouse.FloatValue(float64(100+i*13)),
		)
		cards.MustInsert(
			warehouse.StringValue("k"+c.ID),
			warehouse.StringValue(fmt.Sprintf("4%015d", r.Intn(1000000000))),
			warehouse.StringValue(c.Name),
		)
	}
	return db, out
}

// Customer3 is a test-world customer.
type Customer3 struct {
	ID    string
	Name  string
	Phone string
}

func multiTypeEngine(t *testing.T, db *warehouse.DB) *Engine {
	t.Helper()
	e, err := NewEngine(db, Config{Targets: map[TokenType][]Attribute{
		TokName: {
			{Table: "customers", Column: "name"},
			{Table: "transactions", Column: "customer"},
			{Table: "cards", Column: "holder"},
		},
		TokDigits: {
			{Table: "customers", Column: "phone"},
			{Table: "cards", Column: "number"},
		},
		TokAmount: {
			{Table: "transactions", Column: "amount"},
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func splitName(full string) (string, string) {
	for i := 0; i < len(full); i++ {
		if full[i] == ' ' {
			return full[:i], full[i+1:]
		}
	}
	return full, ""
}

func TestMultiTypeCorpusIdentification(t *testing.T) {
	db, customers := multiTypeWorld(t, 60)
	e := multiTypeEngine(t, db)

	// Customer documents: name + phone. They must resolve to the
	// customers table (phone evidence), not transactions or cards.
	custTab := db.MustTable("customers")
	correct := 0
	for _, c := range customers[:30] {
		given, sur := splitName(c.Name)
		tokens := []Token{
			{Text: given, Type: TokName},
			{Text: sur, Type: TokName},
			{Text: c.Phone, Type: TokDigits},
		}
		m := e.Link(tokens, 1)
		if len(m) == 1 && m[0].Table == "customers" &&
			custTab.GetString(m[0].Row, "id") == c.ID {
			correct++
		}
	}
	if correct < 27 {
		t.Errorf("customer-doc identification: %d/30", correct)
	}

	// Transaction documents: name + exact amount → transactions type.
	txTab := db.MustTable("transactions")
	txCorrect := 0
	for i, c := range customers[:30] {
		given, sur := splitName(c.Name)
		tokens := []Token{
			{Text: given, Type: TokName},
			{Text: sur, Type: TokName},
			{Text: fmt.Sprintf("%d", 100+i*13), Type: TokAmount},
		}
		m := e.Link(tokens, 1)
		if len(m) == 1 && m[0].Table == "transactions" &&
			txTab.GetString(m[0].Row, "id") == "t"+c.ID {
			txCorrect++
		}
	}
	if txCorrect < 20 {
		t.Errorf("transaction-doc identification: %d/30", txCorrect)
	}
}

func TestMultiTypeEMImprovesOrPreserves(t *testing.T) {
	db, customers := multiTypeWorld(t, 60)

	// Mixed corpus: half customer docs, half transaction docs.
	var docs [][]Token
	var gold []*GoldLabel
	custTab := db.MustTable("customers")
	txTab := db.MustTable("transactions")
	for i, c := range customers {
		given, sur := splitName(c.Name)
		if i%2 == 0 {
			docs = append(docs, []Token{
				{Text: given, Type: TokName}, {Text: sur, Type: TokName},
				{Text: c.Phone, Type: TokDigits},
			})
			row, _ := custTab.ByKey(c.ID)
			gold = append(gold, &GoldLabel{Table: "customers", Row: row})
		} else {
			docs = append(docs, []Token{
				{Text: given, Type: TokName}, {Text: sur, Type: TokName},
				{Text: fmt.Sprintf("%d", 100+i*13), Type: TokAmount},
			})
			row, _ := txTab.ByKey("t" + c.ID)
			gold = append(gold, &GoldLabel{Table: "transactions", Row: row})
		}
	}
	uniform := multiTypeEngine(t, db)
	before := uniform.Evaluate(docs, gold, 1)

	em := multiTypeEngine(t, db)
	em.LearnWeights(docs, 5)
	after := em.Evaluate(docs, gold, 1)

	if after.Recall() < before.Recall()-0.05 {
		t.Errorf("EM hurt multi-type recall: %v → %v", before.Recall(), after.Recall())
	}
	if after.Recall() < 0.5 {
		t.Errorf("multi-type recall too low after EM: %v", after.Recall())
	}
}
