// Package linker implements the data-linking engine of BIVoC (§IV.B) —
// the paper's core technical contribution: identifying, for a noisy
// unstructured document, the structured-database entity (and entity
// type) the document is about.
//
// The pipeline is exactly the paper's: annotators extract typed tokens
// from the document; each token is fuzzily matched against a small
// subset of entity attributes; per-token ranked candidate lists are
// merged with a Fagin/Threshold-Algorithm top-k merge (Eqn 2 for the
// single-type problem); for the multi-type problem the score carries
// per-(attribute, entity-type) weights (Eqn 3), learned unsupervised
// with an EM-style procedure when no labeled documents exist.
package linker

import (
	"strconv"
	"strings"

	"bivoc/internal/phonetics"
	"bivoc/internal/textproc"
)

// TokenType is the annotator that produced a token — it determines which
// entity attributes the token is matched against ("we use annotators to
// extract relevant tokens ... and then map each extracted token to a
// small subset of the attributes").
type TokenType uint8

// Token types produced by the built-in annotators.
const (
	TokName   TokenType = iota // person name mention
	TokDigits                  // phone/card/receipt number fragment
	TokAmount                  // monetary amount
	TokPlace                   // location mention
	TokWord                    // other content word (rarely used for linking)
)

func (t TokenType) String() string {
	switch t {
	case TokName:
		return "name"
	case TokDigits:
		return "digits"
	case TokAmount:
		return "amount"
	case TokPlace:
		return "place"
	default:
		return "word"
	}
}

// Token is an annotated span from a document.
type Token struct {
	Text string
	Type TokenType
}

// Annotators holds the dictionaries the token extractor uses. The paper
// builds these per engagement ("using a Name annotator, for example, we
// can extract all the names from the document").
type Annotators struct {
	// Names is the lowercase name lexicon (given names and surnames).
	Names map[string]bool
	// Places is the lowercase location lexicon.
	Places map[string]bool
	// CurrencyMarkers are words that mark a following (or preceding)
	// number as an amount: "rs", "rupees", "dollars", "$".
	CurrencyMarkers map[string]bool
	// MinDigits is the minimum digit-run length treated as an identifier
	// fragment (defaults to 3).
	MinDigits int
}

// NewAnnotators returns annotators with the given lexicons and standard
// currency markers.
func NewAnnotators(names, places []string) *Annotators {
	a := &Annotators{
		Names:  make(map[string]bool, len(names)),
		Places: make(map[string]bool, len(places)),
		CurrencyMarkers: map[string]bool{
			"rs": true, "rs.": true, "rupees": true, "dollars": true,
			"$": true, "inr": true, "usd": true,
		},
		MinDigits: 3,
	}
	for _, n := range names {
		a.Names[strings.ToLower(n)] = true
	}
	for _, p := range places {
		a.Places[strings.ToLower(p)] = true
	}
	return a
}

// Extract runs the annotators over text, producing typed tokens.
// Consecutive spoken digit words ("five five five one...") are rejoined
// into digit strings first, because ASR transcripts spell numbers out.
// Multi-word names are emitted token-by-token; the scorer's token-set
// similarity reassembles them against full name attributes.
func (a *Annotators) Extract(text string) []Token {
	words := rejoinSpokenDigits(textproc.Words(text))
	var out []Token
	for i := 0; i < len(words); i++ {
		w := words[i]
		switch {
		case textproc.IsNumeric(w):
			digits := len(w)
			min := a.MinDigits
			if min <= 0 {
				min = 3
			}
			switch {
			case a.isAmountContext(words, i):
				out = append(out, Token{Text: w, Type: TokAmount})
			case digits >= min:
				out = append(out, Token{Text: w, Type: TokDigits})
			}
		case a.Names[w]:
			out = append(out, Token{Text: w, Type: TokName})
		case a.Places[w]:
			out = append(out, Token{Text: w, Type: TokPlace})
		}
	}
	return out
}

// isAmountContext reports whether the numeric word at index i sits next
// to a currency marker.
func (a *Annotators) isAmountContext(words []string, i int) bool {
	if i > 0 && a.CurrencyMarkers[words[i-1]] {
		return true
	}
	if i+1 < len(words) && a.CurrencyMarkers[words[i+1]] {
		return true
	}
	return false
}

// ExtractIdentity extracts only identity-bearing tokens, using dialogue
// anchors: name tokens must follow a "name" mention within a short
// window, digit tokens must sit near a "number"/"phone"/"account"
// mention. On conversational transcripts this is far more precise than
// Extract — ASR hallucinates name words freely (names are the
// highest-WER class, Table I), and identity linking must not let those
// hallucinations outvote the customer's actual self-identification.
// When the text contains no anchors (or no entities near them), it
// returns nothing: no identity evidence is better than fabricated
// evidence when the caller will act on the link (e.g. constrain a
// second decoding pass).
func (a *Annotators) ExtractIdentity(text string) []Token {
	words := rejoinSpokenDigits(textproc.Words(text))
	const nameWindow = 4
	const digitWindow = 14
	var out []Token
	for i, w := range words {
		switch w {
		case "name":
			for j := i + 1; j < len(words) && j <= i+nameWindow; j++ {
				if a.Names[words[j]] {
					out = append(out, Token{Text: words[j], Type: TokName})
				}
			}
		case "number", "phone", "account", "birth":
			for j := i + 1; j < len(words) && j <= i+digitWindow; j++ {
				if textproc.IsNumeric(words[j]) && len(words[j]) >= 3 {
					out = append(out, Token{Text: words[j], Type: TokDigits})
				}
			}
		}
		// Place mentions need no anchor: the location inventory is small
		// and distinctive, and a location is corroborating (never
		// identifying) evidence.
		if a.Places[w] {
			out = append(out, Token{Text: w, Type: TokPlace})
		}
	}
	return dedupeTokens(out)
}

func dedupeTokens(toks []Token) []Token {
	seen := map[Token]bool{}
	out := toks[:0]
	for _, t := range toks {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// rejoinSpokenDigits collapses runs of spoken digit words into digit
// strings: ["five","five","five","one"] → ["5551"]. Runs shorter than 3
// are left as words ("one car" stays "one car").
func rejoinSpokenDigits(words []string) []string {
	var out []string
	i := 0
	for i < len(words) {
		var digits []byte
		j := i
		for j < len(words) {
			d, ok := phonetics.WordForDigitWord(words[j])
			if !ok {
				break
			}
			digits = append(digits, d)
			j++
		}
		if len(digits) >= 3 {
			out = append(out, string(digits))
			i = j
			continue
		}
		out = append(out, words[i])
		i++
	}
	return out
}

// ParseAmount extracts the numeric value of an amount token.
func ParseAmount(text string) (float64, bool) {
	v, err := strconv.ParseFloat(strings.TrimSpace(text), 64)
	if err != nil {
		return 0, false
	}
	return v, true
}
