package linker

import (
	"sort"
	"strings"

	"bivoc/internal/fuzzy"
	"bivoc/internal/phonetics"
	"bivoc/internal/warehouse"
)

// UseNaiveSimilarity forces link calls to score with the naive
// recompute-everything similarity instead of warehouse-cached match
// features. It exists as a test oracle: equivalence tests flip it to
// prove the optimized path is byte-identical to the original. The flag
// is read once per link call (into the call's linkCtx), so concurrent
// link calls each see a consistent setting.
var UseNaiveSimilarity bool

// tokenFeats caches the derived forms of one document token for the
// lifetime of a single link call: the lowercase text plus, lazily, its
// phone sequence, trigram set, digit string and parsed amount — exactly
// the pieces the naive similarity re-derives on every comparison. memo
// additionally caches full similarity results per (attribute, row):
// buildLists' sorted access fills it and scoreEntity's random access
// (the Threshold Algorithm's expensive half) replays it.
type tokenFeats struct {
	text  string
	lower string

	phones     []phonetics.Phone
	phonesOK   bool
	grams      map[string]struct{}
	digits     string
	digitsOK   bool
	amount     float64
	amountOK   bool
	amountDone bool

	// memo is indexed by the engine-wide attribute index (Engine.attrIndex).
	memo []map[warehouse.RowID]float64
}

func (tf *tokenFeats) namePhones() []phonetics.Phone {
	if !tf.phonesOK {
		tf.phones = phonetics.ToPhones(tf.lower)
		tf.phonesOK = true
	}
	return tf.phones
}

func (tf *tokenFeats) gramSet() map[string]struct{} {
	if tf.grams == nil {
		tf.grams = fuzzy.NGramSet(tf.lower, 3)
	}
	return tf.grams
}

func (tf *tokenFeats) digitStr() string {
	if !tf.digitsOK {
		tf.digits = fuzzy.DigitString(tf.lower)
		tf.digitsOK = true
	}
	return tf.digits
}

func (tf *tokenFeats) amountVal() (float64, bool) {
	if !tf.amountDone {
		tf.amount, tf.amountOK = ParseAmount(tf.lower)
		tf.amountDone = true
	}
	return tf.amount, tf.amountOK
}

// ctxAttr is one resolved token-type→attribute route within a table:
// the attribute's weight, kind and floor snapshotted for the call, plus
// direct handles on the table and its cached per-row match features.
type ctxAttr struct {
	idx    int // engine-wide attribute index (memo key)
	weight float64
	kind   warehouse.MatchKind
	floor  float64
	col    string
	tab    *warehouse.Table
	feats  []warehouse.MatchFeatures
}

// linkCtx is the scratch state of one link call. The engine itself stays
// read-only during linking (the churn pipeline links from several
// workers concurrently), so everything mutable — token features, the
// similarity memo, the candidate buffer — lives here.
type linkCtx struct {
	e      *Engine
	naive  bool
	byText map[string]*tokenFeats
	buf    []warehouse.RowID
}

func (e *Engine) newLinkCtx() *linkCtx {
	return &linkCtx{e: e, naive: UseNaiveSimilarity, byText: make(map[string]*tokenFeats)}
}

// tokenFeats returns the (shared) feature cache of a token text.
// Duplicate tokens share one entry, so their features and memoized
// similarities are computed once.
func (ctx *linkCtx) tokenFeats(text string) *tokenFeats {
	tf, ok := ctx.byText[text]
	if !ok {
		tf = &tokenFeats{
			text:  text,
			lower: strings.ToLower(text),
			memo:  make([]map[warehouse.RowID]float64, len(ctx.e.attrOrder)),
		}
		ctx.byText[text] = tf
	}
	return tf
}

// resolveFeats maps tokens to their feature caches, aligned by index.
func (ctx *linkCtx) resolveFeats(tokens []Token) []*tokenFeats {
	out := make([]*tokenFeats, len(tokens))
	for i, tok := range tokens {
		out[i] = ctx.tokenFeats(tok.Text)
	}
	return out
}

// route resolves the engine's token-type→attribute targets against one
// table: column kinds, snapshotted weights and floors, and the cached
// feature slices, so the scoring loops touch no maps or schemas.
func (ctx *linkCtx) route(table string) map[TokenType][]ctxAttr {
	out := make(map[TokenType][]ctxAttr)
	tab := ctx.e.db.MustTable(table)
	schema := tab.Schema()
	for tt, attrs := range ctx.e.targets {
		for _, at := range attrs {
			if at.Table != table {
				continue
			}
			ci := schemaCol(schema, at.Column)
			kind := schema.Columns[ci].Match
			out[tt] = append(out[tt], ctxAttr{
				idx:    ctx.e.attrIndex[at],
				weight: ctx.e.weights[at],
				kind:   kind,
				floor:  ctx.e.floorFor(kind),
				col:    at.Column,
				tab:    tab,
				feats:  tab.Features(at.Column),
			})
		}
	}
	return out
}

// sim returns sim(token, row.attribute), memoized per (token, attribute,
// row) so the TA merge's random access never recomputes what sorted
// access already paid for.
func (ctx *linkCtx) sim(tf *tokenFeats, ca *ctxAttr, row warehouse.RowID) float64 {
	m := tf.memo[ca.idx]
	if v, ok := m[row]; ok {
		return v
	}
	var v float64
	if ctx.naive {
		v = similarity(ca.kind, tf.text, ca.tab.GetString(row, ca.col))
	} else {
		v = ctx.featSim(tf, ca, row)
	}
	if m == nil {
		m = make(map[warehouse.RowID]float64)
		tf.memo[ca.idx] = m
	}
	m[row] = v
	return v
}

// featSim is similarity() over cached features. Every branch performs
// the same float operations in the same order as the naive path on the
// same (lowercased) inputs, so results are bit-for-bit identical — the
// equivalence tests in linker_equiv_test.go enforce this.
func (ctx *linkCtx) featSim(tf *tokenFeats, ca *ctxAttr, row warehouse.RowID) float64 {
	f := &ca.feats[row]
	switch ca.kind {
	case warehouse.MatchName:
		best := fuzzy.TokenSetSimilarityBestWords(tf.lower, f.Words)
		tp := tf.namePhones()
		for _, wp := range f.WordPhones {
			if ps := phonetics.PhoneSimilarity(tp, wp); ps > best {
				best = ps
			}
		}
		return best
	case warehouse.MatchDigits:
		return fuzzy.DigitSimilarityDigits(tf.digitStr(), f.Digits)
	case warehouse.MatchText:
		return fuzzy.DiceNGramSets(tf.gramSet(), f.Grams)
	case warehouse.MatchNumeric:
		tv, ok := tf.amountVal()
		if !ok || !f.AmountOK {
			return 0
		}
		return fuzzy.NumericProximity(tv, f.Amount, 0.5)
	default:
		if tf.lower == f.Lower {
			return 1
		}
		return 0
	}
}

// scoreEntity computes the full Eqn-3 score of an entity for the tokens
// (random access in Threshold-Algorithm terms), replaying memoized
// similarities where sorted access already computed them.
func (ctx *linkCtx) scoreEntity(tokens []Token, feats []*tokenFeats, route map[TokenType][]ctxAttr, row warehouse.RowID) float64 {
	total := 0.0
	for i := range tokens {
		cas := route[tokens[i].Type]
		for j := range cas {
			ca := &cas[j]
			sim := ctx.sim(feats[i], ca, row)
			if sim < ca.floor {
				continue
			}
			total += ca.weight * sim
		}
	}
	return total
}

// topK keeps the k best matches under the total order (Score desc, Row
// asc) in a bounded min-heap: the root is the current k-th best, so an
// insertion costs O(log k) instead of the former full re-sort per push,
// and the root is exactly the top[k-1] the TA termination test reads.
// The order is total over distinct rows, so the kept set — and the final
// sorted output — match the sort-and-truncate baseline exactly.
type topK struct {
	k    int
	heap []Match // min-heap by rank: root ranks lowest among kept
}

// outranks reports whether a ranks strictly above b — the same order the
// final result sort uses.
func outranks(a, b Match) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Row < b.Row
}

func (t *topK) full() bool { return len(t.heap) >= t.k }

// kth returns the current k-th best match (only valid when full).
func (t *topK) kth() Match { return t.heap[0] }

func (t *topK) push(m Match) {
	if len(t.heap) < t.k {
		t.heap = append(t.heap, m)
		i := len(t.heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !outranks(t.heap[p], t.heap[i]) {
				break
			}
			t.heap[p], t.heap[i] = t.heap[i], t.heap[p]
			i = p
		}
		return
	}
	if !outranks(m, t.heap[0]) {
		return // ranks below the current k-th best: not kept
	}
	t.heap[0] = m
	i, n := 0, len(t.heap)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && outranks(t.heap[min], t.heap[l]) {
			min = l
		}
		if r < n && outranks(t.heap[min], t.heap[r]) {
			min = r
		}
		if min == i {
			break
		}
		t.heap[i], t.heap[min] = t.heap[min], t.heap[i]
		i = min
	}
}

// sorted returns the kept matches ranked best-first (destructive).
func (t *topK) sorted() []Match {
	out := t.heap
	sort.Slice(out, func(i, j int) bool { return outranks(out[i], out[j]) })
	return out
}
