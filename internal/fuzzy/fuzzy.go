// Package fuzzy implements the attribute similarity measures plugged into
// the BIVoC data-linking engine (§IV.B of the paper). The scoring
// framework there is measure-agnostic — "the best similarity measure
// available for specific attributes can be readily plugged into our
// architecture" — so this package provides the standard family: edit
// distances (Levenshtein, Damerau), Jaro-Winkler for short names,
// character n-gram overlap for longer strings, digit-sequence similarity
// for phone numbers and amounts, and token-set similarity for multi-word
// attributes.
//
// All similarities are in [0, 1] with 1 meaning identical.
package fuzzy

import (
	"strings"
)

// Levenshtein returns the unit-cost edit distance between a and b,
// operating on bytes (inputs are expected to be normalized ASCII-ish
// tokens; noisy VoC text is lowercased before matching).
func Levenshtein(a, b string) int {
	la, lb := len(a), len(b)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	prev := make([]int, lb+1)
	curr := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		curr[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost
			if v := prev[j] + 1; v < m {
				m = v
			}
			if v := curr[j-1] + 1; v < m {
				m = v
			}
			curr[j] = m
		}
		prev, curr = curr, prev
	}
	return prev[lb]
}

// DamerauLevenshtein returns the edit distance allowing adjacent
// transpositions (the restricted/optimal-string-alignment variant), which
// matters for keyboard typos in email and SMS ("teh" → "the").
func DamerauLevenshtein(a, b string) int {
	la, lb := len(a), len(b)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	rows := make([][]int, la+1)
	for i := range rows {
		rows[i] = make([]int, lb+1)
		rows[i][0] = i
	}
	for j := 0; j <= lb; j++ {
		rows[0][j] = j
	}
	for i := 1; i <= la; i++ {
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := rows[i-1][j-1] + cost
			if v := rows[i-1][j] + 1; v < m {
				m = v
			}
			if v := rows[i][j-1] + 1; v < m {
				m = v
			}
			if i > 1 && j > 1 && a[i-1] == b[j-2] && a[i-2] == b[j-1] {
				if v := rows[i-2][j-2] + 1; v < m {
					m = v
				}
			}
			rows[i][j] = m
		}
	}
	return rows[la][lb]
}

// LevenshteinSimilarity maps edit distance into [0, 1] by normalizing
// with the longer length.
func LevenshteinSimilarity(a, b string) float64 {
	if a == b {
		return 1
	}
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	if n == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(a, b))/float64(n)
}

// Jaro returns the Jaro similarity of a and b.
func Jaro(a, b string) float64 {
	la, lb := len(a), len(b)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := la
	if lb > window {
		window = lb
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	// Tokens are short words; stack buffers keep the per-comparison match
	// flags allocation-free on the linking hot path.
	var aBuf, bBuf [64]bool
	var aMatch, bMatch []bool
	if la > len(aBuf) {
		aMatch = make([]bool, la)
	} else {
		aMatch = aBuf[:la]
	}
	if lb > len(bBuf) {
		bMatch = make([]bool, lb)
	} else {
		bMatch = bBuf[:lb]
	}
	matches := 0
	for i := 0; i < la; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if bMatch[j] || a[i] != b[j] {
				continue
			}
			aMatch[i] = true
			bMatch[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among matched characters.
	trans := 0
	j := 0
	for i := 0; i < la; i++ {
		if !aMatch[i] {
			continue
		}
		for !bMatch[j] {
			j++
		}
		if a[i] != b[j] {
			trans++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(la) + m/float64(lb) + (m-float64(trans)/2)/m) / 3
}

// JaroWinkler boosts Jaro similarity for strings sharing a prefix (up to
// 4 characters) with the standard scaling factor 0.1. It is the default
// measure for person and place names.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	prefix := 0
	for prefix < len(a) && prefix < len(b) && prefix < 4 && a[prefix] == b[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// NGramSet returns the set of character n-grams of s, padding with
// (n-1) boundary markers so short strings still produce grams.
func NGramSet(s string, n int) map[string]struct{} {
	if n <= 0 {
		n = 2
	}
	pad := strings.Repeat("#", n-1)
	p := pad + s + pad
	out := make(map[string]struct{})
	for i := 0; i+n <= len(p); i++ {
		out[p[i:i+n]] = struct{}{}
	}
	return out
}

// JaccardNGram returns the Jaccard coefficient between the character
// n-gram sets of a and b.
func JaccardNGram(a, b string, n int) float64 {
	sa, sb := NGramSet(a, n), NGramSet(b, n)
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	inter := 0
	for g := range sa {
		if _, ok := sb[g]; ok {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// DiceNGram returns the Sørensen-Dice coefficient between the character
// n-gram sets of a and b.
func DiceNGram(a, b string, n int) float64 {
	return DiceNGramSets(NGramSet(a, n), NGramSet(b, n))
}

// DiceNGramSets is DiceNGram over pre-extracted n-gram sets — the form
// the linking engine uses against warehouse-cached value features, so a
// stored attribute's grams are computed once at index time instead of
// once per comparison.
func DiceNGramSets(sa, sb map[string]struct{}) float64 {
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	inter := 0
	for g := range sa {
		if _, ok := sb[g]; ok {
			inter++
		}
	}
	denom := len(sa) + len(sb)
	if denom == 0 {
		return 1
	}
	return 2 * float64(inter) / float64(denom)
}

// DigitSimilarity compares two digit strings the way a partially
// recognized telephone number should be compared with a database value:
// it extracts the digits from both, then scores the longest common
// subsequence of digits relative to the reference length. Recognizing 6
// of 10 digits correctly (the paper's example) yields 0.6.
func DigitSimilarity(observed, reference string) float64 {
	return DigitSimilarityDigits(digitsOf(observed), digitsOf(reference))
}

// DigitSimilarityDigits is DigitSimilarity over pre-extracted digit
// strings (see DigitString), for callers that cache the reference side.
func DigitSimilarityDigits(od, rd string) float64 {
	if len(rd) == 0 {
		if len(od) == 0 {
			return 1
		}
		return 0
	}
	l := lcsLen(od, rd)
	return float64(l) / float64(len(rd))
}

// DigitString returns the digit content of s, in order — the cacheable
// input half of DigitSimilarityDigits.
func DigitString(s string) string { return digitsOf(s) }

func digitsOf(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] >= '0' && s[i] <= '9' {
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

func lcsLen(a, b string) int {
	la, lb := len(a), len(b)
	// Digit strings (phone/card numbers) are short; stack rows keep the
	// DP allocation-free on the linking hot path.
	var pBuf, cBuf [64]int
	var prev, curr []int
	if lb+1 > len(pBuf) {
		prev = make([]int, lb+1)
		curr = make([]int, lb+1)
	} else {
		prev = pBuf[:lb+1]
		curr = cBuf[:lb+1]
	}
	for i := 1; i <= la; i++ {
		for j := 1; j <= lb; j++ {
			if a[i-1] == b[j-1] {
				curr[j] = prev[j-1] + 1
			} else if prev[j] >= curr[j-1] {
				curr[j] = prev[j]
			} else {
				curr[j] = curr[j-1]
			}
		}
		prev, curr = curr, prev
		for j := range curr {
			curr[j] = 0
		}
	}
	return prev[lb]
}

// NumericProximity scores two numeric magnitudes: 1 when equal, decaying
// linearly to 0 at a relative difference of tol (e.g. tol = 0.5 means a
// 50% discrepancy scores 0). Customers misremember amounts; the paper
// notes "the customer may mention a different transaction amount in her
// email".
func NumericProximity(a, b, tol float64) float64 {
	if tol <= 0 {
		if a == b {
			return 1
		}
		return 0
	}
	den := a
	if den < 0 {
		den = -den
	}
	if bb := b; bb < 0 {
		bb = -bb
		if bb > den {
			den = bb
		}
	} else if bb > den {
		den = bb
	}
	if den == 0 {
		return 1 // both zero
	}
	rel := (a - b) / den
	if rel < 0 {
		rel = -rel
	}
	v := 1 - rel/tol
	if v < 0 {
		return 0
	}
	return v
}

// TokenSetSimilarityBest compares a (usually single-word) document token
// against a stored attribute value that may hold several words ("john p
// smith"): a single-word token scores its best Jaro-Winkler match against
// any word of the value, while a multi-word token falls back to the full
// token-set alignment. This is the right shape for ASR output, where a
// call usually surfaces one fragment of a multi-word database value.
func TokenSetSimilarityBest(token, value string) float64 {
	return TokenSetSimilarityBestWords(token, strings.Fields(strings.ToLower(value)))
}

// TokenSetSimilarityBestWords is TokenSetSimilarityBest against a value
// whose lowercase words are already split — the warehouse caches them per
// stored attribute so the split happens once at index time rather than
// once per comparison.
func TokenSetSimilarityBestWords(token string, valueWords []string) float64 {
	token = strings.ToLower(strings.TrimSpace(token))
	if strings.ContainsRune(token, ' ') {
		return TokenSetSimilarityFields(strings.Fields(token), valueWords)
	}
	return BestWordSimilarity(token, valueWords)
}

// BestWordSimilarity returns the best Jaro-Winkler score of a single
// (lowercase) token against any of the words.
func BestWordSimilarity(token string, words []string) float64 {
	best := 0.0
	for _, w := range words {
		if s := JaroWinkler(token, w); s > best {
			best = s
		}
	}
	return best
}

// TokenSetSimilarity compares two multi-word strings by greedily aligning
// their tokens with JaroWinkler and averaging over the larger token
// count. It tolerates word reordering ("john p smith" vs "smith, john").
func TokenSetSimilarity(a, b string) float64 {
	return TokenSetSimilarityFields(strings.Fields(strings.ToLower(a)), strings.Fields(strings.ToLower(b)))
}

// TokenSetSimilarityFields is TokenSetSimilarity over pre-split lowercase
// word slices. It never mutates its arguments.
func TokenSetSimilarityFields(ta, tb []string) float64 {
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	if len(ta) > len(tb) {
		ta, tb = tb, ta
	}
	used := make([]bool, len(tb))
	total := 0.0
	for _, wa := range ta {
		best, bestJ := 0.0, -1
		for j, wb := range tb {
			if used[j] {
				continue
			}
			if s := JaroWinkler(wa, wb); s > best {
				best, bestJ = s, j
			}
		}
		if bestJ >= 0 {
			used[bestJ] = true
			total += best
		}
	}
	return total / float64(len(tb))
}
