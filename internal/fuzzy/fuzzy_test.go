package fuzzy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLevenshteinKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"same", "same", 0},
		{"book", "back", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinMetricProperties(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 30 {
			a = a[:30]
		}
		if len(b) > 30 {
			b = b[:30]
		}
		d := Levenshtein(a, b)
		// Symmetry, identity, and bounds.
		if d != Levenshtein(b, a) {
			return false
		}
		if (d == 0) != (a == b) {
			return false
		}
		max := len(a)
		if len(b) > max {
			max = len(b)
		}
		min := len(a) - len(b)
		if min < 0 {
			min = -min
		}
		return d >= min && d <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDamerauTransposition(t *testing.T) {
	if got := DamerauLevenshtein("teh", "the"); got != 1 {
		t.Errorf("transposition should cost 1, got %d", got)
	}
	if got := Levenshtein("teh", "the"); got != 2 {
		t.Errorf("plain Levenshtein transposition = %d, want 2", got)
	}
	if got := DamerauLevenshtein("abcd", "abcd"); got != 0 {
		t.Errorf("self distance = %d", got)
	}
	if got := DamerauLevenshtein("", "xy"); got != 2 {
		t.Errorf("empty distance = %d", got)
	}
}

func TestDamerauNeverExceedsLevenshtein(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 20 {
			a = a[:20]
		}
		if len(b) > 20 {
			b = b[:20]
		}
		return DamerauLevenshtein(a, b) <= Levenshtein(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinSimilarityRange(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 30 {
			a = a[:30]
		}
		if len(b) > 30 {
			b = b[:30]
		}
		v := LevenshteinSimilarity(a, b)
		return v >= 0 && v <= 1 && (v == 1) == (a == b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestJaroKnown(t *testing.T) {
	// Canonical examples from the literature.
	if got := Jaro("MARTHA", "MARHTA"); math.Abs(got-0.944444) > 1e-5 {
		t.Errorf("Jaro(MARTHA,MARHTA) = %v, want 0.944444", got)
	}
	if got := Jaro("DIXON", "DICKSONX"); math.Abs(got-0.766667) > 1e-5 {
		t.Errorf("Jaro(DIXON,DICKSONX) = %v, want 0.766667", got)
	}
	if Jaro("", "") != 1 || Jaro("a", "") != 0 {
		t.Error("Jaro empty-string handling wrong")
	}
	if Jaro("abc", "xyz") != 0 {
		t.Error("disjoint strings should score 0")
	}
}

func TestJaroWinklerKnown(t *testing.T) {
	if got := JaroWinkler("MARTHA", "MARHTA"); math.Abs(got-0.961111) > 1e-5 {
		t.Errorf("JW(MARTHA,MARHTA) = %v, want 0.961111", got)
	}
	if got := JaroWinkler("DWAYNE", "DUANE"); math.Abs(got-0.84) > 1e-2 {
		t.Errorf("JW(DWAYNE,DUANE) = %v, want ~0.84", got)
	}
}

func TestJaroWinklerPrefixBoost(t *testing.T) {
	// Same Jaro backbone, shared prefix should never hurt.
	f := func(a, b string) bool {
		if len(a) > 20 {
			a = a[:20]
		}
		if len(b) > 20 {
			b = b[:20]
		}
		jw := JaroWinkler(a, b)
		j := Jaro(a, b)
		return jw >= j-1e-12 && jw <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestJaroSymmetryProperty(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 20 {
			a = a[:20]
		}
		if len(b) > 20 {
			b = b[:20]
		}
		return math.Abs(Jaro(a, b)-Jaro(b, a)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNGramSet(t *testing.T) {
	s := NGramSet("ab", 2)
	for _, g := range []string{"#a", "ab", "b#"} {
		if _, ok := s[g]; !ok {
			t.Errorf("missing gram %q", g)
		}
	}
	if len(s) != 3 {
		t.Errorf("got %d grams", len(s))
	}
	if got := NGramSet("", 2); len(got) != 1 { // "##"
		t.Errorf("empty-string grams: %v", got)
	}
}

func TestJaccardDiceAgreement(t *testing.T) {
	// Dice >= Jaccard always; equal only at 0 or 1.
	f := func(a, b string) bool {
		if len(a) > 20 {
			a = a[:20]
		}
		if len(b) > 20 {
			b = b[:20]
		}
		j := JaccardNGram(a, b, 2)
		d := DiceNGram(a, b, 2)
		if j < 0 || j > 1 || d < 0 || d > 1 {
			return false
		}
		return d >= j-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestJaccardIdentity(t *testing.T) {
	if JaccardNGram("reservation", "reservation", 3) != 1 {
		t.Error("identical strings should score 1")
	}
	if JaccardNGram("abc", "xyz", 2) != 0 {
		t.Error("disjoint strings should score 0")
	}
}

func TestDigitSimilarityPartialRecognition(t *testing.T) {
	// The paper's example: 6 of 10 digits recognized.
	if got := DigitSimilarity("987654", "9876543210"); got != 0.6 {
		t.Errorf("partial digits = %v, want 0.6", got)
	}
	if got := DigitSimilarity("9876543210", "9876543210"); got != 1 {
		t.Errorf("full digits = %v", got)
	}
	if got := DigitSimilarity("phone 98-76", "9876"); got != 1 {
		t.Errorf("embedded digits = %v", got)
	}
	if got := DigitSimilarity("", ""); got != 1 {
		t.Errorf("both empty = %v", got)
	}
	if got := DigitSimilarity("123", ""); got != 0 {
		t.Errorf("observed vs empty ref = %v", got)
	}
	if got := DigitSimilarity("", "123"); got != 0 {
		t.Errorf("empty observed = %v", got)
	}
}

func TestDigitSimilarityOrderMatters(t *testing.T) {
	// LCS-based: reversed digits should score poorly.
	fwd := DigitSimilarity("123456", "123456")
	rev := DigitSimilarity("654321", "123456")
	if rev >= fwd {
		t.Errorf("reversed digits score %v should be below %v", rev, fwd)
	}
}

func TestNumericProximity(t *testing.T) {
	if NumericProximity(100, 100, 0.5) != 1 {
		t.Error("equal values should score 1")
	}
	if got := NumericProximity(100, 150, 0.5); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("got %v", got)
	}
	if NumericProximity(100, 300, 0.5) != 0 {
		t.Error("huge discrepancy should score 0")
	}
	if NumericProximity(0, 0, 0.5) != 1 {
		t.Error("both zero should score 1")
	}
	if NumericProximity(5, 5, 0) != 1 || NumericProximity(5, 6, 0) != 0 {
		t.Error("zero tolerance should be exact match")
	}
}

func TestNumericProximityRangeProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		v := NumericProximity(a, b, 0.5)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTokenSetSimilarity(t *testing.T) {
	if got := TokenSetSimilarity("john smith", "smith john"); got < 0.99 {
		t.Errorf("reordered tokens = %v, want ~1", got)
	}
	if got := TokenSetSimilarity("john smith", "john q smith"); got < 0.6 {
		t.Errorf("extra middle token = %v", got)
	}
	one := TokenSetSimilarity("john smith", "jon smith")
	two := TokenSetSimilarity("john smith", "peter jones")
	if one <= two {
		t.Errorf("near-name %v should beat far name %v", one, two)
	}
	if TokenSetSimilarity("", "") != 1 {
		t.Error("both empty should score 1")
	}
	if TokenSetSimilarity("a", "") != 0 {
		t.Error("one empty should score 0")
	}
}
