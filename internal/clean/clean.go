// Package clean implements the two-step e-mail/SMS cleaning stage of
// §IV.A.2:
//
// Step 1 — gatekeeping: detect spam messages and non-English messages and
// discard them; strip e-mail headers, disclaimers and promotional
// material; segregate the agent's (quoted) conversation from the
// customer's so only customer text flows downstream.
//
// Step 2 — noise handling: normalize SMS lingo and shorthand through
// domain dictionaries, collapse casing and whitespace.
//
// The package reports *why* a message was discarded, which the churn
// use case needs ("Around 18% of emails could not be linked. Most of
// these emails were from people who were not customers") and the
// operational dashboards track.
package clean

import (
	"strings"

	"bivoc/internal/classify"
	"bivoc/internal/noise"
	"bivoc/internal/textproc"
)

// Verdict describes the gatekeeping outcome for one message.
type Verdict uint8

// Gatekeeping outcomes.
const (
	VerdictKeep Verdict = iota
	VerdictSpam
	VerdictNonEnglish
	VerdictEmpty
)

func (v Verdict) String() string {
	switch v {
	case VerdictKeep:
		return "keep"
	case VerdictSpam:
		return "spam"
	case VerdictNonEnglish:
		return "non-english"
	case VerdictEmpty:
		return "empty"
	default:
		return "unknown"
	}
}

// Cleaner bundles the spam filter, language filter and normalization
// dictionaries.
type Cleaner struct {
	spam        *classify.NaiveBayes
	lingo       map[string]string
	hindiMarker map[string]bool
	// NonEnglishThreshold is the fraction of marker/unknown tokens above
	// which a message is ruled non-English.
	NonEnglishThreshold float64
	// SpamThreshold is the spam-posterior cut.
	SpamThreshold float64
}

// hamSeedCorpus grounds the "not spam" side of the gate with generic
// customer-service language.
var hamSeedCorpus = []string{
	"my bill is too high this month please check",
	"i am not able to access the network since yesterday",
	"please confirm the receipt of my payment",
	"i want to deactivate this sms pack it was never requested",
	"the call center officer assured the request will be carried out",
	"my plan is not appropriate i want to change it",
	"i was charged for a service i did not subscribe to",
	"please tell me the balance on my account",
	"the gprs connection is not working on my phone",
	"i would like to book a car for next week",
}

// NewCleaner builds a cleaner with the built-in seed corpora and
// dictionaries. Additional spam/ham examples can be added with
// TrainSpam/TrainHam before first use.
func NewCleaner() *Cleaner {
	c := &Cleaner{
		spam:                classify.NewNaiveBayes(),
		lingo:               noise.LingoTable(),
		hindiMarker:         make(map[string]bool),
		NonEnglishThreshold: 0.4,
		SpamThreshold:       0.9,
	}
	for _, s := range noise.SpamSeedCorpus() {
		c.spam.Train("spam", textproc.Words(s))
	}
	for _, s := range hamSeedCorpus {
		c.spam.Train("ham", textproc.Words(s))
	}
	for _, w := range noise.HindiMarkers() {
		c.hindiMarker[w] = true
	}
	return c
}

// TrainSpam adds a labeled spam example to the gate.
func (c *Cleaner) TrainSpam(text string) { c.spam.Train("spam", textproc.Words(text)) }

// TrainHam adds a labeled legitimate example to the gate.
func (c *Cleaner) TrainHam(text string) { c.spam.Train("ham", textproc.Words(text)) }

// Gate applies step-1 filtering to a customer message body, returning
// the verdict. Keep processing the text only on VerdictKeep.
func (c *Cleaner) Gate(text string) Verdict {
	words := textproc.Words(text)
	if len(words) == 0 {
		return VerdictEmpty
	}
	if c.nonEnglishFraction(words) > c.NonEnglishThreshold {
		return VerdictNonEnglish
	}
	post := c.spam.Posteriors(words)
	if post["spam"] >= c.SpamThreshold {
		return VerdictSpam
	}
	return VerdictKeep
}

// nonEnglishFraction estimates how much of the message is code-switched:
// known Hindi markers count fully; the rest relies on a cheap
// vowel-structure heuristic for romanized non-English tokens.
func (c *Cleaner) nonEnglishFraction(words []string) float64 {
	if len(words) == 0 {
		return 0
	}
	hits := 0
	for _, w := range words {
		if c.hindiMarker[w] {
			hits++
		}
	}
	return float64(hits) / float64(len(words))
}

// StripEmail removes headers, quoted agent text, promotional blocks and
// disclaimers from a raw email, returning only the customer-authored
// body.
func StripEmail(raw string) string {
	lines := strings.Split(raw, "\n")
	var body []string
	inHeader := true
	for _, line := range lines {
		trimmed := strings.TrimSpace(line)
		if inHeader {
			if trimmed == "" {
				inHeader = false
			}
			continue
		}
		switch {
		case strings.HasPrefix(trimmed, noise.AgentQuotePrefix) || strings.HasPrefix(line, noise.AgentQuotePrefix):
			continue // agent conversation — segregated out
		case strings.HasPrefix(trimmed, noise.DisclaimerMarker):
			continue
		case strings.HasPrefix(trimmed, noise.PromoMarker):
			continue
		case trimmed == "":
			continue
		default:
			body = append(body, trimmed)
		}
	}
	return strings.Join(body, " ")
}

// StripSignature removes a trailing signature block — everything from
// the last "regards"/"thanks and regards"/"sincerely" marker onward.
// The linking engine wants the signature (it carries the sender's
// identity); the churn classifier must NOT see it, or it memorizes
// customer names and phone numbers instead of learning churn language.
func StripSignature(text string) string {
	lowered := strings.ToLower(text)
	cut := -1
	for _, marker := range []string{"regards", "sincerely", "yours truly"} {
		if i := strings.LastIndex(lowered, marker); i > cut {
			cut = i
		}
	}
	if cut <= 0 {
		return text
	}
	return strings.TrimSpace(text[:cut])
}

// NormalizeSMS expands shorthand tokens through the lingo dictionary,
// lowercases, and collapses whitespace — step 2 of §IV.A.2. Unknown noisy
// tokens pass through unchanged; the paper notes "still a large number
// of words are noisy and are not utilized fully".
func (c *Cleaner) NormalizeSMS(text string) string {
	toks := textproc.Tokenize(text)
	var out []string
	for _, tok := range toks {
		if tok.Kind == textproc.KindPunct {
			continue
		}
		w := strings.ToLower(tok.Text)
		if full, ok := c.lingo[w]; ok {
			out = append(out, full)
			continue
		}
		// Try with a trailing period shorthand ("pl." → "pl").
		if full, ok := c.lingo[strings.TrimSuffix(w, ".")]; ok {
			out = append(out, full)
			continue
		}
		out = append(out, w)
	}
	return strings.Join(out, " ")
}

// CleanedMessage is the output of the full pipeline for one message.
type CleanedMessage struct {
	Verdict Verdict
	// Text is the normalized customer text (empty unless VerdictKeep).
	Text string
}

// ProcessEmail runs the full email pipeline: strip → gate → normalize.
func (c *Cleaner) ProcessEmail(raw string) CleanedMessage {
	body := StripEmail(raw)
	v := c.Gate(body)
	if v != VerdictKeep {
		return CleanedMessage{Verdict: v}
	}
	return CleanedMessage{Verdict: VerdictKeep, Text: c.NormalizeSMS(body)}
}

// ProcessSMS runs the SMS pipeline: gate → normalize.
func (c *Cleaner) ProcessSMS(text string) CleanedMessage {
	v := c.Gate(text)
	if v != VerdictKeep {
		return CleanedMessage{Verdict: v}
	}
	return CleanedMessage{Verdict: VerdictKeep, Text: c.NormalizeSMS(text)}
}
