package clean

import (
	"strings"
	"testing"

	"bivoc/internal/noise"
	"bivoc/internal/rng"
)

func TestGateKeepsCustomerText(t *testing.T) {
	c := NewCleaner()
	texts := []string{
		"my bill is too high i almost feel robbed when paying",
		"i was charged for sms pack but did not request activation",
		"please confirm the receipt of payment of rs 500",
	}
	for _, s := range texts {
		if v := c.Gate(s); v != VerdictKeep {
			t.Errorf("legit message gated as %v: %q", v, s)
		}
	}
}

func TestGateDiscardsSpam(t *testing.T) {
	c := NewCleaner()
	r := rng.New(31)
	caught := 0
	const n = 40
	for i := 0; i < n; i++ {
		if c.Gate(noise.SpamEmail(r.Split(uint64(i)))) == VerdictSpam {
			caught++
		}
	}
	if caught < n*3/4 {
		t.Errorf("spam gate caught only %d/%d", caught, n)
	}
}

func TestGateDiscardsNonEnglish(t *testing.T) {
	c := NewCleaner()
	if v := c.Gate("kya hua paisa wapas karo jaldi karo band karo"); v != VerdictNonEnglish {
		t.Errorf("hindi message gated as %v", v)
	}
	// Mostly English with one fragment should pass (Fig 1's mixed SMS are
	// still used — only predominantly non-English ones are dropped).
	if v := c.Gate("no care for customer is what you focus on kya hua"); v != VerdictKeep {
		t.Errorf("mixed message gated as %v", v)
	}
}

func TestGateEmpty(t *testing.T) {
	c := NewCleaner()
	if v := c.Gate("   "); v != VerdictEmpty {
		t.Errorf("empty gated as %v", v)
	}
}

func TestGateTrainable(t *testing.T) {
	c := NewCleaner()
	novel := "quantum flux discount vortex mega deal vortex flux"
	for i := 0; i < 5; i++ {
		c.TrainSpam(novel)
	}
	if v := c.Gate(novel); v != VerdictSpam {
		t.Errorf("trained spam still gated as %v", v)
	}
	c2 := NewCleaner()
	c2.TrainHam("my flux capacitor bill is wrong")
	if v := c2.Gate("my flux capacitor bill is wrong"); v != VerdictKeep {
		t.Errorf("trained ham gated as %v", v)
	}
}

func TestStripEmail(t *testing.T) {
	r := rng.New(7)
	body := "the call center officer assured that my request will be carried out but nothing happened"
	raw := noise.WrapEmail(r, body, noise.WrapEmailOptions{
		From: "c@x", To: "care@y", Subject: "complaint",
		QuoteAgent: true, Promo: true, Disclaimer: true,
	})
	got := StripEmail(raw)
	if !strings.Contains(got, "officer assured") {
		t.Errorf("customer text lost: %q", got)
	}
	for _, banned := range []string{"From:", "Subject:", noise.DisclaimerMarker, noise.PromoMarker, "Dear customer"} {
		if strings.Contains(got, banned) {
			t.Errorf("stripped email still contains %q", banned)
		}
	}
}

func TestStripEmailNoHeaders(t *testing.T) {
	// A message with no blank line is treated as all-header; nothing
	// survives — matching mail semantics where the body follows the first
	// blank line.
	if got := StripEmail("just one line"); got != "" {
		t.Errorf("header-only email produced body %q", got)
	}
	if got := StripEmail("From: a\n\nreal body here"); got != "real body here" {
		t.Errorf("got %q", got)
	}
}

func TestNormalizeSMS(t *testing.T) {
	c := NewCleaner()
	got := c.NormalizeSMS("Pls cnfrm ur pymt thx")
	for _, want := range []string{"please", "confirm", "your", "payment", "thanks"} {
		if !strings.Contains(got, want) {
			t.Errorf("normalized %q missing %q", got, want)
		}
	}
}

func TestNormalizeSMSTrailingPeriodShorthand(t *testing.T) {
	c := NewCleaner()
	got := c.NormalizeSMS("pl. confirm the receipt")
	if !strings.HasPrefix(got, "please") {
		t.Errorf("got %q", got)
	}
}

func TestNormalizeSMSPassesUnknownTokens(t *testing.T) {
	c := NewCleaner()
	got := c.NormalizeSMS("karanagar receipt 1243213")
	if !strings.Contains(got, "karanagar") || !strings.Contains(got, "1243213") {
		t.Errorf("unknown tokens dropped: %q", got)
	}
}

func TestProcessEmailPipeline(t *testing.T) {
	c := NewCleaner()
	r := rng.New(8)
	body := "i am not able to access gprs on my phone pls help"
	raw := noise.WrapEmail(r, body, noise.WrapEmailOptions{
		From: "c@x", To: "care@y", Subject: "gprs", Disclaimer: true,
	})
	msg := c.ProcessEmail(raw)
	if msg.Verdict != VerdictKeep {
		t.Fatalf("verdict %v", msg.Verdict)
	}
	if !strings.Contains(msg.Text, "please") {
		t.Errorf("lingo not normalized: %q", msg.Text)
	}
	spamRaw := noise.WrapEmail(r, noise.SpamEmail(r), noise.WrapEmailOptions{From: "s@x", To: "c@y", Subject: "win"})
	if got := c.ProcessEmail(spamRaw); got.Verdict != VerdictSpam || got.Text != "" {
		t.Errorf("spam email processed: %+v", got)
	}
}

func TestProcessSMSPipeline(t *testing.T) {
	c := NewCleaner()
	msg := c.ProcessSMS("pls cnfrm receipt of pymt rs 500")
	if msg.Verdict != VerdictKeep || !strings.Contains(msg.Text, "payment") {
		t.Errorf("sms pipeline: %+v", msg)
	}
	if got := c.ProcessSMS(""); got.Verdict != VerdictEmpty {
		t.Errorf("empty sms: %+v", got)
	}
}

func TestVerdictString(t *testing.T) {
	cases := map[Verdict]string{
		VerdictKeep: "keep", VerdictSpam: "spam",
		VerdictNonEnglish: "non-english", VerdictEmpty: "empty",
		Verdict(99): "unknown",
	}
	for v, want := range cases {
		if v.String() != want {
			t.Errorf("%d → %q", v, v.String())
		}
	}
}

func TestRoundTripNoiseThenClean(t *testing.T) {
	// End-to-end: noisy SMS should normalize back toward the clean text.
	c := NewCleaner()
	n := noise.New(noise.Config{LingoProb: 1}) // only lingo substitutions
	clean := "please confirm your payment thanks"
	noisy := n.Apply(rng.New(4), clean)
	if noisy == clean {
		t.Skip("noise produced no change for this seed")
	}
	restored := c.NormalizeSMS(noisy)
	if restored != clean {
		t.Errorf("lingo round trip: %q → %q → %q", clean, noisy, restored)
	}
}

func TestStripSignature(t *testing.T) {
	cases := map[string]string{
		"my bill is too high. regards john smith 9876543210": "my bill is too high.",
		"my bill is too high. Sincerely Mary":                "my bill is too high.",
		"no signature here at all":                           "no signature here at all",
		"regards up front should not cut everything":         "regards up front should not cut everything",
	}
	for in, want := range cases {
		if got := StripSignature(in); got != want {
			t.Errorf("StripSignature(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStripSignatureKeepsLastMarker(t *testing.T) {
	in := "thanks and regards was mentioned mid text. more content. regards bob"
	got := StripSignature(in)
	if strings.Contains(got, "bob") {
		t.Errorf("signature survived: %q", got)
	}
	if !strings.Contains(got, "more content") {
		t.Errorf("body lost: %q", got)
	}
}
