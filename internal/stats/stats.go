// Package stats implements the statistical machinery BIVoC relies on:
// descriptive statistics, the Student-t and normal distributions, Welch's
// two-sample t-test (used in §V.C to validate the agent-training uplift),
// and binomial-proportion confidence intervals (used by the 2-D
// association analysis of §IV.D.2, which replaces a point estimate of the
// exponential mutual information with the lower end of an interval
// estimate to stay robust at small counts).
//
// Everything is implemented from scratch on top of math; the special
// functions (log-gamma, regularized incomplete beta) use standard
// Lanczos / continued-fraction evaluations accurate to ~1e-10, far beyond
// what the analyses need.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned by tests and estimators that need more
// observations than were supplied.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (denominator n-1),
// or 0 when fewer than two observations are supplied.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs, or 0 for an empty slice. xs is not
// modified.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if q <= 0 {
		return c[0]
	}
	if q >= 1 {
		return c[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return c[n-1]
	}
	return c[lo]*(1-frac) + c[lo+1]*frac
}

// lgamma returns the natural log of the absolute value of the gamma
// function, via the Lanczos approximation (g=7, n=9 coefficients).
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betacf evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// RegIncBeta returns the regularized incomplete beta function I_x(a, b).
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	ln := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(ln)
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

// StudentTCDF returns P(T <= t) for a Student-t variable with df degrees
// of freedom.
func StudentTCDF(t, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	x := df / (df + t*t)
	p := 0.5 * RegIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// NormalCDF returns the standard normal CDF at z.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalQuantile returns the z such that NormalCDF(z) = p, via the
// Acklam rational approximation refined with one Halley step. Valid for
// 0 < p < 1; returns ±Inf at the boundaries.
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Acklam coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const pLow, pHigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// TTestResult reports a two-sample Welch t-test.
type TTestResult struct {
	T  float64 // test statistic
	DF float64 // Welch-Satterthwaite degrees of freedom
	P  float64 // two-sided p-value
	// POneSided is the one-sided p-value for mean(a) > mean(b); the §V.C
	// uplift analysis is directional (trained agents improved).
	POneSided float64
	MeanA     float64
	MeanB     float64
}

// WelchTTest performs a two-sample t-test without assuming equal
// variances. It needs at least two observations per sample.
func WelchTTest(a, b []float64) (TTestResult, error) {
	if len(a) < 2 || len(b) < 2 {
		return TTestResult{}, ErrInsufficientData
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	na, nb := float64(len(a)), float64(len(b))
	sa, sb := va/na, vb/nb
	se := math.Sqrt(sa + sb)
	if se == 0 {
		return TTestResult{}, errors.New("stats: zero variance in both samples")
	}
	t := (ma - mb) / se
	df := (sa + sb) * (sa + sb) / (sa*sa/(na-1) + sb*sb/(nb-1))
	upper := 1 - StudentTCDF(math.Abs(t), df)
	res := TTestResult{
		T: t, DF: df,
		P:         2 * upper,
		POneSided: 1 - StudentTCDF(t, df),
		MeanA:     ma, MeanB: mb,
	}
	return res, nil
}

// Interval is a two-sided confidence interval.
type Interval struct {
	Lo, Hi float64
}

// WilsonInterval returns the Wilson score interval for a binomial
// proportion with successes out of n trials at the given confidence
// level (e.g. 0.95).
func WilsonInterval(successes, n int, confidence float64) Interval {
	return WilsonIntervalZ(successes, n, WilsonZ(confidence))
}

// WilsonZ returns the two-sided normal critical value the Wilson
// interval uses at the given confidence level. Hot paths that evaluate
// many intervals at one confidence (the association cell grid) compute
// it once and call WilsonIntervalZ; the results are bit-identical to
// WilsonInterval because this is the exact expression it evaluates.
func WilsonZ(confidence float64) float64 {
	return NormalQuantile(1 - (1-confidence)/2)
}

// WilsonIntervalZ is WilsonInterval with the critical value z already
// computed (see WilsonZ).
func WilsonIntervalZ(successes, n int, z float64) Interval {
	if n <= 0 {
		return Interval{0, 1}
	}
	nf := float64(n)
	p := float64(successes) / nf
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / denom
	lo := center - half
	hi := center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return Interval{lo, hi}
}

// ProportionInterval returns the normal-approximation (Wald) interval for
// a binomial proportion, clamped to [0, 1]. The association analysis uses
// Wilson by default; Wald is kept for the ablation benchmark.
func ProportionInterval(successes, n int, confidence float64) Interval {
	if n <= 0 {
		return Interval{0, 1}
	}
	z := NormalQuantile(1 - (1-confidence)/2)
	p := float64(successes) / float64(n)
	half := z * math.Sqrt(p*(1-p)/float64(n))
	lo, hi := p-half, p+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return Interval{lo, hi}
}

// BinomialPMF returns P(X = k) for X ~ Binomial(n, p), computed in log
// space for numerical stability.
func BinomialPMF(k, n int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lg := lgamma(float64(n+1)) - lgamma(float64(k+1)) - lgamma(float64(n-k+1))
	return math.Exp(lg + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p))
}

// ChiSquare2x2 returns the chi-square statistic (with Yates continuity
// correction) for a 2x2 contingency table [[a b] [c d]].
func ChiSquare2x2(a, b, c, d int) float64 {
	n := float64(a + b + c + d)
	if n == 0 {
		return 0
	}
	af, bf, cf, df := float64(a), float64(b), float64(c), float64(d)
	num := math.Abs(af*df-bf*cf) - n/2
	if num < 0 {
		num = 0
	}
	denom := (af + bf) * (cf + df) * (af + cf) * (bf + df)
	if denom == 0 {
		return 0
	}
	return n * num * num / denom
}
