package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVarianceKnown(t *testing.T) {
	// Sample variance of {2,4,4,4,5,5,7,9} with n-1 denominator is 32/7.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got, want := Variance(xs), 32.0/7.0; !almostEq(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
}

func TestVarianceDegenerate(t *testing.T) {
	if Variance(nil) != 0 || Variance([]float64{3}) != 0 {
		t.Error("variance of <2 observations should be 0")
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %v, want 2.5", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("empty median = %v, want 0", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Errorf("q0.5 = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Errorf("q0.25 = %v", got)
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{1, 0.8413447460685429},
	}
	for _, c := range cases {
		if got := NormalCDF(c.z); !almostEq(got, c.want, 1e-9) {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.z, got, c.want)
		}
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.05, 0.3, 0.5, 0.7, 0.95, 0.99, 0.999} {
		z := NormalQuantile(p)
		if got := NormalCDF(z); !almostEq(got, p, 1e-9) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("boundary quantiles should be infinite")
	}
}

func TestStudentTCDFKnownValues(t *testing.T) {
	// With df → large, t CDF approaches normal CDF.
	if got, want := StudentTCDF(1.96, 1e7), NormalCDF(1.96); !almostEq(got, want, 1e-5) {
		t.Errorf("large-df t CDF = %v, want ~%v", got, want)
	}
	// Symmetry around 0.
	if got := StudentTCDF(0, 5); !almostEq(got, 0.5, 1e-12) {
		t.Errorf("t CDF at 0 = %v", got)
	}
	// Known value: t=2.015, df=5 → 0.95 (95th percentile of t_5).
	if got := StudentTCDF(2.015048372669157, 5); !almostEq(got, 0.95, 1e-6) {
		t.Errorf("t_5 CDF at 2.015 = %v, want 0.95", got)
	}
}

func TestStudentTCDFSymmetryProperty(t *testing.T) {
	f := func(tv float64, dfRaw uint8) bool {
		if math.IsNaN(tv) || math.IsInf(tv, 0) {
			return true
		}
		tv = math.Mod(tv, 50)
		df := float64(dfRaw%60) + 1
		lhs := StudentTCDF(tv, df)
		rhs := 1 - StudentTCDF(-tv, df)
		return almostEq(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if RegIncBeta(2, 3, 0) != 0 || RegIncBeta(2, 3, 1) != 1 {
		t.Error("incomplete beta boundary values wrong")
	}
	// I_x(1,1) = x (uniform distribution CDF).
	for _, x := range []float64{0.1, 0.35, 0.8} {
		if got := RegIncBeta(1, 1, x); !almostEq(got, x, 1e-10) {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
}

func TestRegIncBetaMonotoneProperty(t *testing.T) {
	f := func(aRaw, bRaw uint8, x1, x2 float64) bool {
		a := float64(aRaw%20)/2 + 0.5
		b := float64(bRaw%20)/2 + 0.5
		x1 = math.Abs(math.Mod(x1, 1))
		x2 = math.Abs(math.Mod(x2, 1))
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		return RegIncBeta(a, b, x1) <= RegIncBeta(a, b, x2)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWelchTTestKnown(t *testing.T) {
	// Classic example: two small samples with a clear difference.
	a := []float64{27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4}
	b := []float64{27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.5, 31.2}
	res, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Reference values computed independently (Welch formulas + incomplete
	// beta, cross-checked in Python): t = -2.95132, df = 27.3501, p = 0.0064222.
	if !almostEq(res.T, -2.951324905801334, 1e-9) {
		t.Errorf("T = %v, want -2.95132", res.T)
	}
	if !almostEq(res.DF, 27.350115524702318, 1e-9) {
		t.Errorf("DF = %v, want 27.3501", res.DF)
	}
	if !almostEq(res.P, 0.006422150965117668, 1e-9) {
		t.Errorf("P = %v, want 0.0064222", res.P)
	}
	// t < 0 here, so the directional test for mean(a) > mean(b) should be
	// the complement of half the two-sided p.
	if !almostEq(res.POneSided, 1-res.P/2, 1e-9) {
		t.Errorf("one-sided p = %v, want %v", res.POneSided, 1-res.P/2)
	}
}

func TestWelchTTestErrors(t *testing.T) {
	if _, err := WelchTTest([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("expected error for tiny sample")
	}
	if _, err := WelchTTest([]float64{2, 2}, []float64{2, 2}); err == nil {
		t.Error("expected error for zero variance")
	}
}

func TestWelchTTestSymmetric(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 4, 6, 8, 12}
	r1, err1 := WelchTTest(a, b)
	r2, err2 := WelchTTest(b, a)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !almostEq(r1.T, -r2.T, 1e-12) || !almostEq(r1.P, r2.P, 1e-12) {
		t.Error("Welch t-test should be antisymmetric in its arguments")
	}
}

func TestWilsonIntervalProperties(t *testing.T) {
	f := func(s, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		k := int(s) % (n + 1)
		iv := WilsonInterval(k, n, 0.95)
		p := float64(k) / float64(n)
		return iv.Lo >= 0 && iv.Hi <= 1 && iv.Lo <= p+1e-12 && iv.Hi >= p-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWilsonIntervalKnown(t *testing.T) {
	// 8 successes in 10 trials at 95%: Wilson interval ≈ (0.4901, 0.9433).
	iv := WilsonInterval(8, 10, 0.95)
	if !almostEq(iv.Lo, 0.4901625, 1e-4) || !almostEq(iv.Hi, 0.9433178, 1e-4) {
		t.Errorf("Wilson(8,10) = %+v", iv)
	}
	iv0 := WilsonInterval(0, 0, 0.95)
	if iv0.Lo != 0 || iv0.Hi != 1 {
		t.Errorf("empty Wilson should be [0,1], got %+v", iv0)
	}
}

func TestWilsonNarrowerWithMoreData(t *testing.T) {
	small := WilsonInterval(6, 10, 0.95)
	big := WilsonInterval(600, 1000, 0.95)
	if big.Hi-big.Lo >= small.Hi-small.Lo {
		t.Error("interval should narrow as n grows at fixed proportion")
	}
}

func TestProportionIntervalClamped(t *testing.T) {
	iv := ProportionInterval(0, 10, 0.95)
	if iv.Lo != 0 {
		t.Errorf("Wald lo should clamp to 0, got %v", iv.Lo)
	}
	iv = ProportionInterval(10, 10, 0.95)
	if iv.Hi != 1 {
		t.Errorf("Wald hi should clamp to 1, got %v", iv.Hi)
	}
}

func TestBinomialPMF(t *testing.T) {
	// Binomial(4, 0.5): P(X=2) = 6/16.
	if got := BinomialPMF(2, 4, 0.5); !almostEq(got, 0.375, 1e-12) {
		t.Errorf("PMF = %v, want 0.375", got)
	}
	sum := 0.0
	for k := 0; k <= 20; k++ {
		sum += BinomialPMF(k, 20, 0.3)
	}
	if !almostEq(sum, 1, 1e-10) {
		t.Errorf("PMF should sum to 1, got %v", sum)
	}
	if BinomialPMF(-1, 5, 0.5) != 0 || BinomialPMF(6, 5, 0.5) != 0 {
		t.Error("out-of-range PMF should be 0")
	}
	if BinomialPMF(0, 5, 0) != 1 || BinomialPMF(5, 5, 1) != 1 {
		t.Error("degenerate p PMF wrong")
	}
}

func TestChiSquare2x2(t *testing.T) {
	// Independent table should give ~0.
	if got := ChiSquare2x2(10, 10, 10, 10); got != 0 {
		t.Errorf("independent chi2 = %v", got)
	}
	// Strongly associated table should give a large statistic.
	if got := ChiSquare2x2(50, 5, 5, 50); got < 50 {
		t.Errorf("associated chi2 = %v, want large", got)
	}
	if ChiSquare2x2(0, 0, 0, 0) != 0 {
		t.Error("empty table chi2 should be 0")
	}
}
