package report

import (
	"strings"
	"testing"

	"bivoc/internal/synth"
)

func world(t *testing.T) (*synth.CarRentalWorld, []synth.Call) {
	t.Helper()
	cfg := synth.DefaultCarRentalConfig()
	cfg.NumAgents = 15
	cfg.NumCustomers = 60
	cfg.CallsPerDay = 100
	w, err := synth.NewCarRentalWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w, w.GenerateCalls(0, 4)
}

func TestAgentKPIsConsistency(t *testing.T) {
	w, calls := world(t)
	kpis := AgentKPIs(w, calls)
	if len(kpis) != len(w.Agents) {
		t.Fatalf("%d KPIs for %d agents", len(kpis), len(w.Agents))
	}
	totalCalls, totalRes := 0, 0
	for _, k := range kpis {
		totalCalls += k.Calls
		totalRes += k.Reservations
		if k.SalesCalls+k.ServiceCalls != k.Calls {
			t.Errorf("agent %s: %d+%d != %d", k.AgentID, k.SalesCalls, k.ServiceCalls, k.Calls)
		}
		if k.Conversion < 0 || k.Conversion > 1 {
			t.Errorf("agent %s conversion %v", k.AgentID, k.Conversion)
		}
		if k.Calls > 0 && k.AvgHandleTimeSec <= 0 {
			t.Errorf("agent %s AHT %v", k.AgentID, k.AvgHandleTimeSec)
		}
	}
	if totalCalls != len(calls) {
		t.Errorf("KPI calls %d != %d", totalCalls, len(calls))
	}
	wantRes := 0
	for _, c := range calls {
		if c.Outcome == synth.OutcomeReservation {
			wantRes++
		}
	}
	if totalRes != wantRes {
		t.Errorf("KPI reservations %d != %d", totalRes, wantRes)
	}
}

func TestHandleTimePlausible(t *testing.T) {
	_, calls := world(t)
	for _, c := range calls {
		if c.HandleTimeSec < 30 || c.HandleTimeSec > 900 {
			t.Fatalf("handle time %ds implausible for %s", c.HandleTimeSec, c.ID)
		}
	}
}

func TestHandleTimeReflectsComplexity(t *testing.T) {
	_, calls := world(t)
	var discTotal, plainTotal, discN, plainN int
	for _, c := range calls {
		if c.Intent == synth.IntentService {
			continue
		}
		if c.UsedDisc {
			discTotal += c.HandleTimeSec
			discN++
		} else {
			plainTotal += c.HandleTimeSec
			plainN++
		}
	}
	if discN == 0 || plainN == 0 {
		t.Skip("degenerate sample")
	}
	if float64(discTotal)/float64(discN) <= float64(plainTotal)/float64(plainN) {
		t.Error("discount negotiation should lengthen handle time on average")
	}
}

func TestCenterKPIs(t *testing.T) {
	_, calls := world(t)
	k := CenterKPIs(calls)
	if k.Calls != len(calls) {
		t.Errorf("calls = %d", k.Calls)
	}
	if k.SalesCalls+k.ServiceCalls != k.Calls {
		t.Error("call split inconsistent")
	}
	if k.AvgHandleTimeSec <= 0 {
		t.Error("AHT missing")
	}
	dayTotal := 0
	for _, v := range k.DailyVolume {
		dayTotal += v
	}
	if dayTotal != k.Calls {
		t.Error("daily volume does not sum to calls")
	}
}

func TestCenterKPIsEmpty(t *testing.T) {
	k := CenterKPIs(nil)
	if k.Calls != 0 || k.AvgHandleTimeSec != 0 || k.Conversion != 0 {
		t.Errorf("empty KPIs: %+v", k)
	}
}

func TestRenderAgentDashboard(t *testing.T) {
	w, calls := world(t)
	kpis := AgentKPIs(w, calls)
	out := RenderAgentDashboard(kpis, 3)
	if !strings.Contains(out, "top performers") || !strings.Contains(out, "bottom performers") {
		t.Errorf("dashboard sections missing:\n%s", out)
	}
	if !strings.Contains(out, "AHT") {
		t.Error("AHT column missing")
	}
	// topN=0 renders everyone without the bottom section.
	all := RenderAgentDashboard(kpis, 0)
	if strings.Contains(all, "bottom performers") {
		t.Error("full render should not split")
	}
}

func TestRenderCenterDashboard(t *testing.T) {
	_, calls := world(t)
	out := RenderCenterDashboard(CenterKPIs(calls))
	for _, want := range []string{"calls handled", "bookings", "avg handle time", "daily volume"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTrainingComparison(t *testing.T) {
	w, _ := world(t)
	w.TrainAgents(5)
	calls := w.GenerateCalls(10, 4)
	kpis := AgentKPIs(w, calls)
	out := TrainingComparison(kpis)
	if !strings.Contains(out, "trained (5 agents)") {
		t.Errorf("comparison wrong:\n%s", out)
	}
	// No trained agents → empty output.
	w2, calls2 := world(t)
	if got := TrainingComparison(AgentKPIs(w2, calls2)); got != "" {
		t.Errorf("untrained comparison should be empty, got %q", got)
	}
}
