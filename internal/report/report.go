// Package report renders the contact-centre dashboards the paper's
// background section describes (§II): "BI systems are typically used to
// monitor business conditions, track Key Performance Indicators (KPIs),
// aid as decision support systems ... like real time dashboards,
// interactive OLAP tools or static reports", and commercial tools
// "provide analysis tools for measuring and monitoring agent
// performance in terms of average handle time" etc.
//
// The package computes per-agent and centre-level KPIs from a generated
// engagement and renders plain-text dashboards. BIVoC's thesis is that
// these operational KPIs alone miss the business story; the mining
// layer (internal/mining) supplies that. Keeping both views makes the
// contrast concrete.
package report

import (
	"fmt"
	"sort"
	"strings"

	"bivoc/internal/synth"
)

// AgentKPI aggregates one agent's performance over a call window.
type AgentKPI struct {
	AgentID string
	Name    string
	Trained bool
	// Calls handled, split by type.
	Calls, SalesCalls, ServiceCalls int
	Reservations                    int
	// AvgHandleTimeSec is the mean handle time over all calls.
	AvgHandleTimeSec float64
	// Conversion is reservations / sales calls.
	Conversion float64
	// ValueRate / DiscountRate are the fractions of sales calls where
	// the behaviour occurred.
	ValueRate, DiscountRate float64
}

// AgentKPIs computes per-agent KPIs over the given calls.
func AgentKPIs(world *synth.CarRentalWorld, calls []synth.Call) []AgentKPI {
	kpis := make([]AgentKPI, len(world.Agents))
	var handle = make([]int, len(world.Agents))
	var valueN, discN = make([]int, len(world.Agents)), make([]int, len(world.Agents))
	for i, a := range world.Agents {
		kpis[i] = AgentKPI{AgentID: a.ID, Name: a.Name, Trained: a.Trained}
	}
	for _, c := range calls {
		k := &kpis[c.AgentIdx]
		k.Calls++
		handle[c.AgentIdx] += c.HandleTimeSec
		if c.Intent == synth.IntentService {
			k.ServiceCalls++
			continue
		}
		k.SalesCalls++
		if c.Outcome == synth.OutcomeReservation {
			k.Reservations++
		}
		if c.UsedValue {
			valueN[c.AgentIdx]++
		}
		if c.UsedDisc {
			discN[c.AgentIdx]++
		}
	}
	for i := range kpis {
		k := &kpis[i]
		if k.Calls > 0 {
			k.AvgHandleTimeSec = float64(handle[i]) / float64(k.Calls)
		}
		if k.SalesCalls > 0 {
			k.Conversion = float64(k.Reservations) / float64(k.SalesCalls)
			k.ValueRate = float64(valueN[i]) / float64(k.SalesCalls)
			k.DiscountRate = float64(discN[i]) / float64(k.SalesCalls)
		}
	}
	return kpis
}

// CenterKPI aggregates the whole centre.
type CenterKPI struct {
	Calls, SalesCalls, ServiceCalls, Reservations int
	AvgHandleTimeSec                              float64
	Conversion                                    float64
	// DailyVolume maps day → calls.
	DailyVolume map[int]int
}

// CenterKPIs computes centre-level KPIs.
func CenterKPIs(calls []synth.Call) CenterKPI {
	out := CenterKPI{DailyVolume: make(map[int]int)}
	totalHandle := 0
	for _, c := range calls {
		out.Calls++
		out.DailyVolume[c.Day]++
		totalHandle += c.HandleTimeSec
		if c.Intent == synth.IntentService {
			out.ServiceCalls++
			continue
		}
		out.SalesCalls++
		if c.Outcome == synth.OutcomeReservation {
			out.Reservations++
		}
	}
	if out.Calls > 0 {
		out.AvgHandleTimeSec = float64(totalHandle) / float64(out.Calls)
	}
	if out.SalesCalls > 0 {
		out.Conversion = float64(out.Reservations) / float64(out.SalesCalls)
	}
	return out
}

// RenderAgentDashboard renders the top/bottom agents by conversion with
// their operational KPIs (what a NICE/VERINT-style monitoring tool
// shows; §II).
func RenderAgentDashboard(kpis []AgentKPI, topN int) string {
	ranked := make([]AgentKPI, 0, len(kpis))
	for _, k := range kpis {
		if k.SalesCalls > 0 {
			ranked = append(ranked, k)
		}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Conversion != ranked[j].Conversion {
			return ranked[i].Conversion > ranked[j].Conversion
		}
		return ranked[i].AgentID < ranked[j].AgentID
	})
	if topN <= 0 || topN > len(ranked) {
		topN = len(ranked)
	}
	var b strings.Builder
	header := fmt.Sprintf("%-5s %-20s %6s %6s %7s %7s %7s %8s %s\n",
		"agent", "name", "calls", "conv%", "value%", "disc%", "AHT(s)", "bookings", "trained")
	b.WriteString(header)
	line := func(k AgentKPI) {
		trained := ""
		if k.Trained {
			trained = "yes"
		}
		fmt.Fprintf(&b, "%-5s %-20s %6d %5.0f%% %6.0f%% %6.0f%% %7.0f %8d %s\n",
			k.AgentID, k.Name, k.Calls, 100*k.Conversion, 100*k.ValueRate,
			100*k.DiscountRate, k.AvgHandleTimeSec, k.Reservations, trained)
	}
	b.WriteString("— top performers —\n")
	for i := 0; i < topN && i < len(ranked); i++ {
		line(ranked[i])
	}
	if len(ranked) > topN {
		b.WriteString("— bottom performers —\n")
		for i := len(ranked) - topN; i < len(ranked); i++ {
			line(ranked[i])
		}
	}
	return b.String()
}

// RenderCenterDashboard renders centre-level KPIs with a daily volume
// sparkline.
func RenderCenterDashboard(k CenterKPI) string {
	var b strings.Builder
	fmt.Fprintf(&b, "calls handled    %d (%d sales, %d service)\n", k.Calls, k.SalesCalls, k.ServiceCalls)
	fmt.Fprintf(&b, "bookings         %d (%.1f%% conversion)\n", k.Reservations, 100*k.Conversion)
	fmt.Fprintf(&b, "avg handle time  %.0fs\n", k.AvgHandleTimeSec)
	days := make([]int, 0, len(k.DailyVolume))
	for d := range k.DailyVolume {
		days = append(days, d)
	}
	sort.Ints(days)
	max := 0
	for _, d := range days {
		if k.DailyVolume[d] > max {
			max = k.DailyVolume[d]
		}
	}
	if max > 0 {
		b.WriteString("daily volume     ")
		marks := []rune("▁▂▃▄▅▆▇█")
		for _, d := range days {
			idx := k.DailyVolume[d] * (len(marks) - 1) / max
			b.WriteRune(marks[idx])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// TrainingComparison renders the trained-vs-control KPI contrast the
// §V.C experiment reports.
func TrainingComparison(kpis []AgentKPI) string {
	var tConv, cConv, tVal, cVal float64
	var tN, cN int
	for _, k := range kpis {
		if k.SalesCalls == 0 {
			continue
		}
		if k.Trained {
			tConv += k.Conversion
			tVal += k.ValueRate
			tN++
		} else {
			cConv += k.Conversion
			cVal += k.ValueRate
			cN++
		}
	}
	var b strings.Builder
	if tN > 0 && cN > 0 {
		fmt.Fprintf(&b, "trained (%d agents): conversion %.1f%%, value-selling %.1f%%\n",
			tN, 100*tConv/float64(tN), 100*tVal/float64(tN))
		fmt.Fprintf(&b, "control (%d agents): conversion %.1f%%, value-selling %.1f%%\n",
			cN, 100*cConv/float64(cN), 100*cVal/float64(cN))
	}
	return b.String()
}
