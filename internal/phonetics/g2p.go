package phonetics

import "strings"

// g2pRule maps a spelling chunk to a phone sequence. Longest-match rules
// are tried first at each position; context conditions keep the rule set
// small while covering the regularities that matter for confusability.
type g2pRule struct {
	graph  string  // spelling chunk, lowercase
	phones []Phone // replacement phones (nil = silent)
	// final restricts the rule to word-final position when true.
	final bool
}

// Multi-letter rules in priority order (longest first within a starting
// letter; the table is scanned in order at each position).
var g2pRules = []g2pRule{
	// Four-letter chunks.
	{graph: "ough", phones: []Phone{OW}},
	{graph: "augh", phones: []Phone{AO}},
	{graph: "eigh", phones: []Phone{EY}},
	{graph: "tion", phones: []Phone{SH, AH, N}},
	{graph: "sion", phones: []Phone{ZH, AH, N}},

	// Three-letter chunks.
	{graph: "igh", phones: []Phone{AY}},
	{graph: "tch", phones: []Phone{CH}},
	{graph: "dge", phones: []Phone{JH}},
	{graph: "sch", phones: []Phone{SH}},
	{graph: "ere", phones: []Phone{IH, R}, final: true},
	{graph: "are", phones: []Phone{EH, R}, final: true},
	{graph: "ore", phones: []Phone{AO, R}, final: true},
	{graph: "ire", phones: []Phone{AY, ER}, final: true},
	{graph: "ure", phones: []Phone{ER}, final: true},
	{graph: "ing", phones: []Phone{IH, NG}, final: true},
	{graph: "ies", phones: []Phone{IY, Z}, final: true},
	{graph: "eau", phones: []Phone{OW}},

	// Two-letter chunks.
	{graph: "ch", phones: []Phone{CH}},
	{graph: "sh", phones: []Phone{SH}},
	{graph: "th", phones: []Phone{TH}},
	{graph: "ph", phones: []Phone{F}},
	{graph: "gh", phones: nil}, // silent (light, though handled above)
	{graph: "wh", phones: []Phone{W}},
	{graph: "ck", phones: []Phone{K}},
	{graph: "ng", phones: []Phone{NG}},
	{graph: "qu", phones: []Phone{K, W}},
	{graph: "kn", phones: []Phone{N}},
	{graph: "wr", phones: []Phone{R}},
	{graph: "ps", phones: []Phone{S}},
	{graph: "gn", phones: []Phone{N}},
	{graph: "mb", phones: []Phone{M}, final: true},
	{graph: "ee", phones: []Phone{IY}},
	{graph: "ea", phones: []Phone{IY}},
	{graph: "oo", phones: []Phone{UW}},
	{graph: "ou", phones: []Phone{AW}},
	{graph: "ow", phones: []Phone{OW}},
	{graph: "ai", phones: []Phone{EY}},
	{graph: "ay", phones: []Phone{EY}},
	{graph: "ei", phones: []Phone{EY}},
	{graph: "ey", phones: []Phone{IY}},
	{graph: "oi", phones: []Phone{OY}},
	{graph: "oy", phones: []Phone{OY}},
	{graph: "au", phones: []Phone{AO}},
	{graph: "aw", phones: []Phone{AO}},
	{graph: "ue", phones: []Phone{UW}},
	{graph: "ui", phones: []Phone{UW}},
	{graph: "ie", phones: []Phone{IY}},
	{graph: "oa", phones: []Phone{OW}},
	{graph: "ar", phones: []Phone{AA, R}},
	{graph: "er", phones: []Phone{ER}},
	{graph: "ir", phones: []Phone{ER}},
	{graph: "ur", phones: []Phone{ER}},
	{graph: "or", phones: []Phone{AO, R}},
	{graph: "ll", phones: []Phone{L}},
	{graph: "ss", phones: []Phone{S}},
	{graph: "tt", phones: []Phone{T}},
	{graph: "pp", phones: []Phone{P}},
	{graph: "bb", phones: []Phone{B}},
	{graph: "dd", phones: []Phone{D}},
	{graph: "ff", phones: []Phone{F}},
	{graph: "gg", phones: []Phone{G}},
	{graph: "mm", phones: []Phone{M}},
	{graph: "nn", phones: []Phone{N}},
	{graph: "rr", phones: []Phone{R}},
	{graph: "zz", phones: []Phone{Z}},
	{graph: "cc", phones: []Phone{K}},
}

// singleVowel maps single vowel letters to their default (short) phones.
var singleVowel = map[byte]Phone{
	'a': AE, 'e': EH, 'i': IH, 'o': AA, 'u': AH, 'y': IY,
}

// longVowel maps vowel letters to their "long" (letter-name) phones used
// when a magic-e pattern applies (vowel + single consonant + final e).
var longVowel = map[byte]Phone{
	'a': EY, 'e': IY, 'i': AY, 'o': OW, 'u': UW, 'y': AY,
}

// singleConsonant maps single consonant letters to phones; c and g are
// handled contextually before this table applies.
var singleConsonant = map[byte]Phone{
	'b': B, 'd': D, 'f': F, 'h': HH, 'j': JH, 'k': K, 'l': L, 'm': M,
	'n': N, 'p': P, 'r': R, 's': S, 't': T, 'v': V, 'w': W, 'x': K,
	'z': Z,
}

func isVowelLetter(b byte) bool {
	switch b {
	case 'a', 'e', 'i', 'o', 'u', 'y':
		return true
	}
	return false
}

// exceptions holds hand pronunciations for very frequent words where the
// rules would produce something misleading. Digits and spelled-out
// numbers are here because Table I scores them as their own entity class.
var exceptions = map[string][]Phone{
	"a": {AH}, "an": {AE, N}, "the": {DH, AH}, "of": {AH, V},
	"to": {T, UW}, "do": {D, UW}, "you": {Y, UW}, "your": {Y, AO, R},
	"i": {AY}, "is": {IH, Z}, "was": {W, AA, Z}, "what": {W, AH, T},
	"one": {W, AH, N}, "two": {T, UW}, "three": {TH, R, IY},
	"four": {F, AO, R}, "five": {F, AY, V}, "six": {S, IH, K, S},
	"seven": {S, EH, V, AH, N}, "eight": {EY, T}, "nine": {N, AY, N},
	"zero": {Z, IY, R, OW}, "ten": {T, EH, N},
	"eleven":  {IH, L, EH, V, AH, N},
	"twelve":  {T, W, EH, L, V},
	"twenty":  {T, W, EH, N, T, IY},
	"thirty":  {TH, ER, T, IY},
	"forty":   {F, AO, R, T, IY},
	"fifty":   {F, IH, F, T, IY},
	"sixty":   {S, IH, K, S, T, IY},
	"seventy": {S, EH, V, AH, N, T, IY},
	"eighty":  {EY, T, IY},
	"ninety":  {N, AY, N, T, IY},
	"hundred": {HH, AH, N, D, R, AH, D},
	"oh":      {OW},
	"dollars": {D, AA, L, ER, Z},
	"have":    {HH, AE, V}, "are": {AA, R}, "there": {DH, EH, R},
	"they": {DH, EY}, "said": {S, EH, D}, "says": {S, EH, Z},
	"please": {P, L, IY, Z}, "sir": {S, ER}, "okay": {OW, K, EY},
	"car": {K, AA, R}, "suv": {EH, S, Y, UW, V, IY},
}

// ToPhones converts a lowercase word to its phone sequence using the rule
// table. Unknown characters (digits, punctuation) are skipped; callers
// spell out digit strings first (see SpellDigits).
func ToPhones(word string) []Phone {
	word = strings.ToLower(word)
	if p, ok := exceptions[word]; ok {
		out := make([]Phone, len(p))
		copy(out, p)
		return out
	}
	var out []Phone
	n := len(word)
	i := 0
	for i < n {
		c := word[i]
		// Silent final e after a consonant with at least one prior vowel:
		// lengthen the preceding vowel (magic e) — already emitted, so we
		// approximate by retroactively promoting the last emitted short
		// vowel when the pattern matches.
		if c == 'e' && i == n-1 && i >= 2 && !isVowelLetter(word[i-1]) && isVowelLetter(word[i-2]) {
			promoteMagicE(out, word[i-2])
			i++
			continue
		}
		if r, adv, ok := matchRule(word, i); ok {
			out = append(out, r...)
			i += adv
			continue
		}
		switch {
		case c == 'c':
			// Soft c before e/i/y, else hard.
			if i+1 < n && (word[i+1] == 'e' || word[i+1] == 'i' || word[i+1] == 'y') {
				out = append(out, S)
			} else {
				out = append(out, K)
			}
			i++
		case c == 'g':
			if i+1 < n && (word[i+1] == 'e' || word[i+1] == 'i' || word[i+1] == 'y') {
				out = append(out, JH)
			} else {
				out = append(out, G)
			}
			i++
		case c == 'y' && i == 0:
			out = append(out, Y)
			i++
		case c == 'y' && i == n-1:
			out = append(out, IY)
			i++
		case isVowelLetter(c):
			out = append(out, singleVowel[c])
			i++
		default:
			if p, ok := singleConsonant[c]; ok {
				out = append(out, p)
			}
			// Digits and other characters are skipped silently.
			i++
		}
	}
	return out
}

// promoteMagicE rewrites the final short vowel in out to its long form
// when a magic-e pattern (V C e#) is detected for vowel letter v.
func promoteMagicE(out []Phone, v byte) {
	long, ok := longVowel[v]
	if !ok || len(out) < 2 {
		return
	}
	// The vowel is the second-to-last phone (vowel, consonant).
	idx := len(out) - 2
	if IsVowel(out[idx]) {
		out[idx] = long
	}
}

// matchRule tries the multi-letter rule table at position i, returning
// the phones, the number of bytes consumed, and whether a rule fired.
func matchRule(word string, i int) ([]Phone, int, bool) {
	for _, r := range g2pRules {
		if !strings.HasPrefix(word[i:], r.graph) {
			continue
		}
		if r.final && i+len(r.graph) != len(word) {
			continue
		}
		return r.phones, len(r.graph), true
	}
	return nil, 0, false
}

// digitWords spells single digits; "oh" is the conversational zero.
var digitWords = [10]string{
	"zero", "one", "two", "three", "four", "five", "six", "seven", "eight", "nine",
}

// SpellDigits expands a digit string to its spoken words, digit by digit,
// the way telephone numbers and confirmation codes are read out in calls.
func SpellDigits(s string) []string {
	out := make([]string, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] >= '0' && s[i] <= '9' {
			out = append(out, digitWords[s[i]-'0'])
		}
	}
	return out
}

// DigitWord returns the spoken word for digit d (0-9), or "" otherwise.
func DigitWord(d int) string {
	if d < 0 || d > 9 {
		return ""
	}
	return digitWords[d]
}

// WordForDigitWord is the inverse of DigitWord: it maps a spoken digit
// word ("seven") to its digit rune, reporting ok=false for other words.
func WordForDigitWord(w string) (byte, bool) {
	for i, dw := range digitWords {
		if w == dw {
			return byte('0' + i), true
		}
	}
	if w == "oh" {
		return '0', true
	}
	return 0, false
}
