// Package phonetics models the sound layer of the ASR substrate: a
// US-English phoneme inventory (ARPAbet, 39 phones plus silence — the
// paper's system uses a 54-phone US English set; we use the standard
// CMU 39-phone collapse of the same inventory), a rule-based
// grapheme-to-phoneme converter used to build pronunciation lexicons,
// articulatory confusion classes that parameterize the acoustic noise
// channel, and classic phonetic keys (Soundex and a Metaphone-style
// consonant skeleton) used by the fuzzy database indexes.
//
// The G2P rules do not need to be a perfect model of English orthography.
// What matters for the reproduction is *consistency* (the channel and the
// decoder share one lexicon) and *confusability structure* (similarly
// spelled or similarly sounding words map to nearby phone strings), which
// is exactly what makes name recognition hard in Table I of the paper.
package phonetics

// Phone is an index into the ARPAbet inventory.
type Phone uint8

// The phoneme inventory. Sil is a reserved silence/boundary marker.
const (
	Sil Phone = iota
	AA        // odd
	AE        // at
	AH        // hut
	AO        // ought
	AW        // cow
	AY        // hide
	B
	CH
	D
	DH // thee
	EH // Ed
	ER // hurt
	EY // ate
	F
	G
	HH
	IH // it
	IY // eat
	JH
	K
	L
	M
	N
	NG
	OW // oat
	OY // toy
	P
	R
	S
	SH
	T
	TH // theta
	UH // hood
	UW // two
	V
	W
	Y
	Z
	ZH            // pleasure
	NumPhones int = iota
)

var phoneNames = [...]string{
	"sil", "AA", "AE", "AH", "AO", "AW", "AY", "B", "CH", "D", "DH", "EH",
	"ER", "EY", "F", "G", "HH", "IH", "IY", "JH", "K", "L", "M", "N", "NG",
	"OW", "OY", "P", "R", "S", "SH", "T", "TH", "UH", "UW", "V", "W", "Y",
	"Z", "ZH",
}

// String returns the ARPAbet name of the phone.
func (p Phone) String() string {
	if int(p) < len(phoneNames) {
		return phoneNames[p]
	}
	return "?"
}

// Class groups phones by articulatory similarity; the acoustic channel
// substitutes within a class far more often than across classes, which is
// what makes "similar sounding names get substituted" (§IV.A.1) emerge
// naturally from the simulation.
type Class uint8

// Articulatory classes.
const (
	ClassSilence Class = iota
	ClassVowelFront
	ClassVowelBack
	ClassVowelDiphthong
	ClassStopVoiced
	ClassStopUnvoiced
	ClassFricativeVoiced
	ClassFricativeUnvoiced
	ClassAffricate
	ClassNasal
	ClassLiquid
	ClassGlide
	NumClasses int = iota
)

var phoneClass = map[Phone]Class{
	Sil: ClassSilence,
	IY:  ClassVowelFront, IH: ClassVowelFront, EH: ClassVowelFront, AE: ClassVowelFront,
	AA: ClassVowelBack, AO: ClassVowelBack, AH: ClassVowelBack, UH: ClassVowelBack,
	UW: ClassVowelBack, ER: ClassVowelBack,
	EY: ClassVowelDiphthong, AY: ClassVowelDiphthong, OY: ClassVowelDiphthong,
	AW: ClassVowelDiphthong, OW: ClassVowelDiphthong,
	B: ClassStopVoiced, D: ClassStopVoiced, G: ClassStopVoiced,
	P: ClassStopUnvoiced, T: ClassStopUnvoiced, K: ClassStopUnvoiced,
	V: ClassFricativeVoiced, DH: ClassFricativeVoiced, Z: ClassFricativeVoiced, ZH: ClassFricativeVoiced,
	F: ClassFricativeUnvoiced, TH: ClassFricativeUnvoiced, S: ClassFricativeUnvoiced,
	SH: ClassFricativeUnvoiced, HH: ClassFricativeUnvoiced,
	CH: ClassAffricate, JH: ClassAffricate,
	M: ClassNasal, N: ClassNasal, NG: ClassNasal,
	L: ClassLiquid, R: ClassLiquid,
	W: ClassGlide, Y: ClassGlide,
}

// ClassOf returns the articulatory class of p.
func ClassOf(p Phone) Class {
	if c, ok := phoneClass[p]; ok {
		return c
	}
	return ClassSilence
}

// IsVowel reports whether p is a vowel or diphthong.
func IsVowel(p Phone) bool {
	switch ClassOf(p) {
	case ClassVowelFront, ClassVowelBack, ClassVowelDiphthong:
		return true
	}
	return false
}

// ClassMembers returns all phones in the given class, in inventory order.
func ClassMembers(c Class) []Phone {
	var out []Phone
	for p := Phone(0); int(p) < NumPhones; p++ {
		if ClassOf(p) == c {
			out = append(out, p)
		}
	}
	return out
}

// AllPhones returns the full inventory excluding silence.
func AllPhones() []Phone {
	out := make([]Phone, 0, NumPhones-1)
	for p := Phone(1); int(p) < NumPhones; p++ {
		out = append(out, p)
	}
	return out
}
