package phonetics

import "strings"

// Soundex returns the classic 4-character Soundex code of a word
// (letter + three digits). Non-letters are ignored; an empty input yields
// "0000". The fuzzy name index in the warehouse uses Soundex buckets so
// that partially recognized names from the ASR still land near their
// database entries.
func Soundex(s string) string {
	s = strings.ToUpper(s)
	var first byte
	var prev byte
	var code []byte
	digit := func(c byte) byte {
		switch c {
		case 'B', 'F', 'P', 'V':
			return '1'
		case 'C', 'G', 'J', 'K', 'Q', 'S', 'X', 'Z':
			return '2'
		case 'D', 'T':
			return '3'
		case 'L':
			return '4'
		case 'M', 'N':
			return '5'
		case 'R':
			return '6'
		default:
			return 0 // vowels and H, W, Y
		}
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 'A' || c > 'Z' {
			continue
		}
		d := digit(c)
		if first == 0 {
			first = c
			prev = d
			continue
		}
		// H and W are transparent: they do not reset the previous code.
		if c == 'H' || c == 'W' {
			continue
		}
		if d != 0 && d != prev {
			code = append(code, d)
			if len(code) == 3 {
				break
			}
		}
		prev = d
	}
	if first == 0 {
		return "0000"
	}
	for len(code) < 3 {
		code = append(code, '0')
	}
	return string(first) + string(code)
}

// PhoneKey returns a Metaphone-style phonetic key: the consonant skeleton
// of the word's phone sequence with voicing distinctions collapsed. Words
// that sound alike ("smith"/"smyth", "philip"/"filip") share a key, which
// the linker uses as a fuzzy index into name attributes.
func PhoneKey(word string) string {
	phones := ToPhones(word)
	var b strings.Builder
	var last byte
	for _, p := range phones {
		var c byte
		switch p {
		case B, P:
			c = 'P'
		case D, T:
			c = 'T'
		case G, K:
			c = 'K'
		case F, V:
			c = 'F'
		case S, Z:
			c = 'S'
		case SH, ZH, CH, JH:
			c = 'X'
		case TH, DH:
			c = '0'
		case M:
			c = 'M'
		case N, NG:
			c = 'N'
		case L:
			c = 'L'
		case R:
			c = 'R'
		case HH:
			c = 'H'
		case W:
			c = 'W'
		case Y:
			c = 'J'
		default:
			continue // vowels contribute nothing
		}
		if c != last {
			b.WriteByte(c)
			last = c
		}
	}
	if b.Len() == 0 {
		// All-vowel words key on their first phone name so they do not all
		// collide on the empty string.
		if len(phones) > 0 {
			return phones[0].String()
		}
		return ""
	}
	return b.String()
}

// PhoneDistance returns the weighted edit distance between two phone
// sequences. Substitutions within an articulatory class cost 0.5, across
// classes 1.0; insertions and deletions cost 0.7. This is the similarity
// the constrained second-pass recognizer and the fuzzy name match both
// use — it makes "Jill"/"Gill" far closer than "Jill"/"Frank".
func PhoneDistance(a, b []Phone) float64 {
	const (
		subSameClass = 0.5
		subDiffClass = 1.0
		indel        = 0.7
	)
	la, lb := len(a), len(b)
	// Word phone sequences are short; stack rows keep the DP
	// allocation-free on the linking hot path.
	var pBuf, cBuf [48]float64
	var prev, curr []float64
	if lb+1 > len(pBuf) {
		prev = make([]float64, lb+1)
		curr = make([]float64, lb+1)
	} else {
		prev = pBuf[:lb+1]
		curr = cBuf[:lb+1]
	}
	for j := 0; j <= lb; j++ {
		prev[j] = float64(j) * indel
	}
	for i := 1; i <= la; i++ {
		curr[0] = float64(i) * indel
		for j := 1; j <= lb; j++ {
			sub := prev[j-1]
			if a[i-1] != b[j-1] {
				if ClassOf(a[i-1]) == ClassOf(b[j-1]) {
					sub += subSameClass
				} else {
					sub += subDiffClass
				}
			}
			del := prev[j] + indel
			ins := curr[j-1] + indel
			m := sub
			if del < m {
				m = del
			}
			if ins < m {
				m = ins
			}
			curr[j] = m
		}
		prev, curr = curr, prev
	}
	return prev[lb]
}

// PhoneSimilarity maps PhoneDistance into [0, 1], where 1 is identical.
// It normalizes by the length of the longer sequence.
func PhoneSimilarity(a, b []Phone) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	d := PhoneDistance(a, b) / float64(n)
	if d > 1 {
		d = 1
	}
	return 1 - d
}
