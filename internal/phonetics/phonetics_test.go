package phonetics

import (
	"testing"
	"testing/quick"
)

func TestPhoneString(t *testing.T) {
	if Sil.String() != "sil" || AA.String() != "AA" || ZH.String() != "ZH" {
		t.Error("phone names wrong")
	}
	if Phone(200).String() != "?" {
		t.Error("out-of-range phone should stringify to ?")
	}
}

func TestInventoryComplete(t *testing.T) {
	if NumPhones != 39+1 {
		t.Errorf("NumPhones = %d, want 40 (39 phones + silence)", NumPhones)
	}
	if len(phoneNames) != NumPhones {
		t.Errorf("phoneNames has %d entries", len(phoneNames))
	}
}

func TestEveryPhoneHasClass(t *testing.T) {
	for p := Phone(0); int(p) < NumPhones; p++ {
		if _, ok := phoneClass[p]; !ok {
			t.Errorf("phone %v has no articulatory class", p)
		}
	}
}

func TestClassMembersPartition(t *testing.T) {
	seen := map[Phone]bool{}
	for c := Class(0); int(c) < NumClasses; c++ {
		for _, p := range ClassMembers(c) {
			if seen[p] {
				t.Errorf("phone %v in two classes", p)
			}
			seen[p] = true
		}
	}
	if len(seen) != NumPhones {
		t.Errorf("classes cover %d phones, want %d", len(seen), NumPhones)
	}
}

func TestIsVowel(t *testing.T) {
	for _, p := range []Phone{AA, IY, OW, AY, ER} {
		if !IsVowel(p) {
			t.Errorf("%v should be a vowel", p)
		}
	}
	for _, p := range []Phone{B, S, M, R, Sil} {
		if IsVowel(p) {
			t.Errorf("%v should not be a vowel", p)
		}
	}
}

func TestAllPhonesExcludesSilence(t *testing.T) {
	for _, p := range AllPhones() {
		if p == Sil {
			t.Fatal("AllPhones contains silence")
		}
	}
	if len(AllPhones()) != NumPhones-1 {
		t.Errorf("AllPhones length %d", len(AllPhones()))
	}
}

func TestToPhonesDeterministic(t *testing.T) {
	for _, w := range []string{"reservation", "discount", "chicago", "smith"} {
		a := ToPhones(w)
		b := ToPhones(w)
		if len(a) != len(b) {
			t.Fatalf("non-deterministic for %q", w)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("non-deterministic for %q", w)
			}
		}
	}
}

func TestToPhonesKnownWords(t *testing.T) {
	check := func(word string, want ...Phone) {
		t.Helper()
		got := ToPhones(word)
		if len(got) != len(want) {
			t.Errorf("%q → %v, want %v", word, got, want)
			return
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%q → %v, want %v", word, got, want)
				return
			}
		}
	}
	check("cat", K, AE, T)
	check("ship", SH, IH, P)
	check("three", TH, R, IY)   // exception table
	check("check", CH, EH, K)   // ch + ck rules
	check("rate", R, EY, T)     // magic e
	check("night", N, AY, T)    // igh rule
	check("phone", F, OW, N)    // ph + magic e
	check("quick", K, W, IH, K) // qu rule
	check("car", K, AA, R)      // exception
	check("seven", S, EH, V, AH, N)
}

func TestToPhonesCaseInsensitive(t *testing.T) {
	a, b := ToPhones("SMITH"), ToPhones("smith")
	if len(a) != len(b) {
		t.Fatal("case changed pronunciation length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("case changed pronunciation")
		}
	}
}

func TestToPhonesNeverEmitsSilence(t *testing.T) {
	f := func(s string) bool {
		for _, p := range ToPhones(s) {
			if p == Sil || int(p) >= NumPhones {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestToPhonesSkipsDigits(t *testing.T) {
	if got := ToPhones("a1b"); len(got) != 2 {
		t.Errorf("digits should be silent in ToPhones: %v", got)
	}
	if got := ToPhones("123"); len(got) != 0 {
		t.Errorf("pure digits should produce no phones: %v", got)
	}
}

func TestSimilarNamesAreClose(t *testing.T) {
	pairs := [][2]string{
		{"smith", "smyth"},
		{"philip", "filip"},
		{"jon", "john"},
		{"catherine", "katherine"},
	}
	for _, pr := range pairs {
		sim := PhoneSimilarity(ToPhones(pr[0]), ToPhones(pr[1]))
		far := PhoneSimilarity(ToPhones(pr[0]), ToPhones("wolverhampton"))
		if sim <= far {
			t.Errorf("%s/%s similarity %v should exceed unrelated %v", pr[0], pr[1], sim, far)
		}
		if sim < 0.7 {
			t.Errorf("%s/%s similarity %v too low", pr[0], pr[1], sim)
		}
	}
}

func TestSpellDigits(t *testing.T) {
	got := SpellDigits("507")
	if len(got) != 3 || got[0] != "five" || got[1] != "zero" || got[2] != "seven" {
		t.Errorf("got %v", got)
	}
	if got := SpellDigits("abc"); len(got) != 0 {
		t.Errorf("non-digits spelled: %v", got)
	}
}

func TestDigitWordRoundTrip(t *testing.T) {
	for d := 0; d <= 9; d++ {
		w := DigitWord(d)
		c, ok := WordForDigitWord(w)
		if !ok || c != byte('0'+d) {
			t.Errorf("round trip failed for %d (%s)", d, w)
		}
	}
	if DigitWord(10) != "" || DigitWord(-1) != "" {
		t.Error("out-of-range digit words")
	}
	if c, ok := WordForDigitWord("oh"); !ok || c != '0' {
		t.Error("'oh' should read as zero")
	}
	if _, ok := WordForDigitWord("car"); ok {
		t.Error("'car' is not a digit word")
	}
}

func TestSoundexKnownCodes(t *testing.T) {
	cases := map[string]string{
		"Robert":   "R163",
		"Rupert":   "R163",
		"Ashcraft": "A261",
		"Ashcroft": "A261",
		"Tymczak":  "T522",
		"Pfister":  "P236",
		"Honeyman": "H555",
		"":         "0000",
		"123":      "0000",
	}
	for in, want := range cases {
		if got := Soundex(in); got != want {
			t.Errorf("Soundex(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSoundexProperty(t *testing.T) {
	f := func(s string) bool {
		code := Soundex(s)
		if len(code) != 4 {
			return false
		}
		for i := 1; i < 4; i++ {
			if code[i] < '0' || code[i] > '9' {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPhoneKeyCollisions(t *testing.T) {
	if PhoneKey("smith") != PhoneKey("smyth") {
		t.Errorf("smith=%s smyth=%s should collide", PhoneKey("smith"), PhoneKey("smyth"))
	}
	if PhoneKey("philip") != PhoneKey("filip") {
		t.Error("philip/filip should collide")
	}
	if PhoneKey("smith") == PhoneKey("jones") {
		t.Error("smith/jones should differ")
	}
}

func TestPhoneKeyNonEmptyForWords(t *testing.T) {
	for _, w := range []string{"a", "eye", "oh", "smith", "zebra"} {
		if PhoneKey(w) == "" {
			t.Errorf("empty key for %q", w)
		}
	}
	if PhoneKey("") != "" {
		t.Error("empty word should give empty key")
	}
}

func TestPhoneDistanceProperties(t *testing.T) {
	a := ToPhones("reservation")
	b := ToPhones("cancellation")
	if PhoneDistance(a, a) != 0 {
		t.Error("self distance must be 0")
	}
	if d1, d2 := PhoneDistance(a, b), PhoneDistance(b, a); d1 != d2 {
		t.Errorf("asymmetric: %v vs %v", d1, d2)
	}
	if PhoneDistance(a, nil) != PhoneDistance(nil, a) {
		t.Error("asymmetric against empty")
	}
}

func TestPhoneDistanceTriangleProperty(t *testing.T) {
	words := []string{"car", "card", "care", "cart", "kart", "smith", "smyth", "rate"}
	for _, wa := range words {
		for _, wb := range words {
			for _, wc := range words {
				a, b, c := ToPhones(wa), ToPhones(wb), ToPhones(wc)
				if PhoneDistance(a, c) > PhoneDistance(a, b)+PhoneDistance(b, c)+1e-9 {
					t.Fatalf("triangle violated for %s,%s,%s", wa, wb, wc)
				}
			}
		}
	}
}

func TestPhoneSimilarityRange(t *testing.T) {
	f := func(s1, s2 string) bool {
		v := PhoneSimilarity(ToPhones(s1), ToPhones(s2))
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	if PhoneSimilarity(nil, nil) != 1 {
		t.Error("two empties should be identical")
	}
}

func TestWithinClassCheaperThanAcross(t *testing.T) {
	// b→p (same class: voiced/unvoiced stops are different classes here,
	// use d→b same voiced-stop class) vs d→s (across classes).
	a := []Phone{D}
	same := []Phone{B} // both ClassStopVoiced
	diff := []Phone{S} // fricative
	if PhoneDistance(a, same) >= PhoneDistance(a, diff) {
		t.Error("within-class substitution should be cheaper")
	}
}
