package mining

import (
	"fmt"
	"sort"
	"strings"
)

// Dimension labels form a tiny language, and ParseDim is its parser —
// the round-trip inverse of Dim.Label. It is what makes a dimension
// addressable as a string, so query-serving layers (cmd/bivocd's HTTP
// API) can accept dimensions in URLs and cache results under a
// canonical key.
//
// The grammar, matching exactly what Label emits:
//
//	dim        = conjunct { " ∧ " conjunct }
//	conjunct   = concept | field | category
//	concept    = canonical "[" category "]"     e.g. "weak start[customer intention]"
//	field      = name "=" value                 e.g. "outcome=reservation"
//	category   = text                           e.g. "discount"
//
// The characters '=', '[', ']' and '∧' are reserved: they may appear
// only in the structural positions above. A Dim whose components
// contain a reserved character still works everywhere else in the
// mining layer, but its label is ambiguous and does not round-trip;
// ParseDim rejects such labels rather than guessing.
const andSeparator = " ∧ "

// reservedDimChars may not appear inside a dimension component.
const reservedDimChars = "=[]∧"

// ParseDim parses a dimension label produced by Dim.Label back into the
// Dim it came from: ParseDim(d.Label()) == d for every concept,
// category, field, and (flat) conjunction dimension whose components
// avoid the reserved characters. Conjunction labels are flat — Label
// flattens nested Ands — so ParseDim always returns a single-level And;
// this preserves matching semantics because conjunction is associative.
func ParseDim(label string) (Dim, error) {
	if strings.Contains(label, andSeparator) {
		parts := strings.Split(label, andSeparator)
		children := make([]Dim, len(parts))
		for i, p := range parts {
			c, err := parseConjunct(p)
			if err != nil {
				return Dim{}, fmt.Errorf("mining: parsing dimension %q: conjunct %d: %w", label, i+1, err)
			}
			children[i] = c
		}
		return Dim{And: children}, nil
	}
	d, err := parseConjunct(label)
	if err != nil {
		return Dim{}, fmt.Errorf("mining: parsing dimension %q: %w", label, err)
	}
	return d, nil
}

// parseConjunct parses one non-conjunction dimension.
func parseConjunct(s string) (Dim, error) {
	if s == "" {
		return Dim{}, fmt.Errorf("empty dimension")
	}
	if strings.HasSuffix(s, "]") {
		i := strings.Index(s, "[")
		if i < 0 {
			return Dim{}, fmt.Errorf("%q has ']' without '['", s)
		}
		canonical, category := s[:i], s[i+1:len(s)-1]
		if canonical == "" {
			return Dim{}, fmt.Errorf("%q has an empty canonical form", s)
		}
		if category == "" {
			return Dim{}, fmt.Errorf("%q has an empty category", s)
		}
		if err := checkComponent(canonical); err != nil {
			return Dim{}, err
		}
		if err := checkComponent(category); err != nil {
			return Dim{}, err
		}
		return Dim{Category: category, Canonical: canonical}, nil
	}
	if i := strings.IndexByte(s, '='); i >= 0 {
		field, value := s[:i], s[i+1:]
		if field == "" {
			return Dim{}, fmt.Errorf("%q has an empty field name", s)
		}
		if err := checkComponent(field); err != nil {
			return Dim{}, err
		}
		if err := checkComponent(value); err != nil {
			return Dim{}, err
		}
		return Dim{Field: field, Value: value}, nil
	}
	if err := checkComponent(s); err != nil {
		return Dim{}, err
	}
	return Dim{Category: s}, nil
}

// checkComponent rejects components containing reserved characters,
// which would make the rendered label ambiguous.
func checkComponent(s string) error {
	if strings.ContainsAny(s, reservedDimChars) {
		return fmt.Errorf("component %q contains a reserved character (one of %q)", s, reservedDimChars)
	}
	return nil
}

// CanonicalLabel returns the canonical string form of the dimension —
// the form used as a cache key by the serving layer. For concept,
// category and field dimensions it is Label() verbatim. For
// conjunctions it flattens nesting, deduplicates, and sorts the
// conjunct labels, so semantically equal dimensions share one key:
// conjunction over postings intersections is associative, commutative
// and idempotent, hence "a ∧ b", "b ∧ a" and "a ∧ b ∧ a" all answer
// identically and canonicalize to "a ∧ b".
func (d Dim) CanonicalLabel() string {
	if len(d.And) == 0 {
		return d.Label()
	}
	var leaves []string
	var walk func(Dim)
	walk = func(x Dim) {
		if len(x.And) == 0 {
			leaves = append(leaves, x.Label())
			return
		}
		for _, c := range x.And {
			walk(c)
		}
	}
	walk(d)
	sort.Strings(leaves)
	uniq := leaves[:0]
	for i, l := range leaves {
		if i == 0 || l != leaves[i-1] {
			uniq = append(uniq, l)
		}
	}
	return strings.Join(uniq, andSeparator)
}
