package mining

// Backing is the storage behind an Index: the document store plus the
// three inverted-list families. The materialized in-memory maps that
// Add builds satisfy it, and so does internal/store's mapped segment
// reader, which leaves postings varint-encoded inside an mmap'd
// segment file and decodes them lazily on first touch. Query code
// reaches storage only through this interface — the fast path, the
// naive oracle, and the segment fan-in all do — which is what makes
// query results byte-identical over either representation.
//
// Contract: every postings list is strictly increasing document
// positions in [0, DocCount()), lookups return nil when the key is
// absent, and returned slices are read-only views (the same postings
// contract documented on Index). The Each* enumerations visit every
// list of one family in unspecified order — every caller re-sorts by
// a total order — and hand the list's length as df so implementations
// can answer vocabulary queries without decoding any postings.
// Implementations must be safe for concurrent readers; none of these
// methods mutates.
type Backing interface {
	DocCount() int
	Doc(i int) Document
	// DocID and DocTime return Doc(i).ID / Doc(i).Time without
	// materializing the document: recovery builds ID skip-sets and Trend
	// buckets every matching document, and over a mapped segment each is
	// a couple of varint reads instead of a full record decode.
	DocID(i int) string
	DocTime(i int) int

	ConceptPostings(category, canonical string) []int
	CategoryPostings(category string) []int
	FieldPostings(field, value string) []int

	EachConcept(fn func(category, canonical string, df int))
	EachCategory(fn func(category string, df int))
	EachField(fn func(field, value string, df int))
}

// FromBacking wraps a read-only backing (e.g. a mapped segment) as a
// queryable Index. The backing must already satisfy the postings
// contract — the store validates structure before handing one over.
// Add panics on such an index (mapped segments are sealed by
// construction); callers that want the sealed-index query caches call
// Prepare, which builds them through the interface without decoding
// any postings.
func FromBacking(b Backing) *Index { return &Index{b: b} }

// Backing returns the storage behind the index (read-only).
func (ix *Index) Backing() Backing { return ix.b }

// memBacking is the materialized backing: plain Go maps over heap
// postings slices, built by Add or adopted from a decoded snapshot.
type memBacking struct {
	docs      []Document
	byConcept map[[2]string][]int // {category, canonical} → doc positions
	byCat     map[string][]int    // category → doc positions
	byField   map[[2]string][]int // {field, value} → doc positions
}

func newMemBacking() *memBacking {
	return &memBacking{
		byConcept: make(map[[2]string][]int),
		byCat:     make(map[string][]int),
		byField:   make(map[[2]string][]int),
	}
}

// add indexes a document. Inverted lists record each document at most
// once per key (documents often repeat a concept).
func (m *memBacking) add(doc Document) {
	pos := len(m.docs)
	m.docs = append(m.docs, doc)
	seenC := map[[2]string]bool{}
	seenCat := map[string]bool{}
	for _, c := range doc.Concepts {
		k := [2]string{c.Category, c.Canonical}
		if !seenC[k] {
			seenC[k] = true
			m.byConcept[k] = append(m.byConcept[k], pos)
		}
		if !seenCat[c.Category] {
			seenCat[c.Category] = true
			m.byCat[c.Category] = append(m.byCat[c.Category], pos)
		}
	}
	for f, v := range doc.Fields {
		m.byField[[2]string{f, v}] = append(m.byField[[2]string{f, v}], pos)
	}
}

func (m *memBacking) DocCount() int      { return len(m.docs) }
func (m *memBacking) Doc(i int) Document { return m.docs[i] }
func (m *memBacking) DocID(i int) string { return m.docs[i].ID }
func (m *memBacking) DocTime(i int) int  { return m.docs[i].Time }

func (m *memBacking) ConceptPostings(category, canonical string) []int {
	return m.byConcept[[2]string{category, canonical}]
}

func (m *memBacking) CategoryPostings(category string) []int {
	return m.byCat[category]
}

func (m *memBacking) FieldPostings(field, value string) []int {
	return m.byField[[2]string{field, value}]
}

func (m *memBacking) EachConcept(fn func(category, canonical string, df int)) {
	for k, posts := range m.byConcept {
		fn(k[0], k[1], len(posts))
	}
}

func (m *memBacking) EachCategory(fn func(category string, df int)) {
	for cat, posts := range m.byCat {
		fn(cat, len(posts))
	}
}

func (m *memBacking) EachField(fn func(field, value string, df int)) {
	for k, posts := range m.byField {
		fn(k[0], k[1], len(posts))
	}
}
