package mining

import (
	"sort"
	"sync"
)

// UseNaiveSets forces every query call to run on the original hash-set
// implementations (naive.go) instead of the sorted-postings set algebra
// in this file. It exists as a test oracle, exactly like
// linker.UseNaiveSimilarity: equivalence tests flip it to prove the
// fast path is byte-identical to the original. The flag is read once
// per query call (into the call's queryCtx), so concurrent queries each
// see a consistent setting.
var UseNaiveSets bool

// gallopFactor is the size disparity at which a pair intersection
// switches from the linear merge to galloping (exponential probe +
// binary search) through the longer list. Below it the merge's
// branch-predictable scan wins; above it skipping dominates.
const gallopFactor = 16

// queryCtx is the scratch state of one query call. The Index itself
// stays read-only during queries (the serving layer answers from many
// handler goroutines over one sealed index), so every mutable buffer
// the set algebra needs lives here, pooled across calls: intersections
// accumulate into reusable []int buffers instead of per-call maps.
type queryCtx struct {
	naive bool
	free  [][]int // reusable postings buffers
	lists [][]int // reusable leaf-list headers for k-way intersection
}

var queryCtxPool = sync.Pool{New: func() any { return new(queryCtx) }}

// acquireQueryCtx returns a pooled scratch context with the oracle flag
// sampled once for the whole call.
func acquireQueryCtx() *queryCtx {
	ctx := queryCtxPool.Get().(*queryCtx)
	ctx.naive = UseNaiveSets
	return ctx
}

func releaseQueryCtx(ctx *queryCtx) { queryCtxPool.Put(ctx) }

// getBuf pops a reusable buffer (length 0) from the context.
func (ctx *queryCtx) getBuf() []int {
	if n := len(ctx.free); n > 0 {
		b := ctx.free[n-1]
		ctx.free = ctx.free[:n-1]
		return b[:0]
	}
	return nil
}

// putBuf returns a buffer for reuse by later resolutions in this call
// or, via the pool, by later calls.
func (ctx *queryCtx) putBuf(b []int) {
	if b == nil {
		return
	}
	ctx.free = append(ctx.free, b)
}

// leafPostings returns the inverted list of a non-conjunction
// dimension. The result aliases backing-internal storage (or, on a
// mapped segment, its decoded-postings cache): read-only (see the
// postings contract on Index).
func (ix *Index) leafPostings(d Dim) []int {
	switch {
	case d.Field != "":
		return ix.b.FieldPostings(d.Field, d.Value)
	case d.Canonical != "":
		return ix.b.ConceptPostings(d.Category, d.Canonical)
	default:
		return ix.b.CategoryPostings(d.Category)
	}
}

// resolve returns the sorted postings of any dimension. The result is
// read-only; owned reports whether it is a ctx scratch buffer the
// caller must return via putBuf once done (false when it aliases an
// index-internal list or a memoized conjunction).
func (ix *Index) resolve(ctx *queryCtx, d Dim) (posts []int, owned bool) {
	if len(d.And) == 0 {
		return ix.leafPostings(d), false
	}
	if p := ix.prep; p != nil {
		// Sealed index: memoize the conjunction under its canonical
		// label, so "a ∧ b", "b ∧ a" and "a ∧ b ∧ a" share one entry.
		key := d.CanonicalLabel()
		if posts, ok := p.conjCached(key); ok {
			return posts, false
		}
		res, resOwned := ix.intersectFast(ctx, d.And)
		stored := append([]int(nil), res...) // never alias scratch into the memo
		if resOwned {
			ctx.putBuf(res)
		}
		p.conjStore(key, stored)
		return stored, false
	}
	return ix.intersectFast(ctx, d.And)
}

// gatherLeafLists walks a conjunction tree and appends the inverted
// list of every leaf. Flattening is sound because intersection is
// associative: ∩(a, ∩(b, c)) = ∩(a, b, c).
func (ix *Index) gatherLeafLists(d Dim, lists [][]int) [][]int {
	if len(d.And) == 0 {
		return append(lists, ix.leafPostings(d))
	}
	for _, c := range d.And {
		lists = ix.gatherLeafLists(c, lists)
	}
	return lists
}

// intersectFast intersects the postings of a conjunction's children by
// k-way sorted merge, smallest lists first. Ownership as in resolve.
func (ix *Index) intersectFast(ctx *queryCtx, dims []Dim) (posts []int, owned bool) {
	lists := ctx.lists[:0]
	for _, d := range dims {
		lists = ix.gatherLeafLists(d, lists)
	}
	ctx.lists = lists[:0] // return the header buffer regardless of exit path
	for _, l := range lists {
		if len(l) == 0 {
			return nil, false
		}
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	if len(lists) == 1 {
		return lists[0], false
	}
	cur := intersectInto(ctx.getBuf(), lists[0], lists[1])
	for _, l := range lists[2:] {
		if len(cur) == 0 {
			break
		}
		next := intersectInto(ctx.getBuf(), cur, l)
		ctx.putBuf(cur)
		cur = next
	}
	return cur, true
}

// intersectInto writes the sorted intersection of sorted lists a and b
// into dst (reset to length 0) and returns it. Linear merge for
// comparable sizes, galloping through the longer list when the sizes
// are badly skewed. dst must not alias a or b.
func intersectInto(dst, a, b []int) []int {
	dst = dst[:0]
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return dst
	}
	if len(b) >= gallopFactor*len(a) {
		j := 0
		for _, x := range a {
			j = gallopTo(b, j, x)
			if j == len(b) {
				break
			}
			if b[j] == x {
				dst = append(dst, x)
				j++
			}
		}
		return dst
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			dst = append(dst, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return dst
}

// countIntersect returns |a ∩ b| for sorted lists without materializing
// the intersection — the CountBoth/Associate/RelativeFrequency inner
// loop. Same merge/gallop split as intersectInto.
func countIntersect(a, b []int) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return 0
	}
	n := 0
	if len(b) >= gallopFactor*len(a) {
		j := 0
		for _, x := range a {
			j = gallopTo(b, j, x)
			if j == len(b) {
				break
			}
			if b[j] == x {
				n++
				j++
			}
		}
		return n
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// gallopTo returns the smallest k in [lo, len(b)) with b[k] >= x, or
// len(b) if none, by exponential probing from lo followed by a binary
// search over the bracketed window. Amortized O(log gap) per advance,
// which is what makes skewed intersections sublinear in the long list.
func gallopTo(b []int, lo, x int) int {
	n := len(b)
	if lo >= n || b[lo] >= x {
		return lo
	}
	// Invariant: b[prev] < x.
	prev, step := lo, 1
	for {
		next := prev + step
		if next >= n {
			return prev + 1 + sort.SearchInts(b[prev+1:], x)
		}
		if b[next] >= x {
			return prev + 1 + sort.SearchInts(b[prev+1:next+1], x)
		}
		prev = next
		step <<= 1
	}
}
