package mining

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"bivoc/internal/annotate"
)

// The naive-vs-fast equivalence suite: the hash-set implementations in
// naive.go are the oracle, and every analytics entry point must return
// byte-identical results from the sorted-postings fast path — on raw
// indexes, on Prepared indexes (first call populates the caches, repeat
// calls hit them), and at any Associate worker count.

// withNaive runs fn with the naive oracle implementations selected.
func withNaive(fn func()) {
	old := UseNaiveSets
	UseNaiveSets = true
	defer func() { UseNaiveSets = old }()
	fn()
}

// equivWorld is one randomly generated document collection plus the
// dimension battery exercised against it.
type equivWorld struct {
	ix     *Index
	dims   []Dim    // leaf + conjunction dimensions, incl. empty-result ones
	cats   []string // categories, incl. one absent from the index
	fields []string // field names, incl. one absent from the index
}

// newEquivWorld builds a random index: a few categories with overlapping
// concept vocabularies, a couple of structured fields, and a spread of
// time buckets, so postings lists range from empty through dense.
func newEquivWorld(rng *rand.Rand, ndocs int) *equivWorld {
	cats := []string{"issue", "brand", "sentiment"}
	canon := map[string][]string{
		"issue":     {"billing", "outage", "upgrade", "cancel", "roaming"},
		"brand":     {"acme", "globex", "initech"},
		"sentiment": {"positive", "negative"},
	}
	fieldVals := map[string][]string{
		"outcome": {"reservation", "walkaway", "callback"},
		"agent":   {"A1", "A2", "A3", "A4"},
	}
	ix := NewIndex()
	for i := 0; i < ndocs; i++ {
		var concepts []annotate.Concept
		for _, cat := range cats {
			for _, cn := range canon[cat] {
				if rng.Intn(4) == 0 {
					concepts = append(concepts, annotate.Concept{Category: cat, Canonical: cn})
				}
			}
		}
		// Repeat a concept sometimes: Add must still index it once.
		if len(concepts) > 0 && rng.Intn(3) == 0 {
			concepts = append(concepts, concepts[rng.Intn(len(concepts))])
		}
		fields := map[string]string{}
		for f, vals := range fieldVals {
			if rng.Intn(5) != 0 {
				fields[f] = vals[rng.Intn(len(vals))]
			}
		}
		ix.Add(Document{
			ID:       fmt.Sprintf("doc-%04d", i),
			Concepts: concepts,
			Fields:   fields,
			Time:     rng.Intn(6),
		})
	}
	dims := []Dim{
		ConceptDim("issue", "billing"),
		ConceptDim("issue", "outage"),
		ConceptDim("brand", "acme"),
		ConceptDim("sentiment", "negative"),
		ConceptDim("issue", "no-such-concept"), // empty postings
		CategoryDim("issue"),
		CategoryDim("brand"),
		CategoryDim("missing-category"), // empty postings
		FieldDim("outcome", "reservation"),
		FieldDim("agent", "A2"),
		FieldDim("outcome", "no-such-value"), // empty postings
		AndDim(ConceptDim("issue", "billing"), FieldDim("outcome", "reservation")),
		AndDim(CategoryDim("brand"), ConceptDim("sentiment", "negative"), FieldDim("agent", "A1")),
		// Duplicate leaf: canonicalizes to the same conjunction cache key.
		AndDim(ConceptDim("issue", "cancel"), ConceptDim("issue", "cancel")),
		// Nested conjunction: flattening must agree with the naive recursion.
		AndDim(ConceptDim("issue", "upgrade"),
			AndDim(FieldDim("agent", "A3"), CategoryDim("sentiment"))),
		// Conjunction with an empty leaf short-circuits to no documents.
		AndDim(CategoryDim("issue"), ConceptDim("brand", "no-such-brand")),
	}
	return &equivWorld{
		ix:     ix,
		dims:   dims,
		cats:   append(append([]string(nil), cats...), "missing-category"),
		fields: []string{"outcome", "agent", "missing-field"},
	}
}

// checkEquiv pins every analytics entry point: the fast-path result must
// be deeply (bit-for-bit on floats) equal to the naive oracle's.
func checkEquiv(t *testing.T, w *equivWorld) {
	t.Helper()
	ix := w.ix
	for _, d := range w.dims {
		var want int
		withNaive(func() { want = ix.Count(d) })
		if got := ix.Count(d); got != want {
			t.Fatalf("Count(%s) = %d, naive %d", d.Label(), got, want)
		}
		var wantTrend []TrendPoint
		withNaive(func() { wantTrend = ix.Trend(d) })
		if got := ix.Trend(d); !reflect.DeepEqual(got, wantTrend) {
			t.Fatalf("Trend(%s) = %v, naive %v", d.Label(), got, wantTrend)
		}
	}
	// Pairs: every dimension against a rotating partner keeps the suite
	// quadratic-free while still covering empty/leaf/conjunction mixes.
	for i, a := range w.dims {
		b := w.dims[(i*7+3)%len(w.dims)]
		var wantN int
		withNaive(func() { wantN = ix.CountBoth(a, b) })
		if got := ix.CountBoth(a, b); got != wantN {
			t.Fatalf("CountBoth(%s, %s) = %d, naive %d", a.Label(), b.Label(), got, wantN)
		}
		var wantDocs []Document
		withNaive(func() { wantDocs = ix.DrillDown(a, b) })
		if got := ix.DrillDown(a, b); !reflect.DeepEqual(got, wantDocs) {
			t.Fatalf("DrillDown(%s, %s) diverges from naive", a.Label(), b.Label())
		}
	}
	for _, cat := range w.cats {
		var wantC []string
		withNaive(func() { wantC = ix.ConceptsInCategory(cat) })
		if got := ix.ConceptsInCategory(cat); !reflect.DeepEqual(got, wantC) {
			t.Fatalf("ConceptsInCategory(%q) = %#v, naive %#v", cat, got, wantC)
		}
		for _, d := range w.dims {
			var wantR []Relevance
			withNaive(func() { wantR = ix.RelativeFrequency(cat, d) })
			if got := ix.RelativeFrequency(cat, d); !reflect.DeepEqual(got, wantR) {
				t.Fatalf("RelativeFrequency(%q, %s) diverges from naive:\n got %#v\nwant %#v",
					cat, d.Label(), got, wantR)
			}
		}
	}
	for _, f := range w.fields {
		var wantV []string
		withNaive(func() { wantV = ix.FieldValues(f) })
		if got := ix.FieldValues(f); !reflect.DeepEqual(got, wantV) {
			t.Fatalf("FieldValues(%q) = %#v, naive %#v", f, got, wantV)
		}
	}
	rows := []Dim{w.dims[0], w.dims[2], w.dims[4], w.dims[11]}
	cols := []Dim{w.dims[8], w.dims[9], w.dims[10]}
	for _, conf := range []float64{0, 0.90, 0.95, 0.99} {
		var want *AssocTable
		withNaive(func() { want = ix.Associate(rows, cols, conf) })
		for _, workers := range []int{1, 4, 8} {
			got := ix.AssociateN(rows, cols, conf, workers)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("AssociateN(conf=%v, workers=%d) diverges from naive:\n got %#v\nwant %#v",
					conf, workers, got, want)
			}
		}
	}
	// Degenerate tables must also agree (and not divide by zero).
	var wantEmpty *AssocTable
	withNaive(func() { wantEmpty = ix.Associate(nil, cols, 0.95) })
	if got := ix.AssociateN(nil, cols, 0.95, 8); !reflect.DeepEqual(got, wantEmpty) {
		t.Fatalf("AssociateN with no rows diverges from naive")
	}
}

// TestNaiveFastEquivalence is the core property suite: over random
// worlds, the fast path must be indistinguishable from the hash-set
// oracle, before Prepare, after Prepare (twice, so memoized conjunction
// and Wilson caches are exercised on both the miss and the hit path).
func TestNaiveFastEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20090))
	for trial := 0; trial < 6; trial++ {
		trial := trial
		ndocs := 30 + rng.Intn(150)
		seed := rng.Int63()
		t.Run(fmt.Sprintf("world-%d", trial), func(t *testing.T) {
			w := newEquivWorld(rand.New(rand.NewSource(seed)), ndocs)
			checkEquiv(t, w) // raw index: no prepared caches
			w.ix.Prepare()
			w.ix.Prepare()   // Prepare is idempotent
			checkEquiv(t, w) // prepared: cold caches
			checkEquiv(t, w) // prepared: warm conjunction + Wilson caches
		})
	}
}

// TestAddInvalidatesPrepare pins that growing a Prepared index drops its
// caches rather than serving answers over a stale snapshot.
func TestAddInvalidatesPrepare(t *testing.T) {
	w := newEquivWorld(rand.New(rand.NewSource(7)), 40)
	w.ix.Prepare()
	before := w.ix.ConceptsInCategory("issue")
	w.ix.Add(Document{
		ID: "late-arrival",
		Concepts: []annotate.Concept{
			{Category: "issue", Canonical: "zz-brand-new"},
		},
	})
	after := w.ix.ConceptsInCategory("issue")
	found := false
	for _, c := range after {
		if c == "zz-brand-new" {
			found = true
		}
	}
	if !found {
		t.Fatalf("ConceptsInCategory after post-Prepare Add = %v (stale cache? before: %v)",
			after, before)
	}
	checkEquiv(t, w) // un-prepared again; must still match the oracle
}
