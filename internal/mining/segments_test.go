package mining

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// The segmented-index oracle suite: a SegmentSet over any partition of a
// corpus must be byte-identical (bit-for-bit on floats) to a monolithic
// Index over the same documents, on every Querier entry point, in both
// the fast-path and naive-oracle modes, and across compactions.

// partitionSegments splits docs round-robin into k sealed (Prepared)
// segments. Round-robin interleaves IDs across segments, so per-segment
// doc positions never coincide with monolithic positions — the harshest
// layout for fan-in bugs.
func partitionSegments(docs []Document, k int) []*Index {
	segs := make([]*Index, k)
	for i := range segs {
		segs[i] = NewIndex()
	}
	for i, d := range docs {
		segs[i%k].Add(d)
	}
	for _, ix := range segs {
		ix.Prepare()
	}
	return segs
}

// checkSegmentEquiv pins every Querier entry point: the segmented
// fan-in must deeply equal the monolithic result.
func checkSegmentEquiv(t *testing.T, w *equivWorld, set *SegmentSet) {
	t.Helper()
	ix := w.ix
	if got, want := set.Len(), ix.Len(); got != want {
		t.Fatalf("Len() = %d, monolithic %d", got, want)
	}
	for _, d := range w.dims {
		if got, want := set.Count(d), ix.Count(d); got != want {
			t.Fatalf("Count(%s) = %d, monolithic %d", d.Label(), got, want)
		}
		if got, want := set.Trend(d), ix.Trend(d); !reflect.DeepEqual(got, want) {
			t.Fatalf("Trend(%s) = %v, monolithic %v", d.Label(), got, want)
		}
	}
	for i, a := range w.dims {
		b := w.dims[(i*7+3)%len(w.dims)]
		if got, want := set.CountBoth(a, b), ix.CountBoth(a, b); got != want {
			t.Fatalf("CountBoth(%s, %s) = %d, monolithic %d", a.Label(), b.Label(), got, want)
		}
		if got, want := set.DrillDown(a, b), ix.DrillDown(a, b); !reflect.DeepEqual(got, want) {
			t.Fatalf("DrillDown(%s, %s) diverges from monolithic", a.Label(), b.Label())
		}
	}
	for _, cat := range w.cats {
		if got, want := set.ConceptsInCategory(cat), ix.ConceptsInCategory(cat); !reflect.DeepEqual(got, want) {
			t.Fatalf("ConceptsInCategory(%q) = %#v, monolithic %#v", cat, got, want)
		}
		for _, d := range w.dims {
			got, want := set.RelativeFrequency(cat, d), ix.RelativeFrequency(cat, d)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("RelativeFrequency(%q, %s) diverges from monolithic:\n got %#v\nwant %#v",
					cat, d.Label(), got, want)
			}
		}
	}
	for _, f := range w.fields {
		if got, want := set.FieldValues(f), ix.FieldValues(f); !reflect.DeepEqual(got, want) {
			t.Fatalf("FieldValues(%q) = %#v, monolithic %#v", f, got, want)
		}
	}
	rows := []Dim{w.dims[0], w.dims[2], w.dims[4], w.dims[11]}
	cols := []Dim{w.dims[8], w.dims[9], w.dims[10]}
	for _, conf := range []float64{0, 0.90, 0.95, 0.99} {
		want := ix.AssociateN(rows, cols, conf, 1)
		for _, workers := range []int{1, 4, 8} {
			got := set.AssociateN(rows, cols, conf, workers)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("AssociateN(conf=%v, workers=%d) diverges from monolithic:\n got %#v\nwant %#v",
					conf, workers, got, want)
			}
		}
	}
	if got, want := set.AssociateN(nil, cols, 0.95, 8), ix.AssociateN(nil, cols, 0.95, 8); !reflect.DeepEqual(got, want) {
		t.Fatalf("AssociateN with no rows diverges from monolithic")
	}
}

// TestSegmentSetMatchesMonolithic is the tentpole oracle: segment
// counts {1, 2, 8}, fast and naive modes, prepared and raw monolithic
// baselines, repeated so the prepared caches are hit warm too.
func TestSegmentSetMatchesMonolithic(t *testing.T) {
	rng := rand.New(rand.NewSource(20097))
	for trial := 0; trial < 3; trial++ {
		ndocs := 40 + rng.Intn(140)
		seed := rng.Int63()
		for _, k := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("world-%d-segs-%d", trial, k), func(t *testing.T) {
				w := newEquivWorld(rand.New(rand.NewSource(seed)), ndocs)
				set := NewSegmentSet(partitionSegments(allDocs(w.ix), k)...)
				checkSegmentEquiv(t, w, set) // raw monolithic baseline
				w.ix.Prepare()
				checkSegmentEquiv(t, w, set) // prepared baseline, cold caches
				checkSegmentEquiv(t, w, set) // warm conjunction + Wilson caches
				withNaive(func() { checkSegmentEquiv(t, w, set) })
			})
		}
	}
}

// TestSegmentSetAcrossCompaction pins that MergeSegments is invisible
// to readers: fan-in over 8 segments, over progressively compacted
// sets, and over the fully merged single segment all match the
// monolithic index byte for byte.
func TestSegmentSetAcrossCompaction(t *testing.T) {
	w := newEquivWorld(rand.New(rand.NewSource(41)), 160)
	segs := partitionSegments(allDocs(w.ix), 8)
	w.ix.Prepare()

	checkSegmentEquiv(t, w, NewSegmentSet(segs...))

	// Size-tiered style step: merge the three smallest segments.
	byLen := append([]*Index(nil), segs...)
	for i := 0; i < len(byLen); i++ {
		for j := i + 1; j < len(byLen); j++ {
			if byLen[j].Len() < byLen[i].Len() {
				byLen[i], byLen[j] = byLen[j], byLen[i]
			}
		}
	}
	merged := MergeSegments(byLen[0], byLen[1], byLen[2])
	compacted := append([]*Index{merged}, byLen[3:]...)
	checkSegmentEquiv(t, w, NewSegmentSet(compacted...))
	withNaive(func() { checkSegmentEquiv(t, w, NewSegmentSet(compacted...)) })

	// Full compaction down to one segment.
	one := MergeSegments(segs...)
	checkSegmentEquiv(t, w, NewSegmentSet(one))
	if one.Len() != w.ix.Len() {
		t.Fatalf("fully merged segment has %d docs, corpus %d", one.Len(), w.ix.Len())
	}
}

// TestSegmentSetEdgeCases pins the degenerate shapes: no segments,
// empty member segments, and a single-doc corpus.
func TestSegmentSetEdgeCases(t *testing.T) {
	empty := NewSegmentSet()
	if empty.Len() != 0 || empty.Count(CategoryDim("issue")) != 0 {
		t.Fatalf("empty SegmentSet is not empty")
	}
	if got := empty.DrillDown(CategoryDim("issue"), CategoryDim("brand")); got != nil {
		t.Fatalf("empty DrillDown = %#v, want nil", got)
	}
	if got := empty.ConceptsInCategory("issue"); got == nil || len(got) != 0 {
		t.Fatalf("empty ConceptsInCategory = %#v, want non-nil empty", got)
	}
	if got := empty.FieldValues("outcome"); got != nil {
		t.Fatalf("empty FieldValues = %#v, want nil", got)
	}
	if got := empty.Trend(CategoryDim("issue")); got == nil || len(got) != 0 {
		t.Fatalf("empty Trend = %#v, want non-nil empty", got)
	}
	tbl := empty.AssociateN([]Dim{CategoryDim("issue")}, []Dim{FieldDim("outcome", "x")}, 0.95, 4)
	if tbl.Cells[0][0].N != 0 || tbl.Cells[0][0].PointIndex != 0 {
		t.Fatalf("empty AssociateN cell = %#v, want zero cell", tbl.Cells[0][0])
	}

	// A set containing empty segments must behave like the non-empty one.
	w := newEquivWorld(rand.New(rand.NewSource(9)), 60)
	w.ix.Prepare()
	segs := partitionSegments(allDocs(w.ix), 3)
	padded := append([]*Index{NewIndex()}, segs...)
	padded = append(padded, NewIndex())
	for _, ix := range padded {
		ix.Prepare()
	}
	checkSegmentEquiv(t, w, NewSegmentSet(padded...))
}
