package mining

import (
	"math/rand"
	"reflect"
	"testing"

	"bivoc/internal/annotate"
)

// snapshotWorld builds a deterministic pseudo-random corpus exercising
// every dimension family: concepts across several categories, fields,
// and time buckets.
func snapshotWorld(t *testing.T, n int, seed int64) *Index {
	t.Helper()
	rnd := rand.New(rand.NewSource(seed))
	cats := []string{"intent", "discount", "place"}
	canon := []string{"weak start", "strong start", "aaa", "coupon", "austin", "dallas"}
	fields := []string{"outcome", "agent"}
	vals := []string{"reservation", "unbooked", "service", "A1", "A2"}
	si := NewStreamIndex()
	for i := 0; i < n; i++ {
		var cs []annotate.Concept
		for j := 0; j < rnd.Intn(4); j++ {
			cs = append(cs, annotate.Concept{
				Category:  cats[rnd.Intn(len(cats))],
				Canonical: canon[rnd.Intn(len(canon))],
				Start:     rnd.Intn(10),
				End:       rnd.Intn(10) + 10,
			})
		}
		fs := map[string]string{}
		for j := 0; j < rnd.Intn(3); j++ {
			fs[fields[rnd.Intn(len(fields))]] = vals[rnd.Intn(len(vals))]
		}
		si.Add(Document{
			ID:       "doc-" + string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260)),
			Concepts: cs,
			Fields:   fs,
			Time:     rnd.Intn(7),
		})
	}
	return si.Seal()
}

// TestSnapshotRoundTrip pins Export → FromSnapshot as a lossless round
// trip: the rebuilt index answers every query family identically.
func TestSnapshotRoundTrip(t *testing.T) {
	ix := snapshotWorld(t, 150, 42)
	got, err := FromSnapshot(ix.Export())
	if err != nil {
		t.Fatal(err)
	}
	got.Prepare()

	if got.Len() != ix.Len() {
		t.Fatalf("Len: got %d want %d", got.Len(), ix.Len())
	}
	dims := []Dim{
		ConceptDim("intent", "weak start"),
		CategoryDim("discount"),
		FieldDim("outcome", "reservation"),
		AndDim(CategoryDim("intent"), FieldDim("outcome", "reservation")),
	}
	for _, d := range dims {
		if a, b := got.Count(d), ix.Count(d); a != b {
			t.Errorf("Count(%s): got %d want %d", d.Label(), a, b)
		}
		if !reflect.DeepEqual(got.Trend(d), ix.Trend(d)) {
			t.Errorf("Trend(%s) diverges", d.Label())
		}
	}
	if !reflect.DeepEqual(got.DrillDown(dims[0], dims[2]), ix.DrillDown(dims[0], dims[2])) {
		t.Error("DrillDown diverges")
	}
	if !reflect.DeepEqual(
		got.RelativeFrequency("discount", dims[2]),
		ix.RelativeFrequency("discount", dims[2])) {
		t.Error("RelativeFrequency diverges")
	}
	if !reflect.DeepEqual(
		got.Associate(dims[:2], dims[2:3], 0.95),
		ix.Associate(dims[:2], dims[2:3], 0.95)) {
		t.Error("Associate diverges")
	}
	for _, cat := range []string{"intent", "discount", "place", "absent"} {
		if !reflect.DeepEqual(got.ConceptsInCategory(cat), ix.ConceptsInCategory(cat)) {
			t.Errorf("ConceptsInCategory(%s) diverges", cat)
		}
	}
	for _, f := range []string{"outcome", "agent", "absent"} {
		if !reflect.DeepEqual(got.FieldValues(f), ix.FieldValues(f)) {
			t.Errorf("FieldValues(%s) diverges", f)
		}
	}
}

// TestSnapshotExportDeterministic: two exports of the same index are
// deeply equal — entry order must not depend on map iteration.
func TestSnapshotExportDeterministic(t *testing.T) {
	ix := snapshotWorld(t, 80, 7)
	a, b := ix.Export(), ix.Export()
	if !reflect.DeepEqual(a, b) {
		t.Error("two Exports of the same index differ")
	}
}

// TestFromSnapshotRejectsInvalid pins the validation paths: out-of-range
// positions, unsorted lists, and duplicate keys must all be refused.
func TestFromSnapshotRejectsInvalid(t *testing.T) {
	base := func() *IndexSnapshot {
		return snapshotWorld(t, 20, 3).Export()
	}
	cases := []struct {
		name string
		warp func(*IndexSnapshot)
	}{
		{"concept position out of range", func(s *IndexSnapshot) {
			s.Concepts[0].Posts = append([]int(nil), s.Concepts[0].Posts...)
			s.Concepts[0].Posts[0] = len(s.Docs)
		}},
		{"negative position", func(s *IndexSnapshot) {
			s.Fields[0].Posts = append([]int{-1}, s.Fields[0].Posts...)
		}},
		{"unsorted category postings", func(s *IndexSnapshot) {
			s.Categories[0].Posts = []int{3, 1}
		}},
		{"duplicate position", func(s *IndexSnapshot) {
			s.Categories[0].Posts = []int{2, 2}
		}},
		{"duplicate concept key", func(s *IndexSnapshot) {
			s.Concepts = append(s.Concepts, s.Concepts[0])
		}},
		{"duplicate field key", func(s *IndexSnapshot) {
			s.Fields = append(s.Fields, s.Fields[0])
		}},
		{"duplicate category key", func(s *IndexSnapshot) {
			s.Categories = append(s.Categories, s.Categories[0])
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.warp(s)
			if _, err := FromSnapshot(s); err == nil {
				t.Error("FromSnapshot accepted an invalid snapshot")
			}
		})
	}
}
