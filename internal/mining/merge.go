package mining

import (
	"runtime"
	"sort"
	"sync"

	"bivoc/internal/stats"
)

// This file is the single home of the marginal-merge math: every §IV.D
// operation that ends in float arithmetic (relative-frequency ratios,
// Wilson-interval association indexes) is split into an integer
// "marginals" half and a float "finalize" half. Marginals from disjoint
// document sets merge by plain integer addition, and only the merged
// counts enter the float pipeline — never per-part floats — so a result
// assembled from N parts is byte-identical to the same operation over
// the union corpus. Both in-process segment fan-in (SegmentSet) and the
// cross-process federation coordinator (internal/fed) call exactly
// these helpers; neither carries its own copy of the math.
//
// The marginal types carry JSON tags because they are also the wire
// format of the shard-side /v1/marginals/* endpoints.

// ConceptCount is one concept's document frequency within a category —
// the merged-df unit behind ConceptsInCategory's report order.
type ConceptCount struct {
	Concept string `json:"concept"`
	DF      int    `json:"df"`
}

// MergeConceptCounts sums document frequencies per concept across parts
// with disjoint document sets and returns the vocabulary in report
// order (frequency descending, ties lexicographic) — the same total
// order a monolithic index's ConceptsInCategory uses.
func MergeConceptCounts(parts ...[]ConceptCount) []ConceptCount {
	df := map[string]int{}
	for _, part := range parts {
		for _, c := range part {
			df[c.Concept] += c.DF
		}
	}
	out := make([]ConceptCount, 0, len(df))
	for concept, n := range df {
		out = append(out, ConceptCount{Concept: concept, DF: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].DF != out[j].DF {
			return out[i].DF > out[j].DF
		}
		return out[i].Concept < out[j].Concept
	})
	return out
}

// ConceptNames projects a merged vocabulary onto its concept names.
func ConceptNames(counts []ConceptCount) []string {
	out := make([]string, len(counts))
	for i, c := range counts {
		out[i] = c.Concept
	}
	return out
}

// ConceptMarginal holds one concept's integer marginals for a
// relative-frequency report: its document frequency inside the featured
// subset and in the whole part.
type ConceptMarginal struct {
	Concept  string `json:"concept"`
	InSubset int    `json:"in_subset"`
	InAll    int    `json:"in_all"`
}

// RelFreqMarginals are the integer marginals of one relative-frequency
// computation over some document set: the part's size, the featured
// subset's size within it, and per-concept counts (sorted by concept
// for a deterministic wire form).
type RelFreqMarginals struct {
	N          int               `json:"n"`
	SubsetSize int               `json:"subset_size"`
	Concepts   []ConceptMarginal `json:"concepts"`
}

// MergeRelFreqMarginals merges relative-frequency marginals from parts
// with disjoint document sets: sizes and per-concept counts add.
func MergeRelFreqMarginals(parts ...RelFreqMarginals) RelFreqMarginals {
	out := RelFreqMarginals{}
	merged := map[string]*ConceptMarginal{}
	var order []string
	for _, p := range parts {
		out.N += p.N
		out.SubsetSize += p.SubsetSize
		for _, c := range p.Concepts {
			a := merged[c.Concept]
			if a == nil {
				a = &ConceptMarginal{Concept: c.Concept}
				merged[c.Concept] = a
				order = append(order, c.Concept)
			}
			a.InSubset += c.InSubset
			a.InAll += c.InAll
		}
	}
	sort.Strings(order)
	if len(order) > 0 {
		out.Concepts = make([]ConceptMarginal, 0, len(order))
		for _, concept := range order {
			out.Concepts = append(out.Concepts, *merged[concept])
		}
	}
	return out
}

// FinalizeRelFreq runs the monolithic relative-frequency float pipeline
// over (merged) integer marginals: per-concept density ratios, then the
// report order (ratio descending, ties by concept). This is the only
// implementation of that math; Index and SegmentSet both end here.
func FinalizeRelFreq(m RelFreqMarginals) []Relevance {
	var out []Relevance
	for _, c := range m.Concepts {
		r := Relevance{
			Concept:  c.Concept,
			InSubset: c.InSubset, SubsetSize: m.SubsetSize,
			InAll: c.InAll, N: m.N,
		}
		if m.SubsetSize > 0 && c.InAll > 0 && m.N > 0 {
			pSub := float64(c.InSubset) / float64(m.SubsetSize)
			pAll := float64(c.InAll) / float64(m.N)
			r.Ratio = pSub / pAll
		}
		out = append(out, r)
	}
	// Concepts are unique within a category, so (Ratio desc, Concept asc)
	// is a total order and the report is deterministic regardless of the
	// marginals' order.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ratio != out[j].Ratio {
			return out[i].Ratio > out[j].Ratio
		}
		return out[i].Concept < out[j].Concept
	})
	return out
}

// AssocMarginals are the integer marginals of one association table
// over some document set: the part's size, per-row and per-column
// dimension counts, and the per-cell joint counts ([row][col]).
type AssocMarginals struct {
	N     int     `json:"n"`
	Nver  []int   `json:"nver"`
	Nhor  []int   `json:"nhor"`
	Ncell [][]int `json:"ncell"`
}

// MergeAssocMarginals merges association marginals from parts with
// disjoint document sets (all parts computed for the same row/column
// dimensions): every count adds. Zero parts yield the zero value.
func MergeAssocMarginals(parts ...AssocMarginals) AssocMarginals {
	out := AssocMarginals{}
	for _, p := range parts {
		if out.Nver == nil {
			out.Nver = make([]int, len(p.Nver))
			out.Nhor = make([]int, len(p.Nhor))
			out.Ncell = make([][]int, len(p.Ncell))
			for i := range out.Ncell {
				out.Ncell[i] = make([]int, len(p.Nhor))
			}
		}
		out.N += p.N
		for i, n := range p.Nver {
			out.Nver[i] += n
		}
		for j, n := range p.Nhor {
			out.Nhor[j] += n
		}
		for i, row := range p.Ncell {
			for j, n := range row {
				out.Ncell[i][j] += n
			}
		}
	}
	return out
}

// FinalizeAssoc runs the monolithic association float pipeline over
// (merged) integer marginals: point index, Wilson intervals via
// stats.WilsonIntervalZ on the merged counts — never averaged per-part
// intervals — and within-row shares. The cell grid fans across workers
// with the same striping as Index.AssociateN, and the table is
// byte-identical at any worker count. m must be shaped for rows × cols.
func FinalizeAssoc(rows, cols []Dim, confidence float64, workers int, m AssocMarginals) *AssocTable {
	return assocTableFromMarginals(rows, cols, confidence, workers, m.N, m.Nver, m.Nhor,
		func(i, j int) int { return m.Ncell[i][j] }, nil)
}

// assocTableFromMarginals is the shared core of every association-table
// build: Index.AssociateN, SegmentSet.AssociateN and FinalizeAssoc all
// assemble their tables here, so there is exactly one copy of the cell
// float math. ncell supplies each cell's joint count (a precomputed
// merged count, or a live postings intersection — workers call it
// concurrently, so it must be safe for concurrent reads). wilson, when
// non-nil, overrides the marginal-interval source (the sealed-index
// Wilson cache); it must be bit-identical to stats.WilsonIntervalZ.
func assocTableFromMarginals(rows, cols []Dim, confidence float64, workers int,
	n int, nver, nhor []int, ncell func(i, j int) int,
	wilson func(successes int, z float64) stats.Interval) *AssocTable {
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	z := stats.WilsonZ(confidence)
	if wilson == nil {
		wilson = func(successes int, z float64) stats.Interval {
			return stats.WilsonIntervalZ(successes, n, z)
		}
	}
	tbl := &AssocTable{Rows: rows, Cols: cols, Confidence: confidence}
	tbl.Cells = make([][]Cell, len(rows))
	for i := range tbl.Cells {
		tbl.Cells[i] = make([]Cell, len(cols))
	}
	verIv := make([]stats.Interval, len(rows))
	horIv := make([]stats.Interval, len(cols))
	for i := range rows {
		verIv[i] = wilson(nver[i], z)
	}
	for j := range cols {
		horIv[j] = wilson(nhor[j], z)
	}

	// fill computes one cell from read-only inputs into its own slot —
	// the float operation order every caller shares.
	fill := func(i, j int) {
		nc := ncell(i, j)
		cell := Cell{
			Row: rows[i], Col: cols[j],
			Ncell: nc, Nver: nver[i], Nhor: nhor[j], N: n,
		}
		if n > 0 && nver[i] > 0 && nhor[j] > 0 {
			pCell := float64(nc) / float64(n)
			pVer := float64(nver[i]) / float64(n)
			pHor := float64(nhor[j]) / float64(n)
			if pVer > 0 && pHor > 0 {
				cell.PointIndex = pCell / (pVer * pHor)
			}
			// Conservative (smallest) value of the index: lower bound
			// of the cell density over upper bounds of the marginals.
			cellIv := stats.WilsonIntervalZ(nc, n, z)
			if verIv[i].Hi > 0 && horIv[j].Hi > 0 {
				cell.LowerIndex = cellIv.Lo / (verIv[i].Hi * horIv[j].Hi)
			}
		}
		tbl.Cells[i][j] = cell
	}

	cells := len(rows) * len(cols)
	w := workers
	if w <= 0 {
		w = AssociateWorkers
	}
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > cells {
		w = cells
	}
	if w <= 1 {
		for k := 0; k < cells; k++ {
			fill(k/len(cols), k%len(cols))
		}
	} else {
		var wg sync.WaitGroup
		for wkr := 0; wkr < w; wkr++ {
			wg.Add(1)
			go func(wkr int) {
				defer wg.Done()
				for k := wkr; k < cells; k += w {
					fill(k/len(cols), k%len(cols))
				}
			}(wkr)
		}
		wg.Wait()
	}

	for i := range rows {
		rowTotal := 0
		for j := range cols {
			rowTotal += tbl.Cells[i][j].Ncell
		}
		if rowTotal > 0 {
			for j := range cols {
				tbl.Cells[i][j].RowShare = float64(tbl.Cells[i][j].Ncell) / float64(rowTotal)
			}
		}
	}
	return tbl
}

// MergeFieldValues unions per-part field vocabularies, sorted; nil when
// every part is empty (matching FieldValues on a monolithic index).
func MergeFieldValues(parts ...[]string) []string {
	seen := map[string]bool{}
	var out []string
	for _, part := range parts {
		for _, v := range part {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Strings(out)
	return out
}

// MergeTrends sums per-part time-bucket counts over disjoint document
// sets, sorted by time. Always non-nil, like the monolithic Trend.
func MergeTrends(parts ...[]TrendPoint) []TrendPoint {
	counts := map[int]int{}
	for _, part := range parts {
		for _, p := range part {
			counts[p.Time] += p.Count
		}
	}
	out := make([]TrendPoint, 0, len(counts))
	for t, c := range counts {
		out = append(out, TrendPoint{t, c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}
