package mining

import "sort"

// Marginal extraction — the integer halves of the split operations in
// merge.go, as implemented by the monolithic Index. SegmentSet carries
// the fan-in versions (merge the per-segment extractions), and the
// serving layer exposes these on the shard-side /v1/marginals/*
// endpoints so a federation coordinator can finish the float math once
// over merged counts.

// ConceptDF returns a category's vocabulary with document frequencies,
// in report order (frequency descending, ties lexicographic) — the
// counted form of ConceptsInCategory.
func (ix *Index) ConceptDF(category string) []ConceptCount {
	if p := ix.prep; p != nil && !UseNaiveSets {
		entries := p.catEntries[category]
		out := make([]ConceptCount, len(entries))
		for i, e := range entries {
			out[i] = ConceptCount{Concept: e.canon, DF: e.df}
		}
		return out
	}
	out := []ConceptCount{} // non-nil even when the category is absent
	ix.b.EachConcept(func(cat, canon string, df int) {
		if cat == category {
			out = append(out, ConceptCount{Concept: canon, DF: df})
		}
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].DF != out[j].DF {
			return out[i].DF > out[j].DF
		}
		return out[i].Concept < out[j].Concept
	})
	return out
}

// RelFreqMarginals extracts the integer marginals of a
// relative-frequency report over this index's documents: the corpus
// size, the featured subset's size, and each category concept's
// frequency inside the subset and overall. Concepts are sorted by name
// for a deterministic wire form; FinalizeRelFreq re-orders by ratio.
func (ix *Index) RelFreqMarginals(category string, featured Dim) RelFreqMarginals {
	ctx := acquireQueryCtx()
	defer releaseQueryCtx(ctx)
	subset, owned := segPostings(ix, ctx, featured)
	m := RelFreqMarginals{N: ix.b.DocCount(), SubsetSize: len(subset)}
	addConcept := func(canon string, posts []int) {
		m.Concepts = append(m.Concepts, ConceptMarginal{
			Concept:  canon,
			InSubset: countIntersect(posts, subset),
			InAll:    len(posts),
		})
	}
	if p := ix.prep; p != nil && !ctx.naive {
		for _, e := range p.catEntries[category] {
			addConcept(e.canon, ix.b.ConceptPostings(category, e.canon))
		}
	} else {
		ix.b.EachConcept(func(cat, canon string, _ int) {
			if cat == category {
				addConcept(canon, ix.b.ConceptPostings(cat, canon))
			}
		})
	}
	if owned {
		ctx.putBuf(subset)
	}
	sort.Slice(m.Concepts, func(i, j int) bool { return m.Concepts[i].Concept < m.Concepts[j].Concept })
	return m
}

// AssocMarginals extracts the integer marginals of an association table
// over this index's documents: per-dimension counts and per-cell joint
// counts, shaped rows × cols.
func (ix *Index) AssocMarginals(rows, cols []Dim) AssocMarginals {
	ctx := acquireQueryCtx()
	defer releaseQueryCtx(ctx)
	rowPosts := segMarginPostings(ix, ctx, rows)
	colPosts := segMarginPostings(ix, ctx, cols)
	m := AssocMarginals{
		N:     ix.b.DocCount(),
		Nver:  make([]int, len(rows)),
		Nhor:  make([]int, len(cols)),
		Ncell: make([][]int, len(rows)),
	}
	for i, posts := range rowPosts {
		m.Nver[i] = len(posts)
	}
	for j, posts := range colPosts {
		m.Nhor[j] = len(posts)
	}
	for i := range rows {
		m.Ncell[i] = make([]int, len(cols))
		for j := range cols {
			m.Ncell[i][j] = countIntersect(rowPosts[i], colPosts[j])
		}
	}
	return m
}
