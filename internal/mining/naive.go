package mining

import (
	"sort"

	"bivoc/internal/stats"
)

// This file preserves the original hash-set implementations of the
// query engine, verbatim, behind the UseNaiveSets oracle flag (the same
// shape as linker.UseNaiveSimilarity): equivalence tests flip the flag
// to prove the sorted-postings fast path in hotpath.go returns
// byte-identical results. Nothing here is reached unless UseNaiveSets
// is set when a query call acquires its queryCtx.

// postingsNaive returns the document positions matching a dimension.
func (ix *Index) postingsNaive(d Dim) []int {
	if len(d.And) > 0 {
		return ix.intersectNaive(d.And)
	}
	switch {
	case d.Field != "":
		return ix.b.FieldPostings(d.Field, d.Value)
	case d.Canonical != "":
		return ix.b.ConceptPostings(d.Category, d.Canonical)
	default:
		return ix.b.CategoryPostings(d.Category)
	}
}

// intersectNaive returns document positions matching every dimension,
// smallest-list-first for efficiency.
func (ix *Index) intersectNaive(dims []Dim) []int {
	if len(dims) == 0 {
		return nil
	}
	lists := make([][]int, len(dims))
	for i, d := range dims {
		lists[i] = ix.postingsNaive(d)
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	current := map[int]bool{}
	for _, p := range lists[0] {
		current[p] = true
	}
	for _, list := range lists[1:] {
		next := map[int]bool{}
		for _, p := range list {
			if current[p] {
				next[p] = true
			}
		}
		current = next
		if len(current) == 0 {
			break
		}
	}
	out := make([]int, 0, len(current))
	for p := range current {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// countBothNaive counts documents matching both dimensions through a
// materialized hash set.
func (ix *Index) countBothNaive(a, b Dim) int {
	pa, pb := ix.postingsNaive(a), ix.postingsNaive(b)
	if len(pa) > len(pb) {
		pa, pb = pb, pa
	}
	set := make(map[int]bool, len(pa))
	for _, p := range pa {
		set[p] = true
	}
	n := 0
	for _, p := range pb {
		if set[p] {
			n++
		}
	}
	return n
}

// drillDownNaive returns the documents matching both dimensions via a
// hash-set membership scan.
func (ix *Index) drillDownNaive(a, b Dim) []Document {
	pa, pb := ix.postingsNaive(a), ix.postingsNaive(b)
	set := make(map[int]bool, len(pa))
	for _, p := range pa {
		set[p] = true
	}
	var out []Document
	for _, p := range pb {
		if set[p] {
			out = append(out, ix.b.Doc(p))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// conceptsInCategoryNaive scans the concept map for the category.
func (ix *Index) conceptsInCategoryNaive(category string) []string {
	type cc struct {
		canon string
		n     int
	}
	var all []cc
	ix.b.EachConcept(func(cat, canon string, df int) {
		if cat == category {
			all = append(all, cc{canon, df})
		}
	})
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].canon < all[j].canon
	})
	out := make([]string, len(all))
	for i, c := range all {
		out[i] = c.canon
	}
	return out
}

// fieldValuesNaive scans the field map for the field's values.
func (ix *Index) fieldValuesNaive(field string) []string {
	var out []string
	ix.b.EachField(func(f, value string, _ int) {
		if f == field {
			out = append(out, value)
		}
	})
	sort.Strings(out)
	return out
}

// relativeFrequencyNaive is the hash-set relevancy analysis.
func (ix *Index) relativeFrequencyNaive(category string, featured Dim) []Relevance {
	subset := ix.postingsNaive(featured)
	subSet := make(map[int]bool, len(subset))
	for _, p := range subset {
		subSet[p] = true
	}
	n := ix.b.DocCount()
	var out []Relevance
	ix.b.EachConcept(func(cat, canon string, _ int) {
		if cat != category {
			return
		}
		posts := ix.b.ConceptPostings(cat, canon)
		inSub := 0
		for _, p := range posts {
			if subSet[p] {
				inSub++
			}
		}
		r := Relevance{
			Concept:  canon,
			InSubset: inSub, SubsetSize: len(subset),
			InAll: len(posts), N: n,
		}
		if len(subset) > 0 && len(posts) > 0 && n > 0 {
			pSub := float64(inSub) / float64(len(subset))
			pAll := float64(len(posts)) / float64(n)
			r.Ratio = pSub / pAll
		}
		out = append(out, r)
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ratio != out[j].Ratio {
			return out[i].Ratio > out[j].Ratio
		}
		return out[i].Concept < out[j].Concept
	})
	return out
}

// associateNaive builds the association table sequentially, recomputing
// every column marginal (and its Wilson interval) once per row — the
// original shape the hoisted fast path is proven against.
func (ix *Index) associateNaive(rows, cols []Dim, confidence float64) *AssocTable {
	n := ix.b.DocCount()
	tbl := &AssocTable{Rows: rows, Cols: cols, Confidence: confidence}
	tbl.Cells = make([][]Cell, len(rows))
	for i, rd := range rows {
		tbl.Cells[i] = make([]Cell, len(cols))
		nver := len(ix.postingsNaive(rd))
		for j, cd := range cols {
			nhor := len(ix.postingsNaive(cd))
			ncell := ix.countBothNaive(rd, cd)
			cell := Cell{
				Row: rd, Col: cd,
				Ncell: ncell, Nver: nver, Nhor: nhor, N: n,
			}
			if n > 0 && nver > 0 && nhor > 0 {
				pCell := float64(ncell) / float64(n)
				pVer := float64(nver) / float64(n)
				pHor := float64(nhor) / float64(n)
				if pVer > 0 && pHor > 0 {
					cell.PointIndex = pCell / (pVer * pHor)
				}
				// Conservative (smallest) value of the index: lower bound
				// of the cell density over upper bounds of the marginals.
				cellIv := stats.WilsonInterval(ncell, n, confidence)
				verIv := stats.WilsonInterval(nver, n, confidence)
				horIv := stats.WilsonInterval(nhor, n, confidence)
				if verIv.Hi > 0 && horIv.Hi > 0 {
					cell.LowerIndex = cellIv.Lo / (verIv.Hi * horIv.Hi)
				}
			}
			tbl.Cells[i][j] = cell
		}
		rowTotal := 0
		for j := range cols {
			rowTotal += tbl.Cells[i][j].Ncell
		}
		if rowTotal > 0 {
			for j := range cols {
				tbl.Cells[i][j].RowShare = float64(tbl.Cells[i][j].Ncell) / float64(rowTotal)
			}
		}
	}
	return tbl
}

// trendNaive buckets the naive postings by document time.
func (ix *Index) trendNaive(d Dim) []TrendPoint {
	counts := map[int]int{}
	for _, p := range ix.postingsNaive(d) {
		counts[ix.b.DocTime(p)]++
	}
	out := make([]TrendPoint, 0, len(counts))
	for t, c := range counts {
		out = append(out, TrendPoint{t, c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}
