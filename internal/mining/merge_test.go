package mining

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// The merge-helper oracle suite: the exported marginal-merge API
// (MergeConceptCounts, MergeRelFreqMarginals / FinalizeRelFreq,
// MergeAssocMarginals / FinalizeAssoc, MergeFieldValues, MergeTrends)
// must reproduce the monolithic Index byte for byte when fed per-part
// marginals from any partition of the corpus. This is the contract the
// federation coordinator relies on: it merges marginals extracted by
// remote shards through exactly these helpers, so if they match the
// monolithic index here, fed responses match a single node there.

// marginalParts extracts every partition member's marginals standalone —
// the same shape a coordinator sees on the wire from N shards.
func checkMergeEquiv(t *testing.T, w *equivWorld, segs []*Index) {
	t.Helper()
	ix := w.ix

	for _, cat := range w.cats {
		parts := make([][]ConceptCount, len(segs))
		for i, s := range segs {
			parts[i] = s.ConceptDF(cat)
		}
		merged := MergeConceptCounts(parts...)
		if got, want := merged, ix.ConceptDF(cat); !reflect.DeepEqual(got, want) {
			t.Fatalf("MergeConceptCounts(%q) = %#v, monolithic %#v", cat, got, want)
		}
		if got, want := ConceptNames(merged), ix.ConceptsInCategory(cat); !reflect.DeepEqual(got, want) {
			t.Fatalf("ConceptNames(merge(%q)) = %#v, monolithic %#v", cat, got, want)
		}
		for _, d := range w.dims {
			rfParts := make([]RelFreqMarginals, len(segs))
			for i, s := range segs {
				rfParts[i] = s.RelFreqMarginals(cat, d)
			}
			rfm := MergeRelFreqMarginals(rfParts...)
			if got, want := rfm, ix.RelFreqMarginals(cat, d); !reflect.DeepEqual(got, want) {
				t.Fatalf("MergeRelFreqMarginals(%q, %s) = %#v, monolithic %#v", cat, d.Label(), got, want)
			}
			if got, want := FinalizeRelFreq(rfm), ix.RelativeFrequency(cat, d); !reflect.DeepEqual(got, want) {
				t.Fatalf("FinalizeRelFreq(merge(%q, %s)) diverges from monolithic:\n got %#v\nwant %#v",
					cat, d.Label(), got, want)
			}
		}
	}

	for _, f := range w.fields {
		parts := make([][]string, len(segs))
		for i, s := range segs {
			parts[i] = s.FieldValues(f)
		}
		if got, want := MergeFieldValues(parts...), ix.FieldValues(f); !reflect.DeepEqual(got, want) {
			t.Fatalf("MergeFieldValues(%q) = %#v, monolithic %#v", f, got, want)
		}
	}

	for _, d := range w.dims {
		parts := make([][]TrendPoint, len(segs))
		for i, s := range segs {
			parts[i] = s.Trend(d)
		}
		if got, want := MergeTrends(parts...), ix.Trend(d); !reflect.DeepEqual(got, want) {
			t.Fatalf("MergeTrends(%s) = %#v, monolithic %#v", d.Label(), got, want)
		}
	}

	rows := []Dim{w.dims[0], w.dims[2], w.dims[4], w.dims[11]}
	cols := []Dim{w.dims[8], w.dims[9], w.dims[10]}
	parts := make([]AssocMarginals, len(segs))
	for i, s := range segs {
		parts[i] = s.AssocMarginals(rows, cols)
	}
	am := MergeAssocMarginals(parts...)
	if got, want := am, ix.AssocMarginals(rows, cols); !reflect.DeepEqual(got, want) {
		t.Fatalf("MergeAssocMarginals = %#v, monolithic %#v", got, want)
	}
	for _, conf := range []float64{0, 0.90, 0.95, 0.99} {
		want := ix.AssociateN(rows, cols, conf, 1)
		for _, workers := range []int{1, 4, 8} {
			got := FinalizeAssoc(rows, cols, conf, workers, am)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("FinalizeAssoc(conf=%v, workers=%d) diverges from monolithic:\n got %#v\nwant %#v",
					conf, workers, got, want)
			}
		}
	}
}

// TestMergeHelpersMatchMonolithic is the single-merge-implementation
// oracle: marginals extracted per part and merged through the exported
// helpers equal the monolithic result at partition counts {1, 2, 8},
// in fast and naive-oracle modes, against raw and prepared baselines.
func TestMergeHelpersMatchMonolithic(t *testing.T) {
	rng := rand.New(rand.NewSource(80081))
	for trial := 0; trial < 2; trial++ {
		ndocs := 40 + rng.Intn(140)
		seed := rng.Int63()
		for _, k := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("world-%d-parts-%d", trial, k), func(t *testing.T) {
				w := newEquivWorld(rand.New(rand.NewSource(seed)), ndocs)
				segs := partitionSegments(allDocs(w.ix), k)
				checkMergeEquiv(t, w, segs) // raw monolithic baseline
				w.ix.Prepare()
				checkMergeEquiv(t, w, segs) // prepared baseline
				withNaive(func() { checkMergeEquiv(t, w, segs) })
			})
		}
	}
}

// TestMergeHelpersDegenerate pins the zero-part and empty-part shapes
// the coordinator hits when every shard (or some shard) holds nothing.
func TestMergeHelpersDegenerate(t *testing.T) {
	if got := MergeConceptCounts(); len(got) != 0 {
		t.Fatalf("MergeConceptCounts() = %#v, want empty", got)
	}
	if got := MergeFieldValues(nil, nil); got != nil {
		t.Fatalf("MergeFieldValues(nil, nil) = %#v, want nil", got)
	}
	if got := MergeTrends(); got == nil || len(got) != 0 {
		t.Fatalf("MergeTrends() = %#v, want non-nil empty", got)
	}
	rfm := MergeRelFreqMarginals(RelFreqMarginals{}, RelFreqMarginals{})
	if rfm.N != 0 || rfm.SubsetSize != 0 || len(rfm.Concepts) != 0 {
		t.Fatalf("MergeRelFreqMarginals of empties = %#v", rfm)
	}
	if got := FinalizeRelFreq(rfm); got != nil {
		t.Fatalf("FinalizeRelFreq(empty) = %#v, want nil", got)
	}
	am := MergeAssocMarginals()
	if am.N != 0 || am.Nver != nil {
		t.Fatalf("MergeAssocMarginals() = %#v, want zero value", am)
	}

	// Zero-count marginals with shape still build a zero table.
	rows := []Dim{CategoryDim("issue")}
	cols := []Dim{FieldDim("outcome", "x")}
	shaped := AssocMarginals{Nver: []int{0}, Nhor: []int{0}, Ncell: [][]int{{0}}}
	tbl := FinalizeAssoc(rows, cols, 0.95, 4, shaped)
	if tbl.Cells[0][0].N != 0 || tbl.Cells[0][0].PointIndex != 0 {
		t.Fatalf("FinalizeAssoc(zero marginals) cell = %#v, want zero cell", tbl.Cells[0][0])
	}
}
