package mining

import (
	"sort"
)

// This file implements the LSM-style segmented index: instead of one
// monolithic Index resealed per snapshot swap (O(corpus)), the serving
// layer holds N immutable sealed segments and publishes a swap by
// sealing only the documents that arrived since the last one (O(new
// docs)). Queries fan in across segments over disjoint document sets:
//
//   - counts, joint counts, trends and drill-downs are additive;
//   - relative frequencies and association tables merge on the integer
//     marginals first and only then apply the ratio / Wilson-interval
//     float math, in exactly the monolithic operation order — never by
//     averaging per-segment floats.
//
// That merge discipline is what makes a SegmentSet byte-identical to a
// monolithic Index over the same corpus (the oracle pinned by
// segments_test.go at segment counts {1, 2, 8} and across compactions).

// Querier is the read side shared by the monolithic *Index and the
// segmented *SegmentSet: every analytics entry point the serving layer
// exposes, plus the marginal extractions behind the shard-side
// /v1/marginals/* wire (see merge.go). A snapshot can hold either
// implementation; responses are byte-identical for the same corpus.
type Querier interface {
	Len() int
	Count(d Dim) int
	CountBoth(a, b Dim) int
	DrillDown(a, b Dim) []Document
	ConceptsInCategory(category string) []string
	FieldValues(field string) []string
	RelativeFrequency(category string, featured Dim) []Relevance
	AssociateN(rows, cols []Dim, confidence float64, workers int) *AssocTable
	Trend(d Dim) []TrendPoint
	ConceptDF(category string) []ConceptCount
	RelFreqMarginals(category string, featured Dim) RelFreqMarginals
	AssocMarginals(rows, cols []Dim) AssocMarginals
}

var (
	_ Querier = (*Index)(nil)
	_ Querier = (*SegmentSet)(nil)
)

// SegmentSet is an immutable view over sealed segments with disjoint
// document sets (no document ID appears in more than one segment).
// Like a sealed Index, it is safe for concurrent queries; segments are
// never mutated through it.
type SegmentSet struct {
	segs  []*Index
	total int
}

// NewSegmentSet returns a set over the given segments. The slice is
// copied; the segments themselves are shared and must be treated as
// sealed (Prepared) from here on.
func NewSegmentSet(segs ...*Index) *SegmentSet {
	s := &SegmentSet{segs: append([]*Index(nil), segs...)}
	for _, ix := range s.segs {
		s.total += ix.Len()
	}
	return s
}

// Segments returns the member segments (read-only).
func (s *SegmentSet) Segments() []*Index { return s.segs }

// SegmentLens returns the document count of each member segment.
func (s *SegmentSet) SegmentLens() []int {
	out := make([]int, len(s.segs))
	for i, ix := range s.segs {
		out[i] = ix.Len()
	}
	return out
}

// MergeSegments compacts segments into one sealed segment holding the
// union of their documents (sorted by ID, the same order StreamIndex.Seal
// produces). Every query result over the merged segment is identical to
// the fan-in over its inputs, so compaction is invisible to readers.
func MergeSegments(segs ...*Index) *Index {
	var docs []Document
	for _, ix := range segs {
		for i, n := 0, ix.Len(); i < n; i++ {
			docs = append(docs, ix.b.Doc(i))
		}
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i].ID < docs[j].ID })
	out := NewIndex()
	for _, d := range docs {
		out.Add(d)
	}
	out.Prepare()
	return out
}

// segPostings resolves a dimension's postings inside one segment,
// honoring the per-call oracle flag: the naive hash-set path also
// returns position-sorted lists, so countIntersect works on either.
// Ownership as in resolve (naive results are never scratch-owned).
func segPostings(ix *Index, ctx *queryCtx, d Dim) (posts []int, owned bool) {
	if ctx.naive {
		return ix.postingsNaive(d), false
	}
	return ix.resolve(ctx, d)
}

// Len returns the total number of documents across segments.
func (s *SegmentSet) Len() int { return s.total }

// Count sums the per-segment matches — segments hold disjoint documents.
func (s *SegmentSet) Count(d Dim) int {
	n := 0
	for _, ix := range s.segs {
		n += ix.Count(d)
	}
	return n
}

// CountBoth sums the per-segment joint counts.
func (s *SegmentSet) CountBoth(a, b Dim) int {
	n := 0
	for _, ix := range s.segs {
		n += ix.CountBoth(a, b)
	}
	return n
}

// DrillDown concatenates the per-segment matches and re-sorts by
// document ID — the same total order the monolithic index returns,
// because IDs are unique across segments.
func (s *SegmentSet) DrillDown(a, b Dim) []Document {
	var out []Document
	for _, ix := range s.segs {
		out = append(out, ix.DrillDown(a, b)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ConceptDF merges per-segment document frequencies per canonical form
// into the monolithic report order (frequency descending, ties
// lexicographic).
func (s *SegmentSet) ConceptDF(category string) []ConceptCount {
	parts := make([][]ConceptCount, len(s.segs))
	for i, ix := range s.segs {
		parts[i] = ix.ConceptDF(category)
	}
	return MergeConceptCounts(parts...)
}

// ConceptsInCategory is the merged-df vocabulary of ConceptDF. Always
// non-nil, like the monolithic paths.
func (s *SegmentSet) ConceptsInCategory(category string) []string {
	return ConceptNames(s.ConceptDF(category))
}

// FieldValues unions the per-segment value sets, sorted; nil when the
// field is absent everywhere (matching the monolithic index).
func (s *SegmentSet) FieldValues(field string) []string {
	parts := make([][]string, len(s.segs))
	for i, ix := range s.segs {
		parts[i] = ix.FieldValues(field)
	}
	return MergeFieldValues(parts...)
}

// RelFreqMarginals merges the per-segment integer marginals — subset
// size, in-subset counts, corpus frequencies — over the disjoint
// document sets.
func (s *SegmentSet) RelFreqMarginals(category string, featured Dim) RelFreqMarginals {
	parts := make([]RelFreqMarginals, len(s.segs))
	for i, ix := range s.segs {
		parts[i] = ix.RelFreqMarginals(category, featured)
	}
	return MergeRelFreqMarginals(parts...)
}

// RelativeFrequency merges the integer marginals per concept across
// segments, then applies the monolithic ratio math and ordering on the
// merged counts (FinalizeRelFreq — the shared merge pipeline).
func (s *SegmentSet) RelativeFrequency(category string, featured Dim) []Relevance {
	return FinalizeRelFreq(s.RelFreqMarginals(category, featured))
}

// AssocMarginals merges the per-segment association marginals: every
// count adds over the disjoint document sets. Shaped rows × cols even
// over zero segments.
func (s *SegmentSet) AssocMarginals(rows, cols []Dim) AssocMarginals {
	if len(s.segs) == 0 {
		m := AssocMarginals{Nver: make([]int, len(rows)), Nhor: make([]int, len(cols)), Ncell: make([][]int, len(rows))}
		for i := range m.Ncell {
			m.Ncell[i] = make([]int, len(cols))
		}
		return m
	}
	parts := make([]AssocMarginals, len(s.segs))
	for i, ix := range s.segs {
		parts[i] = ix.AssocMarginals(rows, cols)
	}
	return MergeAssocMarginals(parts...)
}

// AssociateN builds the association table from marginals merged across
// segments: per-dimension counts and per-cell joint counts are summed
// as integers, and only then does each cell run the monolithic float
// pipeline (assocTableFromMarginals — point index, Wilson intervals
// from the merged counts via stats.WilsonIntervalZ, never averaged
// per-segment intervals). The cell grid fans across workers exactly
// like the monolithic path, and the table is byte-identical at any
// worker count.
func (s *SegmentSet) AssociateN(rows, cols []Dim, confidence float64, workers int) *AssocTable {
	// Materialize every marginal's postings once per segment; merged
	// marginal counts follow by summing lengths, and the shared core's
	// worker grid intersects cell joint counts per segment on the fly.
	segRow := make([][][]int, len(s.segs)) // [seg][row]postings
	segCol := make([][][]int, len(s.segs)) // [seg][col]postings
	for si, ix := range s.segs {
		ctx := acquireQueryCtx()
		segRow[si] = segMarginPostings(ix, ctx, rows)
		segCol[si] = segMarginPostings(ix, ctx, cols)
		releaseQueryCtx(ctx)
	}
	nver := make([]int, len(rows))
	nhor := make([]int, len(cols))
	for si := range s.segs {
		for i := range rows {
			nver[i] += len(segRow[si][i])
		}
		for j := range cols {
			nhor[j] += len(segCol[si][j])
		}
	}
	return assocTableFromMarginals(rows, cols, confidence, workers, s.total, nver, nhor,
		func(i, j int) int {
			ncell := 0
			for si := range s.segs {
				ncell += countIntersect(segRow[si][i], segCol[si][j])
			}
			return ncell
		}, nil)
}

// segMarginPostings materializes one segment's postings for every
// dimension, outliving the queryCtx: scratch-owned conjunction results
// are copied out, everything else aliases segment-internal (read-only)
// lists.
func segMarginPostings(ix *Index, ctx *queryCtx, dims []Dim) [][]int {
	if ctx.naive {
		out := make([][]int, len(dims))
		for i, d := range dims {
			out[i] = ix.postingsNaive(d)
		}
		return out
	}
	return ix.marginPostings(ctx, dims)
}

// Associate is AssociateN with the package-default worker count.
func (s *SegmentSet) Associate(rows, cols []Dim, confidence float64) *AssocTable {
	return s.AssociateN(rows, cols, confidence, 0)
}

// Trend merges the per-segment time-bucket counts via MergeTrends,
// sorted by time. Non-nil even when empty, like the monolithic index.
func (s *SegmentSet) Trend(d Dim) []TrendPoint {
	parts := make([][]TrendPoint, len(s.segs))
	for i, ix := range s.segs {
		parts[i] = ix.Trend(d)
	}
	return MergeTrends(parts...)
}
