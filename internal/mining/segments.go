package mining

import (
	"runtime"
	"sort"
	"sync"

	"bivoc/internal/stats"
)

// This file implements the LSM-style segmented index: instead of one
// monolithic Index resealed per snapshot swap (O(corpus)), the serving
// layer holds N immutable sealed segments and publishes a swap by
// sealing only the documents that arrived since the last one (O(new
// docs)). Queries fan in across segments over disjoint document sets:
//
//   - counts, joint counts, trends and drill-downs are additive;
//   - relative frequencies and association tables merge on the integer
//     marginals first and only then apply the ratio / Wilson-interval
//     float math, in exactly the monolithic operation order — never by
//     averaging per-segment floats.
//
// That merge discipline is what makes a SegmentSet byte-identical to a
// monolithic Index over the same corpus (the oracle pinned by
// segments_test.go at segment counts {1, 2, 8} and across compactions).

// Querier is the read side shared by the monolithic *Index and the
// segmented *SegmentSet: every analytics entry point the serving layer
// exposes. A snapshot can hold either implementation; responses are
// byte-identical for the same corpus.
type Querier interface {
	Len() int
	Count(d Dim) int
	CountBoth(a, b Dim) int
	DrillDown(a, b Dim) []Document
	ConceptsInCategory(category string) []string
	FieldValues(field string) []string
	RelativeFrequency(category string, featured Dim) []Relevance
	AssociateN(rows, cols []Dim, confidence float64, workers int) *AssocTable
	Trend(d Dim) []TrendPoint
}

var (
	_ Querier = (*Index)(nil)
	_ Querier = (*SegmentSet)(nil)
)

// SegmentSet is an immutable view over sealed segments with disjoint
// document sets (no document ID appears in more than one segment).
// Like a sealed Index, it is safe for concurrent queries; segments are
// never mutated through it.
type SegmentSet struct {
	segs  []*Index
	total int
}

// NewSegmentSet returns a set over the given segments. The slice is
// copied; the segments themselves are shared and must be treated as
// sealed (Prepared) from here on.
func NewSegmentSet(segs ...*Index) *SegmentSet {
	s := &SegmentSet{segs: append([]*Index(nil), segs...)}
	for _, ix := range s.segs {
		s.total += ix.Len()
	}
	return s
}

// Segments returns the member segments (read-only).
func (s *SegmentSet) Segments() []*Index { return s.segs }

// SegmentLens returns the document count of each member segment.
func (s *SegmentSet) SegmentLens() []int {
	out := make([]int, len(s.segs))
	for i, ix := range s.segs {
		out[i] = ix.Len()
	}
	return out
}

// MergeSegments compacts segments into one sealed segment holding the
// union of their documents (sorted by ID, the same order StreamIndex.Seal
// produces). Every query result over the merged segment is identical to
// the fan-in over its inputs, so compaction is invisible to readers.
func MergeSegments(segs ...*Index) *Index {
	var docs []Document
	for _, ix := range segs {
		docs = append(docs, ix.docs...)
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i].ID < docs[j].ID })
	out := NewIndex()
	for _, d := range docs {
		out.Add(d)
	}
	out.Prepare()
	return out
}

// segPostings resolves a dimension's postings inside one segment,
// honoring the per-call oracle flag: the naive hash-set path also
// returns position-sorted lists, so countIntersect works on either.
// Ownership as in resolve (naive results are never scratch-owned).
func segPostings(ix *Index, ctx *queryCtx, d Dim) (posts []int, owned bool) {
	if ctx.naive {
		return ix.postingsNaive(d), false
	}
	return ix.resolve(ctx, d)
}

// Len returns the total number of documents across segments.
func (s *SegmentSet) Len() int { return s.total }

// Count sums the per-segment matches — segments hold disjoint documents.
func (s *SegmentSet) Count(d Dim) int {
	n := 0
	for _, ix := range s.segs {
		n += ix.Count(d)
	}
	return n
}

// CountBoth sums the per-segment joint counts.
func (s *SegmentSet) CountBoth(a, b Dim) int {
	n := 0
	for _, ix := range s.segs {
		n += ix.CountBoth(a, b)
	}
	return n
}

// DrillDown concatenates the per-segment matches and re-sorts by
// document ID — the same total order the monolithic index returns,
// because IDs are unique across segments.
func (s *SegmentSet) DrillDown(a, b Dim) []Document {
	var out []Document
	for _, ix := range s.segs {
		out = append(out, ix.DrillDown(a, b)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ConceptsInCategory merges per-segment document frequencies per
// canonical form, then applies the monolithic report order (frequency
// descending, ties lexicographic). Always non-nil, like the monolithic
// paths.
func (s *SegmentSet) ConceptsInCategory(category string) []string {
	df := map[string]int{}
	for _, ix := range s.segs {
		for k, posts := range ix.byConcept {
			if k[0] == category {
				df[k[1]] += len(posts)
			}
		}
	}
	type cc struct {
		canon string
		n     int
	}
	all := make([]cc, 0, len(df))
	for canon, n := range df {
		all = append(all, cc{canon, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].canon < all[j].canon
	})
	out := make([]string, len(all))
	for i, c := range all {
		out[i] = c.canon
	}
	return out
}

// FieldValues unions the per-segment value sets, sorted; nil when the
// field is absent everywhere (matching the monolithic index).
func (s *SegmentSet) FieldValues(field string) []string {
	seen := map[string]bool{}
	var out []string
	for _, ix := range s.segs {
		for k := range ix.byField {
			if k[0] == field && !seen[k[1]] {
				seen[k[1]] = true
				out = append(out, k[1])
			}
		}
	}
	sort.Strings(out)
	return out
}

// RelativeFrequency merges the integer marginals per concept — subset
// size, in-subset count, corpus frequency — across segments, then
// applies the monolithic ratio math and ordering on the merged counts.
func (s *SegmentSet) RelativeFrequency(category string, featured Dim) []Relevance {
	type acc struct {
		inSubset, inAll int
	}
	merged := map[string]*acc{}
	subsetSize := 0
	for _, ix := range s.segs {
		ctx := acquireQueryCtx()
		subset, owned := segPostings(ix, ctx, featured)
		subsetSize += len(subset)
		for k, posts := range ix.byConcept {
			if k[0] != category {
				continue
			}
			a := merged[k[1]]
			if a == nil {
				a = &acc{}
				merged[k[1]] = a
			}
			a.inSubset += countIntersect(posts, subset)
			a.inAll += len(posts)
		}
		if owned {
			ctx.putBuf(subset)
		}
		releaseQueryCtx(ctx)
	}
	n := s.total
	var out []Relevance
	for canon, a := range merged {
		r := Relevance{
			Concept:  canon,
			InSubset: a.inSubset, SubsetSize: subsetSize,
			InAll: a.inAll, N: n,
		}
		if subsetSize > 0 && a.inAll > 0 && n > 0 {
			pSub := float64(a.inSubset) / float64(subsetSize)
			pAll := float64(a.inAll) / float64(n)
			r.Ratio = pSub / pAll
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ratio != out[j].Ratio {
			return out[i].Ratio > out[j].Ratio
		}
		return out[i].Concept < out[j].Concept
	})
	return out
}

// AssociateN builds the association table from marginals merged across
// segments: per-dimension counts and per-cell joint counts are summed
// as integers, and only then does each cell run the monolithic float
// pipeline (point index, Wilson intervals from the merged counts via
// stats.WilsonIntervalZ — never averaged per-segment intervals). The
// cell grid fans across workers exactly like the monolithic path, and
// the table is byte-identical at any worker count.
func (s *SegmentSet) AssociateN(rows, cols []Dim, confidence float64, workers int) *AssocTable {
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	n := s.total
	z := stats.WilsonZ(confidence)
	tbl := &AssocTable{Rows: rows, Cols: cols, Confidence: confidence}
	tbl.Cells = make([][]Cell, len(rows))
	for i := range tbl.Cells {
		tbl.Cells[i] = make([]Cell, len(cols))
	}

	// Materialize every marginal's postings once per segment; merged
	// marginal counts follow by summing lengths.
	segRow := make([][][]int, len(s.segs)) // [seg][row]postings
	segCol := make([][][]int, len(s.segs)) // [seg][col]postings
	for si, ix := range s.segs {
		ctx := acquireQueryCtx()
		segRow[si] = segMarginPostings(ix, ctx, rows)
		segCol[si] = segMarginPostings(ix, ctx, cols)
		releaseQueryCtx(ctx)
	}
	nver := make([]int, len(rows))
	nhor := make([]int, len(cols))
	for si := range s.segs {
		for i := range rows {
			nver[i] += len(segRow[si][i])
		}
		for j := range cols {
			nhor[j] += len(segCol[si][j])
		}
	}
	verIv := make([]stats.Interval, len(rows))
	horIv := make([]stats.Interval, len(cols))
	for i := range rows {
		verIv[i] = stats.WilsonIntervalZ(nver[i], n, z)
	}
	for j := range cols {
		horIv[j] = stats.WilsonIntervalZ(nhor[j], n, z)
	}

	// fill computes one cell from the merged integer marginals into its
	// own slot — identical float operation order to Index.AssociateN.
	fill := func(i, j int) {
		ncell := 0
		for si := range s.segs {
			ncell += countIntersect(segRow[si][i], segCol[si][j])
		}
		cell := Cell{
			Row: rows[i], Col: cols[j],
			Ncell: ncell, Nver: nver[i], Nhor: nhor[j], N: n,
		}
		if n > 0 && nver[i] > 0 && nhor[j] > 0 {
			pCell := float64(ncell) / float64(n)
			pVer := float64(nver[i]) / float64(n)
			pHor := float64(nhor[j]) / float64(n)
			if pVer > 0 && pHor > 0 {
				cell.PointIndex = pCell / (pVer * pHor)
			}
			cellIv := stats.WilsonIntervalZ(ncell, n, z)
			if verIv[i].Hi > 0 && horIv[j].Hi > 0 {
				cell.LowerIndex = cellIv.Lo / (verIv[i].Hi * horIv[j].Hi)
			}
		}
		tbl.Cells[i][j] = cell
	}

	cells := len(rows) * len(cols)
	w := workers
	if w <= 0 {
		w = AssociateWorkers
	}
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > cells {
		w = cells
	}
	if w <= 1 {
		for k := 0; k < cells; k++ {
			fill(k/len(cols), k%len(cols))
		}
	} else {
		var wg sync.WaitGroup
		for wkr := 0; wkr < w; wkr++ {
			wg.Add(1)
			go func(wkr int) {
				defer wg.Done()
				for k := wkr; k < cells; k += w {
					fill(k/len(cols), k%len(cols))
				}
			}(wkr)
		}
		wg.Wait()
	}

	for i := range rows {
		rowTotal := 0
		for j := range cols {
			rowTotal += tbl.Cells[i][j].Ncell
		}
		if rowTotal > 0 {
			for j := range cols {
				tbl.Cells[i][j].RowShare = float64(tbl.Cells[i][j].Ncell) / float64(rowTotal)
			}
		}
	}
	return tbl
}

// segMarginPostings materializes one segment's postings for every
// dimension, outliving the queryCtx: scratch-owned conjunction results
// are copied out, everything else aliases segment-internal (read-only)
// lists.
func segMarginPostings(ix *Index, ctx *queryCtx, dims []Dim) [][]int {
	if ctx.naive {
		out := make([][]int, len(dims))
		for i, d := range dims {
			out[i] = ix.postingsNaive(d)
		}
		return out
	}
	return ix.marginPostings(ctx, dims)
}

// Associate is AssociateN with the package-default worker count.
func (s *SegmentSet) Associate(rows, cols []Dim, confidence float64) *AssocTable {
	return s.AssociateN(rows, cols, confidence, 0)
}

// Trend merges the per-segment time-bucket counts, sorted by time.
// Non-nil even when empty, like the monolithic index.
func (s *SegmentSet) Trend(d Dim) []TrendPoint {
	counts := map[int]int{}
	for _, ix := range s.segs {
		for _, p := range ix.Trend(d) {
			counts[p.Time] += p.Count
		}
	}
	out := make([]TrendPoint, 0, len(counts))
	for t, c := range counts {
		out = append(out, TrendPoint{t, c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}
