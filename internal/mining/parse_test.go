package mining

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseDimLeafForms(t *testing.T) {
	cases := []struct {
		label string
		want  Dim
	}{
		{"discount", CategoryDim("discount")},
		{"weak start[customer intention]", ConceptDim("customer intention", "weak start")},
		{"outcome=reservation", FieldDim("outcome", "reservation")},
		{"outcome=", FieldDim("outcome", "")},
		{"weak start[customer intention] ∧ outcome=reservation",
			AndDim(ConceptDim("customer intention", "weak start"), FieldDim("outcome", "reservation"))},
		{"a[b] ∧ c ∧ d=e",
			AndDim(ConceptDim("b", "a"), CategoryDim("c"), FieldDim("d", "e"))},
	}
	for _, c := range cases {
		got, err := ParseDim(c.label)
		if err != nil {
			t.Fatalf("ParseDim(%q): %v", c.label, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseDim(%q) = %#v, want %#v", c.label, got, c.want)
		}
		if got.Label() != c.label {
			t.Errorf("ParseDim(%q).Label() = %q; label did not round-trip", c.label, got.Label())
		}
	}
}

func TestParseDimErrors(t *testing.T) {
	for _, label := range []string{
		"",                      // empty
		"]",                     // ']' without '['
		"x]",                    // ditto
		"[cat]",                 // empty canonical
		"canon[]",               // empty category
		"=v",                    // empty field name
		"a ∧ ",                  // empty conjunct
		" ∧ a",                  // empty conjunct
		"a=b[c]",                // '=' inside a concept canonical — ambiguous
		"f=v]",                  // reserved ']' inside a field value
		"a∧b",                   // bare '∧' without the separator spacing
		"nested[ca[t]",          // reserved '[' inside a component
	} {
		if d, err := ParseDim(label); err == nil {
			t.Errorf("ParseDim(%q) = %#v, want error", label, d)
		}
	}
}

// dimComponent draws a non-empty string over a safe alphabet (letters,
// digits, space — no reserved characters).
func dimComponent(r *rand.Rand) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789 "
	n := 1 + r.Intn(12)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(alphabet[r.Intn(len(alphabet))])
	}
	s := b.String()
	// A component that is all spaces still round-trips, but leading or
	// trailing spaces around the ∧ separator would be eaten by a reader;
	// the grammar itself preserves them, so keep them — only the empty
	// string is invalid.
	if s == "" {
		return "x"
	}
	return s
}

// randomLeafDim draws one concept, category, or field dimension.
func randomLeafDim(r *rand.Rand) Dim {
	switch r.Intn(3) {
	case 0:
		return ConceptDim(dimComponent(r), dimComponent(r))
	case 1:
		return CategoryDim(dimComponent(r))
	default:
		return FieldDim(dimComponent(r), dimComponent(r))
	}
}

// TestParseDimRoundTripProperty pins ParseDim(d.Label()) == d for
// randomly drawn concept/category/field/And dimensions.
func TestParseDimRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var d Dim
		if r.Intn(3) == 0 {
			// Flat conjunction of 2..4 leaves (Label flattens nesting, so
			// only flat Ands can round-trip structurally).
			n := 2 + r.Intn(3)
			children := make([]Dim, n)
			for i := range children {
				children[i] = randomLeafDim(r)
			}
			d = AndDim(children...)
		} else {
			d = randomLeafDim(r)
		}
		got, err := ParseDim(d.Label())
		if err != nil {
			t.Logf("ParseDim(%q): %v", d.Label(), err)
			return false
		}
		return reflect.DeepEqual(got, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCanonicalLabel(t *testing.T) {
	a := ConceptDim("intent", "weak start")
	b := FieldDim("outcome", "reservation")
	c := CategoryDim("discount")

	if got := a.CanonicalLabel(); got != a.Label() {
		t.Errorf("leaf CanonicalLabel = %q, want Label %q", got, a.Label())
	}
	// Order, nesting and duplication do not change the canonical key.
	forms := []Dim{
		AndDim(a, b, c),
		AndDim(c, b, a),
		AndDim(AndDim(a, b), c),
		AndDim(a, AndDim(b, AndDim(c, a))),
	}
	want := forms[0].CanonicalLabel()
	for _, d := range forms[1:] {
		if got := d.CanonicalLabel(); got != want {
			t.Errorf("CanonicalLabel(%q) = %q, want %q", d.Label(), got, want)
		}
	}
	// The canonical form is itself parseable and semantically equal:
	// same postings on a real index.
	ix := NewIndex()
	for i, outcome := range []string{"reservation", "unbooked", "reservation", "service"} {
		ix.Add(Document{
			ID:     string(rune('a' + i)),
			Fields: map[string]string{"outcome": outcome},
		})
	}
	d := AndDim(b, AndDim(b, b))
	parsed, err := ParseDim(d.CanonicalLabel())
	if err != nil {
		t.Fatalf("ParseDim(canonical %q): %v", d.CanonicalLabel(), err)
	}
	if ix.Count(parsed) != ix.Count(d) {
		t.Errorf("canonical form count %d != original count %d", ix.Count(parsed), ix.Count(d))
	}
}

// FuzzParseDim checks that any label that parses at all round-trips:
// parse → Label → parse must reproduce the same Dim, and the canonical
// label must stay parseable.
func FuzzParseDim(f *testing.F) {
	f.Add("discount")
	f.Add("weak start[customer intention]")
	f.Add("outcome=reservation")
	f.Add("a[b] ∧ c=d ∧ e")
	f.Add("a=b[c]")
	f.Add("")
	// Conjunction shapes that hit the memoized-conjunction cache: the
	// prepared index keys its memo by CanonicalLabel, so reordered and
	// duplicated conjuncts must all canonicalize to one key.
	f.Add("b ∧ a ∧ b")
	f.Add("c=d ∧ a[b]")
	f.Add("x[y] ∧ x[y]")
	f.Add("e ∧ c=d ∧ a[b] ∧ e")
	f.Fuzz(func(t *testing.T, label string) {
		d, err := ParseDim(label)
		if err != nil {
			return
		}
		again, err := ParseDim(d.Label())
		if err != nil {
			t.Fatalf("ParseDim(%q) ok but re-parsing Label %q failed: %v", label, d.Label(), err)
		}
		if !reflect.DeepEqual(again, d) {
			t.Fatalf("round-trip drift: %q → %#v → %q → %#v", label, d, d.Label(), again)
		}
		canon, err := ParseDim(d.CanonicalLabel())
		if err != nil {
			t.Fatalf("canonical label %q of parseable %q does not parse: %v", d.CanonicalLabel(), label, err)
		}
		// The canonical label is the conjunction-memo cache key: parsing
		// it back and re-canonicalizing must reach a fixed point, or two
		// spellings of one query could occupy (and miss) separate entries.
		if canon.CanonicalLabel() != d.CanonicalLabel() {
			t.Fatalf("canonical label not a fixed point: %q → %q → %q",
				label, d.CanonicalLabel(), canon.CanonicalLabel())
		}
	})
}
