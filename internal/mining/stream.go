package mining

import (
	"fmt"
	"sort"
	"sync"
)

// StreamIndex is the incremental, concurrency-safe path into the mining
// layer: documents can be Added from many pipeline workers while
// association tables, relevancy reports, trends and drill-downs are
// queried concurrently — the Customer-Experience-Data-Mart requirement
// that reporting stays available while data keeps arriving.
//
// Semantics are sealed-snapshot: every query answers over exactly the
// documents whose Add had completed when the query acquired the index,
// and a query over a given document set returns the same result the
// batch Index would return for those documents. A single RWMutex guards
// the underlying Index — adds are brief (a handful of map appends), so
// writer hold times stay in the microseconds and readers batch their
// whole analysis under one read lock for a consistent view.
//
// Once the stream ends, Seal freezes the index and returns a plain
// *Index rebuilt in document-ID order, making the final index
// byte-for-byte independent of the arrival order the pipeline's worker
// scheduling happened to produce.
type StreamIndex struct {
	mu     sync.RWMutex
	ix     *Index
	ids    map[string]struct{}
	sealed bool
}

// NewStreamIndex returns an empty streaming index.
func NewStreamIndex() *StreamIndex {
	return &StreamIndex{ix: NewIndex(), ids: map[string]struct{}{}}
}

// Add indexes a document. Safe for concurrent use with queries and other
// Adds. It panics after Seal — a sealed index is a published snapshot,
// and silently growing it would invalidate results already reported —
// and on a duplicate document ID: with retrying pipelines upstream, a
// double Add means a stage emitted an item it had already delivered
// (a replay bug), and the ID-sorted Seal rebuild would silently stop
// being deterministic (equal keys have no stable order).
func (s *StreamIndex) Add(doc Document) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.add(doc, "Add")
}

// AddBatch indexes documents under one lock acquisition, amortizing
// contention when a pipeline stage delivers bursts.
func (s *StreamIndex) AddBatch(docs []Document) {
	if len(docs) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, d := range docs {
		s.add(d, "AddBatch")
	}
}

// add enforces the stream invariants (not sealed, IDs unique) under the
// caller-held write lock.
func (s *StreamIndex) add(doc Document, op string) {
	if s.sealed {
		panic("mining: StreamIndex." + op + " after Seal")
	}
	if _, dup := s.ids[doc.ID]; dup {
		panic("mining: StreamIndex." + op + ": duplicate document ID " + doc.ID +
			" (an upstream retry delivered the same item twice?)")
	}
	s.ids[doc.ID] = struct{}{}
	s.ix.Add(doc)
}

// Len returns the number of documents indexed so far.
func (s *StreamIndex) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ix.Len()
}

// Count returns how many indexed documents match the dimension.
func (s *StreamIndex) Count(d Dim) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ix.Count(d)
}

// CountBoth returns how many indexed documents match both dimensions.
func (s *StreamIndex) CountBoth(a, b Dim) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ix.CountBoth(a, b)
}

// Associate builds a two-dimensional association table over the
// documents indexed at call time (see Index.Associate).
func (s *StreamIndex) Associate(rows, cols []Dim, confidence float64) *AssocTable {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ix.Associate(rows, cols, confidence)
}

// RelativeFrequency runs the relevancy analysis over the documents
// indexed at call time (see Index.RelativeFrequency).
func (s *StreamIndex) RelativeFrequency(category string, featured Dim) []Relevance {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ix.RelativeFrequency(category, featured)
}

// Trend returns per-bucket counts for a dimension over the documents
// indexed at call time.
func (s *StreamIndex) Trend(d Dim) []TrendPoint {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ix.Trend(d)
}

// DrillDown returns the documents matching both dimensions, sorted by ID.
func (s *StreamIndex) DrillDown(a, b Dim) []Document {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ix.DrillDown(a, b)
}

// ConceptsInCategory returns the category's canonical forms by document
// frequency over the documents indexed at call time.
func (s *StreamIndex) ConceptsInCategory(category string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ix.ConceptsInCategory(category)
}

// FieldValues returns the distinct values of a structured field.
func (s *StreamIndex) FieldValues(field string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ix.FieldValues(field)
}

// Snapshot runs fn with a consistent read-only view of the current
// index. The *Index must not be retained or mutated past fn's return —
// writers resume as soon as fn exits.
func (s *StreamIndex) Snapshot(fn func(ix *Index)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	fn(s.ix)
}

// Seal ends the stream: further Adds panic, and the returned *Index
// holds every document rebuilt in ID order, so the result is identical
// no matter how pipeline scheduling interleaved the Adds. Queries on the
// StreamIndex keep working against the sealed contents. Seal is
// idempotent.
func (s *StreamIndex) Seal() *Index {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealed {
		return s.ix
	}
	s.sealed = true
	docs := make([]Document, 0, s.ix.Len())
	for i, n := 0, s.ix.Len(); i < n; i++ {
		docs = append(docs, s.ix.b.Doc(i))
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i].ID < docs[j].ID })
	rebuilt := NewIndex()
	for _, d := range docs {
		rebuilt.Add(d)
	}
	// A sealed index is immutable and concurrently queried, so it carries
	// the prepared query caches: category vocabularies, conjunction
	// memoization, Wilson marginal cache (see Index.Prepare).
	rebuilt.Prepare()
	s.ix = rebuilt
	return rebuilt
}

// SealChecked is Seal plus the dead-letter accounting invariant: the
// sealed index must hold exactly `expected` documents — corpus size
// minus whatever the pipeline dead-lettered. A mismatch means items
// were lost (or double-counted) somewhere between source and sink, and
// callers should refuse to report over the index rather than publish
// silently incomplete numbers.
func (s *StreamIndex) SealChecked(expected int) (*Index, error) {
	ix := s.Seal()
	if ix.Len() != expected {
		return nil, fmt.Errorf("mining: sealed index holds %d documents, expected %d — streamed items lost or double-counted",
			ix.Len(), expected)
	}
	return ix, nil
}
