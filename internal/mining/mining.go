// Package mining implements the indexing-and-reporting layer of BIVoC
// (§IV.D): documents annotated with concepts and linked structured
// fields are indexed by semantic classification, then analyzed with
//
//   - relevancy analysis with relative frequency (§IV.D.1): compare a
//     concept's density inside a featured subset with its density in the
//     whole collection;
//   - two-dimensional association analysis (§IV.D.2): cross-tabulate two
//     concept/field dimensions and rank cells by the point estimate of
//     the exponential mutual information, Ncell·N / (Nver·Nhor) (Eqn 4),
//     replaced by the left terminal of an interval estimate to stay
//     robust when counts are small;
//   - trend analysis over time buckets;
//   - drill-down from any table cell to the underlying documents
//     (Figure 4's view).
package mining

import (
	"fmt"
	"sort"
	"strings"

	"bivoc/internal/annotate"
	"bivoc/internal/stats"
)

// Document is one indexed VoC item: its extracted concepts, the
// structured fields attached by the linking engine, and a time bucket.
type Document struct {
	ID       string
	Concepts []annotate.Concept
	// Fields holds structured dimensions from the linked warehouse
	// record, e.g. "outcome" → "reservation", "agent" → "A17".
	Fields map[string]string
	// Time is an arbitrary bucket index (day, week) for trend analysis.
	Time int
}

// Dim identifies one dimension value: either a concept (category +
// canonical form) from the unstructured side, or a structured field
// value. "Some of these concepts could be dimensions from unstructured
// data and others could be from structured data."
type Dim struct {
	// Concept dimension: Category must be non-empty.
	Category  string
	Canonical string // "" means "any concept in Category"
	// Field dimension: Field must be non-empty (and Category empty).
	Field string
	Value string
	// And, when non-empty, makes this a conjunction: a document matches
	// only if it matches every child dimension. Conjunctions power the
	// drill-downs of Figure 4 ("weak-start calls that converted") and
	// compose freely with the other analyses.
	And []Dim
}

// ConceptDim returns a concept dimension.
func ConceptDim(category, canonical string) Dim {
	return Dim{Category: category, Canonical: canonical}
}

// CategoryDim returns a dimension matching any concept of a category.
func CategoryDim(category string) Dim { return Dim{Category: category} }

// FieldDim returns a structured-field dimension.
func FieldDim(field, value string) Dim { return Dim{Field: field, Value: value} }

// AndDim returns the conjunction of dimensions.
func AndDim(dims ...Dim) Dim { return Dim{And: dims} }

// Label renders the dimension for reports.
func (d Dim) Label() string {
	if len(d.And) > 0 {
		parts := make([]string, len(d.And))
		for i, c := range d.And {
			parts[i] = c.Label()
		}
		return strings.Join(parts, " ∧ ")
	}
	if d.Field != "" {
		return d.Field + "=" + d.Value
	}
	if d.Canonical == "" {
		return d.Category
	}
	return d.Canonical + "[" + d.Category + "]"
}

// Index stores documents with inverted lists per concept and field.
type Index struct {
	docs      []Document
	byConcept map[[2]string][]int // {category, canonical} → doc positions
	byCat     map[string][]int    // category → doc positions
	byField   map[[2]string][]int // {field, value} → doc positions
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		byConcept: make(map[[2]string][]int),
		byCat:     make(map[string][]int),
		byField:   make(map[[2]string][]int),
	}
}

// Add indexes a document. Inverted lists record each document at most
// once per key (documents often repeat a concept).
func (ix *Index) Add(doc Document) {
	pos := len(ix.docs)
	ix.docs = append(ix.docs, doc)
	seenC := map[[2]string]bool{}
	seenCat := map[string]bool{}
	for _, c := range doc.Concepts {
		k := [2]string{c.Category, c.Canonical}
		if !seenC[k] {
			seenC[k] = true
			ix.byConcept[k] = append(ix.byConcept[k], pos)
		}
		if !seenCat[c.Category] {
			seenCat[c.Category] = true
			ix.byCat[c.Category] = append(ix.byCat[c.Category], pos)
		}
	}
	for f, v := range doc.Fields {
		ix.byField[[2]string{f, v}] = append(ix.byField[[2]string{f, v}], pos)
	}
}

// Len returns the number of indexed documents.
func (ix *Index) Len() int { return len(ix.docs) }

// Doc returns the i-th document.
func (ix *Index) Doc(i int) Document { return ix.docs[i] }

// postings returns the document positions matching a dimension.
func (ix *Index) postings(d Dim) []int {
	if len(d.And) > 0 {
		return ix.intersect(d.And)
	}
	switch {
	case d.Field != "":
		return ix.byField[[2]string{d.Field, d.Value}]
	case d.Canonical != "":
		return ix.byConcept[[2]string{d.Category, d.Canonical}]
	default:
		return ix.byCat[d.Category]
	}
}

// intersect returns document positions matching every dimension,
// smallest-list-first for efficiency.
func (ix *Index) intersect(dims []Dim) []int {
	if len(dims) == 0 {
		return nil
	}
	lists := make([][]int, len(dims))
	for i, d := range dims {
		lists[i] = ix.postings(d)
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	current := map[int]bool{}
	for _, p := range lists[0] {
		current[p] = true
	}
	for _, list := range lists[1:] {
		next := map[int]bool{}
		for _, p := range list {
			if current[p] {
				next[p] = true
			}
		}
		current = next
		if len(current) == 0 {
			break
		}
	}
	out := make([]int, 0, len(current))
	for p := range current {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// Count returns how many documents match the dimension.
func (ix *Index) Count(d Dim) int { return len(ix.postings(d)) }

// CountBoth returns how many documents match both dimensions.
func (ix *Index) CountBoth(a, b Dim) int {
	pa, pb := ix.postings(a), ix.postings(b)
	if len(pa) > len(pb) {
		pa, pb = pb, pa
	}
	set := make(map[int]bool, len(pa))
	for _, p := range pa {
		set[p] = true
	}
	n := 0
	for _, p := range pb {
		if set[p] {
			n++
		}
	}
	return n
}

// DrillDown returns the documents matching both dimensions — the
// cell-to-documents navigation of Figure 4 ("one can drill down through
// table cells right upto individual documents").
func (ix *Index) DrillDown(a, b Dim) []Document {
	pa, pb := ix.postings(a), ix.postings(b)
	set := make(map[int]bool, len(pa))
	for _, p := range pa {
		set[p] = true
	}
	var out []Document
	for _, p := range pb {
		if set[p] {
			out = append(out, ix.docs[p])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ConceptsInCategory returns the distinct canonical forms of a category,
// sorted by document frequency (descending, ties lexicographic).
func (ix *Index) ConceptsInCategory(category string) []string {
	type cc struct {
		canon string
		n     int
	}
	var all []cc
	for k, posts := range ix.byConcept {
		if k[0] == category {
			all = append(all, cc{k[1], len(posts)})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].canon < all[j].canon
	})
	out := make([]string, len(all))
	for i, c := range all {
		out[i] = c.canon
	}
	return out
}

// FieldValues returns the distinct values of a structured field, sorted.
func (ix *Index) FieldValues(field string) []string {
	var out []string
	for k := range ix.byField {
		if k[0] == field {
			out = append(out, k[1])
		}
	}
	sort.Strings(out)
	return out
}

// Relevance is one row of a relative-frequency report.
type Relevance struct {
	Concept string
	// InSubset and InAll are document frequencies.
	InSubset, SubsetSize int
	InAll, N             int
	// Ratio is (InSubset/SubsetSize) / (InAll/N) — how over-represented
	// the concept is inside the featured subset.
	Ratio float64
}

// RelativeFrequency compares the distribution of category's concepts
// inside the subset defined by featured with their distribution in the
// entire data set, returning rows sorted by descending ratio ("by
// sorting phrases in a category based on the relative frequencies,
// relevant concepts for a specific data set are revealed").
func (ix *Index) RelativeFrequency(category string, featured Dim) []Relevance {
	subset := ix.postings(featured)
	subSet := make(map[int]bool, len(subset))
	for _, p := range subset {
		subSet[p] = true
	}
	n := len(ix.docs)
	var out []Relevance
	for k, posts := range ix.byConcept {
		if k[0] != category {
			continue
		}
		inSub := 0
		for _, p := range posts {
			if subSet[p] {
				inSub++
			}
		}
		r := Relevance{
			Concept:  k[1],
			InSubset: inSub, SubsetSize: len(subset),
			InAll: len(posts), N: n,
		}
		if len(subset) > 0 && len(posts) > 0 && n > 0 {
			pSub := float64(inSub) / float64(len(subset))
			pAll := float64(len(posts)) / float64(n)
			r.Ratio = pSub / pAll
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ratio != out[j].Ratio {
			return out[i].Ratio > out[j].Ratio
		}
		return out[i].Concept < out[j].Concept
	})
	return out
}

// Cell is one cell of a two-dimensional association table.
type Cell struct {
	Row, Col Dim
	// Ncell, Nver, Nhor, N are the counts of Eqn 4.
	Ncell, Nver, Nhor, N int
	// PointIndex is Ncell·N / (Nver·Nhor) — the point estimate of the
	// exponential mutual information.
	PointIndex float64
	// LowerIndex replaces each density with the conservative end of its
	// Wilson interval ("we use the left terminal value (smallest value)
	// of the interval estimation instead of the point estimation").
	LowerIndex float64
	// RowShare is Ncell over the row's total across the table's columns —
	// the within-row percentage the paper's Tables III and IV report
	// (each row of those tables sums to 100% across the outcome columns;
	// documents matching the row but none of the listed columns, e.g.
	// service calls in an outcome table, do not dilute the percentages).
	RowShare float64
}

// AssocTable is a full two-dimensional association analysis.
type AssocTable struct {
	Rows, Cols []Dim
	Cells      [][]Cell // [row][col]
	Confidence float64
}

// Associate builds the two-dimensional association table between row
// and column dimensions at the given confidence level for the interval
// estimate (0 < confidence < 1; 0.95 is typical).
func (ix *Index) Associate(rows, cols []Dim, confidence float64) *AssocTable {
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	n := len(ix.docs)
	tbl := &AssocTable{Rows: rows, Cols: cols, Confidence: confidence}
	tbl.Cells = make([][]Cell, len(rows))
	for i, rd := range rows {
		tbl.Cells[i] = make([]Cell, len(cols))
		nver := ix.Count(rd)
		for j, cd := range cols {
			nhor := ix.Count(cd)
			ncell := ix.CountBoth(rd, cd)
			cell := Cell{
				Row: rd, Col: cd,
				Ncell: ncell, Nver: nver, Nhor: nhor, N: n,
			}
			if n > 0 && nver > 0 && nhor > 0 {
				pCell := float64(ncell) / float64(n)
				pVer := float64(nver) / float64(n)
				pHor := float64(nhor) / float64(n)
				if pVer > 0 && pHor > 0 {
					cell.PointIndex = pCell / (pVer * pHor)
				}
				// Conservative (smallest) value of the index: lower bound
				// of the cell density over upper bounds of the marginals.
				cellIv := stats.WilsonInterval(ncell, n, confidence)
				verIv := stats.WilsonInterval(nver, n, confidence)
				horIv := stats.WilsonInterval(nhor, n, confidence)
				if verIv.Hi > 0 && horIv.Hi > 0 {
					cell.LowerIndex = cellIv.Lo / (verIv.Hi * horIv.Hi)
				}
			}
			tbl.Cells[i][j] = cell
		}
		rowTotal := 0
		for j := range cols {
			rowTotal += tbl.Cells[i][j].Ncell
		}
		if rowTotal > 0 {
			for j := range cols {
				tbl.Cells[i][j].RowShare = float64(tbl.Cells[i][j].Ncell) / float64(rowTotal)
			}
		}
	}
	return tbl
}

// StrongestCells returns all cells ordered by descending LowerIndex —
// "we can identify pairs of concepts that exhibit stronger relationships
// than other pairs".
func (t *AssocTable) StrongestCells() []Cell {
	var out []Cell
	for _, row := range t.Cells {
		out = append(out, row...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].LowerIndex != out[j].LowerIndex {
			return out[i].LowerIndex > out[j].LowerIndex
		}
		if out[i].Row.Label() != out[j].Row.Label() {
			return out[i].Row.Label() < out[j].Row.Label()
		}
		return out[i].Col.Label() < out[j].Col.Label()
	})
	return out
}

// Render prints the table's row-share percentages, the format of the
// paper's Tables III and IV.
func (t *AssocTable) Render() string {
	out := ""
	width := 24
	out += fmt.Sprintf("%-*s", width, "")
	for _, c := range t.Cols {
		out += fmt.Sprintf("%*s", width, c.Label())
	}
	out += "\n"
	for i, r := range t.Rows {
		out += fmt.Sprintf("%-*s", width, r.Label())
		for j := range t.Cols {
			out += fmt.Sprintf("%*s", width, fmt.Sprintf("%.0f%% (%d)", 100*t.Cells[i][j].RowShare, t.Cells[i][j].Ncell))
		}
		out += "\n"
	}
	return out
}

// TrendPoint is one time bucket of a concept trend.
type TrendPoint struct {
	Time  int
	Count int
}

// Trend returns the per-bucket document counts of a dimension, sorted by
// time — "a simple function that examines the increase and decrease of
// occurrences of each concept in a certain period may allow us to
// analyze trends in the topics".
func (ix *Index) Trend(d Dim) []TrendPoint {
	counts := map[int]int{}
	for _, p := range ix.postings(d) {
		counts[ix.docs[p].Time]++
	}
	out := make([]TrendPoint, 0, len(counts))
	for t, c := range counts {
		out = append(out, TrendPoint{t, c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// TrendSlope fits a least-squares line to the trend and returns its
// slope in documents per bucket (0 for fewer than 2 points).
func TrendSlope(points []TrendPoint) float64 {
	n := float64(len(points))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for _, p := range points {
		x, y := float64(p.Time), float64(p.Count)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / denom
}
