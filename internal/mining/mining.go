// Package mining implements the indexing-and-reporting layer of BIVoC
// (§IV.D): documents annotated with concepts and linked structured
// fields are indexed by semantic classification, then analyzed with
//
//   - relevancy analysis with relative frequency (§IV.D.1): compare a
//     concept's density inside a featured subset with its density in the
//     whole collection;
//   - two-dimensional association analysis (§IV.D.2): cross-tabulate two
//     concept/field dimensions and rank cells by the point estimate of
//     the exponential mutual information, Ncell·N / (Nver·Nhor) (Eqn 4),
//     replaced by the left terminal of an interval estimate to stay
//     robust when counts are small;
//   - trend analysis over time buckets;
//   - drill-down from any table cell to the underlying documents
//     (Figure 4's view).
package mining

import (
	"fmt"
	"sort"
	"strings"

	"bivoc/internal/annotate"
	"bivoc/internal/stats"
)

// Document is one indexed VoC item: its extracted concepts, the
// structured fields attached by the linking engine, and a time bucket.
type Document struct {
	ID       string
	Concepts []annotate.Concept
	// Fields holds structured dimensions from the linked warehouse
	// record, e.g. "outcome" → "reservation", "agent" → "A17".
	Fields map[string]string
	// Time is an arbitrary bucket index (day, week) for trend analysis.
	Time int
}

// Dim identifies one dimension value: either a concept (category +
// canonical form) from the unstructured side, or a structured field
// value. "Some of these concepts could be dimensions from unstructured
// data and others could be from structured data."
type Dim struct {
	// Concept dimension: Category must be non-empty.
	Category  string
	Canonical string // "" means "any concept in Category"
	// Field dimension: Field must be non-empty (and Category empty).
	Field string
	Value string
	// And, when non-empty, makes this a conjunction: a document matches
	// only if it matches every child dimension. Conjunctions power the
	// drill-downs of Figure 4 ("weak-start calls that converted") and
	// compose freely with the other analyses.
	And []Dim
}

// ConceptDim returns a concept dimension.
func ConceptDim(category, canonical string) Dim {
	return Dim{Category: category, Canonical: canonical}
}

// CategoryDim returns a dimension matching any concept of a category.
func CategoryDim(category string) Dim { return Dim{Category: category} }

// FieldDim returns a structured-field dimension.
func FieldDim(field, value string) Dim { return Dim{Field: field, Value: value} }

// AndDim returns the conjunction of dimensions.
func AndDim(dims ...Dim) Dim { return Dim{And: dims} }

// Label renders the dimension for reports.
func (d Dim) Label() string {
	if len(d.And) > 0 {
		parts := make([]string, len(d.And))
		for i, c := range d.And {
			parts[i] = c.Label()
		}
		return strings.Join(parts, " ∧ ")
	}
	if d.Field != "" {
		return d.Field + "=" + d.Value
	}
	if d.Canonical == "" {
		return d.Category
	}
	return d.Canonical + "[" + d.Category + "]"
}

// Index stores documents with inverted lists per concept and field.
// The storage itself lives behind a Backing: the mutable in-memory
// maps Add builds, or a read-only mapped segment (see backing.go).
//
// Postings contract: every inverted list is kept sorted by document
// position (Add appends monotonically increasing positions), and every
// internal accessor that returns postings — leafPostings, resolve, the
// conjunction memo — returns read-only views. Query code must never
// write through them: intersections accumulate into queryCtx scratch
// buffers or freshly allocated memo slices instead. This is what lets a
// sealed index answer from many server handlers concurrently without a
// lock, and it is enforced by TestQueriesNeverMutatePostings.
type Index struct {
	b Backing

	// prep holds the sealed-index query caches (see Prepare); nil while
	// the index is still being built.
	prep *prepared
}

// NewIndex returns an empty index over the mutable in-memory backing.
func NewIndex() *Index {
	return &Index{b: newMemBacking()}
}

// Add indexes a document. Inverted lists record each document at most
// once per key (documents often repeat a concept). Adding to a Prepared
// index drops its prepared caches — they describe a snapshot that no
// longer exists. Add panics on a read-only backing (a mapped segment):
// those are sealed by construction.
func (ix *Index) Add(doc Document) {
	mb, ok := ix.b.(*memBacking)
	if !ok {
		panic("mining: Add on a read-only index backing (mapped segment)")
	}
	ix.prep = nil
	mb.add(doc)
}

// Len returns the number of indexed documents.
func (ix *Index) Len() int { return ix.b.DocCount() }

// Doc returns the i-th document.
func (ix *Index) Doc(i int) Document { return ix.b.Doc(i) }

// DocID returns the i-th document's ID without materializing the
// document (cheap over a mapped segment; see Backing.DocID).
func (ix *Index) DocID(i int) string { return ix.b.DocID(i) }

// Count returns how many documents match the dimension.
func (ix *Index) Count(d Dim) int {
	ctx := acquireQueryCtx()
	defer releaseQueryCtx(ctx)
	if ctx.naive {
		return len(ix.postingsNaive(d))
	}
	posts, owned := ix.resolve(ctx, d)
	n := len(posts)
	if owned {
		ctx.putBuf(posts)
	}
	return n
}

// CountBoth returns how many documents match both dimensions. The joint
// count is computed by a sorted merge (or gallop, for skewed list
// sizes) over the two postings — the intersection itself is never
// materialized.
func (ix *Index) CountBoth(a, b Dim) int {
	ctx := acquireQueryCtx()
	defer releaseQueryCtx(ctx)
	if ctx.naive {
		return ix.countBothNaive(a, b)
	}
	pa, ownedA := ix.resolve(ctx, a)
	pb, ownedB := ix.resolve(ctx, b)
	n := countIntersect(pa, pb)
	if ownedB {
		ctx.putBuf(pb)
	}
	if ownedA {
		ctx.putBuf(pa)
	}
	return n
}

// DrillDown returns the documents matching both dimensions — the
// cell-to-documents navigation of Figure 4 ("one can drill down through
// table cells right upto individual documents").
func (ix *Index) DrillDown(a, b Dim) []Document {
	ctx := acquireQueryCtx()
	defer releaseQueryCtx(ctx)
	if ctx.naive {
		return ix.drillDownNaive(a, b)
	}
	pa, ownedA := ix.resolve(ctx, a)
	pb, ownedB := ix.resolve(ctx, b)
	both := intersectInto(ctx.getBuf(), pa, pb)
	var out []Document
	for _, p := range both {
		out = append(out, ix.b.Doc(p))
	}
	ctx.putBuf(both)
	if ownedB {
		ctx.putBuf(pb)
	}
	if ownedA {
		ctx.putBuf(pa)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ConceptsInCategory returns the distinct canonical forms of a category,
// sorted by document frequency (descending, ties lexicographic). On a
// Prepared index this is a precomputed lookup.
func (ix *Index) ConceptsInCategory(category string) []string {
	if p := ix.prep; p != nil && !UseNaiveSets {
		names := p.catNames[category]
		out := make([]string, len(names))
		copy(out, names)
		return out
	}
	return ix.conceptsInCategoryNaive(category)
}

// FieldValues returns the distinct values of a structured field, sorted.
// On a Prepared index this is a precomputed lookup.
func (ix *Index) FieldValues(field string) []string {
	if p := ix.prep; p != nil && !UseNaiveSets {
		vals := p.fieldVals[field]
		if len(vals) == 0 {
			return nil
		}
		out := make([]string, len(vals))
		copy(out, vals)
		return out
	}
	return ix.fieldValuesNaive(field)
}

// Relevance is one row of a relative-frequency report.
type Relevance struct {
	Concept string
	// InSubset and InAll are document frequencies.
	InSubset, SubsetSize int
	InAll, N             int
	// Ratio is (InSubset/SubsetSize) / (InAll/N) — how over-represented
	// the concept is inside the featured subset.
	Ratio float64
}

// RelativeFrequency compares the distribution of category's concepts
// inside the subset defined by featured with their distribution in the
// entire data set, returning rows sorted by descending ratio ("by
// sorting phrases in a category based on the relative frequencies,
// relevant concepts for a specific data set are revealed"). The float
// math lives in FinalizeRelFreq — the shared merge pipeline — over the
// integer marginals this index extracts.
func (ix *Index) RelativeFrequency(category string, featured Dim) []Relevance {
	if UseNaiveSets {
		return ix.relativeFrequencyNaive(category, featured)
	}
	return FinalizeRelFreq(ix.RelFreqMarginals(category, featured))
}

// Cell is one cell of a two-dimensional association table.
type Cell struct {
	Row, Col Dim
	// Ncell, Nver, Nhor, N are the counts of Eqn 4.
	Ncell, Nver, Nhor, N int
	// PointIndex is Ncell·N / (Nver·Nhor) — the point estimate of the
	// exponential mutual information.
	PointIndex float64
	// LowerIndex replaces each density with the conservative end of its
	// Wilson interval ("we use the left terminal value (smallest value)
	// of the interval estimation instead of the point estimation").
	LowerIndex float64
	// RowShare is Ncell over the row's total across the table's columns —
	// the within-row percentage the paper's Tables III and IV report
	// (each row of those tables sums to 100% across the outcome columns;
	// documents matching the row but none of the listed columns, e.g.
	// service calls in an outcome table, do not dilute the percentages).
	RowShare float64
}

// AssocTable is a full two-dimensional association analysis.
type AssocTable struct {
	Rows, Cols []Dim
	Cells      [][]Cell // [row][col]
	Confidence float64
}

// AssociateWorkers is the package default for the parallel cell grid
// when Associate (or AssociateN with workers == 0) builds a table; 0 or
// negative means GOMAXPROCS. Tables are byte-identical at any worker
// count, so this is purely a throughput knob (cmd/bivocd exposes it as
// -assoc-workers).
var AssociateWorkers int

// Associate builds the two-dimensional association table between row
// and column dimensions at the given confidence level for the interval
// estimate (0 < confidence < 1; 0.95 is typical). The cell grid is
// fanned across AssociateWorkers workers.
func (ix *Index) Associate(rows, cols []Dim, confidence float64) *AssocTable {
	return ix.AssociateN(rows, cols, confidence, 0)
}

// AssociateN is Associate with an explicit worker count for the cell
// grid (0 falls back to AssociateWorkers, then GOMAXPROCS). Every cell
// is a pure function of hoisted, read-only marginals written to its own
// slot, so the assembled table is byte-identical at any worker count —
// the same guarantee the streaming pipeline makes for ingest.
func (ix *Index) AssociateN(rows, cols []Dim, confidence float64, workers int) *AssocTable {
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	ctx := acquireQueryCtx()
	defer releaseQueryCtx(ctx)
	if ctx.naive {
		return ix.associateNaive(rows, cols, confidence)
	}
	n := ix.b.DocCount()
	// Hoist every marginal out of the cell loop: postings and counts are
	// derived once per row and once per column (the naive path recomputes
	// each column's count and interval in every row), then the shared
	// merge core assembles the table — cell joint counts intersect live
	// inside its worker grid, and marginal intervals come from the sealed
	// index's Wilson cache, bit-identical to stats.WilsonIntervalZ.
	rowPosts := ix.marginPostings(ctx, rows)
	colPosts := ix.marginPostings(ctx, cols)
	nver := make([]int, len(rows))
	nhor := make([]int, len(cols))
	for i := range rows {
		nver[i] = len(rowPosts[i])
	}
	for j := range cols {
		nhor[j] = len(colPosts[j])
	}
	return assocTableFromMarginals(rows, cols, confidence, workers, n, nver, nhor,
		func(i, j int) int { return countIntersect(rowPosts[i], colPosts[j]) },
		func(successes int, z float64) stats.Interval {
			return ix.wilsonMarginal(successes, n, confidence, z)
		})
}

// marginPostings materializes the postings of every dimension for the
// lifetime of one Associate call: leaf and memoized lists are shared
// read-only views; scratch-computed conjunctions are copied out so the
// scratch can be reused.
func (ix *Index) marginPostings(ctx *queryCtx, dims []Dim) [][]int {
	out := make([][]int, len(dims))
	for i, d := range dims {
		posts, owned := ix.resolve(ctx, d)
		if owned {
			out[i] = append([]int(nil), posts...)
			ctx.putBuf(posts)
		} else {
			out[i] = posts
		}
	}
	return out
}

// StrongestCells returns all cells ordered by descending LowerIndex —
// "we can identify pairs of concepts that exhibit stronger relationships
// than other pairs".
func (t *AssocTable) StrongestCells() []Cell {
	var out []Cell
	for _, row := range t.Cells {
		out = append(out, row...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].LowerIndex != out[j].LowerIndex {
			return out[i].LowerIndex > out[j].LowerIndex
		}
		if out[i].Row.Label() != out[j].Row.Label() {
			return out[i].Row.Label() < out[j].Row.Label()
		}
		return out[i].Col.Label() < out[j].Col.Label()
	})
	return out
}

// Render prints the table's row-share percentages, the format of the
// paper's Tables III and IV.
func (t *AssocTable) Render() string {
	out := ""
	width := 24
	out += fmt.Sprintf("%-*s", width, "")
	for _, c := range t.Cols {
		out += fmt.Sprintf("%*s", width, c.Label())
	}
	out += "\n"
	for i, r := range t.Rows {
		out += fmt.Sprintf("%-*s", width, r.Label())
		for j := range t.Cols {
			out += fmt.Sprintf("%*s", width, fmt.Sprintf("%.0f%% (%d)", 100*t.Cells[i][j].RowShare, t.Cells[i][j].Ncell))
		}
		out += "\n"
	}
	return out
}

// TrendPoint is one time bucket of a concept trend.
type TrendPoint struct {
	Time  int
	Count int
}

// Trend returns the per-bucket document counts of a dimension, sorted by
// time — "a simple function that examines the increase and decrease of
// occurrences of each concept in a certain period may allow us to
// analyze trends in the topics".
func (ix *Index) Trend(d Dim) []TrendPoint {
	ctx := acquireQueryCtx()
	defer releaseQueryCtx(ctx)
	if ctx.naive {
		return ix.trendNaive(d)
	}
	posts, owned := ix.resolve(ctx, d)
	counts := map[int]int{}
	for _, p := range posts {
		counts[ix.b.DocTime(p)]++
	}
	if owned {
		ctx.putBuf(posts)
	}
	out := make([]TrendPoint, 0, len(counts))
	for t, c := range counts {
		out = append(out, TrendPoint{t, c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// TrendSlope fits a least-squares line to the trend and returns its
// slope in documents per bucket (0 for fewer than 2 points).
func TrendSlope(points []TrendPoint) float64 {
	n := float64(len(points))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for _, p := range points {
		x, y := float64(p.Time), float64(p.Count)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / denom
}
