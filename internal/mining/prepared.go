package mining

import (
	"sort"
	"sync"

	"bivoc/internal/stats"
)

// prepared carries the query structures a sealed index precomputes so
// the serving hot path stops paying for them per request:
//
//   - per-category canonical concept lists with document frequencies and
//     per-field value lists, already in report order, making
//     ConceptsInCategory / FieldValues O(1) lookups (the /v1/concepts
//     discovery endpoint) instead of full map scans with a sort;
//   - memoized conjunction postings keyed by Dim.CanonicalLabel, so the
//     drill-down conjunctions analysts re-issue ("weak start ∧
//     outcome=reservation") intersect once per snapshot;
//   - cached Wilson intervals for the marginal counts Associate keeps
//     re-deriving across tables served at one confidence level.
//
// The precomputed lists are immutable after prepare; the two memo maps
// are guarded by mu because sealed indexes are queried from many server
// handlers at once.
type prepared struct {
	catEntries map[string][]catEntry
	catNames   map[string][]string
	fieldVals  map[string][]string

	mu     sync.RWMutex
	conj   map[string][]int
	wilson map[wilsonKey]stats.Interval
}

// catEntry is one canonical concept of a category with its document
// frequency, held in ConceptsInCategory order (frequency desc, ties
// lexicographic). It deliberately carries the df, not the postings:
// over a mapped backing, holding every category's lists here would
// materialize the whole segment at Prepare time — consumers that need
// the actual list (RelFreqMarginals) fetch it through the backing on
// demand instead.
type catEntry struct {
	canon string
	df    int
}

// wilsonKey caches one marginal interval; the trial count n is the
// index's document count, fixed per index, so it is not part of the key.
type wilsonKey struct {
	successes  int
	confidence float64
}

// Prepare precomputes the sealed-index query structures above. It is
// idempotent and is called automatically by StreamIndex.Seal; batch
// builders that assemble an Index by hand (core.RunEmailCategoryAnalysis)
// call it once indexing is done. Prepare must happen-before any
// concurrent queries, and a later Add drops the prepared state (the
// caches would be stale), returning the index to the uncached fast path.
func (ix *Index) Prepare() {
	if ix.prep != nil {
		return
	}
	p := &prepared{
		catEntries: make(map[string][]catEntry),
		catNames:   make(map[string][]string),
		fieldVals:  make(map[string][]string),
		conj:       make(map[string][]int),
		wilson:     make(map[wilsonKey]stats.Interval),
	}
	ix.b.EachConcept(func(cat, canon string, df int) {
		p.catEntries[cat] = append(p.catEntries[cat], catEntry{canon: canon, df: df})
	})
	for cat, entries := range p.catEntries {
		sort.Slice(entries, func(i, j int) bool {
			if entries[i].df != entries[j].df {
				return entries[i].df > entries[j].df
			}
			return entries[i].canon < entries[j].canon
		})
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.canon
		}
		p.catNames[cat] = names
	}
	ix.b.EachField(func(field, value string, _ int) {
		p.fieldVals[field] = append(p.fieldVals[field], value)
	})
	for _, vals := range p.fieldVals {
		sort.Strings(vals)
	}
	ix.prep = p
}

// conjCached returns the memoized postings of a canonicalized
// conjunction, if already computed. The result is read-only.
func (p *prepared) conjCached(key string) ([]int, bool) {
	p.mu.RLock()
	posts, ok := p.conj[key]
	p.mu.RUnlock()
	return posts, ok
}

// conjStore memoizes a conjunction's postings. posts must be a private
// copy (never a scratch buffer). First store wins so concurrent misses
// publish one canonical slice.
func (p *prepared) conjStore(key string, posts []int) {
	p.mu.Lock()
	if _, ok := p.conj[key]; !ok {
		p.conj[key] = posts
	}
	p.mu.Unlock()
}

// wilsonMarginal returns the Wilson interval for a marginal count,
// served from the sealed index's cache when prepared. z must equal
// stats.WilsonZ(confidence); results are bit-identical to
// stats.WilsonInterval for the same arguments.
func (ix *Index) wilsonMarginal(successes, n int, confidence, z float64) stats.Interval {
	p := ix.prep
	if p == nil {
		return stats.WilsonIntervalZ(successes, n, z)
	}
	key := wilsonKey{successes, confidence}
	p.mu.RLock()
	iv, ok := p.wilson[key]
	p.mu.RUnlock()
	if ok {
		return iv
	}
	iv = stats.WilsonIntervalZ(successes, n, z)
	p.mu.Lock()
	p.wilson[key] = iv
	p.mu.Unlock()
	return iv
}
