package mining

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"bivoc/internal/annotate"
	"bivoc/internal/rng"
)

// streamCorpus synthesizes a deterministic document set exercising every
// index structure: concepts across categories, structured fields, and
// time buckets.
func streamCorpus(n int) []Document {
	r := rng.New(42)
	colors := []string{"red", "green", "blue"}
	shapes := []string{"circle", "square"}
	outcomes := []string{"won", "lost"}
	docs := make([]Document, n)
	for i := range docs {
		dr := r.Split(uint64(i))
		var concepts []annotate.Concept
		concepts = append(concepts, annotate.Concept{
			Category: "color", Canonical: rng.Pick(dr, colors), Start: 0, End: 1,
		})
		if dr.Bool(0.6) {
			concepts = append(concepts, annotate.Concept{
				Category: "shape", Canonical: rng.Pick(dr, shapes), Start: 1, End: 2,
			})
		}
		docs[i] = Document{
			ID:       fmt.Sprintf("doc-%05d", i),
			Concepts: concepts,
			Fields:   map[string]string{"outcome": rng.Pick(dr, outcomes)},
			Time:     dr.Intn(7),
		}
	}
	return docs
}

// queryFingerprint captures every analysis surface over an index so two
// indexes can be compared for behavioural equality.
func queryFingerprint(t *testing.T, q interface {
	Count(Dim) int
	CountBoth(a, b Dim) int
	Associate(rows, cols []Dim, confidence float64) *AssocTable
	RelativeFrequency(category string, featured Dim) []Relevance
	Trend(d Dim) []TrendPoint
	DrillDown(a, b Dim) []Document
	ConceptsInCategory(category string) []string
	FieldValues(field string) []string
}) string {
	t.Helper()
	rows := []Dim{ConceptDim("color", "red"), ConceptDim("color", "green"), ConceptDim("color", "blue")}
	cols := []Dim{FieldDim("outcome", "won"), FieldDim("outcome", "lost")}
	out := q.Associate(rows, cols, 0.95).Render()
	out += fmt.Sprintf("count=%d both=%d\n",
		q.Count(CategoryDim("shape")),
		q.CountBoth(ConceptDim("shape", "circle"), FieldDim("outcome", "won")))
	for _, rel := range q.RelativeFrequency("shape", FieldDim("outcome", "won")) {
		out += fmt.Sprintf("rel %s %.6f %d/%d %d/%d\n", rel.Concept, rel.Ratio, rel.InSubset, rel.SubsetSize, rel.InAll, rel.N)
	}
	for _, p := range q.Trend(ConceptDim("color", "red")) {
		out += fmt.Sprintf("trend %d=%d\n", p.Time, p.Count)
	}
	for _, d := range q.DrillDown(ConceptDim("color", "blue"), FieldDim("outcome", "lost")) {
		out += "drill " + d.ID + "\n"
	}
	out += fmt.Sprintf("cats %v fields %v\n", q.ConceptsInCategory("color"), q.FieldValues("outcome"))
	return out
}

// TestStreamIndexMatchesBatchIndex is the sealed-snapshot equivalence
// proof: a StreamIndex fed out of order from many goroutines answers
// every analysis identically to a batch Index built sequentially from
// the same documents.
func TestStreamIndexMatchesBatchIndex(t *testing.T) {
	docs := streamCorpus(3000)

	batch := NewIndex()
	for _, d := range docs {
		batch.Add(d)
	}

	si := NewStreamIndex()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Strided partition: interleaved IDs guarantee the arrival
			// order differs wildly from generation order.
			for i := w; i < len(docs); i += workers {
				si.Add(docs[i])
			}
		}(w)
	}
	wg.Wait()

	// Pre-seal: queries must already agree (order-insensitive analyses).
	if got, want := queryFingerprint(t, si), queryFingerprint(t, batch); got != want {
		t.Fatalf("pre-seal stream results diverge from batch:\n--- stream ---\n%s--- batch ---\n%s", got, want)
	}

	sealed := si.Seal()
	if got, want := queryFingerprint(t, sealed), queryFingerprint(t, batch); got != want {
		t.Fatalf("sealed results diverge from batch:\n--- sealed ---\n%s--- batch ---\n%s", got, want)
	}
	// Sealed rebuild is ID-ordered, so document positions are canonical:
	// doc i of the sealed index is doc i of the batch index (the corpus
	// was generated in ID order).
	if sealed.Len() != batch.Len() {
		t.Fatalf("sealed len %d != batch len %d", sealed.Len(), batch.Len())
	}
	for i := 0; i < sealed.Len(); i++ {
		if !reflect.DeepEqual(sealed.Doc(i), batch.Doc(i)) {
			t.Fatalf("sealed doc %d differs from batch doc %d", i, i)
		}
	}
}

// TestStreamIndexAddWhileQuery races writers against every reader path
// under -race: correctness here is "no race, no panic, and monotonically
// consistent snapshots".
func TestStreamIndexAddWhileQuery(t *testing.T) {
	docs := streamCorpus(2000)
	si := NewStreamIndex()

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers: hammer the analysis surface while adds are in flight.
	readerErr := make(chan string, 1)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rows := []Dim{ConceptDim("color", "red"), ConceptDim("color", "green")}
			cols := []Dim{FieldDim("outcome", "won"), FieldDim("outcome", "lost")}
			prevLen := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := si.Len()
				if n < prevLen {
					select {
					case readerErr <- fmt.Sprintf("Len went backwards: %d then %d", prevLen, n):
					default:
					}
					return
				}
				prevLen = n
				tbl := si.Associate(rows, cols, 0.95)
				for _, row := range tbl.Cells {
					for _, cell := range row {
						if cell.Ncell > cell.N {
							select {
							case readerErr <- fmt.Sprintf("cell count %d exceeds N %d", cell.Ncell, cell.N):
							default:
							}
							return
						}
					}
				}
				si.RelativeFrequency("shape", FieldDim("outcome", "won"))
				si.Trend(ConceptDim("color", "red"))
				si.DrillDown(ConceptDim("color", "blue"), FieldDim("outcome", "lost"))
				si.ConceptsInCategory("color")
				si.Snapshot(func(ix *Index) {
					if ix.Count(CategoryDim("color")) > ix.Len() {
						panic("snapshot count exceeds len")
					}
				})
			}
		}()
	}

	// Writers: 4 goroutines adding strided partitions, one using batches.
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			if w == 0 {
				var buf []Document
				for i := w; i < len(docs); i += 4 {
					buf = append(buf, docs[i])
					if len(buf) == 32 {
						si.AddBatch(buf)
						buf = buf[:0]
					}
				}
				si.AddBatch(buf)
				return
			}
			for i := w; i < len(docs); i += 4 {
				si.Add(docs[i])
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	wg.Wait()
	select {
	case msg := <-readerErr:
		t.Fatal(msg)
	default:
	}
	if si.Len() != len(docs) {
		t.Fatalf("indexed %d docs, want %d", si.Len(), len(docs))
	}
}

func TestStreamIndexSealSemantics(t *testing.T) {
	si := NewStreamIndex()
	docs := streamCorpus(10)
	for _, d := range docs {
		si.Add(d)
	}
	first := si.Seal()
	if second := si.Seal(); second != first {
		t.Fatal("Seal is not idempotent")
	}
	// Queries keep answering over the sealed contents.
	if si.Len() != 10 {
		t.Fatalf("post-seal Len %d, want 10", si.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Add after Seal did not panic")
		}
	}()
	si.Add(docs[0])
}

// TestStreamIndexDuplicateIDPanics: the duplicate tripwire exists for
// retrying pipelines — a stage that replays an item it already emitted
// must be caught at the index, not surface later as a nondeterministic
// Seal.
func TestStreamIndexDuplicateIDPanics(t *testing.T) {
	si := NewStreamIndex()
	docs := streamCorpus(3)
	for _, d := range docs {
		si.Add(d)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate-ID Add did not panic")
		}
	}()
	si.Add(docs[1])
}

func TestStreamIndexSealChecked(t *testing.T) {
	si := NewStreamIndex()
	docs := streamCorpus(8)
	for _, d := range docs {
		si.Add(d)
	}
	ix, err := si.SealChecked(8)
	if err != nil {
		t.Fatalf("SealChecked with matching count failed: %v", err)
	}
	if ix.Len() != 8 {
		t.Fatalf("sealed Len %d, want 8", ix.Len())
	}

	// Dead-letter-aware accounting: 2 of 10 items dead-lettered → the
	// expectation is corpus minus dead letters, not corpus size.
	si2 := NewStreamIndex()
	for _, d := range streamCorpus(10)[:8] {
		si2.Add(d)
	}
	if _, err := si2.SealChecked(10 - 2); err != nil {
		t.Fatalf("SealChecked(corpus-dead) failed: %v", err)
	}

	si3 := NewStreamIndex()
	for _, d := range streamCorpus(5) {
		si3.Add(d)
	}
	if _, err := si3.SealChecked(7); err == nil {
		t.Fatal("SealChecked passed despite lost documents")
	}
}
