package mining

import (
	"fmt"
	"sort"
)

// IndexSnapshot is the exported, order-deterministic view of an Index's
// internals: the document store plus the three inverted-list families,
// each sorted by key. It is the bridge between the mining layer and the
// persistence layer (internal/store): Export materializes one from a
// sealed index, the store serializes it as a binary segment, and
// FromSnapshot rebuilds a queryable Index from a decoded snapshot
// without re-paying the per-document Add path.
//
// Postings in a snapshot obey the same contract as in the live index:
// every list is strictly increasing document positions in
// [0, len(Docs)). FromSnapshot validates that contract and refuses
// structurally invalid snapshots — a decoded segment must never load
// into an index that silently answers queries wrong.
type IndexSnapshot struct {
	Docs []Document
	// Concepts holds the {category, canonical} → postings lists, sorted
	// by category then canonical.
	Concepts []KeyedPostings
	// Categories holds the category → postings lists, sorted by category.
	Categories []CatPostings
	// Fields holds the {field, value} → postings lists, sorted by field
	// then value.
	Fields []KeyedPostings
}

// KeyedPostings is one inverted list under a two-part key — either
// {category, canonical} or {field, value}.
type KeyedPostings struct {
	Key   [2]string
	Posts []int
}

// CatPostings is one per-category inverted list.
type CatPostings struct {
	Category string
	Posts    []int
}

// Export materializes the index as an IndexSnapshot. The snapshot
// shares postings slices and documents with the index — treat it as
// read-only and do not mutate the index while holding it. Entry order
// is deterministic (sorted by key), so the same index always exports
// the same snapshot regardless of map iteration order.
func (ix *Index) Export() *IndexSnapshot {
	s := &IndexSnapshot{}
	if mb, ok := ix.b.(*memBacking); ok {
		// Materialized backing: share the document slice directly.
		s.Docs = mb.docs
	} else {
		// Read-only backing (mapped segment): materialize every record.
		// Export is off the query path — it runs when a segment is
		// re-encoded, e.g. at compaction — so the full decode is paid
		// exactly where the bytes are needed.
		s.Docs = make([]Document, ix.b.DocCount())
		for i := range s.Docs {
			s.Docs[i] = ix.b.Doc(i)
		}
	}
	ix.b.EachConcept(func(cat, canon string, _ int) {
		s.Concepts = append(s.Concepts, KeyedPostings{
			Key: [2]string{cat, canon}, Posts: ix.b.ConceptPostings(cat, canon)})
	})
	ix.b.EachCategory(func(cat string, _ int) {
		s.Categories = append(s.Categories, CatPostings{Category: cat, Posts: ix.b.CategoryPostings(cat)})
	})
	ix.b.EachField(func(field, value string, _ int) {
		s.Fields = append(s.Fields, KeyedPostings{
			Key: [2]string{field, value}, Posts: ix.b.FieldPostings(field, value)})
	})
	sortKeyed(s.Concepts)
	sortKeyed(s.Fields)
	sort.Slice(s.Categories, func(i, j int) bool {
		return s.Categories[i].Category < s.Categories[j].Category
	})
	return s
}

func sortKeyed(entries []KeyedPostings) {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Key[0] != entries[j].Key[0] {
			return entries[i].Key[0] < entries[j].Key[0]
		}
		return entries[i].Key[1] < entries[j].Key[1]
	})
}

// FromSnapshot rebuilds an Index from a snapshot, validating the
// postings contract (strictly increasing positions in range, unique
// keys) along the way. The returned index answers every query exactly
// as the index the snapshot was exported from; callers that want the
// sealed-index caches call Prepare on it. The snapshot's slices are
// adopted, not copied — do not reuse them afterwards.
func FromSnapshot(s *IndexSnapshot) (*Index, error) {
	mb := &memBacking{
		docs:      s.Docs,
		byConcept: make(map[[2]string][]int, len(s.Concepts)),
		byCat:     make(map[string][]int, len(s.Categories)),
		byField:   make(map[[2]string][]int, len(s.Fields)),
	}
	n := len(s.Docs)
	for _, e := range s.Concepts {
		if err := checkPostings("concept", e.Key[0]+"/"+e.Key[1], e.Posts, n); err != nil {
			return nil, err
		}
		if _, dup := mb.byConcept[e.Key]; dup {
			return nil, fmt.Errorf("mining: snapshot: duplicate concept key %q/%q", e.Key[0], e.Key[1])
		}
		mb.byConcept[e.Key] = e.Posts
	}
	for _, e := range s.Categories {
		if err := checkPostings("category", e.Category, e.Posts, n); err != nil {
			return nil, err
		}
		if _, dup := mb.byCat[e.Category]; dup {
			return nil, fmt.Errorf("mining: snapshot: duplicate category key %q", e.Category)
		}
		mb.byCat[e.Category] = e.Posts
	}
	for _, e := range s.Fields {
		if err := checkPostings("field", e.Key[0]+"="+e.Key[1], e.Posts, n); err != nil {
			return nil, err
		}
		if _, dup := mb.byField[e.Key]; dup {
			return nil, fmt.Errorf("mining: snapshot: duplicate field key %q=%q", e.Key[0], e.Key[1])
		}
		mb.byField[e.Key] = e.Posts
	}
	return &Index{b: mb}, nil
}

// checkPostings enforces the postings contract on one decoded list.
func checkPostings(kind, key string, posts []int, n int) error {
	prev := -1
	for _, p := range posts {
		if p <= prev || p >= n {
			return fmt.Errorf("mining: snapshot: %s %q postings violate the sorted-in-range contract (pos %d after %d, %d docs)",
				kind, key, p, prev, n)
		}
		prev = p
	}
	return nil
}
