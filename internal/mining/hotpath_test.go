package mining

import (
	"math/rand"
	"reflect"
	"testing"
)

// snapshotPostings deep-copies every inverted list in the index so a
// test can later prove no query wrote through them.
func snapshotPostings(ix *Index) map[string][]int {
	snap := map[string][]int{}
	ix.b.EachConcept(func(cat, canon string, _ int) {
		snap["concept/"+cat+"/"+canon] = append([]int(nil), ix.b.ConceptPostings(cat, canon)...)
	})
	ix.b.EachCategory(func(cat string, _ int) {
		snap["cat/"+cat] = append([]int(nil), ix.b.CategoryPostings(cat)...)
	})
	ix.b.EachField(func(f, v string, _ int) {
		snap["field/"+f+"/"+v] = append([]int(nil), ix.b.FieldPostings(f, v)...)
	})
	return snap
}

// allDocs returns the index's documents in position order — the test
// helper replacement for reaching into the backing's document slice.
func allDocs(ix *Index) []Document {
	docs := make([]Document, ix.Len())
	for i := range docs {
		docs[i] = ix.Doc(i)
	}
	return docs
}

// runQueryBattery drives every analytics entry point, including repeat
// calls that hit the prepared caches, and mutates every slice a query
// returns — if any of them aliases index internals, the comparison
// against the pre-battery snapshot will catch it.
func runQueryBattery(ix *Index, w *equivWorld) {
	for range [2]int{} { // twice: cache-miss then cache-hit paths
		for _, d := range w.dims {
			ix.Count(d)
			for _, pt := range ix.Trend(d) {
				_ = pt
			}
		}
		for i, a := range w.dims {
			b := w.dims[(i+5)%len(w.dims)]
			ix.CountBoth(a, b)
			docs := ix.DrillDown(a, b)
			for j := range docs {
				docs[j].ID = "clobbered"
			}
		}
		for _, cat := range w.cats {
			names := ix.ConceptsInCategory(cat)
			for j := range names {
				names[j] = "clobbered"
			}
			rel := ix.RelativeFrequency(cat, w.dims[11])
			for j := range rel {
				rel[j].Concept = "clobbered"
			}
		}
		for _, f := range w.fields {
			vals := ix.FieldValues(f)
			for j := range vals {
				vals[j] = "clobbered"
			}
		}
		tbl := ix.AssociateN(w.dims[:4], w.dims[8:11], 0.95, 4)
		for i := range tbl.Cells {
			for j := range tbl.Cells[i] {
				tbl.Cells[i][j].N = -1
			}
		}
	}
}

// TestQueriesNeverMutatePostings enforces the postings contract on Index:
// internal inverted lists (and the prepared caches built over them) are
// read-only views, so a sealed index can serve concurrent handlers
// without locks. The fast path accumulates into scratch buffers instead
// of writing through resolved postings; this test fails if any query
// mutates an inverted list or hands a caller a slice that aliases one.
func TestQueriesNeverMutatePostings(t *testing.T) {
	for _, prepare := range []bool{false, true} {
		w := newEquivWorld(rand.New(rand.NewSource(42)), 120)
		if prepare {
			w.ix.Prepare()
		}
		before := snapshotPostings(w.ix)
		runQueryBattery(w.ix, w)
		after := snapshotPostings(w.ix)
		if !reflect.DeepEqual(before, after) {
			for k, b := range before {
				if !reflect.DeepEqual(b, after[k]) {
					t.Errorf("prepare=%v: postings %q mutated by queries:\n before %v\n after  %v",
						prepare, k, b, after[k])
				}
			}
			t.Fatalf("prepare=%v: query battery mutated index postings", prepare)
		}
		// Results must still match the oracle after the battery mutated
		// every returned slice — i.e. callers got copies, not cache views.
		checkEquiv(t, w)
	}
}

// TestConjunctionMemoStability pins that the memoized conjunction cache
// returns stable answers: the same canonical key served twice (including
// via differently-ordered but equivalent Dim trees) yields identical
// results, and the cached postings are not scratch that later queries
// recycle.
func TestConjunctionMemoStability(t *testing.T) {
	w := newEquivWorld(rand.New(rand.NewSource(99)), 150)
	w.ix.Prepare()
	a := AndDim(ConceptDim("issue", "billing"), FieldDim("outcome", "reservation"))
	b := AndDim(FieldDim("outcome", "reservation"), ConceptDim("issue", "billing"))
	if a.CanonicalLabel() != b.CanonicalLabel() {
		t.Fatalf("reordered conjunctions canonicalize differently: %q vs %q",
			a.CanonicalLabel(), b.CanonicalLabel())
	}
	first := w.ix.Count(a)
	// Churn the scratch pools with unrelated queries.
	runQueryBattery(w.ix, w)
	if got := w.ix.Count(b); got != first {
		t.Fatalf("memoized conjunction unstable: first Count=%d, after churn Count=%d", first, got)
	}
	var naive int
	withNaive(func() { naive = w.ix.Count(a) })
	if first != naive {
		t.Fatalf("memoized conjunction Count=%d, naive %d", first, naive)
	}
}
