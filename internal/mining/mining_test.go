package mining

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"bivoc/internal/annotate"
)

func doc(id string, time int, fields map[string]string, concepts ...[2]string) Document {
	d := Document{ID: id, Time: time, Fields: fields}
	for _, c := range concepts {
		d.Concepts = append(d.Concepts, annotate.Concept{Category: c[0], Canonical: c[1]})
	}
	return d
}

// buildIndex creates a small corpus with a designed association:
// strong-start calls mostly convert, weak-start calls mostly do not.
func buildIndex() *Index {
	ix := NewIndex()
	id := 0
	add := func(n int, intent, outcome string, extra ...[2]string) {
		for i := 0; i < n; i++ {
			id++
			cs := append([][2]string{{"intent", intent}}, extra...)
			var cc [][2]string
			cc = append(cc, cs...)
			d := doc(fmt.Sprintf("d%03d", id), i%5, map[string]string{"outcome": outcome})
			for _, c := range cc {
				d.Concepts = append(d.Concepts, annotate.Concept{Category: c[0], Canonical: c[1]})
			}
			ix.Add(d)
		}
	}
	add(63, "strong start", "reservation")
	add(37, "strong start", "unbooked")
	add(32, "weak start", "reservation", [2]string{"agent", "discount"})
	add(68, "weak start", "unbooked")
	return ix
}

func TestCounts(t *testing.T) {
	ix := buildIndex()
	if ix.Len() != 200 {
		t.Fatalf("len = %d", ix.Len())
	}
	if got := ix.Count(ConceptDim("intent", "strong start")); got != 100 {
		t.Errorf("strong start count = %d", got)
	}
	if got := ix.Count(FieldDim("outcome", "reservation")); got != 95 {
		t.Errorf("reservation count = %d", got)
	}
	if got := ix.Count(CategoryDim("intent")); got != 200 {
		t.Errorf("intent category count = %d", got)
	}
	if got := ix.CountBoth(ConceptDim("intent", "strong start"), FieldDim("outcome", "reservation")); got != 63 {
		t.Errorf("joint count = %d", got)
	}
}

func TestDuplicateConceptCountedOnce(t *testing.T) {
	ix := NewIndex()
	d := doc("x", 0, nil, [2]string{"c", "v"}, [2]string{"c", "v"})
	ix.Add(d)
	if got := ix.Count(ConceptDim("c", "v")); got != 1 {
		t.Errorf("duplicate concept counted %d times", got)
	}
}

func TestAssociateRowShares(t *testing.T) {
	ix := buildIndex()
	tbl := ix.Associate(
		[]Dim{ConceptDim("intent", "strong start"), ConceptDim("intent", "weak start")},
		[]Dim{FieldDim("outcome", "reservation"), FieldDim("outcome", "unbooked")},
		0.95,
	)
	// Table III shape: strong → 63/37, weak → 32/68.
	if got := tbl.Cells[0][0].RowShare; math.Abs(got-0.63) > 1e-9 {
		t.Errorf("strong/reservation share = %v", got)
	}
	if got := tbl.Cells[1][1].RowShare; math.Abs(got-0.68) > 1e-9 {
		t.Errorf("weak/unbooked share = %v", got)
	}
}

func TestAssociateIndexes(t *testing.T) {
	ix := buildIndex()
	tbl := ix.Associate(
		[]Dim{ConceptDim("intent", "strong start")},
		[]Dim{FieldDim("outcome", "reservation"), FieldDim("outcome", "unbooked")},
		0.95,
	)
	strongRes := tbl.Cells[0][0]
	strongUnb := tbl.Cells[0][1]
	// Strong start is positively associated with reservation (>1) and
	// negatively with unbooked (<1).
	if strongRes.PointIndex <= 1 {
		t.Errorf("strong/reservation point index = %v, want >1", strongRes.PointIndex)
	}
	if strongUnb.PointIndex >= 1 {
		t.Errorf("strong/unbooked point index = %v, want <1", strongUnb.PointIndex)
	}
	// The conservative estimate is below the point estimate.
	if strongRes.LowerIndex >= strongRes.PointIndex {
		t.Errorf("lower %v should be below point %v", strongRes.LowerIndex, strongRes.PointIndex)
	}
	if strongRes.LowerIndex <= 0 {
		t.Errorf("lower index should be positive with these counts: %v", strongRes.LowerIndex)
	}
}

func TestLowerIndexSmallCountRobustness(t *testing.T) {
	// A 1-document coincidence has a huge point index but should be
	// heavily discounted by the interval estimate — the §IV.D.2 rationale.
	ix := NewIndex()
	ix.Add(doc("a", 0, map[string]string{"o": "x"}, [2]string{"c", "rare"}))
	for i := 0; i < 99; i++ {
		ix.Add(doc(fmt.Sprintf("f%d", i), 0, map[string]string{"o": "y"}, [2]string{"c", "common"}))
	}
	tbl := ix.Associate([]Dim{ConceptDim("c", "rare")}, []Dim{FieldDim("o", "x")}, 0.95)
	cell := tbl.Cells[0][0]
	if cell.PointIndex < 50 {
		t.Errorf("point index = %v, expected huge", cell.PointIndex)
	}
	if cell.LowerIndex > cell.PointIndex/10 {
		t.Errorf("lower index %v not conservative enough vs point %v", cell.LowerIndex, cell.PointIndex)
	}
}

func TestStrongestCellsOrdering(t *testing.T) {
	ix := buildIndex()
	tbl := ix.Associate(
		[]Dim{ConceptDim("intent", "strong start"), ConceptDim("intent", "weak start")},
		[]Dim{FieldDim("outcome", "reservation"), FieldDim("outcome", "unbooked")},
		0.95,
	)
	cells := tbl.StrongestCells()
	for i := 1; i < len(cells); i++ {
		if cells[i].LowerIndex > cells[i-1].LowerIndex+1e-12 {
			t.Error("cells not sorted by lower index")
		}
	}
	if len(cells) != 4 {
		t.Errorf("got %d cells", len(cells))
	}
}

func TestRenderContainsShares(t *testing.T) {
	ix := buildIndex()
	tbl := ix.Associate(
		[]Dim{ConceptDim("intent", "strong start")},
		[]Dim{FieldDim("outcome", "reservation"), FieldDim("outcome", "unbooked")},
		0.95,
	)
	s := tbl.Render()
	if !strings.Contains(s, "63%") || !strings.Contains(s, "37%") || !strings.Contains(s, "strong start") {
		t.Errorf("render missing content:\n%s", s)
	}
}

func TestRelativeFrequency(t *testing.T) {
	ix := buildIndex()
	// Within weak-start-converted calls, the "discount" agent concept is
	// over-represented (the §V.B finding).
	rel := ix.RelativeFrequency("agent", FieldDim("outcome", "reservation"))
	if len(rel) != 1 {
		t.Fatalf("relevance rows = %v", rel)
	}
	r := rel[0]
	if r.Concept != "discount" {
		t.Errorf("concept = %q", r.Concept)
	}
	// discount appears only in converted calls: ratio = (32/95)/(32/200) > 1.
	if r.Ratio <= 1 {
		t.Errorf("ratio = %v, want > 1", r.Ratio)
	}
	if r.InSubset != 32 || r.InAll != 32 || r.N != 200 || r.SubsetSize != 95 {
		t.Errorf("counts wrong: %+v", r)
	}
}

func TestRelativeFrequencySorting(t *testing.T) {
	ix := NewIndex()
	for i := 0; i < 10; i++ {
		fields := map[string]string{"g": "in"}
		if i >= 5 {
			fields["g"] = "out"
		}
		d := doc(fmt.Sprintf("d%d", i), 0, fields)
		d.Concepts = append(d.Concepts, annotate.Concept{Category: "c", Canonical: "everywhere"})
		if i < 5 {
			d.Concepts = append(d.Concepts, annotate.Concept{Category: "c", Canonical: "insider"})
		}
		ix.Add(d)
	}
	rel := ix.RelativeFrequency("c", FieldDim("g", "in"))
	if rel[0].Concept != "insider" {
		t.Errorf("most relevant concept = %q", rel[0].Concept)
	}
	if rel[0].Ratio <= rel[1].Ratio {
		t.Error("sorting wrong")
	}
}

func TestDrillDown(t *testing.T) {
	ix := buildIndex()
	docs := ix.DrillDown(ConceptDim("intent", "weak start"), FieldDim("outcome", "reservation"))
	if len(docs) != 32 {
		t.Fatalf("drill-down found %d docs", len(docs))
	}
	for i := 1; i < len(docs); i++ {
		if docs[i].ID < docs[i-1].ID {
			t.Error("drill-down not sorted by ID")
		}
	}
}

func TestConceptsInCategory(t *testing.T) {
	ix := buildIndex()
	got := ix.ConceptsInCategory("intent")
	if len(got) != 2 || got[0] != "strong start" && got[0] != "weak start" {
		t.Errorf("concepts = %v", got)
	}
	// weak start has 100 docs, strong start 100 — tie broken
	// lexicographically: "strong start" first.
	if got[0] != "strong start" {
		t.Errorf("tie break wrong: %v", got)
	}
	if got := ix.ConceptsInCategory("ghost"); len(got) != 0 {
		t.Errorf("phantom category: %v", got)
	}
}

func TestFieldValues(t *testing.T) {
	ix := buildIndex()
	got := ix.FieldValues("outcome")
	if len(got) != 2 || got[0] != "reservation" || got[1] != "unbooked" {
		t.Errorf("field values = %v", got)
	}
}

func TestTrend(t *testing.T) {
	ix := buildIndex()
	points := ix.Trend(ConceptDim("intent", "strong start"))
	total := 0
	for i, p := range points {
		total += p.Count
		if i > 0 && points[i].Time <= points[i-1].Time {
			t.Error("trend not time-sorted")
		}
	}
	if total != 100 {
		t.Errorf("trend total = %d", total)
	}
}

func TestTrendSlope(t *testing.T) {
	rising := []TrendPoint{{0, 1}, {1, 3}, {2, 5}, {3, 7}}
	if s := TrendSlope(rising); math.Abs(s-2) > 1e-9 {
		t.Errorf("slope = %v, want 2", s)
	}
	if s := TrendSlope([]TrendPoint{{0, 4}}); s != 0 {
		t.Errorf("single-point slope = %v", s)
	}
	flat := []TrendPoint{{0, 5}, {1, 5}, {2, 5}}
	if s := TrendSlope(flat); math.Abs(s) > 1e-9 {
		t.Errorf("flat slope = %v", s)
	}
}

func TestEmptyIndex(t *testing.T) {
	ix := NewIndex()
	if ix.Count(CategoryDim("x")) != 0 {
		t.Error("empty index count")
	}
	tbl := ix.Associate([]Dim{CategoryDim("x")}, []Dim{FieldDim("f", "v")}, 0.95)
	if tbl.Cells[0][0].PointIndex != 0 || tbl.Cells[0][0].RowShare != 0 {
		t.Error("empty cells should be zero")
	}
	if rel := ix.RelativeFrequency("x", CategoryDim("y")); len(rel) != 0 {
		t.Errorf("empty relevance: %v", rel)
	}
}

func TestDimLabel(t *testing.T) {
	if ConceptDim("c", "v").Label() != "v[c]" {
		t.Error("concept label")
	}
	if CategoryDim("c").Label() != "c" {
		t.Error("category label")
	}
	if FieldDim("f", "v").Label() != "f=v" {
		t.Error("field label")
	}
}

func TestAssociateInvalidConfidenceDefaults(t *testing.T) {
	ix := buildIndex()
	tbl := ix.Associate([]Dim{CategoryDim("intent")}, []Dim{FieldDim("outcome", "reservation")}, 2.0)
	if tbl.Confidence != 0.95 {
		t.Errorf("confidence = %v", tbl.Confidence)
	}
}

func TestAndDimConjunction(t *testing.T) {
	ix := buildIndex()
	weakRes := AndDim(
		ConceptDim("intent", "weak start"),
		FieldDim("outcome", "reservation"),
	)
	if got := ix.Count(weakRes); got != 32 {
		t.Errorf("conjunction count = %d, want 32", got)
	}
	// Conjunction with an impossible member is empty.
	empty := AndDim(ConceptDim("intent", "weak start"), FieldDim("outcome", "ghost"))
	if got := ix.Count(empty); got != 0 {
		t.Errorf("impossible conjunction count = %d", got)
	}
	// Nested conjunctions compose.
	nested := AndDim(weakRes, CategoryDim("agent"))
	if got := ix.Count(nested); got != 32 {
		t.Errorf("nested conjunction = %d (all weak-res docs carry the agent concept)", got)
	}
}

func TestAndDimLabel(t *testing.T) {
	d := AndDim(ConceptDim("c", "v"), FieldDim("f", "x"))
	if got := d.Label(); got != "v[c] ∧ f=x" {
		t.Errorf("label = %q", got)
	}
}

func TestAndDimEmptyBehaves(t *testing.T) {
	ix := buildIndex()
	if got := ix.Count(Dim{And: []Dim{}}); got != ix.Count(CategoryDim("")) {
		// An explicitly empty And list matches nothing by construction.
		_ = got
	}
	if got := ix.Count(AndDim()); got != 0 {
		t.Errorf("empty conjunction matched %d docs", got)
	}
}

func TestRelativeFrequencyWithConjunction(t *testing.T) {
	ix := buildIndex()
	featured := AndDim(
		ConceptDim("intent", "weak start"),
		FieldDim("outcome", "reservation"),
	)
	rel := ix.RelativeFrequency("agent", featured)
	if len(rel) != 1 || rel[0].Concept != "discount" {
		t.Fatalf("relevance = %v", rel)
	}
	// discount appears in ALL weak-start conversions and nowhere else:
	// ratio = (32/32) / (32/200) = 6.25.
	if math.Abs(rel[0].Ratio-6.25) > 1e-9 {
		t.Errorf("ratio = %v, want 6.25", rel[0].Ratio)
	}
}
