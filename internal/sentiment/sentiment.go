// Package sentiment scores the opinion polarity of VoC text. §III of the
// paper: customer communications "reflect the sentiments and opinions of
// the customers and indicate the level of (dis)satisfaction of the
// customer or his churn propensity" — and commercial monitoring tools
// track "tone, emotion" (§II).
//
// The scorer is lexicon-based with negation flipping and intensifier
// weighting: robust to the noisy, fragmentary text the cleaning stage
// emits, and entirely inspectable — every score decomposes into the
// matched terms.
package sentiment

import (
	"strings"

	"bivoc/internal/textproc"
)

// polarity lexicons, tuned to service-industry vocabulary.
var positiveWords = map[string]float64{
	"good": 1, "great": 1.5, "excellent": 2, "wonderful": 2, "fantastic": 2,
	"nice": 1, "helpful": 1.5, "thanks": 1, "thank": 1, "appreciate": 1.5,
	"resolved": 1.5, "solved": 1.5, "happy": 1.5, "satisfied": 2,
	"best": 1.5, "love": 2, "perfect": 2, "prompt": 1, "quick": 1,
	"successful": 1, "courteous": 1.5, "polite": 1.5,
}

var negativeWords = map[string]float64{
	"bad": 1, "poor": 1, "terrible": 2, "pathetic": 2, "worst": 2,
	"rude": 2, "slow": 1, "wrong": 1, "problem": 1, "problems": 1,
	"issue": 1, "issues": 1, "complaint": 1, "robbed": 2, "cheated": 2,
	"angry": 1.5, "frustrated": 1.5, "disappointed": 1.5, "unhappy": 1.5,
	"disconnect": 1, "leaving": 1, "goodbye": 1, "useless": 2,
	"never": 0.5, "charged": 0.5, "down": 0.5, "dropping": 1,
	"expensive": 1, "high": 0.5, "unsolved": 1.5, "pending": 0.5,
}

var negators = map[string]bool{
	"not": true, "no": true, "never": true, "dont": true, "don't": true,
	"didnt": true, "didn't": true, "cant": true, "can't": true,
	"wasnt": true, "wasn't": true, "isnt": true, "isn't": true,
}

var intensifiers = map[string]float64{
	"very": 1.5, "really": 1.5, "extremely": 2, "so": 1.3, "too": 1.3,
	"totally": 1.8, "absolutely": 1.8, "almost": 0.7,
}

// Label is a coarse polarity class.
type Label string

// Polarity labels.
const (
	Positive Label = "positive"
	Neutral  Label = "neutral"
	Negative Label = "negative"
)

// Match is one scored term with its applied weight (after negation and
// intensification), for explainability.
type Match struct {
	Word   string
	Weight float64 // positive = positive contribution
}

// Result is the analysis of one text.
type Result struct {
	// Score is normalized to [-1, 1]: -1 strongly negative.
	Score   float64
	Label   Label
	Matches []Match
}

// NeutralBand is the |score| below which text is labeled neutral.
const NeutralBand = 0.08

// Analyze scores the text. Empty or opinion-free text is neutral.
func Analyze(text string) Result {
	words := textproc.Words(strings.ToLower(text))
	var matches []Match
	total := 0.0
	for i, w := range words {
		var weight float64
		switch {
		case positiveWords[w] != 0:
			weight = positiveWords[w]
		case negativeWords[w] != 0:
			weight = -negativeWords[w]
		default:
			continue
		}
		// Look back for intensifiers and negators within two tokens.
		factor := 1.0
		negated := false
		for back := 1; back <= 2 && i-back >= 0; back++ {
			prev := words[i-back]
			if f, ok := intensifiers[prev]; ok {
				factor *= f
			}
			if negators[prev] {
				negated = true
			}
		}
		if negated {
			weight = -weight * 0.8 // "not good" is negative but softer than "bad"
		}
		weight *= factor
		matches = append(matches, Match{Word: w, Weight: weight})
		total += weight
	}
	if len(matches) == 0 {
		return Result{Label: Neutral}
	}
	// Normalize by matched mass so long rants and short jabs compare.
	mass := 0.0
	for _, m := range matches {
		if m.Weight >= 0 {
			mass += m.Weight
		} else {
			mass -= m.Weight
		}
	}
	score := total / mass
	r := Result{Score: score, Matches: matches}
	switch {
	case score > NeutralBand:
		r.Label = Positive
	case score < -NeutralBand:
		r.Label = Negative
	default:
		r.Label = Neutral
	}
	return r
}

// ScoreCorpus returns the mean score over texts (0 for empty input) —
// the satisfaction KPI a dashboard tracks per period or per agent.
func ScoreCorpus(texts []string) float64 {
	if len(texts) == 0 {
		return 0
	}
	total := 0.0
	for _, t := range texts {
		total += Analyze(t).Score
	}
	return total / float64(len(texts))
}
