package sentiment

import (
	"testing"
	"testing/quick"

	"bivoc/internal/synth"
)

func TestPolarityBasics(t *testing.T) {
	cases := map[string]Label{
		"the agent was very helpful thank you":        Positive,
		"this is the worst service i am really angry": Negative,
		"please send me my bill for march":            Neutral,
		"":                                            Neutral,
		"my problem is solved great support":          Positive,
		"i feel robbed and cheated pathetic service":  Negative,
	}
	for text, want := range cases {
		if got := Analyze(text).Label; got != want {
			t.Errorf("Analyze(%q) = %v, want %v", text, got, want)
		}
	}
}

func TestNegationFlips(t *testing.T) {
	pos := Analyze("the agent was helpful")
	neg := Analyze("the agent was not helpful")
	if pos.Score <= 0 {
		t.Fatalf("positive base score %v", pos.Score)
	}
	if neg.Score >= 0 {
		t.Errorf("negated score %v should be negative", neg.Score)
	}
	// "not rude" flips negative to positive (the paper's commendation).
	if got := Analyze("the agent was not rude"); got.Score <= 0 {
		t.Errorf("'not rude' score %v should be positive", got.Score)
	}
}

func TestIntensifierStrengthens(t *testing.T) {
	// Mixed-polarity text: the intensified negative should pull the
	// normalized score lower (pure-sign texts saturate at ±1).
	plain := Analyze("bad service but great support")
	strong := Analyze("extremely bad service but great support")
	if strong.Score >= plain.Score {
		t.Errorf("intensifier did not strengthen: %v vs %v", strong.Score, plain.Score)
	}
}

func TestPureSignSaturates(t *testing.T) {
	if got := Analyze("terrible pathetic rude").Score; got != -1 {
		t.Errorf("all-negative score = %v, want -1", got)
	}
	if got := Analyze("great wonderful excellent").Score; got != 1 {
		t.Errorf("all-positive score = %v, want 1", got)
	}
}

func TestScoreBounds(t *testing.T) {
	f := func(words []string) bool {
		text := ""
		for i, w := range words {
			if i > 10 {
				break
			}
			text += w + " "
		}
		s := Analyze(text).Score
		return s >= -1 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMatchesExplainScore(t *testing.T) {
	r := Analyze("great service but rude agent")
	if len(r.Matches) != 2 {
		t.Fatalf("matches = %v", r.Matches)
	}
	sum, mass := 0.0, 0.0
	for _, m := range r.Matches {
		sum += m.Weight
		if m.Weight >= 0 {
			mass += m.Weight
		} else {
			mass -= m.Weight
		}
	}
	if got := sum / mass; got != r.Score {
		t.Errorf("score %v does not decompose into matches (%v)", r.Score, got)
	}
}

func TestScoreCorpus(t *testing.T) {
	if ScoreCorpus(nil) != 0 {
		t.Error("empty corpus should be 0")
	}
	happy := []string{"great service thank you", "very helpful agent"}
	angry := []string{"worst service ever", "i am very angry and frustrated"}
	if ScoreCorpus(happy) <= ScoreCorpus(angry) {
		t.Error("corpus scoring ordering wrong")
	}
}

func TestChurnersAngrierThanStayers(t *testing.T) {
	// End-to-end sanity: churner messages in the synthetic world carry
	// lower sentiment than routine traffic — the §III claim that
	// dissatisfaction indicates churn propensity.
	cfg := synth.DefaultTelecomConfig()
	cfg.NumCustomers = 300
	cfg.Emails = 900
	cfg.SMS = 0
	w, err := synth.NewTelecomWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var churnTexts, stayTexts []string
	for _, m := range w.Emails {
		if m.Spam || m.CustIdx < 0 {
			continue
		}
		if m.FromChurner {
			churnTexts = append(churnTexts, m.Raw)
		} else {
			stayTexts = append(stayTexts, m.Raw)
		}
	}
	if len(churnTexts) == 0 || len(stayTexts) == 0 {
		t.Skip("degenerate corpus")
	}
	if ScoreCorpus(churnTexts) >= ScoreCorpus(stayTexts) {
		t.Errorf("churners (%v) should read angrier than stayers (%v)",
			ScoreCorpus(churnTexts), ScoreCorpus(stayTexts))
	}
}
