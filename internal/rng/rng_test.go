package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between different seeds", same)
	}
}

func TestSplitStable(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(99)
	c2 := parent.Split(99)
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("same split label should give identical streams")
		}
	}
	d := parent.Split(100)
	if c2.Uint64() == d.Uint64() && c2.Uint64() == d.Uint64() {
		t.Error("different split labels should diverge")
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	p1, p2 := New(5), New(5)
	p1.Split(1)
	p1.SplitString("x")
	if p1.Uint64() != p2.Uint64() {
		t.Error("Split must not advance parent state")
	}
}

func TestSplitStringStable(t *testing.T) {
	p := New(3)
	a := p.SplitString("customer-17")
	b := p.SplitString("customer-17")
	c := p.SplitString("customer-18")
	av, bv, cv := a.Uint64(), b.Uint64(), c.Uint64()
	if av != bv {
		t.Error("same string label should match")
	}
	if av == cv {
		t.Error("different string labels should differ")
	}
}

func TestForkStableAndMatchesSplit(t *testing.T) {
	p1, p2 := New(7), New(7)
	kids := p1.Fork(8)
	again := p2.Fork(8)
	for i := range kids {
		for d := 0; d < 50; d++ {
			if kids[i].Uint64() != again[i].Uint64() {
				t.Fatalf("fork child %d not reproducible at draw %d", i, d)
			}
		}
	}
	// Fork child i is defined as Split(i) — document the contract.
	c := New(7).Fork(3)[2]
	s := New(7).Split(2)
	for d := 0; d < 50; d++ {
		if c.Uint64() != s.Uint64() {
			t.Fatal("Fork(n)[i] must equal Split(i)")
		}
	}
}

func TestForkDoesNotAdvanceParent(t *testing.T) {
	p1, p2 := New(11), New(11)
	p1.Fork(16)
	if p1.Uint64() != p2.Uint64() {
		t.Error("Fork must not advance parent state")
	}
}

// TestForkStreamIndependence checks the worker-count-invariance
// prerequisite statistically: sibling substreams must be uncorrelated
// and collision-free, so per-document forks behave as independent
// generators no matter which worker consumes them.
func TestForkStreamIndependence(t *testing.T) {
	const kids, draws = 10, 20000
	streams := New(101).Fork(kids)
	samples := make([][]float64, kids)
	for i, s := range streams {
		samples[i] = make([]float64, draws)
		for d := range samples[i] {
			samples[i][d] = s.Float64()
		}
	}
	for i := 0; i < kids; i++ {
		// Each stream individually uniform.
		mean := 0.0
		for _, v := range samples[i] {
			mean += v
		}
		mean /= draws
		if math.Abs(mean-0.5) > 0.02 {
			t.Errorf("fork %d mean %v, want ~0.5", i, mean)
		}
		// Pairwise Pearson correlation near zero.
		for j := i + 1; j < kids; j++ {
			var sx, sy, sxx, syy, sxy float64
			for d := 0; d < draws; d++ {
				x, y := samples[i][d], samples[j][d]
				sx += x
				sy += y
				sxx += x * x
				syy += y * y
				sxy += x * y
			}
			n := float64(draws)
			cov := sxy/n - (sx/n)*(sy/n)
			vx := sxx/n - (sx/n)*(sx/n)
			vy := syy/n - (sy/n)*(sy/n)
			if r := cov / math.Sqrt(vx*vy); math.Abs(r) > 0.03 {
				t.Errorf("forks %d and %d correlate: r=%v", i, j, r)
			}
		}
	}
	// No cross-stream collisions in raw 64-bit output.
	seen := make(map[uint64][2]int)
	for i, s := range New(101).Fork(kids) {
		for d := 0; d < 1000; d++ {
			v := s.Uint64()
			if prev, ok := seen[v]; ok {
				t.Fatalf("streams %v and [%d %d] drew identical value %x", prev, i, d, v)
			}
			seen[v] = [2]int{i, d}
		}
	}
}

func TestIntnBounds(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnCoversRange(t *testing.T) {
	r := New(11)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		seen[r.Intn(7)] = true
	}
	for v := 0; v < 7; v++ {
		if !seen[v] {
			t.Errorf("value %d never drawn", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(13)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64MeanRoughlyHalf(t *testing.T) {
	r := New(17)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if m := sum / n; math.Abs(m-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", m)
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(19)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) should never be true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) should always be true")
		}
	}
}

func TestBoolRate(t *testing.T) {
	r := New(23)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if rate := float64(hits) / n; math.Abs(rate-0.3) > 0.01 {
		t.Errorf("Bool(0.3) rate = %v", rate)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(29)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestGaussianShift(t *testing.T) {
	r := New(31)
	const n = 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Gaussian(10, 2)
	}
	if m := sum / n; math.Abs(m-10) > 0.05 {
		t.Errorf("Gaussian(10,2) mean = %v", m)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(37)
	for _, mean := range []float64{0.5, 3, 12, 50} {
		const n = 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > mean*0.05+0.05 {
			t.Errorf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Error("non-positive mean should give 0")
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 50)
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeighted(t *testing.T) {
	r := New(41)
	counts := [3]int{}
	const n = 60000
	for i := 0; i < n; i++ {
		counts[r.Weighted([]float64{1, 2, 1})]++
	}
	if math.Abs(float64(counts[1])/n-0.5) > 0.02 {
		t.Errorf("weighted middle rate = %v", float64(counts[1])/n)
	}
	// All-zero weights fall back to uniform and never panic.
	idx := r.Weighted([]float64{0, 0})
	if idx != 0 && idx != 1 {
		t.Errorf("zero-weight index = %d", idx)
	}
	// Negative weights are treated as zero.
	for i := 0; i < 100; i++ {
		if got := r.Weighted([]float64{-5, 1}); got != 1 {
			t.Fatalf("negative weight drawn: %d", got)
		}
	}
}

func TestPick(t *testing.T) {
	r := New(43)
	choices := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		seen[Pick(r, choices)] = true
	}
	if len(seen) != 3 {
		t.Errorf("Pick did not cover all choices: %v", seen)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(47)
	s := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	r.ShuffleInts(s)
	for _, v := range s {
		sum += v
	}
	if sum != 21 {
		t.Errorf("shuffle lost elements: %v", s)
	}
}
