// Package rng provides a deterministic, splittable pseudo-random number
// generator used by every stochastic component in BIVoC.
//
// All experiment randomness flows from explicit seeds through this package,
// which makes every table and figure in EXPERIMENTS.md bit-reproducible.
// The generator is a 64-bit PCG variant (permuted congruential generator)
// with an odd stream increment, so independent streams can be split off a
// parent without correlation — each synthetic customer, call, and channel
// realization gets its own stream derived from stable identifiers.
package rng

import (
	"math"
	"math/bits"
)

// RNG is a PCG-XSH-RR 64/32-style generator extended to emit 64-bit
// outputs by combining two sequential 32-bit draws. The zero value is not
// valid; use New or Split.
type RNG struct {
	state uint64
	inc   uint64 // must be odd
}

const pcgMultiplier = 6364136223846793005

// New returns a generator seeded from seed on the default stream.
func New(seed uint64) *RNG {
	return NewStream(seed, 0xda3e39cb94b95bdb)
}

// NewStream returns a generator seeded from seed on the given stream.
// Distinct streams yield statistically independent sequences.
func NewStream(seed, stream uint64) *RNG {
	r := &RNG{inc: stream<<1 | 1}
	r.state = r.inc + seed
	r.next32()
	return r
}

// Split derives an independent child generator from a label. The parent's
// state is not advanced, so the same label always yields the same child —
// this is what makes per-object streams stable across runs.
func (r *RNG) Split(label uint64) *RNG {
	// Mix the parent identity with the label through a 64-bit finalizer.
	h := r.inc ^ (label * 0x9E3779B97F4A7C15)
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	h *= 0xC4CEB9FE1A85EC53
	h ^= h >> 33
	return NewStream(r.state^h, h|1)
}

// Fork returns n independent child generators. Child i is exactly
// r.Split(uint64(i)), so forks are stable: the same parent forks the
// same children every run, and Fork does not advance the parent. This is
// the substream primitive the streaming pipeline relies on — give every
// document (or shard) its own fork and results stop depending on which
// worker processed which item.
func (r *RNG) Fork(n int) []*RNG {
	out := make([]*RNG, n)
	for i := range out {
		out[i] = r.Split(uint64(i))
	}
	return out
}

// SplitString derives an independent child generator from a string label.
func (r *RNG) SplitString(label string) *RNG {
	// FNV-1a over the label.
	var h uint64 = 14695981039346656037
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return r.Split(h)
}

func (r *RNG) next32() uint32 {
	old := r.state
	r.state = old*pcgMultiplier + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return xorshifted>>rot | xorshifted<<((-rot)&31)
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 {
	return uint64(r.next32())<<32 | uint64(r.next32())
}

// Uint32 returns a uniformly distributed 32-bit value.
func (r *RNG) Uint32() uint32 { return r.next32() }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), bound)
	if lo < bound {
		thresh := -bound % bound
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), bound)
		}
	}
	return int(hi)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Gaussian returns a normal variate with the given mean and stddev.
func (r *RNG) Gaussian(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	return -math.Log(1 - r.Float64())
}

// Poisson returns a Poisson variate with the given mean (Knuth for small
// means, normal approximation above 30 to stay O(1)).
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := int(math.Round(r.Gaussian(mean, math.Sqrt(mean))))
		if v < 0 {
			v = 0
		}
		return v
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles s in place (Fisher-Yates).
func (r *RNG) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly chosen element of choices. It panics on an
// empty slice, mirroring Intn.
func Pick[T any](r *RNG, choices []T) T {
	return choices[r.Intn(len(choices))]
}

// Weighted returns an index in [0, len(weights)) with probability
// proportional to the weight. Non-positive weights are treated as zero;
// if all weights are zero it falls back to uniform.
func (r *RNG) Weighted(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return r.Intn(len(weights))
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
