package synth

import (
	"fmt"

	"bivoc/internal/phonetics"
	"bivoc/internal/rng"
)

// Banking-domain conversations. Table I's evaluation corpus contains
// "customer-agent conversational speech in car booking domain and
// banking domain", and Figure 1's transcript examples are banking calls
// (auto-debit cancellation, credit-card membership fees). This file
// generates the banking half of the ASR evaluation corpus.

var bankingOpenings = [][]string{
	{"please", "tell", "me", "how", "can", "i", "help", "you"},
}

var bankingBodies = [][]string{
	{"i", "want", "to", "discontinue", "with", "the", "auto", "debit", "facility", "on", "my", "account"},
	{"i", "was", "told", "to", "pay", "a", "one", "time", "membership", "fee", "for", "the", "credit", "card"},
	{"they", "debit", "the", "amount", "from", "my", "savings", "account", "without", "telling", "me"},
	{"i", "want", "to", "check", "the", "balance", "on", "my", "savings", "account"},
	{"please", "cancel", "the", "charges", "on", "my", "credit", "card"},
	{"i", "did", "not", "receive", "the", "statement", "for", "last", "month"},
	{"there", "is", "a", "wrong", "charge", "of"},
	{"i", "want", "to", "transfer", "money", "to", "another", "account"},
	{"my", "card", "was", "declined", "at", "the", "store", "yesterday"},
	{"please", "send", "me", "a", "new", "check", "book"},
}

var bankingClosings = [][]string{
	{"is", "this", "okay", "thank", "you", "can", "i", "do", "anything", "else", "for", "you"},
	{"thank", "you", "for", "your", "help"},
	{"please", "do", "it", "today", "thank", "you"},
}

// BankingCall is one banking-domain utterance with its hidden truth.
type BankingCall struct {
	ID         string
	CustIdx    int
	Transcript []string
}

// GenerateBankingCalls produces n banking conversations over the same
// customer population (banking and car-rental evaluation share the
// identity machinery).
func (w *CarRentalWorld) GenerateBankingCalls(n int) []BankingCall {
	r := w.rnd.SplitString("banking")
	var out []BankingCall
	for i := 0; i < n; i++ {
		cr := r.Split(uint64(i))
		custIdx := cr.Intn(len(w.Customers))
		cust := w.Customers[custIdx]
		var t []string
		t = append(t, rng.Pick(cr, bankingOpenings)...)
		t = append(t, rng.Pick(cr, bankingBodies)...)
		// Amounts are read out in banking calls ("two hundred and seventy
		// five" in Fig 1); we spell the digits.
		if cr.Bool(0.6) {
			amount := 50 + 25*cr.Intn(30)
			t = append(t, "the", "amount", "is")
			t = append(t, phonetics.SpellDigits(fmt.Sprintf("%d", amount))...)
		}
		t = append(t, w.identity(cr, cust)...)
		t = append(t, rng.Pick(cr, bankingClosings)...)
		out = append(out, BankingCall{
			ID:         fmt.Sprintf("bank-%04d", i),
			CustIdx:    custIdx,
			Transcript: t,
		})
	}
	return out
}

// BankingWords returns the banking-domain vocabulary for the lexicon.
func BankingWords() []string {
	seen := map[string]bool{}
	var out []string
	add := func(groups [][]string) {
		for _, phrase := range groups {
			for _, w := range phrase {
				if !seen[w] {
					seen[w] = true
					out = append(out, w)
				}
			}
		}
	}
	add(bankingOpenings)
	add(bankingBodies)
	add(bankingClosings)
	add([][]string{{"the", "amount", "is"}})
	return out
}

// BankingSentences returns banking LM training sentences.
func BankingSentences() [][]string {
	var out [][]string
	out = append(out, bankingOpenings...)
	out = append(out, bankingBodies...)
	out = append(out, bankingClosings...)
	out = append(out, []string{"the", "amount", "is", "two", "seven", "five"})
	return out
}
