package synth

import (
	"strings"

	"bivoc/internal/asr"
	"bivoc/internal/lm"
)

// generalEnglish is a tiny general-purpose corpus standing in for the
// "general purpose US English text" component of the interpolated LM.
var generalEnglish = []string{
	"the weather is nice today",
	"i am going to the market",
	"she said it would rain later",
	"we watched a movie last night",
	"the meeting starts at nine",
	"he works in the city",
	"they have two children",
	"please close the door",
	"the train was late again",
	"can you hear me now",
	"it is a long way home",
	"the food was very good",
}

// BuildLexicon assembles the recognizer lexicon for the car-rental
// domain: template words (generic), customer and agent name inventories
// (name class), spoken digits (digit class) and city words (place
// class). Names deliberately include the full confusable inventory, not
// just the generated customers — "the number of conflicting words in the
// vocabulary is very high ... when it comes to recognizing names"
// (§IV.A.1).
func BuildLexicon() *asr.Lexicon {
	lex := asr.NewLexicon()
	// Registration order matters because the first class wins on shared
	// words: digit words first (templates mention "two days"), then
	// generic template vocabulary, then places, then names — so a word
	// like "price" that is both a surname and a template word stays
	// generic, matching its dominant use in the conversations.
	lex.AddAll([]string{"zero", "one", "two", "three", "four", "five",
		"six", "seven", "eight", "nine", "oh"}, asr.ClassDigit)
	lex.AddAll(TemplateWords(), asr.ClassGeneric)
	lex.AddAll(BankingWords(), asr.ClassGeneric)
	lex.AddAll(CityWords(), asr.ClassPlace)
	lex.AddAll(givenNames, asr.ClassName)
	lex.AddAll(surnames, asr.ClassName)
	lex.AddAll(ConfusableNameVariants(3), asr.ClassName)
	return lex
}

// BuildLanguageModelOrder trains the interpolated N-gram LM at the given
// order (2 = the paper's configuration; 3 enables trigram decoding; 1 is
// the no-context baseline for the LM-order ablation).
func BuildLanguageModelOrder(order int) (lm.Model, error) {
	return buildLM(order)
}

// BuildLanguageModel trains the interpolated bigram LM of §IV.A.1:
// a domain model from call-centre sentences and a general model from
// generic English, "with high weight given to the call-center specific
// model". Name and digit slots are covered by synthetic identity
// sentences over the whole name inventory so every lexicon word has LM
// mass.
func BuildLanguageModel() (lm.Model, error) {
	return buildLM(2)
}

func buildLM(order int) (lm.Model, error) {
	domain := lm.NewTrainer(order)
	// Replicate the conversational corpus: higher counts on generic
	// bigrams shrink the Witten-Bell backoff weight, which keeps the
	// large name inventory from leaking into non-name contexts (names
	// should be confusable after "name is", not in the middle of "book a
	// car").
	for i := 0; i < 5; i++ {
		domain.AddCorpus(TrainingSentences())
		domain.AddCorpus(BankingSentences())
	}
	// Give every name unigram/bigram support in identity contexts.
	for i, g := range givenNames {
		domain.Add([]string{"my", "name", "is", g, surnames[i%len(surnames)]})
	}
	for _, s := range surnames {
		domain.Add([]string{"name", "is", s})
	}
	// Conflicting-name competitors need language-model mass too, or the
	// decoder would never propose them and names would be artificially
	// easy (see Table I's 65% name WER and §IV.A.1's discussion).
	for _, v := range ConfusableNameVariants(3) {
		domain.Add([]string{"name", "is", v})
	}
	for _, c := range cities {
		domain.Add(append([]string{"in"}, strings.Fields(c)...))
	}
	// Digit strings are read out in long runs; give the full digit bigram
	// matrix support so numbers decode at the paper's ~45% rather than
	// collapsing entirely.
	digits := []string{"zero", "one", "two", "three", "four", "five", "six", "seven", "eight", "nine"}
	for i := range digits {
		row := []string{"number", "is"}
		for j := range digits {
			if (i+j)%2 == 0 {
				row = append(row, digits[i], digits[j])
			}
		}
		domain.Add(row)
	}
	domainModel, err := domain.Build()
	if err != nil {
		return nil, err
	}
	general := lm.NewTrainer(order)
	for _, s := range generalEnglish {
		general.Add(strings.Fields(s))
	}
	generalModel, err := general.Build()
	if err != nil {
		return nil, err
	}
	return lm.NewInterpolated(
		[]lm.Model{domainModel, generalModel},
		[]float64{0.85, 0.15},
	)
}

// BuildRecognizer assembles the full first-pass recognizer at the given
// channel operating point.
func BuildRecognizer(channel asr.ChannelConfig, decoderCfg asr.DecoderConfig) (*asr.Recognizer, error) {
	return BuildRecognizerOrder(channel, decoderCfg, 2)
}

// BuildRecognizerOrder assembles a recognizer with an LM of the given
// N-gram order.
func BuildRecognizerOrder(channel asr.ChannelConfig, decoderCfg asr.DecoderConfig, order int) (*asr.Recognizer, error) {
	model, err := BuildLanguageModelOrder(order)
	if err != nil {
		return nil, err
	}
	return asr.NewRecognizer(BuildLexicon(), model, asr.NewChannel(channel), decoderCfg), nil
}
