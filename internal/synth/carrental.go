package synth

import (
	"fmt"
	"strings"

	"bivoc/internal/phonetics"
	"bivoc/internal/rng"
	"bivoc/internal/warehouse"
)

// Intent labels for calls (§V.A's three call types; reservation-seeking
// calls further split by how the customer opens).
const (
	IntentStrong  = "strong start"
	IntentWeak    = "weak start"
	IntentService = "service"
)

// Outcome labels.
const (
	OutcomeReservation = "reservation"
	OutcomeUnbooked    = "unbooked"
	OutcomeService     = "service"
)

// Agent is one call-centre agent with latent behavioural propensities.
// Training (§V.C) shifts the propensities of the treated group.
type Agent struct {
	ID   string
	Name string
	// PValueSelling is the probability the agent uses value-selling
	// phrases after quoting a rate.
	PValueSelling float64
	// PDiscountWeak / PDiscountStrong are the probabilities of offering a
	// discount to weak- and strong-start customers.
	PDiscountWeak   float64
	PDiscountStrong float64
	Trained         bool
}

// Customer is one car-rental customer with identity attributes used for
// linking.
type Customer struct {
	ID      string
	Given   string
	Surname string
	Phone   string // 10 digits
	DOB     string // date of birth as 8 digits, YYYYMMDD
	City    string
}

// Name returns the full customer name.
func (c Customer) Name() string { return c.Given + " " + c.Surname }

// Call is one generated customer-agent conversation with its hidden
// truth (which behaviours occurred) and structured outcome.
type Call struct {
	ID         string
	Day        int
	AgentIdx   int
	CustIdx    int
	Intent     string
	UsedValue  bool // agent used value-selling phrases
	UsedDisc   bool // agent offered a discount
	Objected   bool // customer objected to the rate
	Outcome    string
	VehicleIdx int // index into VehicleTypes()
	City       string
	RateQuoted int // dollars per day
	// HandleTimeSec is the call's handle time (talk + hold + wrap-up),
	// the canonical contact-centre KPI (§II: tools track "average handle
	// time, tone, emotion...").
	HandleTimeSec int
	// Transcript is the reference (clean) word sequence; the ASR channel
	// corrupts it downstream. All words are lexicon-pronounceable; digits
	// are spelled out as spoken.
	Transcript []string
}

// OutcomeModel holds the structural parameters tying behaviour to
// conversion. The defaults are calibrated so the measured associations
// land near the paper's Tables III (63/37, 32/68) and IV (59/41, 72/28).
type OutcomeModel struct {
	BaseStrong    float64
	BaseWeak      float64
	ValueBoost    float64
	DiscountBoost float64
}

// DefaultOutcomeModel returns the calibrated parameters.
func DefaultOutcomeModel() OutcomeModel {
	return OutcomeModel{BaseStrong: 0.52, BaseWeak: 0.14, ValueBoost: 0.15, DiscountBoost: 0.45}
}

// ConversionProb returns P(reservation) for a reservation-seeking call.
func (m OutcomeModel) ConversionProb(intent string, usedValue, usedDiscount bool) float64 {
	p := m.BaseWeak
	if intent == IntentStrong {
		p = m.BaseStrong
	}
	if usedValue {
		p += m.ValueBoost
	}
	if usedDiscount {
		p += m.DiscountBoost
	}
	if p > 0.98 {
		p = 0.98
	}
	if p < 0.02 {
		p = 0.02
	}
	return p
}

// CarRentalConfig sizes the car-rental world. The paper's engagement:
// ~90 agents, ~1800 recorded calls per day (25% of traffic), two-month
// observation windows.
type CarRentalConfig struct {
	Seed         uint64
	NumAgents    int
	NumCustomers int
	CallsPerDay  int
	Days         int
	// ServiceShare is the fraction of service calls (default 0.25).
	ServiceShare float64
	// StrongShare is the fraction of reservation-seeking calls that open
	// strongly (default 0.5).
	StrongShare float64
	Model       OutcomeModel
	// AgentShift is applied to trained agents' propensities when
	// Trained is set (see TrainAgents).
	ValueShift    float64
	DiscountShift float64
}

// DefaultCarRentalConfig returns a laptop-scale configuration with the
// paper's agent count.
func DefaultCarRentalConfig() CarRentalConfig {
	return CarRentalConfig{
		Seed:          2009,
		NumAgents:     90,
		NumCustomers:  600,
		CallsPerDay:   120,
		Days:          10,
		ServiceShare:  0.25,
		StrongShare:   0.5,
		Model:         DefaultOutcomeModel(),
		ValueShift:    0.10,
		DiscountShift: 0.07,
	}
}

// CarRentalWorld bundles the generated population, its structured
// warehouse, and the generated calls.
type CarRentalWorld struct {
	Config    CarRentalConfig
	Agents    []Agent
	Customers []Customer
	DB        *warehouse.DB
	Calls     []Call
	rnd       *rng.RNG
}

// NewCarRentalWorld generates agents, customers, and the structured
// tables (customers + reservations), but no calls yet.
func NewCarRentalWorld(cfg CarRentalConfig) (*CarRentalWorld, error) {
	if cfg.NumAgents <= 0 || cfg.NumCustomers <= 0 {
		return nil, fmt.Errorf("synth: need positive agent and customer counts")
	}
	if cfg.Model == (OutcomeModel{}) {
		cfg.Model = DefaultOutcomeModel()
	}
	if cfg.ServiceShare == 0 {
		cfg.ServiceShare = 0.25
	}
	if cfg.StrongShare == 0 {
		cfg.StrongShare = 0.5
	}
	w := &CarRentalWorld{Config: cfg, rnd: rng.New(cfg.Seed)}

	agentRnd := w.rnd.SplitString("agents")
	for i := 0; i < cfg.NumAgents; i++ {
		r := agentRnd.Split(uint64(i))
		given := rng.Pick(r, givenNames)
		sur := rng.Pick(r, surnames)
		w.Agents = append(w.Agents, Agent{
			ID:              fmt.Sprintf("A%02d", i),
			Name:            given + " " + sur,
			PValueSelling:   clamp01(r.Gaussian(0.40, 0.10)),
			PDiscountWeak:   clamp01(r.Gaussian(0.30, 0.08)),
			PDiscountStrong: clamp01(r.Gaussian(0.10, 0.04)),
		})
	}

	custRnd := w.rnd.SplitString("customers")
	phoneSeen := map[string]bool{}
	for i := 0; i < cfg.NumCustomers; i++ {
		r := custRnd.Split(uint64(i))
		phone := randomPhone(r)
		for phoneSeen[phone] {
			phone = randomPhone(r)
		}
		phoneSeen[phone] = true
		w.Customers = append(w.Customers, Customer{
			ID:      fmt.Sprintf("C%04d", i),
			Given:   rng.Pick(r, givenNames),
			Surname: rng.Pick(r, surnames),
			Phone:   phone,
			DOB:     randomDOB(r),
			City:    rng.Pick(r, cities),
		})
	}

	db := warehouse.NewDB()
	custTab, err := db.CreateTable(warehouse.Schema{
		Table: "customers", Key: "id",
		Columns: []warehouse.Column{
			{Name: "id", Type: warehouse.TypeString, Match: warehouse.MatchExact},
			{Name: "name", Type: warehouse.TypeString, Match: warehouse.MatchName},
			{Name: "phone", Type: warehouse.TypeString, Match: warehouse.MatchDigits},
			{Name: "dob", Type: warehouse.TypeString, Match: warehouse.MatchDigits},
			{Name: "city", Type: warehouse.TypeString, Match: warehouse.MatchText},
		},
	})
	if err != nil {
		return nil, err
	}
	for _, c := range w.Customers {
		custTab.MustInsert(
			warehouse.StringValue(c.ID),
			warehouse.StringValue(c.Name()),
			warehouse.StringValue(c.Phone),
			warehouse.StringValue(c.DOB),
			warehouse.StringValue(c.City),
		)
	}
	// The reservations fact table is filled as calls convert.
	if _, err := db.CreateTable(warehouse.Schema{
		Table: "reservations", Key: "id",
		Columns: []warehouse.Column{
			{Name: "id", Type: warehouse.TypeString, Match: warehouse.MatchExact},
			{Name: "customer", Type: warehouse.TypeString, Match: warehouse.MatchExact},
			{Name: "agent", Type: warehouse.TypeString, Match: warehouse.MatchExact},
			{Name: "vehicle", Type: warehouse.TypeString, Match: warehouse.MatchExact},
			{Name: "city", Type: warehouse.TypeString, Match: warehouse.MatchText},
			{Name: "cost", Type: warehouse.TypeInt, Match: warehouse.MatchNumeric},
			{Name: "days", Type: warehouse.TypeInt, Match: warehouse.MatchNumeric},
		},
	}); err != nil {
		return nil, err
	}
	w.DB = db
	return w, nil
}

func clamp01(v float64) float64 {
	if v < 0.01 {
		return 0.01
	}
	if v > 0.95 {
		return 0.95
	}
	return v
}

// randomDOB generates a YYYYMMDD birth date between 1940 and 1990.
func randomDOB(r *rng.RNG) string {
	year := 1940 + r.Intn(50)
	month := 1 + r.Intn(12)
	day := 1 + r.Intn(28)
	return fmt.Sprintf("%04d%02d%02d", year, month, day)
}

func randomPhone(r *rng.RNG) string {
	digits := make([]byte, 10)
	digits[0] = byte('7' + r.Intn(3)) // 7/8/9 leading, Indian-mobile style
	for i := 1; i < 10; i++ {
		digits[i] = byte('0' + r.Intn(10))
	}
	return string(digits)
}

// TrainAgents marks the first n agents as trained, shifting their
// value-selling and discount propensities by the configured amounts —
// the §V.C intervention ("these 20 agents were told about the findings
// ... asked to use value selling phrases more generously").
func (w *CarRentalWorld) TrainAgents(n int) {
	idx := make([]int, 0, n)
	for i := 0; i < n && i < len(w.Agents); i++ {
		idx = append(idx, i)
	}
	w.TrainAgentSet(idx)
}

// TrainAgentSet trains a specific set of agents (by index). Experiment
// drivers use this to pick a treated group that is representative of the
// population, matching the paper's "before training the ratios of both
// groups were comparable".
func (w *CarRentalWorld) TrainAgentSet(indices []int) {
	for _, i := range indices {
		if i < 0 || i >= len(w.Agents) {
			continue
		}
		a := &w.Agents[i]
		if a.Trained {
			continue
		}
		a.Trained = true
		a.PValueSelling = clamp01(a.PValueSelling + w.Config.ValueShift)
		a.PDiscountWeak = clamp01(a.PDiscountWeak + w.Config.DiscountShift)
	}
}

// GenerateCalls produces days × CallsPerDay calls starting at startDay,
// appending reservations to the warehouse and to w.Calls. Call ids embed
// the day so repeated generation windows (before/after training) stay
// unique.
func (w *CarRentalWorld) GenerateCalls(startDay, days int) []Call {
	var out []Call
	callRnd := w.rnd.SplitString("calls")
	resTab := w.DB.MustTable("reservations")
	for day := startDay; day < startDay+days; day++ {
		for k := 0; k < w.Config.CallsPerDay; k++ {
			id := fmt.Sprintf("call-%04d-%04d", day, k)
			r := callRnd.SplitString(id)
			call := w.generateCall(r, id, day)
			if call.Outcome == OutcomeReservation {
				resTab.MustInsert(
					warehouse.StringValue("R"+id),
					warehouse.StringValue(w.Customers[call.CustIdx].ID),
					warehouse.StringValue(w.Agents[call.AgentIdx].ID),
					warehouse.StringValue(VehicleTypes()[call.VehicleIdx]),
					warehouse.StringValue(call.City),
					warehouse.IntValue(int64(call.RateQuoted*(1+r.Intn(6)))),
					warehouse.IntValue(int64(1+r.Intn(6))),
				)
			}
			w.Calls = append(w.Calls, call)
			out = append(out, call)
		}
	}
	return out
}

func (w *CarRentalWorld) generateCall(r *rng.RNG, id string, day int) Call {
	agentIdx := r.Intn(len(w.Agents))
	custIdx := r.Intn(len(w.Customers))
	agent := w.Agents[agentIdx]
	cust := w.Customers[custIdx]

	call := Call{
		ID:         id,
		Day:        day,
		AgentIdx:   agentIdx,
		CustIdx:    custIdx,
		VehicleIdx: r.Intn(len(vehicleTypes)),
		City:       cust.City,
		RateQuoted: 25 + 5*r.Intn(12),
	}

	if r.Bool(w.Config.ServiceShare) {
		call.Intent = IntentService
		call.Outcome = OutcomeService
		call.Transcript = w.serviceTranscript(r, cust, call)
		call.HandleTimeSec = handleTime(r, call)
		return call
	}

	if r.Bool(w.Config.StrongShare) {
		call.Intent = IntentStrong
	} else {
		call.Intent = IntentWeak
	}
	// Agent behaviour.
	call.UsedValue = r.Bool(agent.PValueSelling)
	pDisc := agent.PDiscountStrong
	if call.Intent == IntentWeak {
		pDisc = agent.PDiscountWeak
	}
	call.UsedDisc = r.Bool(pDisc)
	call.Objected = r.Bool(0.3)

	p := w.Config.Model.ConversionProb(call.Intent, call.UsedValue, call.UsedDisc)
	if r.Bool(p) {
		call.Outcome = OutcomeReservation
	} else {
		call.Outcome = OutcomeUnbooked
	}
	call.Transcript = w.reservationTranscript(r, cust, call)
	call.HandleTimeSec = handleTime(r, call)
	return call
}

// handleTime models talk time from transcript length (~150 words/min
// conversational speech) plus hold, negotiation and wrap-up components.
func handleTime(r *rng.RNG, call Call) int {
	talk := float64(len(call.Transcript)) * 60.0 / 150.0
	hold := r.ExpFloat64() * 25
	wrap := 20 + r.Float64()*40
	if call.Objected {
		talk += 30 + r.Float64()*60 // objection handling
	}
	if call.UsedDisc {
		talk += 20 + r.Float64()*30 // discount negotiation
	}
	if call.Outcome == OutcomeReservation {
		wrap += 30 + r.Float64()*30 // booking entry
	}
	return int(talk + hold + wrap)
}

// --- transcript templates ---
// Every template word must be pronounceable by the G2P; digits are
// emitted as spoken digit words.

var strongOpenings = [][]string{
	{"i", "would", "like", "to", "make", "a", "booking"},
	{"i", "need", "to", "pick", "up", "a", "car"},
	{"i", "want", "to", "make", "a", "car", "reservation"},
	{"i", "want", "to", "book", "a", "car", "today"},
}

var weakOpenings = [][]string{
	{"can", "i", "know", "the", "rates", "for", "booking", "a", "car"},
	{"i", "would", "like", "to", "know", "the", "rates", "for", "a", "full", "size", "car"},
	{"what", "are", "your", "rates", "for", "the", "weekend"},
	{"how", "much", "would", "a", "car", "cost", "for", "two", "days"},
}

var valuePhrases = [][]string{
	{"that", "is", "a", "good", "rate", "for", "this", "car"},
	{"this", "is", "a", "wonderful", "price", "you", "save", "money"},
	{"it", "is", "a", "fantastic", "car", "the", "latest", "model"},
	{"you", "just", "need", "to", "pay", "this", "low", "amount"},
}

var discountPhrases = [][]string{
	{"i", "can", "offer", "you", "a", "discount", "on", "this", "booking"},
	{"we", "have", "a", "corporate", "program", "discount", "for", "you"},
	{"there", "is", "a", "motor", "club", "discount", "available"},
	{"you", "can", "get", "the", "buying", "club", "rate", "today"},
}

var objections = [][]string{
	{"that", "rate", "is", "too", "high", "for", "me"},
	{"this", "is", "too", "expensive"},
	{"can", "you", "do", "better", "on", "the", "price"},
}

var agentGreeting = []string{"thank", "you", "for", "calling", "please", "tell", "me", "how", "can", "i", "help", "you"}
var agentClosing = []string{"can", "i", "do", "anything", "else", "for", "you", "thank", "you"}

var bookConfirm = [][]string{
	{"okay", "please", "book", "it", "for", "me"},
	{"that", "works", "i", "will", "take", "it"},
	{"yes", "go", "ahead", "with", "the", "booking"},
}

var bookDecline = [][]string{
	{"let", "me", "think", "about", "it", "and", "call", "back"},
	{"i", "will", "check", "other", "options", "thank", "you"},
	{"no", "thank", "you", "not", "today"},
}

var serviceBodies = [][]string{
	{"i", "want", "to", "change", "my", "booking", "to", "next", "week"},
	{"i", "need", "to", "cancel", "my", "reservation"},
	{"can", "you", "confirm", "my", "pick", "up", "time"},
	{"i", "want", "to", "add", "a", "child", "seat", "to", "my", "booking"},
}

func (w *CarRentalWorld) identity(r *rng.RNG, cust Customer) []string {
	out := []string{"my", "name", "is", cust.Given, cust.Surname}
	if r.Bool(0.6) {
		out = append(out, "my", "phone", "number", "is")
		out = append(out, phonetics.SpellDigits(cust.Phone)...)
	}
	// A second identity entity, as in §IV.A.1's example ("suppose that a
	// customer has uttered name, date of birth, and contact telephone
	// number in a call").
	if r.Bool(0.35) {
		out = append(out, "my", "date", "of", "birth", "is")
		out = append(out, phonetics.SpellDigits(cust.DOB)...)
	}
	return out
}

func (w *CarRentalWorld) rateQuote(r *rng.RNG, call Call) []string {
	out := []string{"the", "rate", "is"}
	out = append(out, phonetics.SpellDigits(fmt.Sprintf("%d", call.RateQuoted))...)
	out = append(out, "dollars", "per", "day")
	return out
}

func (w *CarRentalWorld) vehicleMention(r *rng.RNG, call Call) []string {
	ind := vehicleTypes[call.VehicleIdx].Indicators
	words := strings.Fields(rng.Pick(r, ind))
	out := []string{"i", "am", "looking", "for", "a"}
	out = append(out, words...)
	out = append(out, "in")
	out = append(out, strings.Fields(call.City)...)
	return out
}

func (w *CarRentalWorld) reservationTranscript(r *rng.RNG, cust Customer, call Call) []string {
	var t []string
	t = append(t, agentGreeting...)
	if call.Intent == IntentStrong {
		t = append(t, rng.Pick(r, strongOpenings)...)
	} else {
		t = append(t, rng.Pick(r, weakOpenings)...)
	}
	t = append(t, w.identity(r, cust)...)
	t = append(t, w.vehicleMention(r, call)...)
	t = append(t, w.rateQuote(r, call)...)
	if call.Objected {
		t = append(t, rng.Pick(r, objections)...)
	}
	if call.UsedValue {
		t = append(t, rng.Pick(r, valuePhrases)...)
	}
	if call.UsedDisc {
		t = append(t, rng.Pick(r, discountPhrases)...)
	}
	if call.Outcome == OutcomeReservation {
		t = append(t, rng.Pick(r, bookConfirm)...)
	} else {
		t = append(t, rng.Pick(r, bookDecline)...)
	}
	t = append(t, agentClosing...)
	return t
}

func (w *CarRentalWorld) serviceTranscript(r *rng.RNG, cust Customer, call Call) []string {
	var t []string
	t = append(t, agentGreeting...)
	t = append(t, rng.Pick(r, serviceBodies)...)
	t = append(t, w.identity(r, cust)...)
	t = append(t, agentClosing...)
	return t
}

// TemplateWords returns every distinct non-name template word used in
// transcripts, for building the ASR lexicon and training the domain LM.
func TemplateWords() []string {
	seen := map[string]bool{}
	var out []string
	add := func(groups ...[][]string) {
		for _, g := range groups {
			for _, phrase := range g {
				for _, w := range phrase {
					if !seen[w] {
						seen[w] = true
						out = append(out, w)
					}
				}
			}
		}
	}
	add(strongOpenings, weakOpenings, valuePhrases, discountPhrases,
		objections, bookConfirm, bookDecline, serviceBodies)
	add([][]string{agentGreeting, agentClosing})
	add([][]string{{"my", "name", "is", "phone", "number", "the", "rate",
		"dollars", "per", "day", "i", "am", "looking", "for", "a", "in",
		"date", "of", "birth"}})
	// Iterate indicators in declaration order (not map order): lexicon
	// insertion order determines trie node numbering, which decode
	// tie-breaking depends on — it must be identical across runs.
	for _, v := range vehicleTypes {
		for _, ind := range v.Indicators {
			for _, w := range strings.Fields(ind) {
				if !seen[w] {
					seen[w] = true
					out = append(out, w)
				}
			}
		}
	}
	return out
}

// TrainingSentences returns representative clean sentences for LM
// training (the "call center specific text" of §IV.A.1).
func TrainingSentences() [][]string {
	var out [][]string
	add := func(groups ...[][]string) {
		for _, g := range groups {
			out = append(out, g...)
		}
	}
	add(strongOpenings, weakOpenings, valuePhrases, discountPhrases,
		objections, bookConfirm, bookDecline, serviceBodies)
	out = append(out, agentGreeting, agentClosing)
	out = append(out, []string{"my", "name", "is", "john", "smith"})
	out = append(out, []string{"my", "phone", "number", "is", "nine", "eight", "seven", "six", "five", "four", "three", "two", "one", "zero"})
	out = append(out, []string{"my", "date", "of", "birth", "is", "one", "nine", "seven", "five", "zero", "three", "one", "two"})
	out = append(out, []string{"the", "rate", "is", "five", "zero", "dollars", "per", "day"})
	out = append(out, []string{"i", "am", "looking", "for", "a", "full", "size", "in", "new", "york"})
	return out
}
