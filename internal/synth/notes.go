package synth

import (
	"fmt"
	"strings"

	"bivoc/internal/noise"
	"bivoc/internal/rng"
)

// Agent notes are the fourth VoC channel of Figure 1 ("Contact center
// notes: the cust secratory called up and he inf tht he was not able to
// access GPRS..."). Only ~25% of calls are recorded (§V.A: "about 1800
// calls (about 25% of all calls) get recorded"), but agents write a
// wrap-up note for every call — so the notes channel has full coverage
// at the cost of heavy shorthand noise.

var noteIntentClauses = map[string][]string{
	IntentStrong:  {"customer called to make a booking", "customer wanted to book a car", "customer requested a reservation"},
	IntentWeak:    {"customer enquired about the rates", "customer asked for rate information", "customer wanted to know the booking rates"},
	IntentService: {"customer called about an existing booking", "customer wanted to change the booking", "customer had a service request"},
}

var noteOutcomeClauses = map[string][]string{
	OutcomeReservation: {"booking done", "reservation completed", "customer confirmed the booking"},
	OutcomeUnbooked:    {"customer did not book", "customer will call back", "no booking made"},
	OutcomeService:     {"request registered", "details updated", "informed the customer"},
}

// AgentNote returns the wrap-up note for a call, with agent-note
// shorthand noise applied. Deterministic per call id.
func (w *CarRentalWorld) AgentNote(call Call) string {
	r := w.rnd.SplitString("note-" + call.ID)
	cust := w.Customers[call.CustIdx]
	var parts []string
	parts = append(parts, rng.Pick(r, noteIntentClauses[call.Intent]))
	if r.Bool(0.7) {
		parts = append(parts, "customer name "+cust.Name())
	}
	if call.Intent != IntentService {
		parts = append(parts, "wanted a "+VehicleTypes()[call.VehicleIdx]+" in "+call.City)
		parts = append(parts, fmt.Sprintf("quoted rate %d dollars per day", call.RateQuoted))
		if call.Objected {
			parts = append(parts, "customer said the rate was too high")
		}
		if call.UsedValue {
			parts = append(parts, "explained it was a good rate and a great car")
		}
		if call.UsedDisc {
			parts = append(parts, "offered a discount under the corporate program")
		}
	}
	parts = append(parts, rng.Pick(r, noteOutcomeClauses[call.Outcome]))
	clean := strings.Join(parts, ". ")
	return noise.New(noise.AgentNoteNoise).Apply(r, clean)
}

// AgentNotes returns one note per call.
func (w *CarRentalWorld) AgentNotes(calls []Call) []string {
	out := make([]string, len(calls))
	for i, c := range calls {
		out[i] = w.AgentNote(c)
	}
	return out
}
