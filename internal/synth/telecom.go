package synth

import (
	"fmt"
	"strings"

	"bivoc/internal/noise"
	"bivoc/internal/rng"
	"bivoc/internal/warehouse"
)

// Churn-driver categories (§VI: "a few drivers that affect churn are
// competitor tariff, quality of problem resolution, service related
// issues, billing related issues, low awareness of services").
const (
	DriverCompetitor = "competitor tariff"
	DriverResolution = "problem resolution"
	DriverService    = "service issues"
	DriverBilling    = "billing issues"
	DriverAwareness  = "low awareness"
)

// ChurnDrivers returns the driver categories.
func ChurnDrivers() []string {
	return []string{DriverCompetitor, DriverResolution, DriverService, DriverBilling, DriverAwareness}
}

// driverPhrases hold the clean surface expressions of each churn driver;
// the noise models corrupt them per channel.
var driverPhrases = map[string][]string{
	DriverCompetitor: {
		"the competitor offers a cheaper plan than yours",
		"other networks give much better tariff",
		"i am switching to a cheaper provider",
		"your rivals charge half of what you charge",
	},
	DriverResolution: {
		"my problem is still not solved after many calls",
		"nobody resolves my complaint it is pending for weeks",
		"the call center officer assured action but nothing happened",
		"i have to leave as it is not solving my problem",
	},
	DriverService: {
		"the network is always down in my area",
		"calls keep dropping every few minutes",
		"there is no signal at my home",
		"not able to access gprs or connect to internet",
	},
	DriverBilling: {
		"my bill is too high i almost feel robbed when paying",
		"i was wrongly charged for a pack i never requested",
		"the plan is not appropriate my bill keeps increasing",
		"customer was charged for sms without any request for activation",
	},
	DriverAwareness: {
		"i did not know this service was chargeable",
		"nobody told me about the plan conditions",
		"i was never informed about these charges",
	},
}

// competitors are rival providers/card brands mentioned in customer
// mail. Figure 4 of the paper associates "mentions of competitor credit
// cards in the email with the category assigned to the email".
var competitors = []string{"maxcard", "primebank", "globalpay", "unitel", "skyfone"}

// Competitors returns the competitor-brand inventory.
func Competitors() []string { return clone(competitors) }

// Email categories, as a contact-centre agent would assign them.
const (
	CategoryBilling      = "billing"
	CategoryService      = "service"
	CategoryCancellation = "cancellation"
	CategoryGeneral      = "general"
)

// EmailCategories returns the category inventory.
func EmailCategories() []string {
	return []string{CategoryBilling, CategoryService, CategoryCancellation, CategoryGeneral}
}

// churnClosers are leaving statements churners add.
var churnClosers = []string{
	"i want to disconnect my connection",
	"i am porting my number to another operator",
	"please close my account i am leaving",
	"goodbye keep not caring for customers",
}

// routineBodies are ordinary service texts from non-churners.
var routineBodies = []string{
	"please confirm the receipt of payment of rs 500",
	"kindly tell me the balance on my account",
	"i want to recharge my prepaid number",
	"please activate the new data pack on my number",
	"what are the details of my current plan",
	"please send me my bill for last month",
	"i want to change my billing address",
	"how do i activate caller tunes",
	"my recharge was successful thank you",
	"please confirm my payment was received",
}

// TelecomConfig sizes the telecom world. Paper scale: 47,460 emails (3%
// from churners), 289,314 SMS (7.6% from churners), 78% prepaid, 18% of
// emails unlinkable (non-customers). Defaults are laptop-scale with the
// same proportions.
type TelecomConfig struct {
	Seed         uint64
	NumCustomers int
	Emails       int
	SMS          int
	// ChurnerEmailShare / ChurnerSMSShare are the fractions of messages
	// authored by (eventual) churners.
	ChurnerEmailShare float64
	ChurnerSMSShare   float64
	// NonCustomerEmailShare is the fraction of emails from strangers.
	NonCustomerEmailShare float64
	// SpamEmailShare is the fraction of spam among emails.
	SpamEmailShare float64
	PrepaidShare   float64
	Months         int
	Regions        []string
}

// DefaultTelecomConfig returns the laptop-scale configuration with the
// paper's proportions.
func DefaultTelecomConfig() TelecomConfig {
	return TelecomConfig{
		Seed:                  1947,
		NumCustomers:          1500,
		Emails:                2400,
		SMS:                   6000,
		ChurnerEmailShare:     0.03,
		ChurnerSMSShare:       0.076,
		NonCustomerEmailShare: 0.18,
		SpamEmailShare:        0.08,
		PrepaidShare:          0.78,
		Months:                3,
		Regions:               []string{"north", "south", "east", "west"},
	}
}

// TelecomCustomer is one subscriber.
type TelecomCustomer struct {
	ID      string
	Given   string
	Surname string
	Phone   string
	Region  string
	Plan    string // "prepaid" | "postpaid"
	Churned bool
	// ChurnMonth is the month index of churn (valid when Churned).
	ChurnMonth int
}

// Name returns the subscriber's full name.
func (c TelecomCustomer) Name() string { return c.Given + " " + c.Surname }

// Message is one generated email or SMS with hidden truth attached.
type Message struct {
	ID      string
	Channel string // "email" | "sms"
	Month   int
	// CustIdx indexes TelecomWorld.Customers, or -1 for a non-customer.
	CustIdx int
	Raw     string // wrapped email / noisy sms, as received
	Spam    bool
	// FromChurner is the hidden label used for training/evaluation.
	FromChurner bool
	// Drivers lists the churn-driver categories expressed (hidden truth).
	Drivers []string
	// Category is the label a contact-centre agent assigns to the email
	// (billing / service / cancellation / general).
	Category string
	// Competitor is the rival brand mentioned, if any.
	Competitor string
}

// TelecomWorld bundles subscribers, their warehouse, and messages.
type TelecomWorld struct {
	Config    TelecomConfig
	Customers []TelecomCustomer
	DB        *warehouse.DB
	Emails    []Message
	SMS       []Message
	rnd       *rng.RNG
}

// NewTelecomWorld generates subscribers and their structured table, then
// the email and SMS corpora.
func NewTelecomWorld(cfg TelecomConfig) (*TelecomWorld, error) {
	if cfg.NumCustomers <= 0 {
		return nil, fmt.Errorf("synth: need positive customer count")
	}
	if cfg.Months <= 0 {
		cfg.Months = 3
	}
	if len(cfg.Regions) == 0 {
		cfg.Regions = []string{"north", "south", "east", "west"}
	}
	w := &TelecomWorld{Config: cfg, rnd: rng.New(cfg.Seed)}

	// Overall churner base rate: enough churners to author the configured
	// message shares. Make ~8% of subscribers churners.
	custRnd := w.rnd.SplitString("subscribers")
	phoneSeen := map[string]bool{}
	for i := 0; i < cfg.NumCustomers; i++ {
		r := custRnd.Split(uint64(i))
		phone := randomPhone(r)
		for phoneSeen[phone] {
			phone = randomPhone(r)
		}
		phoneSeen[phone] = true
		plan := "postpaid"
		if r.Bool(cfg.PrepaidShare) {
			plan = "prepaid"
		}
		churned := r.Bool(0.08)
		c := TelecomCustomer{
			ID:      fmt.Sprintf("S%05d", i),
			Given:   rng.Pick(r, givenNames),
			Surname: rng.Pick(r, surnames),
			Phone:   phone,
			Region:  rng.Pick(r, cfg.Regions),
			Plan:    plan,
			Churned: churned,
		}
		if churned {
			c.ChurnMonth = cfg.Months - 1 // churn lands in the last month
		}
		w.Customers = append(w.Customers, c)
	}

	db := warehouse.NewDB()
	subs, err := db.CreateTable(warehouse.Schema{
		Table: "subscribers", Key: "id",
		Columns: []warehouse.Column{
			{Name: "id", Type: warehouse.TypeString, Match: warehouse.MatchExact},
			{Name: "name", Type: warehouse.TypeString, Match: warehouse.MatchName},
			{Name: "phone", Type: warehouse.TypeString, Match: warehouse.MatchDigits},
			{Name: "region", Type: warehouse.TypeString, Match: warehouse.MatchExact},
			{Name: "plan", Type: warehouse.TypeString, Match: warehouse.MatchExact},
			{Name: "churned", Type: warehouse.TypeString, Match: warehouse.MatchExact},
		},
	})
	if err != nil {
		return nil, err
	}
	for _, c := range w.Customers {
		churn := "no"
		if c.Churned {
			churn = "yes"
		}
		subs.MustInsert(
			warehouse.StringValue(c.ID),
			warehouse.StringValue(c.Name()),
			warehouse.StringValue(c.Phone),
			warehouse.StringValue(c.Region),
			warehouse.StringValue(c.Plan),
			warehouse.StringValue(churn),
		)
	}
	w.DB = db

	w.Emails = w.generateMessages("email", cfg.Emails, cfg.ChurnerEmailShare, cfg.NonCustomerEmailShare, cfg.SpamEmailShare)
	w.SMS = w.generateMessages("sms", cfg.SMS, cfg.ChurnerSMSShare, 0.04, 0.02)
	return w, nil
}

// churnerIdxs returns indices of churned customers.
func (w *TelecomWorld) churnerIdxs() []int {
	var out []int
	for i, c := range w.Customers {
		if c.Churned {
			out = append(out, i)
		}
	}
	return out
}

func (w *TelecomWorld) nonChurnerIdxs() []int {
	var out []int
	for i, c := range w.Customers {
		if !c.Churned {
			out = append(out, i)
		}
	}
	return out
}

func (w *TelecomWorld) generateMessages(channel string, count int, churnShare, strangerShare, spamShare float64) []Message {
	msgRnd := w.rnd.SplitString("messages-" + channel)
	churners := w.churnerIdxs()
	stayers := w.nonChurnerIdxs()
	var out []Message
	for i := 0; i < count; i++ {
		r := msgRnd.Split(uint64(i))
		id := fmt.Sprintf("%s-%05d", channel, i)
		m := Message{ID: id, Channel: channel, Month: r.Intn(w.Config.Months), CustIdx: -1}
		switch {
		case r.Bool(spamShare):
			m.Spam = true
			m.Raw = w.wrap(r, channel, noise.SpamEmail(r), "", "")
		case r.Bool(strangerShare):
			// A non-customer writes in; their identity matches nothing.
			given := rng.Pick(r, givenNames)
			sur := rng.Pick(r, surnames)
			body := w.composeBody(r, false, &m)
			m.Raw = w.wrap(r, channel, body, given+" "+sur, randomPhone(r))
		default:
			var idx int
			churner := r.Bool(churnShare) && len(churners) > 0
			if churner {
				idx = churners[r.Intn(len(churners))]
			} else {
				idx = stayers[r.Intn(len(stayers))]
			}
			cust := w.Customers[idx]
			m.CustIdx = idx
			m.FromChurner = churner
			body := w.composeBody(r, churner, &m)
			m.Raw = w.wrap(r, channel, body, cust.Name(), cust.Phone)
		}
		out = append(out, m)
	}
	return out
}

// composeBody assembles the clean message body: identityless core
// content; identity is attached by wrap. Churners draw 1-2 driver
// phrases plus possibly a closer; stayers draw routine bodies and only
// rarely a mild driver phrase.
func (w *TelecomWorld) composeBody(r *rng.RNG, churner bool, m *Message) string {
	var parts []string
	closer := false
	if churner {
		// An eventual churner's messages are not uniformly angry: a bit
		// under half are routine service traffic, which is what bounds
		// detection recall in the paper (53.6% of churners detected).
		if r.Bool(0.35) {
			parts = append(parts, rng.Pick(r, routineBodies))
			m.Category = CategoryGeneral
			return joinParts(parts)
		}
		drivers := ChurnDrivers()
		n := 1 + r.Intn(2)
		for k := 0; k < n; k++ {
			var d string
			if k == 0 && r.Bool(0.4) {
				// Churners disproportionately cite the competition — the
				// §VI driver the business heads all agreed on.
				d = DriverCompetitor
			} else {
				d = drivers[r.Intn(len(drivers))]
			}
			parts = append(parts, w.driverPhrase(r, d, m))
			m.Drivers = append(m.Drivers, d)
		}
		if r.Bool(0.4) {
			closer = true
			parts = append(parts, rng.Pick(r, churnClosers))
		}
	} else {
		parts = append(parts, rng.Pick(r, routineBodies))
		if r.Bool(0.15) {
			// Stayers grumble about billing and service but rarely name a
			// rival; competitor language is churn language.
			stayerDrivers := []string{DriverResolution, DriverService, DriverBilling, DriverAwareness}
			d := stayerDrivers[r.Intn(len(stayerDrivers))]
			if r.Bool(0.06) {
				d = DriverCompetitor
			}
			parts = append(parts, w.driverPhrase(r, d, m))
			m.Drivers = append(m.Drivers, d)
		}
	}
	m.Category = categorize(m.Drivers, closer)
	return joinParts(parts)
}

// driverPhrase realizes one driver mention; competitor-tariff phrases
// name the rival brand, which is what Figure 4's analysis picks up.
func (w *TelecomWorld) driverPhrase(r *rng.RNG, driver string, m *Message) string {
	phrase := rng.Pick(r, driverPhrases[driver])
	if driver == DriverCompetitor && r.Bool(0.8) {
		comp := rng.Pick(r, competitors)
		m.Competitor = comp
		phrase = strings.Replace(phrase, "the competitor", comp, 1)
		phrase = strings.Replace(phrase, "other networks", comp, 1)
		phrase = strings.Replace(phrase, "a cheaper provider", comp, 1)
		phrase = strings.Replace(phrase, "your rivals", comp, 1)
	}
	return phrase
}

// categorize assigns the agent's email category from its content — the
// paper's engagement had agents label emails; our label derives from the
// same signals an agent reads.
func categorize(drivers []string, closer bool) string {
	switch {
	case closer:
		return CategoryCancellation
	case contains(drivers, DriverBilling):
		// A competitor mention inside a billing complaint still files as
		// billing; the association analysis has to discover the
		// competitor-cancellation link statistically, not by construction.
		return CategoryBilling
	case contains(drivers, DriverService), contains(drivers, DriverResolution):
		return CategoryService
	default:
		// Includes competitor-only chatter: an agent files "skyfone is
		// cheaper" as general correspondence unless the customer asks to
		// leave — so the competitor-cancellation association is a
		// statistical discovery, not a labeling rule.
		return CategoryGeneral
	}
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func joinParts(parts []string) string { return strings.Join(parts, ". ") }

// wrap applies channel-appropriate identity attachment and noise.
func (w *TelecomWorld) wrap(r *rng.RNG, channel, body, name, phone string) string {
	if channel == "sms" {
		// SMS: heavy lingo noise; identity is usually just the phone.
		text := body
		if phone != "" && r.Bool(0.7) {
			text += " my number is " + phone
		}
		return noise.New(noise.SMSNoise).Apply(r, text)
	}
	// Email: signature with name (and often phone), light noise, wrapped
	// with headers/disclaimers.
	text := body
	if name != "" {
		text += ". regards " + name
		if phone != "" && r.Bool(0.5) {
			text += " " + phone
		}
	}
	noisy := noise.New(noise.EmailNoise).Apply(r, text)
	from := "customer@example.com"
	if name != "" {
		from = strings.ReplaceAll(name, " ", ".") + "@example.com"
	}
	return noise.WrapEmail(r, noisy, noise.WrapEmailOptions{
		From:       from,
		To:         "care@telco.example",
		Subject:    "customer message",
		QuoteAgent: r.Bool(0.3),
		Promo:      r.Bool(0.2),
		Disclaimer: r.Bool(0.7),
	})
}

// DriverPhraseSeed returns clean example phrases per driver for training
// dictionaries and classifiers.
func DriverPhraseSeed() map[string][]string {
	out := make(map[string][]string, len(driverPhrases))
	for d, ps := range driverPhrases {
		out[d] = clone(ps)
	}
	return out
}

// RoutineSeed returns the routine (non-churn) body inventory.
func RoutineSeed() []string { return clone(routineBodies) }

// ChurnCloserSeed returns the leaving-statement inventory.
func ChurnCloserSeed() []string { return clone(churnClosers) }
