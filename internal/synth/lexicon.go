// Package synth generates the synthetic worlds that stand in for the
// paper's proprietary engagement data (see the substitution table in
// DESIGN.md): a car-rental contact centre (§V — agents, customers,
// conversations, reservations) and a wireless-telecom customer base
// (§VI — churn, emails, SMS). All generation is deterministic given a
// seed, flowing through internal/rng streams keyed by stable entity ids.
package synth

// givenNames and surnames deliberately include confusable clusters
// (Smith/Smyth, Jon/John, Philip/Filip...) because name confusability is
// what drives the 65% name WER of Table I.
var givenNames = []string{
	"james", "john", "jon", "robert", "michael", "william", "david",
	"richard", "joseph", "thomas", "charles", "christopher", "daniel",
	"matthew", "anthony", "donald", "mark", "marc", "paul", "steven",
	"stephen", "andrew", "kenneth", "george", "joshua", "kevin", "brian",
	"bryan", "edward", "ronald", "timothy", "jason", "jeffrey", "geoffrey",
	"ryan", "jacob", "gary", "nicholas", "eric", "erik", "jonathan",
	"larry", "justin", "scott", "brandon", "benjamin", "samuel", "frank",
	"gregory", "raymond", "alexander", "patrick", "jack", "dennis",
	"jerry", "tyler", "aaron", "erin", "henry", "douglas", "peter",
	"mary", "patricia", "jennifer", "linda", "elizabeth", "barbara",
	"susan", "jessica", "sarah", "sara", "karen", "nancy", "lisa",
	"margaret", "betty", "sandra", "ashley", "dorothy", "kimberly",
	"emily", "donna", "michelle", "carol", "amanda", "melissa", "deborah",
	"stephanie", "rebecca", "laura", "sharon", "cynthia", "kathleen",
	"amy", "shirley", "angela", "helen", "anna", "brenda", "pamela",
	"nicole", "catherine", "katherine", "christine", "kristine", "rachel",
	"carolyn", "janet", "virginia", "maria", "heather", "diane", "julie",
	"joyce", "victoria", "kelly", "christina", "joan", "evelyn", "lauren",
	"philip", "filip", "craig", "alan", "allen", "allan",
}

var surnames = []string{
	"smith", "smyth", "johnson", "jonson", "williams", "brown", "braun",
	"jones", "garcia", "miller", "muller", "davis", "rodriguez",
	"martinez", "hernandez", "lopez", "gonzalez", "wilson", "anderson",
	"andersen", "thomas", "taylor", "tailor", "moore", "jackson",
	"martin", "lee", "leigh", "perez", "thompson", "thomson", "white",
	"harris", "sanchez", "clark", "clarke", "ramirez", "lewis",
	"robinson", "walker", "young", "allen", "king", "wright", "scott",
	"torres", "nguyen", "hill", "flores", "green", "greene", "adams",
	"nelson", "baker", "hall", "rivera", "campbell", "mitchell",
	"carter", "roberts", "gomez", "phillips", "evans", "turner",
	"diaz", "parker", "cruz", "edwards", "collins", "reyes", "stewart",
	"stuart", "morris", "morales", "murphy", "cook", "cooke", "rogers",
	"gutierrez", "ortiz", "morgan", "cooper", "peterson", "petersen",
	"bailey", "reed", "reid", "kelly", "howard", "ramos", "kim",
	"cox", "ward", "richardson", "watson", "brooks", "chavez", "wood",
	"james", "bennett", "gray", "grey", "mendoza", "ruiz", "hughes",
	"price", "alvarez", "castillo", "sanders", "patel", "myers",
	"long", "ross", "foster", "jimenez",
}

// cities are the rental locations of Table II.
var cities = []string{
	"new york", "los angeles", "seattle", "boston", "chicago", "denver",
	"miami", "dallas", "atlanta", "phoenix", "houston", "portland",
	"orlando", "detroit", "memphis",
}

// vehicleTypes are the Table II column categories with the indicator
// expressions the paper gives ("'SUV' may be indicated by 'a seven
// seater', and 'full-size' may be indicated by 'Chevy Impala'").
var vehicleTypes = []struct {
	Canonical  string
	Indicators []string
}{
	{"suv", []string{"suv", "seven seater", "sport utility"}},
	{"mid-size", []string{"mid size", "midsize", "toyota camry", "sedan"}},
	{"full-size", []string{"full size", "chevy impala", "large sedan"}},
	{"luxury car", []string{"luxury car", "premium car", "mercedes"}},
	{"compact", []string{"compact", "economy car", "small car"}},
}

// ConfusableNameVariants derives additional name-inventory entries from
// the base names by systematic vowel and consonant alternations
// ("smith" → "smath", "smeth"...). The paper attributes the 65% name WER
// to "the number of conflicting words in the vocabulary [being] very
// high (of the order of tens of thousands) when it comes to recognizing
// names"; the base inventory of a few hundred is nowhere near that, so
// the recognizer's name vocabulary is padded with these phonetically
// plausible competitors. Generation is deterministic.
func ConfusableNameVariants(perName int) []string {
	if perName <= 0 {
		perName = 3
	}
	vowels := []byte{'a', 'e', 'i', 'o', 'u'}
	seen := map[string]bool{}
	base := append(append([]string{}, givenNames...), surnames...)
	for _, n := range base {
		seen[n] = true
	}
	var out []string
	for _, name := range base {
		made := 0
		for pos := 0; pos < len(name) && made < perName; pos++ {
			c := name[pos]
			isV := c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u'
			if !isV {
				continue
			}
			for _, v := range vowels {
				if v == c {
					continue
				}
				cand := name[:pos] + string(v) + name[pos+1:]
				if !seen[cand] {
					seen[cand] = true
					out = append(out, cand)
					made++
					if made >= perName {
						break
					}
				}
			}
		}
	}
	return out
}

// GivenNames returns the given-name lexicon.
func GivenNames() []string { return clone(givenNames) }

// Surnames returns the surname lexicon.
func Surnames() []string { return clone(surnames) }

// Cities returns the rental-location lexicon.
func Cities() []string { return clone(cities) }

// VehicleTypes returns the canonical vehicle categories.
func VehicleTypes() []string {
	out := make([]string, len(vehicleTypes))
	for i, v := range vehicleTypes {
		out[i] = v.Canonical
	}
	return out
}

// VehicleIndicators returns surface → canonical pairs for the vehicle
// dictionary.
func VehicleIndicators() map[string]string {
	out := map[string]string{}
	for _, v := range vehicleTypes {
		for _, ind := range v.Indicators {
			out[ind] = v.Canonical
		}
	}
	return out
}

// CityWords returns all single words appearing in city names (for the
// ASR lexicon).
func CityWords() []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range cities {
		for _, w := range fields(c) {
			if !seen[w] {
				seen[w] = true
				out = append(out, w)
			}
		}
	}
	return out
}

func clone(s []string) []string {
	out := make([]string, len(s))
	copy(out, s)
	return out
}

func fields(s string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(s); i++ {
		if i < len(s) && s[i] != ' ' {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			out = append(out, s[start:i])
			start = -1
		}
	}
	return out
}
