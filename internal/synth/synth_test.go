package synth

import (
	"math"
	"strings"
	"testing"

	"bivoc/internal/asr"
	"bivoc/internal/rng"
)

func TestLexiconsNonTrivial(t *testing.T) {
	if len(GivenNames()) < 100 {
		t.Errorf("given names: %d", len(GivenNames()))
	}
	if len(Surnames()) < 100 {
		t.Errorf("surnames: %d", len(Surnames()))
	}
	if len(Cities()) < 10 {
		t.Errorf("cities: %d", len(Cities()))
	}
	if len(VehicleTypes()) != 5 {
		t.Errorf("vehicle types: %v", VehicleTypes())
	}
}

func TestLexiconCopies(t *testing.T) {
	g := GivenNames()
	g[0] = "mutated"
	if GivenNames()[0] == "mutated" {
		t.Error("GivenNames leaks internal slice")
	}
}

func TestVehicleIndicatorsCoverCanonicals(t *testing.T) {
	ind := VehicleIndicators()
	seen := map[string]bool{}
	for _, canon := range ind {
		seen[canon] = true
	}
	for _, vt := range VehicleTypes() {
		if !seen[vt] {
			t.Errorf("vehicle type %q has no indicators", vt)
		}
	}
	// The paper's two examples must be present.
	if ind["seven seater"] != "suv" {
		t.Error("seven seater should indicate suv")
	}
	if ind["chevy impala"] != "full-size" {
		t.Error("chevy impala should indicate full-size")
	}
}

func smallCarConfig() CarRentalConfig {
	cfg := DefaultCarRentalConfig()
	cfg.NumAgents = 12
	cfg.NumCustomers = 60
	cfg.CallsPerDay = 40
	cfg.Days = 3
	return cfg
}

func TestCarRentalWorldDeterministic(t *testing.T) {
	cfg := smallCarConfig()
	w1, err := NewCarRentalWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := NewCarRentalWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c1 := w1.GenerateCalls(0, 2)
	c2 := w2.GenerateCalls(0, 2)
	if len(c1) != len(c2) {
		t.Fatal("different call counts")
	}
	for i := range c1 {
		if c1[i].Outcome != c2[i].Outcome || strings.Join(c1[i].Transcript, " ") != strings.Join(c2[i].Transcript, " ") {
			t.Fatalf("call %d differs between identical seeds", i)
		}
	}
}

func TestCarRentalWorldValidation(t *testing.T) {
	if _, err := NewCarRentalWorld(CarRentalConfig{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestCarRentalStructuredTables(t *testing.T) {
	w, err := NewCarRentalWorld(smallCarConfig())
	if err != nil {
		t.Fatal(err)
	}
	custTab := w.DB.MustTable("customers")
	if custTab.Len() != len(w.Customers) {
		t.Errorf("customer table %d rows, want %d", custTab.Len(), len(w.Customers))
	}
	calls := w.GenerateCalls(0, 3)
	resTab := w.DB.MustTable("reservations")
	reservations := 0
	for _, c := range calls {
		if c.Outcome == OutcomeReservation {
			reservations++
		}
	}
	if resTab.Len() != reservations {
		t.Errorf("reservations table %d rows, want %d", resTab.Len(), reservations)
	}
}

func TestTranscriptsPronounceable(t *testing.T) {
	w, err := NewCarRentalWorld(smallCarConfig())
	if err != nil {
		t.Fatal(err)
	}
	lex := BuildLexicon()
	calls := w.GenerateCalls(0, 2)
	for _, c := range calls {
		if _, err := lex.Phones(c.Transcript); err != nil {
			t.Fatalf("call %s transcript not covered by lexicon: %v", c.ID, err)
		}
	}
}

func TestOutcomeModelShape(t *testing.T) {
	m := DefaultOutcomeModel()
	// Orderings the paper's tables rely on.
	if !(m.ConversionProb(IntentStrong, false, false) > m.ConversionProb(IntentWeak, false, false)) {
		t.Error("strong start must convert better than weak")
	}
	if !(m.ConversionProb(IntentWeak, false, true) > m.ConversionProb(IntentWeak, true, false)) {
		t.Error("discount must out-lift value selling")
	}
	if p := m.ConversionProb(IntentStrong, true, true); p > 0.98 {
		t.Errorf("probability cap broken: %v", p)
	}
}

func TestCallMarginalsNearPaperTables(t *testing.T) {
	cfg := DefaultCarRentalConfig()
	cfg.CallsPerDay = 400
	cfg.Days = 10
	w, err := NewCarRentalWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	calls := w.GenerateCalls(0, cfg.Days)
	type tally struct{ res, unb int }
	var strong, weak, value, disc tally
	for _, c := range calls {
		if c.Intent == IntentService {
			continue
		}
		add := func(t *tally) {
			if c.Outcome == OutcomeReservation {
				t.res++
			} else {
				t.unb++
			}
		}
		if c.Intent == IntentStrong {
			add(&strong)
		} else {
			add(&weak)
		}
		if c.UsedValue {
			add(&value)
		}
		if c.UsedDisc {
			add(&disc)
		}
	}
	share := func(t tally) float64 { return float64(t.res) / float64(t.res+t.unb) }
	// Paper: strong 63%, weak 32%, value-selling 59%, discount 72%.
	if s := share(strong); math.Abs(s-0.63) > 0.06 {
		t.Errorf("strong-start conversion %v, want ≈0.63", s)
	}
	if s := share(weak); math.Abs(s-0.32) > 0.06 {
		t.Errorf("weak-start conversion %v, want ≈0.32", s)
	}
	if s := share(value); math.Abs(s-0.59) > 0.08 {
		t.Errorf("value-selling conversion %v, want ≈0.59", s)
	}
	if s := share(disc); math.Abs(s-0.72) > 0.08 {
		t.Errorf("discount conversion %v, want ≈0.72", s)
	}
}

func TestTrainAgentsShiftsPropensities(t *testing.T) {
	w, err := NewCarRentalWorld(smallCarConfig())
	if err != nil {
		t.Fatal(err)
	}
	before := w.Agents[0].PValueSelling
	w.TrainAgents(5)
	for i := 0; i < 5; i++ {
		if !w.Agents[i].Trained {
			t.Errorf("agent %d not trained", i)
		}
	}
	if w.Agents[5].Trained {
		t.Error("agent 5 should be untouched")
	}
	if w.Agents[0].PValueSelling <= before {
		t.Error("training should raise value-selling propensity")
	}
	// Idempotent.
	after := w.Agents[0].PValueSelling
	w.TrainAgents(5)
	if w.Agents[0].PValueSelling != after {
		t.Error("re-training shifted propensities again")
	}
}

func TestServiceCallsPresent(t *testing.T) {
	w, err := NewCarRentalWorld(smallCarConfig())
	if err != nil {
		t.Fatal(err)
	}
	calls := w.GenerateCalls(0, 3)
	service := 0
	for _, c := range calls {
		if c.Intent == IntentService {
			service++
			if c.Outcome != OutcomeService {
				t.Error("service call with non-service outcome")
			}
		}
	}
	frac := float64(service) / float64(len(calls))
	if math.Abs(frac-0.25) > 0.1 {
		t.Errorf("service share = %v, want ≈0.25", frac)
	}
}

func TestBuildLexiconClasses(t *testing.T) {
	lex := BuildLexicon()
	if lex.Size() < 300 {
		t.Errorf("lexicon too small: %d", lex.Size())
	}
	if lex.ClassOfWord("smith") != asr.ClassName {
		t.Error("smith should be a name")
	}
	if lex.ClassOfWord("seven") != asr.ClassDigit {
		t.Error("seven should be a digit word")
	}
	if lex.ClassOfWord("discount") != asr.ClassGeneric {
		t.Error("discount should be generic")
	}
	if lex.ClassOfWord("seattle") != asr.ClassPlace {
		t.Error("seattle should be a place")
	}
}

func TestBuildRecognizerDecodesCleanCall(t *testing.T) {
	rec, err := BuildRecognizer(asr.ChannelConfig{}, asr.DefaultDecoderConfig())
	if err != nil {
		t.Fatal(err)
	}
	ref := []string{"i", "want", "to", "book", "a", "car", "today"}
	hyp, err := rec.Transcribe(rng.New(1), ref)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(hyp, " ") != strings.Join(ref, " ") {
		t.Errorf("clean decode: %v", hyp)
	}
}

// --- telecom ---

func smallTelecomConfig() TelecomConfig {
	cfg := DefaultTelecomConfig()
	cfg.NumCustomers = 200
	cfg.Emails = 400
	cfg.SMS = 600
	return cfg
}

func TestTelecomWorldShape(t *testing.T) {
	w, err := NewTelecomWorld(smallTelecomConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Emails) != 400 || len(w.SMS) != 600 {
		t.Fatalf("message counts: %d emails %d sms", len(w.Emails), len(w.SMS))
	}
	prepaid := 0
	churners := 0
	for _, c := range w.Customers {
		if c.Plan == "prepaid" {
			prepaid++
		}
		if c.Churned {
			churners++
		}
	}
	if frac := float64(prepaid) / float64(len(w.Customers)); math.Abs(frac-0.78) > 0.08 {
		t.Errorf("prepaid share = %v, want ≈0.78", frac)
	}
	if churners == 0 {
		t.Fatal("no churners generated")
	}
	if w.DB.MustTable("subscribers").Len() != len(w.Customers) {
		t.Error("subscriber table incomplete")
	}
}

func TestTelecomValidation(t *testing.T) {
	if _, err := NewTelecomWorld(TelecomConfig{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestTelecomMessageLabels(t *testing.T) {
	w, err := NewTelecomWorld(smallTelecomConfig())
	if err != nil {
		t.Fatal(err)
	}
	churnMsgs, strangerMsgs, spamMsgs := 0, 0, 0
	for _, m := range w.Emails {
		if m.FromChurner {
			churnMsgs++
			if m.CustIdx < 0 {
				t.Error("churner message without customer")
			}
			if !w.Customers[m.CustIdx].Churned {
				t.Error("FromChurner inconsistent with customer record")
			}
		}
		if m.CustIdx < 0 && !m.Spam {
			strangerMsgs++
		}
		if m.Spam {
			spamMsgs++
		}
	}
	if churnMsgs == 0 || strangerMsgs == 0 || spamMsgs == 0 {
		t.Errorf("corpus lacks variety: churn=%d stranger=%d spam=%d", churnMsgs, strangerMsgs, spamMsgs)
	}
	// Stranger share near config (18% of non-spam).
	frac := float64(strangerMsgs) / float64(len(w.Emails))
	if math.Abs(frac-0.18*(1-0.08)) > 0.07 {
		t.Errorf("stranger share = %v", frac)
	}
}

func TestChurnerMessagesCarryDrivers(t *testing.T) {
	w, err := NewTelecomWorld(smallTelecomConfig())
	if err != nil {
		t.Fatal(err)
	}
	all := append(append([]Message{}, w.Emails...), w.SMS...)
	withDrivers, churnTotal := 0, 0
	for _, m := range all {
		if m.FromChurner {
			churnTotal++
			if len(m.Drivers) > 0 {
				withDrivers++
			}
		}
	}
	if churnTotal == 0 {
		t.Fatal("no churner messages")
	}
	// Not every churner message is angry (a realistic fraction is
	// routine traffic), but the majority must carry drivers.
	if float64(withDrivers) < 0.4*float64(churnTotal) {
		t.Errorf("too few churner messages with drivers: %d/%d", withDrivers, churnTotal)
	}
	if withDrivers == churnTotal && churnTotal > 20 {
		t.Error("every churner message carries drivers; routine share missing")
	}
}

func TestTelecomEmailsWrapped(t *testing.T) {
	w, err := NewTelecomWorld(smallTelecomConfig())
	if err != nil {
		t.Fatal(err)
	}
	headered := 0
	for _, m := range w.Emails {
		if strings.Contains(m.Raw, "From: ") {
			headered++
		}
	}
	if headered != len(w.Emails) {
		t.Errorf("only %d/%d emails have headers", headered, len(w.Emails))
	}
}

func TestTelecomDeterministic(t *testing.T) {
	cfg := smallTelecomConfig()
	w1, _ := NewTelecomWorld(cfg)
	w2, _ := NewTelecomWorld(cfg)
	for i := range w1.Emails {
		if w1.Emails[i].Raw != w2.Emails[i].Raw {
			t.Fatalf("email %d differs between identical seeds", i)
		}
	}
}

func TestSeedHelpers(t *testing.T) {
	seeds := DriverPhraseSeed()
	if len(seeds) != len(ChurnDrivers()) {
		t.Errorf("driver seeds incomplete")
	}
	seeds[DriverBilling][0] = "mutated"
	if DriverPhraseSeed()[DriverBilling][0] == "mutated" {
		t.Error("DriverPhraseSeed leaks state")
	}
	if len(RoutineSeed()) < 5 || len(ChurnCloserSeed()) < 2 {
		t.Error("seed inventories too small")
	}
}
