package textproc

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func texts(toks []Token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

func TestTokenizeBasic(t *testing.T) {
	toks := Tokenize("Hello, world! It's 42.")
	want := []string{"Hello", ",", "world", "!", "It's", "42", "."}
	if got := texts(toks); !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestTokenizeKinds(t *testing.T) {
	toks := Tokenize("call 9876543210 re A4 pls")
	kinds := map[string]TokenKind{}
	for _, tok := range toks {
		kinds[tok.Text] = tok.Kind
	}
	if kinds["call"] != KindWord {
		t.Error("'call' should be a word")
	}
	if kinds["9876543210"] != KindNumber {
		t.Error("phone number should be a number token")
	}
	if kinds["A4"] != KindAlphaNum {
		t.Error("'A4' should be alphanumeric")
	}
}

func TestTokenizeApostrophe(t *testing.T) {
	toks := Tokenize("didn't can't agents' cars")
	got := texts(toks)
	want := []string{"didn't", "can't", "agents", "'", "cars"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestTokenizeOffsets(t *testing.T) {
	src := "hi there, bye"
	for _, tok := range Tokenize(src) {
		if src[tok.Start:tok.End] != tok.Text {
			t.Errorf("offset mismatch: %q vs %q", src[tok.Start:tok.End], tok.Text)
		}
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if toks := Tokenize(""); len(toks) != 0 {
		t.Errorf("empty input produced %v", toks)
	}
	if toks := Tokenize("   \t\n "); len(toks) != 0 {
		t.Errorf("whitespace produced %v", toks)
	}
}

func TestTokenizeRoundTripProperty(t *testing.T) {
	// Concatenating token texts in order should reproduce the input minus
	// whitespace.
	f := func(s string) bool {
		var b strings.Builder
		for _, tok := range Tokenize(s) {
			b.WriteString(tok.Text)
		}
		stripped := strings.Map(func(r rune) rune {
			if r == ' ' || r == '\t' || r == '\n' || r == '\r' || r == '\v' || r == '\f' ||
				r == 0x85 || r == 0xA0 || r == 0x2028 || r == 0x2029 ||
				(r >= 0x2000 && r <= 0x200A) || r == 0x1680 || r == 0x202F || r == 0x205F || r == 0x3000 {
				return -1
			}
			return r
		}, s)
		return b.String() == stripped
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTokenizeOffsetsProperty(t *testing.T) {
	f := func(s string) bool {
		prev := 0
		for _, tok := range Tokenize(s) {
			if tok.Start < prev || tok.End <= tok.Start || tok.End > len(s) {
				return false
			}
			if s[tok.Start:tok.End] != tok.Text {
				return false
			}
			prev = tok.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestWords(t *testing.T) {
	got := Words("The Agent said: BOOK NOW, pay $50!")
	want := []string{"the", "agent", "said", "book", "now", "pay", "50"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestSplitSentences(t *testing.T) {
	got := SplitSentences("I want a car. Can you help? Great!")
	want := []string{"I want a car.", "Can you help?", "Great!"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestSplitSentencesNoTerminator(t *testing.T) {
	got := SplitSentences("no punctuation here")
	if !reflect.DeepEqual(got, []string{"no punctuation here"}) {
		t.Errorf("got %v", got)
	}
}

func TestSplitSentencesEllipsis(t *testing.T) {
	got := SplitSentences("Hmm... okay then.")
	want := []string{"Hmm...", "okay then."}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestSplitSentencesDecimalNotSplit(t *testing.T) {
	// "Rs.2013" style strings (Fig 1 of the paper) must not split because
	// no whitespace follows the period.
	got := SplitSentences("charged Rs.2013 for sms")
	if len(got) != 1 {
		t.Errorf("decimal-period split wrongly: %v", got)
	}
}

func TestSplitSentencesEmpty(t *testing.T) {
	if got := SplitSentences(""); len(got) != 0 {
		t.Errorf("empty produced %v", got)
	}
	if got := SplitSentences("   "); len(got) != 0 {
		t.Errorf("blank produced %v", got)
	}
}

func TestNormalizeWhitespace(t *testing.T) {
	if got := NormalizeWhitespace("  a \t b\n\nc  "); got != "a b c" {
		t.Errorf("got %q", got)
	}
}

func TestIsNumeric(t *testing.T) {
	cases := map[string]bool{
		"": false, "123": true, "12a": false, "a12": false, "0": true,
		"9876543210": true, " 1": false,
	}
	for in, want := range cases {
		if got := IsNumeric(in); got != want {
			t.Errorf("IsNumeric(%q) = %v", in, got)
		}
	}
}

func TestDigitCount(t *testing.T) {
	if got := DigitCount("a1b22c333"); got != 6 {
		t.Errorf("got %d", got)
	}
	if got := DigitCount("none"); got != 0 {
		t.Errorf("got %d", got)
	}
}

func TestStopwords(t *testing.T) {
	if !IsStopword("the") || !IsStopword("and") {
		t.Error("common stopwords not detected")
	}
	if IsStopword("reservation") || IsStopword("discount") {
		t.Error("content words marked as stopwords")
	}
}

func TestContentWords(t *testing.T) {
	got := ContentWords("I would like to book a full size car")
	want := []string{"like", "book", "full", "size", "car"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestVocabulary(t *testing.T) {
	v := NewVocabulary()
	v.Add("car", "car", "rate", "car", "discount")
	if v.Count("car") != 3 || v.Count("rate") != 1 || v.Count("missing") != 0 {
		t.Error("counts wrong")
	}
	if v.Total() != 5 || v.Size() != 3 {
		t.Errorf("total=%d size=%d", v.Total(), v.Size())
	}
}

func TestVocabularyTopN(t *testing.T) {
	v := NewVocabulary()
	v.Add("b", "b", "a", "a", "c")
	got := v.TopN(2)
	// a and b tie at 2; lexicographic tiebreak puts a first.
	want := []string{"a", "b"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
	if got := v.TopN(100); len(got) != 3 {
		t.Errorf("TopN over size = %v", got)
	}
}

func TestVocabularyTopNDeterministic(t *testing.T) {
	build := func() []string {
		v := NewVocabulary()
		for _, w := range []string{"x", "y", "z", "w", "x", "y", "z", "w"} {
			v.Add(w)
		}
		return v.TopN(4)
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("TopN not deterministic: %v vs %v", a, b)
	}
}
