// Package textproc provides the text primitives shared by every BIVoC
// stage: tokenization, sentence splitting, normalization, stopword
// filtering and vocabulary counting.
//
// VoC text is noisy (§III.A of the paper): inconsistent casing, missing
// punctuation, digits embedded in words, multilingual fragments. The
// tokenizer therefore works on rune classes rather than a fixed grammar,
// keeps number tokens intact (they carry entity information such as
// telephone numbers and amounts), and preserves intra-word apostrophes
// ("didn't") while splitting all other punctuation.
package textproc

import (
	"sort"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Token is a single token with its surface form and position.
type Token struct {
	Text  string // surface form as it appeared (after NFC-style lowering if requested)
	Start int    // byte offset of the first byte in the source
	End   int    // byte offset one past the last byte
	Kind  TokenKind
}

// TokenKind classifies a token by its rune content.
type TokenKind int

// Token kinds. Numbers and alphanumerics are kept distinct because the
// entity annotators treat them differently (a pure number can be a phone
// number or amount; an alphanumeric is usually a code or shorthand).
const (
	KindWord TokenKind = iota
	KindNumber
	KindAlphaNum
	KindPunct
)

func (k TokenKind) String() string {
	switch k {
	case KindWord:
		return "word"
	case KindNumber:
		return "number"
	case KindAlphaNum:
		return "alphanum"
	case KindPunct:
		return "punct"
	default:
		return "unknown"
	}
}

// Tokenize splits s into word, number, alphanumeric and punctuation
// tokens. Apostrophes inside words are retained; all other punctuation
// becomes its own token. Whitespace never appears in the output.
func Tokenize(s string) []Token {
	var toks []Token
	i := 0
	n := len(s)
	for i < n {
		r, size := decodeRune(s[i:])
		switch {
		case unicode.IsSpace(r):
			i += size
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			start := i
			hasLetter := false
			hasDigit := false
			for i < n {
				r2, sz := decodeRune(s[i:])
				if unicode.IsLetter(r2) {
					hasLetter = true
				} else if unicode.IsDigit(r2) {
					hasDigit = true
				} else if r2 == '\'' && hasLetter {
					// Keep the apostrophe only if a letter follows.
					r3, _ := decodeRune(s[i+sz:])
					if !unicode.IsLetter(r3) {
						break
					}
				} else {
					break
				}
				i += sz
			}
			kind := KindWord
			if hasDigit && hasLetter {
				kind = KindAlphaNum
			} else if hasDigit {
				kind = KindNumber
			}
			toks = append(toks, Token{Text: s[start:i], Start: start, End: i, Kind: kind})
		default:
			toks = append(toks, Token{Text: s[i : i+size], Start: i, End: i + size, Kind: KindPunct})
			i += size
		}
	}
	return toks
}

// decodeRune wraps utf8 decoding; invalid bytes come back as the
// replacement rune with size 1, which keeps byte positions consistent on
// arbitrary noisy input.
func decodeRune(s string) (rune, int) {
	if s == "" {
		return 0, 0
	}
	return utf8.DecodeRuneInString(s)
}

// Words returns the lowercase surface forms of all word and alphanumeric
// tokens in s, dropping punctuation. Number tokens are retained because
// digit strings carry entity information in VoC text.
func Words(s string) []string {
	toks := Tokenize(s)
	out := make([]string, 0, len(toks))
	for _, t := range toks {
		if t.Kind == KindPunct {
			continue
		}
		out = append(out, strings.ToLower(t.Text))
	}
	return out
}

// SplitSentences splits s on sentence-final punctuation (. ! ?) followed
// by whitespace or end of string, returning trimmed non-empty sentences.
// Abbreviation handling is intentionally minimal: VoC text rarely has
// well-formed abbreviations and downstream stages are robust to
// over-splitting.
func SplitSentences(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '.' || c == '!' || c == '?' {
			end := i + 1
			for end < len(s) && (s[end] == '.' || s[end] == '!' || s[end] == '?') {
				end++
			}
			if end >= len(s) || s[end] == ' ' || s[end] == '\n' || s[end] == '\t' || s[end] == '\r' {
				sent := strings.TrimSpace(s[start:end])
				if sent != "" {
					out = append(out, sent)
				}
				start = end
				i = end - 1
			}
		}
	}
	if tail := strings.TrimSpace(s[start:]); tail != "" {
		out = append(out, tail)
	}
	return out
}

// NormalizeWhitespace collapses runs of whitespace to single spaces and
// trims the ends.
func NormalizeWhitespace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

// IsNumeric reports whether s consists solely of ASCII digits (at least
// one).
func IsNumeric(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// DigitCount returns the number of ASCII digits in s.
func DigitCount(s string) int {
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] >= '0' && s[i] <= '9' {
			n++
		}
	}
	return n
}

// stopwords is a compact English function-word list. Conversational VoC
// is dominated by these; relevancy analysis and classifier features
// exclude them.
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "and": true, "or": true, "but": true,
	"if": true, "then": true, "else": true, "of": true, "to": true, "in": true,
	"on": true, "at": true, "by": true, "for": true, "with": true, "from": true,
	"up": true, "down": true, "out": true, "is": true, "am": true, "are": true,
	"was": true, "were": true, "be": true, "been": true, "being": true,
	"do": true, "does": true, "did": true, "have": true, "has": true, "had": true,
	"i": true, "you": true, "he": true, "she": true, "it": true, "we": true,
	"they": true, "me": true, "him": true, "her": true, "us": true, "them": true,
	"my": true, "your": true, "his": true, "its": true, "our": true, "their": true,
	"this": true, "that": true, "these": true, "those": true, "there": true,
	"what": true, "which": true, "who": true, "whom": true, "as": true,
	"will": true, "would": true, "can": true, "could": true, "shall": true,
	"should": true, "may": true, "might": true, "must": true, "not": true,
	"no": true, "so": true, "too": true, "very": true, "just": true,
	"about": true, "into": true, "over": true, "under": true, "again": true,
	"all": true, "any": true, "both": true, "each": true, "more": true,
	"most": true, "other": true, "some": true, "such": true, "only": true,
	"own": true, "same": true, "than": true, "how": true, "when": true,
	"where": true, "why": true, "because": true, "while": true, "during": true,
}

// IsStopword reports whether the lowercase word w is an English function
// word.
func IsStopword(w string) bool { return stopwords[w] }

// ContentWords returns the lowercase non-stopword word tokens of s.
func ContentWords(s string) []string {
	ws := Words(s)
	out := ws[:0]
	for _, w := range ws {
		if !IsStopword(w) {
			out = append(out, w)
		}
	}
	return out
}

// Vocabulary counts token frequencies across a corpus.
type Vocabulary struct {
	counts map[string]int
	total  int
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{counts: make(map[string]int)}
}

// Add increments the count of each word.
func (v *Vocabulary) Add(words ...string) {
	for _, w := range words {
		v.counts[w]++
		v.total++
	}
}

// Count returns the frequency of w.
func (v *Vocabulary) Count(w string) int { return v.counts[w] }

// Total returns the number of tokens added.
func (v *Vocabulary) Total() int { return v.total }

// Size returns the number of distinct words.
func (v *Vocabulary) Size() int { return len(v.counts) }

// TopN returns the n most frequent words, ties broken lexicographically
// so the result is deterministic. This drives the dictionary-building
// workflow of §IV.C, where frequent domain terms are surfaced for a
// domain expert to categorize.
func (v *Vocabulary) TopN(n int) []string {
	type wc struct {
		w string
		c int
	}
	all := make([]wc, 0, len(v.counts))
	for w, c := range v.counts {
		all = append(all, wc{w, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].w < all[j].w
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].w
	}
	return out
}
