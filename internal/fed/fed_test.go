package fed

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"bivoc/internal/annotate"
	"bivoc/internal/mining"
	"bivoc/internal/server"
)

// The federation oracle suite: a coordinator over hash-partitioned
// shards must answer every /v1 endpoint byte-identically to a
// single-node server over the union corpus — at shard counts {1,2,4,8},
// in fast and naive-oracle modes, sealed and mid-ingest — and must
// degrade (not die) under partial shard failure.

var testTopics = []string{"billing", "coverage", "roadside", "upgrade"}

func testDoc(i int) mining.Document {
	parity := "even"
	if i%2 == 1 {
		parity = "odd"
	}
	outcome := []string{"reservation", "unbooked", "service"}[i%3]
	concepts := []annotate.Concept{
		{Category: "topic", Canonical: testTopics[i%len(testTopics)]},
	}
	if i%5 == 0 {
		concepts = append(concepts, annotate.Concept{Category: "place", Canonical: "austin"})
	}
	return mining.Document{
		ID:       fmt.Sprintf("doc-%05d", i),
		Concepts: concepts,
		Fields:   map[string]string{"parity": parity, "outcome": outcome},
		Time:     i / 10,
	}
}

func testDocs(n int) []mining.Document {
	docs := make([]mining.Document, n)
	for i := range docs {
		docs[i] = testDoc(i)
	}
	return docs
}

func sliceSource(docs []mining.Document) server.DocSource {
	return func(ctx context.Context, _ func(string) bool, emit func(mining.Document) error) error {
		for _, d := range docs {
			if err := emit(d); err != nil {
				return err
			}
		}
		return nil
	}
}

// fedQueries exercises every /v1 endpoint family against the testDoc
// corpus (same battery as the server-side segment suite).
func fedQueries() []string {
	return []string{
		"/v1/count?" + url.Values{"dim": {"parity=even", "parity=odd", "topic", "austin[place]"}}.Encode(),
		"/v1/associate?" + url.Values{"row": {"billing[topic]", "coverage[topic]", "roadside[topic]"}, "col": {"outcome=reservation", "outcome=unbooked", "outcome=service"}}.Encode(),
		"/v1/associate?" + url.Values{"row": {"topic"}, "col": {"parity=odd"}, "confidence": {"0.99"}}.Encode(),
		"/v1/relfreq?" + url.Values{"category": {"topic"}, "featured": {"outcome=reservation"}}.Encode(),
		"/v1/drilldown?" + url.Values{"row": {"austin[place]"}, "col": {"outcome=service"}}.Encode(),
		"/v1/trend?" + url.Values{"dim": {"billing[topic]"}}.Encode(),
		"/v1/concepts?category=topic",
		"/v1/concepts?field=outcome",
	}
}

// testClient disables keep-alives so no pooled connection outlives its
// request and shard restarts/shutdowns stay prompt and deterministic.
var testClient = &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}

func get(t *testing.T, rawurl string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := testClient.Get(rawurl)
	if err != nil {
		t.Fatalf("GET %s: %v", rawurl, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", rawurl, err)
	}
	return resp.StatusCode, resp.Header, body
}

// startShard starts one shard server over its partition of docs.
func startShard(t *testing.T, docs []mining.Document, shard, shards int, cfg server.Config) *server.Server {
	t.Helper()
	cfg.Source = PartitionSource(sliceSource(docs), shard, shards)
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { shutdownServer(t, s) })
	return s
}

// shutdownServer shuts a server down, tolerating double shutdowns (the
// failure tests stop shards mid-test before the cleanup runs).
func shutdownServer(t *testing.T, s *server.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil && !strings.Contains(err.Error(), "Shutdown") {
		t.Logf("shutdown: %v", err)
	}
}

func startSingle(t *testing.T, docs []mining.Document, cfg server.Config) *server.Server {
	t.Helper()
	cfg.Source = sliceSource(docs)
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { shutdownServer(t, s) })
	return s
}

func startCoordinator(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	if cfg.Client == nil {
		cfg.Client = testClient
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := c.Shutdown(ctx); err != nil {
			t.Errorf("coordinator shutdown: %v", err)
		}
	})
	return c
}

func waitIngestDone(t *testing.T, servers ...*server.Server) {
	t.Helper()
	for _, s := range servers {
		select {
		case <-s.IngestDone():
		case <-time.After(10 * time.Second):
			t.Fatal("ingest did not finish in time")
		}
	}
}

func shardAddrs(servers []*server.Server) []string {
	out := make([]string, len(servers))
	for i, s := range servers {
		out[i] = "http://" + s.Addr()
	}
	return out
}

func withNaive(fn func()) {
	old := mining.UseNaiveSets
	mining.UseNaiveSets = true
	defer func() { mining.UseNaiveSets = old }()
	fn()
}

// TestShardOf pins the placement function: deterministic, in range,
// collapsing for ≤1 shard, and spreading the test corpus over every
// shard at the counts the equivalence suite uses.
func TestShardOf(t *testing.T) {
	for _, d := range testDocs(50) {
		if got := ShardOf(d.ID, 1); got != 0 {
			t.Fatalf("ShardOf(%q, 1) = %d", d.ID, got)
		}
		if got := ShardOf(d.ID, 0); got != 0 {
			t.Fatalf("ShardOf(%q, 0) = %d", d.ID, got)
		}
	}
	for _, k := range []int{2, 4, 8} {
		seen := make([]int, k)
		for _, d := range testDocs(200) {
			s := ShardOf(d.ID, k)
			if s < 0 || s >= k {
				t.Fatalf("ShardOf(%q, %d) = %d out of range", d.ID, k, s)
			}
			if s != ShardOf(d.ID, k) {
				t.Fatalf("ShardOf not deterministic")
			}
			seen[s]++
		}
		for i, n := range seen {
			if n == 0 {
				t.Fatalf("shard %d of %d received no documents from 200", i, k)
			}
		}
	}
}

// checkFedMatchesSingle requires every query's federated body to be
// byte-identical to the single-node body, and the header to carry a
// full numeric generation vector.
func checkFedMatchesSingle(t *testing.T, singleBase, fedBase string, shards int) {
	t.Helper()
	for _, q := range fedQueries() {
		wantStatus, _, want := get(t, singleBase+q)
		gotStatus, hdr, got := get(t, fedBase+q)
		if wantStatus != http.StatusOK || gotStatus != http.StatusOK {
			t.Fatalf("%s: single %d, fed %d", q, wantStatus, gotStatus)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: fed body diverges from single node\n fed: %s\nsingle: %s", q, got, want)
		}
		vec := strings.Split(hdr.Get(server.GenerationHeader), ",")
		if len(vec) != shards {
			t.Fatalf("%s: generation vector %q has %d entries, want %d", q, hdr.Get(server.GenerationHeader), len(vec), shards)
		}
		for _, gen := range vec {
			if gen == "" || gen == "-" {
				t.Fatalf("%s: generation vector %q has missing entries on a healthy fleet", q, hdr.Get(server.GenerationHeader))
			}
		}
	}
}

// TestFedMatchesSingleNodeSealed is the tentpole oracle: shard counts
// {1, 2, 4, 8}, sealed corpus, fast and naive-oracle modes — all eight
// endpoints byte-identical to a single node over the same corpus.
func TestFedMatchesSingleNodeSealed(t *testing.T) {
	docs := testDocs(150)
	for _, k := range []int{1, 2, 4, 8} {
		for _, naive := range []bool{false, true} {
			t.Run(fmt.Sprintf("shards-%d-naive-%v", k, naive), func(t *testing.T) {
				single := startSingle(t, docs, server.Config{})
				shards := make([]*server.Server, k)
				for i := range shards {
					shards[i] = startShard(t, docs, i, k, server.Config{})
				}
				waitIngestDone(t, append([]*server.Server{single}, shards...)...)
				coord := startCoordinator(t, Config{Shards: shardAddrs(shards)})

				run := func() {
					checkFedMatchesSingle(t, "http://"+single.Addr(), "http://"+coord.Addr(), k)
				}
				if naive {
					withNaive(run)
				} else {
					run()
				}
			})
		}
	}
}

// normalizeGen strips only the generation field: mid-ingest, shard
// generations advance on their own cadences, but everything else —
// counts, floats, ordering, sealed — must match the single node at the
// same corpus prefix.
func normalizeGen(t *testing.T, body []byte) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("unmarshal %s: %v", body, err)
	}
	delete(m, "generation")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// gatedSource emits docs[:gateAt], blocks until gate closes, then emits
// the rest — a deterministic mid-ingest cut at the same document for
// every server regardless of partitioning.
func gatedSource(docs []mining.Document, gate <-chan struct{}, gateAt int) server.DocSource {
	return func(ctx context.Context, _ func(string) bool, emit func(mining.Document) error) error {
		for i, d := range docs {
			if i == gateAt {
				select {
				case <-gate:
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			if err := emit(d); err != nil {
				return err
			}
		}
		return nil
	}
}

// pollTotal waits until /v1/count reports want documents.
func pollTotal(t *testing.T, base string, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		status, _, body := get(t, base+"/v1/count?dim="+url.QueryEscape("parity=even"))
		if status == http.StatusOK {
			var m struct{ Total int }
			if err := json.Unmarshal(body, &m); err == nil && m.Total == want {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%s never reached %d documents", base, want)
}

// TestFedMidIngestMatchesSingleNode pins byte-identity (modulo the
// generation counter) while ingest is still running: the fleet and the
// single node are cut at the same document, queried, then released and
// compared again sealed.
func TestFedMidIngestMatchesSingleNode(t *testing.T) {
	const k, cut, total = 4, 60, 100
	docs := testDocs(total)
	gate := make(chan struct{})
	cfg := server.Config{SwapEvery: 1}

	singleCfg := cfg
	singleCfg.Source = gatedSource(docs, gate, cut)
	single, err := server.New(singleCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := single.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { shutdownServer(t, single) })

	shards := make([]*server.Server, k)
	for i := range shards {
		shardCfg := cfg
		shardCfg.Source = PartitionSource(gatedSource(docs, gate, cut), i, k)
		s, err := server.New(shardCfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { shutdownServer(t, s) })
		shards[i] = s
	}
	coord := startCoordinator(t, Config{Shards: shardAddrs(shards)})
	singleBase, fedBase := "http://"+single.Addr(), "http://"+coord.Addr()

	// Mid-ingest: both sides hold exactly the first cut documents.
	pollTotal(t, singleBase, cut)
	pollTotal(t, fedBase, cut)
	for _, q := range fedQueries() {
		_, _, want := get(t, singleBase+q)
		_, _, got := get(t, fedBase+q)
		if w, g := normalizeGen(t, want), normalizeGen(t, got); !bytes.Equal(g, w) {
			t.Fatalf("mid-ingest %s: fed diverges from single node\n fed: %s\nsingle: %s", q, g, w)
		}
	}

	// Release the rest and compare the sealed corpus.
	close(gate)
	waitIngestDone(t, append([]*server.Server{single}, shards...)...)
	pollTotal(t, singleBase, total)
	pollTotal(t, fedBase, total)
	for _, q := range fedQueries() {
		_, _, want := get(t, singleBase+q)
		_, _, got := get(t, fedBase+q)
		if w, g := normalizeGen(t, want), normalizeGen(t, got); !bytes.Equal(g, w) {
			t.Fatalf("sealed %s: fed diverges from single node\n fed: %s\nsingle: %s", q, g, w)
		}
		var m struct{ Sealed bool }
		if err := json.Unmarshal(got, &m); err != nil || !m.Sealed {
			t.Fatalf("sealed %s: fed response not sealed (%s)", q, got)
		}
	}
}

// fedBody decodes the degraded-contract fields of a federated response.
type fedBody struct {
	Total         int    `json:"total"`
	Degraded      bool   `json:"degraded"`
	MissingShards []int  `json:"missing_shards"`
	Status        int    `json:"status"`
	Error         string `json:"error"`
}

// TestFedPartialFailureAndRecovery pins degraded-not-dead: one shard
// down leaves queries answered under the documented contract, and a
// restarted shard rejoins without any coordinator restart.
func TestFedPartialFailureAndRecovery(t *testing.T) {
	const k = 3
	docs := testDocs(90)
	shards := make([]*server.Server, k)
	for i := range shards {
		shards[i] = startShard(t, docs, i, k, server.Config{})
	}
	waitIngestDone(t, shards...)
	coord := startCoordinator(t, Config{Shards: shardAddrs(shards)})
	fedBase := "http://" + coord.Addr()
	countQ := fedBase + "/v1/count?dim=" + url.QueryEscape("parity=even")

	// Healthy baseline.
	status, _, healthyBody := get(t, countQ)
	if status != http.StatusOK {
		t.Fatalf("healthy count: status %d", status)
	}
	var healthy fedBody
	if err := json.Unmarshal(healthyBody, &healthy); err != nil {
		t.Fatal(err)
	}
	if healthy.Degraded || healthy.Total != len(docs) {
		t.Fatalf("healthy baseline degraded=%v total=%d", healthy.Degraded, healthy.Total)
	}

	// Kill shard 1. Its documents drop out; everything else still answers.
	downAddr := shards[1].Addr()
	shutdownServer(t, shards[1])
	_, docs1, _ := shards[1].SnapshotInfo()

	deadline := time.Now().Add(5 * time.Second)
	var fb fedBody
	var hdr http.Header
	for {
		var body []byte
		status, hdr, body = get(t, countQ)
		if err := json.Unmarshal(body, &fb); err != nil {
			t.Fatal(err)
		}
		if fb.Degraded || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if status != http.StatusOK {
		t.Fatalf("degraded count: status %d, want 200", status)
	}
	if !fb.Degraded || len(fb.MissingShards) != 1 || fb.MissingShards[0] != 1 {
		t.Fatalf("degraded contract violated: degraded=%v missing=%v", fb.Degraded, fb.MissingShards)
	}
	if want := len(docs) - docs1; fb.Total != want {
		t.Fatalf("degraded total = %d, want %d (live shards only)", fb.Total, want)
	}
	vec := strings.Split(hdr.Get(server.GenerationHeader), ",")
	if len(vec) != k || vec[1] != "-" {
		t.Fatalf("degraded generation vector = %q, want %d entries with '-' at shard 1", hdr.Get(server.GenerationHeader), k)
	}

	// Every endpoint family keeps answering while degraded.
	for _, q := range fedQueries() {
		status, _, body := get(t, fedBase+q)
		if status != http.StatusOK {
			t.Fatalf("degraded %s: status %d, body %s", q, status, body)
		}
		var b fedBody
		if err := json.Unmarshal(body, &b); err != nil {
			t.Fatal(err)
		}
		if !b.Degraded {
			t.Fatalf("degraded %s: response not marked degraded", q)
		}
	}

	// Aggregated health reflects the loss, coordinator still 200.
	status, _, healthBody := get(t, fedBase+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz while degraded: status %d", status)
	}
	var hr HealthResponse
	if err := json.Unmarshal(healthBody, &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "degraded" || hr.Shards[1].Status != "unreachable" {
		t.Fatalf("healthz = %s / shard1 %s, want degraded/unreachable", hr.Status, hr.Shards[1].Status)
	}

	// Recovery: restart the shard on the same address; the stateless
	// coordinator picks it back up on its next scatter, no restart.
	restartCfg := server.Config{Addr: downAddr}
	restarted := startShard(t, docs, 1, k, restartCfg)
	waitIngestDone(t, restarted)

	deadline = time.Now().Add(5 * time.Second)
	for {
		_, _, body := get(t, countQ)
		fb = fedBody{} // omitted fields must not inherit the degraded phase
		if err := json.Unmarshal(body, &fb); err != nil {
			t.Fatal(err)
		}
		if !fb.Degraded || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if fb.Degraded || fb.Total != len(docs) {
		t.Fatalf("after recovery: degraded=%v total=%d, want healthy %d", fb.Degraded, fb.Total, len(docs))
	}
	// Back to the healthy baseline bytes.
	_, _, body := get(t, countQ)
	if !bytes.Equal(body, healthyBody) {
		t.Fatalf("post-recovery body diverges from pre-failure baseline:\n got %s\nwant %s", body, healthyBody)
	}
}

// TestFedSlowShardTimesOut pins the per-shard timeout: a shard that
// hangs past ShardTimeout is dropped from the merge as missing, and the
// query still answers from the fast shards.
func TestFedSlowShardTimesOut(t *testing.T) {
	const k = 3
	docs := testDocs(60)
	fast := make([]*server.Server, 0, k-1)
	for i := 0; i < k-1; i++ {
		fast = append(fast, startShard(t, docs, i, k, server.Config{}))
	}
	waitIngestDone(t, fast...)

	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(2 * time.Second):
		case <-r.Context().Done():
		}
	}))
	t.Cleanup(slow.Close)

	addrs := append(shardAddrs(fast), slow.URL)
	coord := startCoordinator(t, Config{Shards: addrs, ShardTimeout: 100 * time.Millisecond})
	fedBase := "http://" + coord.Addr()

	start := time.Now()
	status, _, body := get(t, fedBase+"/v1/count?dim="+url.QueryEscape("parity=even"))
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("slow shard stalled the merge for %v", elapsed)
	}
	if status != http.StatusOK {
		t.Fatalf("status %d with a slow shard, want 200", status)
	}
	var fb fedBody
	if err := json.Unmarshal(body, &fb); err != nil {
		t.Fatal(err)
	}
	if !fb.Degraded || len(fb.MissingShards) != 1 || fb.MissingShards[0] != k-1 {
		t.Fatalf("slow shard not reported missing: degraded=%v missing=%v", fb.Degraded, fb.MissingShards)
	}
}

// TestFedAllShardsDown pins the 503 contract: zero live shards is the
// only condition that fails a query, and it fails structured.
func TestFedAllShardsDown(t *testing.T) {
	// Bind-then-close two listeners to get addresses that refuse.
	dead := make([]string, 2)
	for i := range dead {
		l := httptest.NewServer(http.NotFoundHandler())
		dead[i] = l.URL
		l.Close()
	}
	coord := startCoordinator(t, Config{Shards: dead, ShardTimeout: 200 * time.Millisecond})
	fedBase := "http://" + coord.Addr()

	for _, q := range fedQueries() {
		status, hdr, body := get(t, fedBase+q)
		if status != http.StatusServiceUnavailable {
			t.Fatalf("%s: status %d, want 503 (body %s)", q, status, body)
		}
		var fb fedBody
		if err := json.Unmarshal(body, &fb); err != nil {
			t.Fatalf("%s: 503 body is not structured JSON: %v (%s)", q, err, body)
		}
		if fb.Status != http.StatusServiceUnavailable || !fb.Degraded || len(fb.MissingShards) != 2 || fb.Error == "" {
			t.Fatalf("%s: 503 contract violated: %+v", q, fb)
		}
		if got := hdr.Get(server.GenerationHeader); got != "-,-" {
			t.Fatalf("%s: generation vector %q, want \"-,-\"", q, got)
		}
	}

	// Introspection stays 200/degraded even with everything down.
	status, _, body := get(t, fedBase+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz: status %d, want 200", status)
	}
	var hr HealthResponse
	if err := json.Unmarshal(body, &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "degraded" || !hr.Degraded || len(hr.MissingShards) != 2 {
		t.Fatalf("healthz all-down contract violated: %+v", hr)
	}
}

// TestFedLocalErrorsStructured pins coordinator-originated errors: the
// same {"error", "status"} schema as the shards, plus the blank
// generation vector (nothing was scattered).
func TestFedLocalErrorsStructured(t *testing.T) {
	docs := testDocs(30)
	shard := startShard(t, docs, 0, 1, server.Config{})
	waitIngestDone(t, shard)
	coord := startCoordinator(t, Config{Shards: shardAddrs([]*server.Server{shard})})
	fedBase := "http://" + coord.Addr()

	for _, q := range []string{
		"/v1/count",                           // missing dim
		"/v1/trend?dim=a%5Bb%5D&dim=c%5Bd%5D", // two dims
		"/v1/associate?row=topic&col=parity%3Deven&confidence=7", // bad confidence
		"/v1/concepts", // neither category nor field
	} {
		status, hdr, body := get(t, fedBase+q)
		if status != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", q, status)
		}
		var fb fedBody
		if err := json.Unmarshal(body, &fb); err != nil {
			t.Fatalf("%s: 400 body not structured: %v", q, err)
		}
		if fb.Status != http.StatusBadRequest || fb.Error == "" {
			t.Fatalf("%s: error contract violated: %+v", q, fb)
		}
		if got := hdr.Get(server.GenerationHeader); got != "-" {
			t.Fatalf("%s: generation vector %q, want \"-\"", q, got)
		}
	}
}
