package fed

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"time"

	"bivoc/internal/server"
)

// POST /v1/batch on the coordinator: many federated queries in one
// request, answered with ONE batch scatter. Each sub-query is prepared
// with the same prepare* function as its GET route, translated to its
// shard-side form (associate → marginals/assoc and so on), and the
// whole translated batch is POSTed to every shard's /v1/batch — so each
// shard answers all sub-queries from one snapshot, and the federated
// batch pays one scatter instead of one per sub-query. Sub-results are
// merged by the same closures as the GET path, so a batched federated
// answer is byte-identical to the equivalent single federated GET
// (modulo the envelope's stripped trailing newline).

// BatchResponse answers /v1/batch on the coordinator. Generation and
// Sealed fold the per-shard batch envelopes (min, AND) exactly like
// every other federated response; FedStatus reports shards that were
// down for the whole batch.
type BatchResponse struct {
	server.BatchResponse
	FedStatus
}

// batchErrorRaw renders a sub-query failure body in the coordinator's
// error shape (ErrorResponse + FedStatus), newline-free for embedding.
func batchErrorRaw(status int, err error, fs FedStatus) json.RawMessage {
	body, _ := json.Marshal(ErrorResponse{
		ErrorResponse: server.ErrorResponse{Error: err.Error(), Status: status},
		FedStatus:     fs,
	})
	return body
}

// handleBatch answers POST /v1/batch by translating sub-queries to
// their shard-side form, scattering one shard batch, and merging each
// sub-query's replies with its GET-path merge closure.
func (c *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req server.BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, server.MaxBatchBytes))
	if err := dec.Decode(&req); err != nil {
		c.badRequest(w, fmt.Errorf("decoding batch request: %w", err))
		return
	}
	if len(req.Queries) == 0 {
		c.badRequest(w, fmt.Errorf("batch request has no queries"))
		return
	}
	if len(req.Queries) > server.MaxBatchQueries {
		c.badRequest(w, fmt.Errorf("batch request has %d queries, limit is %d", len(req.Queries), server.MaxBatchQueries))
		return
	}

	// Prepare every sub-query; parse failures become per-sub 400 results
	// and are excluded from the scatter.
	results := make([]server.BatchResult, len(req.Queries))
	plans := make([]fedPlan, len(req.Queries))
	valid := make([]int, 0, len(req.Queries)) // indexes with a live plan
	shardBatch := server.BatchRequest{}
	for i, bq := range req.Queries {
		prep, ok := batchPlans[bq.Endpoint]
		if !ok {
			results[i] = server.BatchResult{
				Status: http.StatusBadRequest,
				Body:   batchErrorRaw(http.StatusBadRequest, fmt.Errorf("unknown batch endpoint %q", bq.Endpoint), FedStatus{}),
			}
			continue
		}
		plan, err := prep(c, url.Values(bq.Params))
		if err != nil {
			results[i] = server.BatchResult{
				Status: http.StatusBadRequest,
				Body:   batchErrorRaw(http.StatusBadRequest, err, FedStatus{}),
			}
			continue
		}
		plans[i] = plan
		valid = append(valid, i)
		shardBatch.Queries = append(shardBatch.Queries, server.BatchQuery{
			Endpoint: plan.shardPath[len("/v1/"):],
			Params:   plan.shardQuery,
		})
	}

	nShards := len(c.cfg.Shards)
	genVec := make([]string, nShards)
	var agg genAgg
	var shardDown []bool
	var missing []int
	shardResults := make([][]server.BatchResult, nShards)
	if len(valid) > 0 {
		payload, err := json.Marshal(shardBatch)
		if err != nil {
			c.writeError(w, nil, http.StatusInternalServerError, err, FedStatus{})
			return
		}
		replies := c.scatterPost(r.Context(), "/v1/batch", payload)
		shardDown = make([]bool, nShards)
		live := 0
		for s := range replies {
			rep := &replies[s]
			if rep.down() || rep.status != http.StatusOK {
				// A non-200 batch envelope from a shard means the shard
				// could not answer the batch at all; treat it as down for
				// this request, like any 5xx on the GET path.
				shardDown[s] = true
				missing = append(missing, s)
				genVec[s] = "-"
				continue
			}
			var sr server.BatchResponse
			if err := decodeShard(*rep, s, &sr); err != nil || len(sr.Results) != len(valid) {
				if err == nil {
					err = fmt.Errorf("shard %d: batch returned %d results for %d queries", s, len(sr.Results), len(valid))
				}
				c.writeError(w, genVec, http.StatusInternalServerError, err, FedStatus{Degraded: len(missing) > 0, MissingShards: missing})
				return
			}
			shardResults[s] = sr.Results
			genVec[s] = rep.gen
			agg.add(sr.Generation, sr.Sealed)
			live++
		}
		if live == 0 {
			c.writeError(w, genVec, http.StatusServiceUnavailable,
				fmt.Errorf("all %d shards unavailable", nShards),
				FedStatus{Degraded: true, MissingShards: missing})
			return
		}
	} else {
		// Nothing to scatter (every sub-query failed to parse); the
		// envelope still answers 200 with the per-sub errors and the
		// wrapper's no-information vector.
		for s := range genVec {
			genVec[s] = "-"
		}
	}

	vec := joinVec(genVec)
	full := fullVec(genVec)
	now := time.Now()
	if full {
		c.cache.observe(vec, now)
	}
	for vi, i := range valid {
		results[i] = c.mergeBatchSub(plans[i], vi, genVec, shardDown, shardResults, vec, full)
	}

	out := BatchResponse{
		BatchResponse: server.BatchResponse{
			Generation: agg.gen,
			Sealed:     agg.sealed,
			Results:    results,
		},
	}
	if len(missing) > 0 {
		out.FedStatus = FedStatus{Degraded: true, MissingShards: missing}
	}
	body, err := json.Marshal(out)
	if err != nil {
		c.writeError(w, genVec, http.StatusInternalServerError, err, out.FedStatus)
		return
	}
	w.Header().Set(server.GenerationHeader, vec)
	server.WriteJSONBody(w, r, http.StatusOK, &server.CachedBody{Plain: append(body, '\n')})
}

// mergeBatchSub folds one sub-query's per-shard batch results into a
// federated sub-result, reusing the plan's GET-path merge closure over
// a per-sub gather. Shard-level downs apply to every sub-query; a
// per-sub shard 5xx degrades just that sub-query; a per-sub 4xx is
// relayed verbatim (the query is equally the client's fault on every
// shard).
func (c *Coordinator) mergeBatchSub(plan fedPlan, vi int, genVec []string, shardDown []bool, shardResults [][]server.BatchResult, vec string, full bool) server.BatchResult {
	g := &gather{replies: make([]shardReply, len(genVec)), genVec: make([]string, len(genVec))}
	copy(g.genVec, genVec)
	var relay *server.BatchResult
	for s := range genVec {
		if shardDown != nil && shardDown[s] {
			g.missing = append(g.missing, s)
			continue
		}
		sub := shardResults[s][vi]
		switch {
		case sub.Status >= 500:
			g.missing = append(g.missing, s)
			g.genVec[s] = "-"
		case sub.Status != http.StatusOK:
			if relay == nil {
				relay = &sub
			}
		default:
			g.replies[s] = shardReply{status: sub.Status, gen: genVec[s], body: sub.Body}
			g.live = append(g.live, s)
		}
	}
	sort.Ints(g.missing)
	if relay != nil {
		return server.BatchResult{Status: relay.Status, Body: relay.Body}
	}
	if len(g.live) == 0 {
		return server.BatchResult{
			Status: http.StatusServiceUnavailable,
			Body: batchErrorRaw(http.StatusServiceUnavailable,
				fmt.Errorf("all %d shards unavailable", len(genVec)),
				FedStatus{Degraded: true, MissingShards: g.missing}),
		}
	}
	v, err := plan.merge(g)
	if err != nil {
		return server.BatchResult{Status: http.StatusInternalServerError, Body: batchErrorRaw(http.StatusInternalServerError, err, g.fedStatus())}
	}
	body, err := json.Marshal(v)
	if err != nil {
		return server.BatchResult{Status: http.StatusInternalServerError, Body: batchErrorRaw(http.StatusInternalServerError, err, g.fedStatus())}
	}
	// Only fully-merged sub-results over the full fleet are cacheable —
	// and they are exactly the bytes the single GET path would serve.
	if full && len(g.missing) == 0 {
		c.cache.put(plan.key, vec, &server.CachedBody{Plain: append(append([]byte{}, body...), '\n')})
	}
	return server.BatchResult{Status: http.StatusOK, Body: body}
}
