package fed

import (
	"bytes"
	"compress/gzip"
	"io"
	"net/http"
	"net/url"
	"testing"

	"bivoc/internal/mining"
	"bivoc/internal/server"
)

// TestFedGzipNegotiation pins response compression on the coordinator:
// a gzip-accepting client gets a gzip body whose decompressed bytes are
// byte-identical to the plain response, both on a fresh scatter and on
// a result-cache replay, and coordinator errors stay plain.
func TestFedGzipNegotiation(t *testing.T) {
	docs := testDocs(120)
	const shards = 2
	var servers []*server.Server
	for i := 0; i < shards; i++ {
		servers = append(servers, startShard(t, docs, i, shards, server.Config{Addr: "127.0.0.1:0"}))
	}
	waitIngestDone(t, servers...)
	c := startCoordinator(t, Config{Addr: "127.0.0.1:0", Shards: shardAddrs(servers)})
	base := "http://" + c.Addr()

	rawGet := func(rawurl, acceptEncoding string) (*http.Response, []byte) {
		t.Helper()
		req, err := http.NewRequest("GET", rawurl, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Accept-Encoding", acceptEncoding)
		resp, err := testClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	big := "/v1/associate?" + url.Values{
		"row": {mining.ConceptDim("topic", "billing").Label(), mining.ConceptDim("topic", "coverage").Label()},
		"col": {mining.FieldDim("outcome", "reservation").Label(), mining.FieldDim("outcome", "unbooked").Label()},
	}.Encode()

	plainResp, plain := rawGet(base+big, "identity")
	if plainResp.StatusCode != 200 || plainResp.Header.Get("Content-Encoding") != "" {
		t.Fatalf("identity request: status %d, Content-Encoding %q", plainResp.StatusCode, plainResp.Header.Get("Content-Encoding"))
	}
	if len(plain) < server.GzipMinSize {
		t.Fatalf("test body is %d bytes — too small to exercise compression", len(plain))
	}

	// Second fetch is a result-cache hit (same trusted generation
	// vector); it must negotiate gzip from the cached body.
	zResp, zBody := rawGet(base+big, "gzip")
	if zResp.Header.Get("Content-Encoding") != "gzip" {
		t.Fatalf("gzip request answered with Content-Encoding %q", zResp.Header.Get("Content-Encoding"))
	}
	zr, err := gzip.NewReader(bytes.NewReader(zBody))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plain) {
		t.Errorf("decompressed coordinator body drifted:\n gz    %s\n plain %s", got, plain)
	}

	// Coordinator errors stay plain.
	errResp, _ := rawGet(base+"/v1/count?dim=nope%5Bmissing", "gzip")
	if errResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query answered %d", errResp.StatusCode)
	}
	if errResp.Header.Get("Content-Encoding") != "" {
		t.Errorf("coordinator error was %s-encoded", errResp.Header.Get("Content-Encoding"))
	}
}
