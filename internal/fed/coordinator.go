package fed

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bivoc/internal/server"
)

// Config assembles a Coordinator.
type Config struct {
	// Addr is the TCP listen address ("127.0.0.1:8080"; ":0" picks a
	// free port, readable from Coordinator.Addr after Start).
	Addr string
	// Shards are the base URLs of the shard servers, in shard order
	// ("http://127.0.0.1:7001"). The order is part of the placement
	// contract: shard i must serve the documents ShardOf assigns to i
	// out of len(Shards). Required, at least one.
	Shards []string
	// ShardTimeout bounds each per-shard request of a scatter (default
	// 5s). A shard that exceeds it is treated as down for that query.
	ShardTimeout time.Duration
	// MaxFanout caps how many shard requests one scatter runs
	// concurrently (default: all shards at once).
	MaxFanout int
	// Confidence is the default association confidence when the query
	// does not pass one (default 0.95, mirroring the shard servers).
	Confidence float64
	// AssociateWorkers caps the workers finalizing one association
	// table (0 = GOMAXPROCS).
	AssociateWorkers int
	// DrainTimeout bounds the graceful drain in Run (default 5s).
	DrainTimeout time.Duration
	// Client issues the shard requests (default: a dedicated pooled
	// client).
	Client *http.Client
	// CacheSize bounds the coordinator's generation-vector result cache
	// (entries). Default 256; negative disables coordinator caching.
	CacheSize int
	// CacheTTL bounds how long a scatter-observed generation vector
	// stays trusted for cache hits (default 1s). A smaller TTL trades
	// hit rate for tighter staleness under concurrent ingest; sealed
	// fleets never advance, so the only cost of the TTL there is one
	// refreshing scatter per quiet period.
	CacheTTL time.Duration
	// ReadHeaderTimeout / ReadTimeout / MaxHeaderBytes harden the
	// coordinator's http.Server exactly like the shard daemon's
	// (defaults 5s / 60s / 1 MiB; negative disables).
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	MaxHeaderBytes    int
}

func (c Config) shardTimeout() time.Duration {
	if c.ShardTimeout <= 0 {
		return 5 * time.Second
	}
	return c.ShardTimeout
}

func (c Config) maxFanout() int {
	if c.MaxFanout <= 0 || c.MaxFanout > len(c.Shards) {
		return len(c.Shards)
	}
	return c.MaxFanout
}

func (c Config) confidence() float64 {
	if c.Confidence <= 0 || c.Confidence >= 1 {
		return 0.95
	}
	return c.Confidence
}

func (c Config) drainTimeout() time.Duration {
	if c.DrainTimeout <= 0 {
		return 5 * time.Second
	}
	return c.DrainTimeout
}

func (c Config) cacheSize() int {
	if c.CacheSize == 0 {
		return 256
	}
	return c.CacheSize
}

func (c Config) cacheTTL() time.Duration {
	if c.CacheTTL <= 0 {
		return time.Second
	}
	return c.CacheTTL
}

func (c Config) readHeaderTimeout() time.Duration {
	if c.ReadHeaderTimeout == 0 {
		return 5 * time.Second
	}
	if c.ReadHeaderTimeout < 0 {
		return 0
	}
	return c.ReadHeaderTimeout
}

func (c Config) readTimeout() time.Duration {
	if c.ReadTimeout == 0 {
		return 60 * time.Second
	}
	if c.ReadTimeout < 0 {
		return 0
	}
	return c.ReadTimeout
}

func (c Config) maxHeaderBytes() int {
	if c.MaxHeaderBytes == 0 {
		return 1 << 20
	}
	if c.MaxHeaderBytes < 0 {
		return 0
	}
	return c.MaxHeaderBytes
}

// Coordinator serves the /v1 API by scattering every query to all
// shards and gathering on integer marginals. It holds no index of its
// own and no per-shard state between requests — a shard that comes back
// is answering queries again on its first healthy response, without any
// coordinator restart or rejoin step.
type Coordinator struct {
	cfg    Config
	client *http.Client
	mux    http.Handler
	cache  *resultCache
	slo    *server.SLORecorder

	started   atomic.Bool
	lifeMu    sync.Mutex
	ln        net.Listener
	hs        *http.Server
	serveDone chan struct{}
	serveErr  error
	errMu     sync.Mutex
}

// NewCoordinator validates the config and builds a coordinator.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("fed: Config.Shards is required")
	}
	for i, s := range cfg.Shards {
		if !strings.HasPrefix(s, "http://") && !strings.HasPrefix(s, "https://") {
			return nil, fmt.Errorf("fed: shard %d address %q must be a base URL", i, s)
		}
	}
	c := &Coordinator{
		cfg:       cfg,
		client:    cfg.Client,
		cache:     newResultCache(cfg.cacheSize(), cfg.cacheTTL()),
		slo:       server.NewSLORecorder(),
		serveDone: make(chan struct{}),
	}
	if c.client == nil {
		// DisableCompression keeps shard replies plain: the coordinator
		// re-marshals merged results anyway, so decompressing scatters
		// would burn shard CPU for loopback-sized hops. Client-facing
		// coordinator responses still negotiate gzip on their own.
		c.client = &http.Client{Transport: &http.Transport{DisableCompression: true}}
	}
	c.mux = c.buildMux()
	return c, nil
}

// Start listens on Config.Addr and serves the federated API. It returns
// once the listener is live; use Addr for the bound address.
func (c *Coordinator) Start() error {
	if !c.started.CompareAndSwap(false, true) {
		return errors.New("fed: Start called twice")
	}
	addr := c.cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("fed: listen %s: %w", addr, err)
	}
	hs := &http.Server{Handler: c.mux}
	server.HardenHTTPServer(hs, c.cfg.readHeaderTimeout(), c.cfg.readTimeout(), c.cfg.maxHeaderBytes())
	c.lifeMu.Lock()
	c.ln = ln
	c.hs = hs
	c.lifeMu.Unlock()
	go func() {
		defer close(c.serveDone)
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			c.errMu.Lock()
			c.serveErr = err
			c.errMu.Unlock()
		}
	}()
	return nil
}

// Addr returns the bound listen address, or "" before Start.
func (c *Coordinator) Addr() string {
	c.lifeMu.Lock()
	defer c.lifeMu.Unlock()
	if c.ln == nil {
		return ""
	}
	return c.ln.Addr().String()
}

// Handler returns the HTTP API (also useful without Start, e.g. under
// httptest).
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Shutdown gracefully stops a Started coordinator; ctx bounds the drain
// of in-flight requests.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.lifeMu.Lock()
	hs := c.hs
	c.lifeMu.Unlock()
	if hs == nil {
		return errors.New("fed: Shutdown before Start")
	}
	err := hs.Shutdown(ctx)
	<-c.serveDone
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return errors.Join(err, c.serveErr)
}

// Run starts the coordinator and serves until ctx is cancelled, then
// drains within Config.DrainTimeout.
func (c *Coordinator) Run(ctx context.Context) error {
	if err := c.Start(); err != nil {
		return err
	}
	<-ctx.Done()
	dctx, cancel := context.WithTimeout(context.Background(), c.cfg.drainTimeout())
	defer cancel()
	return c.Shutdown(dctx)
}

// shardReply is one shard's answer to a scatter: an HTTP response
// (status, generation header, body) or a transport error.
type shardReply struct {
	status int
	gen    string
	body   []byte
	err    error
}

// down reports whether this reply means the shard is unusable for the
// query: unreachable, timed out, or failing internally (5xx). Client
// errors (4xx) are not down — they are the query's fault and are
// relayed.
func (r shardReply) down() bool {
	return r.err != nil || r.status >= 500
}

// scatter issues GET <shard><path>?<rawQuery> to every shard
// concurrently — at most MaxFanout in flight, each bounded by
// ShardTimeout — and returns one reply per shard, in shard order.
func (c *Coordinator) scatter(ctx context.Context, path, rawQuery string) []shardReply {
	replies := make([]shardReply, len(c.cfg.Shards))
	sem := make(chan struct{}, c.cfg.maxFanout())
	var wg sync.WaitGroup
	for i, base := range c.cfg.Shards {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			replies[i] = c.fetchShard(ctx, base+path+"?"+rawQuery)
		}(i, base)
	}
	wg.Wait()
	return replies
}

// fetchShard performs one bounded shard request.
func (c *Coordinator) fetchShard(ctx context.Context, url string) shardReply {
	return c.doShard(ctx, http.MethodGet, url, nil)
}

// scatterPost POSTs the same JSON payload to <shard><path> on every
// shard — the batch fan-out — under the same MaxFanout semaphore and
// per-shard timeout as scatter.
func (c *Coordinator) scatterPost(ctx context.Context, path string, payload []byte) []shardReply {
	replies := make([]shardReply, len(c.cfg.Shards))
	sem := make(chan struct{}, c.cfg.maxFanout())
	var wg sync.WaitGroup
	for i, base := range c.cfg.Shards {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			replies[i] = c.doShard(ctx, http.MethodPost, base+path, payload)
		}(i, base)
	}
	wg.Wait()
	return replies
}

// doShard performs one bounded shard request (GET with a nil payload,
// POST with a JSON body otherwise).
func (c *Coordinator) doShard(ctx context.Context, method, url string, payload []byte) shardReply {
	sctx, cancel := context.WithTimeout(ctx, c.cfg.shardTimeout())
	defer cancel()
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(sctx, method, url, rd)
	if err != nil {
		return shardReply{err: err}
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return shardReply{err: err}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return shardReply{err: err}
	}
	return shardReply{status: resp.StatusCode, gen: resp.Header.Get(server.GenerationHeader), body: body}
}
