package fed

import (
	"container/list"
	"strings"
	"sync"
	"time"

	"bivoc/internal/server"
)

// resultCache is the coordinator-side result cache, keyed on (canonical
// query key, generation vector). The shards' own caches live behind a
// scatter (~1 RTT per query, BENCH_fed.json); this one sits in front of
// it, so a hit skips the scatter entirely.
//
// Correctness rests on the generation vector. A cached body was merged
// from one exact per-shard generation vector; it may be served again
// only while that vector is still what the fleet would answer with.
// The coordinator holds no shard state, so it learns the current vector
// the only way it can — from scatters: every fully-live scatter result
// (no "-" gaps) refreshes the trusted vector with a TTL. A hit requires
// the entry's vector to equal the trusted vector and the trust to be
// fresh; any shard's generation advancing changes the observed vector
// and every older entry stops matching — natural wholesale
// invalidation, exactly like the snapshot swap on a single node.
// Degraded vectors are never trusted and never cached: a body merged
// from a partial fleet must not outlive the partiality that produced
// it.
//
// The TTL (Config.CacheTTL, default 1s) bounds staleness between
// scatters: after a quiet period the first query always scatters,
// re-observing the vector, and only then do hits resume. Equivalence
// suites pin that a hit serves bytes identical to an uncached scatter.
type resultCache struct {
	mu  sync.Mutex
	cap int
	ttl time.Duration
	ll  *list.List // front = most recently used
	m   map[string]*list.Element

	trusted   string // last fully-live generation vector, comma-joined
	trustedAt time.Time

	hits, misses uint64
}

type resultEntry struct {
	key  string
	vec  string // comma-joined generation vector the body was merged from
	body *server.CachedBody
}

// newResultCache returns a cache holding at most capacity entries
// (capacity < 1 disables caching entirely).
func newResultCache(capacity int, ttl time.Duration) *resultCache {
	return &resultCache{cap: capacity, ttl: ttl, ll: list.New(), m: make(map[string]*list.Element)}
}

// fullVec reports whether vec has an entry from every shard (no "-"
// gaps) — the precondition for trusting or caching anything.
func fullVec(vec []string) bool {
	for _, g := range vec {
		if g == "-" {
			return false
		}
	}
	return len(vec) > 0
}

// observe records a fully-live generation vector seen by a scatter,
// refreshing the trust window. Called with the comma-joined vector.
func (c *resultCache) observe(vec string, now time.Time) {
	if c.cap < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.trusted = vec
	c.trustedAt = now
}

// get returns the cached body for key if its generation vector matches
// the trusted vector and the trust is fresh. The returned vec is the
// vector the body was merged from (== the trusted vector on a hit).
func (c *resultCache) get(key string, now time.Time) (body *server.CachedBody, vec string, ok bool) {
	if c.cap < 1 {
		return nil, "", false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.trusted == "" || now.Sub(c.trustedAt) > c.ttl {
		c.misses++
		return nil, "", false
	}
	el, found := c.m[key]
	if !found || el.Value.(*resultEntry).vec != c.trusted {
		c.misses++
		return nil, "", false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return el.Value.(*resultEntry).body, c.trusted, true
}

// put stores a body merged from the given fully-live vector, evicting
// the least recently used entry when full.
func (c *resultCache) put(key, vec string, body *server.CachedBody) {
	if c.cap < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*resultEntry)
		e.vec, e.body = vec, body
		return
	}
	c.m[key] = c.ll.PushFront(&resultEntry{key: key, vec: vec, body: body})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*resultEntry).key)
	}
}

// stats returns the cumulative hit/miss counters and current size.
func (c *resultCache) stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}

// joinVec renders a generation vector in header form.
func joinVec(vec []string) string { return strings.Join(vec, ",") }
