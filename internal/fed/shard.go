// Package fed federates N bivocd-style shard servers behind one
// coordinator serving the same /v1 API. Documents are hash-partitioned
// by ID across shards (ShardOf), so shard corpora are disjoint and
// every §IV.D analytics operation merges exactly on integer marginals
// (internal/mining/merge.go): the coordinator scatters each query to
// all shards concurrently, sums counts, merges marginals, and runs the
// float pipeline once over the merged counts — responses are
// byte-identical to a single-node server over the union corpus.
package fed

import (
	"context"

	"bivoc/internal/mining"
	"bivoc/internal/server"
)

// FNV-1a: tiny, allocation-free, and stable across processes — every
// ingester and the coordinator must agree on document placement forever,
// so the function is part of the wire contract.
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// ShardOf maps a document ID onto one of shards partitions (FNV-1a mod
// shards). All shard counts ≤ 1 collapse to shard 0.
func ShardOf(id string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := uint32(fnvOffset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= fnvPrime32
	}
	return int(h % uint32(shards))
}

// PartitionSource restricts a document source to the documents owned by
// one shard: every document whose ShardOf placement is not shard is
// dropped before it reaches the index. Wrapping the source this way
// lets every shard ingest from the same upstream feed while holding a
// disjoint partition.
func PartitionSource(src server.DocSource, shard, shards int) server.DocSource {
	return func(ctx context.Context, already func(string) bool, emit func(mining.Document) error) error {
		return src(ctx, already, func(d mining.Document) error {
			if ShardOf(d.ID, shards) != shard {
				return nil
			}
			return emit(d)
		})
	}
}
