package fed

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"bivoc/internal/mining"
	"bivoc/internal/server"
)

// Federated response types: each embeds the single-node wire schema and
// appends the federation status. Both FedStatus fields are omitted when
// every shard answered, so a healthy federated response marshals
// byte-identically to the single-node response over the same corpus —
// the byte-identity contract the equivalence suites pin.
//
// The body `generation` is the minimum generation across live shards (a
// conservative "every shard reflects at least this much ingest"); the
// full per-shard vector rides the X-Bivoc-Generation header,
// comma-joined in shard order with "-" for shards that did not answer.

// FedStatus reports partial-failure degradation: Degraded is set and
// MissingShards lists the shard indexes (in shard order) whose answers
// are absent from this response. Absent entirely on healthy responses.
type FedStatus struct {
	Degraded      bool  `json:"degraded,omitempty"`
	MissingShards []int `json:"missing_shards,omitempty"`
}

// CountResponse answers /v1/count on the coordinator.
type CountResponse struct {
	server.CountResponse
	FedStatus
}

// AssociateResponse answers /v1/associate on the coordinator.
type AssociateResponse struct {
	server.AssociateResponse
	FedStatus
}

// RelFreqResponse answers /v1/relfreq on the coordinator.
type RelFreqResponse struct {
	server.RelFreqResponse
	FedStatus
}

// DrillDownResponse answers /v1/drilldown on the coordinator.
type DrillDownResponse struct {
	server.DrillDownResponse
	FedStatus
}

// TrendResponse answers /v1/trend on the coordinator.
type TrendResponse struct {
	server.TrendResponse
	FedStatus
}

// ConceptsResponse answers /v1/concepts on the coordinator.
type ConceptsResponse struct {
	server.ConceptsResponse
	FedStatus
}

// ErrorResponse is the body of coordinator-originated errors (shard
// client errors are relayed verbatim instead).
type ErrorResponse struct {
	server.ErrorResponse
	FedStatus
}

// ShardHealth is one shard's line in the federated /healthz.
type ShardHealth struct {
	Shard      int    `json:"shard"`
	Addr       string `json:"addr"`
	Status     string `json:"status"` // ok | degraded | unreachable
	Generation uint64 `json:"generation,omitempty"`
	Sealed     bool   `json:"sealed,omitempty"`
	Docs       int    `json:"docs,omitempty"`
	Error      string `json:"error,omitempty"`
}

// HealthResponse answers /healthz on the coordinator: always 200 while
// the coordinator serves; shard loss degrades, it does not kill.
type HealthResponse struct {
	Status string        `json:"status"` // ok | degraded
	Docs   int           `json:"docs"`
	Shards []ShardHealth `json:"shards"`
	FedStatus
}

// ShardStatsz is one shard's section of the federated /statsz.
type ShardStatsz struct {
	Shard int                    `json:"shard"`
	Addr  string                 `json:"addr"`
	Error string                 `json:"error,omitempty"`
	Stats *server.StatszResponse `json:"stats,omitempty"`
}

// StatszResponse answers /statsz on the coordinator: fleet-wide sums
// plus every shard's own stats section. Cache sums the shard snapshot
// caches; FedCache is the coordinator's own generation-vector result
// cache. Serving is the coordinator's own SLO section; ShardServing is
// the element-wise sum of every live shard's serving section.
type StatszResponse struct {
	Docs         int                   `json:"docs"`
	Segments     int                   `json:"segments"`
	Generations  []string              `json:"generations"`
	Cache        server.CacheStatsJSON `json:"cache"`
	FedCache     server.CacheStatsJSON `json:"fed_cache"`
	Serving      server.ServingJSON    `json:"serving"`
	ShardServing server.ServingJSON    `json:"shard_serving"`
	Shards       []ShardStatsz         `json:"shards"`
	FedStatus
}

// buildMux wires the coordinator routes. The wrapper stamps a
// no-information generation vector ("-" per shard) so even locally
// rejected requests and 404s carry the header; scattered handlers
// overwrite it with the real per-shard vector. Every route runs through
// the SLO recorder feeding /statsz's serving section.
func (c *Coordinator) buildMux() http.Handler {
	mux := http.NewServeMux()
	route := func(method, path string, h http.HandlerFunc) {
		mux.HandleFunc(method+" "+path, c.slo.Wrap(path, h))
	}
	route("GET", "/v1/count", c.handleCount)
	route("GET", "/v1/associate", c.handleAssociate)
	route("GET", "/v1/relfreq", c.handleRelFreq)
	route("GET", "/v1/drilldown", c.handleDrillDown)
	route("GET", "/v1/trend", c.handleTrend)
	route("GET", "/v1/concepts", c.handleConcepts)
	route("POST", "/v1/batch", c.handleBatch)
	route("GET", "/healthz", c.handleHealthz)
	route("GET", "/statsz", c.handleStatsz)
	blank := make([]string, len(c.cfg.Shards))
	for i := range blank {
		blank[i] = "-"
	}
	blankVec := strings.Join(blank, ",")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(server.GenerationHeader, blankVec)
		mux.ServeHTTP(w, r)
	})
}

// gather is one scatter's classified result set.
type gather struct {
	replies []shardReply
	live    []int    // shard indexes that answered 200
	missing []int    // shard indexes that are down for this query
	genVec  []string // per-shard generation, "-" for missing
}

func (g *gather) fedStatus() FedStatus {
	if len(g.missing) == 0 {
		return FedStatus{}
	}
	return FedStatus{Degraded: true, MissingShards: g.missing}
}

// genAgg folds live shards' body generations into the conservative
// federated (generation, sealed) pair: minimum generation, sealed only
// if every live shard is sealed.
type genAgg struct {
	gen    uint64
	sealed bool
	any    bool
}

func (a *genAgg) add(gen uint64, sealed bool) {
	if !a.any {
		a.gen, a.sealed, a.any = gen, sealed, true
		return
	}
	if gen < a.gen {
		a.gen = gen
	}
	a.sealed = a.sealed && sealed
}

// fanout scatters path?rawQuery to every shard and classifies the
// replies. On a shard client error (4xx) it relays that shard's
// structured error verbatim; with zero live shards it answers 503
// degraded. In both cases the response is written and ok is false.
func (c *Coordinator) fanout(w http.ResponseWriter, r *http.Request, path, rawQuery string) (g *gather, ok bool) {
	replies := c.scatter(r.Context(), path, rawQuery)
	g = &gather{replies: replies, genVec: make([]string, len(replies))}
	var relay *shardReply
	for i := range replies {
		rep := &replies[i]
		switch {
		case rep.down():
			g.missing = append(g.missing, i)
			g.genVec[i] = "-"
		case rep.status != http.StatusOK:
			// The query is the client's fault the same way on every
			// shard; remember the first structured error to relay.
			g.genVec[i] = rep.gen
			if relay == nil {
				relay = rep
			}
		default:
			g.live = append(g.live, i)
			g.genVec[i] = rep.gen
		}
	}
	if relay != nil {
		w.Header().Set(server.GenerationHeader, strings.Join(g.genVec, ","))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(relay.status)
		w.Write(relay.body)
		return g, false
	}
	if len(g.live) == 0 {
		c.writeError(w, g.genVec, http.StatusServiceUnavailable,
			fmt.Errorf("all %d shards unavailable", len(replies)),
			FedStatus{Degraded: true, MissingShards: g.missing})
		return g, false
	}
	return g, true
}

// writeOK writes a merged 200 response with the gathered generation
// vector in the header, gzip-encoded when the client negotiated it.
func (c *Coordinator) writeOK(w http.ResponseWriter, r *http.Request, g *gather, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		c.writeError(w, g.genVec, http.StatusInternalServerError, err, g.fedStatus())
		return
	}
	w.Header().Set(server.GenerationHeader, strings.Join(g.genVec, ","))
	server.WriteJSONBody(w, r, http.StatusOK, &server.CachedBody{Plain: append(body, '\n')})
}

// writeError writes a coordinator-originated structured error. A nil
// genVec leaves the wrapper's no-information header in place (local
// parse errors never scattered).
func (c *Coordinator) writeError(w http.ResponseWriter, genVec []string, status int, err error, fs FedStatus) {
	if genVec != nil {
		w.Header().Set(server.GenerationHeader, strings.Join(genVec, ","))
	}
	body, _ := json.Marshal(ErrorResponse{
		ErrorResponse: server.ErrorResponse{Error: err.Error(), Status: status},
		FedStatus:     fs,
	})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
}

func (c *Coordinator) badRequest(w http.ResponseWriter, err error) {
	c.writeError(w, nil, http.StatusBadRequest, err, FedStatus{})
}

// decodeLive unmarshals one live shard reply, surfacing a shard that
// violates the wire contract as a coordinator-internal error.
func decodeShard(rep shardReply, shard int, v any) error {
	if err := json.Unmarshal(rep.body, v); err != nil {
		return fmt.Errorf("shard %d: decoding response: %w", shard, err)
	}
	return nil
}

// fedPlan is one parsed, canonicalized federated query: the
// coordinator-cache key (built with server.CacheKey — the same
// canonicalization the shard snapshot caches use), the shard-side
// request to scatter, and the merge that folds the gathered replies
// into the federated response value. Exactly one prepare* function per
// endpoint, shared by the GET handler and /v1/batch.
type fedPlan struct {
	key        string
	shardPath  string
	shardQuery url.Values
	merge      func(g *gather) (any, error)
}

// batchPlans dispatches a /v1/batch sub-query endpoint name to its
// prepare function — the coordinator's public endpoints only (the
// marginal endpoints are shard-side wire, not federated API).
var batchPlans = map[string]func(*Coordinator, url.Values) (fedPlan, error){
	"count":     (*Coordinator).prepareCount,
	"associate": (*Coordinator).prepareAssociate,
	"relfreq":   (*Coordinator).prepareRelFreq,
	"drilldown": (*Coordinator).prepareDrillDown,
	"trend":     (*Coordinator).prepareTrend,
	"concepts":  (*Coordinator).prepareConcepts,
}

// respondPlanned is the shared federated query path: parse, consult the
// generation-vector result cache — a hit serves the previously merged
// bytes without touching any shard — and on a miss scatter, merge,
// write, and (when every shard answered) observe the fresh vector and
// memoize the body under it.
func (c *Coordinator) respondPlanned(w http.ResponseWriter, r *http.Request, prep func(url.Values) (fedPlan, error)) {
	plan, err := prep(r.URL.Query())
	if err != nil {
		c.badRequest(w, err)
		return
	}
	if cb, vec, ok := c.cache.get(plan.key, time.Now()); ok {
		w.Header().Set(server.GenerationHeader, vec)
		server.WriteJSONBody(w, r, http.StatusOK, cb)
		return
	}
	g, ok := c.fanout(w, r, plan.shardPath, plan.shardQuery.Encode())
	if !ok {
		return
	}
	v, err := plan.merge(g)
	if err != nil {
		c.writeError(w, g.genVec, http.StatusInternalServerError, err, g.fedStatus())
		return
	}
	body, err := json.Marshal(v)
	if err != nil {
		c.writeError(w, g.genVec, http.StatusInternalServerError, err, g.fedStatus())
		return
	}
	cb := &server.CachedBody{Plain: append(body, '\n')}
	vec := joinVec(g.genVec)
	if fullVec(g.genVec) {
		c.cache.observe(vec, time.Now())
		// The CachedBody is shared with the cache, so a later
		// gzip-accepting replay reuses the compression paid here (or
		// pays it once, whichever request comes first).
		c.cache.put(plan.key, vec, cb)
	}
	w.Header().Set(server.GenerationHeader, vec)
	server.WriteJSONBody(w, r, http.StatusOK, cb)
}

// GET /v1/count — counts and totals sum across disjoint shards.
func (c *Coordinator) prepareCount(q url.Values) (fedPlan, error) {
	_, labels, err := server.ParseDimParams("dim", q["dim"])
	if err != nil {
		return fedPlan{}, err
	}
	return fedPlan{
		key:        server.CacheKey("count", labels...),
		shardPath:  "/v1/count",
		shardQuery: url.Values{"dim": q["dim"]},
		merge: func(g *gather) (any, error) {
			out := CountResponse{
				CountResponse: server.CountResponse{Dims: labels, Counts: make([]int, len(labels))},
				FedStatus:     g.fedStatus(),
			}
			var agg genAgg
			for _, i := range g.live {
				var sr server.CountResponse
				if err := decodeShard(g.replies[i], i, &sr); err != nil {
					return nil, err
				}
				out.Total += sr.Total
				for j := 0; j < len(out.Counts) && j < len(sr.Counts); j++ {
					out.Counts[j] += sr.Counts[j]
				}
				agg.add(sr.Generation, sr.Sealed)
			}
			out.Generation, out.Sealed = agg.gen, agg.sealed
			return out, nil
		},
	}, nil
}

func (c *Coordinator) handleCount(w http.ResponseWriter, r *http.Request) {
	c.respondPlanned(w, r, c.prepareCount)
}

// GET /v1/associate — shards return integer marginals
// (/v1/marginals/assoc); the coordinator merges them by addition and
// runs the Wilson float pipeline exactly once over the merged counts.
func (c *Coordinator) prepareAssociate(q url.Values) (fedPlan, error) {
	rows, rowLabels, err := server.ParseDimParams("row", q["row"])
	if err != nil {
		return fedPlan{}, err
	}
	cols, colLabels, err := server.ParseDimParams("col", q["col"])
	if err != nil {
		return fedPlan{}, err
	}
	confidence := c.cfg.confidence()
	if cs := q.Get("confidence"); cs != "" {
		cv, err := strconv.ParseFloat(cs, 64)
		if err != nil || cv <= 0 || cv >= 1 {
			return fedPlan{}, fmt.Errorf("confidence must be a number in (0,1), got %q", cs)
		}
		confidence = cv
	}
	return fedPlan{
		key: server.CacheKey("associate",
			strings.Join(rowLabels, "\x01"),
			strings.Join(colLabels, "\x01"),
			strconv.FormatFloat(confidence, 'g', -1, 64)),
		shardPath:  "/v1/marginals/assoc",
		shardQuery: url.Values{"row": q["row"], "col": q["col"]},
		merge: func(g *gather) (any, error) {
			parts := make([]mining.AssocMarginals, 0, len(g.live))
			var agg genAgg
			for _, i := range g.live {
				var sr server.AssocMarginalsResponse
				if err := decodeShard(g.replies[i], i, &sr); err != nil {
					return nil, err
				}
				parts = append(parts, sr.Marginals)
				agg.add(sr.Generation, sr.Sealed)
			}
			tbl := mining.FinalizeAssoc(rows, cols, confidence, c.cfg.AssociateWorkers,
				mining.MergeAssocMarginals(parts...))
			return AssociateResponse{
				AssociateResponse: server.AssociateResponse{
					Generation: agg.gen,
					Sealed:     agg.sealed,
					Confidence: tbl.Confidence,
					Rows:       rowLabels,
					Cols:       colLabels,
					Cells:      server.AssocCellsJSON(tbl),
				},
				FedStatus: g.fedStatus(),
			}, nil
		},
	}, nil
}

func (c *Coordinator) handleAssociate(w http.ResponseWriter, r *http.Request) {
	c.respondPlanned(w, r, c.prepareAssociate)
}

// GET /v1/relfreq — merge integer relevancy marginals, then run the
// ratio math once over the merged counts.
func (c *Coordinator) prepareRelFreq(q url.Values) (fedPlan, error) {
	category := q.Get("category")
	if category == "" {
		return fedPlan{}, fmt.Errorf("missing required parameter %q (a concept category)", "category")
	}
	featured, featLabels, err := server.ParseDimParams("featured", q["featured"])
	if err != nil {
		return fedPlan{}, err
	}
	if len(featured) > 1 {
		return fedPlan{}, fmt.Errorf("featured must be a single dimension (use a ∧-conjunction for compound subsets)")
	}
	return fedPlan{
		key:        server.CacheKey("relfreq", category, featLabels[0]),
		shardPath:  "/v1/marginals/relfreq",
		shardQuery: url.Values{"category": {category}, "featured": q["featured"]},
		merge: func(g *gather) (any, error) {
			parts := make([]mining.RelFreqMarginals, 0, len(g.live))
			var agg genAgg
			for _, i := range g.live {
				var sr server.RelFreqMarginalsResponse
				if err := decodeShard(g.replies[i], i, &sr); err != nil {
					return nil, err
				}
				parts = append(parts, sr.Marginals)
				agg.add(sr.Generation, sr.Sealed)
			}
			rel := mining.FinalizeRelFreq(mining.MergeRelFreqMarginals(parts...))
			return RelFreqResponse{
				RelFreqResponse: server.RelFreqResponse{
					Generation: agg.gen,
					Sealed:     agg.sealed,
					Category:   category,
					Featured:   featLabels[0],
					Rows:       server.RelevancesJSON(rel),
				},
				FedStatus: g.fedStatus(),
			}, nil
		},
	}, nil
}

func (c *Coordinator) handleRelFreq(w http.ResponseWriter, r *http.Request) {
	c.respondPlanned(w, r, c.prepareRelFreq)
}

// GET /v1/drilldown — per-shard matches concatenate and re-sort by
// document ID (IDs are unique across shards); the global top-limit is a
// subset of the union of per-shard top-limits, and Count sums the full
// per-shard cell sizes.
func (c *Coordinator) prepareDrillDown(q url.Values) (fedPlan, error) {
	rows, rowLabels, err := server.ParseDimParams("row", q["row"])
	if err != nil {
		return fedPlan{}, err
	}
	cols, colLabels, err := server.ParseDimParams("col", q["col"])
	if err != nil {
		return fedPlan{}, err
	}
	if len(rows) > 1 || len(cols) > 1 {
		return fedPlan{}, fmt.Errorf("drilldown takes exactly one row and one col dimension")
	}
	limit := 50
	if ls := q.Get("limit"); ls != "" {
		limit, err = strconv.Atoi(ls)
		if err != nil || limit < 0 {
			return fedPlan{}, fmt.Errorf("limit must be a non-negative integer, got %q", ls)
		}
	}
	return fedPlan{
		key:        server.CacheKey("drilldown", rowLabels[0], colLabels[0], strconv.Itoa(limit)),
		shardPath:  "/v1/drilldown",
		shardQuery: url.Values{"row": q["row"], "col": q["col"], "limit": {strconv.Itoa(limit)}},
		merge: func(g *gather) (any, error) {
			docs := []server.DocumentJSON{}
			count := 0
			var agg genAgg
			for _, i := range g.live {
				var sr server.DrillDownResponse
				if err := decodeShard(g.replies[i], i, &sr); err != nil {
					return nil, err
				}
				docs = append(docs, sr.Docs...)
				count += sr.Count
				agg.add(sr.Generation, sr.Sealed)
			}
			sortDocsByID(docs)
			truncated := count > limit
			if len(docs) > limit {
				docs = docs[:limit]
			}
			return DrillDownResponse{
				DrillDownResponse: server.DrillDownResponse{
					Generation: agg.gen,
					Sealed:     agg.sealed,
					Row:        rowLabels[0],
					Col:        colLabels[0],
					Count:      count,
					Truncated:  truncated,
					Docs:       docs,
				},
				FedStatus: g.fedStatus(),
			}, nil
		},
	}, nil
}

func (c *Coordinator) handleDrillDown(w http.ResponseWriter, r *http.Request) {
	c.respondPlanned(w, r, c.prepareDrillDown)
}

func sortDocsByID(docs []server.DocumentJSON) {
	// Insertion sort over already-sorted per-shard runs would do, but
	// the slice is at most limit×shards long; keep it simple.
	for i := 1; i < len(docs); i++ {
		for j := i; j > 0 && docs[j].ID < docs[j-1].ID; j-- {
			docs[j], docs[j-1] = docs[j-1], docs[j]
		}
	}
}

// GET /v1/trend — per-shard time buckets sum; the slope is fitted once
// over the merged series (identical to a single node's fit, because the
// merged buckets are identical).
func (c *Coordinator) prepareTrend(q url.Values) (fedPlan, error) {
	dims, labels, err := server.ParseDimParams("dim", q["dim"])
	if err != nil {
		return fedPlan{}, err
	}
	if len(dims) > 1 {
		return fedPlan{}, fmt.Errorf("trend takes exactly one dim")
	}
	return fedPlan{
		key:        server.CacheKey("trend", labels[0]),
		shardPath:  "/v1/trend",
		shardQuery: url.Values{"dim": q["dim"]},
		merge: func(g *gather) (any, error) {
			parts := make([][]mining.TrendPoint, 0, len(g.live))
			var agg genAgg
			for _, i := range g.live {
				var sr server.TrendResponse
				if err := decodeShard(g.replies[i], i, &sr); err != nil {
					return nil, err
				}
				pts := make([]mining.TrendPoint, len(sr.Points))
				for k, p := range sr.Points {
					pts[k] = mining.TrendPoint{Time: p.Time, Count: p.Count}
				}
				parts = append(parts, pts)
				agg.add(sr.Generation, sr.Sealed)
			}
			merged := mining.MergeTrends(parts...)
			return TrendResponse{
				TrendResponse: server.TrendResponse{
					Generation: agg.gen,
					Sealed:     agg.sealed,
					Dim:        labels[0],
					Points:     server.TrendPointsJSON(merged),
					Slope:      mining.TrendSlope(merged),
				},
				FedStatus: g.fedStatus(),
			}, nil
		},
	}, nil
}

func (c *Coordinator) handleTrend(w http.ResponseWriter, r *http.Request) {
	c.respondPlanned(w, r, c.prepareTrend)
}

// GET /v1/concepts — category vocabularies merge on document frequency
// (shards return counted marginals); field vocabularies are order-free
// string unions of the public endpoint's values.
func (c *Coordinator) prepareConcepts(q url.Values) (fedPlan, error) {
	category, field := q.Get("category"), q.Get("field")
	if (category == "") == (field == "") {
		return fedPlan{}, fmt.Errorf("pass exactly one of %q or %q", "category", "field")
	}
	finish := func(g *gather, agg genAgg, values []string) any {
		if values == nil {
			values = []string{}
		}
		return ConceptsResponse{
			ConceptsResponse: server.ConceptsResponse{
				Generation: agg.gen,
				Sealed:     agg.sealed,
				Category:   category,
				Field:      field,
				Values:     values,
			},
			FedStatus: g.fedStatus(),
		}
	}
	plan := fedPlan{key: server.CacheKey("concepts", category, field)}
	if category != "" {
		plan.shardPath = "/v1/marginals/concepts"
		plan.shardQuery = url.Values{"category": {category}}
		plan.merge = func(g *gather) (any, error) {
			parts := make([][]mining.ConceptCount, 0, len(g.live))
			var agg genAgg
			for _, i := range g.live {
				var sr server.ConceptDFResponse
				if err := decodeShard(g.replies[i], i, &sr); err != nil {
					return nil, err
				}
				parts = append(parts, sr.Concepts)
				agg.add(sr.Generation, sr.Sealed)
			}
			return finish(g, agg, mining.ConceptNames(mining.MergeConceptCounts(parts...))), nil
		}
	} else {
		plan.shardPath = "/v1/concepts"
		plan.shardQuery = url.Values{"field": {field}}
		plan.merge = func(g *gather) (any, error) {
			parts := make([][]string, 0, len(g.live))
			var agg genAgg
			for _, i := range g.live {
				var sr server.ConceptsResponse
				if err := decodeShard(g.replies[i], i, &sr); err != nil {
					return nil, err
				}
				parts = append(parts, sr.Values)
				agg.add(sr.Generation, sr.Sealed)
			}
			return finish(g, agg, mining.MergeFieldValues(parts...)), nil
		}
	}
	return plan, nil
}

func (c *Coordinator) handleConcepts(w http.ResponseWriter, r *http.Request) {
	c.respondPlanned(w, r, c.prepareConcepts)
}

// GET /healthz — always 200 while the coordinator serves; aggregates
// per-shard health and degrades on any unreachable or degraded shard.
func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	g, _ := c.gatherHealth(r)
	resp := HealthResponse{Status: "ok", Shards: make([]ShardHealth, len(c.cfg.Shards)), FedStatus: g.fedStatus()}
	if resp.Degraded {
		resp.Status = "degraded"
	}
	for i, addr := range c.cfg.Shards {
		sh := ShardHealth{Shard: i, Addr: addr}
		rep := g.replies[i]
		if rep.down() || rep.status != http.StatusOK {
			sh.Status = "unreachable"
			if rep.err != nil {
				sh.Error = rep.err.Error()
			} else {
				sh.Error = fmt.Sprintf("status %d", rep.status)
			}
			resp.Shards[i] = sh
			continue
		}
		var hr server.HealthResponse
		if err := decodeShard(rep, i, &hr); err != nil {
			sh.Status = "unreachable"
			sh.Error = err.Error()
			resp.Shards[i] = sh
			continue
		}
		sh.Status = hr.Status
		sh.Generation = hr.Generation
		sh.Sealed = hr.Sealed
		sh.Docs = hr.Docs
		if hr.IngestError != "" {
			sh.Error = hr.IngestError
		} else if hr.PersistError != "" {
			sh.Error = hr.PersistError
		}
		resp.Docs += hr.Docs
		if hr.Status != "ok" {
			resp.Status = "degraded"
		}
		resp.Shards[i] = sh
	}
	c.writeOK(w, r, g, resp)
}

// GET /statsz — fleet-wide document/segment/cache sums plus each
// shard's own stats section verbatim.
func (c *Coordinator) handleStatsz(w http.ResponseWriter, r *http.Request) {
	g, _ := c.gatherStatsz(r)
	fedHits, fedMisses, fedSize := c.cache.stats()
	resp := StatszResponse{
		Generations: g.genVec,
		FedCache: server.CacheStatsJSON{
			Hits:     fedHits,
			Misses:   fedMisses,
			Size:     fedSize,
			Capacity: c.cfg.cacheSize(),
		},
		Serving:   c.slo.Snapshot(),
		Shards:    make([]ShardStatsz, len(c.cfg.Shards)),
		FedStatus: g.fedStatus(),
	}
	for i, addr := range c.cfg.Shards {
		ss := ShardStatsz{Shard: i, Addr: addr}
		rep := g.replies[i]
		if rep.down() || rep.status != http.StatusOK {
			if rep.err != nil {
				ss.Error = rep.err.Error()
			} else {
				ss.Error = fmt.Sprintf("status %d", rep.status)
			}
			resp.Shards[i] = ss
			continue
		}
		var sr server.StatszResponse
		if err := decodeShard(rep, i, &sr); err != nil {
			ss.Error = err.Error()
			resp.Shards[i] = ss
			continue
		}
		resp.Docs += sr.Docs
		resp.Segments += sr.Segments.Count
		resp.Cache.Hits += sr.Cache.Hits
		resp.Cache.Misses += sr.Cache.Misses
		resp.Cache.Size += sr.Cache.Size
		resp.Cache.Capacity += sr.Cache.Capacity
		server.MergeServing(&resp.ShardServing, sr.Serving)
		ss.Stats = &sr
		resp.Shards[i] = ss
	}
	c.writeOK(w, r, g, resp)
}

// gatherHealth/gatherStatsz scatter without the fanout error shortcuts:
// introspection endpoints answer 200 regardless of shard loss.
func (c *Coordinator) gatherHealth(r *http.Request) (*gather, bool) {
	return c.classify(c.scatter(r.Context(), "/healthz", "")), true
}

func (c *Coordinator) gatherStatsz(r *http.Request) (*gather, bool) {
	return c.classify(c.scatter(r.Context(), "/statsz", "")), true
}

func (c *Coordinator) classify(replies []shardReply) *gather {
	g := &gather{replies: replies, genVec: make([]string, len(replies))}
	for i := range replies {
		rep := &replies[i]
		if rep.down() || rep.status != http.StatusOK {
			g.missing = append(g.missing, i)
			g.genVec[i] = "-"
			continue
		}
		g.live = append(g.live, i)
		g.genVec[i] = rep.gen
	}
	return g
}
