package fed

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"bivoc/internal/server"
)

// inflightTransport counts concurrent RoundTrips. RoundTrip runs inside
// the scatter semaphore, so its observed maximum is exactly the
// concurrency the coordinator allowed.
type inflightTransport struct {
	base     http.RoundTripper
	inflight atomic.Int64
	maxSeen  atomic.Int64
	total    atomic.Int64
}

func (t *inflightTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	n := t.inflight.Add(1)
	defer t.inflight.Add(-1)
	t.total.Add(1)
	for {
		m := t.maxSeen.Load()
		if n <= m || t.maxSeen.CompareAndSwap(m, n) {
			break
		}
	}
	return t.base.RoundTrip(req)
}

// TestFedMaxFanoutBoundsConcurrency pins the scatter semaphore: with
// MaxFanout 2 over six shards, at most two shard requests are ever in
// flight — measured both coordinator-side (the transport) and
// shard-side (a counting handler) — and the overlap really happens.
func TestFedMaxFanoutBoundsConcurrency(t *testing.T) {
	const shards, fanout = 6, 2
	var handlerInflight, handlerMax atomic.Int64
	counting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := handlerInflight.Add(1)
		defer handlerInflight.Add(-1)
		for {
			m := handlerMax.Load()
			if n <= m || handlerMax.CompareAndSwap(m, n) {
				break
			}
		}
		time.Sleep(30 * time.Millisecond)
		w.Header().Set(server.GenerationHeader, "1")
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"dim":["parity=even"],"count":0,"total":0,"generation":1,"sealed":true}`)
	}))
	t.Cleanup(counting.Close)

	tr := &inflightTransport{base: &http.Transport{DisableKeepAlives: true}}
	addrs := make([]string, shards)
	for i := range addrs {
		addrs[i] = counting.URL
	}
	coord := startCoordinator(t, Config{
		Shards:    addrs,
		MaxFanout: fanout,
		Client:    &http.Client{Transport: tr},
	})

	start := time.Now()
	status, _, body := get(t, "http://"+coord.Addr()+"/v1/count?dim="+url.QueryEscape("parity=even"))
	elapsed := time.Since(start)
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, body)
	}
	if got := tr.maxSeen.Load(); got > fanout {
		t.Fatalf("transport saw %d concurrent shard requests, semaphore bound is %d", got, fanout)
	}
	if got := handlerMax.Load(); got > fanout {
		t.Fatalf("shard saw %d concurrent requests, semaphore bound is %d", got, fanout)
	}
	if got := handlerMax.Load(); got < fanout {
		t.Fatalf("shard never saw %d overlapping requests (max %d) — scatter is serialized", fanout, got)
	}
	if got := tr.total.Load(); got != shards {
		t.Fatalf("scatter issued %d shard requests, want %d", got, shards)
	}
	// Six 30ms shards two at a time need at least three waves.
	if elapsed < 80*time.Millisecond {
		t.Fatalf("scatter finished in %v — faster than MaxFanout %d allows", elapsed, fanout)
	}
}

// TestFedMaxFanoutBoundsSlowShards pins the semaphore under timeouts: a
// hung shard holds its slot for the full ShardTimeout, so six hung
// shards at fanout 2 drain in three timeout waves, never more than two
// in flight.
func TestFedMaxFanoutBoundsSlowShards(t *testing.T) {
	const shards, fanout = 6, 2
	timeout := 100 * time.Millisecond
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	t.Cleanup(hung.Close)

	tr := &inflightTransport{base: &http.Transport{DisableKeepAlives: true}}
	addrs := make([]string, shards)
	for i := range addrs {
		addrs[i] = hung.URL
	}
	coord := startCoordinator(t, Config{
		Shards:       addrs,
		MaxFanout:    fanout,
		ShardTimeout: timeout,
		Client:       &http.Client{Transport: tr},
	})

	start := time.Now()
	status, _, body := get(t, "http://"+coord.Addr()+"/v1/count?dim="+url.QueryEscape("parity=even"))
	elapsed := time.Since(start)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status %d with every shard hung, want 503 (body %s)", status, body)
	}
	if got := tr.maxSeen.Load(); got > fanout {
		t.Fatalf("transport saw %d concurrent shard requests during timeouts, bound is %d", got, fanout)
	}
	if got := tr.total.Load(); got != shards {
		t.Fatalf("scatter issued %d shard requests, want %d", got, shards)
	}
	// ceil(6/2) = 3 timeout waves; unbounded fan-out would finish in ~1.
	if elapsed < 3*timeout-20*time.Millisecond {
		t.Fatalf("six hung shards drained in %v — semaphore did not serialize the waves", elapsed)
	}
	if elapsed > 10*timeout {
		t.Fatalf("scatter over hung shards took %v, want ~%v", elapsed, 3*timeout)
	}
}

// shardEndpointRequests sums one endpoint's /statsz serving request
// counter across shard servers.
func shardEndpointRequests(t *testing.T, endpoint string, shards ...*server.Server) uint64 {
	t.Helper()
	var total uint64
	for _, s := range shards {
		status, _, body := get(t, "http://"+s.Addr()+"/statsz")
		if status != http.StatusOK {
			t.Fatalf("shard statsz: status %d", status)
		}
		var sr server.StatszResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		total += sr.Serving.Endpoints[endpoint].Requests
	}
	return total
}

// fedStatsz fetches and decodes the coordinator's /statsz.
func fedStatsz(t *testing.T, fedBase string) StatszResponse {
	t.Helper()
	status, _, body := get(t, fedBase+"/statsz")
	if status != http.StatusOK {
		t.Fatalf("fed statsz: status %d", status)
	}
	var sr StatszResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

// TestFedCacheHitSkipsScatter pins the coordinator cache's hot path: a
// repeat query within the trust window answers the exact bytes and
// generation vector of the first, without a single shard request.
func TestFedCacheHitSkipsScatter(t *testing.T) {
	const k = 2
	docs := testDocs(80)
	shards := make([]*server.Server, k)
	for i := range shards {
		shards[i] = startShard(t, docs, i, k, server.Config{})
	}
	waitIngestDone(t, shards...)
	coord := startCoordinator(t, Config{Shards: shardAddrs(shards)})
	fedBase := "http://" + coord.Addr()
	q := fedBase + "/v1/count?dim=" + url.QueryEscape("parity=even")

	status, hdr1, body1 := get(t, q)
	if status != http.StatusOK {
		t.Fatalf("first query: status %d", status)
	}
	scattered := shardEndpointRequests(t, "/v1/count", shards...)
	if scattered != k {
		t.Fatalf("first query hit %d shard count endpoints, want %d", scattered, k)
	}

	status, hdr2, body2 := get(t, q)
	if status != http.StatusOK {
		t.Fatalf("second query: status %d", status)
	}
	if !bytes.Equal(body2, body1) {
		t.Fatalf("cached body diverges:\n hit: %s\nmiss: %s", body2, body1)
	}
	if v1, v2 := hdr1.Get(server.GenerationHeader), hdr2.Get(server.GenerationHeader); v1 != v2 {
		t.Fatalf("cached generation vector %q, want %q", v2, v1)
	}
	if again := shardEndpointRequests(t, "/v1/count", shards...); again != scattered {
		t.Fatalf("cache hit still scattered: shard count requests %d → %d", scattered, again)
	}

	sr := fedStatsz(t, fedBase)
	if sr.FedCache.Hits < 1 || sr.FedCache.Size < 1 {
		t.Fatalf("fed_cache did not record the hit: %+v", sr.FedCache)
	}
	if sr.FedCache.Capacity != 256 {
		t.Fatalf("fed_cache capacity = %d, want default 256", sr.FedCache.Capacity)
	}
}

// pollDim polls the federated count for dim until it reports want
// documents in total.
func pollDim(t *testing.T, fedBase, dim string, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		status, _, body := get(t, fedBase+"/v1/count?dim="+url.QueryEscape(dim))
		if status == http.StatusOK {
			var m struct{ Total int }
			if err := json.Unmarshal(body, &m); err == nil && m.Total == want {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%s never reached %d documents", fedBase, want)
}

// TestFedCacheInvalidatesOnGenerationAdvance pins the invalidation
// story: a body cached under one generation vector stops matching the
// moment any shard's generation advances — even within the TTL — and
// the next query scatters fresh bytes.
func TestFedCacheInvalidatesOnGenerationAdvance(t *testing.T) {
	const k, cut, total = 2, 60, 120
	docs := testDocs(total)
	gate := make(chan struct{})
	shards := make([]*server.Server, k)
	for i := range shards {
		cfg := server.Config{
			Source:    PartitionSource(gatedSource(docs, gate, cut), i, k),
			SwapEvery: 1,
		}
		s, err := server.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { shutdownServer(t, s) })
		shards[i] = s
	}
	coord := startCoordinator(t, Config{Shards: shardAddrs(shards)})
	fedBase := "http://" + coord.Addr()
	q := fedBase + "/v1/count?dim=" + url.QueryEscape("parity=even")

	// Cache Q at the gated cut: every server holds exactly cut documents.
	pollDim(t, fedBase, "parity=even", cut)
	_, hdr1, body1 := get(t, q)
	vec1 := hdr1.Get(server.GenerationHeader)
	_, _, hit := get(t, q)
	if !bytes.Equal(hit, body1) {
		t.Fatalf("repeat query at the cut diverges:\n got %s\nwant %s", hit, body1)
	}

	// Release the rest; a different query observes the advanced vector,
	// so Q's entry goes stale without any TTL expiry involved.
	close(gate)
	waitIngestDone(t, shards...)
	pollDim(t, fedBase, "parity=odd", total)

	status, hdr2, body2 := get(t, q)
	if status != http.StatusOK {
		t.Fatalf("post-advance query: status %d", status)
	}
	vec2 := hdr2.Get(server.GenerationHeader)
	if vec2 == vec1 {
		t.Fatalf("generation vector did not advance past %q", vec1)
	}
	if bytes.Equal(body2, body1) {
		t.Fatalf("stale cached body served after generation advance: %s", body2)
	}
	var m struct {
		Total  int
		Sealed bool
	}
	if err := json.Unmarshal(body2, &m); err != nil {
		t.Fatal(err)
	}
	if m.Total != total || !m.Sealed {
		t.Fatalf("post-advance count total=%d sealed=%v, want %d/true", m.Total, m.Sealed, total)
	}

	// The fresh body is itself cached under the new vector.
	_, hdr3, body3 := get(t, q)
	if !bytes.Equal(body3, body2) || hdr3.Get(server.GenerationHeader) != vec2 {
		t.Fatalf("fresh body not re-cached under the new vector")
	}
}

// TestFedDegradedNeverCached pins the partial-fleet rule: responses
// merged while a shard is missing are recomputed on every query and
// never enter the coordinator cache.
func TestFedDegradedNeverCached(t *testing.T) {
	const k = 2
	docs := testDocs(80)
	shards := make([]*server.Server, k)
	for i := range shards {
		shards[i] = startShard(t, docs, i, k, server.Config{})
	}
	waitIngestDone(t, shards...)
	coord := startCoordinator(t, Config{Shards: shardAddrs(shards)})
	fedBase := "http://" + coord.Addr()
	q := fedBase + "/v1/count?dim=" + url.QueryEscape("parity=even")

	shutdownServer(t, shards[1])

	for i := 0; i < 2; i++ {
		status, hdr, body := get(t, q)
		if status != http.StatusOK {
			t.Fatalf("degraded query %d: status %d", i, status)
		}
		var fb fedBody
		if err := json.Unmarshal(body, &fb); err != nil {
			t.Fatal(err)
		}
		if !fb.Degraded {
			t.Fatalf("degraded query %d not marked degraded: %s", i, body)
		}
		if vec := hdr.Get(server.GenerationHeader); !strings.Contains(vec, "-") {
			t.Fatalf("degraded query %d vector %q has no gap", i, vec)
		}
	}
	if got := shardEndpointRequests(t, "/v1/count", shards[0]); got != 2 {
		t.Fatalf("live shard served %d count requests, want 2 (degraded queries must scatter every time)", got)
	}
	sr := fedStatsz(t, fedBase)
	if sr.FedCache.Size != 0 || sr.FedCache.Hits != 0 {
		t.Fatalf("degraded responses leaked into the coordinator cache: %+v", sr.FedCache)
	}
}

// postFedBatch POSTs a /v1/batch request to the coordinator.
func postFedBatch(t *testing.T, fedBase string, req server.BatchRequest) (int, http.Header, []byte) {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := testClient.Post(fedBase+"/v1/batch", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, buf.Bytes()
}

// fedBatchCases pairs every batchable federated endpoint's sub-query
// form with its GET equivalent.
func fedBatchCases() []struct {
	bq  server.BatchQuery
	url string
} {
	mk := func(endpoint string, params url.Values) struct {
		bq  server.BatchQuery
		url string
	} {
		return struct {
			bq  server.BatchQuery
			url string
		}{server.BatchQuery{Endpoint: endpoint, Params: params}, "/v1/" + endpoint + "?" + params.Encode()}
	}
	return []struct {
		bq  server.BatchQuery
		url string
	}{
		mk("count", url.Values{"dim": {"parity=even", "parity=odd", "topic", "austin[place]"}}),
		mk("associate", url.Values{"row": {"billing[topic]", "coverage[topic]"}, "col": {"outcome=reservation", "outcome=unbooked"}}),
		mk("associate", url.Values{"row": {"topic"}, "col": {"parity=odd"}, "confidence": {"0.99"}}),
		mk("relfreq", url.Values{"category": {"topic"}, "featured": {"outcome=reservation"}}),
		mk("drilldown", url.Values{"row": {"austin[place]"}, "col": {"outcome=service"}}),
		mk("trend", url.Values{"dim": {"billing[topic]"}}),
		mk("concepts", url.Values{"category": {"topic"}}),
		mk("concepts", url.Values{"field": {"outcome"}}),
	}
}

// TestFedBatchMatchesSingleFedQueries pins the federated batch against
// the GET path: every sub-result is byte-identical to its single
// federated query, from one scatter, on healthy and degraded fleets.
func TestFedBatchMatchesSingleFedQueries(t *testing.T) {
	const k = 2
	docs := testDocs(100)
	shards := make([]*server.Server, k)
	for i := range shards {
		shards[i] = startShard(t, docs, i, k, server.Config{})
	}
	waitIngestDone(t, shards...)
	// Cache off: every GET recomputes, so equality means the merge paths
	// agree, not that one served the other's cached bytes.
	coord := startCoordinator(t, Config{Shards: shardAddrs(shards), CacheSize: -1})
	fedBase := "http://" + coord.Addr()

	cases := fedBatchCases()
	req := server.BatchRequest{}
	for _, c := range cases {
		req.Queries = append(req.Queries, c.bq)
	}
	// Ride-along failures must not void the healthy sub-queries.
	req.Queries = append(req.Queries,
		server.BatchQuery{Endpoint: "nope", Params: url.Values{}},
		server.BatchQuery{Endpoint: "count", Params: url.Values{"dim": {"[unclosed"}}},
	)

	status, hdr, body := postFedBatch(t, fedBase, req)
	if status != http.StatusOK {
		t.Fatalf("batch status %d, body %s", status, body)
	}
	vec := strings.Split(hdr.Get(server.GenerationHeader), ",")
	if len(vec) != k {
		t.Fatalf("batch generation vector %q, want %d entries", hdr.Get(server.GenerationHeader), k)
	}
	for _, g := range vec {
		if g == "" || g == "-" {
			t.Fatalf("batch vector %q has gaps on a healthy fleet", hdr.Get(server.GenerationHeader))
		}
	}
	var env BatchResponse
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if len(env.Results) != len(req.Queries) {
		t.Fatalf("batch returned %d results for %d queries", len(env.Results), len(req.Queries))
	}
	if !env.Sealed || env.Degraded {
		t.Fatalf("healthy sealed batch envelope: sealed=%v degraded=%v", env.Sealed, env.Degraded)
	}
	// One scatter for the whole batch: each shard's batch endpoint ran
	// once and its GET query endpoints not at all.
	if got := shardEndpointRequests(t, "/v1/batch", shards...); got != k {
		t.Fatalf("batch hit %d shard batch endpoints, want %d", got, k)
	}

	checkSubs := func(env BatchResponse, wantDegraded bool) {
		t.Helper()
		for i, c := range cases {
			sub := env.Results[i]
			if sub.Status != http.StatusOK {
				t.Fatalf("sub %d (%s): status %d, body %s", i, c.url, sub.Status, sub.Body)
			}
			gs, _, want := get(t, fedBase+c.url)
			if gs != http.StatusOK {
				t.Fatalf("GET %s: status %d", c.url, gs)
			}
			if got := append(append([]byte{}, sub.Body...), '\n'); !bytes.Equal(got, want) {
				t.Fatalf("sub %d (%s) diverges from single federated GET\nbatch: %s\n  get: %s", i, c.url, got, want)
			}
			var fb fedBody
			if err := json.Unmarshal(sub.Body, &fb); err != nil {
				t.Fatal(err)
			}
			if fb.Degraded != wantDegraded {
				t.Fatalf("sub %d (%s): degraded=%v, want %v", i, c.url, fb.Degraded, wantDegraded)
			}
		}
		for i, wantErr := range map[int]string{len(cases): "unknown batch endpoint", len(cases) + 1: "dim"} {
			sub := env.Results[i]
			if sub.Status != http.StatusBadRequest {
				t.Fatalf("bad sub %d: status %d, want 400 (%s)", i, sub.Status, sub.Body)
			}
			var fb fedBody
			if err := json.Unmarshal(sub.Body, &fb); err != nil {
				t.Fatalf("bad sub %d body not structured: %v", i, err)
			}
			if fb.Status != http.StatusBadRequest || !strings.Contains(fb.Error, wantErr) {
				t.Fatalf("bad sub %d error contract: %+v", i, fb)
			}
		}
	}
	checkSubs(env, false)

	// Kill a shard: the batch keeps answering, degraded exactly like the
	// GET path, and sub-bodies still match the degraded GETs.
	shutdownServer(t, shards[1])
	status, hdr, body = postFedBatch(t, fedBase, req)
	if status != http.StatusOK {
		t.Fatalf("degraded batch status %d, body %s", status, body)
	}
	if vec := strings.Split(hdr.Get(server.GenerationHeader), ","); len(vec) != k || vec[1] != "-" {
		t.Fatalf("degraded batch vector %q, want '-' at shard 1", hdr.Get(server.GenerationHeader))
	}
	env = BatchResponse{}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if !env.Degraded || len(env.MissingShards) != 1 || env.MissingShards[0] != 1 {
		t.Fatalf("degraded batch envelope: degraded=%v missing=%v", env.Degraded, env.MissingShards)
	}
	checkSubs(env, true)
}

// TestFedBatchPopulatesCoordinatorCache pins layer interplay: a batch's
// fully-merged sub-results land in the coordinator cache under the same
// canonical keys, so the equivalent GET right after is a hit that
// scatters nothing.
func TestFedBatchPopulatesCoordinatorCache(t *testing.T) {
	const k = 2
	docs := testDocs(80)
	shards := make([]*server.Server, k)
	for i := range shards {
		shards[i] = startShard(t, docs, i, k, server.Config{})
	}
	waitIngestDone(t, shards...)
	coord := startCoordinator(t, Config{Shards: shardAddrs(shards)})
	fedBase := "http://" + coord.Addr()

	// Conjunction order differs between batch and GET; canonicalization
	// must collapse them to one cache key.
	batchDim := "billing[topic] ∧ parity=even"
	getDim := "parity=even ∧ billing[topic]"
	status, _, body := postFedBatch(t, fedBase, server.BatchRequest{Queries: []server.BatchQuery{
		{Endpoint: "count", Params: url.Values{"dim": {batchDim}}},
	}})
	if status != http.StatusOK {
		t.Fatalf("batch status %d, body %s", status, body)
	}
	var env BatchResponse
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Results[0].Status != http.StatusOK {
		t.Fatalf("batch sub failed: %s", env.Results[0].Body)
	}

	before := shardEndpointRequests(t, "/v1/count", shards...)
	gs, _, got := get(t, fedBase+"/v1/count?dim="+url.QueryEscape(getDim))
	if gs != http.StatusOK {
		t.Fatalf("GET after batch: status %d", gs)
	}
	if after := shardEndpointRequests(t, "/v1/count", shards...); after != before {
		t.Fatalf("GET after batch scattered (%d → %d shard count requests), want coordinator cache hit", before, after)
	}
	if want := append(append([]byte{}, env.Results[0].Body...), '\n'); !bytes.Equal(got, want) {
		t.Fatalf("cached GET diverges from batch sub-result\n  get: %s\nbatch: %s", got, want)
	}
}

// TestFedBatchValidation pins the envelope-level error contract.
func TestFedBatchValidation(t *testing.T) {
	docs := testDocs(30)
	shard := startShard(t, docs, 0, 1, server.Config{})
	waitIngestDone(t, shard)
	coord := startCoordinator(t, Config{Shards: shardAddrs([]*server.Server{shard})})
	fedBase := "http://" + coord.Addr()

	status, _, body := postFedBatch(t, fedBase, server.BatchRequest{})
	if status != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, body %s", status, body)
	}

	over := server.BatchRequest{}
	for i := 0; i <= server.MaxBatchQueries; i++ {
		over.Queries = append(over.Queries, server.BatchQuery{Endpoint: "count", Params: url.Values{"dim": {"parity=even"}}})
	}
	status, _, body = postFedBatch(t, fedBase, over)
	if status != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d, body %s", status, body)
	}

	resp, err := testClient.Post(fedBase+"/v1/batch", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed batch body: status %d", resp.StatusCode)
	}

	// All-invalid batch: nothing to scatter, still a 200 envelope with
	// per-sub errors under the no-information vector.
	status, hdr, body := postFedBatch(t, fedBase, server.BatchRequest{Queries: []server.BatchQuery{
		{Endpoint: "nope"},
		{Endpoint: "count", Params: url.Values{"dim": {"[unclosed"}}},
	}})
	if status != http.StatusOK {
		t.Fatalf("all-invalid batch: status %d, body %s", status, body)
	}
	if got := hdr.Get(server.GenerationHeader); got != "-" {
		t.Fatalf("all-invalid batch vector %q, want \"-\"", got)
	}
	var env BatchResponse
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	for i, sub := range env.Results {
		if sub.Status != http.StatusBadRequest {
			t.Fatalf("all-invalid sub %d: status %d, want 400", i, sub.Status)
		}
	}
}

// TestFedStatszServingSections pins the SLO sections of the federated
// /statsz: the coordinator's own per-endpoint counters and the
// element-wise sum of the shards', with bucket totals matching request
// totals.
func TestFedStatszServingSections(t *testing.T) {
	const k = 2
	docs := testDocs(60)
	shards := make([]*server.Server, k)
	for i := range shards {
		shards[i] = startShard(t, docs, i, k, server.Config{})
	}
	waitIngestDone(t, shards...)
	coord := startCoordinator(t, Config{Shards: shardAddrs(shards)})
	fedBase := "http://" + coord.Addr()

	for i := 0; i < 3; i++ {
		get(t, fedBase+"/v1/count?dim="+url.QueryEscape("parity=even"))
	}
	get(t, fedBase+"/v1/trend?dim="+url.QueryEscape("billing[topic]"))
	postFedBatch(t, fedBase, server.BatchRequest{Queries: []server.BatchQuery{
		{Endpoint: "count", Params: url.Values{"dim": {"parity=odd"}}},
	}})

	sr := fedStatsz(t, fedBase)
	if len(sr.Serving.BucketBoundsUS) == 0 {
		t.Fatal("serving section missing bucket bounds")
	}
	for path, want := range map[string]uint64{"/v1/count": 3, "/v1/trend": 1, "/v1/batch": 1} {
		es, ok := sr.Serving.Endpoints[path]
		if !ok || es.Requests != want {
			t.Fatalf("coordinator serving[%s] = %+v, want %d requests", path, es, want)
		}
		var sum uint64
		for _, b := range es.LatencyBucketsUS {
			sum += b
		}
		if sum != es.Requests {
			t.Fatalf("serving[%s]: bucket sum %d != requests %d", path, sum, es.Requests)
		}
	}
	// The shards saw one count scatter (the first; two were coordinator
	// cache hits) and one batch scatter — k requests each, plus the
	// trend scatter.
	if es := sr.ShardServing.Endpoints["/v1/count"]; es.Requests != k {
		t.Fatalf("shard_serving[/v1/count] = %d requests, want %d", es.Requests, k)
	}
	if es := sr.ShardServing.Endpoints["/v1/batch"]; es.Requests != k {
		t.Fatalf("shard_serving[/v1/batch] = %d requests, want %d", es.Requests, k)
	}
	if es := sr.ShardServing.Endpoints["/v1/trend"]; es.Requests != k {
		t.Fatalf("shard_serving[/v1/trend] = %d requests, want %d", es.Requests, k)
	}
}

// TestFedBatchAndCacheMidIngest pins batch/GET byte-identity on a live
// fleet: with every shard parked at the same gated cut, the federated
// batch, the uncached scatter, and the coordinator-cache hit all serve
// identical bytes — then again after the release and seal.
func TestFedBatchAndCacheMidIngest(t *testing.T) {
	const k, cut, total = 2, 60, 120
	docs := testDocs(total)
	gate := make(chan struct{})
	shards := make([]*server.Server, k)
	for i := range shards {
		cfg := server.Config{
			Source:    PartitionSource(gatedSource(docs, gate, cut), i, k),
			SwapEvery: 1,
		}
		s, err := server.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { shutdownServer(t, s) })
		shards[i] = s
	}
	coord := startCoordinator(t, Config{Shards: shardAddrs(shards)})
	fedBase := "http://" + coord.Addr()

	compare := func(phase string) {
		t.Helper()
		cases := fedBatchCases()
		req := server.BatchRequest{}
		for _, c := range cases {
			req.Queries = append(req.Queries, c.bq)
		}
		status, _, body := postFedBatch(t, fedBase, req)
		if status != http.StatusOK {
			t.Fatalf("%s: batch status %d, body %s", phase, status, body)
		}
		var env BatchResponse
		if err := json.Unmarshal(body, &env); err != nil {
			t.Fatal(err)
		}
		for i, c := range cases {
			sub := env.Results[i]
			if sub.Status != http.StatusOK {
				t.Fatalf("%s: sub %d (%s): status %d, body %s", phase, i, c.url, sub.Status, sub.Body)
			}
			want := append(append([]byte{}, sub.Body...), '\n')
			// First GET may scatter or hit the batch-populated cache;
			// the second is a hit when the fleet is static. All three
			// answers must carry the same bytes.
			for pass := 0; pass < 2; pass++ {
				gs, _, got := get(t, fedBase+c.url)
				if gs != http.StatusOK {
					t.Fatalf("%s: GET %s pass %d: status %d", phase, c.url, pass, gs)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("%s: GET %s pass %d diverges from batch sub\n  get: %s\nbatch: %s", phase, c.url, pass, got, want)
				}
			}
		}
	}

	pollDim(t, fedBase, "parity=even", cut)
	compare("mid-ingest")

	close(gate)
	waitIngestDone(t, shards...)
	pollDim(t, fedBase, "parity=odd", total)
	compare("sealed")
}
