package annotate

import (
	"reflect"
	"testing"
)

func carRentalDict() *Dictionary {
	d := NewDictionary()
	d.AddAll([]Entry{
		{Surface: "child seat", PoS: PoSNoun, Canonical: "child seat", Category: "vehicle feature"},
		{Surface: "ny", PoS: PoSProperNoun, Canonical: "new york", Category: "place"},
		{Surface: "new york", PoS: PoSProperNoun, Canonical: "new york", Category: "place"},
		{Surface: "master card", PoS: PoSNoun, Canonical: "credit card", Category: "payment methods"},
		{Surface: "visa", PoS: PoSNoun, Canonical: "credit card", Category: "payment methods"},
		{Surface: "suv", PoS: PoSNoun, Canonical: "suv", Category: "vehicle type"},
		{Surface: "seven seater", PoS: PoSNoun, Canonical: "suv", Category: "vehicle type"},
		{Surface: "chevy impala", PoS: PoSNoun, Canonical: "full-size", Category: "vehicle type"},
		{Surface: "discount", PoS: PoSNoun, Canonical: "discount", Category: "discount"},
		{Surface: "corporate program", PoS: PoSNoun, Canonical: "discount", Category: "discount"},
		{Surface: "rate", PoS: PoSNoun, Canonical: "rate", Category: "rate"},
	})
	return d
}

func TestDictionaryLookup(t *testing.T) {
	d := carRentalDict()
	e, ok := d.Lookup("Master Card")
	if !ok || e.Canonical != "credit card" || e.Category != "payment methods" {
		t.Errorf("lookup = %+v %v", e, ok)
	}
	if _, ok := d.Lookup("zebra"); ok {
		t.Error("absent surface resolved")
	}
	if d.Len() != 11 {
		t.Errorf("len = %d", d.Len())
	}
}

func TestDictionaryIgnoresEmptySurface(t *testing.T) {
	d := NewDictionary()
	d.Add(Entry{Surface: "   "})
	if d.Len() != 0 {
		t.Error("blank surface added")
	}
}

func TestDictionaryCategories(t *testing.T) {
	cats := carRentalDict().Categories()
	want := []string{"discount", "payment methods", "place", "rate", "vehicle feature", "vehicle type"}
	if !reflect.DeepEqual(cats, want) {
		t.Errorf("categories = %v", cats)
	}
}

func TestTagWordPoS(t *testing.T) {
	d := NewDictionary()
	cases := map[string]PoS{
		"book":      PoSVerb,
		"wonderful": PoSAdjective,
		"quickly":   PoSAdverb,
		"renting":   PoSVerb,
		"charged":   PoSVerb,
		"500":       PoSNumeric,
		"i":         PoSPronoun,
		"car":       PoSNoun,
	}
	for w, want := range cases {
		if got := d.TagWord(w); got != want {
			t.Errorf("TagWord(%q) = %v, want %v", w, got, want)
		}
	}
}

func TestTagMultiWordLongestMatch(t *testing.T) {
	d := carRentalDict()
	tagged := d.Tag("i need a child seat in new york")
	var surfaces []string
	for _, tw := range tagged {
		surfaces = append(surfaces, tw.Word)
	}
	want := []string{"i", "need", "a", "child seat", "in", "new york"}
	if !reflect.DeepEqual(surfaces, want) {
		t.Errorf("surfaces = %v", surfaces)
	}
	if tagged[3].Category != "vehicle feature" {
		t.Errorf("child seat category = %q", tagged[3].Category)
	}
}

func TestDictionaryCanonicalization(t *testing.T) {
	d := carRentalDict()
	en := NewEngine(d)
	// "seven seater" and "suv" should both yield canonical "suv" — the
	// paper's indicator-expression mechanism for Table II.
	c1 := en.Annotate("looking for a seven seater")
	c2 := en.Annotate("looking for an suv")
	if len(c1) != 1 || len(c2) != 1 {
		t.Fatalf("concepts: %v %v", c1, c2)
	}
	if c1[0].Canonical != "suv" || c2[0].Canonical != "suv" {
		t.Errorf("canonicals: %q %q", c1[0].Canonical, c2[0].Canonical)
	}
}

func TestPatternPleaseVerb(t *testing.T) {
	en := NewEngine(NewDictionary())
	en.AddPattern(Pattern{
		Name:     "request",
		Elems:    []Elem{Lit("please"), Tag(PoSVerb)},
		Category: "request",
	})
	cs := en.Annotate("please confirm my booking")
	if len(cs) != 1 || cs[0].Category != "request" || cs[0].Canonical != "please confirm" {
		t.Errorf("concepts = %v", cs)
	}
	if cs := en.Annotate("please the noun"); len(cs) != 0 {
		t.Errorf("please + noun should not match: %v", cs)
	}
}

func TestPatternJustNumericDollars(t *testing.T) {
	en := NewEngine(NewDictionary())
	en.AddPattern(Pattern{
		Name:     "good-rate",
		Elems:    []Elem{Lit("just"), Tag(PoSNumeric), Lit("dollars")},
		Label:    "mention of good rate",
		Category: "value selling",
	})
	cs := en.Annotate("it is just 45 dollars a day")
	if len(cs) != 1 || cs[0].Canonical != "mention of good rate" || cs[0].Category != "value selling" {
		t.Errorf("concepts = %v", cs)
	}
}

func TestPatternWithCategoryElem(t *testing.T) {
	d := carRentalDict()
	en := NewEngine(d)
	en.AddPattern(Pattern{
		Name:     "rate-praise",
		Elems:    []Elem{Lit("wonderful"), Cat("rate")},
		Label:    "mention of good rate",
		Category: "value selling",
	})
	cs := en.Annotate("we have a wonderful rate today")
	found := false
	for _, c := range cs {
		if c.Category == "value selling" {
			found = true
		}
	}
	if !found {
		t.Errorf("value selling concept missing: %v", cs)
	}
}

func TestPolarityRuleThreeWays(t *testing.T) {
	en := NewEngine(NewDictionary())
	en.AddPolarityRule(PolarityRule{
		Keyword:          "rude",
		AssertCategory:   "complaint",
		NegatedCategory:  "commendation",
		QuestionCategory: "question",
	})
	assertCs := en.Annotate("the agent was rude to me")
	if !HasCategory(assertCs, "complaint") {
		t.Errorf("assertion: %v", assertCs)
	}
	negCs := en.Annotate("the agent was not rude at all")
	if !HasCategory(negCs, "commendation") || HasCategory(negCs, "complaint") {
		t.Errorf("negation: %v", negCs)
	}
	if got := CanonicalsIn(negCs, "commendation"); len(got) != 1 || got[0] != "not rude" {
		t.Errorf("negated canonical = %v", got)
	}
	qCs := en.Annotate("was the agent rude?")
	if !HasCategory(qCs, "question") {
		t.Errorf("question: %v", qCs)
	}
}

func TestPolarityWithoutQuestionMarkIsAssertion(t *testing.T) {
	en := NewEngine(NewDictionary())
	en.AddPolarityRule(PolarityRule{
		Keyword: "rude", AssertCategory: "complaint",
		NegatedCategory: "commendation", QuestionCategory: "question",
	})
	cs := en.Annotate("he was rude")
	if !HasCategory(cs, "complaint") {
		t.Errorf("no question mark should assert: %v", cs)
	}
}

func TestAnnotateOrdersByPosition(t *testing.T) {
	d := carRentalDict()
	en := NewEngine(d)
	cs := en.Annotate("suv with child seat and discount in ny")
	for i := 1; i < len(cs); i++ {
		if cs[i].Start < cs[i-1].Start {
			t.Errorf("concepts out of order: %v", cs)
		}
	}
	if len(cs) != 4 {
		t.Errorf("expected 4 concepts, got %v", cs)
	}
}

func TestAnnotateEmptyText(t *testing.T) {
	en := NewEngine(carRentalDict())
	if cs := en.Annotate(""); len(cs) != 0 {
		t.Errorf("empty text produced %v", cs)
	}
}

func TestCategoriesHelper(t *testing.T) {
	cs := []Concept{
		{Category: "b"}, {Category: "a"}, {Category: "b"},
	}
	if got := Categories(cs); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("got %v", got)
	}
	if HasCategory(cs, "c") {
		t.Error("phantom category")
	}
}

func TestEngineNilDictionary(t *testing.T) {
	en := NewEngine(nil)
	if en.Dictionary() == nil {
		t.Fatal("nil dictionary not defaulted")
	}
	if cs := en.Annotate("hello world"); len(cs) != 0 {
		t.Errorf("bare engine annotated %v", cs)
	}
}

func TestPoSString(t *testing.T) {
	if PoSNoun.String() != "noun" || PoSAny.String() != "any" || PoS(200).String() != "other" {
		t.Error("PoS names wrong")
	}
}

func TestEmptyPatternIgnored(t *testing.T) {
	en := NewEngine(NewDictionary())
	en.AddPattern(Pattern{Name: "empty"})
	if cs := en.Annotate("anything at all"); len(cs) != 0 {
		t.Errorf("empty pattern matched: %v", cs)
	}
}
