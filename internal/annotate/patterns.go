package annotate

import (
	"sort"
	"strings"
)

// Elem is one position of a phrase pattern. Exactly one of Literal,
// Category or PoS-matching is used, checked in that priority order:
// a non-empty Literal matches the surface word; a non-empty Category
// matches the dictionary category of the tagged unit; otherwise PoS is
// compared (PoSAny matches everything).
type Elem struct {
	Literal  string
	Category string
	PoS      PoS
}

// Lit returns a literal-word element.
func Lit(w string) Elem { return Elem{Literal: strings.ToLower(w), PoS: PoSAny} }

// Cat returns a category element.
func Cat(c string) Elem { return Elem{Category: c, PoS: PoSAny} }

// Tag returns a PoS element ("please + VERB").
func Tag(p PoS) Elem { return Elem{PoS: p} }

// Pattern is a user-defined phrase pattern: when the element sequence
// matches consecutive tagged units, a concept with the given canonical
// label and semantic category is produced. The paper's examples:
//
//	please + VERB            → VERB[request]
//	just + NUMERIC + dollars → mention of good rate[value selling]
//	wonderful + rate         → mention of good rate[value selling]
type Pattern struct {
	Name     string
	Elems    []Elem
	Label    string // canonical concept text; "" = use matched surface
	Category string
}

func (e Elem) matches(tw TaggedWord) bool {
	if e.Literal != "" {
		return tw.Word == e.Literal || tw.Canonical == e.Literal
	}
	if e.Category != "" {
		return tw.Category == e.Category
	}
	return e.PoS == PoSAny || e.PoS == tw.PoS
}

// negators flip a predicate pattern's polarity when found immediately
// before the keyword (within two tokens).
var negators = map[string]bool{
	"not": true, "never": true, "no": true, "dont": true, "don't": true,
	"didnt": true, "didn't": true, "wasnt": true, "wasn't": true,
	"isnt": true, "isn't": true,
}

// questionLeads start a question form when they open the clause.
var questionLeads = map[string]bool{
	"was": true, "is": true, "are": true, "were": true, "did": true,
	"does": true, "do": true, "can": true, "could": true, "will": true,
	"would": true,
}

// PolarityRule implements the paper's predicate analysis:
//
//	X was rude.     → rude[complaint]
//	X was not rude. → not rude[commendation]
//	Was X rude?     → rude[question]
//
// The keyword is matched anywhere; polarity is decided by a preceding
// negator and question lead.
type PolarityRule struct {
	Keyword string
	// Categories per polarity.
	AssertCategory   string
	NegatedCategory  string
	QuestionCategory string
}

// Concept is one extracted unit of meaning: a canonical representation
// plus its semantic category and the token span it came from.
type Concept struct {
	Canonical string
	Category  string
	Start     int // index into the tagged-unit sequence
	End       int // one past the last tagged unit
}

// Engine bundles a dictionary, phrase patterns and polarity rules.
type Engine struct {
	dict     *Dictionary
	patterns []Pattern
	polarity []PolarityRule
}

// NewEngine returns an annotation engine over the dictionary.
func NewEngine(dict *Dictionary) *Engine {
	if dict == nil {
		dict = NewDictionary()
	}
	return &Engine{dict: dict}
}

// Dictionary returns the engine's dictionary.
func (en *Engine) Dictionary() *Dictionary { return en.dict }

// AddPattern registers a phrase pattern.
func (en *Engine) AddPattern(p Pattern) { en.patterns = append(en.patterns, p) }

// AddPolarityRule registers a predicate polarity rule.
func (en *Engine) AddPolarityRule(r PolarityRule) { en.polarity = append(en.polarity, r) }

// Annotate extracts all concepts from text: dictionary concepts (one per
// tagged unit carrying a category), phrase-pattern concepts, and
// polarity-rule concepts. Results are ordered by start position.
func (en *Engine) Annotate(text string) []Concept {
	tagged := en.dict.Tag(text)
	var out []Concept
	// 1. Dictionary concepts.
	for i, tw := range tagged {
		if tw.Category != "" {
			canonical := tw.Canonical
			if canonical == "" {
				canonical = tw.Word
			}
			out = append(out, Concept{Canonical: canonical, Category: tw.Category, Start: i, End: i + 1})
		}
	}
	// 2. Phrase patterns.
	for _, p := range en.patterns {
		if len(p.Elems) == 0 {
			continue
		}
		for i := 0; i+len(p.Elems) <= len(tagged); i++ {
			ok := true
			for j, e := range p.Elems {
				if !e.matches(tagged[i+j]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			label := p.Label
			if label == "" {
				parts := make([]string, len(p.Elems))
				for j := range p.Elems {
					parts[j] = tagged[i+j].Word
				}
				label = strings.Join(parts, " ")
			}
			out = append(out, Concept{Canonical: label, Category: p.Category, Start: i, End: i + len(p.Elems)})
		}
	}
	// 3. Polarity rules.
	isQuestion := strings.Contains(text, "?")
	for _, r := range en.polarity {
		kw := strings.ToLower(r.Keyword)
		for i, tw := range tagged {
			if tw.Word != kw && tw.Canonical != kw {
				continue
			}
			negated := false
			for back := 1; back <= 2 && i-back >= 0; back++ {
				if negators[tagged[i-back].Word] {
					negated = true
					break
				}
			}
			questioned := false
			if !negated && isQuestion {
				// Question form: a question lead earlier in the clause.
				for back := i - 1; back >= 0 && back >= i-6; back-- {
					if questionLeads[tagged[back].Word] {
						questioned = true
						break
					}
				}
			}
			switch {
			case negated:
				out = append(out, Concept{Canonical: "not " + kw, Category: r.NegatedCategory, Start: i, End: i + 1})
			case questioned:
				out = append(out, Concept{Canonical: kw, Category: r.QuestionCategory, Start: i, End: i + 1})
			default:
				out = append(out, Concept{Canonical: kw, Category: r.AssertCategory, Start: i, End: i + 1})
			}
		}
	}
	sortConcepts(out)
	return out
}

func sortConcepts(cs []Concept) {
	sort.Slice(cs, func(i, j int) bool {
		a, b := cs[i], cs[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Category != b.Category {
			return a.Category < b.Category
		}
		return a.Canonical < b.Canonical
	})
}

// Categories returns the distinct categories of a concept list, sorted.
func Categories(cs []Concept) []string {
	set := map[string]bool{}
	for _, c := range cs {
		set[c.Category] = true
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// HasCategory reports whether any concept carries the category.
func HasCategory(cs []Concept, category string) bool {
	for _, c := range cs {
		if c.Category == category {
			return true
		}
	}
	return false
}

// CanonicalsIn returns the canonical forms of concepts in a category.
func CanonicalsIn(cs []Concept, category string) []string {
	var out []string
	for _, c := range cs {
		if c.Category == category {
			out = append(out, c.Canonical)
		}
	}
	return out
}
