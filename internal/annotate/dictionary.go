// Package annotate implements the annotation engine of §IV.C: a domain
// dictionary mapping surface expressions to canonical forms and semantic
// categories, a lightweight part-of-speech tagger, and a user-defined
// pattern engine that attaches communicative-intention labels to phrase
// patterns — including the polarity handling of the paper's "rude"
// example (assertion → complaint, negation → commendation, question →
// question).
//
// The output of the engine is a list of Concepts: "we use the term
// 'concept' as a representation of the textual content in order to
// distinguish it from a simple keyword with the surface expression."
package annotate

import (
	"sort"
	"strings"

	"bivoc/internal/textproc"
)

// PoS is a coarse part-of-speech tag.
type PoS uint8

// Part-of-speech inventory; deliberately coarse, as in the paper's
// dictionary entries ("child seat [noun]", "NY [proper noun]").
const (
	PoSNoun PoS = iota
	PoSProperNoun
	PoSVerb
	PoSAdjective
	PoSAdverb
	PoSNumeric
	PoSPronoun
	PoSOther
	// PoSAny matches every tag in pattern elements.
	PoSAny
)

func (p PoS) String() string {
	switch p {
	case PoSNoun:
		return "noun"
	case PoSProperNoun:
		return "proper noun"
	case PoSVerb:
		return "verb"
	case PoSAdjective:
		return "adjective"
	case PoSAdverb:
		return "adverb"
	case PoSNumeric:
		return "numeric"
	case PoSPronoun:
		return "pronoun"
	case PoSAny:
		return "any"
	default:
		return "other"
	}
}

// Entry is one domain-dictionary record: a surface expression with its
// part of speech, canonical form and semantic category, e.g.
//
//	child seat [noun] → child seat [vehicle feature]
//	NY [proper noun] → New York [place]
//	master card [noun] → credit card [payment methods]
type Entry struct {
	Surface   string
	PoS       PoS
	Canonical string
	Category  string
}

// Dictionary holds entries indexed by their (lowercase) surface form.
// Multi-word surfaces are supported with longest-match-first lookup via
// a word-level trie, so Tag probes spans by walking child pointers
// instead of joining candidate word windows into throwaway strings.
type Dictionary struct {
	entries map[string]Entry
	root    *trieNode
}

// trieNode is one word position in the surface trie. Terminal nodes
// carry the entry and its stored key (the words re-joined with single
// spaces), which becomes the TaggedWord surface without another join.
type trieNode struct {
	children map[string]*trieNode
	entry    *Entry
	key      string
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{entries: make(map[string]Entry), root: &trieNode{}}
}

// Add inserts or replaces an entry.
func (d *Dictionary) Add(e Entry) {
	key := strings.ToLower(strings.TrimSpace(e.Surface))
	if key == "" {
		return
	}
	d.entries[key] = e
	// Split on single spaces (not Fields): a key with irregular internal
	// whitespace keeps an empty-word path component no tokenizer output
	// can follow, staying unreachable from Tag exactly as it always was.
	node := d.root
	for _, w := range strings.Split(key, " ") {
		if node.children == nil {
			node.children = make(map[string]*trieNode)
		}
		next, ok := node.children[w]
		if !ok {
			next = &trieNode{}
			node.children[w] = next
		}
		node = next
	}
	stored := d.entries[key]
	node.entry = &stored
	node.key = key
}

// AddAll inserts many entries.
func (d *Dictionary) AddAll(entries []Entry) {
	for _, e := range entries {
		d.Add(e)
	}
}

// Lookup finds the entry for an exact surface form.
func (d *Dictionary) Lookup(surface string) (Entry, bool) {
	e, ok := d.entries[strings.ToLower(surface)]
	return e, ok
}

// Len returns the number of entries.
func (d *Dictionary) Len() int { return len(d.entries) }

// Categories returns the sorted distinct semantic categories.
func (d *Dictionary) Categories() []string {
	set := map[string]bool{}
	for _, e := range d.entries {
		set[e.Category] = true
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// verbLexicon and friends seed the PoS tagger. Conversational call-centre
// English is dominated by a small closed verb set; suffix rules catch the
// rest.
var verbLexicon = map[string]bool{
	"be": true, "is": true, "am": true, "are": true, "was": true, "were": true,
	"have": true, "has": true, "had": true, "do": true, "does": true, "did": true,
	"want": true, "need": true, "like": true, "book": true, "make": true,
	"get": true, "give": true, "take": true, "pay": true, "call": true,
	"help": true, "know": true, "tell": true, "confirm": true, "check": true,
	"cancel": true, "change": true, "hold": true, "charge": true, "send": true,
	"go": true, "come": true, "say": true, "see": true, "find": true,
	"reserve": true, "rent": true, "pick": true, "drop": true, "return": true,
	"leave": true, "switch": true, "disconnect": true, "activate": true,
	"deactivate": true, "recharge": true, "work": true, "solve": true,
	"resolve": true, "offer": true, "provide": true, "save": true,
}

var adjectiveLexicon = map[string]bool{
	"good": true, "great": true, "wonderful": true, "fantastic": true,
	"excellent": true, "nice": true, "bad": true, "poor": true, "high": true,
	"low": true, "cheap": true, "expensive": true, "rude": true,
	"helpful": true, "new": true, "latest": true, "full": true, "mid": true,
	"luxury": true, "available": true, "free": true, "best": true,
	"terrible": true, "pathetic": true, "slow": true, "wrong": true,
}

var pronounLexicon = map[string]bool{
	"i": true, "you": true, "he": true, "she": true, "it": true, "we": true,
	"they": true, "me": true, "him": true, "her": true, "us": true,
	"them": true, "my": true, "your": true, "this": true, "that": true,
}

// TagWord assigns a coarse PoS to one (lowercase) word, consulting the
// dictionary first (its entries carry curated tags).
func (d *Dictionary) TagWord(w string) PoS {
	if e, ok := d.entries[w]; ok {
		return e.PoS
	}
	switch {
	case textproc.IsNumeric(w):
		return PoSNumeric
	case pronounLexicon[w]:
		return PoSPronoun
	case verbLexicon[w]:
		return PoSVerb
	case adjectiveLexicon[w]:
		return PoSAdjective
	case strings.HasSuffix(w, "ly") && len(w) > 3:
		return PoSAdverb
	case strings.HasSuffix(w, "ing") && len(w) > 4,
		strings.HasSuffix(w, "ed") && len(w) > 3:
		return PoSVerb
	default:
		return PoSNoun
	}
}

// TaggedWord is one token with its tag and dictionary annotation.
type TaggedWord struct {
	Word      string // lowercase surface
	PoS       PoS
	Canonical string // canonical form if a dictionary entry covers it
	Category  string // semantic category from the dictionary
}

// Tag tokenizes and tags text, applying longest-match dictionary lookup
// so multi-word surfaces ("master card") collapse to one tagged unit
// carrying the canonical form ("credit card") and category.
func (d *Dictionary) Tag(text string) []TaggedWord {
	words := textproc.Words(text)
	if len(words) == 0 {
		return nil
	}
	out := make([]TaggedWord, 0, len(words))
	i := 0
	for i < len(words) {
		// Walk the trie from position i, remembering the deepest terminal
		// node — the longest dictionary surface starting here.
		node := d.root
		var best *trieNode
		bestSpan := 0
		for j := i; j < len(words); j++ {
			next := node.children[words[j]]
			if next == nil {
				break
			}
			node = next
			if node.entry != nil {
				best, bestSpan = node, j-i+1
			}
		}
		if best != nil {
			e := best.entry
			out = append(out, TaggedWord{
				Word:      best.key,
				PoS:       e.PoS,
				Canonical: e.Canonical,
				Category:  e.Category,
			})
			i += bestSpan
			continue
		}
		w := words[i]
		out = append(out, TaggedWord{Word: w, PoS: d.TagWord(w)})
		i++
	}
	return out
}
