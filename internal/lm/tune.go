package lm

import (
	"errors"
	"math"
)

// TuneInterpolationWeights estimates linear-interpolation weights for
// component models by expectation-maximization on held-out text — the
// standard way the paper's "linearly combined with high weight given to
// call-center specific model" weights are actually chosen. Each EM
// iteration computes, for every held-out token, the posterior
// responsibility of each component, then re-normalizes.
//
// It returns the weight vector (summing to 1) and the final held-out
// log-likelihood per token.
func TuneInterpolationWeights(models []Model, heldout [][]string, iterations int) ([]float64, float64, error) {
	if len(models) == 0 {
		return nil, 0, errors.New("lm: no models to tune")
	}
	if len(heldout) == 0 {
		return nil, 0, errors.New("lm: no held-out data")
	}
	if iterations <= 0 {
		iterations = 10
	}
	k := len(models)
	weights := make([]float64, k)
	for i := range weights {
		weights[i] = 1 / float64(k)
	}
	// Pre-compute per-token component probabilities once; EM then only
	// re-weights them.
	type tokenProbs []float64 // one per component
	var probs []tokenProbs
	for _, sentence := range heldout {
		for pos := 0; pos <= len(sentence); pos++ {
			word := EOS
			if pos < len(sentence) {
				word = sentence[pos]
			}
			tp := make(tokenProbs, k)
			for ci, m := range models {
				tp[ci] = math.Exp(m.LogProb(sentence[:pos], word))
			}
			probs = append(probs, tp)
		}
	}
	var ll float64
	for it := 0; it < iterations; it++ {
		counts := make([]float64, k)
		ll = 0
		for _, tp := range probs {
			total := 0.0
			for ci := range tp {
				total += weights[ci] * tp[ci]
			}
			if total <= 0 {
				continue
			}
			ll += math.Log(total)
			for ci := range tp {
				counts[ci] += weights[ci] * tp[ci] / total
			}
		}
		sum := 0.0
		for _, c := range counts {
			sum += c
		}
		if sum <= 0 {
			break
		}
		for ci := range weights {
			weights[ci] = counts[ci] / sum
		}
	}
	return weights, ll / float64(len(probs)), nil
}

// NewTunedInterpolated tunes weights on held-out data and returns the
// resulting interpolated model along with the learned weights.
func NewTunedInterpolated(models []Model, heldout [][]string, iterations int) (*Interpolated, []float64, error) {
	weights, _, err := TuneInterpolationWeights(models, heldout, iterations)
	if err != nil {
		return nil, nil, err
	}
	ip, err := NewInterpolated(models, weights)
	if err != nil {
		return nil, nil, err
	}
	return ip, weights, nil
}
