package lm

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func sentences(text string) [][]string {
	var out [][]string
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		out = append(out, strings.Fields(line))
	}
	return out
}

var tinyCorpus = sentences(`
i want to book a car
i want to book a full size car
i would like to book a car
can i get a rate for a car
book a car for me please
i want a good rate
`)

func buildBigram(t *testing.T) *NGram {
	t.Helper()
	tr := NewTrainer(2)
	tr.AddCorpus(tinyCorpus)
	m, err := tr.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBuildEmptyFails(t *testing.T) {
	if _, err := NewTrainer(2).Build(); err == nil {
		t.Error("empty trainer should fail to build")
	}
}

func TestOrderClamped(t *testing.T) {
	tr := NewTrainer(0)
	tr.Add([]string{"a"})
	m, err := tr.Build()
	if err != nil {
		t.Fatal(err)
	}
	if m.Order() != 1 {
		t.Errorf("order = %d", m.Order())
	}
}

func TestProbsSumToOne(t *testing.T) {
	m := buildBigram(t)
	// For a fixed context the probabilities over vocab + EOS should sum
	// to <= 1 (remaining mass is reserved for unknowns) and close to 1.
	contexts := [][]string{{}, {"i"}, {"book", "a"}, {"unseen-context-word"}}
	for _, ctx := range contexts {
		sum := 0.0
		for _, w := range append(m.Vocabulary(), EOS) {
			sum += math.Exp(m.LogProb(ctx, w))
		}
		if sum > 1.0+1e-9 {
			t.Errorf("ctx %v: probability mass %v exceeds 1", ctx, sum)
		}
		if sum < 0.95 {
			t.Errorf("ctx %v: probability mass %v too small", ctx, sum)
		}
	}
}

func TestSeenBigramBeatsUnseen(t *testing.T) {
	m := buildBigram(t)
	seen := m.LogProb([]string{"book"}, "a")      // frequent bigram
	unseen := m.LogProb([]string{"book"}, "rate") // never follows "book"
	if seen <= unseen {
		t.Errorf("seen bigram %v should beat unseen %v", seen, unseen)
	}
}

func TestFrequentWordBeatsRare(t *testing.T) {
	m := buildBigram(t)
	frequent := m.LogProb(nil, "a")
	rare := m.LogProb(nil, "please")
	if frequent <= rare {
		t.Errorf("frequent unigram %v should beat rare %v", frequent, rare)
	}
}

func TestOOVFinite(t *testing.T) {
	m := buildBigram(t)
	lp := m.LogProb([]string{"i"}, "zzzgarbage")
	if math.IsInf(lp, 0) || math.IsNaN(lp) {
		t.Errorf("OOV log-prob should be finite, got %v", lp)
	}
	inv := m.LogProb([]string{"i"}, "want")
	if lp >= inv {
		t.Errorf("OOV %v should score below in-vocab %v", lp, inv)
	}
}

func TestInVocab(t *testing.T) {
	m := buildBigram(t)
	if !m.InVocab("car") || m.InVocab("zebra") {
		t.Error("vocab membership wrong")
	}
	if !m.InVocab(EOS) {
		t.Error("EOS should be scoreable")
	}
}

func TestLogProbAlwaysNegativeProperty(t *testing.T) {
	m := buildBigram(t)
	vocab := m.Vocabulary()
	f := func(ctxIdx, wIdx uint8) bool {
		ctx := []string{vocab[int(ctxIdx)%len(vocab)]}
		w := vocab[int(wIdx)%len(vocab)]
		lp := m.LogProb(ctx, w)
		return lp < 0 && !math.IsInf(lp, 0) && !math.IsNaN(lp)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSentenceLogProbAdds(t *testing.T) {
	m := buildBigram(t)
	good := SentenceLogProb(m, []string{"i", "want", "to", "book", "a", "car"})
	bad := SentenceLogProb(m, []string{"car", "a", "book", "to", "want", "i"})
	if good <= bad {
		t.Errorf("natural order %v should beat reversed %v", good, bad)
	}
}

func TestPerplexityTrainVsGarbage(t *testing.T) {
	m := buildBigram(t)
	train := Perplexity(m, tinyCorpus)
	garbage := Perplexity(m, sentences("rate car please book\nme for like get"))
	if train >= garbage {
		t.Errorf("train ppl %v should be below garbage ppl %v", train, garbage)
	}
	if train < 1 {
		t.Errorf("perplexity cannot be below 1, got %v", train)
	}
	if !math.IsNaN(Perplexity(m, nil)) {
		t.Error("empty corpus perplexity should be NaN")
	}
}

func TestTrigramUsesLongerContext(t *testing.T) {
	tr := NewTrainer(3)
	tr.AddCorpus(tinyCorpus)
	m, err := tr.Build()
	if err != nil {
		t.Fatal(err)
	}
	// "to book a" occurs; after ["to","book"], "a" should be very likely.
	lp := m.LogProb([]string{"want", "to", "book"}, "a")
	if math.Exp(lp) < 0.5 {
		t.Errorf("P(a | to book) = %v, want > 0.5", math.Exp(lp))
	}
}

func TestInterpolatedValidation(t *testing.T) {
	m := buildBigram(t)
	if _, err := NewInterpolated(nil, nil); err == nil {
		t.Error("empty interpolation should fail")
	}
	if _, err := NewInterpolated([]Model{m}, []float64{-1}); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := NewInterpolated([]Model{m}, []float64{0}); err == nil {
		t.Error("zero weight total should fail")
	}
	if _, err := NewInterpolated([]Model{m}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestInterpolatedBlends(t *testing.T) {
	domain := buildBigram(t)
	trGen := NewTrainer(2)
	trGen.AddCorpus(sentences("the weather is nice today\nthe stock market fell"))
	general, err := trGen.Build()
	if err != nil {
		t.Fatal(err)
	}
	ip, err := NewInterpolated([]Model{domain, general}, []float64{0.8, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// Domain word scores well, general-only word still scores finitely.
	carLP := ip.LogProb(nil, "car")
	weatherLP := ip.LogProb(nil, "weather")
	if math.IsInf(weatherLP, 0) {
		t.Error("general-vocab word should be finite under interpolation")
	}
	if carLP <= weatherLP {
		t.Errorf("domain word %v should beat general-only word %v at weight 0.8", carLP, weatherLP)
	}
	if !ip.InVocab("weather") || !ip.InVocab("car") || ip.InVocab("zebra") {
		t.Error("interpolated vocab membership wrong")
	}
	if ip.Order() != 2 {
		t.Errorf("interpolated order = %d", ip.Order())
	}
	// Union vocabulary contains both sides.
	vocab := map[string]bool{}
	for _, w := range ip.Vocabulary() {
		vocab[w] = true
	}
	if !vocab["car"] || !vocab["weather"] {
		t.Error("union vocabulary incomplete")
	}
}

func TestInterpolatedWeightsNormalized(t *testing.T) {
	m := buildBigram(t)
	ip1, err := NewInterpolated([]Model{m}, []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	ip2, err := NewInterpolated([]Model{m}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	a := ip1.LogProb([]string{"i"}, "want")
	b := ip2.LogProb([]string{"i"}, "want")
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("weight scaling changed probabilities: %v vs %v", a, b)
	}
}

func TestInterpolatedMassBounded(t *testing.T) {
	domain := buildBigram(t)
	trGen := NewTrainer(2)
	trGen.AddCorpus(sentences("hello world again"))
	general, _ := trGen.Build()
	ip, err := NewInterpolated([]Model{domain, general}, []float64{0.7, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, w := range append(ip.Vocabulary(), EOS) {
		sum += math.Exp(ip.LogProb([]string{"i"}, w))
	}
	if sum > 1.0+1e-6 {
		t.Errorf("interpolated mass %v exceeds 1", sum)
	}
}
