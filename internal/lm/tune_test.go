package lm

import (
	"math"
	"strings"
	"testing"
)

func corpusFrom(text string) [][]string {
	var out [][]string
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		out = append(out, strings.Fields(line))
	}
	return out
}

func buildModel(t *testing.T, corpus [][]string) *NGram {
	t.Helper()
	tr := NewTrainer(2)
	tr.AddCorpus(corpus)
	m, err := tr.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTuneWeightsPrefersDomainModel(t *testing.T) {
	domainCorpus := corpusFrom(`
i want to book a car
book a car for me please
a good rate for a car
i want a discount
`)
	generalCorpus := corpusFrom(`
the weather is nice today
we watched a movie last night
the train was late again
`)
	domain := buildModel(t, domainCorpus)
	general := buildModel(t, generalCorpus)
	// Held-out call-centre text: EM should put most weight on the domain
	// model — "high weight given to call-center specific model".
	heldout := corpusFrom(`
i want to book a good car
a discount rate for me please
`)
	weights, ll, err := TuneInterpolationWeights([]Model{domain, general}, heldout, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(weights) != 2 {
		t.Fatalf("weights = %v", weights)
	}
	if math.Abs(weights[0]+weights[1]-1) > 1e-9 {
		t.Errorf("weights not normalized: %v", weights)
	}
	if weights[0] <= weights[1] {
		t.Errorf("domain weight %v should dominate general %v", weights[0], weights[1])
	}
	if weights[0] < 0.7 {
		t.Errorf("domain weight %v unexpectedly low", weights[0])
	}
	if math.IsNaN(ll) || ll >= 0 {
		t.Errorf("held-out log-likelihood %v implausible", ll)
	}
}

func TestTuneWeightsImprovesPerplexity(t *testing.T) {
	domain := buildModel(t, corpusFrom("i want to book a car\na good rate please"))
	general := buildModel(t, corpusFrom("the weather is nice\nthe market fell again"))
	heldout := corpusFrom("i want a good car\nbook a rate please")

	tuned, weights, err := NewTunedInterpolated([]Model{domain, general}, heldout, 15)
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := NewInterpolated([]Model{domain, general}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	pt, pu := Perplexity(tuned, heldout), Perplexity(uniform, heldout)
	if pt > pu+1e-9 {
		t.Errorf("tuned perplexity %v should not exceed uniform %v (weights %v)", pt, pu, weights)
	}
}

func TestTuneWeightsErrors(t *testing.T) {
	m := buildModel(t, corpusFrom("a b c"))
	if _, _, err := TuneInterpolationWeights(nil, corpusFrom("a"), 5); err == nil {
		t.Error("no models accepted")
	}
	if _, _, err := TuneInterpolationWeights([]Model{m}, nil, 5); err == nil {
		t.Error("no held-out accepted")
	}
}

func TestTuneWeightsSingleModel(t *testing.T) {
	m := buildModel(t, corpusFrom("a b c\nc b a"))
	weights, _, err := TuneInterpolationWeights([]Model{m}, corpusFrom("a b"), 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(weights[0]-1) > 1e-9 {
		t.Errorf("single-model weight = %v", weights[0])
	}
}
