// Package lm implements the interpolated N-gram language model of the
// BIVoC ASR engine (§IV.A.1): "Independent N-gram models constructed from
// general purpose US English text and call center specific text are
// linearly combined with high weight given to call-center specific
// model."
//
// Each component model is a Witten-Bell smoothed N-gram model; components
// are combined by linear interpolation. Probabilities are exposed in log
// space. The decoder queries the model one word at a time with its
// history, so the hot path is LogProb(context, word).
package lm

import (
	"errors"
	"math"
	"strings"
)

// Sentence boundary markers. Trainers insert them automatically.
const (
	BOS = "<s>"
	EOS = "</s>"
	UNK = "<unk>"
)

// Model scores word sequences. Implementations must return a finite
// log-probability for any word, mapping out-of-vocabulary words to an
// unknown-word estimate.
type Model interface {
	// LogProb returns log P(word | context). The context is the full
	// preceding word sequence; the model uses as much of its tail as its
	// order allows.
	LogProb(context []string, word string) float64
	// Order returns the model's N-gram order (1 = unigram, 2 = bigram...).
	Order() int
	// Vocabulary returns the known words, excluding markers, in
	// unspecified order.
	Vocabulary() []string
	// InVocab reports whether the word was seen in training.
	InVocab(word string) bool
}

const ctxSep = "\x1f"

// NGram is a Witten-Bell smoothed N-gram model.
type NGram struct {
	order int
	// counts[k] maps a k-word context key to word counts; counts[0] has
	// the empty-context (unigram) counts under "".
	counts []map[string]map[string]int
	// ctxTotals[k] caches total and distinct-successor counts per context.
	ctxTotals []map[string]ctxStat
	vocabSize int
	unkProb   float64 // probability mass reserved for unseen words
	vocab     map[string]bool
}

type ctxStat struct {
	total    int // sum of counts after this context
	distinct int // number of distinct successor words
}

// Trainer accumulates N-gram counts.
type Trainer struct {
	order  int
	counts []map[string]map[string]int
	vocab  map[string]bool
}

// NewTrainer returns a trainer for an order-N model (N >= 1).
func NewTrainer(order int) *Trainer {
	if order < 1 {
		order = 1
	}
	t := &Trainer{order: order, vocab: make(map[string]bool)}
	t.counts = make([]map[string]map[string]int, order)
	for i := range t.counts {
		t.counts[i] = make(map[string]map[string]int)
	}
	return t
}

// Add accumulates one sentence (already tokenized, lowercase). Boundary
// markers are added internally.
func (t *Trainer) Add(sentence []string) {
	if len(sentence) == 0 {
		return
	}
	padded := make([]string, 0, len(sentence)+t.order)
	for i := 0; i < t.order-1; i++ {
		padded = append(padded, BOS)
	}
	padded = append(padded, sentence...)
	padded = append(padded, EOS)
	for _, w := range sentence {
		t.vocab[w] = true
	}
	for i := t.order - 1; i < len(padded); i++ {
		w := padded[i]
		for k := 0; k < t.order; k++ {
			// context of length k ending just before position i
			if i-k < 0 {
				break
			}
			key := strings.Join(padded[i-k:i], ctxSep)
			m := t.counts[k][key]
			if m == nil {
				m = make(map[string]int)
				t.counts[k][key] = m
			}
			m[w]++
		}
	}
}

// AddCorpus adds every sentence in the corpus.
func (t *Trainer) AddCorpus(corpus [][]string) {
	for _, s := range corpus {
		t.Add(s)
	}
}

// Build finalizes the counts into a queryable model.
func (t *Trainer) Build() (*NGram, error) {
	if len(t.vocab) == 0 {
		return nil, errors.New("lm: no training data")
	}
	m := &NGram{
		order:     t.order,
		counts:    t.counts,
		vocabSize: len(t.vocab) + 1, // +1 for EOS
		vocab:     t.vocab,
	}
	m.ctxTotals = make([]map[string]ctxStat, t.order)
	for k := range t.counts {
		m.ctxTotals[k] = make(map[string]ctxStat, len(t.counts[k]))
		for key, succ := range t.counts[k] {
			st := ctxStat{distinct: len(succ)}
			for _, c := range succ {
				st.total += c
			}
			m.ctxTotals[k][key] = st
		}
	}
	// Score an unknown word as one count of reserved mass spread over a
	// large assumed unseen vocabulary, so that summing over any plausible
	// closed word list (e.g. the union vocabulary of an interpolation)
	// cannot push total probability mass above 1.
	const assumedUnseenVocab = 1e6
	m.unkProb = 1.0 / (float64(m.ctxTotals[0][""].total+m.vocabSize) * assumedUnseenVocab)
	return m, nil
}

// Order implements Model.
func (m *NGram) Order() int { return m.order }

// InVocab implements Model.
func (m *NGram) InVocab(w string) bool { return m.vocab[w] || w == EOS }

// Vocabulary implements Model.
func (m *NGram) Vocabulary() []string {
	out := make([]string, 0, len(m.vocab))
	for w := range m.vocab {
		out = append(out, w)
	}
	return out
}

// prob returns the Witten-Bell probability of w after the k-word context
// key, recursing toward the unigram.
func (m *NGram) prob(k int, key, w string) float64 {
	if k == 0 {
		st := m.ctxTotals[0][""]
		c := m.counts[0][""][w]
		// Laplace-style floor blended with Witten-Bell shape at the
		// unigram level guarantees every vocabulary word scores > 0.
		return (float64(c) + 1) / float64(st.total+m.vocabSize)
	}
	st, ok := m.ctxTotals[k][key]
	if !ok || st.total == 0 {
		// Unseen context: back off entirely.
		return m.prob(k-1, chopContext(key), w)
	}
	c := m.counts[k][key][w]
	lower := m.prob(k-1, chopContext(key), w)
	t := float64(st.distinct)
	return (float64(c) + t*lower) / (float64(st.total) + t)
}

// chopContext removes the earliest word from a context key.
func chopContext(key string) string {
	if i := strings.Index(key, ctxSep); i >= 0 {
		return key[i+len(ctxSep):]
	}
	return ""
}

// LogProb implements Model.
func (m *NGram) LogProb(context []string, word string) float64 {
	if !m.InVocab(word) {
		return math.Log(m.unkProb)
	}
	k := m.order - 1
	if len(context) < k {
		// Pad with BOS on the left.
		padded := make([]string, 0, k)
		for i := 0; i < k-len(context); i++ {
			padded = append(padded, BOS)
		}
		padded = append(padded, context...)
		context = padded
	} else {
		context = context[len(context)-k:]
	}
	key := strings.Join(context, ctxSep)
	return math.Log(m.prob(k, key, word))
}

// Interpolated linearly combines component models: P = Σ wᵢ Pᵢ. The
// paper gives "high weight to the call-center specific model".
type Interpolated struct {
	models  []Model
	weights []float64
	order   int
}

// NewInterpolated combines the models with the given weights, which are
// normalized to sum to 1. It returns an error on mismatched lengths or
// non-positive total weight.
func NewInterpolated(models []Model, weights []float64) (*Interpolated, error) {
	if len(models) == 0 || len(models) != len(weights) {
		return nil, errors.New("lm: need one weight per model")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			return nil, errors.New("lm: negative interpolation weight")
		}
		total += w
	}
	if total <= 0 {
		return nil, errors.New("lm: zero total interpolation weight")
	}
	norm := make([]float64, len(weights))
	order := 0
	for i, w := range weights {
		norm[i] = w / total
		if models[i].Order() > order {
			order = models[i].Order()
		}
	}
	return &Interpolated{models: models, weights: norm, order: order}, nil
}

// LogProb implements Model.
func (ip *Interpolated) LogProb(context []string, word string) float64 {
	p := 0.0
	for i, m := range ip.models {
		p += ip.weights[i] * math.Exp(m.LogProb(context, word))
	}
	if p <= 0 {
		return math.Inf(-1)
	}
	return math.Log(p)
}

// Order implements Model.
func (ip *Interpolated) Order() int { return ip.order }

// InVocab implements Model.
func (ip *Interpolated) InVocab(w string) bool {
	for _, m := range ip.models {
		if m.InVocab(w) {
			return true
		}
	}
	return false
}

// Vocabulary implements Model: the union of component vocabularies.
func (ip *Interpolated) Vocabulary() []string {
	seen := map[string]bool{}
	var out []string
	for _, m := range ip.models {
		for _, w := range m.Vocabulary() {
			if !seen[w] {
				seen[w] = true
				out = append(out, w)
			}
		}
	}
	return out
}

// SentenceLogProb returns the total log-probability of the sentence
// including the end-of-sentence transition.
func SentenceLogProb(m Model, sentence []string) float64 {
	lp := 0.0
	for i, w := range sentence {
		lp += m.LogProb(sentence[:i], w)
	}
	lp += m.LogProb(sentence, EOS)
	return lp
}

// Perplexity returns the per-token perplexity of the corpus under m,
// counting the EOS transition of each sentence as a token.
func Perplexity(m Model, corpus [][]string) float64 {
	lp := 0.0
	tokens := 0
	for _, s := range corpus {
		lp += SentenceLogProb(m, s)
		tokens += len(s) + 1
	}
	if tokens == 0 {
		return math.NaN()
	}
	return math.Exp(-lp / float64(tokens))
}
