package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"
)

// failFirst returns a FaultFn injecting a transient fault into the
// first n attempts of every item whose key matches keep.
func failFirst(n int, keep func(key string) bool) FaultFn {
	return func(stage, key string, attempt int) error {
		if attempt <= n && keep(key) {
			return Transient(fmt.Errorf("injected transient fault (stage %s, item %s, attempt %d)", stage, key, attempt))
		}
		return nil
	}
}

func itemKey(it item) string { return strconv.Itoa(it.idx) }

func everyThird(key string) bool {
	n, _ := strconv.Atoi(key)
	return n%3 == 0
}

func TestTransientFaultsRetriedToSuccess(t *testing.T) {
	const n = 90
	pol := RetryPolicy{MaxAttempts: 3, BaseDelay: 50 * time.Microsecond, Jitter: 0.5}
	p := New[item]("t",
		Stage[item]{Name: "a", Workers: 4, Fn: appendStage("a"), Retry: pol},
		Stage[item]{Name: "b", Workers: 2, Fn: appendStage("b"), Retry: pol},
	)
	p.WithKey(itemKey).WithSeed(7)
	p.stages[0] = InjectFaults(p.stages[0], itemKey, failFirst(2, everyThird))

	got := make([]string, n)
	err := p.Run(context.Background(),
		IndexedSource(n, func(i int) item { return item{idx: i} }),
		func(it item) error { got[it.idx] = it.trace; return nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range got {
		if tr != "ab" {
			t.Fatalf("item %d trace %q, want ab — retries must replay the full stage", i, tr)
		}
	}
	st := p.Stats()[0]
	// 30 items fail twice each before succeeding on the third attempt.
	if st.Retries != 60 {
		t.Fatalf("stage a retries = %d, want 60", st.Retries)
	}
	if st.Out != n || st.Errors != 0 || st.DeadLetters != 0 {
		t.Fatalf("stage a counters %+v, want out=%d errors=0 dead=0", st, n)
	}
}

func TestRetryExhaustionFailsFastWithoutBudget(t *testing.T) {
	p := New[item]("t",
		Stage[item]{Name: "a", Workers: 2, Fn: appendStage("a"),
			Retry: RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Microsecond}},
	)
	p.stages[0] = InjectFaults(p.stages[0], itemKey,
		failFirst(99, func(key string) bool { return key == "5" }))
	err := p.Run(context.Background(),
		IndexedSource(20, func(i int) item { return item{idx: i} }),
		func(item) error { return nil })
	if err == nil || !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v, want wrapped injected fault", err)
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("error %q does not report the attempt count", err)
	}
}

func TestPermanentFaultsDeadLetter(t *testing.T) {
	const n = 60
	perm := errors.New("corrupt recording")
	p := New[item]("t",
		Stage[item]{Name: "a", Workers: 3, Fn: appendStage("a"),
			Retry: RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Microsecond}},
		Stage[item]{Name: "b", Workers: 2, Fn: appendStage("b")},
	)
	p.WithKey(itemKey).WithDeadLetterBudget(n)
	p.stages[0] = InjectFaults(p.stages[0], itemKey, func(stage, key string, attempt int) error {
		if everyThird(key) {
			return perm
		}
		return nil
	})
	var delivered int
	err := p.Run(context.Background(),
		IndexedSource(n, func(i int) item { return item{idx: i} }),
		func(item) error { delivered++; return nil })
	if err != nil {
		t.Fatalf("run with dead-letter budget failed: %v", err)
	}
	dls := p.DeadLetters()
	if len(dls) != n/3 {
		t.Fatalf("%d dead letters, want %d", len(dls), n/3)
	}
	if delivered != n-n/3 {
		t.Fatalf("delivered %d, want %d", delivered, n-n/3)
	}
	for _, dl := range dls {
		if dl.Stage != "a" || dl.Attempts != 1 || !errors.Is(dl.Err, perm) {
			t.Fatalf("dead letter %+v: want stage a, 1 attempt (permanent: no retries), wrapped cause", dl)
		}
	}
	// Sorted by key → stable report order.
	for i := 1; i < len(dls); i++ {
		if dls[i-1].Key >= dls[i].Key {
			t.Fatalf("dead letters not sorted: %q before %q", dls[i-1].Key, dls[i].Key)
		}
	}
	if got := len(p.DeadItems()); got != n/3 {
		t.Fatalf("DeadItems returned %d items, want %d", got, n/3)
	}
	if st := p.Stats()[0]; st.DeadLetters != uint64(n/3) || st.Retries != 0 {
		t.Fatalf("stage a counters %+v, want dead=%d retries=0", st, n/3)
	}
}

func TestTransientExhaustionDeadLettersWithAttempts(t *testing.T) {
	p := New[item]("t",
		Stage[item]{Name: "a", Fn: appendStage("a"),
			Retry: RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Microsecond}},
	)
	p.WithKey(itemKey).WithDeadLetterBudget(5)
	p.stages[0] = InjectFaults(p.stages[0], itemKey,
		failFirst(99, func(key string) bool { return key == "2" }))
	err := p.Run(context.Background(),
		IndexedSource(6, func(i int) item { return item{idx: i} }),
		func(item) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	dls := p.DeadLetters()
	if len(dls) != 1 || dls[0].Attempts != 3 {
		t.Fatalf("dead letters %+v, want one with 3 attempts", dls)
	}
}

func TestDeadLetterBudgetExceededFailsWithFirstError(t *testing.T) {
	p := New[item]("t",
		Stage[item]{Name: "a", Workers: 1, Fn: appendStage("a")},
	)
	p.WithKey(itemKey).WithDeadLetterBudget(2)
	p.stages[0] = InjectFaults(p.stages[0], itemKey, func(stage, key string, attempt int) error {
		return fmt.Errorf("permanent fault on item %s", key)
	})
	err := p.Run(context.Background(),
		IndexedSource(10, func(i int) item { return item{idx: i} }),
		func(item) error { return nil })
	if err == nil {
		t.Fatal("run exceeded the dead-letter budget but reported success")
	}
	if !strings.Contains(err.Error(), "dead-letter budget 2 exceeded") {
		t.Fatalf("error %q does not mention the budget", err)
	}
	// Single worker → items in order → the first dead letter is item 0.
	if !strings.Contains(err.Error(), "permanent fault on item 0") {
		t.Fatalf("error %q does not carry the first dead-letter error", err)
	}
}

func TestStageTimeoutRetries(t *testing.T) {
	const n = 12
	var stalled bool
	p := New[item]("t",
		Stage[item]{Name: "slow", Workers: 1,
			Timeout: 5 * time.Millisecond,
			Retry:   RetryPolicy{MaxAttempts: 2, BaseDelay: 10 * time.Microsecond},
			Fn: func(ctx context.Context, it item) (item, error) {
				if it.idx == 4 && !stalled {
					stalled = true // first attempt of item 4 stalls past the timeout
					select {
					case <-ctx.Done():
						return it, ctx.Err()
					case <-time.After(10 * time.Second):
					}
				}
				return it, nil
			}},
	)
	err := p.Run(context.Background(),
		IndexedSource(n, func(i int) item { return item{idx: i} }),
		func(item) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats()[0]
	if st.Timeouts != 1 || st.Retries != 1 || st.Out != n {
		t.Fatalf("counters %+v, want 1 timeout retried to success and all %d delivered", st, n)
	}
}

func TestBackoffDeterministicJitter(t *testing.T) {
	pol := RetryPolicy{MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 16 * time.Millisecond, Jitter: 0.5}
	for attempt := 1; attempt <= 7; attempt++ {
		a := pol.Backoff(42, "decode", "CALL-007", attempt)
		b := pol.Backoff(42, "decode", "CALL-007", attempt)
		if a != b {
			t.Fatalf("attempt %d: backoff not deterministic (%v vs %v)", attempt, a, b)
		}
		if a > 16*time.Millisecond {
			t.Fatalf("attempt %d: backoff %v over MaxDelay", attempt, a)
		}
		uncapped := time.Millisecond << (attempt - 1)
		floor := uncapped / 2
		if uncapped > 16*time.Millisecond {
			floor = 8 * time.Millisecond
		}
		if a < floor {
			t.Fatalf("attempt %d: backoff %v below jitter floor %v", attempt, a, floor)
		}
	}
	if pol.Backoff(42, "decode", "CALL-007", 3) == pol.Backoff(42, "decode", "CALL-008", 3) {
		t.Fatal("distinct item keys drew identical jitter")
	}
	if pol.Backoff(42, "decode", "CALL-007", 3) == pol.Backoff(43, "decode", "CALL-007", 3) {
		t.Fatal("distinct seeds drew identical jitter")
	}
}

func TestInjectFaultsCountsAttemptsPerItem(t *testing.T) {
	var maxAttempt int
	stage := InjectFaults(
		Stage[item]{Name: "a", Fn: appendStage("a")},
		itemKey,
		func(stage, key string, attempt int) error {
			if attempt > maxAttempt {
				maxAttempt = attempt
			}
			if key == "1" && attempt == 1 {
				return Transient(errors.New("flaky"))
			}
			return nil
		})
	stage.Retry = RetryPolicy{MaxAttempts: 2, BaseDelay: 10 * time.Microsecond}
	p := New[item]("t", stage)
	err := p.Run(context.Background(),
		IndexedSource(3, func(i int) item { return item{idx: i} }),
		func(item) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	// Only the retried item reaches attempt 2; per-item counting means
	// the others stay at 1.
	if maxAttempt != 2 {
		t.Fatalf("max attempt seen = %d, want 2", maxAttempt)
	}
}
