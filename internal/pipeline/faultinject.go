package pipeline

import (
	"context"
	"sync"
)

// FaultFn decides whether to inject a failure into a stage attempt.
// It is called before the real stage function with the stage name, the
// item's key, and the 1-based attempt number for that (stage, key)
// pair; returning a non-nil error makes the attempt fail with it
// (wrap with Transient to exercise the retry path, return a plain
// error to exercise dead-lettering). Returning nil lets the attempt
// through.
//
// This is the chaos-testing hook behind the fault-injection suite: the
// drivers wrap every stage with InjectFaults when a FaultFn is
// configured, so a test can prove that transient faults retried to
// success leave reports byte-identical to a fault-free run, and that
// permanent faults degrade into dead letters instead of crashes.
// FaultFn must be safe for concurrent use and deterministic in its
// arguments — key wall-clock- or scheduling-dependent faults and the
// run stops being reproducible.
type FaultFn func(stage, key string, attempt int) error

// InjectFaults wraps a stage so fault is consulted before every
// attempt of the stage function. key extracts the item identity handed
// to fault (nil means every item shares the empty key, collapsing the
// per-item attempt counters into one). A nil fault returns the stage
// unchanged.
func InjectFaults[T any](stage Stage[T], key func(T) string, fault FaultFn) Stage[T] {
	if fault == nil {
		return stage
	}
	var mu sync.Mutex
	attempts := map[string]int{}
	fn := stage.Fn
	stage.Fn = func(ctx context.Context, item T) (T, error) {
		k := ""
		if key != nil {
			k = key(item)
		}
		mu.Lock()
		attempts[k]++
		a := attempts[k]
		mu.Unlock()
		if err := fault(stage.Name, k, a); err != nil {
			return item, err
		}
		return fn(ctx, item)
	}
	return stage
}
