package pipeline

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// TestStageStatsJSONSchemaStable pins the exact wire format of
// StageStats. /statsz consumers key on these names; if this test
// breaks, you are making a breaking schema change — bump deliberately,
// not accidentally.
func TestStageStatsJSONSchemaStable(t *testing.T) {
	s := StageStats{
		Name:        "annotate",
		Workers:     4,
		In:          100,
		Out:         90,
		Skipped:     5,
		Errors:      1,
		Retries:     7,
		Timeouts:    2,
		DeadLetters: 4,
		QueueDepth:  3,
		QueueCap:    8,
		AvgLatency:  1500 * time.Nanosecond,
		MaxLatency:  2 * time.Millisecond,
	}
	got, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"name":"annotate","workers":4,"in":100,"out":90,"skipped":5,` +
		`"errors":1,"retries":7,"timeouts":2,"dead_letters":4,` +
		`"queue_depth":3,"queue_cap":8,"avg_latency_ns":1500,"max_latency_ns":2000000}`
	if string(got) != want {
		t.Errorf("StageStats JSON schema drifted:\n got %s\nwant %s", got, want)
	}

	var back StageStats
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, s) {
		t.Errorf("unmarshal round-trip drifted:\n got %#v\nwant %#v", back, s)
	}
}

// TestStatsMarshalFromLiveRun marshals the Stats() of a real run, so
// the encoder is exercised against values the pipeline itself produces
// (and a slice of StageStats encodes element-wise).
func TestStatsMarshalFromLiveRun(t *testing.T) {
	p := New[int]("json-stats",
		Stage[int]{Name: "double", Fn: func(ctx context.Context, v int) (int, error) { return 2 * v, nil }},
		Stage[int]{Name: "skip-odd", Fn: func(ctx context.Context, v int) (int, error) {
			if v%4 == 2 {
				return 0, ErrSkip
			}
			return v, nil
		}},
	)
	var got []int
	if err := p.Run(context.Background(), SliceSource([]int{1, 2, 3, 4}), func(v int) error {
		got = append(got, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(p.Stats())
	if err != nil {
		t.Fatal(err)
	}
	var back []StageStats
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Name != "double" || back[1].Name != "skip-odd" {
		t.Fatalf("unexpected stats round-trip: %s", data)
	}
	if back[0].In != 4 || back[0].Out != 4 || back[1].Skipped != 2 {
		t.Errorf("counters drifted through JSON: %s", data)
	}
}
