package pipeline

import (
	"context"
	"errors"
	"fmt"
	"time"

	"bivoc/internal/rng"
)

// ErrTransient marks an error as retryable. Stage functions (and fault
// injectors) wrap recoverable failures with Transient so the default
// transient classifier retries them; anything else is treated as
// permanent. A custom RetryPolicy.IsTransient overrides this.
var ErrTransient = errors.New("pipeline: transient fault")

// Transient wraps err so DefaultIsTransient reports it retryable. The
// original error stays reachable through errors.Is/As.
func Transient(err error) error {
	return fmt.Errorf("%w: %w", ErrTransient, err)
}

// DefaultIsTransient is the retry classifier used when a RetryPolicy
// does not set its own: errors marked with Transient and per-attempt
// timeouts (context.DeadlineExceeded) are retryable, everything else is
// permanent. Permanent failures never burn retry attempts — they go
// straight to the dead-letter queue (or fail the run when no budget is
// configured).
func DefaultIsTransient(err error) bool {
	return errors.Is(err, ErrTransient) || errors.Is(err, context.DeadlineExceeded)
}

// RetryPolicy controls re-execution of a stage function on transient
// failures. The zero value disables retry (every failure is final),
// which is the pre-fault-tolerance behaviour.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per item, including the
	// first; values <= 1 disable retry.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt (default 1ms).
	// The delay doubles each further attempt.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (default 256×BaseDelay).
	MaxDelay time.Duration
	// Jitter in (0, 1] shrinks each delay by a deterministically drawn
	// fraction of itself — delay × [1-Jitter, 1] — decorrelating retry
	// storms without sacrificing reproducibility: the draw is keyed by
	// pipeline seed, stage name, item key and attempt number, never by
	// wall clock.
	Jitter float64
	// IsTransient classifies errors as retryable. Nil means
	// DefaultIsTransient.
	IsTransient func(error) bool
}

// isZero reports whether the policy is entirely unset (funcs are not
// comparable, so RetryPolicy has no == against its zero value).
func (pol RetryPolicy) isZero() bool {
	return pol.MaxAttempts == 0 && pol.BaseDelay == 0 && pol.MaxDelay == 0 &&
		pol.Jitter == 0 && pol.IsTransient == nil
}

// maxAttempts normalizes MaxAttempts to at least one try.
func (pol RetryPolicy) maxAttempts() int {
	if pol.MaxAttempts < 1 {
		return 1
	}
	return pol.MaxAttempts
}

// transient applies the configured classifier or the default.
func (pol RetryPolicy) transient(err error) bool {
	if pol.IsTransient != nil {
		return pol.IsTransient(err)
	}
	return DefaultIsTransient(err)
}

// Backoff returns the delay before attempt+1, after `attempt` failed
// tries: capped exponential growth from BaseDelay with deterministic
// jitter. The same (seed, stage, key, attempt) always yields the same
// delay — retry timing is part of the reproducible experiment record,
// not a source of nondeterminism.
func (pol RetryPolicy) Backoff(seed uint64, stage, key string, attempt int) time.Duration {
	base := pol.BaseDelay
	if base <= 0 {
		base = time.Millisecond
	}
	max := pol.MaxDelay
	if max <= 0 {
		max = 256 * base
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if pol.Jitter > 0 {
		frac := pol.Jitter
		if frac > 1 {
			frac = 1
		}
		r := rng.New(seed).SplitString("backoff:" + stage).SplitString(key).Split(uint64(attempt))
		d = time.Duration(float64(d) * (1 - frac*r.Float64()))
	}
	return d
}

// FaultTolerance bundles the per-run fault-tolerance knobs a driver
// threads into its pipeline: one retry policy and timeout applied to
// every stage, plus the dead-letter budget. The zero value reproduces
// fail-fast semantics exactly.
type FaultTolerance struct {
	// Retry is applied to every stage that does not set its own policy.
	Retry RetryPolicy
	// Timeout bounds each stage attempt (stages honoring ctx); applied
	// to every stage that does not set its own. Zero means none.
	Timeout time.Duration
	// MaxDeadLetters is how many items may exhaust their retries (or
	// fail permanently) and be parked in the dead-letter queue before
	// the run fails fast. Zero keeps fail-fast-on-first-error.
	MaxDeadLetters int
}

// DeadLetter records one item that exhausted its retries (or failed
// permanently) and was dropped from the flow instead of aborting the
// run: which item, where it died, how hard the pipeline tried, and why.
type DeadLetter struct {
	// Key identifies the item (Pipeline.WithKey); empty when no key
	// function is configured.
	Key string
	// Stage is the stage the item died in.
	Stage string
	// Attempts is how many times the stage function ran for the item.
	Attempts int
	// Err is the final attempt's error.
	Err error
}

// sleepCtx waits out a backoff delay, returning false if ctx is
// cancelled first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
