package pipeline

import (
	"encoding/json"
	"time"
)

// stageStatsJSON is the wire schema of StageStats. The field names are
// a published contract: cmd/bivocd's /statsz endpoint emits them, and
// dashboards key on them — renaming or removing one is a breaking
// change (TestStageStatsJSONSchemaStable pins the exact output).
// Latencies are serialized as integer nanoseconds so consumers never
// parse Go duration strings.
type stageStatsJSON struct {
	Name         string `json:"name"`
	Workers      int    `json:"workers"`
	In           uint64 `json:"in"`
	Out          uint64 `json:"out"`
	Skipped      uint64 `json:"skipped"`
	Errors       uint64 `json:"errors"`
	Retries      uint64 `json:"retries"`
	Timeouts     uint64 `json:"timeouts"`
	DeadLetters  uint64 `json:"dead_letters"`
	QueueDepth   int    `json:"queue_depth"`
	QueueCap     int    `json:"queue_cap"`
	AvgLatencyNS int64  `json:"avg_latency_ns"`
	MaxLatencyNS int64  `json:"max_latency_ns"`
}

// MarshalJSON renders the snapshot with stable, schema-versioned field
// names (see stageStatsJSON).
func (s StageStats) MarshalJSON() ([]byte, error) {
	return json.Marshal(stageStatsJSON{
		Name:         s.Name,
		Workers:      s.Workers,
		In:           s.In,
		Out:          s.Out,
		Skipped:      s.Skipped,
		Errors:       s.Errors,
		Retries:      s.Retries,
		Timeouts:     s.Timeouts,
		DeadLetters:  s.DeadLetters,
		QueueDepth:   s.QueueDepth,
		QueueCap:     s.QueueCap,
		AvgLatencyNS: s.AvgLatency.Nanoseconds(),
		MaxLatencyNS: s.MaxLatency.Nanoseconds(),
	})
}

// UnmarshalJSON accepts the stageStatsJSON schema, so recorded /statsz
// snapshots can be loaded back for comparison and tooling.
func (s *StageStats) UnmarshalJSON(data []byte) error {
	var w stageStatsJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*s = StageStats{
		Name:        w.Name,
		Workers:     w.Workers,
		In:          w.In,
		Out:         w.Out,
		Skipped:     w.Skipped,
		Errors:      w.Errors,
		Retries:     w.Retries,
		Timeouts:    w.Timeouts,
		DeadLetters: w.DeadLetters,
		QueueDepth:  w.QueueDepth,
		QueueCap:    w.QueueCap,
		AvgLatency:  time.Duration(w.AvgLatencyNS),
		MaxLatency:  time.Duration(w.MaxLatencyNS),
	}
	return nil
}
