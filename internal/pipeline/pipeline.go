// Package pipeline is the streaming execution substrate for the Figure-3
// flow: a linear sequence of stages (ASR/cleaning → linking → annotation
// → indexing) run as worker pools connected by bounded channels.
//
// The design targets the paper's §III volume challenge ("one of the help
// desk accounts ... generated about 150GB of recordings every day"): a
// contact centre never stops ingesting, so the pipeline processes items
// as they arrive instead of materializing whole-corpus intermediates.
// Bounded channels give backpressure — a slow stage throttles the source
// rather than letting queues grow without limit — and per-stage worker
// counts let the expensive stages (decoding) scale independently of the
// cheap ones (field attachment).
//
// Semantics:
//
//   - Items flow source → stage 1 → ... → stage n → sink. Each stage
//     transforms an item or drops it by returning ErrSkip.
//   - A transiently failing attempt is retried per the stage's
//     RetryPolicy: capped exponential backoff whose jitter is drawn
//     deterministically (internal/rng keyed by seed, stage, item key,
//     attempt), so retry schedules are reproducible. An optional
//     per-stage Timeout bounds each attempt for functions that honor
//     ctx.
//   - An item whose retries are exhausted (or whose error is permanent)
//     either fails the run — the internal context is cancelled, all
//     workers stop promptly, and Run returns the first error observed —
//     or, when a dead-letter budget is configured (WithDeadLetterBudget
//     or FaultTolerance.MaxDeadLetters), is parked in the dead-letter
//     queue and the run continues. Exceeding the budget fails fast with
//     an error wrapping the first dead letter's error.
//   - Cancelling the caller's context aborts the run the same way.
//   - On normal source exhaustion the pipeline drains: channel closes
//     cascade stage by stage, so every emitted item is either delivered
//     to the sink or accounted for as skipped.
//   - The sink runs on a single goroutine, so it may touch unsynchronized
//     state; item arrival ORDER at the sink is nondeterministic whenever
//     any stage has more than one worker. Callers that need deterministic
//     output must make their sink order-insensitive (see mining.StreamIndex)
//     or key results by an item index carried through the stages.
//
// Stats() may be called concurrently with Run — counters are atomics and
// queue depths are sampled — which is what powers the live `-stream`
// dashboards and lets operators watch throughput while indexing runs.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrSkip, returned by a stage function, drops the item from the flow
// without failing the run (the cleaning gate discarding spam, for
// example). It is counted in the stage's Skipped counter.
var ErrSkip = errors.New("pipeline: skip item")

// Stage describes one worker pool in the flow.
type Stage[T any] struct {
	// Name identifies the stage in stats and error messages.
	Name string
	// Workers is the pool size; values < 1 mean one worker.
	Workers int
	// Buffer is the capacity of the stage's input channel. Zero means
	// 2×Workers (enough to keep the pool busy without unbounded queueing);
	// negative means unbuffered.
	Buffer int
	// Fn transforms one item. It must be safe for concurrent use when
	// Workers > 1. Returning ErrSkip drops the item; transient errors
	// are retried per Retry; any other error dead-letters the item or
	// aborts the whole run, depending on the pipeline's budget.
	Fn func(ctx context.Context, item T) (T, error)
	// Retry re-runs Fn on transient failures. The zero value disables
	// retry. A retried Fn must be replayable: same item in, same result
	// out (per-item RNG substreams, no partial external effects).
	Retry RetryPolicy
	// Timeout bounds each attempt of Fn via a derived context; zero
	// means unbounded. Fn must honor ctx for the timeout to bite —
	// the pipeline never abandons a running goroutine. A timed-out
	// attempt counts as transient.
	Timeout time.Duration
}

func (s Stage[T]) workers() int {
	if s.Workers < 1 {
		return 1
	}
	return s.Workers
}

func (s Stage[T]) buffer() int {
	switch {
	case s.Buffer > 0:
		return s.Buffer
	case s.Buffer < 0:
		return 0
	default:
		return 2 * s.workers()
	}
}

// StageStats is a point-in-time snapshot of one stage's counters.
type StageStats struct {
	Name    string
	Workers int
	// In counts items received; Out counts items passed downstream;
	// Skipped counts ErrSkip drops; Errors counts items that failed the
	// run (fail-fast path).
	In, Out, Skipped, Errors uint64
	// Retries counts re-run attempts after transient failures; Timeouts
	// counts attempts cut off by the stage Timeout; DeadLetters counts
	// items parked in the dead-letter queue by this stage.
	Retries, Timeouts, DeadLetters uint64
	// QueueDepth is the number of items waiting in the stage's input
	// channel at sample time; QueueCap is its capacity.
	QueueDepth, QueueCap int
	// AvgLatency and MaxLatency cover the stage function only (queue wait
	// excluded), over attempts run so far.
	AvgLatency, MaxLatency time.Duration
}

// stageState holds a stage's live counters, updated with atomics so
// Stats can snapshot them mid-run.
type stageState struct {
	in, out, skipped, errs atomic.Uint64
	retries, timeouts      atomic.Uint64
	deadLetters            atomic.Uint64
	latNanos               atomic.Int64
	maxLatNanos            atomic.Int64
}

func (st *stageState) observe(lat time.Duration) {
	n := lat.Nanoseconds()
	st.latNanos.Add(n)
	for {
		cur := st.maxLatNanos.Load()
		if n <= cur || st.maxLatNanos.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Pipeline is a configured linear flow. Build one with New, run it once
// with Run; Stats may be called at any time, including during the run.
type Pipeline[T any] struct {
	name    string
	stages  []Stage[T]
	states  []*stageState
	chans   []chan T // chans[i] feeds stage i; chans[len(stages)] feeds the sink
	started atomic.Bool

	// Fault-tolerance configuration (WithKey / WithSeed /
	// WithDeadLetterBudget / WithFaultTolerance, all pre-Run).
	keyFn          func(T) string
	seed           uint64
	maxDeadLetters int

	emitted   atomic.Uint64
	delivered atomic.Uint64
	sinkErrs  atomic.Uint64

	dlMu        sync.Mutex
	deadLetters []DeadLetter
	deadItems   []T
}

// New assembles a pipeline from stages. It panics on an empty stage list
// or an unnamed/nil-Fn stage — these are programming errors, not runtime
// conditions.
func New[T any](name string, stages ...Stage[T]) *Pipeline[T] {
	if len(stages) == 0 {
		panic("pipeline: no stages")
	}
	p := &Pipeline[T]{name: name, stages: stages}
	for i, s := range stages {
		if s.Name == "" || s.Fn == nil {
			panic(fmt.Sprintf("pipeline %s: stage %d needs a name and a function", name, i))
		}
		p.states = append(p.states, &stageState{})
		p.chans = append(p.chans, make(chan T, s.buffer()))
	}
	// The sink channel: sized like the last stage's output burst.
	p.chans = append(p.chans, make(chan T, stages[len(stages)-1].buffer()))
	return p
}

// Name returns the pipeline's name.
func (p *Pipeline[T]) Name() string { return p.name }

// Delivered returns how many items have reached the sink so far.
func (p *Pipeline[T]) Delivered() uint64 { return p.delivered.Load() }

// configure guards the With* setters: fault-tolerance knobs are part of
// the pipeline's shape and must be fixed before Run.
func (p *Pipeline[T]) configure(what string) {
	if p.started.Load() {
		panic(fmt.Sprintf("pipeline %s: %s after Run", p.name, what))
	}
}

// WithKey sets the item-identity function used for dead-letter records
// and per-item backoff jitter. Without it every item shares the empty
// key. Must be called before Run; returns p for chaining.
func (p *Pipeline[T]) WithKey(fn func(T) string) *Pipeline[T] {
	p.configure("WithKey")
	p.keyFn = fn
	return p
}

// WithSeed sets the seed from which backoff jitter streams are split.
// Must be called before Run; returns p for chaining.
func (p *Pipeline[T]) WithSeed(seed uint64) *Pipeline[T] {
	p.configure("WithSeed")
	p.seed = seed
	return p
}

// WithDeadLetterBudget allows up to n items to exhaust their retries
// (or fail permanently) and be parked in the dead-letter queue instead
// of aborting the run. The n+1th dead letter fails the run fast with an
// error wrapping the first dead letter's error. n <= 0 restores
// fail-fast-on-first-error. Must be called before Run; returns p for
// chaining.
func (p *Pipeline[T]) WithDeadLetterBudget(n int) *Pipeline[T] {
	p.configure("WithDeadLetterBudget")
	p.maxDeadLetters = n
	return p
}

// WithFaultTolerance applies ft.Retry and ft.Timeout to every stage
// that has not set its own, and ft.MaxDeadLetters as the dead-letter
// budget. Must be called before Run; returns p for chaining.
func (p *Pipeline[T]) WithFaultTolerance(ft FaultTolerance) *Pipeline[T] {
	p.configure("WithFaultTolerance")
	for i := range p.stages {
		if p.stages[i].Retry.isZero() {
			p.stages[i].Retry = ft.Retry
		}
		if p.stages[i].Timeout == 0 {
			p.stages[i].Timeout = ft.Timeout
		}
	}
	p.maxDeadLetters = ft.MaxDeadLetters
	return p
}

// key extracts the item identity, or "" without a key function.
func (p *Pipeline[T]) key(item T) string {
	if p.keyFn == nil {
		return ""
	}
	return p.keyFn(item)
}

// DeadLetters snapshots the dead-letter queue: every item that
// exhausted its retries so far, sorted by stage then key so the report
// is stable regardless of worker scheduling. Safe to call while Run is
// in flight.
func (p *Pipeline[T]) DeadLetters() []DeadLetter {
	p.dlMu.Lock()
	out := append([]DeadLetter(nil), p.deadLetters...)
	p.dlMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stage != out[j].Stage {
			return out[i].Stage < out[j].Stage
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// DeadItems snapshots the dead-lettered items themselves, so callers
// can account for exactly which inputs never reached the sink. Order is
// unspecified.
func (p *Pipeline[T]) DeadItems() []T {
	p.dlMu.Lock()
	defer p.dlMu.Unlock()
	return append([]T(nil), p.deadItems...)
}

// Stats snapshots every stage's counters. Safe to call while Run is in
// flight; queue depths are instantaneous samples.
func (p *Pipeline[T]) Stats() []StageStats {
	out := make([]StageStats, len(p.stages))
	for i, s := range p.stages {
		st := p.states[i]
		stat := StageStats{
			Name:        s.Name,
			Workers:     s.workers(),
			In:          st.in.Load(),
			Out:         st.out.Load(),
			Skipped:     st.skipped.Load(),
			Errors:      st.errs.Load(),
			Retries:     st.retries.Load(),
			Timeouts:    st.timeouts.Load(),
			DeadLetters: st.deadLetters.Load(),
			QueueDepth:  len(p.chans[i]),
			QueueCap:    cap(p.chans[i]),
			MaxLatency:  time.Duration(st.maxLatNanos.Load()),
		}
		// Every finished attempt — including ones that were retried —
		// contributed one latency observation.
		if attempts := stat.Out + stat.Skipped + stat.Errors + stat.DeadLetters + stat.Retries; attempts > 0 {
			stat.AvgLatency = time.Duration(st.latNanos.Load() / int64(attempts))
		}
		out[i] = stat
	}
	return out
}

// InFlight approximates items currently inside the stage function: In
// minus everything already accounted for as Out, Skipped, Errors or
// DeadLetters. Counters are sampled independently, so a racy snapshot
// can be off by the worker count.
func (s StageStats) InFlight() uint64 {
	done := s.Out + s.Skipped + s.Errors + s.DeadLetters
	if done > s.In {
		return 0
	}
	return s.In - done
}

// Source feeds a pipeline: it calls emit once per item and returns when
// the input is exhausted (or emit reports cancellation). SliceSource and
// IndexedSource cover the common cases.
type Source[T any] func(ctx context.Context, emit func(T) error) error

// SliceSource emits each element of items in order.
func SliceSource[T any](items []T) Source[T] {
	return func(ctx context.Context, emit func(T) error) error {
		for _, it := range items {
			if err := emit(it); err != nil {
				return err
			}
		}
		return nil
	}
}

// IndexedSource emits make(i) for i in [0, n) — handy when the item type
// wraps a position so the sink can key results deterministically.
func IndexedSource[T any](n int, make func(i int) T) Source[T] {
	return func(ctx context.Context, emit func(T) error) error {
		for i := 0; i < n; i++ {
			if err := emit(make(i)); err != nil {
				return err
			}
		}
		return nil
	}
}

// runItem drives one item through a stage: retries per the stage's
// RetryPolicy with an optional per-attempt timeout, and on final
// failure either dead-letters the item (budget configured) or fails the
// run. It reports whether the item should be delivered downstream and
// whether the worker must stop.
func (p *Pipeline[T]) runItem(ctx context.Context, stage Stage[T], st *stageState, item T, fail func(error)) (next T, deliver, abort bool) {
	pol := stage.Retry
	key := p.key(item)
	for attempt := 1; ; attempt++ {
		actx, acancel := ctx, context.CancelFunc(func() {})
		if stage.Timeout > 0 {
			actx, acancel = context.WithTimeout(ctx, stage.Timeout)
		}
		start := time.Now()
		next, err := stage.Fn(actx, item)
		st.observe(time.Since(start))
		timedOut := err != nil && stage.Timeout > 0 && errors.Is(actx.Err(), context.DeadlineExceeded)
		acancel()
		switch {
		case err == nil:
			return next, true, false
		case errors.Is(err, ErrSkip):
			st.skipped.Add(1)
			return next, false, false
		}
		if ctx.Err() != nil {
			// The run is already aborting (caller cancel or another
			// failure); this error is cancellation collateral, not news.
			return next, false, true
		}
		if timedOut {
			st.timeouts.Add(1)
			err = fmt.Errorf("attempt timed out after %v: %w", stage.Timeout, err)
		}
		if (timedOut || pol.transient(err)) && attempt < pol.maxAttempts() {
			st.retries.Add(1)
			if !sleepCtx(ctx, pol.Backoff(p.seed, stage.Name, key, attempt)) {
				return next, false, true
			}
			continue
		}
		// Permanent failure, or transient with the attempt budget spent.
		if attempt > 1 {
			err = fmt.Errorf("after %d attempts: %w", attempt, err)
		}
		if p.maxDeadLetters > 0 {
			st.deadLetters.Add(1)
			p.recordDeadLetter(item, DeadLetter{Key: key, Stage: stage.Name, Attempts: attempt, Err: err}, fail)
			return next, false, false
		}
		st.errs.Add(1)
		fail(fmt.Errorf("pipeline %s: stage %s: %w", p.name, stage.Name, err))
		return next, false, true
	}
}

// recordDeadLetter parks a failed item and enforces the budget: the
// dead letter that pushes the queue past MaxDeadLetters fails the run
// with the FIRST dead letter's error, which is the root cause an
// operator wants, not whichever straw broke last.
func (p *Pipeline[T]) recordDeadLetter(item T, dl DeadLetter, fail func(error)) {
	p.dlMu.Lock()
	p.deadLetters = append(p.deadLetters, dl)
	p.deadItems = append(p.deadItems, item)
	n := len(p.deadLetters)
	first := p.deadLetters[0]
	p.dlMu.Unlock()
	if n > p.maxDeadLetters {
		fail(fmt.Errorf("pipeline %s: dead-letter budget %d exceeded; first dead letter (stage %s, item %q): %w",
			p.name, p.maxDeadLetters, first.Stage, first.Key, first.Err))
	}
}

// drained reports whether every emitted item was accounted for:
// delivered to the sink, skipped by a stage, or dead-lettered. Items
// dropped by cancellation mid-flow break the identity, which is how Run
// tells a clean drain from an abort that happened to leave firstErr
// unset.
func (p *Pipeline[T]) drained() bool {
	accounted := p.delivered.Load()
	for _, st := range p.states {
		accounted += st.skipped.Load() + st.deadLetters.Load()
	}
	return accounted == p.emitted.Load()
}

// Run drives the flow until the source is exhausted and every in-flight
// item has drained to the sink, a stage or sink error aborts the run, or
// ctx is cancelled. It returns the first error observed (nil on a full
// drain — even if the caller's context is cancelled after the last item
// has already landed). Run may be called at most once per Pipeline.
func (p *Pipeline[T]) Run(ctx context.Context, source Source[T], sink func(item T) error) error {
	if source == nil || sink == nil {
		panic("pipeline: Run needs a source and a sink")
	}
	if !p.started.CompareAndSwap(false, true) {
		return fmt.Errorf("pipeline %s: Run called twice", p.name)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		errMu.Unlock()
	}

	// Source goroutine: emit applies backpressure by blocking on the
	// first stage's bounded channel.
	var srcWG sync.WaitGroup
	srcWG.Add(1)
	go func() {
		defer srcWG.Done()
		defer close(p.chans[0])
		emit := func(item T) error {
			select {
			case p.chans[0] <- item:
				p.emitted.Add(1)
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if err := source(ctx, emit); err != nil {
			// Suppress only the pipeline-initiated (or caller-initiated)
			// cancellation echoing back through emit; a source whose own
			// error happens to wrap context.Canceled while the pipeline
			// is healthy is a real failure and must propagate.
			if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
				return
			}
			fail(fmt.Errorf("pipeline %s: source: %w", p.name, err))
		}
	}()

	// Stage worker pools. Each stage closes its output channel once all
	// its workers return, cascading the drain.
	var stageWG sync.WaitGroup
	for i := range p.stages {
		stage, st := p.stages[i], p.states[i]
		in, out := p.chans[i], p.chans[i+1]
		var poolWG sync.WaitGroup
		for w := 0; w < stage.workers(); w++ {
			poolWG.Add(1)
			go func() {
				defer poolWG.Done()
				for {
					var item T
					var ok bool
					select {
					case item, ok = <-in:
						if !ok {
							return
						}
					case <-ctx.Done():
						return
					}
					st.in.Add(1)
					next, deliver, abort := p.runItem(ctx, stage, st, item, fail)
					if abort {
						return
					}
					if deliver {
						st.out.Add(1)
						select {
						case out <- next:
						case <-ctx.Done():
							return
						}
					}
				}
			}()
		}
		stageWG.Add(1)
		go func() {
			defer stageWG.Done()
			poolWG.Wait()
			close(out)
		}()
	}

	// Sink: single goroutine, so callers may write unsynchronized state.
	var sinkWG sync.WaitGroup
	sinkWG.Add(1)
	go func() {
		defer sinkWG.Done()
		for item := range p.chans[len(p.chans)-1] {
			if ctx.Err() != nil {
				// Aborted: stop consuming; upstream workers unblock via
				// ctx.Done and the close cascade still completes.
				return
			}
			if err := sink(item); err != nil {
				p.sinkErrs.Add(1)
				fail(fmt.Errorf("pipeline %s: sink: %w", p.name, err))
				return
			}
			p.delivered.Add(1)
		}
	}()

	srcWG.Wait()
	stageWG.Wait()
	sinkWG.Wait()

	errMu.Lock()
	defer errMu.Unlock()
	if firstErr != nil {
		return firstErr
	}
	// A cancellation that lands after the last item has drained did not
	// cost the run anything — report success. Only when the abort
	// actually dropped items is the context error the outcome.
	if p.drained() {
		return nil
	}
	return ctx.Err()
}
