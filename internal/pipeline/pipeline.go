// Package pipeline is the streaming execution substrate for the Figure-3
// flow: a linear sequence of stages (ASR/cleaning → linking → annotation
// → indexing) run as worker pools connected by bounded channels.
//
// The design targets the paper's §III volume challenge ("one of the help
// desk accounts ... generated about 150GB of recordings every day"): a
// contact centre never stops ingesting, so the pipeline processes items
// as they arrive instead of materializing whole-corpus intermediates.
// Bounded channels give backpressure — a slow stage throttles the source
// rather than letting queues grow without limit — and per-stage worker
// counts let the expensive stages (decoding) scale independently of the
// cheap ones (field attachment).
//
// Semantics:
//
//   - Items flow source → stage 1 → ... → stage n → sink. Each stage
//     transforms an item or drops it by returning ErrSkip.
//   - Any other stage error fails the run: the internal context is
//     cancelled, all workers stop promptly, and Run returns the first
//     error observed.
//   - Cancelling the caller's context aborts the run the same way.
//   - On normal source exhaustion the pipeline drains: channel closes
//     cascade stage by stage, so every emitted item is either delivered
//     to the sink or accounted for as skipped.
//   - The sink runs on a single goroutine, so it may touch unsynchronized
//     state; item arrival ORDER at the sink is nondeterministic whenever
//     any stage has more than one worker. Callers that need deterministic
//     output must make their sink order-insensitive (see mining.StreamIndex)
//     or key results by an item index carried through the stages.
//
// Stats() may be called concurrently with Run — counters are atomics and
// queue depths are sampled — which is what powers the live `-stream`
// dashboards and lets operators watch throughput while indexing runs.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrSkip, returned by a stage function, drops the item from the flow
// without failing the run (the cleaning gate discarding spam, for
// example). It is counted in the stage's Skipped counter.
var ErrSkip = errors.New("pipeline: skip item")

// Stage describes one worker pool in the flow.
type Stage[T any] struct {
	// Name identifies the stage in stats and error messages.
	Name string
	// Workers is the pool size; values < 1 mean one worker.
	Workers int
	// Buffer is the capacity of the stage's input channel. Zero means
	// 2×Workers (enough to keep the pool busy without unbounded queueing);
	// negative means unbuffered.
	Buffer int
	// Fn transforms one item. It must be safe for concurrent use when
	// Workers > 1. Returning ErrSkip drops the item; any other error
	// aborts the whole run.
	Fn func(ctx context.Context, item T) (T, error)
}

func (s Stage[T]) workers() int {
	if s.Workers < 1 {
		return 1
	}
	return s.Workers
}

func (s Stage[T]) buffer() int {
	switch {
	case s.Buffer > 0:
		return s.Buffer
	case s.Buffer < 0:
		return 0
	default:
		return 2 * s.workers()
	}
}

// StageStats is a point-in-time snapshot of one stage's counters.
type StageStats struct {
	Name    string
	Workers int
	// In counts items received; Out counts items passed downstream;
	// Skipped counts ErrSkip drops; Errors counts failing items.
	In, Out, Skipped, Errors uint64
	// QueueDepth is the number of items waiting in the stage's input
	// channel at sample time; QueueCap is its capacity.
	QueueDepth, QueueCap int
	// AvgLatency and MaxLatency cover the stage function only (queue wait
	// excluded), over items processed so far.
	AvgLatency, MaxLatency time.Duration
}

// stageState holds a stage's live counters, updated with atomics so
// Stats can snapshot them mid-run.
type stageState struct {
	in, out, skipped, errs atomic.Uint64
	latNanos               atomic.Int64
	maxLatNanos            atomic.Int64
}

func (st *stageState) observe(lat time.Duration) {
	n := lat.Nanoseconds()
	st.latNanos.Add(n)
	for {
		cur := st.maxLatNanos.Load()
		if n <= cur || st.maxLatNanos.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Pipeline is a configured linear flow. Build one with New, run it once
// with Run; Stats may be called at any time, including during the run.
type Pipeline[T any] struct {
	name    string
	stages  []Stage[T]
	states  []*stageState
	chans   []chan T // chans[i] feeds stage i; chans[len(stages)] feeds the sink
	started atomic.Bool

	delivered atomic.Uint64
	sinkErrs  atomic.Uint64
}

// New assembles a pipeline from stages. It panics on an empty stage list
// or an unnamed/nil-Fn stage — these are programming errors, not runtime
// conditions.
func New[T any](name string, stages ...Stage[T]) *Pipeline[T] {
	if len(stages) == 0 {
		panic("pipeline: no stages")
	}
	p := &Pipeline[T]{name: name, stages: stages}
	for i, s := range stages {
		if s.Name == "" || s.Fn == nil {
			panic(fmt.Sprintf("pipeline %s: stage %d needs a name and a function", name, i))
		}
		p.states = append(p.states, &stageState{})
		p.chans = append(p.chans, make(chan T, s.buffer()))
	}
	// The sink channel: sized like the last stage's output burst.
	p.chans = append(p.chans, make(chan T, stages[len(stages)-1].buffer()))
	return p
}

// Name returns the pipeline's name.
func (p *Pipeline[T]) Name() string { return p.name }

// Delivered returns how many items have reached the sink so far.
func (p *Pipeline[T]) Delivered() uint64 { return p.delivered.Load() }

// Stats snapshots every stage's counters. Safe to call while Run is in
// flight; queue depths are instantaneous samples.
func (p *Pipeline[T]) Stats() []StageStats {
	out := make([]StageStats, len(p.stages))
	for i, s := range p.stages {
		st := p.states[i]
		stat := StageStats{
			Name:       s.Name,
			Workers:    s.workers(),
			In:         st.in.Load(),
			Out:        st.out.Load(),
			Skipped:    st.skipped.Load(),
			Errors:     st.errs.Load(),
			QueueDepth: len(p.chans[i]),
			QueueCap:   cap(p.chans[i]),
			MaxLatency: time.Duration(st.maxLatNanos.Load()),
		}
		if done := stat.Out + stat.Skipped + stat.Errors; done > 0 {
			stat.AvgLatency = time.Duration(st.latNanos.Load() / int64(done))
		}
		out[i] = stat
	}
	return out
}

// InFlight approximates items currently inside the stage function: In
// minus everything already accounted for as Out, Skipped or Errors.
// Counters are sampled independently, so a racy snapshot can be off by
// the worker count.
func (s StageStats) InFlight() uint64 {
	done := s.Out + s.Skipped + s.Errors
	if done > s.In {
		return 0
	}
	return s.In - done
}

// Source feeds a pipeline: it calls emit once per item and returns when
// the input is exhausted (or emit reports cancellation). SliceSource and
// IndexedSource cover the common cases.
type Source[T any] func(ctx context.Context, emit func(T) error) error

// SliceSource emits each element of items in order.
func SliceSource[T any](items []T) Source[T] {
	return func(ctx context.Context, emit func(T) error) error {
		for _, it := range items {
			if err := emit(it); err != nil {
				return err
			}
		}
		return nil
	}
}

// IndexedSource emits make(i) for i in [0, n) — handy when the item type
// wraps a position so the sink can key results deterministically.
func IndexedSource[T any](n int, make func(i int) T) Source[T] {
	return func(ctx context.Context, emit func(T) error) error {
		for i := 0; i < n; i++ {
			if err := emit(make(i)); err != nil {
				return err
			}
		}
		return nil
	}
}

// Run drives the flow until the source is exhausted and every in-flight
// item has drained to the sink, a stage or sink error aborts the run, or
// ctx is cancelled. It returns the first error observed (nil on a full
// drain). Run may be called at most once per Pipeline.
func (p *Pipeline[T]) Run(ctx context.Context, source Source[T], sink func(item T) error) error {
	if source == nil || sink == nil {
		panic("pipeline: Run needs a source and a sink")
	}
	if !p.started.CompareAndSwap(false, true) {
		return fmt.Errorf("pipeline %s: Run called twice", p.name)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		errMu.Unlock()
	}

	// Source goroutine: emit applies backpressure by blocking on the
	// first stage's bounded channel.
	var srcWG sync.WaitGroup
	srcWG.Add(1)
	go func() {
		defer srcWG.Done()
		defer close(p.chans[0])
		emit := func(item T) error {
			select {
			case p.chans[0] <- item:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if err := source(ctx, emit); err != nil && !errors.Is(err, context.Canceled) {
			fail(fmt.Errorf("pipeline %s: source: %w", p.name, err))
		}
	}()

	// Stage worker pools. Each stage closes its output channel once all
	// its workers return, cascading the drain.
	var stageWG sync.WaitGroup
	for i := range p.stages {
		stage, st := p.stages[i], p.states[i]
		in, out := p.chans[i], p.chans[i+1]
		var poolWG sync.WaitGroup
		for w := 0; w < stage.workers(); w++ {
			poolWG.Add(1)
			go func() {
				defer poolWG.Done()
				for {
					var item T
					var ok bool
					select {
					case item, ok = <-in:
						if !ok {
							return
						}
					case <-ctx.Done():
						return
					}
					st.in.Add(1)
					start := time.Now()
					next, err := stage.Fn(ctx, item)
					st.observe(time.Since(start))
					switch {
					case err == nil:
						st.out.Add(1)
						select {
						case out <- next:
						case <-ctx.Done():
							return
						}
					case errors.Is(err, ErrSkip):
						st.skipped.Add(1)
					default:
						st.errs.Add(1)
						fail(fmt.Errorf("pipeline %s: stage %s: %w", p.name, stage.Name, err))
						return
					}
				}
			}()
		}
		stageWG.Add(1)
		go func() {
			defer stageWG.Done()
			poolWG.Wait()
			close(out)
		}()
	}

	// Sink: single goroutine, so callers may write unsynchronized state.
	var sinkWG sync.WaitGroup
	sinkWG.Add(1)
	go func() {
		defer sinkWG.Done()
		for item := range p.chans[len(p.chans)-1] {
			if ctx.Err() != nil {
				// Aborted: stop consuming; upstream workers unblock via
				// ctx.Done and the close cascade still completes.
				return
			}
			if err := sink(item); err != nil {
				p.sinkErrs.Add(1)
				fail(fmt.Errorf("pipeline %s: sink: %w", p.name, err))
				return
			}
			p.delivered.Add(1)
		}
	}()

	srcWG.Wait()
	stageWG.Wait()
	sinkWG.Wait()

	errMu.Lock()
	defer errMu.Unlock()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
