package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// item is the flow unit of the tests: an index plus an accumulating trace
// of the stages that touched it.
type item struct {
	idx   int
	trace string
}

func appendStage(tag string) func(context.Context, item) (item, error) {
	return func(_ context.Context, it item) (item, error) {
		it.trace += tag
		return it, nil
	}
}

func TestEveryItemDrainsThroughAllStages(t *testing.T) {
	const n = 200
	p := New[item]("t",
		Stage[item]{Name: "a", Workers: 4, Fn: appendStage("a")},
		Stage[item]{Name: "b", Workers: 2, Fn: appendStage("b")},
		Stage[item]{Name: "c", Workers: 3, Fn: appendStage("c")},
	)
	got := make([]string, n)
	err := p.Run(context.Background(),
		IndexedSource(n, func(i int) item { return item{idx: i} }),
		func(it item) error { got[it.idx] = it.trace; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if p.Delivered() != n {
		t.Fatalf("delivered %d, want %d", p.Delivered(), n)
	}
	for i, tr := range got {
		if tr != "abc" {
			t.Fatalf("item %d trace %q, want abc", i, tr)
		}
	}
	for _, st := range p.Stats() {
		if st.In != n || st.Out != n || st.Skipped != 0 || st.Errors != 0 {
			t.Fatalf("stage %s counters %+v, want in=out=%d", st.Name, st, n)
		}
		if st.QueueDepth != 0 {
			t.Fatalf("stage %s queue depth %d after drain", st.Name, st.QueueDepth)
		}
	}
}

func TestSkipDropsWithoutFailing(t *testing.T) {
	const n = 100
	p := New[item]("t",
		Stage[item]{Name: "filter", Workers: 3, Fn: func(_ context.Context, it item) (item, error) {
			if it.idx%2 == 1 {
				return it, ErrSkip
			}
			return it, nil
		}},
		Stage[item]{Name: "tag", Workers: 2, Fn: appendStage("x")},
	)
	var kept []int
	err := p.Run(context.Background(),
		IndexedSource(n, func(i int) item { return item{idx: i} }),
		func(it item) error { kept = append(kept, it.idx); return nil })
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(kept)
	if len(kept) != n/2 {
		t.Fatalf("kept %d items, want %d", len(kept), n/2)
	}
	for i, v := range kept {
		if v != 2*i {
			t.Fatalf("kept[%d] = %d, want %d", i, v, 2*i)
		}
	}
	st := p.Stats()[0]
	if st.Skipped != n/2 || st.Out != n/2 {
		t.Fatalf("filter counters skipped=%d out=%d, want %d/%d", st.Skipped, st.Out, n/2, n/2)
	}
}

func TestStageErrorFailsFast(t *testing.T) {
	boom := errors.New("boom")
	p := New[item]("t",
		Stage[item]{Name: "ok", Workers: 2, Fn: appendStage("a")},
		Stage[item]{Name: "explode", Workers: 2, Fn: func(_ context.Context, it item) (item, error) {
			if it.idx == 17 {
				return it, boom
			}
			return it, nil
		}},
	)
	err := p.Run(context.Background(),
		IndexedSource(1000, func(i int) item { return item{idx: i} }),
		func(item) error { return nil })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "stage explode") {
		t.Fatalf("error %q does not name the failing stage", err)
	}
	if p.Delivered() == 1000 {
		t.Fatal("fail-fast run still delivered every item")
	}
}

func TestSinkErrorFailsRun(t *testing.T) {
	p := New[item]("t", Stage[item]{Name: "a", Fn: appendStage("a")})
	sinkErr := errors.New("disk full")
	err := p.Run(context.Background(),
		IndexedSource(50, func(i int) item { return item{idx: i} }),
		func(it item) error {
			if it.idx == 3 {
				return sinkErr
			}
			return nil
		})
	if !errors.Is(err, sinkErr) {
		t.Fatalf("err = %v, want wrapped sink error", err)
	}
}

func TestContextCancellationAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once atomic.Bool
	p := New[item]("t",
		Stage[item]{Name: "slow", Workers: 1, Buffer: -1, Fn: func(ctx context.Context, it item) (item, error) {
			if once.CompareAndSwap(false, true) {
				close(started)
			}
			select {
			case <-ctx.Done():
				return it, ctx.Err()
			case <-time.After(10 * time.Second):
				return it, nil
			}
		}},
	)
	done := make(chan error, 1)
	go func() {
		done <- p.Run(ctx,
			IndexedSource(100, func(i int) item { return item{idx: i} }),
			func(item) error { return nil })
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled pipeline did not stop within 5s")
	}
}

func TestBackpressureBoundsInFlight(t *testing.T) {
	// A slow sink must throttle the source: with every buffer bounded,
	// the number of emitted-but-unsunk items can never exceed the total
	// channel capacity plus one in-flight item per worker.
	var emitted, sunk atomic.Int64
	release := make(chan struct{})
	const workers, buffer = 2, 2
	p := New[item]("t",
		Stage[item]{Name: "pass", Workers: workers, Buffer: buffer, Fn: appendStage("p")},
	)
	done := make(chan error, 1)
	go func() {
		done <- p.Run(context.Background(),
			func(ctx context.Context, emit func(item) error) error {
				for i := 0; i < 500; i++ {
					if err := emit(item{idx: i}); err != nil {
						return err
					}
					emitted.Add(1)
				}
				return nil
			},
			func(item) error {
				<-release
				sunk.Add(1)
				return nil
			})
	}()
	// Let the source run as far ahead as the buffers allow, then check
	// the gap. Capacity: stage input buffer + sink channel buffer +
	// workers in flight + 1 item held by the blocked sink.
	time.Sleep(200 * time.Millisecond)
	gap := emitted.Load() - sunk.Load()
	maxGap := int64(buffer + buffer + workers + 1)
	if gap > maxGap {
		t.Fatalf("source ran %d items ahead of the sink; backpressure bound is %d", gap, maxGap)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if sunk.Load() != 500 {
		t.Fatalf("sunk %d items, want 500", sunk.Load())
	}
}

func TestStatsObserveLatencyAndLiveProgress(t *testing.T) {
	const n = 40
	p := New[item]("t",
		Stage[item]{Name: "sleepy", Workers: 4, Fn: func(_ context.Context, it item) (item, error) {
			time.Sleep(2 * time.Millisecond)
			return it, nil
		}},
	)
	// Poll stats mid-run to prove the snapshot is usable concurrently.
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				for _, st := range p.Stats() {
					if st.QueueDepth > st.QueueCap {
						panic(fmt.Sprintf("queue depth %d over cap %d", st.QueueDepth, st.QueueCap))
					}
				}
			}
		}
	}()
	err := p.Run(context.Background(),
		IndexedSource(n, func(i int) item { return item{idx: i} }),
		func(item) error { return nil })
	close(stop)
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats()[0]
	if st.AvgLatency < time.Millisecond {
		t.Fatalf("avg latency %v, want >= 1ms for a 2ms stage", st.AvgLatency)
	}
	if st.MaxLatency < st.AvgLatency {
		t.Fatalf("max latency %v below avg %v", st.MaxLatency, st.AvgLatency)
	}
	if st.InFlight() != 0 {
		t.Fatalf("in-flight %d after drain", st.InFlight())
	}
}

// TestCancelAfterDrainReturnsNil is the regression test for Run
// reporting ctx.Err() even though every item had already drained: a
// caller cancelling its context after completion (a common defer
// pattern) must still see success.
func TestCancelAfterDrainReturnsNil(t *testing.T) {
	const n = 25
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := New[item]("t", Stage[item]{Name: "a", Workers: 2, Fn: appendStage("a")})
	var sunk int
	err := p.Run(ctx,
		IndexedSource(n, func(i int) item { return item{idx: i} }),
		func(it item) error {
			sunk++
			if sunk == n {
				// Cancellation lands after the last delivery but before
				// Run returns — exactly the window the bug lived in.
				cancel()
			}
			return nil
		})
	if err != nil {
		t.Fatalf("fully drained run returned %v, want nil", err)
	}
	if sunk != n {
		t.Fatalf("sunk %d items, want %d", sunk, n)
	}
}

// TestSourceOwnCanceledErrorPropagates is the regression test for
// source errors being swallowed whenever they wrapped context.Canceled:
// a source whose upstream (an HTTP stream, a job queue) was cancelled
// for its own reasons must fail the run, because the pipeline itself
// never initiated any cancellation.
func TestSourceOwnCanceledErrorPropagates(t *testing.T) {
	upstream := fmt.Errorf("recording feed dropped: %w", context.Canceled)
	p := New[item]("t", Stage[item]{Name: "a", Fn: appendStage("a")})
	err := p.Run(context.Background(),
		func(ctx context.Context, emit func(item) error) error {
			if err := emit(item{idx: 0}); err != nil {
				return err
			}
			return upstream
		},
		func(item) error { return nil })
	if !errors.Is(err, upstream) {
		t.Fatalf("err = %v, want the source's own error", err)
	}
	if !strings.Contains(err.Error(), "source") {
		t.Fatalf("error %q does not attribute the failure to the source", err)
	}
}

// TestPipelineAbortStillSuppressesSourceCancel pins the other side of
// the fix: when the pipeline cancels (stage failure), the ctx.Err the
// source echoes back must NOT displace the real error.
func TestPipelineAbortStillSuppressesSourceCancel(t *testing.T) {
	boom := errors.New("boom")
	p := New[item]("t",
		Stage[item]{Name: "explode", Fn: func(_ context.Context, it item) (item, error) {
			return it, boom
		}},
	)
	err := p.Run(context.Background(),
		func(ctx context.Context, emit func(item) error) error {
			for i := 0; ; i++ {
				if err := emit(item{idx: i}); err != nil {
					return err // echoes the pipeline's own cancellation
				}
			}
		},
		func(item) error { return nil })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the stage error, not the echoed cancellation", err)
	}
}

func TestEmptySourceDrainsClean(t *testing.T) {
	p := New[item]("t",
		Stage[item]{Name: "a", Workers: 3, Fn: appendStage("a")},
		Stage[item]{Name: "b", Workers: 2, Buffer: -1, Fn: appendStage("b")},
	)
	err := p.Run(context.Background(), SliceSource[item](nil),
		func(item) error { t.Error("sink saw an item from an empty source"); return nil })
	if err != nil {
		t.Fatalf("empty source run returned %v, want nil", err)
	}
	if p.Delivered() != 0 {
		t.Fatalf("delivered %d from an empty source", p.Delivered())
	}
}

func TestUnbufferedStagesDrain(t *testing.T) {
	const n = 120
	p := New[item]("t",
		Stage[item]{Name: "a", Workers: 4, Buffer: -1, Fn: appendStage("a")},
		Stage[item]{Name: "b", Workers: 1, Buffer: -1, Fn: appendStage("b")},
		Stage[item]{Name: "c", Workers: 2, Buffer: -1, Fn: appendStage("c")},
	)
	for _, st := range p.Stats() {
		if st.QueueCap != 0 {
			t.Fatalf("stage %s queue cap %d, want 0 (unbuffered)", st.Name, st.QueueCap)
		}
	}
	got := make([]string, n)
	err := p.Run(context.Background(),
		IndexedSource(n, func(i int) item { return item{idx: i} }),
		func(it item) error { got[it.idx] = it.trace; return nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range got {
		if tr != "abc" {
			t.Fatalf("item %d trace %q, want abc", i, tr)
		}
	}
}

func TestRunTwiceRejected(t *testing.T) {
	p := New[item]("t", Stage[item]{Name: "a", Fn: appendStage("a")})
	src := IndexedSource(1, func(i int) item { return item{idx: i} })
	if err := p.Run(context.Background(), src, func(item) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(context.Background(), src, func(item) error { return nil }); err == nil {
		t.Fatal("second Run succeeded, want error")
	}
}

// BenchmarkLatencyOverlap models the deployment the paper describes —
// decoding handed to an external recognizer with real per-call latency —
// where pipelining pays even on one core: N workers overlap N waits.
func BenchmarkLatencyOverlap(b *testing.B) {
	const callLatency = 200 * time.Microsecond
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p := New[item]("bench",
				Stage[item]{Name: "remote-asr", Workers: workers, Fn: func(_ context.Context, it item) (item, error) {
					time.Sleep(callLatency)
					return it, nil
				}},
			)
			b.ResetTimer()
			err := p.Run(context.Background(),
				IndexedSource(b.N, func(i int) item { return item{idx: i} }),
				func(item) error { return nil })
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "items/s")
		})
	}
}
