package load

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"bivoc/internal/annotate"
	"bivoc/internal/mining"
	"bivoc/internal/server"
)

// loadTestServer boots a small sealed daemon for the harness to drive.
func loadTestServer(tb testing.TB, n int) string {
	tb.Helper()
	docs := make([]mining.Document, n)
	for i := range docs {
		parity := "even"
		if i%2 == 1 {
			parity = "odd"
		}
		docs[i] = mining.Document{
			ID: fmt.Sprintf("load-%05d", i),
			Concepts: []annotate.Concept{
				{Category: "topic", Canonical: []string{"billing", "coverage", "roadside"}[i%3]},
			},
			Fields: map[string]string{"parity": parity, "outcome": []string{"reservation", "unbooked", "service"}[i%3]},
			Time:   i / 10,
		}
	}
	s, err := server.New(server.Config{Source: func(ctx context.Context, _ func(string) bool, emit func(mining.Document) error) error {
		for _, d := range docs {
			if err := emit(d); err != nil {
				return err
			}
		}
		return nil
	}})
	if err != nil {
		tb.Fatal(err)
	}
	if err := s.Start(); err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	select {
	case <-s.IngestDone():
	case <-time.After(10 * time.Second):
		tb.Fatal("ingest did not seal")
	}
	return "http://" + s.Addr()
}

// TestOpenLoopRun pins the harness end to end: vocabulary discovery,
// mixed-pool synthesis, and a short single-query and batched run with a
// clean report (no errors, sane percentiles, conserved query counts).
func TestOpenLoopRun(t *testing.T) {
	base := loadTestServer(t, 300)
	vocab, err := DiscoverVocab(nil, base, []string{"topic", "nosuchcategory"}, []string{"parity", "outcome"})
	if err != nil {
		t.Fatal(err)
	}
	if len(vocab.Categories["topic"]) == 0 || len(vocab.Fields["parity"]) != 2 {
		t.Fatalf("vocabulary discovery missed live labels: %+v", vocab)
	}
	if _, ok := vocab.Categories["nosuchcategory"]; ok {
		t.Fatalf("vocabulary discovery invented a category: %+v", vocab)
	}

	queries, err := SynthesizeQueries(vocab, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(queries) != 64 {
		t.Fatalf("synthesized %d queries, want 64", len(queries))
	}
	again, err := SynthesizeQueries(vocab, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		if queries[i].Endpoint != again[i].Endpoint {
			t.Fatalf("query synthesis is not deterministic at index %d", i)
		}
	}

	for _, batch := range []int{1, 8} {
		rep, err := Run(context.Background(), Config{
			Base:     base,
			QPS:      400,
			Duration: 300 * time.Millisecond,
			Workers:  16,
			Batch:    batch,
			Queries:  queries,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Errors != 0 || rep.SubErrors != 0 {
			t.Fatalf("batch=%d: %d errors, %d sub-errors (vocabulary-driven queries must not fail)", batch, rep.Errors, rep.SubErrors)
		}
		if rep.Requests == 0 || rep.Queries != rep.Requests*max(batch, 1) {
			t.Fatalf("batch=%d: %d requests / %d queries violate conservation", batch, rep.Requests, rep.Queries)
		}
		if rep.AchievedQPS <= 0 || rep.P50US <= 0 || rep.P999US < rep.P50US || rep.MaxUS < rep.P999US {
			t.Fatalf("batch=%d: implausible report %+v", batch, rep)
		}
		if rep.Degraded != 0 {
			t.Fatalf("batch=%d: single daemon reported %d degraded responses", batch, rep.Degraded)
		}
	}
}

// TestOpenLoopChargesQueueing pins the coordinated-omission correction:
// against a server stalled far past the arrival interval, latency
// percentiles must reflect the schedule backlog, not just service time.
// A closed-loop generator would report ~service time for every request;
// the open loop must charge each arrival the wait behind the schedule.
func TestOpenLoopChargesQueueing(t *testing.T) {
	const service = 10 * time.Millisecond
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(service)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"generation":1,"sealed":true,"total":1}`)
	}))
	t.Cleanup(slow.Close)
	queries := []QuerySpec{{Endpoint: "count", Params: map[string][]string{"dim": {"parity=even"}}}}

	// One worker at 500 offered QPS against 10ms service: arrivals are
	// scheduled every 2ms but complete every ~10ms, so the backlog grows
	// through the whole run and even the median sits far above service
	// time under scheduled-arrival accounting.
	rep, err := Run(context.Background(), Config{
		Base:     slow.URL,
		QPS:      500,
		Duration: 100 * time.Millisecond,
		Workers:  1,
		Queries:  queries,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests < 40 {
		t.Fatalf("open loop issued only %d requests", rep.Requests)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d errors against the slow stub", rep.Errors)
	}
	if rep.P50US < 5*service.Microseconds() {
		t.Fatalf("median latency %dus ≈ service time %dus — queueing delay not charged to the schedule", rep.P50US, service.Microseconds())
	}
	if rep.MaxUS < rep.P50US {
		t.Fatalf("implausible report %+v", rep)
	}
}

// BenchmarkLoadHarness keeps the harness inside `make bench-build`: one
// short open-loop run per iteration.
func BenchmarkLoadHarness(b *testing.B) {
	base := loadTestServer(b, 200)
	vocab, err := DiscoverVocab(nil, base, []string{"topic"}, []string{"parity", "outcome"})
	if err != nil {
		b.Fatal(err)
	}
	queries, err := SynthesizeQueries(vocab, 32, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Run(context.Background(), Config{
			Base:     base,
			QPS:      1000,
			Duration: 100 * time.Millisecond,
			Workers:  16,
			Queries:  queries,
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Errors > 0 {
			b.Fatalf("%d errors", rep.Errors)
		}
	}
}
