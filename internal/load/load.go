// Package load is the open-loop HTTP load harness for the BIVoC query
// daemons (bivocd and bivocfed). It drives a fixed-arrival-rate
// schedule — not a closed loop: arrivals are timestamped in advance and
// every latency sample is measured from its *scheduled* arrival, so a
// server that falls behind accrues queueing delay in the percentiles
// instead of silently throttling the generator (the coordinated-
// omission correction). Achieved-vs-offered throughput then reads
// directly as a saturation signal: the knee where achieved stops
// tracking offered is the capacity of the target.
package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// QuerySpec is one synthesized query in endpoint+params form: it
// renders as a single GET (/v1/<endpoint>?<params>) or as one
// sub-query of a /v1/batch POST.
type QuerySpec struct {
	Endpoint string              `json:"endpoint"`
	Params   map[string][]string `json:"params"`
}

// Config drives one open-loop run against one target.
type Config struct {
	// Base is the target's base URL ("http://127.0.0.1:8080").
	Base string
	// Client issues the requests (default: a dedicated pooled client).
	Client *http.Client
	// QPS is the offered arrival rate in queries per second. With
	// batching, requests arrive at QPS/Batch so the query rate stays
	// what was asked for.
	QPS float64
	// Duration is the length of the arrival schedule.
	Duration time.Duration
	// Workers caps client concurrency (default 64). When every worker
	// is busy past an arrival's scheduled time, the arrival waits — and
	// the wait is charged to its latency.
	Workers int
	// Batch groups this many consecutive queries per /v1/batch request
	// (≤1 sends plain GETs).
	Batch int
	// Queries is the synthesized query pool, cycled in order. Required.
	Queries []QuerySpec
}

// Report is the outcome of one run. Latencies are request-level,
// measured from each request's scheduled arrival time.
type Report struct {
	OfferedQPS  float64 `json:"offered_qps"`
	AchievedQPS float64 `json:"achieved_qps"` // completed queries per second of wall time
	Requests    int     `json:"requests"`
	Queries     int     `json:"queries"`
	Batch       int     `json:"batch"`
	Errors      int     `json:"errors"`     // non-200 responses and transport failures
	SubErrors   int     `json:"sub_errors"` // non-200 sub-results inside 200 batch envelopes
	Degraded    int     `json:"degraded"`   // responses carrying "degraded":true
	P50US       int64   `json:"p50_us"`
	P95US       int64   `json:"p95_us"`
	P99US       int64   `json:"p99_us"`
	P999US      int64   `json:"p999_us"`
	MaxUS       int64   `json:"max_us"`
	ElapsedMS   int64   `json:"elapsed_ms"`
}

// request is one pre-rendered arrival: a GET URL or a batch POST body.
type request struct {
	url     string
	body    []byte // nil → GET
	queries int
}

var degradedMarker = []byte(`"degraded":true`)
var errorMarker = []byte(`"error":`)

// Run executes one open-loop schedule and reports the percentiles.
func Run(ctx context.Context, cfg Config) (Report, error) {
	if cfg.Base == "" || cfg.QPS <= 0 || cfg.Duration <= 0 || len(cfg.Queries) == 0 {
		return Report{}, fmt.Errorf("load: Base, QPS, Duration, and Queries are all required")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 64
	}
	batch := cfg.Batch
	if batch <= 1 {
		batch = 1
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}

	reqRate := cfg.QPS / float64(batch)
	interval := time.Duration(float64(time.Second) / reqRate)
	n := int(cfg.Duration / interval)
	if n < 1 {
		n = 1
	}
	reqs := make([]request, n)
	for i := range reqs {
		var err error
		reqs[i], err = renderRequest(cfg, i, batch)
		if err != nil {
			return Report{}, err
		}
	}

	type sample struct {
		latency   time.Duration
		err       bool
		subErrors int
		degraded  bool
		queries   int
	}
	samples := make([]sample, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				sched := start.Add(time.Duration(i) * interval)
				if d := time.Until(sched); d > 0 {
					select {
					case <-time.After(d):
					case <-ctx.Done():
						return
					}
				}
				status, body, err := issue(ctx, client, reqs[i])
				s := &samples[i]
				s.latency = time.Since(sched)
				s.queries = reqs[i].queries
				switch {
				case err != nil || status != http.StatusOK:
					s.err = true
				default:
					s.degraded = bytes.Contains(body, degradedMarker)
					if reqs[i].body != nil {
						s.subErrors = bytes.Count(body, errorMarker)
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := ctx.Err(); err != nil {
		return Report{}, err
	}

	rep := Report{
		OfferedQPS: cfg.QPS,
		Batch:      batch,
		ElapsedMS:  elapsed.Milliseconds(),
	}
	lats := make([]time.Duration, 0, n)
	for i := range samples {
		s := &samples[i]
		rep.Requests++
		rep.SubErrors += s.subErrors
		if s.err {
			rep.Errors++
			continue
		}
		rep.Queries += s.queries
		if s.degraded {
			rep.Degraded++
		}
		lats = append(lats, s.latency)
	}
	rep.AchievedQPS = float64(rep.Queries) / elapsed.Seconds()
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		rep.P50US = percentile(lats, 0.50).Microseconds()
		rep.P95US = percentile(lats, 0.95).Microseconds()
		rep.P99US = percentile(lats, 0.99).Microseconds()
		rep.P999US = percentile(lats, 0.999).Microseconds()
		rep.MaxUS = lats[len(lats)-1].Microseconds()
	}
	return rep, nil
}

// renderRequest builds the i-th arrival from the cycled query pool.
func renderRequest(cfg Config, i, batch int) (request, error) {
	if batch <= 1 {
		q := cfg.Queries[i%len(cfg.Queries)]
		return request{url: cfg.Base + getPath(q), queries: 1}, nil
	}
	sub := make([]QuerySpec, batch)
	for j := range sub {
		sub[j] = cfg.Queries[(i*batch+j)%len(cfg.Queries)]
	}
	body, err := json.Marshal(struct {
		Queries []QuerySpec `json:"queries"`
	}{sub})
	if err != nil {
		return request{}, err
	}
	return request{url: cfg.Base + "/v1/batch", body: body, queries: batch}, nil
}

// getPath renders a QuerySpec as its GET path.
func getPath(q QuerySpec) string {
	return "/v1/" + q.Endpoint + "?" + url.Values(q.Params).Encode()
}

// issue performs one request and drains the body.
func issue(ctx context.Context, client *http.Client, r request) (int, []byte, error) {
	var req *http.Request
	var err error
	if r.body == nil {
		req, err = http.NewRequestWithContext(ctx, http.MethodGet, r.url, nil)
	} else {
		req, err = http.NewRequestWithContext(ctx, http.MethodPost, r.url, bytes.NewReader(r.body))
		if req != nil {
			req.Header.Set("Content-Type", "application/json")
		}
	}
	if err != nil {
		return 0, nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, body, nil
}

// percentile reads the q-quantile from sorted latencies (nearest-rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
