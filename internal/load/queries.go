package load

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
)

// Vocab is a live label vocabulary pulled from a daemon's /v1/concepts
// endpoint: the canonical concepts of each category and the values of
// each structured field. Queries synthesized from it exercise the label
// grammar with dims the target actually indexes, so a realistic mix
// returns real (non-empty, non-400) answers.
type Vocab struct {
	Categories map[string][]string `json:"categories"`
	Fields     map[string][]string `json:"fields"`
}

// DiscoverVocab queries /v1/concepts for each named category and field,
// keeping the ones the target knows about. It fails only when nothing
// at all resolves — a fleet that knows none of the labels cannot be
// load-tested meaningfully.
func DiscoverVocab(client *http.Client, base string, categories, fields []string) (Vocab, error) {
	if client == nil {
		client = &http.Client{}
	}
	v := Vocab{Categories: map[string][]string{}, Fields: map[string][]string{}}
	fetch := func(param, name string) ([]string, error) {
		resp, err := client.Get(base + "/v1/concepts?" + param + "=" + url.QueryEscape(name))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, nil
		}
		var cr struct {
			Values []string `json:"values"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
			return nil, err
		}
		return cr.Values, nil
	}
	for _, c := range categories {
		values, err := fetch("category", c)
		if err != nil {
			return Vocab{}, fmt.Errorf("load: discovering category %q: %w", c, err)
		}
		if len(values) > 0 {
			v.Categories[c] = values
		}
	}
	for _, f := range fields {
		values, err := fetch("field", f)
		if err != nil {
			return Vocab{}, fmt.Errorf("load: discovering field %q: %w", f, err)
		}
		if len(values) > 0 {
			v.Fields[f] = values
		}
	}
	if len(v.Categories) == 0 && len(v.Fields) == 0 {
		return Vocab{}, fmt.Errorf("load: target knows none of the requested categories %v or fields %v", categories, fields)
	}
	return v, nil
}

// SynthesizeQueries builds a deterministic pool of n mixed queries from
// the vocabulary: counts (single dims and ∧-conjunctions), trends,
// association tables, relative frequencies, drill-downs, and concept
// listings, weighted toward the cheap count/trend traffic a dashboard
// generates.
func SynthesizeQueries(v Vocab, n int, seed int64) ([]QuerySpec, error) {
	cats := sortedKeys(v.Categories)
	flds := sortedKeys(v.Fields)
	if len(cats) == 0 && len(flds) == 0 {
		return nil, fmt.Errorf("load: empty vocabulary")
	}
	rng := rand.New(rand.NewSource(seed))

	conceptLabel := func() string {
		c := cats[rng.Intn(len(cats))]
		vals := v.Categories[c]
		return vals[rng.Intn(len(vals))] + "[" + c + "]"
	}
	fieldLabel := func() string {
		f := flds[rng.Intn(len(flds))]
		vals := v.Fields[f]
		return f + "=" + vals[rng.Intn(len(vals))]
	}
	dim := func() string {
		switch {
		case len(flds) == 0:
			return conceptLabel()
		case len(cats) == 0:
			return fieldLabel()
		case rng.Intn(2) == 0:
			return conceptLabel()
		default:
			return fieldLabel()
		}
	}

	out := make([]QuerySpec, 0, n)
	for len(out) < n {
		var q QuerySpec
		switch pick := rng.Intn(100); {
		case pick < 30: // multi-dim count
			dims := make([]string, 1+rng.Intn(4))
			for i := range dims {
				dims[i] = dim()
			}
			q = QuerySpec{Endpoint: "count", Params: url.Values{"dim": dims}}
		case pick < 45: // conjunction count
			q = QuerySpec{Endpoint: "count", Params: url.Values{"dim": {dim() + " ∧ " + dim()}}}
		case pick < 60: // trend
			q = QuerySpec{Endpoint: "trend", Params: url.Values{"dim": {dim()}}}
		case pick < 75 && len(cats) > 0 && len(flds) > 0: // association table
			row := make([]string, 2+rng.Intn(2))
			for i := range row {
				row[i] = conceptLabel()
			}
			col := make([]string, 2+rng.Intn(2))
			for i := range col {
				col[i] = fieldLabel()
			}
			params := url.Values{"row": row, "col": col}
			if rng.Intn(3) == 0 {
				params.Set("confidence", "0.99")
			}
			q = QuerySpec{Endpoint: "associate", Params: params}
		case pick < 85 && len(cats) > 0 && len(flds) > 0: // relfreq
			q = QuerySpec{Endpoint: "relfreq", Params: url.Values{
				"category": {cats[rng.Intn(len(cats))]},
				"featured": {fieldLabel()},
			}}
		case pick < 95 && len(cats) > 0 && len(flds) > 0: // drilldown
			params := url.Values{"row": {conceptLabel()}, "col": {fieldLabel()}}
			if rng.Intn(2) == 0 {
				params.Set("limit", strconv.Itoa(5+rng.Intn(20)))
			}
			q = QuerySpec{Endpoint: "drilldown", Params: params}
		default: // concepts listing
			if len(cats) > 0 && (len(flds) == 0 || rng.Intn(2) == 0) {
				q = QuerySpec{Endpoint: "concepts", Params: url.Values{"category": {cats[rng.Intn(len(cats))]}}}
			} else {
				q = QuerySpec{Endpoint: "concepts", Params: url.Values{"field": {flds[rng.Intn(len(flds))]}}}
			}
		}
		out = append(out, q)
	}
	return out, nil
}

// SynthesizeCountQueries builds a deterministic pool of n single-dim
// /v1/count queries — the cheapest endpoint, where per-query compute is
// a few index lookups and HTTP+JSON transport dominates. Sweeping this
// pool batched vs. unbatched isolates the transport amortization
// /v1/batch buys.
func SynthesizeCountQueries(v Vocab, n int, seed int64) ([]QuerySpec, error) {
	cats := sortedKeys(v.Categories)
	flds := sortedKeys(v.Fields)
	if len(cats) == 0 && len(flds) == 0 {
		return nil, fmt.Errorf("load: empty vocabulary")
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]QuerySpec, n)
	for i := range out {
		var d string
		switch {
		case len(flds) == 0 || (len(cats) > 0 && rng.Intn(2) == 0):
			c := cats[rng.Intn(len(cats))]
			vals := v.Categories[c]
			d = vals[rng.Intn(len(vals))] + "[" + c + "]"
		default:
			f := flds[rng.Intn(len(flds))]
			vals := v.Fields[f]
			d = f + "=" + vals[rng.Intn(len(vals))]
		}
		out[i] = QuerySpec{Endpoint: "count", Params: url.Values{"dim": {d}}}
	}
	return out, nil
}

// sortedKeys returns m's keys in order — deterministic pools need
// deterministic iteration.
func sortedKeys(m map[string][]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
