package churn

import (
	"reflect"
	"strings"
	"testing"

	"bivoc/internal/clean"
	"bivoc/internal/synth"
)

func TestFeaturize(t *testing.T) {
	feats := Featurize("the bill is too high")
	// Content words: bill, high (too/is/the are stopwords).
	want := []string{"bill", "high", "bill_high"}
	if !reflect.DeepEqual(feats, want) {
		t.Errorf("features = %v", feats)
	}
	if got := Featurize(""); len(got) != 0 {
		t.Errorf("empty features: %v", got)
	}
}

func trainSmall(t *testing.T) *Predictor {
	t.Helper()
	p := NewPredictor(0.3)
	churnTexts := []string{
		"i am switching to a cheaper provider goodbye",
		"my problem is still not solved i want to disconnect",
		"porting my number to another operator",
		"competitor offers better tariff i am leaving",
		"bill too high i feel robbed closing my account",
	}
	stayTexts := []string{
		"please confirm the receipt of my payment",
		"kindly tell me the balance on my account",
		"i want to recharge my prepaid number",
		"please activate the new data pack",
		"what are the details of my current plan",
		"my recharge was successful thank you",
	}
	for _, s := range churnTexts {
		p.Train(s, true)
	}
	for _, s := range stayTexts {
		p.Train(s, false)
	}
	return p
}

func TestPredictSeparates(t *testing.T) {
	p := trainSmall(t)
	if !p.Predict("i am leaving for a cheaper provider disconnect my number") {
		t.Error("obvious churner missed")
	}
	if p.Predict("please confirm my payment thank you") {
		t.Error("routine message flagged")
	}
}

func TestScoreMonotoneWithEvidence(t *testing.T) {
	p := trainSmall(t)
	weak := p.Score("my bill seems high")
	strong := p.Score("bill too high i am leaving switching provider disconnect")
	if strong <= weak {
		t.Errorf("more churn evidence should raise score: %v vs %v", weak, strong)
	}
}

func TestThresholdDefault(t *testing.T) {
	if NewPredictor(0).Threshold != 0.3 || NewPredictor(2).Threshold != 0.3 {
		t.Error("invalid thresholds should default")
	}
	if NewPredictor(0.42).Threshold != 0.42 {
		t.Error("valid threshold overridden")
	}
}

func TestTrainedFlag(t *testing.T) {
	p := NewPredictor(0.3)
	if p.Trained() {
		t.Error("fresh predictor claims training")
	}
	p.Train("hello billing", false)
	if !p.Trained() {
		t.Error("trained predictor claims otherwise")
	}
}

func TestTopChurnFeatures(t *testing.T) {
	p := trainSmall(t)
	top := p.TopChurnFeatures(10)
	joined := strings.Join(top, " ")
	if !strings.Contains(joined, "provider") && !strings.Contains(joined, "disconnect") &&
		!strings.Contains(joined, "leaving") && !strings.Contains(joined, "cheaper") {
		t.Errorf("top churn features look wrong: %v", top)
	}
}

func TestEvaluate(t *testing.T) {
	p := trainSmall(t)
	texts := []string{
		"switching to cheaper provider goodbye",
		"please confirm my payment",
		"balance enquiry please",
	}
	labels := []bool{true, false, false}
	e := p.Evaluate(texts, labels)
	if e.TP != 1 || e.TN != 2 || e.FP != 0 || e.FN != 0 {
		t.Errorf("evaluation: %+v", e)
	}
	if e.Recall() != 1 {
		t.Errorf("recall = %v", e.Recall())
	}
}

func TestDriverDetector(t *testing.T) {
	d := NewDriverDetector(synth.DriverPhraseSeed())
	drivers := d.Detect("my bill is too high i almost feel robbed when paying")
	found := false
	for _, dr := range drivers {
		if dr == synth.DriverBilling {
			found = true
		}
	}
	if !found {
		t.Errorf("billing driver missed: %v", drivers)
	}
	if got := d.Detect("have a nice day"); len(got) != 0 {
		t.Errorf("phantom drivers: %v", got)
	}
}

func TestDriverDetectorMultiple(t *testing.T) {
	d := NewDriverDetector(synth.DriverPhraseSeed())
	text := "the network is always down in my area and my bill is too high"
	drivers := d.Detect(text)
	if len(drivers) < 2 {
		t.Errorf("expected 2 drivers, got %v", drivers)
	}
}

func TestEndToEndOnSyntheticWorld(t *testing.T) {
	cfg := synth.DefaultTelecomConfig()
	cfg.NumCustomers = 600
	cfg.Emails = 1800
	cfg.SMS = 0
	w, err := synth.NewTelecomWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Train on the first two months, evaluate on the last (the paper's
	// "we took emails and sms messages for one month and identified
	// potential churners"). Messages flow through the cleaning stage as
	// in the real pipeline: headers, disclaimers and signatures out.
	cleaner := clean.NewCleaner()
	p := NewPredictor(0.3)
	var evalTexts []string
	var evalLabels []bool
	for _, m := range w.Emails {
		if m.Spam || m.CustIdx < 0 {
			continue
		}
		cm := cleaner.ProcessEmail(m.Raw)
		if cm.Verdict != clean.VerdictKeep {
			continue
		}
		text := clean.StripSignature(cm.Text)
		if m.Month < cfg.Months-1 {
			p.Train(text, m.FromChurner)
		} else {
			evalTexts = append(evalTexts, text)
			evalLabels = append(evalLabels, m.FromChurner)
		}
	}
	if !p.Trained() || len(evalTexts) == 0 {
		t.Fatal("split produced empty sets")
	}
	e := p.Evaluate(evalTexts, evalLabels)
	// With heavy imbalance we mainly require useful recall without
	// flagging everything.
	if e.TP+e.FN > 0 && e.Recall() < 0.2 {
		t.Errorf("churn recall too low: %+v", e)
	}
	flagged := e.TP + e.FP
	if flagged > (e.TP+e.FP+e.TN+e.FN)/2 {
		t.Errorf("flagging more than half the corpus: %+v", e)
	}
}
