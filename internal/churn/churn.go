// Package churn implements the §VI use case: predicting subscriber churn
// from the Voice of Customer. A classifier is trained on the (cleaned,
// normalized) messages of known churners and non-churners, then applied
// to a held-out month of communications; the paper reports detecting
// 53.6% of churners from emails under heavy class imbalance (3% churner
// emails).
//
// The package also detects which churn drivers (competitor tariff,
// problem resolution, service issues, billing issues, low awareness) a
// message expresses, using the annotation engine — the "why" analysis
// that structured-only BI cannot provide.
package churn

import (
	"strings"

	"bivoc/internal/annotate"
	"bivoc/internal/classify"
	"bivoc/internal/textproc"
)

// Labels used by the underlying classifier.
const (
	LabelChurn = "churn"
	LabelStay  = "stay"
)

// Featurize turns normalized message text into classifier tokens:
// content-word unigrams plus adjacent-content-word bigrams (bigrams
// capture phrases like "too high" and "not solved" that single words
// miss). Tokens containing digits are dropped — phone numbers, amounts
// and receipt ids identify individual customers, and a churn model that
// memorizes identities reports inflated recall on any customer whose
// messages span the train/eval boundary.
func Featurize(text string) []string {
	words := textproc.ContentWords(text)
	kept := words[:0]
	for _, w := range words {
		if textproc.DigitCount(w) == 0 {
			kept = append(kept, w)
		}
	}
	out := make([]string, 0, 2*len(kept))
	out = append(out, kept...)
	for i := 0; i+1 < len(kept); i++ {
		out = append(out, kept[i]+"_"+kept[i+1])
	}
	return out
}

// Predictor is a churn classifier with an adjustable decision threshold
// for imbalanced data.
type Predictor struct {
	nb *classify.NaiveBayes
	// Threshold is the churn-posterior cut; with 3-8% positive rates the
	// operating point sits well below 0.5.
	Threshold float64
}

// NewPredictor returns an untrained predictor with the given threshold
// (0 < threshold < 1; defaults to 0.3).
func NewPredictor(threshold float64) *Predictor {
	if threshold <= 0 || threshold >= 1 {
		threshold = 0.3
	}
	return &Predictor{nb: classify.NewNaiveBayes(), Threshold: threshold}
}

// Train adds one labeled message (already cleaned/normalized).
func (p *Predictor) Train(text string, churner bool) {
	label := LabelStay
	if churner {
		label = LabelChurn
	}
	p.nb.Train(label, Featurize(text))
}

// Trained reports whether any messages were seen.
func (p *Predictor) Trained() bool { return p.nb.Trained() }

// Score returns the churn posterior for a message.
func (p *Predictor) Score(text string) float64 {
	return p.nb.Posteriors(Featurize(text))[LabelChurn]
}

// Predict reports whether the message indicates a churner at the current
// threshold.
func (p *Predictor) Predict(text string) bool {
	return p.Score(text) >= p.Threshold
}

// TopChurnFeatures returns the strongest churn-indicating features —
// the discovered "key features corresponding to churn drivers".
func (p *Predictor) TopChurnFeatures(n int) []string {
	return p.nb.TopFeatures(LabelChurn, n)
}

// Evaluate scores a labeled corpus, returning the confusion counters.
func (p *Predictor) Evaluate(texts []string, churner []bool) classify.Evaluation {
	var e classify.Evaluation
	for i, text := range texts {
		pred := LabelStay
		if p.Predict(text) {
			pred = LabelChurn
		}
		actual := LabelStay
		if churner[i] {
			actual = LabelChurn
		}
		e.Add(pred, actual, LabelChurn)
	}
	return e
}

// DriverDetector finds churn-driver mentions through the annotation
// engine's dictionary machinery.
type DriverDetector struct {
	engine *annotate.Engine
}

// NewDriverDetector builds a detector from driver seed phrases: every
// informative content word and adjacent pair of a seed phrase becomes a
// dictionary surface mapping to the driver category.
func NewDriverDetector(seeds map[string][]string) *DriverDetector {
	dict := annotate.NewDictionary()
	for driver, phrases := range seeds {
		for _, phrase := range phrases {
			words := textproc.ContentWords(phrase)
			for i := 0; i+1 < len(words); i++ {
				dict.Add(annotate.Entry{
					Surface:   words[i] + " " + words[i+1],
					PoS:       annotate.PoSNoun,
					Canonical: words[i] + " " + words[i+1],
					Category:  driver,
				})
			}
		}
	}
	return &DriverDetector{engine: annotate.NewEngine(dict)}
}

// Detect returns the distinct driver categories expressed in the text,
// sorted.
func (d *DriverDetector) Detect(text string) []string {
	// The dictionary holds content-word pairs; normalize the text the
	// same way before matching.
	normalized := strings.Join(textproc.ContentWords(text), " ")
	return annotate.Categories(d.engine.Annotate(normalized))
}
