// Package warehouse is the structured-data substrate of BIVoC: typed
// in-memory tables with schemas, primary keys, exact and fuzzy secondary
// indexes, scans and aggregations, plus CSV import/export.
//
// The paper's engagements link VoC documents against warehouse tables
// (customers, transactions, reservations, credit cards). The linking
// engine only needs three capabilities from the warehouse: typed
// attribute access, fast candidate generation for a possibly-garbled
// token (fuzzy indexes), and full scans for evaluation — all provided
// here.
package warehouse

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// ColumnType is the storage type of a column.
type ColumnType uint8

// Column storage types.
const (
	TypeString ColumnType = iota
	TypeInt
	TypeFloat
)

// MatchKind declares how the linking engine should compare a document
// token against this column — the "best similarity measure available for
// specific attributes" plug-in point of §IV.B.
type MatchKind uint8

// Match kinds.
const (
	// MatchExact: identifiers, categories; equality only.
	MatchExact MatchKind = iota
	// MatchName: person/place names; phonetic + edit-distance matching.
	MatchName
	// MatchText: free-ish text such as addresses; n-gram matching.
	MatchText
	// MatchDigits: phone numbers, card numbers; digit-subsequence match.
	MatchDigits
	// MatchNumeric: amounts; relative-proximity match.
	MatchNumeric
)

// Column describes one attribute of a table.
type Column struct {
	Name  string
	Type  ColumnType
	Match MatchKind
}

// Schema is an ordered list of columns with a primary-key column.
type Schema struct {
	Table   string
	Columns []Column
	// Key is the name of the primary-key column (must be TypeString or
	// TypeInt and unique across rows).
	Key string
}

// col returns the index of the named column, or -1.
func (s Schema) col(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Validate checks structural invariants of the schema.
func (s Schema) Validate() error {
	if s.Table == "" {
		return fmt.Errorf("warehouse: schema needs a table name")
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("warehouse: table %s has no columns", s.Table)
	}
	seen := map[string]bool{}
	for _, c := range s.Columns {
		if c.Name == "" {
			return fmt.Errorf("warehouse: table %s has an unnamed column", s.Table)
		}
		if seen[c.Name] {
			return fmt.Errorf("warehouse: table %s repeats column %s", s.Table, c.Name)
		}
		seen[c.Name] = true
	}
	if s.Key != "" && !seen[s.Key] {
		return fmt.Errorf("warehouse: table %s key %s is not a column", s.Table, s.Key)
	}
	return nil
}

// Value is one typed cell. Str always holds the string form; Num holds
// the numeric value for int/float columns.
type Value struct {
	Str   string
	Num   float64
	IsNum bool
}

// StringValue wraps a string cell.
func StringValue(s string) Value { return Value{Str: s} }

// IntValue wraps an integer cell.
func IntValue(i int64) Value {
	return Value{Str: strconv.FormatInt(i, 10), Num: float64(i), IsNum: true}
}

// FloatValue wraps a float cell.
func FloatValue(f float64) Value {
	return Value{Str: strconv.FormatFloat(f, 'g', -1, 64), Num: f, IsNum: true}
}

// RowID identifies a row within its table (stable across the table's
// lifetime; rows are append-only as in a warehouse fact table).
type RowID int32

// Row is one record.
type Row struct {
	vals []Value
}

// Table is an append-only typed table with a primary key and secondary
// indexes.
type Table struct {
	schema  Schema
	rows    []Row
	pk      map[string]RowID
	keyCol  int
	indexes map[string]*index // column name → fuzzy/exact index
	// features caches per-column derived match features (lowercase form,
	// word phones, n-gram sets, ...) so the linking engine never
	// re-derives them per comparison. Columns are materialized lazily on
	// the first Features call — ingest-only pipelines that never link a
	// column pay nothing for it — then kept aligned by Insert.
	featMu   sync.RWMutex
	features map[string][]MatchFeatures
}

// NewTable creates an empty table, building an index for every column
// whose MatchKind benefits from one.
func NewTable(schema Schema) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		schema:   schema,
		pk:       make(map[string]RowID),
		keyCol:   -1,
		indexes:  make(map[string]*index),
		features: make(map[string][]MatchFeatures),
	}
	if schema.Key != "" {
		t.keyCol = schema.col(schema.Key)
	}
	for _, c := range schema.Columns {
		t.indexes[c.Name] = newIndex(c.Match)
	}
	return t, nil
}

// Schema returns the table's schema.
func (t *Table) Schema() Schema { return t.schema }

// Name returns the table name.
func (t *Table) Name() string { return t.schema.Table }

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// Insert appends a row given values in schema column order. It enforces
// arity, basic type shape and primary-key uniqueness.
func (t *Table) Insert(vals ...Value) (RowID, error) {
	if len(vals) != len(t.schema.Columns) {
		return 0, fmt.Errorf("warehouse: %s expects %d values, got %d",
			t.schema.Table, len(t.schema.Columns), len(vals))
	}
	for i, c := range t.schema.Columns {
		if (c.Type == TypeInt || c.Type == TypeFloat) && !vals[i].IsNum {
			return 0, fmt.Errorf("warehouse: %s.%s expects a numeric value, got %q",
				t.schema.Table, c.Name, vals[i].Str)
		}
	}
	id := RowID(len(t.rows))
	if t.keyCol >= 0 {
		k := vals[t.keyCol].Str
		if _, dup := t.pk[k]; dup {
			return 0, fmt.Errorf("warehouse: %s duplicate key %q", t.schema.Table, k)
		}
		t.pk[k] = id
	}
	t.rows = append(t.rows, Row{vals: vals})
	for i, c := range t.schema.Columns {
		t.indexes[c.Name].add(vals[i].Str, id)
	}
	t.featMu.Lock()
	for i, c := range t.schema.Columns {
		if feats, ok := t.features[c.Name]; ok {
			t.features[c.Name] = append(feats, matchFeatures(c.Match, vals[i].Str))
		}
	}
	t.featMu.Unlock()
	return id, nil
}

// MustInsert is Insert for generator code where schema mismatches are
// programming errors.
func (t *Table) MustInsert(vals ...Value) RowID {
	id, err := t.Insert(vals...)
	if err != nil {
		panic(err)
	}
	return id
}

// Get returns the value of the named column in row id.
func (t *Table) Get(id RowID, column string) (Value, bool) {
	ci := t.schema.col(column)
	if ci < 0 || int(id) < 0 || int(id) >= len(t.rows) {
		return Value{}, false
	}
	return t.rows[id].vals[ci], true
}

// GetString returns the string form of a cell ("" if absent).
func (t *Table) GetString(id RowID, column string) string {
	v, _ := t.Get(id, column)
	return v.Str
}

// GetNum returns the numeric form of a cell (0 if absent or non-numeric).
func (t *Table) GetNum(id RowID, column string) float64 {
	v, _ := t.Get(id, column)
	return v.Num
}

// ByKey returns the row id with the given primary-key value.
func (t *Table) ByKey(key string) (RowID, bool) {
	id, ok := t.pk[key]
	return id, ok
}

// Scan calls fn for every row until fn returns false.
func (t *Table) Scan(fn func(id RowID, get func(column string) Value) bool) {
	for i := range t.rows {
		id := RowID(i)
		get := func(column string) Value {
			v, _ := t.Get(id, column)
			return v
		}
		if !fn(id, get) {
			return
		}
	}
}

// Select returns the ids of rows where pred is true.
func (t *Table) Select(pred func(get func(column string) Value) bool) []RowID {
	var out []RowID
	t.Scan(func(id RowID, get func(string) Value) bool {
		if pred(get) {
			out = append(out, id)
		}
		return true
	})
	return out
}

// CountBy returns the number of rows per distinct value of column.
func (t *Table) CountBy(column string) map[string]int {
	out := make(map[string]int)
	ci := t.schema.col(column)
	if ci < 0 {
		return out
	}
	for _, r := range t.rows {
		out[r.vals[ci].Str]++
	}
	return out
}

// CrossTab counts rows for each (a, b) value pair of two columns — the
// structured half of the two-dimensional association analysis (§IV.D.2).
func (t *Table) CrossTab(colA, colB string) map[[2]string]int {
	out := make(map[[2]string]int)
	ca, cb := t.schema.col(colA), t.schema.col(colB)
	if ca < 0 || cb < 0 {
		return out
	}
	for _, r := range t.rows {
		out[[2]string{r.vals[ca].Str, r.vals[cb].Str}]++
	}
	return out
}

// Candidates returns row ids whose value in column plausibly matches the
// (possibly garbled) token, via the column's fuzzy index. The result is
// sorted and deduplicated. This is the candidate-generation primitive
// that lets the linker avoid scoring every entity (§IV.B: "the
// highest-scoring entity can be determined efficiently, without computing
// scores explicitly for all entities").
func (t *Table) Candidates(column, token string) []RowID {
	return t.CandidatesAppend(nil, column, token)
}

// CandidatesAppend is Candidates into a reusable buffer: it appends the
// sorted, duplicate-free candidate ids to buf[:0] and returns the
// (possibly grown) slice. The linking engine calls it once per
// (token, attribute) pair, so reusing one buffer across the loop removes
// a per-lookup allocation from the hot path.
func (t *Table) CandidatesAppend(buf []RowID, column, token string) []RowID {
	idx, ok := t.indexes[column]
	if !ok {
		return buf[:0]
	}
	return idx.lookupAppend(buf[:0], token)
}

// AggStats holds the aggregate of a numeric column within one group.
type AggStats struct {
	Count int
	Sum   float64
	Min   float64
	Max   float64
}

// Mean returns Sum/Count (0 when empty).
func (a AggStats) Mean() float64 {
	if a.Count == 0 {
		return 0
	}
	return a.Sum / float64(a.Count)
}

// Aggregate groups rows by groupCol and aggregates the numeric column
// valueCol per group — the warehouse-side rollup behind reports like
// "booking cost by vehicle type" (the §V structured fields include
// booking cost and duration).
func (t *Table) Aggregate(groupCol, valueCol string) map[string]AggStats {
	out := make(map[string]AggStats)
	gi, vi := t.schema.col(groupCol), t.schema.col(valueCol)
	if gi < 0 || vi < 0 {
		return out
	}
	for _, r := range t.rows {
		key := r.vals[gi].Str
		v := r.vals[vi].Num
		st, ok := out[key]
		if !ok {
			st = AggStats{Min: v, Max: v}
		}
		st.Count++
		st.Sum += v
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
		out[key] = st
	}
	return out
}

// Distinct returns the sorted distinct values of a column.
func (t *Table) Distinct(column string) []string {
	set := t.CountBy(column)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
