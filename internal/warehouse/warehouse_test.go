package warehouse

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func customerSchema() Schema {
	return Schema{
		Table: "customers",
		Key:   "id",
		Columns: []Column{
			{Name: "id", Type: TypeString, Match: MatchExact},
			{Name: "name", Type: TypeString, Match: MatchName},
			{Name: "phone", Type: TypeString, Match: MatchDigits},
			{Name: "address", Type: TypeString, Match: MatchText},
			{Name: "balance", Type: TypeFloat, Match: MatchNumeric},
			{Name: "segment", Type: TypeString, Match: MatchExact},
		},
	}
}

func newCustomerTable(t *testing.T) *Table {
	t.Helper()
	tab, err := NewTable(customerSchema())
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestSchemaValidate(t *testing.T) {
	bad := []Schema{
		{},
		{Table: "x"},
		{Table: "x", Columns: []Column{{Name: ""}}},
		{Table: "x", Columns: []Column{{Name: "a"}, {Name: "a"}}},
		{Table: "x", Columns: []Column{{Name: "a"}}, Key: "missing"},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("schema %d should fail validation", i)
		}
	}
	if err := customerSchema().Validate(); err != nil {
		t.Errorf("good schema rejected: %v", err)
	}
}

func TestInsertAndGet(t *testing.T) {
	tab := newCustomerTable(t)
	id, err := tab.Insert(
		StringValue("c1"), StringValue("john smith"), StringValue("9876543210"),
		StringValue("42 lake road"), FloatValue(120.5), StringValue("gold"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if tab.GetString(id, "name") != "john smith" {
		t.Error("name round-trip failed")
	}
	if tab.GetNum(id, "balance") != 120.5 {
		t.Error("numeric round-trip failed")
	}
	if _, ok := tab.Get(id, "nope"); ok {
		t.Error("missing column should fail")
	}
	if _, ok := tab.Get(RowID(99), "name"); ok {
		t.Error("missing row should fail")
	}
}

func TestInsertArityAndTypes(t *testing.T) {
	tab := newCustomerTable(t)
	if _, err := tab.Insert(StringValue("x")); err == nil {
		t.Error("wrong arity should fail")
	}
	if _, err := tab.Insert(
		StringValue("c1"), StringValue("n"), StringValue("p"),
		StringValue("a"), StringValue("not-a-number"), StringValue("s"),
	); err == nil {
		t.Error("string in float column should fail")
	}
}

func TestPrimaryKeyUnique(t *testing.T) {
	tab := newCustomerTable(t)
	row := func(id string) []Value {
		return []Value{StringValue(id), StringValue("a b"), StringValue("123"),
			StringValue("addr"), FloatValue(1), StringValue("s")}
	}
	if _, err := tab.Insert(row("c1")...); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Insert(row("c1")...); err == nil {
		t.Error("duplicate key should fail")
	}
	if _, err := tab.Insert(row("c2")...); err != nil {
		t.Errorf("distinct key rejected: %v", err)
	}
	if id, ok := tab.ByKey("c2"); !ok || tab.GetString(id, "id") != "c2" {
		t.Error("ByKey lookup failed")
	}
	if _, ok := tab.ByKey("ghost"); ok {
		t.Error("missing key should not resolve")
	}
}

func insertCustomer(t *testing.T, tab *Table, id, name, phone, addr string, bal float64, seg string) RowID {
	t.Helper()
	rid, err := tab.Insert(StringValue(id), StringValue(name), StringValue(phone),
		StringValue(addr), FloatValue(bal), StringValue(seg))
	if err != nil {
		t.Fatal(err)
	}
	return rid
}

func TestScanAndSelect(t *testing.T) {
	tab := newCustomerTable(t)
	insertCustomer(t, tab, "c1", "john smith", "111", "a", 10, "gold")
	insertCustomer(t, tab, "c2", "mary jones", "222", "b", 20, "silver")
	insertCustomer(t, tab, "c3", "bob brown", "333", "c", 30, "gold")

	gold := tab.Select(func(get func(string) Value) bool {
		return get("segment").Str == "gold"
	})
	if len(gold) != 2 {
		t.Errorf("gold rows = %v", gold)
	}
	// Early-terminating scan.
	count := 0
	tab.Scan(func(id RowID, get func(string) Value) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("scan visited %d rows", count)
	}
}

func TestCountByAndCrossTab(t *testing.T) {
	tab := newCustomerTable(t)
	insertCustomer(t, tab, "c1", "a", "1", "x", 1, "gold")
	insertCustomer(t, tab, "c2", "b", "2", "x", 1, "gold")
	insertCustomer(t, tab, "c3", "c", "3", "y", 1, "silver")
	counts := tab.CountBy("segment")
	if counts["gold"] != 2 || counts["silver"] != 1 {
		t.Errorf("CountBy = %v", counts)
	}
	ct := tab.CrossTab("segment", "address")
	if ct[[2]string{"gold", "x"}] != 2 || ct[[2]string{"silver", "y"}] != 1 {
		t.Errorf("CrossTab = %v", ct)
	}
	if len(tab.CountBy("ghost")) != 0 {
		t.Error("missing column CountBy should be empty")
	}
}

func TestDistinct(t *testing.T) {
	tab := newCustomerTable(t)
	insertCustomer(t, tab, "c1", "a", "1", "x", 1, "gold")
	insertCustomer(t, tab, "c2", "b", "2", "y", 1, "gold")
	got := tab.Distinct("segment")
	if len(got) != 1 || got[0] != "gold" {
		t.Errorf("Distinct = %v", got)
	}
}

func TestNameIndexFuzzyRecall(t *testing.T) {
	tab := newCustomerTable(t)
	smith := insertCustomer(t, tab, "c1", "john smith", "111", "a", 1, "s")
	insertCustomer(t, tab, "c2", "mary wilkins", "222", "b", 1, "s")

	// A garbled-but-similar-sounding surname should still recall Smith.
	cands := tab.Candidates("name", "smyth")
	found := false
	for _, id := range cands {
		if id == smith {
			found = true
		}
	}
	if !found {
		t.Errorf("fuzzy name index missed smith: %v", cands)
	}
}

func TestDigitIndexPartialRecall(t *testing.T) {
	tab := newCustomerTable(t)
	target := insertCustomer(t, tab, "c1", "a", "9876543210", "x", 1, "s")
	insertCustomer(t, tab, "c2", "b", "1231231234", "y", 1, "s")
	// Only 6 of 10 digits recognized (contiguous run): most trigrams
	// survive.
	cands := tab.Candidates("phone", "987654")
	found := false
	for _, id := range cands {
		if id == target {
			found = true
		}
	}
	if !found {
		t.Errorf("digit index missed partial number: %v", cands)
	}
}

func TestTextIndexRecall(t *testing.T) {
	tab := newCustomerTable(t)
	target := insertCustomer(t, tab, "c1", "a", "1", "42 lake road", 1, "s")
	cands := tab.Candidates("address", "lake rode") // typo
	found := false
	for _, id := range cands {
		if id == target {
			found = true
		}
	}
	if !found {
		t.Errorf("text index missed: %v", cands)
	}
}

func TestCandidatesSortedUnique(t *testing.T) {
	tab := newCustomerTable(t)
	insertCustomer(t, tab, "c1", "anna anna", "1", "x", 1, "s")
	cands := tab.Candidates("name", "anna")
	for i := 1; i < len(cands); i++ {
		if cands[i] <= cands[i-1] {
			t.Errorf("candidates not sorted-unique: %v", cands)
		}
	}
	if got := tab.Candidates("ghost", "x"); got != nil {
		t.Errorf("missing column candidates = %v", got)
	}
}

func TestExactIndexProperty(t *testing.T) {
	tab := newCustomerTable(t)
	ids := map[string]RowID{}
	for _, seg := range []string{"gold", "silver", "bronze"} {
		ids[seg] = insertCustomer(t, tab, "c-"+seg, "n", "1", "x", 1, seg)
	}
	f := func(pick uint8) bool {
		segs := []string{"gold", "silver", "bronze"}
		seg := segs[int(pick)%3]
		cands := tab.Candidates("segment", seg)
		for _, id := range cands {
			if id == ids[seg] {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDBTables(t *testing.T) {
	db := NewDB()
	if _, err := db.CreateTable(customerSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(customerSchema()); err == nil {
		t.Error("duplicate table should fail")
	}
	if _, ok := db.Table("customers"); !ok {
		t.Error("table lookup failed")
	}
	if _, ok := db.Table("ghost"); ok {
		t.Error("missing table resolved")
	}
	if names := db.TableNames(); len(names) != 1 || names[0] != "customers" {
		t.Errorf("names = %v", names)
	}
	if got := db.Tables(); len(got) != 1 || got[0].Name() != "customers" {
		t.Error("Tables() wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustTable on missing table should panic")
		}
	}()
	db.MustTable("ghost")
}

func TestCSVRoundTrip(t *testing.T) {
	tab := newCustomerTable(t)
	insertCustomer(t, tab, "c1", "john, smith", "987", "a \"quoted\" addr", 10.25, "gold")
	insertCustomer(t, tab, "c2", "mary", "123", "plain", 20, "silver")

	var buf bytes.Buffer
	if err := tab.ExportCSV(&buf); err != nil {
		t.Fatal(err)
	}
	tab2, err := NewTable(customerSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := tab2.ImportCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if tab2.Len() != 2 {
		t.Fatalf("round-trip lost rows: %d", tab2.Len())
	}
	if tab2.GetString(0, "name") != "john, smith" {
		t.Error("comma in value not preserved")
	}
	if tab2.GetNum(0, "balance") != 10.25 {
		t.Error("numeric not preserved")
	}
}

func TestImportCSVErrors(t *testing.T) {
	tab := newCustomerTable(t)
	cases := []string{
		"",               // no header
		"wrong,header\n", // wrong arity
		"id,name,phone,address,balance,wrongname\n",                  // wrong column name
		"id,name,phone,address,balance,segment\nc1,n,p,a,notnum,s\n", // bad float
	}
	for i, in := range cases {
		fresh, _ := NewTable(customerSchema())
		if err := fresh.ImportCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	_ = tab
}

func TestAggregate(t *testing.T) {
	tab := newCustomerTable(t)
	insertCustomer(t, tab, "c1", "a", "1", "x", 10, "gold")
	insertCustomer(t, tab, "c2", "b", "2", "x", 30, "gold")
	insertCustomer(t, tab, "c3", "c", "3", "y", 5, "silver")
	agg := tab.Aggregate("segment", "balance")
	gold := agg["gold"]
	if gold.Count != 2 || gold.Sum != 40 || gold.Min != 10 || gold.Max != 30 {
		t.Errorf("gold agg = %+v", gold)
	}
	if gold.Mean() != 20 {
		t.Errorf("gold mean = %v", gold.Mean())
	}
	if agg["silver"].Count != 1 || agg["silver"].Mean() != 5 {
		t.Errorf("silver agg = %+v", agg["silver"])
	}
	if len(tab.Aggregate("ghost", "balance")) != 0 {
		t.Error("missing group column should be empty")
	}
	if (AggStats{}).Mean() != 0 {
		t.Error("empty mean should be 0")
	}
}
