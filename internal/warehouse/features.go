package warehouse

import (
	"strconv"
	"strings"

	"bivoc/internal/fuzzy"
	"bivoc/internal/phonetics"
)

// MatchFeatures caches the derived forms of one stored cell that the
// linking engine's similarity measures consume. The naive path
// recomputes these per comparison — lowercasing the value, splitting it
// into words, running grapheme-to-phoneme conversion, building n-gram
// sets, extracting digits, parsing amounts — which made random access in
// the Threshold-Algorithm merge pay full feature-extraction cost on
// every call. Materializing them once at insert time turns each
// comparison into pure arithmetic over cached slices and sets.
//
// Only the fields relevant to the column's MatchKind are populated; the
// rest stay zero.
type MatchFeatures struct {
	// Lower is the lowercase value (all kinds; MatchExact compares it).
	Lower string
	// Words are the fields of Lower (MatchName).
	Words []string
	// WordPhones is the phone sequence of each word of Words (MatchName).
	WordPhones [][]phonetics.Phone
	// Grams is the padded character-trigram set of Lower (MatchText).
	Grams map[string]struct{}
	// Digits is the digit content of Lower (MatchDigits).
	Digits string
	// Amount is the parsed numeric value of Lower and AmountOK whether it
	// parsed (MatchNumeric). Parsing mirrors linker.ParseAmount so cached
	// and recomputed comparisons agree bit-for-bit.
	Amount   float64
	AmountOK bool
}

// matchFeatures derives the cached features of one value under a kind.
func matchFeatures(kind MatchKind, value string) MatchFeatures {
	f := MatchFeatures{Lower: strings.ToLower(value)}
	switch kind {
	case MatchName:
		f.Words = strings.Fields(f.Lower)
		f.WordPhones = make([][]phonetics.Phone, len(f.Words))
		for i, w := range f.Words {
			f.WordPhones[i] = phonetics.ToPhones(w)
		}
	case MatchText:
		f.Grams = fuzzy.NGramSet(f.Lower, 3)
	case MatchDigits:
		f.Digits = fuzzy.DigitString(f.Lower)
	case MatchNumeric:
		f.Amount, f.AmountOK = parseAmount(f.Lower)
	}
	return f
}

// parseAmount mirrors linker.ParseAmount (which cannot be imported here
// without a cycle): the float value of the trimmed string.
func parseAmount(s string) (float64, bool) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Features returns the cached per-row match features of a column,
// indexed by RowID, or nil for an unknown column. The column is
// materialized on the first call (subsequent Inserts keep it aligned)
// and safe for concurrent callers; the slice is shared — callers must
// treat it as read-only.
func (t *Table) Features(column string) []MatchFeatures {
	t.featMu.RLock()
	feats, ok := t.features[column]
	t.featMu.RUnlock()
	if ok {
		return feats
	}
	ci := t.schema.col(column)
	if ci < 0 {
		return nil
	}
	t.featMu.Lock()
	defer t.featMu.Unlock()
	if feats, ok := t.features[column]; ok {
		return feats // another caller built it while we waited
	}
	kind := t.schema.Columns[ci].Match
	feats = make([]MatchFeatures, len(t.rows))
	for r := range t.rows {
		feats[r] = matchFeatures(kind, t.rows[r].vals[ci].Str)
	}
	t.features[column] = feats
	return feats
}
