package warehouse

import (
	"sort"
	"strings"

	"bivoc/internal/phonetics"
)

// index is a secondary index specialized by MatchKind. Each kind chooses
// bucketing keys so that a noisy token and its true value share at least
// one bucket with high probability:
//
//   - MatchExact / MatchNumeric: exact string buckets.
//   - MatchName: Soundex and phone-skeleton buckets — ASR substitutes
//     similar-sounding names, which usually preserve these keys.
//   - MatchText: character trigram buckets (any shared trigram recalls
//     the row; scoring prunes false candidates).
//   - MatchDigits: digit 3-gram buckets — a partially recognized phone
//     number shares most digit trigrams with the true number.
type index struct {
	kind    MatchKind
	buckets map[string][]RowID
}

func newIndex(kind MatchKind) *index {
	return &index{kind: kind, buckets: make(map[string][]RowID)}
}

// keysFor returns the bucket keys for a value under this index's kind.
func (ix *index) keysFor(value string) []string {
	v := strings.ToLower(strings.TrimSpace(value))
	switch ix.kind {
	case MatchName:
		var keys []string
		for _, tok := range strings.Fields(v) {
			keys = append(keys, "s:"+phonetics.Soundex(tok))
			if pk := phonetics.PhoneKey(tok); pk != "" {
				keys = append(keys, "p:"+pk)
			}
		}
		if len(keys) == 0 {
			keys = []string{"s:" + phonetics.Soundex(v)}
		}
		return keys
	case MatchText:
		return trigrams(v)
	case MatchDigits:
		return digitGrams(v)
	default:
		return []string{v}
	}
}

func (ix *index) add(value string, id RowID) {
	for _, k := range ix.keysFor(value) {
		ix.buckets[k] = append(ix.buckets[k], id)
	}
}

// lookupAppend appends the ids of every bucket the token keys into onto
// buf, then sorts and compacts in place so the result is duplicate-free.
// A row whose value shares several bucket keys with the token (common for
// trigram and digit-gram indexes) used to come back once per shared key,
// multiplying downstream similarity calls; deduplicating here keeps the
// multiplication out of every caller.
func (ix *index) lookupAppend(buf []RowID, token string) []RowID {
	for _, k := range ix.keysFor(token) {
		buf = append(buf, ix.buckets[k]...)
	}
	if len(buf) < 2 {
		return buf
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	out := buf[:1]
	for _, id := range buf[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}

// trigrams returns padded character trigram keys.
func trigrams(s string) []string {
	p := "##" + s + "##"
	seen := map[string]bool{}
	var out []string
	for i := 0; i+3 <= len(p); i++ {
		g := "t:" + p[i:i+3]
		if !seen[g] {
			seen[g] = true
			out = append(out, g)
		}
	}
	return out
}

// digitGrams returns 3-gram keys over the digit content of s; values
// with fewer than 3 digits key on the raw digit string.
func digitGrams(s string) []string {
	var d strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] >= '0' && s[i] <= '9' {
			d.WriteByte(s[i])
		}
	}
	ds := d.String()
	if len(ds) < 3 {
		return []string{"d:" + ds}
	}
	seen := map[string]bool{}
	var out []string
	for i := 0; i+3 <= len(ds); i++ {
		g := "d:" + ds[i:i+3]
		if !seen[g] {
			seen[g] = true
			out = append(out, g)
		}
	}
	return out
}
