package warehouse

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// DB is a named collection of tables — the "structured database" side of
// every BIVoC engagement.
type DB struct {
	tables map[string]*Table
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{tables: make(map[string]*Table)} }

// CreateTable adds a table with the schema, failing on duplicates.
func (db *DB) CreateTable(schema Schema) (*Table, error) {
	if _, exists := db.tables[schema.Table]; exists {
		return nil, fmt.Errorf("warehouse: table %s already exists", schema.Table)
	}
	t, err := NewTable(schema)
	if err != nil {
		return nil, err
	}
	db.tables[schema.Table] = t
	return t, nil
}

// Table returns a table by name.
func (db *DB) Table(name string) (*Table, bool) {
	t, ok := db.tables[name]
	return t, ok
}

// MustTable returns a table that is known to exist.
func (db *DB) MustTable(name string) *Table {
	t, ok := db.tables[name]
	if !ok {
		panic("warehouse: missing table " + name)
	}
	return t
}

// TableNames returns the sorted table names.
func (db *DB) TableNames() []string {
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Tables returns all tables in name order.
func (db *DB) Tables() []*Table {
	names := db.TableNames()
	out := make([]*Table, len(names))
	for i, n := range names {
		out[i] = db.tables[n]
	}
	return out
}

// ExportCSV writes the table as CSV with a header row.
func (t *Table) ExportCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(t.schema.Columns))
	for i, c := range t.schema.Columns {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range t.rows {
		rec := make([]string, len(r.vals))
		for i, v := range r.vals {
			rec[i] = v.Str
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ImportCSV reads rows from CSV (with a header row matching the schema
// column order) into the table.
func (t *Table) ImportCSV(r io.Reader) error {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("warehouse: reading CSV header: %w", err)
	}
	if len(header) != len(t.schema.Columns) {
		return fmt.Errorf("warehouse: CSV has %d columns, schema has %d",
			len(header), len(t.schema.Columns))
	}
	for i, h := range header {
		if h != t.schema.Columns[i].Name {
			return fmt.Errorf("warehouse: CSV column %d is %q, want %q", i, h, t.schema.Columns[i].Name)
		}
	}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("warehouse: reading CSV line %d: %w", line, err)
		}
		vals := make([]Value, len(rec))
		for i, s := range rec {
			switch t.schema.Columns[i].Type {
			case TypeInt:
				n, err := strconv.ParseInt(s, 10, 64)
				if err != nil {
					return fmt.Errorf("warehouse: line %d column %s: %w", line, t.schema.Columns[i].Name, err)
				}
				vals[i] = IntValue(n)
			case TypeFloat:
				f, err := strconv.ParseFloat(s, 64)
				if err != nil {
					return fmt.Errorf("warehouse: line %d column %s: %w", line, t.schema.Columns[i].Name, err)
				}
				vals[i] = FloatValue(f)
			default:
				vals[i] = StringValue(s)
			}
		}
		if _, err := t.Insert(vals...); err != nil {
			return fmt.Errorf("warehouse: line %d: %w", line, err)
		}
	}
}
