package warehouse

import (
	"reflect"
	"strings"
	"testing"

	"bivoc/internal/fuzzy"
	"bivoc/internal/phonetics"
)

// TestLookupDeduplicates pins the duplicate-candidates fix at the index
// layer: a token sharing many trigram buckets with a stored value must
// surface that row exactly once from lookupAppend, not once per shared
// bucket key.
func TestLookupDeduplicates(t *testing.T) {
	ix := newIndex(MatchText)
	ix.add("42 lake shore drive", 0) // dozens of trigrams
	ix.add("9 hill st", 1)
	got := ix.lookupAppend(nil, "42 lake shore drive")
	if want := []RowID{0}; !reflect.DeepEqual(got, want) {
		t.Errorf("lookupAppend = %v, want %v (one copy per row)", got, want)
	}

	dg := newIndex(MatchDigits)
	dg.add("555-0142-0142", 7) // repeated digit grams
	ids := dg.lookupAppend(nil, "555 0142 0142")
	if want := []RowID{7}; !reflect.DeepEqual(ids, want) {
		t.Errorf("digit lookupAppend = %v, want %v", ids, want)
	}
}

// TestCandidatesAppendReusesBuffer checks the reusable-buffer contract:
// the returned slice aliases the passed buffer when capacity suffices,
// and results are sorted duplicate-free either way.
func TestCandidatesAppendReusesBuffer(t *testing.T) {
	tab := newCustomerTable(t)
	for i := 0; i < 8; i++ {
		insertCustomer(t, tab, "c"+string(rune('0'+i)), "anna maria anna", "555111222", "x", 1, "s")
	}
	buf := make([]RowID, 0, 64)
	got := tab.CandidatesAppend(buf, "name", "anna")
	if len(got) == 0 {
		t.Fatal("no candidates")
	}
	if &got[0] != &buf[:1][0] {
		t.Error("CandidatesAppend did not reuse the provided buffer")
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("not sorted-unique: %v", got)
		}
	}
	// Repeated calls with the warm buffer must not regrow it.
	buf = got
	for i := 0; i < 20; i++ {
		prev := &buf[:1][0]
		buf = tab.CandidatesAppend(buf, "name", "anna")
		if &buf[:1][0] != prev {
			t.Fatal("warm buffer was reallocated")
		}
	}
}

// TestMatchFeaturesCached verifies the per-column feature cache holds the
// same derived forms the similarity measures would recompute.
func TestMatchFeaturesCached(t *testing.T) {
	tab := newCustomerTable(t)
	id := insertCustomer(t, tab, "C9", "John P Smith", "(555) 012-3456", "42 Lake Road", 123.5, "Gold")

	name := tab.Features("name")[id]
	if name.Lower != "john p smith" {
		t.Errorf("Lower = %q", name.Lower)
	}
	if !reflect.DeepEqual(name.Words, strings.Fields("john p smith")) {
		t.Errorf("Words = %v", name.Words)
	}
	if len(name.WordPhones) != 3 || !reflect.DeepEqual(name.WordPhones[0], phonetics.ToPhones("john")) {
		t.Errorf("WordPhones = %v", name.WordPhones)
	}

	addr := tab.Features("address")[id]
	if !reflect.DeepEqual(addr.Grams, fuzzy.NGramSet("42 lake road", 3)) {
		t.Errorf("Grams mismatch: %v", addr.Grams)
	}

	phone := tab.Features("phone")[id]
	if phone.Digits != "5550123456" {
		t.Errorf("Digits = %q", phone.Digits)
	}

	bal := tab.Features("balance")[id]
	if !bal.AmountOK || bal.Amount != 123.5 {
		t.Errorf("Amount = %v ok=%v", bal.Amount, bal.AmountOK)
	}

	seg := tab.Features("segment")[id]
	if seg.Lower != "gold" {
		t.Errorf("segment Lower = %q", seg.Lower)
	}
	if tab.Features("ghost") != nil {
		t.Error("unknown column should have no features")
	}

	if got, want := len(tab.Features("name")), tab.Len(); got != want {
		t.Errorf("features len = %d, rows = %d", got, want)
	}
}
