package classify

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func trainToy(t *testing.T) *NaiveBayes {
	t.Helper()
	nb := NewNaiveBayes()
	spam := []string{
		"win lottery prize money now",
		"cheap pills buy now limited offer",
		"free money claim prize today",
		"earn money from home now",
	}
	ham := []string{
		"my bill is too high this month",
		"please check my account balance",
		"the network is not working in my area",
		"i want to change my plan",
	}
	for _, s := range spam {
		nb.Train("spam", strings.Fields(s))
	}
	for _, s := range ham {
		nb.Train("ham", strings.Fields(s))
	}
	return nb
}

func TestPredictSeparatesClasses(t *testing.T) {
	nb := trainToy(t)
	if got := nb.Predict(strings.Fields("claim your free prize money now")); got != "spam" {
		t.Errorf("spam classified as %q", got)
	}
	if got := nb.Predict(strings.Fields("my account bill is wrong")); got != "ham" {
		t.Errorf("ham classified as %q", got)
	}
}

func TestPredictUntrained(t *testing.T) {
	nb := NewNaiveBayes()
	if nb.Predict([]string{"x"}) != "" {
		t.Error("untrained classifier should return empty class")
	}
	if nb.Trained() {
		t.Error("untrained reports trained")
	}
}

func TestPosteriorsNormalized(t *testing.T) {
	nb := trainToy(t)
	f := func(words []string) bool {
		toks := make([]string, 0, len(words)%6)
		for i := 0; i < len(words)%6; i++ {
			toks = append(toks, words[i])
		}
		post := nb.Posteriors(toks)
		sum := 0.0
		for _, p := range post {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUnknownTokensNeutral(t *testing.T) {
	nb := trainToy(t)
	post := nb.Posteriors([]string{"zzzz", "qqqq"})
	// With equal doc counts, unknown-only documents should be near the
	// priors (1/2 each).
	if math.Abs(post["spam"]-0.5) > 0.1 {
		t.Errorf("unknown-token posterior %v should be near prior", post)
	}
}

func TestSetPriors(t *testing.T) {
	nb := trainToy(t)
	if err := nb.SetPriors(map[string]float64{"spam": 0.01, "ham": 0.99}); err != nil {
		t.Fatal(err)
	}
	// Borderline document should now lean ham.
	post := nb.Posteriors([]string{"now"})
	if post["ham"] <= post["spam"] {
		t.Errorf("strong ham prior not respected: %v", post)
	}
	if err := nb.SetPriors(map[string]float64{"ghost": 1}); err == nil {
		t.Error("unknown class prior accepted")
	}
	if err := nb.SetPriors(map[string]float64{"spam": -1}); err == nil {
		t.Error("negative prior accepted")
	}
	if err := nb.SetPriors(map[string]float64{"spam": 0}); err == nil {
		t.Error("zero prior mass accepted")
	}
	if err := NewNaiveBayes().SetPriors(map[string]float64{"x": 1}); err == nil {
		t.Error("priors before training accepted")
	}
}

func TestPredictWithThreshold(t *testing.T) {
	nb := trainToy(t)
	toks := strings.Fields("money now")
	post := nb.Posteriors(toks)
	// With threshold above the posterior → fallback; below → positive.
	hi := nb.PredictWithThreshold(toks, "spam", post["spam"]+0.01, "ham")
	lo := nb.PredictWithThreshold(toks, "spam", post["spam"]-0.01, "ham")
	if hi != "ham" || lo != "spam" {
		t.Errorf("threshold behaviour wrong: hi=%q lo=%q", hi, lo)
	}
}

func TestTopFeatures(t *testing.T) {
	nb := trainToy(t)
	top := nb.TopFeatures("spam", 5)
	if len(top) != 5 {
		t.Fatalf("got %d features", len(top))
	}
	found := false
	for _, w := range top {
		if w == "money" || w == "prize" || w == "now" {
			found = true
		}
	}
	if !found {
		t.Errorf("spam features missing obvious words: %v", top)
	}
	if nb.TopFeatures("ghost", 3) != nil {
		t.Error("unknown class should have no features")
	}
	if got := nb.TopFeatures("spam", 100000); len(got) == 0 {
		t.Error("oversized n should clamp, not fail")
	}
}

func TestClassesCopy(t *testing.T) {
	nb := trainToy(t)
	c := nb.Classes()
	c[0] = "mutated"
	if nb.Classes()[0] == "mutated" {
		t.Error("Classes leaks internal slice")
	}
}

func TestEvaluationCounters(t *testing.T) {
	var e Evaluation
	e.Add("churn", "churn", "churn") // TP
	e.Add("churn", "stay", "churn")  // FP
	e.Add("stay", "churn", "churn")  // FN
	e.Add("stay", "stay", "churn")   // TN
	if e.TP != 1 || e.FP != 1 || e.FN != 1 || e.TN != 1 {
		t.Fatalf("counts wrong: %+v", e)
	}
	if e.Recall() != 0.5 || e.Precision() != 0.5 || e.Accuracy() != 0.5 {
		t.Errorf("metrics wrong: r=%v p=%v a=%v", e.Recall(), e.Precision(), e.Accuracy())
	}
	if e.F1() != 0.5 {
		t.Errorf("f1 = %v", e.F1())
	}
}

func TestEvaluationEmpty(t *testing.T) {
	var e Evaluation
	if e.Recall() != 0 || e.Precision() != 0 || e.Accuracy() != 0 || e.F1() != 0 {
		t.Error("empty evaluation should be all zeros")
	}
}

func TestImbalancedRecallImprovesWithThreshold(t *testing.T) {
	// Build an imbalanced problem: 5% positive.
	nb := NewNaiveBayes()
	posWords := strings.Fields("leaving switch provider porting cancel disconnect")
	negWords := strings.Fields("balance plan recharge data pack billing query")
	for i := 0; i < 10; i++ {
		nb.Train("churn", []string{posWords[i%len(posWords)], negWords[i%len(negWords)]})
	}
	for i := 0; i < 190; i++ {
		nb.Train("stay", []string{negWords[i%len(negWords)], negWords[(i+1)%len(negWords)]})
	}
	// A weak churn signal document.
	doc := []string{"cancel", "billing"}
	var strict, lenient Evaluation
	strict.Add(nb.PredictWithThreshold(doc, "churn", 0.9, "stay"), "churn", "churn")
	lenient.Add(nb.PredictWithThreshold(doc, "churn", 0.1, "stay"), "churn", "churn")
	if lenient.Recall() < strict.Recall() {
		t.Error("lenient threshold should not lower recall")
	}
}
