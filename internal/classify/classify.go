// Package classify provides the multinomial Naive Bayes text classifier
// used in two places in BIVoC: the spam gate of the e-mail/SMS cleaning
// stage (§IV.A.2 "we detect spam messages ... and discard them") and the
// churn predictor of §VI ("We trained a classifier using VoC of churners
// and non-churners to predict future churners").
//
// The implementation supports class priors and a decision-threshold
// adjustment, which is how the churn use case handles its heavily
// imbalanced classes (3% churners among 47,460 emails).
package classify

import (
	"errors"
	"math"
	"sort"
)

// NaiveBayes is a multinomial Naive Bayes model over word features with
// Laplace smoothing.
type NaiveBayes struct {
	classes     []string
	classIdx    map[string]int
	wordCounts  []map[string]int // per class
	totalWords  []int            // per class
	docCounts   []int            // per class
	totalDocs   int
	vocab       map[string]bool
	priorsFixed []float64 // optional externally set priors
}

// NewNaiveBayes returns an untrained classifier.
func NewNaiveBayes() *NaiveBayes {
	return &NaiveBayes{classIdx: make(map[string]int), vocab: make(map[string]bool)}
}

// Train adds one labeled document (a bag of tokens).
func (nb *NaiveBayes) Train(class string, tokens []string) {
	idx, ok := nb.classIdx[class]
	if !ok {
		idx = len(nb.classes)
		nb.classIdx[class] = idx
		nb.classes = append(nb.classes, class)
		nb.wordCounts = append(nb.wordCounts, make(map[string]int))
		nb.totalWords = append(nb.totalWords, 0)
		nb.docCounts = append(nb.docCounts, 0)
	}
	nb.docCounts[idx]++
	nb.totalDocs++
	for _, tok := range tokens {
		nb.wordCounts[idx][tok]++
		nb.totalWords[idx]++
		nb.vocab[tok] = true
	}
}

// SetPriors overrides the empirical class priors (e.g. to downweight an
// over-sampled minority class or encode a business prior). Pass values
// in the same order as Classes(); they are normalized internally.
func (nb *NaiveBayes) SetPriors(priors map[string]float64) error {
	if len(nb.classes) == 0 {
		return errors.New("classify: set priors after training")
	}
	fixed := make([]float64, len(nb.classes))
	total := 0.0
	for c, p := range priors {
		idx, ok := nb.classIdx[c]
		if !ok {
			return errors.New("classify: unknown class " + c)
		}
		if p < 0 {
			return errors.New("classify: negative prior")
		}
		fixed[idx] = p
		total += p
	}
	if total <= 0 {
		return errors.New("classify: zero total prior")
	}
	for i := range fixed {
		fixed[i] /= total
	}
	nb.priorsFixed = fixed
	return nil
}

// Classes returns the known class labels in training order.
func (nb *NaiveBayes) Classes() []string {
	out := make([]string, len(nb.classes))
	copy(out, nb.classes)
	return out
}

// Trained reports whether any documents have been seen.
func (nb *NaiveBayes) Trained() bool { return nb.totalDocs > 0 }

// LogPosteriors returns the unnormalized log-posterior per class.
func (nb *NaiveBayes) LogPosteriors(tokens []string) map[string]float64 {
	out := make(map[string]float64, len(nb.classes))
	v := float64(len(nb.vocab))
	for i, class := range nb.classes {
		var prior float64
		if nb.priorsFixed != nil {
			prior = nb.priorsFixed[i]
			if prior <= 0 {
				prior = 1e-12
			}
		} else {
			prior = float64(nb.docCounts[i]) / float64(nb.totalDocs)
		}
		lp := math.Log(prior)
		denom := float64(nb.totalWords[i]) + v
		for _, tok := range tokens {
			c := float64(nb.wordCounts[i][tok])
			lp += math.Log((c + 1) / denom)
		}
		out[class] = lp
	}
	return out
}

// Posteriors returns normalized class probabilities.
func (nb *NaiveBayes) Posteriors(tokens []string) map[string]float64 {
	logs := nb.LogPosteriors(tokens)
	// Log-sum-exp normalization.
	max := math.Inf(-1)
	for _, lp := range logs {
		if lp > max {
			max = lp
		}
	}
	total := 0.0
	for _, lp := range logs {
		total += math.Exp(lp - max)
	}
	out := make(map[string]float64, len(logs))
	for c, lp := range logs {
		out[c] = math.Exp(lp-max) / total
	}
	return out
}

// Predict returns the maximum-posterior class. Ties break by training
// order for determinism. It returns "" when untrained.
func (nb *NaiveBayes) Predict(tokens []string) string {
	if !nb.Trained() {
		return ""
	}
	logs := nb.LogPosteriors(tokens)
	best := ""
	bestLP := math.Inf(-1)
	for _, c := range nb.classes {
		if lp := logs[c]; lp > bestLP {
			bestLP = lp
			best = c
		}
	}
	return best
}

// PredictWithThreshold returns positiveClass when its posterior exceeds
// threshold, else the fallback class. This is the imbalance lever of the
// churn use case: with a 3% minority class, maximizing accuracy would
// never flag a churner; lowering the threshold trades precision for the
// churner recall the business cares about.
func (nb *NaiveBayes) PredictWithThreshold(tokens []string, positiveClass string, threshold float64, fallback string) string {
	post := nb.Posteriors(tokens)
	if post[positiveClass] >= threshold {
		return positiveClass
	}
	return fallback
}

// TopFeatures returns the n tokens with the highest log-odds for the
// class against all other classes pooled — the "key features
// corresponding to churn drivers" the paper extracts.
func (nb *NaiveBayes) TopFeatures(class string, n int) []string {
	idx, ok := nb.classIdx[class]
	if !ok {
		return nil
	}
	v := float64(len(nb.vocab))
	inDenom := float64(nb.totalWords[idx]) + v
	outTotal := 0
	for i := range nb.classes {
		if i != idx {
			outTotal += nb.totalWords[i]
		}
	}
	outDenom := float64(outTotal) + v
	type scored struct {
		tok   string
		score float64
	}
	var all []scored
	for tok := range nb.vocab {
		inC := float64(nb.wordCounts[idx][tok])
		outC := 0.0
		for i := range nb.classes {
			if i != idx {
				outC += float64(nb.wordCounts[i][tok])
			}
		}
		score := math.Log((inC+1)/inDenom) - math.Log((outC+1)/outDenom)
		all = append(all, scored{tok, score})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].tok < all[j].tok
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].tok
	}
	return out
}

// Evaluation holds binary-classification quality measures for a positive
// class.
type Evaluation struct {
	TP, FP, TN, FN int
}

// Add records one prediction.
func (e *Evaluation) Add(predicted, actual, positive string) {
	switch {
	case actual == positive && predicted == positive:
		e.TP++
	case actual == positive:
		e.FN++
	case predicted == positive:
		e.FP++
	default:
		e.TN++
	}
}

// Recall returns TP/(TP+FN) — the paper's churn metric ("we were able to
// detect 53.6% percent of churners correctly").
func (e *Evaluation) Recall() float64 {
	if e.TP+e.FN == 0 {
		return 0
	}
	return float64(e.TP) / float64(e.TP+e.FN)
}

// Precision returns TP/(TP+FP).
func (e *Evaluation) Precision() float64 {
	if e.TP+e.FP == 0 {
		return 0
	}
	return float64(e.TP) / float64(e.TP+e.FP)
}

// Accuracy returns the overall fraction correct.
func (e *Evaluation) Accuracy() float64 {
	n := e.TP + e.FP + e.TN + e.FN
	if n == 0 {
		return 0
	}
	return float64(e.TP+e.TN) / float64(n)
}

// F1 returns the harmonic mean of precision and recall.
func (e *Evaluation) F1() float64 {
	p, r := e.Precision(), e.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}
