package server

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"bivoc/internal/mining"
	"bivoc/internal/store"
)

// Byte-identity acceptance suite for mmap-backed serving: a daemon
// recovering its corpus through mapped segments must answer every /v1
// endpoint with exactly the bytes a materialized daemon serves — on the
// fast query paths and the naive oracle, at any associate worker
// count, and across a compaction that swaps the merged heap index for
// a mapped view of the freshly written segment.

func openMappedStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{MapSegments: true})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// copyStoreDir clones a store directory so a second daemon can open it
// concurrently — two daemons can never share one live WAL.
func copyStoreDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			t.Fatalf("store dir unexpectedly contains a subdirectory %q", e.Name())
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func shutdownServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// sealCorpus ingests docs through a persisted daemon and returns the
// store directory holding the sealed segment, plus the baseline bodies.
func sealCorpus(t *testing.T, docs []mining.Document, queries []string) (string, map[string][]byte) {
	t.Helper()
	dir := t.TempDir()
	s := startServer(t, Config{Source: resumableSource(docs, nil), Persist: openStore(t, dir)})
	waitIngestDone(t, s)
	want := fetchAll(t, "http://"+s.Addr(), queries)
	shutdownServer(t, s)
	return dir, want
}

// TestMappedDaemonServesIdenticalBytes boots a materialized and a
// mapped daemon over copies of the same sealed corpus and requires
// every endpoint body to match the original run byte for byte, across
// associate worker counts and on the naive-sets oracle. Caching is
// disabled so the oracle pass actually recomputes.
func TestMappedDaemonServesIdenticalBytes(t *testing.T) {
	docs := testDocs(150)
	queries := persistQueries()
	dir, want := sealCorpus(t, docs, queries)

	for _, workers := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			mat := startServer(t, Config{
				Source:           resumableSource(docs, nil),
				Persist:          openStore(t, copyStoreDir(t, dir)),
				AssociateWorkers: workers,
				CacheSize:        -1,
			})
			mapSt := openMappedStore(t, copyStoreDir(t, dir))
			mapped := startServer(t, Config{
				Source:           resumableSource(docs, nil),
				Persist:          mapSt,
				MapSegments:      true,
				AssociateWorkers: workers,
				CacheSize:        -1,
			})
			waitIngestDone(t, mat)
			waitIngestDone(t, mapped)

			if st := mapSt.Stats(); st.MappedSegments < 1 {
				t.Fatalf("mapped daemon recovered without mapping: %+v", st)
			}

			matBase, mapBase := "http://"+mat.Addr(), "http://"+mapped.Addr()
			got := fetchAll(t, mapBase, queries)
			compareAll(t, "mapped vs seed run", want, got)
			compareAll(t, "mapped vs materialized", fetchAll(t, matBase, queries), got)

			// Oracle pass: the naive set implementations must agree with
			// themselves across the backing too.
			old := mining.UseNaiveSets
			mining.UseNaiveSets = true
			naiveMat := fetchAll(t, matBase, queries)
			naiveMap := fetchAll(t, mapBase, queries)
			mining.UseNaiveSets = old
			compareAll(t, "naive oracle mapped vs materialized", naiveMat, naiveMap)
			compareAll(t, "naive oracle vs fast path", want, naiveMap)

			shutdownServer(t, mat)
			shutdownServer(t, mapped)
		})
	}
}

// TestMappedStatszSections pins the observability added with mapped
// serving: every daemon reports a process memory section, and a mapped
// daemon's store section carries mapped-segment and postings-cache
// counters (which a materialized daemon omits).
func TestMappedStatszSections(t *testing.T) {
	docs := testDocs(60)
	queries := persistQueries()
	dir, _ := sealCorpus(t, docs, queries)

	s := startServer(t, Config{
		Source:      resumableSource(docs, nil),
		Persist:     openMappedStore(t, dir),
		MapSegments: true,
	})
	waitIngestDone(t, s)
	base := "http://" + s.Addr()
	fetchAll(t, base, queries) // touch postings so the cache has traffic

	var sz StatszResponse
	getOK(t, base+"/statsz", &sz)
	if sz.Memory.HeapAllocBytes == 0 || sz.Memory.HeapInuseBytes == 0 {
		t.Errorf("memory section empty: %+v", sz.Memory)
	}
	if sz.Store == nil {
		t.Fatal("statsz missing the store section")
	}
	if sz.Store.MappedSegments < 1 || sz.Store.MappedBytes <= 0 {
		t.Errorf("store section shows no mappings: %+v", sz.Store)
	}
	if sz.Memory.MappedBytes != sz.Store.MappedBytes {
		t.Errorf("memory.mapped_bytes %d != store.mapped_bytes %d", sz.Memory.MappedBytes, sz.Store.MappedBytes)
	}
	if pc := sz.Store.PostingsCache; pc == nil {
		t.Error("store section missing postings_cache")
	} else if pc.Budget <= 0 || pc.Hits+pc.Misses == 0 {
		t.Errorf("postings cache saw no traffic: %+v", pc)
	}
	if sz.Store.OpenMicros <= 0 {
		t.Errorf("open_us = %d, want > 0", sz.Store.OpenMicros)
	}
	shutdownServer(t, s)

	// A materialized daemon reports memory but no mapping counters.
	plain := startServer(t, Config{Source: sliceSource(testDocs(10))})
	waitIngestDone(t, plain)
	var psz StatszResponse
	getOK(t, "http://"+plain.Addr()+"/statsz", &psz)
	if psz.Memory.HeapAllocBytes == 0 {
		t.Errorf("plain daemon memory section empty: %+v", psz.Memory)
	}
	if psz.Memory.MappedBytes != 0 {
		t.Errorf("plain daemon reports %d mapped bytes", psz.Memory.MappedBytes)
	}
}

// TestMappedDaemonCompactionIdentical drives both daemons through
// fresh ingest with a tight segment bound so the compactor runs, and
// requires the bytes to keep matching after the mapped daemon has
// swapped its merged heap index for a mapped view of the compacted
// segment.
func TestMappedDaemonCompactionIdentical(t *testing.T) {
	seed := testDocs(150)
	all := testDocs(300) // same first 150 IDs; the suffix is fresh ingest
	queries := persistQueries()
	dir, _ := sealCorpus(t, seed, queries)

	const maxSegs = 3
	cfg := func(st *store.Store, mapped bool) Config {
		return Config{
			Source:      resumableSource(all, nil),
			Persist:     st,
			MapSegments: mapped,
			SwapEvery:   25,
			MaxSegments: maxSegs,
		}
	}
	mat := startServer(t, cfg(openStore(t, copyStoreDir(t, dir)), false))
	mapSt := openMappedStore(t, copyStoreDir(t, dir))
	mapped := startServer(t, cfg(mapSt, true))
	waitIngestDone(t, mat)
	waitIngestDone(t, mapped)

	// The compactor is asynchronous; wait for both daemons to come back
	// under the segment bound with at least one compaction behind them.
	for _, s := range []*Server{mat, mapped} {
		deadline := time.Now().Add(10 * time.Second)
		for {
			segDocs, compactions := s.SegmentInfo()
			if len(segDocs) <= maxSegs && compactions > 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("compactor never bounded the segments: %v (compactions %d)", segDocs, compactions)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// The mapped daemon must now be serving at least one segment from a
	// mapping of the compaction's output.
	if st := mapSt.Stats(); st.MappedSegments < 1 {
		t.Fatalf("no mapped segments after compaction: %+v", st)
	}

	compareAll(t, "across compaction",
		fetchAll(t, "http://"+mat.Addr(), queries),
		fetchAll(t, "http://"+mapped.Addr(), queries))

	shutdownServer(t, mat)
	shutdownServer(t, mapped)
}
