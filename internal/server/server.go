// Package server is the query-serving tier of BIVoC: it turns the
// batch-and-stream mining layer into a continuously queryable daemon
// (cmd/bivocd), the §IV.D interactive concept index analysts hit for
// relative frequencies, 2-D associations, trends and drill-downs.
//
// Architecture — hot-swappable snapshots over a lock-free read path:
//
//	ingest loop (internal/pipeline) ──▶ docs accumulate
//	        │  every SwapInterval / SwapEvery docs
//	        ▼
//	mining.NewStreamIndex().AddBatch(docs).Seal()  → immutable *mining.Index
//	        │                                         + fresh LRU cache
//	        ▼
//	atomic.Pointer[snapshot].Store  ◀── generation++
//	                                        ▲
//	HTTP handlers: snap := ptr.Load() ──────┘  (one load per request)
//
// A background ingest loop drives the streaming pipeline, accumulates
// the documents delivered so far, and on a configurable cadence builds
// a sealed index over them (ID-sorted, so a snapshot is byte-identical
// to batch-indexing the same documents) and publishes it behind an
// atomic.Pointer. Handlers load the pointer exactly once per request,
// so every response is self-consistent with exactly one generation and
// steady-state reads never touch a lock the ingest loop holds.
//
// Hot query results are memoized in a per-snapshot LRU cache of final
// response bodies: cached and uncached replies are byte-identical, and
// a snapshot swap invalidates the whole cache structurally (the new
// snapshot carries a new, empty cache).
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"bivoc/internal/mining"
	"bivoc/internal/pipeline"
	"bivoc/internal/store"
)

// DocSource feeds the server's ingest loop: it calls emit once per
// mining document and returns when the stream is exhausted (the server
// then publishes the final, sealed snapshot) or when ctx is cancelled.
// core.NewServeServer adapts the call-analysis pipeline into one.
//
// already reports whether a document ID is durable from a previous run
// (recovered from the persistence layer's segment + WAL). Sources
// should skip such items before paying any pipeline work — that skip is
// what turns a restart over a persisted corpus from an O(corpus)
// re-ingest into a warm, sub-second resume. Sources that predate
// persistence may ignore it; the ingest loop drops already-durable
// documents it receives anyway.
type DocSource func(ctx context.Context, already func(id string) bool, emit func(mining.Document) error) error

// Config assembles a Server.
type Config struct {
	// Addr is the TCP listen address ("127.0.0.1:8080"; ":0" picks a
	// free port, readable from Server.Addr after Start).
	Addr string
	// Source feeds documents into the index. Required.
	Source DocSource
	// PipelineStats, when set, is surfaced on /statsz — wire it to the
	// ingest pipeline's Stats method.
	PipelineStats func() []pipeline.StageStats
	// SwapInterval publishes a fresh snapshot on a time cadence while
	// ingest is running (0 disables the ticker).
	SwapInterval time.Duration
	// SwapEvery publishes a fresh snapshot every N ingested documents
	// (0 disables; deterministic, which tests rely on). Both cadences
	// may be active at once.
	SwapEvery int
	// CacheSize bounds the per-snapshot LRU result cache (entries).
	// Default 256; negative disables caching.
	CacheSize int
	// Confidence is the association-interval confidence used when a
	// query does not pass its own. Default 0.95.
	Confidence float64
	// AssociateWorkers fans the /v1/associate cell grid across this many
	// workers per request (0 = mining package default, which resolves to
	// GOMAXPROCS). Tables are byte-identical at any worker count.
	AssociateWorkers int
	// DrainTimeout bounds the graceful drain of in-flight requests
	// during Run's shutdown. Default 5s.
	DrainTimeout time.Duration
	// Persist, when set, makes the daemon durable: the store's recovered
	// state (latest segment + WAL tail) seeds the first snapshot and the
	// ingest skip set, every ingested document is WAL-appended, and the
	// final sealed index is written as a new segment. Open it with
	// store.Open; the server takes ownership (Shutdown closes it).
	Persist *store.Store
}

func (c Config) cacheSize() int {
	if c.CacheSize == 0 {
		return 256
	}
	return c.CacheSize
}

func (c Config) confidence() float64 {
	if c.Confidence <= 0 || c.Confidence >= 1 {
		return 0.95
	}
	return c.Confidence
}

func (c Config) drainTimeout() time.Duration {
	if c.DrainTimeout <= 0 {
		return 5 * time.Second
	}
	return c.DrainTimeout
}

// snapshot is one published index generation. All fields are immutable
// after publication except the cache, which is internally synchronized;
// the *mining.Index is sealed and never mutated, so handlers read it
// without locks.
type snapshot struct {
	gen    uint64
	ix     *mining.Index
	sealed bool // true once the source is exhausted: the index is final
	cache  *lruCache
}

// Server owns the snapshot pointer, the ingest loop and the HTTP API.
// Create with New, run with Run (or Start + Shutdown for finer
// control).
type Server struct {
	cfg Config
	mux *http.ServeMux

	snap  atomic.Pointer[snapshot]
	gen   atomic.Uint64
	pubMu sync.Mutex // serializes publish, keeping stored generations monotonic

	hits, misses atomic.Uint64

	started    atomic.Bool
	lifeMu     sync.Mutex // guards ln, hs, ingestStop (Start may run in another goroutine, e.g. under Run)
	ln         net.Listener
	hs         *http.Server
	ingestStop context.CancelFunc
	ingestDone chan struct{}
	serveDone  chan struct{}

	errMu      sync.Mutex
	ingestErr  error
	serveErr   error
	persistErr error

	// Recovered warm-start state (nil / empty without Config.Persist):
	// the segment-loaded index, the durable documents to seed the ingest
	// accumulator with, and their ID skip set.
	recIx   *mining.Index
	recDocs []mining.Document
	recIDs  map[string]bool
	recInfo recoveryInfo

	// handlerDelay pads every /v1 handler; test hook for exercising the
	// graceful drain with genuinely in-flight requests.
	handlerDelay time.Duration
}

// recoveryInfo summarizes what a warm start adopted from disk, for
// /statsz and the daemon's startup line.
type recoveryInfo struct {
	segmentDocs int
	walDocs     int
	walDropped  int64
	skipped     []string
}

// New returns an unstarted server. Without persistence the initial
// snapshot is generation zero over an empty index, so queries are
// answerable (with zero counts) before the first swap. With
// Config.Persist, the initial snapshot is the store's recovered state —
// the daemon serves its pre-crash corpus from the first request, before
// ingest has re-processed anything.
func New(cfg Config) (*Server, error) {
	if cfg.Source == nil {
		return nil, errors.New("server: Config.Source is required")
	}
	s := &Server{
		cfg:        cfg,
		ingestDone: make(chan struct{}),
		serveDone:  make(chan struct{}),
	}
	ix := mining.NewStreamIndex().Seal()
	if cfg.Persist != nil {
		rec := cfg.Persist.Recovered()
		s.recDocs = rec.Docs()
		s.recIDs = rec.IDs()
		s.recInfo = recoveryInfo{
			segmentDocs: rec.SegmentDocs,
			walDocs:     len(rec.WALDocs),
			walDropped:  rec.WALDropped,
			skipped:     rec.SkippedSegments,
		}
		if rec.Index != nil && len(rec.WALDocs) == 0 {
			// Clean warm start: the segment's index is already sealed,
			// Prepared, and ID-ordered — serve it as-is, no rebuild.
			s.recIx = rec.Index
			ix = rec.Index
		} else if len(s.recDocs) > 0 {
			// Segment + WAL tail (or WAL only): rebuild once so the
			// first snapshot is byte-identical to batch-indexing the
			// durable documents.
			si := mining.NewStreamIndex()
			si.AddBatch(s.recDocs)
			ix = si.Seal()
		}
	}
	s.snap.Store(&snapshot{
		gen:   0,
		ix:    ix,
		cache: newLRUCache(cfg.cacheSize()),
	})
	s.mux = s.buildMux()
	return s, nil
}

// RecoveryInfo reports what a warm start adopted from the persistence
// layer: documents loaded from the segment, documents replayed from the
// WAL tail, and torn-tail bytes dropped.
func (s *Server) RecoveryInfo() (segmentDocs, walDocs int, walDropped int64) {
	return s.recInfo.segmentDocs, s.recInfo.walDocs, s.recInfo.walDropped
}

// publish seals an index over docs and swaps it in as the next
// generation. Serialized so a slower earlier build can never overwrite
// a later one.
func (s *Server) publish(docs []mining.Document, sealed bool) {
	s.pubMu.Lock()
	defer s.pubMu.Unlock()
	// Rebuild through StreamIndex: AddBatch enforces ID uniqueness and
	// Seal rebuilds in ID order, making every snapshot byte-identical to
	// batch-indexing the same documents. Seal also runs mining's
	// Prepare step, so every published snapshot carries the sealed-index
	// query caches (category vocabularies, conjunction memo, Wilson
	// marginal cache) handlers then hit lock-free or read-mostly.
	si := mining.NewStreamIndex()
	si.AddBatch(docs)
	s.snap.Store(&snapshot{
		gen:    s.gen.Add(1),
		ix:     si.Seal(),
		sealed: sealed,
		cache:  newLRUCache(s.cfg.cacheSize()),
	})
}

// publishIndex swaps in an already-sealed index without a rebuild — the
// warm-restart fast path for a segment-loaded index that ingest found
// nothing to add to.
func (s *Server) publishIndex(ix *mining.Index, sealed bool) {
	s.pubMu.Lock()
	defer s.pubMu.Unlock()
	s.snap.Store(&snapshot{
		gen:    s.gen.Add(1),
		ix:     ix,
		sealed: sealed,
		cache:  newLRUCache(s.cfg.cacheSize()),
	})
}

// runIngest drives the document source, swapping in fresh snapshots on
// the configured cadences and a final one when the source is done —
// sealed if the source was genuinely exhausted, unsealed if the ingest
// context was cancelled mid-stream.
//
// With persistence configured, the accumulator starts from the
// recovered durable documents, every newly ingested document is
// WAL-appended before it counts as accepted, and a genuine seal writes
// the sealed index as a new segment, then resets the WAL. Persistence
// failures degrade, not kill: the daemon keeps serving from RAM and
// surfaces the error on /statsz.
func (s *Server) runIngest(ctx context.Context) error {
	var mu sync.Mutex
	docs := append([]mining.Document(nil), s.recDocs...)
	newDocs := 0
	copyDocs := func() []mining.Document {
		mu.Lock()
		defer mu.Unlock()
		return append([]mining.Document(nil), docs...)
	}
	already := func(id string) bool { return s.recIDs[id] }

	var tickWG sync.WaitGroup
	tickCtx, tickStop := context.WithCancel(ctx)
	defer tickStop()
	if s.cfg.SwapInterval > 0 {
		tickWG.Add(1)
		go func() {
			defer tickWG.Done()
			t := time.NewTicker(s.cfg.SwapInterval)
			defer t.Stop()
			for {
				select {
				case <-tickCtx.Done():
					return
				case <-t.C:
					s.publish(copyDocs(), false)
				}
			}
		}()
	}

	err := s.cfg.Source(ctx, already, func(d mining.Document) error {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if s.recIDs[d.ID] {
			// Durable from a previous run; the source should have
			// skipped it, but replays are harmless — drop, don't doubly
			// index.
			return nil
		}
		if s.cfg.Persist != nil {
			if werr := s.cfg.Persist.AppendWAL(d); werr != nil {
				s.setPersistErr(werr)
			}
		}
		mu.Lock()
		docs = append(docs, d)
		n := len(docs)
		newDocs++
		mu.Unlock()
		if s.cfg.SwapEvery > 0 && n%s.cfg.SwapEvery == 0 {
			s.publish(copyDocs(), false)
		}
		return nil
	})
	tickStop()
	tickWG.Wait()

	if err != nil && ctx.Err() != nil && errors.Is(err, ctx.Err()) {
		// Shutdown-initiated cancellation echoing back through the
		// source; publish what arrived and report a clean stop.
		err = nil
	}
	sealed := err == nil && ctx.Err() == nil
	if sealed && s.recIx != nil && newDocs == 0 {
		// Warm restart over a complete corpus: the segment-loaded index
		// already is the sealed index — republish it instead of paying
		// the O(corpus) rebuild, and leave the identical segment alone.
		s.publishIndex(s.recIx, true)
		return nil
	}
	s.publish(copyDocs(), sealed)
	if s.cfg.Persist != nil {
		if sealed {
			// The just-published snapshot is the sealed index; make it
			// durable, then drop the WAL it supersedes.
			if _, werr := s.cfg.Persist.WriteSegment(s.snap.Load().ix); werr != nil {
				s.setPersistErr(werr)
			} else if werr := s.cfg.Persist.ResetWAL(); werr != nil {
				s.setPersistErr(werr)
			}
		} else if werr := s.cfg.Persist.SyncWAL(); werr != nil {
			// Interrupted mid-stream: force the WAL tail down so the
			// next boot recovers everything accepted so far.
			s.setPersistErr(werr)
		}
	}
	return err
}

// setPersistErr records the first persistence failure (later ones keep
// the original root cause).
func (s *Server) setPersistErr(err error) {
	s.errMu.Lock()
	if s.persistErr == nil {
		s.persistErr = err
	}
	s.errMu.Unlock()
}

// PersistErr returns the first persistence-layer failure, if any.
func (s *Server) PersistErr() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.persistErr
}

// Start listens on Config.Addr and launches the ingest loop and the
// HTTP server. It returns once the listener is live; use Addr for the
// bound address. Pair with Shutdown.
func (s *Server) Start() error {
	if !s.started.CompareAndSwap(false, true) {
		return errors.New("server: Start called twice")
	}
	addr := s.cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", addr, err)
	}
	hs := &http.Server{Handler: s.mux}
	ictx, cancel := context.WithCancel(context.Background())
	s.lifeMu.Lock()
	s.ln = ln
	s.hs = hs
	s.ingestStop = cancel
	s.lifeMu.Unlock()
	go func() {
		defer close(s.ingestDone)
		if err := s.runIngest(ictx); err != nil {
			// An ingest failure degrades the daemon, it does not kill
			// it: the last good snapshot keeps serving, and /healthz
			// and /statsz surface the error.
			s.errMu.Lock()
			s.ingestErr = err
			s.errMu.Unlock()
		}
	}()
	go func() {
		defer close(s.serveDone)
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.errMu.Lock()
			s.serveErr = err
			s.errMu.Unlock()
		}
	}()
	return nil
}

// Addr returns the bound listen address, or "" before Start has bound
// the listener. Safe to poll from other goroutines.
func (s *Server) Addr() string {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Handler returns the HTTP API (also useful without Start, e.g. under
// httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// IngestDone is closed once the ingest loop has finished and the final
// snapshot is published.
func (s *Server) IngestDone() <-chan struct{} { return s.ingestDone }

// Generation returns the currently served snapshot generation.
func (s *Server) Generation() uint64 { return s.snap.Load().gen }

// SnapshotInfo reports the current generation, its document count, and
// whether it is the sealed (final) index.
func (s *Server) SnapshotInfo() (gen uint64, docs int, sealed bool) {
	sn := s.snap.Load()
	return sn.gen, sn.ix.Len(), sn.sealed
}

// CacheStats returns the cumulative result-cache hit/miss counters.
func (s *Server) CacheStats() (hits, misses uint64) {
	return s.hits.Load(), s.misses.Load()
}

// IngestErr returns the ingest loop's terminal error, if any.
func (s *Server) IngestErr() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.ingestErr
}

// Shutdown gracefully stops a Started server: the listener closes, the
// ingest pipeline is cancelled and drains cleanly (PR 2 semantics: every
// in-flight item delivered or accounted), and in-flight HTTP requests
// run to completion — no request is dropped mid-flight. ctx bounds the
// HTTP drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.lifeMu.Lock()
	hs, stopIngest := s.hs, s.ingestStop
	s.lifeMu.Unlock()
	if hs == nil {
		return errors.New("server: Shutdown before Start")
	}
	stopIngest()
	err := hs.Shutdown(ctx) // drains in-flight requests
	<-s.ingestDone
	<-s.serveDone
	if s.cfg.Persist != nil {
		// The ingest loop (the only writer) is done; sync and release
		// the WAL handle.
		err = errors.Join(err, s.cfg.Persist.Close())
	}
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return errors.Join(err, s.serveErr)
}

// Run starts the server and blocks until ctx is cancelled, then shuts
// down gracefully (bounded by Config.DrainTimeout). The usual daemon
// entry point: wire ctx to SIGINT/SIGTERM.
func (s *Server) Run(ctx context.Context) error {
	if err := s.Start(); err != nil {
		return err
	}
	<-ctx.Done()
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.drainTimeout())
	defer cancel()
	return s.Shutdown(dctx)
}
