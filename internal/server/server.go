// Package server is the query-serving tier of BIVoC: it turns the
// batch-and-stream mining layer into a continuously queryable daemon
// (cmd/bivocd), the §IV.D interactive concept index analysts hit for
// relative frequencies, 2-D associations, trends and drill-downs.
//
// Architecture — immutable segments behind hot-swappable snapshots:
//
//	ingest loop (internal/pipeline) ──▶ pending docs accumulate
//	        │  every SwapInterval / SwapEvery docs
//	        ▼
//	seal ONLY the pending batch  → new immutable segment   (O(new docs))
//	        │                       appended to the live segment list
//	        ▼
//	atomic.Pointer[snapshot].Store(SegmentSet over segments) ◀── generation++
//	                                        ▲
//	HTTP handlers: snap := ptr.Load() ──────┘  (one load per request)
//
// A background ingest loop drives the streaming pipeline and
// accumulates newly arrived documents in a pending buffer. On a
// configurable cadence it seals just that buffer into a new immutable
// segment (a sealed, Prepared *mining.Index) and publishes a snapshot
// whose view is a mining.SegmentSet fanning queries in across all live
// segments — counts, trends and drill-downs merge additively, and
// association tables re-derive Wilson intervals from merged integer
// marginals, so every response is byte-identical to a monolithic index
// over the same corpus. Publish cost is therefore O(new docs since the
// last swap), not O(corpus).
//
// A background size-tiered compactor bounds the segment count
// (Config.MaxSegments): when a publish pushes the list past the bound
// it merges the smallest segments and republishes the same generation
// with the same cache — compaction changes no served byte, so it is
// invisible to clients.
//
// Hot query results are memoized in a per-snapshot LRU cache of final
// response bodies: cached and uncached replies are byte-identical, and
// a snapshot swap invalidates the whole cache structurally (the new
// snapshot carries a new, empty cache).
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"bivoc/internal/mining"
	"bivoc/internal/pipeline"
	"bivoc/internal/store"
)

// DocSource feeds the server's ingest loop: it calls emit once per
// mining document and returns when the stream is exhausted (the server
// then publishes the final, sealed snapshot) or when ctx is cancelled.
// core.NewServeServer adapts the call-analysis pipeline into one.
//
// already reports whether a document ID is durable from a previous run
// (recovered from the persistence layer's segments + WAL). Sources
// should skip such items before paying any pipeline work — that skip is
// what turns a restart over a persisted corpus from an O(corpus)
// re-ingest into a warm, sub-second resume. Sources that predate
// persistence may ignore it; the ingest loop drops already-durable
// documents it receives anyway.
type DocSource func(ctx context.Context, already func(id string) bool, emit func(mining.Document) error) error

// Config assembles a Server.
type Config struct {
	// Addr is the TCP listen address ("127.0.0.1:8080"; ":0" picks a
	// free port, readable from Server.Addr after Start).
	Addr string
	// Source feeds documents into the index. Required.
	Source DocSource
	// PipelineStats, when set, is surfaced on /statsz — wire it to the
	// ingest pipeline's Stats method.
	PipelineStats func() []pipeline.StageStats
	// SwapInterval publishes a fresh snapshot on a time cadence while
	// ingest is running (0 disables the ticker). A tick with no pending
	// documents publishes nothing.
	SwapInterval time.Duration
	// SwapEvery publishes a fresh snapshot every N newly ingested
	// documents (0 disables; deterministic, which tests rely on).
	// Documents recovered from persistence do not count toward the
	// cadence — after a warm restart the first swap still lands exactly
	// N ingested documents in. Both cadences may be active at once.
	SwapEvery int
	// MaxSegments bounds the live segment count: when a publish pushes
	// the list past the bound, a background size-tiered compaction
	// merges the smallest segments back under it. 0 means the default
	// (8); negative disables compaction (unbounded segments).
	MaxSegments int
	// CacheSize bounds the per-snapshot LRU result cache (entries).
	// Default 256; negative disables caching.
	CacheSize int
	// Confidence is the association-interval confidence used when a
	// query does not pass its own. Default 0.95.
	Confidence float64
	// AssociateWorkers fans the /v1/associate cell grid across this many
	// workers per request (0 = mining package default, which resolves to
	// GOMAXPROCS). Tables are byte-identical at any worker count.
	AssociateWorkers int
	// DrainTimeout bounds the graceful drain of in-flight requests
	// during Run's shutdown. Default 5s.
	DrainTimeout time.Duration
	// Persist, when set, makes the daemon durable: the store's recovered
	// state (live segments + WAL tail) seeds the first snapshot and the
	// ingest skip set, every ingested document is WAL-appended, every
	// published segment is written to the store's lineage, and
	// compactions replace their inputs on disk. Open it with store.Open;
	// the server takes ownership (Shutdown closes it).
	Persist *store.Store
	// MapSegments, when set alongside Persist, serves compacted segments
	// from mmap-backed postings instead of re-heaping the merged index:
	// after a compaction lands on disk the server swaps the in-memory
	// merge result for a mapped view of the very bytes it just wrote.
	// Mapping is an optimization, never a correctness dependency — if the
	// remap fails the heap index keeps serving. Recovery-time mapping is
	// governed by the store's own Options.MapSegments.
	MapSegments bool
	// ReadHeaderTimeout bounds how long a connection may take to deliver
	// its request headers (default 5s; negative disables). Without it a
	// slowloris client trickling header bytes pins a connection — and its
	// goroutine — forever.
	ReadHeaderTimeout time.Duration
	// ReadTimeout bounds reading an entire request including the body
	// (default 60s; negative disables).
	ReadTimeout time.Duration
	// MaxHeaderBytes bounds request header size (default 1 MiB; negative
	// falls back to net/http's own default).
	MaxHeaderBytes int
}

func (c Config) cacheSize() int {
	if c.CacheSize == 0 {
		return 256
	}
	return c.CacheSize
}

func (c Config) confidence() float64 {
	if c.Confidence <= 0 || c.Confidence >= 1 {
		return 0.95
	}
	return c.Confidence
}

func (c Config) drainTimeout() time.Duration {
	if c.DrainTimeout <= 0 {
		return 5 * time.Second
	}
	return c.DrainTimeout
}

func (c Config) readHeaderTimeout() time.Duration {
	if c.ReadHeaderTimeout == 0 {
		return 5 * time.Second
	}
	if c.ReadHeaderTimeout < 0 {
		return 0
	}
	return c.ReadHeaderTimeout
}

func (c Config) readTimeout() time.Duration {
	if c.ReadTimeout == 0 {
		return 60 * time.Second
	}
	if c.ReadTimeout < 0 {
		return 0
	}
	return c.ReadTimeout
}

func (c Config) maxHeaderBytes() int {
	if c.MaxHeaderBytes == 0 {
		return 1 << 20
	}
	if c.MaxHeaderBytes < 0 {
		return 0
	}
	return c.MaxHeaderBytes
}

// HardenHTTPServer applies the shared serving-tier hardening defaults to
// hs: header/read timeouts so a slowloris client cannot pin connections,
// and a header size bound. The federation coordinator hardens its own
// http.Server with the same resolution rules.
func HardenHTTPServer(hs *http.Server, readHeaderTimeout, readTimeout time.Duration, maxHeaderBytes int) {
	hs.ReadHeaderTimeout = readHeaderTimeout
	hs.ReadTimeout = readTimeout
	hs.MaxHeaderBytes = maxHeaderBytes
}

// maxSegments resolves Config.MaxSegments: 0 picks the default bound,
// negative disables compaction (returned as 0 = unbounded).
func (c Config) maxSegments() int {
	if c.MaxSegments == 0 {
		return 8
	}
	if c.MaxSegments < 0 {
		return 0
	}
	return c.MaxSegments
}

// snapshot is one published generation. All fields are immutable after
// publication except the cache, which is internally synchronized; the
// view fans in across sealed segments that are never mutated, so
// handlers read it without locks.
type snapshot struct {
	gen    uint64
	view   mining.Querier
	sealed bool // true once the source is exhausted: the corpus is final
	cache  *lruCache
}

// segment is one live immutable segment: a sealed, Prepared index plus
// the on-disk generation backing it (0 while it lives only in RAM —
// either persistence is off, or the write failed and degraded mode is
// on).
type segment struct {
	ix      *mining.Index
	diskGen uint64
}

// Server owns the segment list, the snapshot pointer, the ingest loop
// and the HTTP API. Create with New, run with Run (or Start + Shutdown
// for finer control).
type Server struct {
	cfg Config
	mux http.Handler

	snap  atomic.Pointer[snapshot]
	gen   atomic.Uint64
	pubMu sync.Mutex // serializes publish + compaction; guards segs

	// segs is the live segment list, append-ordered; only publish (under
	// pubMu) appends and only the single compactor goroutine (under
	// pubMu) splices.
	segs []segment

	// pending is the not-yet-published ingest buffer; newDocs counts
	// documents ingested this run (recovered documents excluded), which
	// keys the SwapEvery cadence.
	pendMu  sync.Mutex
	pending []mining.Document
	newDocs int

	compacting  atomic.Bool // single-flight latch for the compactor
	compactWG   sync.WaitGroup
	compactions atomic.Uint64

	hits, misses atomic.Uint64
	slo          *SLORecorder

	started    atomic.Bool
	lifeMu     sync.Mutex // guards ln, hs, ingestStop (Start may run in another goroutine, e.g. under Run)
	ln         net.Listener
	hs         *http.Server
	ingestStop context.CancelFunc
	ingestDone chan struct{}
	serveDone  chan struct{}

	errMu      sync.Mutex
	ingestErr  error
	serveErr   error
	persistErr error

	// Recovered warm-start state (nil / empty without Config.Persist):
	// the durable document ID skip set and the recovery summary.
	recIDs  map[string]bool
	recInfo recoveryInfo

	// handlerDelay pads every /v1 handler; test hook for exercising the
	// graceful drain with genuinely in-flight requests.
	handlerDelay time.Duration
}

// recoveryInfo summarizes what a warm start adopted from disk, for
// /statsz and the daemon's startup line.
type recoveryInfo struct {
	segmentDocs int
	walDocs     int
	walDropped  int64
	skipped     []string
}

// New returns an unstarted server. Without persistence the initial
// snapshot is generation zero over an empty segment set, so queries are
// answerable (with zero counts) before the first swap. With
// Config.Persist, the recovered segments seed the live list and the WAL
// tail seeds the pending buffer, and the initial snapshot fans in over
// both — the daemon serves its pre-crash corpus from the first request,
// before ingest has re-processed anything.
func New(cfg Config) (*Server, error) {
	if cfg.Source == nil {
		return nil, errors.New("server: Config.Source is required")
	}
	s := &Server{
		cfg:        cfg,
		slo:        NewSLORecorder(),
		ingestDone: make(chan struct{}),
		serveDone:  make(chan struct{}),
	}
	if cfg.Persist != nil {
		rec := cfg.Persist.Recovered()
		s.recIDs = rec.IDs()
		s.recInfo = recoveryInfo{
			segmentDocs: rec.SegmentDocs,
			walDocs:     len(rec.WALDocs),
			walDropped:  rec.WALDropped,
			skipped:     rec.SkippedSegments,
		}
		for _, seg := range rec.Segments {
			s.segs = append(s.segs, segment{ix: seg.Index, diskGen: seg.Gen})
		}
		s.pending = append(s.pending, rec.WALDocs...)
	}
	// The gen-0 view covers the WAL tail too, through a temporary
	// segment that is NOT added to the live list — the tail stays in
	// pending and becomes a real (and durable) segment at the first
	// publish.
	view := make([]*mining.Index, 0, len(s.segs)+1)
	for _, seg := range s.segs {
		view = append(view, seg.ix)
	}
	if len(s.pending) > 0 {
		si := mining.NewStreamIndex()
		si.AddBatch(s.pending)
		view = append(view, si.Seal())
	}
	s.snap.Store(&snapshot{
		gen:   0,
		view:  mining.NewSegmentSet(view...),
		cache: newLRUCache(cfg.cacheSize()),
	})
	s.mux = s.buildMux()
	return s, nil
}

// RecoveryInfo reports what a warm start adopted from the persistence
// layer: documents loaded from the live segments, documents replayed
// from the WAL tail, and torn-tail bytes dropped.
func (s *Server) RecoveryInfo() (segmentDocs, walDocs int, walDropped int64) {
	return s.recInfo.segmentDocs, s.recInfo.walDocs, s.recInfo.walDropped
}

// viewLocked builds the fan-in view over the current live segments.
// Caller holds pubMu.
func (s *Server) viewLocked() *mining.SegmentSet {
	ixs := make([]*mining.Index, len(s.segs))
	for i, seg := range s.segs {
		ixs[i] = seg.ix
	}
	return mining.NewSegmentSet(ixs...)
}

// publishPending drains the pending buffer, seals it into a new
// immutable segment — O(new docs), never O(corpus) — and swaps in the
// next generation fanning in across all live segments. An empty drain
// publishes nothing unless this is the final (sealed) publish, which
// always advances the generation so clients can observe the seal.
//
// persist controls whether the new segment is appended to the store's
// on-disk lineage (cadence and seal publishes persist; the final flush
// of a cancelled ingest does not — its documents are already safe in
// the WAL, and the next boot re-adopts them from there).
//
// Serialized under pubMu, and the drain happens inside the lock: a
// slower earlier publish can never overwrite a later one, and batches
// enter the segment list in ingest order.
func (s *Server) publishPending(sealed, persist bool) {
	s.pubMu.Lock()
	defer s.pubMu.Unlock()
	s.pendMu.Lock()
	batch := s.pending
	s.pending = nil
	s.pendMu.Unlock()
	if len(batch) == 0 && !sealed {
		return
	}
	if len(batch) > 0 {
		// Seal through StreamIndex: AddBatch enforces ID uniqueness and
		// Seal rebuilds in ID order and runs mining's Prepare step, so
		// every segment carries the sealed-index query caches (category
		// vocabularies, conjunction memo, Wilson marginal cache).
		si := mining.NewStreamIndex()
		si.AddBatch(batch)
		seg := segment{ix: si.Seal()}
		if persist && s.cfg.Persist != nil {
			if st, err := s.cfg.Persist.AppendSegment(seg.ix); err != nil {
				s.setPersistErr(err)
			} else {
				seg.diskGen = st.SegmentGen
			}
		}
		s.segs = append(s.segs, seg)
	}
	s.snap.Store(&snapshot{
		gen:    s.gen.Add(1),
		view:   s.viewLocked(),
		sealed: sealed,
		cache:  newLRUCache(s.cfg.cacheSize()),
	})
	s.maybeCompactLocked()
}

// maybeCompactLocked launches the compactor when the live segment list
// has outgrown the bound and no compactor is already running. Caller
// holds pubMu.
func (s *Server) maybeCompactLocked() {
	max := s.cfg.maxSegments()
	if max <= 0 || len(s.segs) <= max {
		return
	}
	if !s.compacting.CompareAndSwap(false, true) {
		return
	}
	s.compactWG.Add(1)
	go s.compactLoop()
}

// compactLoop merges segments size-tiered until the list is back under
// the bound: each round picks the smallest segments, merges them
// outside the lock (the only O(merged docs) work, off the publish
// path), then splices the result in and republishes the SAME generation
// with the SAME cache — the document set is unchanged and the fan-in is
// byte-identical, so compaction is invisible to every client.
func (s *Server) compactLoop() {
	defer s.compactWG.Done()
	defer s.compacting.Store(false)
	for {
		s.pubMu.Lock()
		max := s.cfg.maxSegments()
		if max <= 0 || len(s.segs) <= max {
			s.pubMu.Unlock()
			return
		}
		// Pick the k smallest segments so one round lands exactly at the
		// bound; identify them by index into the append-ordered list
		// (publishes only append, and this loop is the only splicer).
		k := len(s.segs) - max + 1
		victims := smallestSegments(s.segs, k)
		merge := make([]*mining.Index, len(victims))
		for i, vi := range victims {
			merge[i] = s.segs[vi].ix
		}
		s.pubMu.Unlock()

		merged := mining.MergeSegments(merge...)

		s.pubMu.Lock()
		newSeg := segment{ix: merged}
		if s.cfg.Persist != nil && s.PersistErr() == nil {
			if gens, ok := durableGens(s.segs, victims); ok {
				if st, err := s.cfg.Persist.ReplaceSegments(gens, merged); err != nil {
					s.setPersistErr(err)
				} else {
					newSeg.diskGen = st.SegmentGen
					if s.cfg.MapSegments {
						// Serve the compacted segment from the bytes just
						// written. On failure keep the heap merge — the map
						// is a memory optimization, not a dependency.
						if mapped, merr := s.cfg.Persist.MapSegment(st.SegmentGen); merr == nil {
							newSeg.ix = mapped
						}
					}
				}
			}
		}
		victimSet := make(map[int]bool, len(victims))
		for _, vi := range victims {
			victimSet[vi] = true
		}
		kept := s.segs[:0]
		for i, seg := range s.segs {
			if !victimSet[i] {
				kept = append(kept, seg)
			}
		}
		s.segs = append(kept, newSeg)
		old := s.snap.Load()
		s.snap.Store(&snapshot{
			gen:    old.gen,
			view:   s.viewLocked(),
			sealed: old.sealed,
			cache:  old.cache,
		})
		s.compactions.Add(1)
		s.pubMu.Unlock()
	}
}

// smallestSegments returns the indexes of the k smallest segments by
// document count (ties to the older segment), ascending by index.
func smallestSegments(segs []segment, k int) []int {
	idx := make([]int, len(segs))
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		min := i
		for j := i + 1; j < len(idx); j++ {
			a, b := segs[idx[j]], segs[idx[min]]
			if a.ix.Len() < b.ix.Len() || (a.ix.Len() == b.ix.Len() && idx[j] < idx[min]) {
				min = j
			}
		}
		idx[i], idx[min] = idx[min], idx[i]
	}
	out := idx[:k]
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// durableGens collects the on-disk generations of the victim segments;
// ok is false if any victim is RAM-only (then the disk lineage is left
// alone — it still covers those documents via older segments + WAL).
func durableGens(segs []segment, victims []int) ([]uint64, bool) {
	gens := make([]uint64, 0, len(victims))
	for _, vi := range victims {
		if segs[vi].diskGen == 0 {
			return nil, false
		}
		gens = append(gens, segs[vi].diskGen)
	}
	return gens, true
}

// SegmentInfo reports the live segment document counts (append order)
// and the number of compactions run — the observability hook /statsz
// and tests use.
func (s *Server) SegmentInfo() (segDocs []int, compactions uint64) {
	s.pubMu.Lock()
	defer s.pubMu.Unlock()
	segDocs = make([]int, len(s.segs))
	for i, seg := range s.segs {
		segDocs[i] = seg.ix.Len()
	}
	return segDocs, s.compactions.Load()
}

// allSegmentsDurable reports whether every live segment is backed by an
// on-disk generation.
func (s *Server) allSegmentsDurable() bool {
	s.pubMu.Lock()
	defer s.pubMu.Unlock()
	for _, seg := range s.segs {
		if seg.diskGen == 0 {
			return false
		}
	}
	return true
}

// runIngest drives the document source, sealing pending documents into
// fresh segments on the configured cadences and a final time when the
// source is done — sealed if the source was genuinely exhausted,
// unsealed if the ingest context was cancelled mid-stream.
//
// With persistence configured, the pending buffer starts from the
// recovered WAL tail, every newly ingested document is WAL-appended
// before it counts as accepted, every cadence publish appends a durable
// segment, and a genuine seal resets the WAL once every live segment is
// durable. Persistence failures degrade, not kill: the daemon keeps
// serving from RAM and surfaces the error on /healthz and /statsz.
func (s *Server) runIngest(ctx context.Context) error {
	already := func(id string) bool { return s.recIDs[id] }

	var tickWG sync.WaitGroup
	tickCtx, tickStop := context.WithCancel(ctx)
	defer tickStop()
	if s.cfg.SwapInterval > 0 {
		tickWG.Add(1)
		go func() {
			defer tickWG.Done()
			t := time.NewTicker(s.cfg.SwapInterval)
			defer t.Stop()
			for {
				select {
				case <-tickCtx.Done():
					return
				case <-t.C:
					s.publishPending(false, true)
				}
			}
		}()
	}

	err := s.cfg.Source(ctx, already, func(d mining.Document) error {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if s.recIDs[d.ID] {
			// Durable from a previous run; the source should have
			// skipped it, but replays are harmless — drop, don't doubly
			// index.
			return nil
		}
		if s.cfg.Persist != nil {
			if werr := s.cfg.Persist.AppendWAL(d); werr != nil {
				s.setPersistErr(werr)
			}
		}
		s.pendMu.Lock()
		s.pending = append(s.pending, d)
		s.newDocs++
		n := s.newDocs
		s.pendMu.Unlock()
		// Cadence keys on documents ingested THIS run: recovered durable
		// documents must not shift the swap offsets after a warm restart.
		if s.cfg.SwapEvery > 0 && n%s.cfg.SwapEvery == 0 {
			s.publishPending(false, true)
		}
		return nil
	})
	tickStop()
	tickWG.Wait()

	if err != nil && ctx.Err() != nil && errors.Is(err, ctx.Err()) {
		// Shutdown-initiated cancellation echoing back through the
		// source; publish what arrived and report a clean stop.
		err = nil
	}
	sealed := err == nil && ctx.Err() == nil
	// A genuine seal persists its last segment and always publishes
	// (even with nothing pending) so the sealed flag lands; a cancelled
	// ingest flushes pending to RAM only — the WAL already covers it.
	s.publishPending(sealed, sealed)
	if s.cfg.Persist != nil {
		s.pendMu.Lock()
		ingested := s.newDocs
		s.pendMu.Unlock()
		switch {
		case !sealed:
			// Interrupted mid-stream: force the WAL tail down so the
			// next boot recovers everything accepted so far.
			if werr := s.cfg.Persist.SyncWAL(); werr != nil {
				s.setPersistErr(werr)
			}
		case ingested == 0 && s.recInfo.walDocs == 0:
			// Pure warm restart: nothing new this run, the disk lineage
			// already is the corpus — leave it untouched.
		case s.allSegmentsDurable() && s.PersistErr() == nil:
			// Every document is in a durable segment; the WAL it
			// superseded can go.
			if werr := s.cfg.Persist.ResetWAL(); werr != nil {
				s.setPersistErr(werr)
			}
		default:
			// Degraded: some segment lives only in RAM. Keep the WAL —
			// it is the only durable copy of those documents.
			if werr := s.cfg.Persist.SyncWAL(); werr != nil {
				s.setPersistErr(werr)
			}
		}
	}
	return err
}

// setPersistErr records the first persistence failure (later ones keep
// the original root cause).
func (s *Server) setPersistErr(err error) {
	s.errMu.Lock()
	if s.persistErr == nil {
		s.persistErr = err
	}
	s.errMu.Unlock()
}

// PersistErr returns the first persistence-layer failure, if any.
func (s *Server) PersistErr() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.persistErr
}

// Start listens on Config.Addr and launches the ingest loop and the
// HTTP server. It returns once the listener is live; use Addr for the
// bound address. Pair with Shutdown.
func (s *Server) Start() error {
	if !s.started.CompareAndSwap(false, true) {
		return errors.New("server: Start called twice")
	}
	addr := s.cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", addr, err)
	}
	hs := &http.Server{Handler: s.mux}
	HardenHTTPServer(hs, s.cfg.readHeaderTimeout(), s.cfg.readTimeout(), s.cfg.maxHeaderBytes())
	ictx, cancel := context.WithCancel(context.Background())
	s.lifeMu.Lock()
	s.ln = ln
	s.hs = hs
	s.ingestStop = cancel
	s.lifeMu.Unlock()
	go func() {
		defer close(s.ingestDone)
		if err := s.runIngest(ictx); err != nil {
			// An ingest failure degrades the daemon, it does not kill
			// it: the last good snapshot keeps serving, and /healthz
			// and /statsz surface the error.
			s.errMu.Lock()
			s.ingestErr = err
			s.errMu.Unlock()
		}
	}()
	go func() {
		defer close(s.serveDone)
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.errMu.Lock()
			s.serveErr = err
			s.errMu.Unlock()
		}
	}()
	return nil
}

// Addr returns the bound listen address, or "" before Start has bound
// the listener. Safe to poll from other goroutines.
func (s *Server) Addr() string {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Handler returns the HTTP API (also useful without Start, e.g. under
// httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// IngestDone is closed once the ingest loop has finished and the final
// snapshot is published.
func (s *Server) IngestDone() <-chan struct{} { return s.ingestDone }

// Generation returns the currently served snapshot generation.
func (s *Server) Generation() uint64 { return s.snap.Load().gen }

// SnapshotInfo reports the current generation, its document count, and
// whether it is the sealed (final) corpus.
func (s *Server) SnapshotInfo() (gen uint64, docs int, sealed bool) {
	sn := s.snap.Load()
	return sn.gen, sn.view.Len(), sn.sealed
}

// CacheStats returns the cumulative result-cache hit/miss counters.
func (s *Server) CacheStats() (hits, misses uint64) {
	return s.hits.Load(), s.misses.Load()
}

// IngestErr returns the ingest loop's terminal error, if any.
func (s *Server) IngestErr() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.ingestErr
}

// Shutdown gracefully stops a Started server: the listener closes, the
// ingest pipeline is cancelled and drains cleanly (PR 2 semantics: every
// in-flight item delivered or accounted), in-flight HTTP requests run
// to completion — no request is dropped mid-flight — and any running
// compaction finishes before the store closes. ctx bounds the HTTP
// drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.lifeMu.Lock()
	hs, stopIngest := s.hs, s.ingestStop
	s.lifeMu.Unlock()
	if hs == nil {
		return errors.New("server: Shutdown before Start")
	}
	stopIngest()
	err := hs.Shutdown(ctx) // drains in-flight requests
	<-s.ingestDone
	<-s.serveDone
	// Ingest is done, so no new compactor can launch; wait out the one
	// that may still be merging before releasing the store it writes to.
	s.compactWG.Wait()
	if s.cfg.Persist != nil {
		// The ingest loop and compactor (the only writers) are done;
		// sync and release the WAL handle.
		err = errors.Join(err, s.cfg.Persist.Close())
	}
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return errors.Join(err, s.serveErr)
}

// Run starts the server and blocks until ctx is cancelled, then shuts
// down gracefully (bounded by Config.DrainTimeout). The usual daemon
// entry point: wire ctx to SIGINT/SIGTERM.
func (s *Server) Run(ctx context.Context) error {
	if err := s.Start(); err != nil {
		return err
	}
	<-ctx.Done()
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.drainTimeout())
	defer cancel()
	return s.Shutdown(dctx)
}
