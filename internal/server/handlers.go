package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/url"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"bivoc/internal/mining"
	"bivoc/internal/pipeline"
)

// Response types — the wire schema of the /v1 API. Every response
// carries the generation and sealed flag of the single snapshot it was
// computed from, so clients can detect swaps and correlate answers.
// Dimensions are echoed in canonical form (mining.(Dim).CanonicalLabel),
// which is also the form cache keys use.

// CountResponse answers /v1/count.
type CountResponse struct {
	Generation uint64   `json:"generation"`
	Sealed     bool     `json:"sealed"`
	Total      int      `json:"total"`
	Dims       []string `json:"dims"`
	Counts     []int    `json:"counts"`
}

// AssocCellJSON is one cell of an association table.
type AssocCellJSON struct {
	Ncell      int     `json:"ncell"`
	Nver       int     `json:"nver"`
	Nhor       int     `json:"nhor"`
	N          int     `json:"n"`
	PointIndex float64 `json:"point_index"`
	LowerIndex float64 `json:"lower_index"`
	RowShare   float64 `json:"row_share"`
}

// AssociateResponse answers /v1/associate.
type AssociateResponse struct {
	Generation uint64            `json:"generation"`
	Sealed     bool              `json:"sealed"`
	Confidence float64           `json:"confidence"`
	Rows       []string          `json:"rows"`
	Cols       []string          `json:"cols"`
	Cells      [][]AssocCellJSON `json:"cells"`
}

// RelevanceJSON is one row of a relative-frequency report.
type RelevanceJSON struct {
	Concept    string  `json:"concept"`
	InSubset   int     `json:"in_subset"`
	SubsetSize int     `json:"subset_size"`
	InAll      int     `json:"in_all"`
	N          int     `json:"n"`
	Ratio      float64 `json:"ratio"`
}

// RelFreqResponse answers /v1/relfreq.
type RelFreqResponse struct {
	Generation uint64          `json:"generation"`
	Sealed     bool            `json:"sealed"`
	Category   string          `json:"category"`
	Featured   string          `json:"featured"`
	Rows       []RelevanceJSON `json:"rows"`
}

// ConceptJSON is one extracted concept of a drilled-down document.
type ConceptJSON struct {
	Category  string `json:"category"`
	Canonical string `json:"canonical"`
}

// DocumentJSON is one indexed document in a drill-down response.
type DocumentJSON struct {
	ID       string            `json:"id"`
	Fields   map[string]string `json:"fields"`
	Time     int               `json:"time"`
	Concepts []ConceptJSON     `json:"concepts"`
}

// DrillDownResponse answers /v1/drilldown.
type DrillDownResponse struct {
	Generation uint64         `json:"generation"`
	Sealed     bool           `json:"sealed"`
	Row        string         `json:"row"`
	Col        string         `json:"col"`
	Count      int            `json:"count"`
	Truncated  bool           `json:"truncated"`
	Docs       []DocumentJSON `json:"docs"`
}

// TrendPointJSON is one time bucket of a trend.
type TrendPointJSON struct {
	Time  int `json:"time"`
	Count int `json:"count"`
}

// TrendResponse answers /v1/trend.
type TrendResponse struct {
	Generation uint64           `json:"generation"`
	Sealed     bool             `json:"sealed"`
	Dim        string           `json:"dim"`
	Points     []TrendPointJSON `json:"points"`
	Slope      float64          `json:"slope"`
}

// ConceptsResponse answers /v1/concepts: the vocabulary of a concept
// category (by document frequency) or of a structured field (sorted).
type ConceptsResponse struct {
	Generation uint64   `json:"generation"`
	Sealed     bool     `json:"sealed"`
	Category   string   `json:"category,omitempty"`
	Field      string   `json:"field,omitempty"`
	Values     []string `json:"values"`
}

// HealthResponse answers /healthz.
type HealthResponse struct {
	Status       string `json:"status"`
	Generation   uint64 `json:"generation"`
	Sealed       bool   `json:"sealed"`
	Docs         int    `json:"docs"`
	IngestError  string `json:"ingest_error,omitempty"`
	PersistError string `json:"persist_error,omitempty"`
}

// CacheStatsJSON is the cache section of /statsz.
type CacheStatsJSON struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Size     int    `json:"size"`
	Capacity int    `json:"capacity"`
}

// StoreStatsJSON is the persistence section of /statsz (present only
// when the daemon runs with a data directory): the durable segment, the
// ingest WAL, and what the last warm start recovered.
type StoreStatsJSON struct {
	SegmentGeneration uint64 `json:"segment_generation"`
	SegmentPath       string `json:"segment_path,omitempty"`
	SegmentBytes      int64  `json:"segment_bytes"`
	SegmentDocs       int    `json:"segment_docs"`
	WALRecords        int    `json:"wal_records"`
	WALBytes          int64  `json:"wal_bytes"`
	// LastSealUnixMS is the wall time the current segment was written by
	// this process (0 for segments inherited from an earlier run).
	LastSealUnixMS int64 `json:"last_seal_unix_ms,omitempty"`
	// Recovered* describe the warm start: documents adopted from the
	// segment, documents replayed from the WAL tail, torn-tail bytes
	// dropped.
	RecoveredSegmentDocs int    `json:"recovered_segment_docs"`
	RecoveredWALDocs     int    `json:"recovered_wal_docs"`
	RecoveredWALDropped  int64  `json:"recovered_wal_dropped_bytes,omitempty"`
	PersistError         string `json:"persist_error,omitempty"`
	// Mapped-segment serving (populated only when the store was opened
	// with MapSegments): live segments served straight from their file
	// mappings, the bytes those mappings cover, the decoded-postings
	// cache, and how long the last Open spent bringing the lineage up —
	// the number that should stay O(#lists) as the corpus grows.
	MappedSegments int                `json:"mapped_segments,omitempty"`
	MappedBytes    int64              `json:"mapped_bytes,omitempty"`
	PostingsCache  *PostingsCacheJSON `json:"postings_cache,omitempty"`
	OpenMicros     int64              `json:"open_us,omitempty"`
}

// PostingsCacheJSON is the decoded-postings LRU subsection of the store
// section: byte occupancy against its budget plus hit/miss counters.
type PostingsCacheJSON struct {
	Bytes   int64  `json:"bytes"`
	Budget  int64  `json:"budget"`
	Entries int    `json:"entries"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
}

// MemoryStatsJSON is the memory section of /statsz: the Go heap the
// daemon is actually paying for, next to the mapped-segment bytes the
// kernel can reclaim under pressure — the two numbers whose ratio is
// the point of -mmap serving. GoMemLimitBytes echoes GOMEMLIMIT when
// one is set.
type MemoryStatsJSON struct {
	HeapAllocBytes  uint64 `json:"heap_alloc_bytes"`
	HeapInuseBytes  uint64 `json:"heap_inuse_bytes"`
	NumGC           uint32 `json:"num_gc"`
	GoMemLimitBytes int64  `json:"go_mem_limit_bytes,omitempty"`
	MappedBytes     int64  `json:"mapped_bytes,omitempty"`
}

// SegmentsJSON is the segment section of /statsz: the live immutable
// segments the current snapshot fans queries in across, and how the
// background compactor has been keeping their number bounded.
type SegmentsJSON struct {
	Count       int    `json:"count"`
	Docs        []int  `json:"docs"`
	MaxSegments int    `json:"max_segments"`
	Compactions uint64 `json:"compactions"`
}

// StatszResponse answers /statsz: snapshot generation, segment layout,
// cache counters, the ingest pipeline's per-stage stats (schema pinned
// by pipeline.StageStats.MarshalJSON), and — when persistence is on —
// the store section.
type StatszResponse struct {
	Generation  uint64                `json:"generation"`
	Sealed      bool                  `json:"sealed"`
	Docs        int                   `json:"docs"`
	Segments    SegmentsJSON          `json:"segments"`
	Cache       CacheStatsJSON        `json:"cache"`
	Serving     ServingJSON           `json:"serving"`
	Memory      MemoryStatsJSON       `json:"memory"`
	Pipeline    []pipeline.StageStats `json:"pipeline"`
	Store       *StoreStatsJSON       `json:"store,omitempty"`
	IngestError string                `json:"ingest_error,omitempty"`
}

// ErrorResponse is the body of every non-200 reply: a message plus the
// HTTP status echoed in the body, so a federation coordinator can relay
// a shard's error verbatim.
type ErrorResponse struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// GenerationHeader is the response header carrying the serving snapshot
// generation on every response: a single integer on a shard/single-node
// daemon, a comma-joined per-shard vector on the federation coordinator.
const GenerationHeader = "X-Bivoc-Generation"

// buildMux wires the API routes, wrapped so every response — including
// 404s and parse errors — carries GenerationHeader. Handlers that load
// a snapshot overwrite the header with that snapshot's generation, so
// header and body always agree. Every route runs through the SLO
// recorder, which feeds the per-endpoint serving section of /statsz.
func (s *Server) buildMux() http.Handler {
	mux := http.NewServeMux()
	route := func(method, path string, h http.HandlerFunc) {
		mux.HandleFunc(method+" "+path, s.slo.Wrap(path, h))
	}
	route("GET", "/v1/count", s.handleCount)
	route("GET", "/v1/associate", s.handleAssociate)
	route("GET", "/v1/relfreq", s.handleRelFreq)
	route("GET", "/v1/drilldown", s.handleDrillDown)
	route("GET", "/v1/trend", s.handleTrend)
	route("GET", "/v1/concepts", s.handleConcepts)
	route("GET", "/v1/marginals/concepts", s.handleConceptDF)
	route("GET", "/v1/marginals/relfreq", s.handleRelFreqMarginals)
	route("GET", "/v1/marginals/assoc", s.handleAssocMarginals)
	route("POST", "/v1/batch", s.handleBatch)
	route("GET", "/healthz", s.handleHealthz)
	route("GET", "/statsz", s.handleStatsz)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(GenerationHeader, strconv.FormatUint(s.Generation(), 10))
		mux.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	body, _ := json.Marshal(ErrorResponse{Error: err.Error(), Status: status})
	writeJSON(w, status, append(body, '\n'))
}

// badQueryError marks a compute failure as the caller's fault (a
// malformed or unanswerable query), mapping it to 400; unmarked errors
// are internal and map to 500.
type badQueryError struct{ err error }

func (e badQueryError) Error() string { return e.err.Error() }
func (e badQueryError) Unwrap() error { return e.err }

// badQuery wraps err so respond answers it with 400 Bad Request.
func badQuery(err error) error { return badQueryError{err: err} }

// respond is the shared query path: load the snapshot pointer exactly
// once, consult that snapshot's cache under the canonical key, and on a
// miss compute, marshal, and memoize the full response body. Because
// both the index and the cache are reached through the single loaded
// pointer, the response is self-consistent with exactly one generation
// and a hit can never serve bytes from another generation.
//
// Counter contract: every request through here is exactly one hit or
// one miss — a cache-get failure counts as a miss even when the compute
// then fails, so hits+misses reconciles with requests served. Compute
// failures are internal (500) unless marked with badQuery (400).
//
// The body is marshaled once through the pooled scratch buffer and
// cached as a CachedBody, so a hit re-serves the same bytes — and, for
// gzip-accepting clients, the same once-compressed encoding.
func (s *Server) respond(w http.ResponseWriter, r *http.Request, key string, compute func(sn *snapshot) (any, error)) {
	if s.handlerDelay > 0 {
		time.Sleep(s.handlerDelay)
	}
	sn := s.snap.Load()
	w.Header().Set(GenerationHeader, strconv.FormatUint(sn.gen, 10))
	if cb, ok := sn.cache.get(key); ok {
		s.hits.Add(1)
		WriteJSONBody(w, r, http.StatusOK, cb)
		return
	}
	s.misses.Add(1)
	v, err := compute(sn)
	if err != nil {
		status := http.StatusInternalServerError
		var bq badQueryError
		if errors.As(err, &bq) {
			status = http.StatusBadRequest
		}
		writeErr(w, status, err)
		return
	}
	body, err := marshalBody(v)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	cb := &CachedBody{Plain: body}
	sn.cache.put(key, cb)
	WriteJSONBody(w, r, http.StatusOK, cb)
}

// respondPrepared runs a prepare function over the request's query
// parameters and answers the prepared query through respond, mapping
// parse failures to 400 — the single-query half of the shared
// prepare*/respond machinery.
func (s *Server) respondPrepared(w http.ResponseWriter, r *http.Request, prep func(url.Values) (preparedQuery, error)) {
	pq, err := prep(r.URL.Query())
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.respond(w, r, pq.key, pq.compute)
}

// ParseDimParams parses every value of a repeated dimension query
// parameter, returning the dims and their canonical labels. Exported
// because the federation coordinator validates and canonicalizes the
// same parameters before scattering them to shards.
func ParseDimParams(param string, vals []string) ([]mining.Dim, []string, error) {
	if len(vals) == 0 {
		return nil, nil, fmt.Errorf("missing required parameter %q (a dimension label, e.g. %q or %q)",
			param, "outcome=reservation", "weak start[customer intention]")
	}
	dims := make([]mining.Dim, len(vals))
	labels := make([]string, len(vals))
	for i, v := range vals {
		d, err := mining.ParseDim(v)
		if err != nil {
			return nil, nil, fmt.Errorf("parameter %s: %w", param, err)
		}
		dims[i] = d
		labels[i] = d.CanonicalLabel()
	}
	return dims, labels, nil
}

// CacheKey builds a canonical cache key from the endpoint name and its
// canonicalized parameters. Parameter order within one repeated key is
// preserved (it is echoed in the response), so only dimension spelling
// is canonicalized, not request shape. Exported because the federation
// coordinator keys its generation-vector result cache with the same
// canonical form — one canonicalization implementation for the single,
// batch, and federated paths.
func CacheKey(endpoint string, parts ...string) string {
	return endpoint + "\x00" + strings.Join(parts, "\x00")
}

// preparedQuery is one parsed, canonicalized /v1 query: the
// snapshot-LRU cache key plus the compute closure that answers it from
// a snapshot. Exactly one prepare* function exists per endpoint and is
// shared by the GET handler and the /v1/batch executor, so a dimension
// queried either way lands on the same cache entry by construction.
type preparedQuery struct {
	key     string
	compute func(sn *snapshot) (any, error)
}

// batchEndpoints dispatches a /v1/batch sub-query endpoint name to its
// prepare function. The names are the /v1 paths without the prefix.
var batchEndpoints = map[string]func(*Server, url.Values) (preparedQuery, error){
	"count":              (*Server).prepareCount,
	"associate":          (*Server).prepareAssociate,
	"relfreq":            (*Server).prepareRelFreq,
	"drilldown":          (*Server).prepareDrillDown,
	"trend":              (*Server).prepareTrend,
	"concepts":           (*Server).prepareConcepts,
	"marginals/concepts": (*Server).prepareConceptDF,
	"marginals/relfreq":  (*Server).prepareRelFreqMarginals,
	"marginals/assoc":    (*Server).prepareAssocMarginals,
}

// GET /v1/count?dim=<label>[&dim=<label>...] — document counts for one
// or more dimensions, plus the snapshot total, all from one generation.
func (s *Server) prepareCount(q url.Values) (preparedQuery, error) {
	dims, labels, err := ParseDimParams("dim", q["dim"])
	if err != nil {
		return preparedQuery{}, err
	}
	return preparedQuery{key: CacheKey("count", labels...), compute: func(sn *snapshot) (any, error) {
		counts := make([]int, len(dims))
		for i, d := range dims {
			counts[i] = sn.view.Count(d)
		}
		return CountResponse{
			Generation: sn.gen,
			Sealed:     sn.sealed,
			Total:      sn.view.Len(),
			Dims:       labels,
			Counts:     counts,
		}, nil
	}}, nil
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	s.respondPrepared(w, r, s.prepareCount)
}

// GET /v1/associate?row=<label>&...&col=<label>&...[&confidence=0.95] —
// the §IV.D.2 two-dimensional association table.
func (s *Server) prepareAssociate(q url.Values) (preparedQuery, error) {
	rows, rowLabels, err := ParseDimParams("row", q["row"])
	if err != nil {
		return preparedQuery{}, err
	}
	cols, colLabels, err := ParseDimParams("col", q["col"])
	if err != nil {
		return preparedQuery{}, err
	}
	confidence := s.cfg.confidence()
	if cs := q.Get("confidence"); cs != "" {
		c, err := strconv.ParseFloat(cs, 64)
		if err != nil || c <= 0 || c >= 1 {
			return preparedQuery{}, fmt.Errorf("confidence must be a number in (0,1), got %q", cs)
		}
		confidence = c
	}
	key := CacheKey("associate",
		strings.Join(rowLabels, "\x01"),
		strings.Join(colLabels, "\x01"),
		strconv.FormatFloat(confidence, 'g', -1, 64))
	return preparedQuery{key: key, compute: func(sn *snapshot) (any, error) {
		tbl := sn.view.AssociateN(rows, cols, confidence, s.cfg.AssociateWorkers)
		return AssociateResponse{
			Generation: sn.gen,
			Sealed:     sn.sealed,
			Confidence: tbl.Confidence,
			Rows:       rowLabels,
			Cols:       colLabels,
			Cells:      AssocCellsJSON(tbl),
		}, nil
	}}, nil
}

func (s *Server) handleAssociate(w http.ResponseWriter, r *http.Request) {
	s.respondPrepared(w, r, s.prepareAssociate)
}

// GET /v1/relfreq?category=<cat>&featured=<label> — the §IV.D.1
// relevancy analysis: category concept densities inside the featured
// subset versus the whole collection.
func (s *Server) prepareRelFreq(q url.Values) (preparedQuery, error) {
	category := q.Get("category")
	if category == "" {
		return preparedQuery{}, fmt.Errorf("missing required parameter %q (a concept category)", "category")
	}
	featured, featLabels, err := ParseDimParams("featured", q["featured"])
	if err != nil {
		return preparedQuery{}, err
	}
	if len(featured) > 1 {
		return preparedQuery{}, fmt.Errorf("featured must be a single dimension (use a ∧-conjunction for compound subsets)")
	}
	return preparedQuery{key: CacheKey("relfreq", category, featLabels[0]), compute: func(sn *snapshot) (any, error) {
		rows := RelevancesJSON(sn.view.RelativeFrequency(category, featured[0]))
		return RelFreqResponse{
			Generation: sn.gen,
			Sealed:     sn.sealed,
			Category:   category,
			Featured:   featLabels[0],
			Rows:       rows,
		}, nil
	}}, nil
}

func (s *Server) handleRelFreq(w http.ResponseWriter, r *http.Request) {
	s.respondPrepared(w, r, s.prepareRelFreq)
}

// GET /v1/drilldown?row=<label>&col=<label>[&limit=N] — Figure 4's
// cell-to-documents navigation. limit bounds the returned documents
// (default 50; Count is always the full cell size).
func (s *Server) prepareDrillDown(q url.Values) (preparedQuery, error) {
	rows, rowLabels, err := ParseDimParams("row", q["row"])
	if err != nil {
		return preparedQuery{}, err
	}
	cols, colLabels, err := ParseDimParams("col", q["col"])
	if err != nil {
		return preparedQuery{}, err
	}
	if len(rows) > 1 || len(cols) > 1 {
		return preparedQuery{}, fmt.Errorf("drilldown takes exactly one row and one col dimension")
	}
	limit := 50
	if ls := q.Get("limit"); ls != "" {
		limit, err = strconv.Atoi(ls)
		if err != nil || limit < 0 {
			return preparedQuery{}, fmt.Errorf("limit must be a non-negative integer, got %q", ls)
		}
	}
	key := CacheKey("drilldown", rowLabels[0], colLabels[0], strconv.Itoa(limit))
	return preparedQuery{key: key, compute: func(sn *snapshot) (any, error) {
		docs := sn.view.DrillDown(rows[0], cols[0])
		n := len(docs)
		truncated := false
		if n > limit {
			docs = docs[:limit]
			truncated = true
		}
		out := DocumentsJSON(docs)
		return DrillDownResponse{
			Generation: sn.gen,
			Sealed:     sn.sealed,
			Row:        rowLabels[0],
			Col:        colLabels[0],
			Count:      n,
			Truncated:  truncated,
			Docs:       out,
		}, nil
	}}, nil
}

func (s *Server) handleDrillDown(w http.ResponseWriter, r *http.Request) {
	s.respondPrepared(w, r, s.prepareDrillDown)
}

// GET /v1/trend?dim=<label> — per-time-bucket counts plus the fitted
// slope (documents per bucket).
func (s *Server) prepareTrend(q url.Values) (preparedQuery, error) {
	dims, labels, err := ParseDimParams("dim", q["dim"])
	if err != nil {
		return preparedQuery{}, err
	}
	if len(dims) > 1 {
		return preparedQuery{}, fmt.Errorf("trend takes exactly one dim")
	}
	return preparedQuery{key: CacheKey("trend", labels[0]), compute: func(sn *snapshot) (any, error) {
		pts := sn.view.Trend(dims[0])
		points := TrendPointsJSON(pts)
		return TrendResponse{
			Generation: sn.gen,
			Sealed:     sn.sealed,
			Dim:        labels[0],
			Points:     points,
			Slope:      mining.TrendSlope(pts),
		}, nil
	}}, nil
}

func (s *Server) handleTrend(w http.ResponseWriter, r *http.Request) {
	s.respondPrepared(w, r, s.prepareTrend)
}

// GET /v1/concepts?category=<cat> | ?field=<name> — the vocabulary of a
// concept category (document-frequency order) or a structured field
// (sorted values); the discovery endpoint analysts use to find
// dimension labels to query with.
func (s *Server) prepareConcepts(q url.Values) (preparedQuery, error) {
	category, field := q.Get("category"), q.Get("field")
	if (category == "") == (field == "") {
		return preparedQuery{}, fmt.Errorf("pass exactly one of %q or %q", "category", "field")
	}
	return preparedQuery{key: CacheKey("concepts", category, field), compute: func(sn *snapshot) (any, error) {
		resp := ConceptsResponse{
			Generation: sn.gen,
			Sealed:     sn.sealed,
			Category:   category,
			Field:      field,
		}
		if category != "" {
			resp.Values = sn.view.ConceptsInCategory(category)
		} else {
			resp.Values = sn.view.FieldValues(field)
		}
		if resp.Values == nil {
			resp.Values = []string{}
		}
		return resp, nil
	}}, nil
}

func (s *Server) handleConcepts(w http.ResponseWriter, r *http.Request) {
	s.respondPrepared(w, r, s.prepareConcepts)
}

// GET /healthz — liveness plus the serving generation. Always 200 while
// the process serves; ingest and persistence failures are surfaced in
// the body as status "degraded" (the last good snapshot keeps answering
// queries — non-durably, in the persistence case).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	gen, docs, sealed := s.SnapshotInfo()
	w.Header().Set(GenerationHeader, strconv.FormatUint(gen, 10))
	resp := HealthResponse{Status: "ok", Generation: gen, Sealed: sealed, Docs: docs}
	if err := s.IngestErr(); err != nil {
		resp.Status = "degraded"
		resp.IngestError = err.Error()
	}
	if err := s.PersistErr(); err != nil {
		resp.Status = "degraded"
		resp.PersistError = err.Error()
	}
	body, _ := marshalBody(resp)
	WriteJSONBody(w, r, http.StatusOK, &CachedBody{Plain: body})
}

// GET /statsz — operational counters: snapshot generation, cache
// hit/miss, and the ingest pipeline's per-stage stats.
func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	sn := s.snap.Load()
	w.Header().Set(GenerationHeader, strconv.FormatUint(sn.gen, 10))
	segDocs, compactions := s.SegmentInfo()
	resp := StatszResponse{
		Generation: sn.gen,
		Sealed:     sn.sealed,
		Docs:       sn.view.Len(),
		Segments: SegmentsJSON{
			Count:       len(segDocs),
			Docs:        segDocs,
			MaxSegments: s.cfg.maxSegments(),
			Compactions: compactions,
		},
		Cache: CacheStatsJSON{
			Hits:     s.hits.Load(),
			Misses:   s.misses.Load(),
			Size:     sn.cache.len(),
			Capacity: s.cfg.cacheSize(),
		},
		Serving: s.slo.Snapshot(),
		Memory:  memoryStats(),
	}
	if s.cfg.PipelineStats != nil {
		resp.Pipeline = s.cfg.PipelineStats()
	}
	if s.cfg.Persist != nil {
		st := s.cfg.Persist.Stats()
		ss := &StoreStatsJSON{
			SegmentGeneration:    st.SegmentGen,
			SegmentPath:          st.SegmentPath,
			SegmentBytes:         st.SegmentBytes,
			SegmentDocs:          st.SegmentDocs,
			WALRecords:           st.WALRecords,
			WALBytes:             st.WALBytes,
			RecoveredSegmentDocs: s.recInfo.segmentDocs,
			RecoveredWALDocs:     s.recInfo.walDocs,
			RecoveredWALDropped:  s.recInfo.walDropped,
			MappedSegments:       st.MappedSegments,
			MappedBytes:          st.MappedBytes,
			OpenMicros:           st.OpenDuration.Microseconds(),
		}
		if st.PostingsCache.Budget > 0 {
			ss.PostingsCache = &PostingsCacheJSON{
				Bytes:   st.PostingsCache.Bytes,
				Budget:  st.PostingsCache.Budget,
				Entries: st.PostingsCache.Entries,
				Hits:    st.PostingsCache.Hits,
				Misses:  st.PostingsCache.Misses,
			}
		}
		if !st.LastSeal.IsZero() {
			ss.LastSealUnixMS = st.LastSeal.UnixMilli()
		}
		if err := s.PersistErr(); err != nil {
			ss.PersistError = err.Error()
		}
		resp.Store = ss
		resp.Memory.MappedBytes = st.MappedBytes
	}
	if err := s.IngestErr(); err != nil {
		resp.IngestError = err.Error()
	}
	body, err := marshalBody(resp)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	WriteJSONBody(w, r, http.StatusOK, &CachedBody{Plain: body})
}

// memoryStats reads the process-wide memory counters for /statsz. The
// ReadMemStats pause is microseconds on a modern runtime — fine for an
// operational endpoint, not something to put on the query path.
func memoryStats() MemoryStatsJSON {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	out := MemoryStatsJSON{
		HeapAllocBytes: ms.HeapAlloc,
		HeapInuseBytes: ms.HeapInuse,
		NumGC:          ms.NumGC,
	}
	// SetMemoryLimit(-1) is a pure read; MaxInt64 means "no limit set",
	// which the section omits rather than reporting an absurd number.
	if lim := debug.SetMemoryLimit(-1); lim < math.MaxInt64 {
		out.GoMemLimitBytes = lim
	}
	return out
}

// Wire converters — the single mapping from mining results onto the
// JSON schema, shared by these handlers and the federation coordinator
// (which rebuilds the same response shapes from merged marginals).

// AssocCellsJSON converts an association table's cells to wire form.
func AssocCellsJSON(tbl *mining.AssocTable) [][]AssocCellJSON {
	cells := make([][]AssocCellJSON, len(tbl.Cells))
	for i, row := range tbl.Cells {
		cells[i] = make([]AssocCellJSON, len(row))
		for j, c := range row {
			cells[i][j] = AssocCellJSON{
				Ncell: c.Ncell, Nver: c.Nver, Nhor: c.Nhor, N: c.N,
				PointIndex: c.PointIndex, LowerIndex: c.LowerIndex, RowShare: c.RowShare,
			}
		}
	}
	return cells
}

// RelevancesJSON converts a relevancy report to wire form (non-nil
// even when empty).
func RelevancesJSON(rel []mining.Relevance) []RelevanceJSON {
	rows := make([]RelevanceJSON, len(rel))
	for i, rr := range rel {
		rows[i] = RelevanceJSON{
			Concept: rr.Concept, InSubset: rr.InSubset, SubsetSize: rr.SubsetSize,
			InAll: rr.InAll, N: rr.N, Ratio: rr.Ratio,
		}
	}
	return rows
}

// DocumentsJSON converts drilled-down documents to wire form (non-nil
// even when empty).
func DocumentsJSON(docs []mining.Document) []DocumentJSON {
	out := make([]DocumentJSON, len(docs))
	for i, d := range docs {
		concepts := make([]ConceptJSON, len(d.Concepts))
		for j, c := range d.Concepts {
			concepts[j] = ConceptJSON{Category: c.Category, Canonical: c.Canonical}
		}
		out[i] = DocumentJSON{ID: d.ID, Fields: d.Fields, Time: d.Time, Concepts: concepts}
	}
	return out
}

// TrendPointsJSON converts trend buckets to wire form (non-nil even
// when empty).
func TrendPointsJSON(pts []mining.TrendPoint) []TrendPointJSON {
	points := make([]TrendPointJSON, len(pts))
	for i, p := range pts {
		points[i] = TrendPointJSON{Time: p.Time, Count: p.Count}
	}
	return points
}

// Marginal endpoints — the shard-side federation wire. Each returns the
// integer half of a split §IV.D operation (see internal/mining/merge.go)
// so a coordinator can merge counts across shards by addition and run
// the float pipeline exactly once over the merged marginals. The float
// endpoints above stay byte-identical per shard; these carry no floats
// at all.

// ConceptDFResponse answers /v1/marginals/concepts: a category's
// vocabulary with per-shard document frequencies, in report order.
type ConceptDFResponse struct {
	Generation uint64                `json:"generation"`
	Sealed     bool                  `json:"sealed"`
	Category   string                `json:"category"`
	Concepts   []mining.ConceptCount `json:"concepts"`
}

// RelFreqMarginalsResponse answers /v1/marginals/relfreq.
type RelFreqMarginalsResponse struct {
	Generation uint64                  `json:"generation"`
	Sealed     bool                    `json:"sealed"`
	Category   string                  `json:"category"`
	Featured   string                  `json:"featured"`
	Marginals  mining.RelFreqMarginals `json:"marginals"`
}

// AssocMarginalsResponse answers /v1/marginals/assoc.
type AssocMarginalsResponse struct {
	Generation uint64                `json:"generation"`
	Sealed     bool                  `json:"sealed"`
	Rows       []string              `json:"rows"`
	Cols       []string              `json:"cols"`
	Marginals  mining.AssocMarginals `json:"marginals"`
}

// GET /v1/marginals/concepts?category=<cat> — concept document
// frequencies for one category (the counted form of /v1/concepts;
// structured-field vocabularies merge order-free, so the coordinator
// uses the public endpoint for those).
func (s *Server) prepareConceptDF(q url.Values) (preparedQuery, error) {
	category := q.Get("category")
	if category == "" {
		return preparedQuery{}, fmt.Errorf("missing required parameter %q (a concept category)", "category")
	}
	return preparedQuery{key: CacheKey("marginals/concepts", category), compute: func(sn *snapshot) (any, error) {
		return ConceptDFResponse{
			Generation: sn.gen,
			Sealed:     sn.sealed,
			Category:   category,
			Concepts:   sn.view.ConceptDF(category),
		}, nil
	}}, nil
}

func (s *Server) handleConceptDF(w http.ResponseWriter, r *http.Request) {
	s.respondPrepared(w, r, s.prepareConceptDF)
}

// GET /v1/marginals/relfreq?category=<cat>&featured=<label> — the
// integer marginals of a relevancy analysis over this shard's documents.
func (s *Server) prepareRelFreqMarginals(q url.Values) (preparedQuery, error) {
	category := q.Get("category")
	if category == "" {
		return preparedQuery{}, fmt.Errorf("missing required parameter %q (a concept category)", "category")
	}
	featured, featLabels, err := ParseDimParams("featured", q["featured"])
	if err != nil {
		return preparedQuery{}, err
	}
	if len(featured) > 1 {
		return preparedQuery{}, fmt.Errorf("featured must be a single dimension (use a ∧-conjunction for compound subsets)")
	}
	return preparedQuery{key: CacheKey("marginals/relfreq", category, featLabels[0]), compute: func(sn *snapshot) (any, error) {
		return RelFreqMarginalsResponse{
			Generation: sn.gen,
			Sealed:     sn.sealed,
			Category:   category,
			Featured:   featLabels[0],
			Marginals:  sn.view.RelFreqMarginals(category, featured[0]),
		}, nil
	}}, nil
}

func (s *Server) handleRelFreqMarginals(w http.ResponseWriter, r *http.Request) {
	s.respondPrepared(w, r, s.prepareRelFreqMarginals)
}

// GET /v1/marginals/assoc?row=<label>&...&col=<label>&... — the integer
// marginals of an association table over this shard's documents
// (confidence is a finalize-time input, so it does not appear here).
func (s *Server) prepareAssocMarginals(q url.Values) (preparedQuery, error) {
	rows, rowLabels, err := ParseDimParams("row", q["row"])
	if err != nil {
		return preparedQuery{}, err
	}
	cols, colLabels, err := ParseDimParams("col", q["col"])
	if err != nil {
		return preparedQuery{}, err
	}
	key := CacheKey("marginals/assoc",
		strings.Join(rowLabels, "\x01"),
		strings.Join(colLabels, "\x01"))
	return preparedQuery{key: key, compute: func(sn *snapshot) (any, error) {
		return AssocMarginalsResponse{
			Generation: sn.gen,
			Sealed:     sn.sealed,
			Rows:       rowLabels,
			Cols:       colLabels,
			Marginals:  sn.view.AssocMarginals(rows, cols),
		}, nil
	}}, nil
}

func (s *Server) handleAssocMarginals(w http.ResponseWriter, r *http.Request) {
	s.respondPrepared(w, r, s.prepareAssocMarginals)
}

// QueryURL renders a /v1 query URL against base (scheme://host) with
// properly escaped parameters — a convenience for clients and tests
// building dimension-label URLs.
func QueryURL(base, endpoint string, params url.Values) string {
	return base + endpoint + "?" + params.Encode()
}
