package server

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// Response-body encoding. Every /v1 body is marshaled exactly once into
// its canonical plain bytes (marshalBody, pooled scratch) and wrapped in
// a CachedBody; the gzip form is derived lazily from those bytes and
// memoized, so a cached response compresses once no matter how many
// gzip-accepting clients replay it. Decompressing a gzip response
// always yields the exact plain bytes — compression is an encoding of
// the response, never a different response — which is what lets the
// byte-identity suites compare daemons across the flag.

// GzipMinSize is the smallest plain body worth compressing: below it
// the gzip envelope (header + CRC trailer) eats the savings and the
// response is sent identity-encoded even to gzip-accepting clients.
const GzipMinSize = 256

// CachedBody is one marshaled response body in both encodings: the
// canonical plain bytes and, lazily, their gzip form. The snapshot LRU
// and the federation result cache store these, so a cache hit reuses
// whichever encodings have already been paid for. Exported because the
// federation coordinator caches merged bodies the same way.
type CachedBody struct {
	Plain []byte

	once sync.Once
	gz   []byte
}

// Gzip returns the gzip encoding of Plain, compressing on the first
// call and memoizing the result (safe for concurrent use).
func (cb *CachedBody) Gzip() []byte {
	cb.once.Do(func() {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		zw.Write(cb.Plain)
		zw.Close()
		cb.gz = buf.Bytes()
	})
	return cb.gz
}

// AcceptsGzip reports whether the request negotiates gzip response
// encoding: an Accept-Encoding listing gzip (any case) with a nonzero
// quality. Exported because the federation coordinator negotiates its
// own responses with the same rule.
func AcceptsGzip(r *http.Request) bool {
	for _, field := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		name, params, hasQ := strings.Cut(strings.TrimSpace(field), ";")
		if !strings.EqualFold(strings.TrimSpace(name), "gzip") {
			continue
		}
		if !hasQ {
			return true
		}
		for _, p := range strings.Split(params, ";") {
			k, v, _ := strings.Cut(strings.TrimSpace(p), "=")
			if strings.TrimSpace(k) != "q" {
				continue
			}
			q, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			return err != nil || q > 0
		}
		return true
	}
	return false
}

// WriteJSONBody writes cb in the encoding the request negotiated:
// gzip when the client accepts it and the body clears GzipMinSize (and
// actually shrinks), the plain bytes otherwise. Vary: Accept-Encoding
// is always set so shared caches never serve one client's encoding to
// another. A nil request writes plain.
func WriteJSONBody(w http.ResponseWriter, r *http.Request, status int, cb *CachedBody) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Add("Vary", "Accept-Encoding")
	if r != nil && len(cb.Plain) >= GzipMinSize && AcceptsGzip(r) {
		if gz := cb.Gzip(); len(gz) < len(cb.Plain) {
			h.Set("Content-Encoding", "gzip")
			w.WriteHeader(status)
			w.Write(gz)
			return
		}
	}
	w.WriteHeader(status)
	w.Write(cb.Plain)
}

// bodyScratch pools the marshal working buffers so a cache miss does
// not allocate a fresh growth-sized buffer per response.
var bodyScratch = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// marshalBody renders v in the canonical response framing — exactly
// append(json.Marshal(v), '\n'), which is what json.Encoder emits — but
// through a pooled working buffer, so the only allocation that survives
// the call is the exact-size body copy.
func marshalBody(v any) ([]byte, error) {
	buf := bodyScratch.Get().(*bytes.Buffer)
	defer bodyScratch.Put(buf)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		return nil, err
	}
	return append([]byte(nil), buf.Bytes()...), nil
}
