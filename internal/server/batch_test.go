package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"os"
	"strings"
	"testing"
	"time"

	"bivoc/internal/mining"
)

// postBatch POSTs a BatchRequest and returns status + body.
func postBatch(t *testing.T, base string, req BatchRequest) (int, []byte) {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := testClient.Post(base+"/v1/batch", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("POST /v1/batch: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// batchTestQueries covers every batchable endpoint plus error shapes.
func batchTestQueries() []BatchQuery {
	return []BatchQuery{
		{Endpoint: "count", Params: map[string][]string{"dim": {"topic billing[topic]", "parity=even"}}},
		{Endpoint: "associate", Params: map[string][]string{
			"row": {"billing[topic]", "coverage[topic]"},
			"col": {"outcome=reservation", "outcome=unbooked"},
		}},
		{Endpoint: "relfreq", Params: map[string][]string{"category": {"topic"}, "featured": {"outcome=service"}}},
		{Endpoint: "drilldown", Params: map[string][]string{"row": {"billing[topic]"}, "col": {"outcome=reservation"}, "limit": {"5"}}},
		{Endpoint: "trend", Params: map[string][]string{"dim": {"austin[place]"}}},
		{Endpoint: "concepts", Params: map[string][]string{"category": {"topic"}}},
		{Endpoint: "concepts", Params: map[string][]string{"field": {"outcome"}}},
		{Endpoint: "marginals/concepts", Params: map[string][]string{"category": {"topic"}}},
		{Endpoint: "marginals/relfreq", Params: map[string][]string{"category": {"topic"}, "featured": {"parity=odd"}}},
		{Endpoint: "marginals/assoc", Params: map[string][]string{"row": {"billing[topic]"}, "col": {"parity=even"}}},
	}
}

// queryString renders a BatchQuery's params as the GET query string the
// equivalent single-query request would use.
func queryString(bq BatchQuery) string {
	return url.Values(bq.Params).Encode()
}

// singlePath maps a batch endpoint name to its GET path.
func singlePath(endpoint string) string { return "/v1/" + endpoint }

// TestBatchMatchesSingleQueries pins the core batch contract: each
// sub-result's status and body are exactly what the equivalent GET
// endpoint returns (modulo the trailing newline the envelope strips),
// and the whole batch is answered from one generation.
func TestBatchMatchesSingleQueries(t *testing.T) {
	s := startServer(t, Config{Source: sliceSource(testDocs(120))})
	waitIngestDone(t, s)
	base := "http://" + s.Addr()

	queries := batchTestQueries()
	// Error shapes ride along: unknown endpoint, bad dim, missing param.
	queries = append(queries,
		BatchQuery{Endpoint: "nope", Params: map[string][]string{}},
		BatchQuery{Endpoint: "count", Params: map[string][]string{"dim": {"[unclosed"}}},
		BatchQuery{Endpoint: "relfreq", Params: map[string][]string{"featured": {"parity=even"}}},
	)

	status, body := postBatch(t, base, BatchRequest{Queries: queries})
	if status != http.StatusOK {
		t.Fatalf("batch status = %d, body %s", status, body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("unmarshal envelope: %v", err)
	}
	if !resp.Sealed {
		t.Fatal("batch over sealed corpus reports sealed=false")
	}
	if len(resp.Results) != len(queries) {
		t.Fatalf("got %d results for %d queries", len(resp.Results), len(queries))
	}
	for i, bq := range queries {
		res := resp.Results[i]
		wantPath := singlePath(bq.Endpoint)
		if bq.Endpoint == "nope" {
			if res.Status != http.StatusBadRequest {
				t.Errorf("query %d (unknown endpoint): status = %d, want 400", i, res.Status)
			}
			continue
		}
		singleStatus, singleBody := get(t, base+wantPath+"?"+queryString(bq))
		if res.Status != singleStatus {
			t.Errorf("query %d (%s): batch status %d != single status %d", i, bq.Endpoint, res.Status, singleStatus)
		}
		if got := append(append([]byte{}, res.Body...), '\n'); !bytes.Equal(got, singleBody) {
			t.Errorf("query %d (%s): batch body differs from single GET\nbatch:  %s\nsingle: %s",
				i, bq.Endpoint, res.Body, singleBody)
		}
		var gen struct {
			Generation uint64 `json:"generation"`
		}
		if res.Status == http.StatusOK {
			if err := json.Unmarshal(res.Body, &gen); err != nil {
				t.Fatalf("query %d: unmarshal sub-body: %v", i, err)
			}
			if gen.Generation != resp.Generation {
				t.Errorf("query %d: sub-generation %d != envelope generation %d", i, gen.Generation, resp.Generation)
			}
		}
	}
}

// TestBatchSharesCacheWithSingleQueries pins the shared-canonicalization
// fix: a dimension first queried through /v1/batch must land the
// follow-up GET /v1/count on the very same snapshot-LRU entry, and vice
// versa — one prepare* implementation, one cache key, both paths.
func TestBatchSharesCacheWithSingleQueries(t *testing.T) {
	s := startServer(t, Config{Source: sliceSource(testDocs(60))})
	waitIngestDone(t, s)
	base := "http://" + s.Addr()

	// Batch first: a miss that populates the cache...
	bq := BatchQuery{Endpoint: "count", Params: map[string][]string{"dim": {"billing[topic] ∧ parity=even"}}}
	if status, body := postBatch(t, base, BatchRequest{Queries: []BatchQuery{bq}}); status != http.StatusOK {
		t.Fatalf("batch status = %d, body %s", status, body)
	}
	hits0, misses0 := s.CacheStats()
	if misses0 == 0 {
		t.Fatal("batch miss did not count")
	}
	// ...that the single GET must hit. Note the conjunct order differs —
	// canonicalization (sorted conjuncts), not string equality, is what
	// keys the cache, and both paths share the one implementation.
	if status, _ := get(t, base+"/v1/count?"+url.Values{"dim": {"parity=even ∧ billing[topic]"}}.Encode()); status != http.StatusOK {
		t.Fatalf("single GET status = %d", status)
	}
	hits1, misses1 := s.CacheStats()
	if hits1 != hits0+1 || misses1 != misses0 {
		t.Fatalf("single GET after batch: hits %d→%d misses %d→%d, want one new hit and no new miss",
			hits0, hits1, misses0, misses1)
	}
	// And the reverse direction: GET misses, batch hits.
	if status, _ := get(t, base+"/v1/trend?"+url.Values{"dim": {"austin[place]"}}.Encode()); status != http.StatusOK {
		t.Fatal("single trend GET failed")
	}
	hits2, misses2 := s.CacheStats()
	if misses2 != misses1+1 {
		t.Fatalf("trend GET should miss: misses %d→%d", misses1, misses2)
	}
	tq := BatchQuery{Endpoint: "trend", Params: map[string][]string{"dim": {"austin[place]"}}}
	if status, _ := postBatch(t, base, BatchRequest{Queries: []BatchQuery{tq}}); status != http.StatusOK {
		t.Fatal("trend batch failed")
	}
	hits3, misses3 := s.CacheStats()
	if hits3 != hits2+1 || misses3 != misses2 {
		t.Fatalf("batch after single GET: hits %d→%d misses %d→%d, want one new hit and no new miss",
			hits2, hits3, misses2, misses3)
	}
}

// TestBatchValidation pins the envelope-level error paths.
func TestBatchValidation(t *testing.T) {
	s := startServer(t, Config{Source: sliceSource(testDocs(10))})
	waitIngestDone(t, s)
	base := "http://" + s.Addr()

	if status, _ := postBatch(t, base, BatchRequest{}); status != http.StatusBadRequest {
		t.Errorf("empty batch: status = %d, want 400", status)
	}
	over := make([]BatchQuery, MaxBatchQueries+1)
	for i := range over {
		over[i] = BatchQuery{Endpoint: "count", Params: map[string][]string{"dim": {"parity=even"}}}
	}
	if status, _ := postBatch(t, base, BatchRequest{Queries: over}); status != http.StatusBadRequest {
		t.Errorf("oversized batch: status = %d, want 400", status)
	}
	resp, err := testClient.Post(base+"/v1/batch", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status = %d, want 400", resp.StatusCode)
	}
	// GET on the batch route is not registered.
	if status, _ := get(t, base+"/v1/batch"); status != http.StatusMethodNotAllowed && status != http.StatusNotFound {
		t.Errorf("GET /v1/batch: status = %d, want 405 or 404", status)
	}
}

// TestStatszServingCounters pins the /statsz serving section: every
// wrapped route counts its requests and buckets its latency, and the
// bucket totals reconcile with the request count.
func TestStatszServingCounters(t *testing.T) {
	s := startServer(t, Config{Source: sliceSource(testDocs(30))})
	waitIngestDone(t, s)
	base := "http://" + s.Addr()

	for i := 0; i < 3; i++ {
		get(t, base+"/v1/count?dim=parity%3Deven")
	}
	postBatch(t, base, BatchRequest{Queries: []BatchQuery{
		{Endpoint: "count", Params: map[string][]string{"dim": {"parity=odd"}}},
	}})

	var st StatszResponse
	getOK(t, base+"/statsz", &st)
	if len(st.Serving.BucketBoundsUS) != len(SLOBucketBoundsUS) {
		t.Fatalf("serving bucket bounds = %v", st.Serving.BucketBoundsUS)
	}
	count := st.Serving.Endpoints["/v1/count"]
	if count.Requests != 3 {
		t.Errorf("/v1/count requests = %d, want 3", count.Requests)
	}
	if batch := st.Serving.Endpoints["/v1/batch"]; batch.Requests != 1 {
		t.Errorf("/v1/batch requests = %d, want 1", batch.Requests)
	}
	for name, es := range st.Serving.Endpoints {
		var sum uint64
		for _, b := range es.LatencyBucketsUS {
			sum += b
		}
		if sum != es.Requests {
			t.Errorf("%s: bucket sum %d != requests %d", name, sum, es.Requests)
		}
		if len(es.LatencyBucketsUS) != len(SLOBucketBoundsUS)+1 {
			t.Errorf("%s: %d buckets, want %d", name, len(es.LatencyBucketsUS), len(SLOBucketBoundsUS)+1)
		}
	}
}

// TestSlowHeaderClientDisconnected pins the slowloris hardening: a
// client that dials and then trickles (or never sends) its request
// header is cut off once ReadHeaderTimeout elapses, instead of pinning
// the connection forever.
func TestSlowHeaderClientDisconnected(t *testing.T) {
	s := startServer(t, Config{
		Source:            sliceSource(testDocs(10)),
		ReadHeaderTimeout: 150 * time.Millisecond,
	})
	waitIngestDone(t, s)

	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Start a request line but never finish the header section.
	if _, err := fmt.Fprintf(conn, "GET /v1/count HTTP/1.1\r\nHost: x\r\nX-Slow:"); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	_, err = conn.Read(buf)
	if err == nil {
		t.Fatal("expected the server to close the slow-header connection, got bytes instead")
	}
	// A deadline error here means the server never closed the
	// connection — exactly the slowloris pin this hardening removes.
	if errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatal("server left the slow-header connection open past ReadHeaderTimeout")
	}
	// The server must still answer well-formed requests afterwards.
	if status, _ := get(t, "http://"+s.Addr()+"/healthz"); status != http.StatusOK {
		t.Fatalf("healthz after slowloris cutoff: status = %d", status)
	}
}

// TestBatchMatchesSingleQueriesMidIngest pins batch/GET byte-identity
// while ingest is still running: the feed is parked after an exact
// snapshot publish, every batchable endpoint is compared batch-vs-GET
// against that live snapshot, and again after the seal.
func TestBatchMatchesSingleQueriesMidIngest(t *testing.T) {
	const firstBatch, total = 50, 100
	feed := make(chan mining.Document)
	src := func(ctx context.Context, _ func(string) bool, emit func(mining.Document) error) error {
		for d := range feed {
			if err := emit(d); err != nil {
				return err
			}
		}
		return nil
	}
	s := startServer(t, Config{Source: src, SwapEvery: firstBatch})
	base := "http://" + s.Addr()
	docs := testDocs(total)

	compare := func(phase string, wantSealed bool) {
		t.Helper()
		queries := batchTestQueries()
		status, body := postBatch(t, base, BatchRequest{Queries: queries})
		if status != http.StatusOK {
			t.Fatalf("%s: batch status %d, body %s", phase, status, body)
		}
		var resp BatchResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Sealed != wantSealed {
			t.Fatalf("%s: batch envelope sealed=%v, want %v", phase, resp.Sealed, wantSealed)
		}
		for i, bq := range queries {
			sub := resp.Results[i]
			if sub.Status != http.StatusOK {
				t.Fatalf("%s: sub %d (%s): status %d, body %s", phase, i, bq.Endpoint, sub.Status, sub.Body)
			}
			singleStatus, want := get(t, base+singlePath(bq.Endpoint)+"?"+queryString(bq))
			if singleStatus != http.StatusOK {
				t.Fatalf("%s: GET %s: status %d", phase, bq.Endpoint, singleStatus)
			}
			if got := append(append([]byte{}, sub.Body...), '\n'); !bytes.Equal(got, want) {
				t.Fatalf("%s: sub %d (%s) diverges from GET\nbatch: %s\n  get: %s", phase, i, bq.Endpoint, got, want)
			}
		}
	}

	for _, d := range docs[:firstBatch] {
		feed <- d
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Generation() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("snapshot swap did not land")
		}
		time.Sleep(time.Millisecond)
	}
	compare("mid-ingest", false)

	for _, d := range docs[firstBatch:] {
		feed <- d
	}
	close(feed)
	waitIngestDone(t, s)
	compare("sealed", true)
}
