package server

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"bivoc/internal/mining"
)

func TestAcceptsGzip(t *testing.T) {
	cases := []struct {
		header string
		want   bool
	}{
		{"", false},
		{"identity", false},
		{"gzip", true},
		{"GZIP", true},
		{"gzip, deflate, br", true},
		{"deflate, gzip;q=1.0", true},
		{"br;q=1.0, gzip;q=0.5", true},
		{"gzip;q=0", false},
		{"gzip;q=0.0, identity", false},
		{"gzip ; q=0", false},
		{"deflate", false},
		{"gzipx", false},
	}
	for _, c := range cases {
		r, _ := http.NewRequest("GET", "/", nil)
		if c.header != "" {
			r.Header.Set("Accept-Encoding", c.header)
		}
		if got := AcceptsGzip(r); got != c.want {
			t.Errorf("AcceptsGzip(%q) = %v, want %v", c.header, got, c.want)
		}
	}
}

// rawGet fetches rawurl with an explicit Accept-Encoding header;
// setting the header by hand disables net/http's transparent
// decompression, so the body comes back exactly as sent on the wire.
func rawGet(t *testing.T, rawurl, acceptEncoding string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("GET", rawurl, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept-Encoding", acceptEncoding)
	resp, err := testClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func gunzip(t *testing.T, data []byte) []byte {
	t.Helper()
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("gzip header: %v", err)
	}
	out, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("gunzip: %v", err)
	}
	return out
}

// TestGzipNegotiation pins the response-compression contract: a
// gzip-accepting client gets a gzip body whose decompressed bytes are
// identical to the plain response, small bodies and errors stay plain,
// and every /v1 response varies on Accept-Encoding.
func TestGzipNegotiation(t *testing.T) {
	s := startServer(t, Config{Source: sliceSource(testDocs(120))})
	waitIngestDone(t, s)
	base := "http://" + s.Addr()

	// /v1/associate over two rows × two cols is far past GzipMinSize.
	big := "/v1/associate?" + url.Values{
		"row": {mining.ConceptDim("topic", "billing").Label(), mining.ConceptDim("topic", "coverage").Label()},
		"col": {mining.FieldDim("outcome", "reservation").Label(), mining.FieldDim("outcome", "unbooked").Label()},
	}.Encode()

	plainResp, plain := rawGet(t, base+big, "identity")
	if plainResp.Header.Get("Content-Encoding") != "" {
		t.Fatalf("identity request got Content-Encoding %q", plainResp.Header.Get("Content-Encoding"))
	}
	if len(plain) < GzipMinSize {
		t.Fatalf("test body is %d bytes — too small to exercise compression", len(plain))
	}
	if !strings.Contains(strings.Join(plainResp.Header.Values("Vary"), ","), "Accept-Encoding") {
		t.Error("plain response missing Vary: Accept-Encoding")
	}

	zResp, zBody := rawGet(t, base+big, "gzip")
	if zResp.Header.Get("Content-Encoding") != "gzip" {
		t.Fatalf("gzip request answered with Content-Encoding %q", zResp.Header.Get("Content-Encoding"))
	}
	if len(zBody) >= len(plain) {
		t.Errorf("gzip body is %d bytes, plain is %d — compression did not shrink it", len(zBody), len(plain))
	}
	if got := gunzip(t, zBody); !bytes.Equal(got, plain) {
		t.Errorf("decompressed gzip body drifted from the plain body:\n gz   %s\n plain %s", got, plain)
	}

	// Replay through the snapshot cache: same wire bytes both times.
	_, zBody2 := rawGet(t, base+big, "gzip")
	if !bytes.Equal(zBody, zBody2) {
		t.Error("cached gzip replay served different bytes")
	}

	// A body under GzipMinSize stays plain even for a gzip client.
	small := "/v1/count?dim=" + url.QueryEscape(mining.ConceptDim("topic", "billing").Label())
	smResp, smBody := rawGet(t, base+small, "gzip")
	if len(smBody) >= GzipMinSize {
		t.Fatalf("count body is %d bytes, expected under GzipMinSize for this case", len(smBody))
	}
	if smResp.Header.Get("Content-Encoding") != "" {
		t.Errorf("sub-threshold body was %s-encoded", smResp.Header.Get("Content-Encoding"))
	}
	var count CountResponse
	if err := json.Unmarshal(smBody, &count); err != nil {
		t.Errorf("sub-threshold body is not plain JSON: %v", err)
	}

	// Errors are never compressed.
	errResp, errBody := rawGet(t, base+"/v1/count?dim=nope%5Bmissing", "gzip")
	if errResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query answered %d", errResp.StatusCode)
	}
	if errResp.Header.Get("Content-Encoding") != "" {
		t.Errorf("error response was %s-encoded", errResp.Header.Get("Content-Encoding"))
	}
	var er ErrorResponse
	if err := json.Unmarshal(errBody, &er); err != nil || er.Status != http.StatusBadRequest {
		t.Errorf("error body not plain structured JSON: %v / %+v", err, er)
	}

	// A gzip;q=0 client explicitly refuses gzip.
	refResp, refBody := rawGet(t, base+big, "gzip;q=0")
	if refResp.Header.Get("Content-Encoding") != "" {
		t.Errorf("gzip;q=0 request got Content-Encoding %q", refResp.Header.Get("Content-Encoding"))
	}
	if !bytes.Equal(refBody, plain) {
		t.Error("gzip;q=0 body drifted from the plain body")
	}
}

// TestMarshalBodyAllocs pins both halves of the pooled-marshal
// contract: marshalBody renders exactly append(json.Marshal(v), '\n'),
// and steady-state it allocates no more than the bare json.Marshal
// baseline (the pool absorbs the working buffer).
func TestMarshalBodyAllocs(t *testing.T) {
	v := CountResponse{
		Generation: 7,
		Sealed:     true,
		Total:      120,
		Dims:       []string{"topic:billing", "outcome=ok"},
		Counts:     []int{42, 9},
	}
	want, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	got, err := marshalBody(v)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("marshalBody drifted from append(json.Marshal, '\\n'):\n got  %q\n want %q", got, want)
	}

	baseline := testing.AllocsPerRun(200, func() {
		b, _ := json.Marshal(v)
		_ = append(b, '\n')
	})
	pooled := testing.AllocsPerRun(200, func() {
		marshalBody(v)
	})
	if pooled > baseline {
		t.Errorf("marshalBody allocates %.1f objects/op, json.Marshal+append baseline is %.1f", pooled, baseline)
	}
}
