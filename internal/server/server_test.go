package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"testing"
	"time"

	"bivoc/internal/annotate"
	"bivoc/internal/mining"
)

var testTopics = []string{"billing", "coverage", "roadside", "upgrade"}

// testDoc builds the i-th deterministic document: every doc carries a
// parity field (so parity=even + parity=odd must equal the total — the
// torn-read invariant), an outcome field, topic concepts and a time
// bucket.
func testDoc(i int) mining.Document {
	parity := "even"
	if i%2 == 1 {
		parity = "odd"
	}
	outcome := []string{"reservation", "unbooked", "service"}[i%3]
	concepts := []annotate.Concept{
		{Category: "topic", Canonical: testTopics[i%len(testTopics)]},
	}
	if i%5 == 0 {
		concepts = append(concepts, annotate.Concept{Category: "place", Canonical: "austin"})
	}
	return mining.Document{
		ID:       fmt.Sprintf("doc-%05d", i),
		Concepts: concepts,
		Fields:   map[string]string{"parity": parity, "outcome": outcome},
		Time:     i / 10,
	}
}

func testDocs(n int) []mining.Document {
	docs := make([]mining.Document, n)
	for i := range docs {
		docs[i] = testDoc(i)
	}
	return docs
}

// batchIndex is the ground truth the snapshots must match: the plain
// sealed index over the same documents.
func batchIndex(docs []mining.Document) *mining.Index {
	si := mining.NewStreamIndex()
	si.AddBatch(docs)
	return si.Seal()
}

func sliceSource(docs []mining.Document) DocSource {
	return func(ctx context.Context, _ func(string) bool, emit func(mining.Document) error) error {
		for _, d := range docs {
			if err := emit(d); err != nil {
				return err
			}
		}
		return nil
	}
}

// startServer starts a server on a free port and registers a graceful
// shutdown cleanup.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s
}

func waitIngestDone(t *testing.T, s *Server) {
	t.Helper()
	select {
	case <-s.IngestDone():
	case <-time.After(10 * time.Second):
		t.Fatal("ingest did not finish in time")
	}
}

// testClient disables keep-alives: a pooled connection that was dialed
// but never carried a request sits in StateNew server-side, and
// http.Server.Shutdown waits ~5s before treating StateNew as idle
// (go issue 22682) — with keep-alives off no connection outlives its
// request, so graceful shutdowns in tests are prompt and deterministic.
var testClient = &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}

// get fetches a URL and returns status + body.
func get(t *testing.T, rawurl string) (int, []byte) {
	t.Helper()
	resp, err := testClient.Get(rawurl)
	if err != nil {
		t.Fatalf("GET %s: %v", rawurl, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", rawurl, err)
	}
	return resp.StatusCode, body
}

// getOK fetches a URL, requires 200, and unmarshals into out.
func getOK(t *testing.T, rawurl string, out any) []byte {
	t.Helper()
	status, body := get(t, rawurl)
	if status != http.StatusOK {
		t.Fatalf("GET %s: status %d, body %s", rawurl, status, body)
	}
	if err := json.Unmarshal(body, out); err != nil {
		t.Fatalf("GET %s: unmarshal: %v\nbody: %s", rawurl, err, body)
	}
	return body
}

// mustJSON marshals an expected response the way the handler does
// (json.Marshal + trailing newline) so byte comparison is exact.
func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n')
}

// TestEndpointsMatchDirectIndex starts the server over a deterministic
// corpus, waits for the sealed snapshot, and pins every /v1 endpoint's
// response byte-identical to the equivalent direct mining.Index calls.
func TestEndpointsMatchDirectIndex(t *testing.T) {
	docs := testDocs(120)
	s := startServer(t, Config{Source: sliceSource(docs)})
	waitIngestDone(t, s)
	base := "http://" + s.Addr()
	ix := batchIndex(docs)
	gen, n, sealed := s.SnapshotInfo()
	if !sealed || n != len(docs) {
		t.Fatalf("final snapshot gen=%d docs=%d sealed=%v, want %d sealed docs", gen, n, sealed, len(docs))
	}

	topicDim := mining.ConceptDim("topic", "billing")
	outcomeDim := mining.FieldDim("outcome", "reservation")
	bothDim := mining.AndDim(topicDim, outcomeDim)

	t.Run("count", func(t *testing.T) {
		u := base + "/v1/count?" + url.Values{"dim": {
			topicDim.Label(), outcomeDim.Label(), bothDim.Label(),
		}}.Encode()
		var got CountResponse
		body := getOK(t, u, &got)
		want := CountResponse{
			Generation: gen,
			Sealed:     true,
			Total:      ix.Len(),
			Dims:       []string{topicDim.CanonicalLabel(), outcomeDim.CanonicalLabel(), bothDim.CanonicalLabel()},
			Counts:     []int{ix.Count(topicDim), ix.Count(outcomeDim), ix.Count(bothDim)},
		}
		if !bytes.Equal(body, mustJSON(t, want)) {
			t.Errorf("count response drifted:\n got %s\nwant %s", body, mustJSON(t, want))
		}
		if got.Counts[2] == 0 || got.Counts[0] <= got.Counts[2] {
			t.Errorf("implausible counts %v — corpus construction broken?", got.Counts)
		}
	})

	t.Run("associate", func(t *testing.T) {
		rows := []mining.Dim{mining.ConceptDim("topic", "billing"), mining.ConceptDim("topic", "coverage")}
		cols := []mining.Dim{mining.FieldDim("outcome", "reservation"), mining.FieldDim("outcome", "unbooked")}
		v := url.Values{
			"row":        {rows[0].Label(), rows[1].Label()},
			"col":        {cols[0].Label(), cols[1].Label()},
			"confidence": {"0.9"},
		}
		var got AssociateResponse
		body := getOK(t, base+"/v1/associate?"+v.Encode(), &got)
		tbl := ix.Associate(rows, cols, 0.9)
		want := AssociateResponse{
			Generation: gen, Sealed: true, Confidence: 0.9,
			Rows: []string{rows[0].CanonicalLabel(), rows[1].CanonicalLabel()},
			Cols: []string{cols[0].CanonicalLabel(), cols[1].CanonicalLabel()},
		}
		want.Cells = make([][]AssocCellJSON, len(tbl.Cells))
		for i, row := range tbl.Cells {
			want.Cells[i] = make([]AssocCellJSON, len(row))
			for j, c := range row {
				want.Cells[i][j] = AssocCellJSON{
					Ncell: c.Ncell, Nver: c.Nver, Nhor: c.Nhor, N: c.N,
					PointIndex: c.PointIndex, LowerIndex: c.LowerIndex, RowShare: c.RowShare,
				}
			}
		}
		if !bytes.Equal(body, mustJSON(t, want)) {
			t.Errorf("associate response drifted:\n got %s\nwant %s", body, mustJSON(t, want))
		}
	})

	t.Run("relfreq", func(t *testing.T) {
		v := url.Values{"category": {"topic"}, "featured": {outcomeDim.Label()}}
		var got RelFreqResponse
		body := getOK(t, base+"/v1/relfreq?"+v.Encode(), &got)
		rel := ix.RelativeFrequency("topic", outcomeDim)
		want := RelFreqResponse{
			Generation: gen, Sealed: true,
			Category: "topic", Featured: outcomeDim.CanonicalLabel(),
			Rows: make([]RelevanceJSON, len(rel)),
		}
		for i, r := range rel {
			want.Rows[i] = RelevanceJSON{
				Concept: r.Concept, InSubset: r.InSubset, SubsetSize: r.SubsetSize,
				InAll: r.InAll, N: r.N, Ratio: r.Ratio,
			}
		}
		if !bytes.Equal(body, mustJSON(t, want)) {
			t.Errorf("relfreq response drifted:\n got %s\nwant %s", body, mustJSON(t, want))
		}
	})

	t.Run("drilldown", func(t *testing.T) {
		v := url.Values{"row": {topicDim.Label()}, "col": {outcomeDim.Label()}, "limit": {"7"}}
		var got DrillDownResponse
		body := getOK(t, base+"/v1/drilldown?"+v.Encode(), &got)
		cell := ix.DrillDown(topicDim, outcomeDim)
		want := DrillDownResponse{
			Generation: gen, Sealed: true,
			Row: topicDim.CanonicalLabel(), Col: outcomeDim.CanonicalLabel(),
			Count: len(cell), Truncated: len(cell) > 7,
		}
		lim := cell
		if len(lim) > 7 {
			lim = lim[:7]
		}
		for _, d := range lim {
			concepts := make([]ConceptJSON, len(d.Concepts))
			for j, c := range d.Concepts {
				concepts[j] = ConceptJSON{Category: c.Category, Canonical: c.Canonical}
			}
			want.Docs = append(want.Docs, DocumentJSON{ID: d.ID, Fields: d.Fields, Time: d.Time, Concepts: concepts})
		}
		if !bytes.Equal(body, mustJSON(t, want)) {
			t.Errorf("drilldown response drifted:\n got %s\nwant %s", body, mustJSON(t, want))
		}
		if !got.Truncated || got.Count <= 7 {
			t.Errorf("expected a truncated cell bigger than the limit, got count=%d truncated=%v", got.Count, got.Truncated)
		}
	})

	t.Run("trend", func(t *testing.T) {
		v := url.Values{"dim": {topicDim.Label()}}
		var got TrendResponse
		body := getOK(t, base+"/v1/trend?"+v.Encode(), &got)
		pts := ix.Trend(topicDim)
		want := TrendResponse{
			Generation: gen, Sealed: true, Dim: topicDim.CanonicalLabel(),
			Points: make([]TrendPointJSON, len(pts)),
			Slope:  mining.TrendSlope(pts),
		}
		for i, p := range pts {
			want.Points[i] = TrendPointJSON{Time: p.Time, Count: p.Count}
		}
		if !bytes.Equal(body, mustJSON(t, want)) {
			t.Errorf("trend response drifted:\n got %s\nwant %s", body, mustJSON(t, want))
		}
	})

	t.Run("concepts", func(t *testing.T) {
		var got ConceptsResponse
		body := getOK(t, base+"/v1/concepts?category=topic", &got)
		want := ConceptsResponse{
			Generation: gen, Sealed: true, Category: "topic",
			Values: ix.ConceptsInCategory("topic"),
		}
		if !bytes.Equal(body, mustJSON(t, want)) {
			t.Errorf("concepts(category) response drifted:\n got %s\nwant %s", body, mustJSON(t, want))
		}
		var gotF ConceptsResponse
		bodyF := getOK(t, base+"/v1/concepts?field=outcome", &gotF)
		wantF := ConceptsResponse{
			Generation: gen, Sealed: true, Field: "outcome",
			Values: ix.FieldValues("outcome"),
		}
		if !bytes.Equal(bodyF, mustJSON(t, wantF)) {
			t.Errorf("concepts(field) response drifted:\n got %s\nwant %s", bodyF, mustJSON(t, wantF))
		}
	})

	t.Run("healthz", func(t *testing.T) {
		var got HealthResponse
		getOK(t, base+"/healthz", &got)
		if got.Status != "ok" || !got.Sealed || got.Docs != len(docs) || got.Generation != gen {
			t.Errorf("healthz = %+v, want ok/sealed/%d docs at gen %d", got, len(docs), gen)
		}
	})

	t.Run("statsz", func(t *testing.T) {
		var got StatszResponse
		getOK(t, base+"/statsz", &got)
		if got.Docs != len(docs) || !got.Sealed {
			t.Errorf("statsz = %+v, want %d sealed docs", got, len(docs))
		}
		if got.Cache.Capacity != 256 {
			t.Errorf("default cache capacity = %d, want 256", got.Cache.Capacity)
		}
	})

	t.Run("errors", func(t *testing.T) {
		for _, u := range []string{
			base + "/v1/count", // missing dim
			base + "/v1/count?dim=" + url.QueryEscape("a=b[c]"), // ambiguous label
			base + "/v1/associate?row=x",                        // missing col
			base + "/v1/relfreq?featured=x",                     // missing category
			base + "/v1/trend?dim=x&dim=y",                      // two dims
			base + "/v1/concepts",                               // neither selector
			base + "/v1/drilldown?row=x&col=y&limit=-1",         // bad limit
		} {
			status, body := get(t, u)
			if status != http.StatusBadRequest {
				t.Errorf("GET %s: status %d (body %s), want 400", u, status, body)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Errorf("GET %s: error body %s not of the {error} shape", u, body)
			}
		}
	})
}

// TestMidIngestSnapshotMatchesBatch uses a hand-driven source to stop
// ingestion at an exact document count, then checks the mid-ingest
// snapshot answers byte-identically to a batch index over exactly those
// documents.
func TestMidIngestSnapshotMatchesBatch(t *testing.T) {
	const firstBatch, total = 48, 96
	feed := make(chan mining.Document)
	src := func(ctx context.Context, _ func(string) bool, emit func(mining.Document) error) error {
		for d := range feed {
			if err := emit(d); err != nil {
				return err
			}
		}
		return nil
	}
	s := startServer(t, Config{Source: src, SwapEvery: firstBatch})
	base := "http://" + s.Addr()
	docs := testDocs(total)

	for _, d := range docs[:firstBatch] {
		feed <- d
	}
	// SwapEvery fired synchronously inside the emit of doc #48; wait for
	// the publish to land.
	deadline := time.Now().Add(5 * time.Second)
	for s.Generation() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("snapshot swap did not land")
		}
		time.Sleep(time.Millisecond)
	}

	ix := batchIndex(docs[:firstBatch])
	dim := mining.FieldDim("outcome", "reservation")
	var got CountResponse
	body := getOK(t, base+"/v1/count?"+url.Values{"dim": {dim.Label()}}.Encode(), &got)
	want := CountResponse{
		Generation: 1, Sealed: false,
		Total:  ix.Len(),
		Dims:   []string{dim.CanonicalLabel()},
		Counts: []int{ix.Count(dim)},
	}
	if !bytes.Equal(body, mustJSON(t, want)) {
		t.Errorf("mid-ingest count drifted:\n got %s\nwant %s", body, mustJSON(t, want))
	}

	for _, d := range docs[firstBatch:] {
		feed <- d
	}
	close(feed)
	waitIngestDone(t, s)

	full := batchIndex(docs)
	var got2 CountResponse
	getOK(t, base+"/v1/count?"+url.Values{"dim": {dim.Label()}}.Encode(), &got2)
	if !got2.Sealed || got2.Total != full.Len() || got2.Counts[0] != full.Count(dim) {
		t.Errorf("sealed count = %+v, want total=%d count=%d sealed", got2, full.Len(), full.Count(dim))
	}
	if got2.Generation <= got.Generation {
		t.Errorf("generation did not advance across the seal: %d → %d", got.Generation, got2.Generation)
	}
}

// TestCacheHitsAreByteIdenticalAndInvalidatedOnSwap covers the caching
// contract: a repeat query is a byte-identical hit; a snapshot swap
// invalidates the whole cache so the next query recomputes against the
// new generation.
func TestCacheHitsAreByteIdenticalAndInvalidatedOnSwap(t *testing.T) {
	feed := make(chan mining.Document)
	src := func(ctx context.Context, _ func(string) bool, emit func(mining.Document) error) error {
		for d := range feed {
			if err := emit(d); err != nil {
				return err
			}
		}
		return nil
	}
	s := startServer(t, Config{Source: src, SwapEvery: 10})
	base := "http://" + s.Addr()
	docs := testDocs(20)
	u := base + "/v1/count?" + url.Values{"dim": {"parity=even", "parity=odd"}}.Encode()

	for _, d := range docs[:10] {
		feed <- d
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Generation() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("swap did not land")
		}
		time.Sleep(time.Millisecond)
	}

	var r1 CountResponse
	b1 := getOK(t, u, &r1)
	hits, misses := s.CacheStats()
	if hits != 0 || misses != 1 {
		t.Fatalf("after first query: hits=%d misses=%d, want 0/1", hits, misses)
	}
	var r2 CountResponse
	b2 := getOK(t, u, &r2)
	if !bytes.Equal(b1, b2) {
		t.Errorf("cached response differs from uncached:\n%s\n%s", b1, b2)
	}
	if hits, _ := s.CacheStats(); hits != 1 {
		t.Errorf("second query did not hit the cache (hits=%d)", hits)
	}
	if r1.Counts[0]+r1.Counts[1] != r1.Total || r1.Total != 10 {
		t.Errorf("parity identity broken: %+v", r1)
	}

	// Swap: ten more docs. The cache must not serve generation-1 bytes.
	for _, d := range docs[10:] {
		feed <- d
	}
	for s.Generation() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("second swap did not land")
		}
		time.Sleep(time.Millisecond)
	}
	var r3 CountResponse
	b3 := getOK(t, u, &r3)
	if _, misses := s.CacheStats(); misses != 2 {
		t.Errorf("post-swap query should miss the fresh cache (misses=%d)", misses)
	}
	if bytes.Equal(b2, b3) {
		t.Errorf("post-swap response identical to pre-swap — stale cache served: %s", b3)
	}
	if r3.Generation != 2 || r3.Total != 20 || r3.Counts[0]+r3.Counts[1] != 20 {
		t.Errorf("post-swap response inconsistent: %+v", r3)
	}
	close(feed)
	waitIngestDone(t, s)
}

// TestCacheLRUEviction pins the eviction order with a capacity-2 cache.
func TestCacheLRUEviction(t *testing.T) {
	s := startServer(t, Config{Source: sliceSource(testDocs(12)), CacheSize: 2})
	waitIngestDone(t, s)
	base := "http://" + s.Addr()
	qa := base + "/v1/count?dim=" + url.QueryEscape("parity=even")
	qb := base + "/v1/count?dim=" + url.QueryEscape("parity=odd")
	qc := base + "/v1/count?dim=" + url.QueryEscape("outcome=service")

	var r CountResponse
	getOK(t, qa, &r) // miss, cache {a}
	getOK(t, qb, &r) // miss, cache {b,a}
	getOK(t, qa, &r) // hit, cache {a,b}
	getOK(t, qc, &r) // miss, evicts b, cache {c,a}
	getOK(t, qb, &r) // miss, evicts a, cache {b,c}
	getOK(t, qc, &r) // hit
	hits, misses := s.CacheStats()
	if hits != 2 || misses != 4 {
		t.Errorf("LRU accounting: hits=%d misses=%d, want 2/4", hits, misses)
	}
}

func TestLRUCacheUnit(t *testing.T) {
	cb := func(s string) *CachedBody { return &CachedBody{Plain: []byte(s)} }
	c := newLRUCache(2)
	c.put("a", cb("A"))
	c.put("b", cb("B"))
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted too early")
	}
	c.put("c", cb("C")) // evicts b (a was just used)
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if v, ok := c.get("a"); !ok || string(v.Plain) != "A" {
		t.Error("a lost")
	}
	if v, ok := c.get("c"); !ok || string(v.Plain) != "C" {
		t.Error("c lost")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
	// Overwrite keeps one entry.
	c.put("a", cb("A2"))
	if v, _ := c.get("a"); string(v.Plain) != "A2" {
		t.Error("overwrite did not take")
	}
	if c.len() != 2 {
		t.Errorf("len after overwrite = %d, want 2", c.len())
	}
	// Capacity 0 disables caching entirely.
	z := newLRUCache(0)
	z.put("k", cb("v"))
	if _, ok := z.get("k"); ok {
		t.Error("zero-capacity cache stored an entry")
	}
}
