package server

import (
	"net/http"
	"sync/atomic"
	"time"
)

// Serving SLO counters: per-endpoint request counts and a coarse
// latency histogram, surfaced on /statsz next to the cache counters so
// "how fast is the daemon" is answerable from the daemon itself, not
// only from an external load harness. The histogram is log-coarse on
// purpose — five boundaries spanning 100µs to 1s — because its job is
// SLO accounting (how many requests missed the bucket a target lives
// in), not precise quantiles; cmd/bivocload measures those.
//
// The same recorder fronts the federation coordinator's routes, and the
// wire format is additive: aggregating a fleet is an element-wise sum
// of counts and buckets (see fed's /statsz).

// SLOBucketBoundsUS are the histogram bucket upper bounds in
// microseconds; a sixth, unbounded bucket catches everything slower.
// Part of the /statsz wire contract.
var SLOBucketBoundsUS = []int64{100, 1000, 10000, 100000, 1000000}

const sloBuckets = 6 // len(SLOBucketBoundsUS) + 1 overflow bucket

// endpointSLO is one endpoint's counters. Atomics, not a mutex: the
// recorder sits on every request of a daemon whose per-request budget
// is tens of microseconds.
type endpointSLO struct {
	requests atomic.Uint64
	buckets  [sloBuckets]atomic.Uint64
}

func (e *endpointSLO) observe(d time.Duration) {
	e.requests.Add(1)
	us := d.Microseconds()
	for i, bound := range SLOBucketBoundsUS {
		if us <= bound {
			e.buckets[i].Add(1)
			return
		}
	}
	e.buckets[sloBuckets-1].Add(1)
}

// SLORecorder tracks serving counters for a fixed route set. Endpoints
// are registered by Wrap at mux-build time, so the map is read-only
// once requests flow and needs no lock.
type SLORecorder struct {
	endpoints map[string]*endpointSLO
}

// NewSLORecorder returns an empty recorder.
func NewSLORecorder() *SLORecorder {
	return &SLORecorder{endpoints: make(map[string]*endpointSLO)}
}

// Wrap registers name and returns h instrumented to count the request
// and bucket its wall latency. Call only while building the mux.
func (r *SLORecorder) Wrap(name string, h http.HandlerFunc) http.HandlerFunc {
	e, ok := r.endpoints[name]
	if !ok {
		e = &endpointSLO{}
		r.endpoints[name] = e
	}
	return func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		h(w, req)
		e.observe(time.Since(start))
	}
}

// EndpointServingJSON is one endpoint's serving counters on /statsz.
type EndpointServingJSON struct {
	Requests uint64 `json:"requests"`
	// LatencyBucketsUS are cumulative-free per-bucket counts aligned
	// with ServingJSON.BucketBoundsUS, plus one final overflow bucket.
	LatencyBucketsUS []uint64 `json:"latency_buckets_us"`
}

// ServingJSON is the serving section of /statsz.
type ServingJSON struct {
	BucketBoundsUS []int64                        `json:"bucket_bounds_us"`
	Endpoints      map[string]EndpointServingJSON `json:"endpoints"`
}

// Snapshot materializes the current counters in wire form.
func (r *SLORecorder) Snapshot() ServingJSON {
	out := ServingJSON{
		BucketBoundsUS: SLOBucketBoundsUS,
		Endpoints:      make(map[string]EndpointServingJSON, len(r.endpoints)),
	}
	for name, e := range r.endpoints {
		es := EndpointServingJSON{
			Requests:         e.requests.Load(),
			LatencyBucketsUS: make([]uint64, sloBuckets),
		}
		for i := range es.LatencyBucketsUS {
			es.LatencyBucketsUS[i] = e.buckets[i].Load()
		}
		out.Endpoints[name] = es
	}
	return out
}

// MergeServing element-wise sums src into dst (allocating dst's maps on
// first use) — the aggregation the federation coordinator applies
// across shard serving sections.
func MergeServing(dst *ServingJSON, src ServingJSON) {
	if dst.BucketBoundsUS == nil {
		dst.BucketBoundsUS = SLOBucketBoundsUS
	}
	if dst.Endpoints == nil {
		dst.Endpoints = make(map[string]EndpointServingJSON, len(src.Endpoints))
	}
	for name, es := range src.Endpoints {
		agg := dst.Endpoints[name]
		agg.Requests += es.Requests
		if agg.LatencyBucketsUS == nil {
			agg.LatencyBucketsUS = make([]uint64, len(es.LatencyBucketsUS))
		}
		for i := 0; i < len(agg.LatencyBucketsUS) && i < len(es.LatencyBucketsUS); i++ {
			agg.LatencyBucketsUS[i] += es.LatencyBucketsUS[i]
		}
		dst.Endpoints[name] = agg
	}
}
