package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"bivoc/internal/mining"
	"bivoc/internal/store"
)

// resumableSource is a persistence-aware sliceSource: it honors the
// `already` skip set the way core.NewServeServer's pipeline source does,
// and counts how many documents it actually emitted — the warm-restart
// tests assert that recovered documents never re-enter the pipeline.
func resumableSource(docs []mining.Document, emitted *atomic.Int64) DocSource {
	return func(ctx context.Context, already func(string) bool, emit func(mining.Document) error) error {
		for _, d := range docs {
			if already != nil && already(d.ID) {
				continue
			}
			if emitted != nil {
				emitted.Add(1)
			}
			if err := emit(d); err != nil {
				return err
			}
		}
		return nil
	}
}

// faultSource emits the first n documents and then fails — the
// fault-injection hook standing in for a daemon killed mid-stream. The
// accepted prefix is in the WAL; nothing was sealed.
var errInjected = errors.New("injected mid-ingest fault")

func faultSource(docs []mining.Document, n int) DocSource {
	return func(ctx context.Context, already func(string) bool, emit func(mining.Document) error) error {
		for _, d := range docs[:n] {
			if already != nil && already(d.ID) {
				continue
			}
			if err := emit(d); err != nil {
				return err
			}
		}
		return errInjected
	}
}

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// persistQueries is the endpoint battery the byte-identity tests fetch
// from every server incarnation: all six /v1 query endpoints plus
// /healthz (statsz is compared field-wise, not byte-wise, since cache
// counters and store paths legitimately differ across runs).
func persistQueries() []string {
	topic := mining.ConceptDim("topic", "billing")
	outcome := mining.FieldDim("outcome", "reservation")
	both := mining.AndDim(topic, outcome)
	return []string{
		"/v1/count?" + url.Values{"dim": {topic.Label(), outcome.Label(), both.Label()}}.Encode(),
		"/v1/associate?" + url.Values{
			"row": {topic.Label(), mining.ConceptDim("topic", "coverage").Label()},
			"col": {outcome.Label(), mining.FieldDim("outcome", "unbooked").Label()},
		}.Encode(),
		"/v1/relfreq?" + url.Values{"category": {"topic"}, "featured": {outcome.Label()}}.Encode(),
		"/v1/drilldown?" + url.Values{"row": {topic.Label()}, "col": {outcome.Label()}, "limit": {"5"}}.Encode(),
		"/v1/trend?" + url.Values{"dim": {topic.Label()}}.Encode(),
		"/v1/concepts?category=topic",
		"/v1/concepts?field=outcome",
		"/healthz",
	}
}

func fetchAll(t *testing.T, base string, queries []string) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte, len(queries))
	for _, q := range queries {
		status, body := get(t, base+q)
		if status != 200 {
			t.Fatalf("GET %s: status %d, body %s", q, status, body)
		}
		out[q] = body
	}
	return out
}

func compareAll(t *testing.T, label string, want, got map[string][]byte) {
	t.Helper()
	for q, w := range want {
		if g, ok := got[q]; !ok || !bytes.Equal(w, g) {
			t.Errorf("%s: %s drifted:\n want %s\n got  %s", label, q, w, g)
		}
	}
}

// TestPersistSealWritesSegmentAndResetsWAL covers the durability
// protocol of a clean run: every ingested document is WAL-appended, the
// seal writes a checksummed segment, and the WAL — now fully covered by
// the segment — is reset.
func TestPersistSealWritesSegmentAndResetsWAL(t *testing.T) {
	dir := t.TempDir()
	docs := testDocs(90)
	st := openStore(t, dir)
	s := startServer(t, Config{Source: resumableSource(docs, nil), Persist: st})
	waitIngestDone(t, s)

	if err := s.PersistErr(); err != nil {
		t.Fatalf("persistence error on a clean run: %v", err)
	}
	stats := st.Stats()
	if stats.SegmentGen != 1 || stats.SegmentDocs != len(docs) {
		t.Errorf("segment gen=%d docs=%d, want gen 1 over %d docs", stats.SegmentGen, stats.SegmentDocs, len(docs))
	}
	if stats.WALRecords != 0 {
		t.Errorf("WAL holds %d records after the seal, want 0 (reset)", stats.WALRecords)
	}
	if stats.LastSeal.IsZero() {
		t.Error("LastSeal not stamped by the seal-time segment write")
	}
	if fi, err := os.Stat(stats.SegmentPath); err != nil || fi.Size() != stats.SegmentBytes {
		t.Errorf("segment file mismatch: stat=%v err=%v, stats say %d bytes", fi, err, stats.SegmentBytes)
	}

	// The segment on disk must decode to the served index, byte for byte.
	ix, _, err := store.LoadSegment(stats.SegmentPath)
	if err != nil {
		t.Fatalf("loading the just-written segment: %v", err)
	}
	want := batchIndex(docs)
	if ix.Len() != want.Len() {
		t.Fatalf("segment decoded to %d docs, want %d", ix.Len(), want.Len())
	}
	for i := 0; i < ix.Len(); i++ {
		if fmt.Sprint(ix.Doc(i)) != fmt.Sprint(want.Doc(i)) {
			t.Fatalf("doc %d drifted through the segment round trip", i)
		}
	}
}

// TestPersistWarmRestartServesIdenticalBytes is the headline warm-start
// guarantee: restart over a sealed corpus, the source re-emits nothing
// (the skip set short-circuits it), the segment-loaded index is
// republished via the no-rebuild fast path, and every endpoint answers
// byte-identically to the original in-memory run.
func TestPersistWarmRestartServesIdenticalBytes(t *testing.T) {
	dir := t.TempDir()
	docs := testDocs(120)
	queries := persistQueries()

	st1 := openStore(t, dir)
	s1 := startServer(t, Config{Source: resumableSource(docs, nil), Persist: st1})
	waitIngestDone(t, s1)
	want := fetchAll(t, "http://"+s1.Addr(), queries)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("first shutdown: %v", err)
	}

	var emitted atomic.Int64
	st2 := openStore(t, dir)
	s2 := startServer(t, Config{Source: resumableSource(docs, &emitted), Persist: st2})

	// Before ingest has done anything, the recovered snapshot already
	// serves the full corpus at generation zero.
	if gen, n, _ := s2.SnapshotInfo(); gen != 0 || n != len(docs) {
		t.Errorf("pre-ingest recovered snapshot gen=%d docs=%d, want gen 0 over %d docs", gen, n, len(docs))
	}
	waitIngestDone(t, s2)

	if got := emitted.Load(); got != 0 {
		t.Errorf("warm restart re-emitted %d documents through the pipeline, want 0", got)
	}
	segDocs, walDocs, walDropped := s2.RecoveryInfo()
	if segDocs != len(docs) || walDocs != 0 || walDropped != 0 {
		t.Errorf("RecoveryInfo = (%d, %d, %d), want (%d, 0, 0)", segDocs, walDocs, walDropped, len(docs))
	}
	compareAll(t, "warm restart", want, fetchAll(t, "http://"+s2.Addr(), queries))

	// The fast path must not have written a redundant new segment.
	if stats := st2.Stats(); stats.SegmentGen != 1 {
		t.Errorf("warm restart advanced the segment to gen %d, want to keep gen 1", stats.SegmentGen)
	}
}

// TestPersistCrashMidIngestRecovers is the crash-recovery acceptance
// test: ingest dies mid-stream (fault injection), the accepted prefix
// survives in the WAL, and a restart with a healthy source completes the
// corpus — byte-identical to a run that never crashed. A third boot then
// recovers purely from the segment.
func TestPersistCrashMidIngestRecovers(t *testing.T) {
	const crashAt, total = 37, 110
	dir := t.TempDir()
	docs := testDocs(total)
	queries := persistQueries()

	// Control: same corpus, no persistence, no crash.
	ctl := startServer(t, Config{Source: resumableSource(docs, nil)})
	waitIngestDone(t, ctl)
	want := fetchAll(t, "http://"+ctl.Addr(), queries)

	// Run 1: dies after 37 documents. No seal, no segment — only the WAL.
	st1 := openStore(t, dir)
	s1 := startServer(t, Config{Source: faultSource(docs, crashAt), Persist: st1})
	waitIngestDone(t, s1)
	if err := s1.IngestErr(); !errors.Is(err, errInjected) {
		t.Fatalf("ingest error = %v, want the injected fault", err)
	}
	if _, _, sealed := s1.SnapshotInfo(); sealed {
		t.Fatal("crashed run published a sealed snapshot")
	}
	if stats := st1.Stats(); stats.WALRecords != crashAt || stats.SegmentGen != 0 {
		t.Fatalf("post-crash store: %d WAL records, segment gen %d; want %d and 0", stats.WALRecords, stats.SegmentGen, crashAt)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("post-crash shutdown: %v", err)
	}

	// Run 2: recovery replays the WAL tail, ingest resumes at document 37
	// and completes the stream; the seal writes the first segment.
	var emitted atomic.Int64
	st2 := openStore(t, dir)
	if rec := st2.Recovered(); rec.Index != nil || len(rec.WALDocs) != crashAt {
		t.Fatalf("recovery = segment %v + %d WAL docs, want nil + %d", rec.Index, len(rec.WALDocs), crashAt)
	}
	s2 := startServer(t, Config{Source: resumableSource(docs, &emitted), Persist: st2})
	waitIngestDone(t, s2)
	if got := emitted.Load(); got != total-crashAt {
		t.Errorf("resumed run re-emitted %d documents, want %d (the un-persisted suffix)", got, total-crashAt)
	}
	compareAll(t, "recovered run", want, fetchAll(t, "http://"+s2.Addr(), queries))
	if stats := st2.Stats(); stats.SegmentGen != 1 || stats.WALRecords != 0 {
		t.Errorf("post-recovery store: segment gen %d, %d WAL records; want 1 and 0", stats.SegmentGen, stats.WALRecords)
	}
	if err := s2.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}

	// Run 3: clean warm start from the segment written by run 2.
	st3 := openStore(t, dir)
	s3 := startServer(t, Config{Source: resumableSource(docs, nil), Persist: st3})
	waitIngestDone(t, s3)
	segDocs, walDocs, _ := s3.RecoveryInfo()
	if segDocs != total || walDocs != 0 {
		t.Errorf("third boot recovered (%d, %d), want (%d, 0)", segDocs, walDocs, total)
	}
	compareAll(t, "segment warm start", want, fetchAll(t, "http://"+s3.Addr(), queries))
}

// TestPersistStatszStoreSection pins the /statsz persistence section:
// absent without a store, and carrying segment/WAL/recovery state with
// one.
func TestPersistStatszStoreSection(t *testing.T) {
	plain := startServer(t, Config{Source: sliceSource(testDocs(10))})
	waitIngestDone(t, plain)
	var noStore StatszResponse
	getOK(t, "http://"+plain.Addr()+"/statsz", &noStore)
	if noStore.Store != nil {
		t.Errorf("statsz grew a store section without persistence: %+v", noStore.Store)
	}

	dir := t.TempDir()
	docs := testDocs(60)
	st := openStore(t, dir)
	s := startServer(t, Config{Source: resumableSource(docs, nil), Persist: st})
	waitIngestDone(t, s)
	var got StatszResponse
	getOK(t, "http://"+s.Addr()+"/statsz", &got)
	ss := got.Store
	if ss == nil {
		t.Fatal("statsz store section missing with persistence configured")
	}
	if ss.SegmentGeneration != 1 || ss.SegmentDocs != len(docs) {
		t.Errorf("store section segment gen=%d docs=%d, want 1/%d", ss.SegmentGeneration, ss.SegmentDocs, len(docs))
	}
	if ss.WALRecords != 0 || ss.WALBytes <= 0 {
		t.Errorf("store section WAL records=%d bytes=%d, want 0 records and a header-sized file", ss.WALRecords, ss.WALBytes)
	}
	if ss.LastSealUnixMS <= 0 {
		t.Errorf("store section last_seal_unix_ms = %d, want a recent wall time", ss.LastSealUnixMS)
	}
	if ss.SegmentPath == "" || filepath.Dir(ss.SegmentPath) != dir {
		t.Errorf("store section segment path %q not under %q", ss.SegmentPath, dir)
	}
	if ss.PersistError != "" {
		t.Errorf("store section reports persist error %q on a clean run", ss.PersistError)
	}
	if ss.RecoveredSegmentDocs != 0 || ss.RecoveredWALDocs != 0 {
		t.Errorf("cold start reports recovered docs (%d, %d)", ss.RecoveredSegmentDocs, ss.RecoveredWALDocs)
	}
}

// TestPersistWALAppendedBeforeSeal checks that in-flight documents are
// WAL-durable before any seal: a channel-fed source parks mid-stream and
// the WAL already holds everything accepted so far.
func TestPersistWALAppendedBeforeSeal(t *testing.T) {
	dir := t.TempDir()
	docs := testDocs(30)
	feed := make(chan mining.Document)
	src := func(ctx context.Context, _ func(string) bool, emit func(mining.Document) error) error {
		for d := range feed {
			if err := emit(d); err != nil {
				return err
			}
		}
		return nil
	}
	st := openStore(t, dir)
	s := startServer(t, Config{Source: src, Persist: st})
	for _, d := range docs[:12] {
		feed <- d
	}
	// The 12th append runs on the ingest goroutine after the channel send
	// returns; wait for it to land before asserting.
	deadline := time.Now().Add(5 * time.Second)
	for st.Stats().WALRecords < 12 {
		if time.Now().After(deadline) {
			t.Fatalf("WAL never reached 12 records (at %d)", st.Stats().WALRecords)
		}
		time.Sleep(time.Millisecond)
	}
	if stats := st.Stats(); stats.WALRecords != 12 || stats.SegmentGen != 0 {
		t.Errorf("mid-stream store: %d WAL records, segment gen %d; want 12 and 0", stats.WALRecords, stats.SegmentGen)
	}
	for _, d := range docs[12:] {
		feed <- d
	}
	close(feed)
	waitIngestDone(t, s)
	if stats := st.Stats(); stats.WALRecords != 0 || stats.SegmentDocs != len(docs) {
		t.Errorf("post-seal store: %d WAL records, %d segment docs; want 0 and %d", stats.WALRecords, stats.SegmentDocs, len(docs))
	}
}

// TestPersistErrorDegradesNotKills wires a store whose data directory
// vanishes mid-run: the WAL append fails, the daemon keeps serving from
// RAM, and /statsz surfaces the persistence error.
func TestPersistErrorDegradesNotKills(t *testing.T) {
	dir := t.TempDir()
	docs := testDocs(40)
	st := openStore(t, dir)
	// Close the store's WAL behind the server's back: every AppendWAL
	// from now on fails the way a dead disk would.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	s := startServer(t, Config{Source: resumableSource(docs, nil), Persist: st})
	waitIngestDone(t, s)

	if err := s.PersistErr(); err == nil {
		t.Fatal("no persistence error surfaced from a closed store")
	}
	// Serving is unharmed: the sealed snapshot still answers.
	var got CountResponse
	getOK(t, "http://"+s.Addr()+"/v1/count?"+url.Values{"dim": {"parity=even"}}.Encode(), &got)
	if !got.Sealed || got.Total != len(docs) {
		t.Errorf("degraded daemon served %+v, want sealed total %d", got, len(docs))
	}
	var stz StatszResponse
	getOK(t, "http://"+s.Addr()+"/statsz", &stz)
	if stz.Store == nil || stz.Store.PersistError == "" {
		t.Errorf("statsz does not surface the persistence error: %+v", stz.Store)
	}
}
