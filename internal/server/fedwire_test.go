package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"reflect"
	"strings"
	"testing"

	"bivoc/internal/mining"
)

// The federation wire suite: the generation header every response must
// carry, the structured error bodies the coordinator relays, and the
// /v1/marginals/* endpoints it merges across shards.

// getWithHeader fetches a URL and returns status, the generation
// header, and the body.
func getWithHeader(t *testing.T, rawurl string) (int, string, []byte) {
	t.Helper()
	resp, err := testClient.Get(rawurl)
	if err != nil {
		t.Fatalf("GET %s: %v", rawurl, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", rawurl, err)
	}
	return resp.StatusCode, resp.Header.Get(GenerationHeader), body
}

// TestGenerationHeaderOnEveryResponse pins the consistency-signal
// satellite: every response — query results, introspection, parse
// errors, even unknown routes — carries X-Bivoc-Generation, and on
// generation-bearing bodies the header agrees with the body.
func TestGenerationHeaderOnEveryResponse(t *testing.T) {
	docs := testDocs(60)
	s := startServer(t, Config{Source: sliceSource(docs)})
	waitIngestDone(t, s)
	base := "http://" + s.Addr()
	wantGen := fmt.Sprint(s.Generation())

	dim := url.QueryEscape("outcome=reservation")
	row := url.QueryEscape("billing[topic]")
	urls := []struct {
		path       string
		wantStatus int
	}{
		{"/v1/count?dim=" + dim, 200},
		{"/v1/associate?row=" + row + "&col=" + dim, 200},
		{"/v1/relfreq?category=topic&featured=" + dim, 200},
		{"/v1/drilldown?row=" + row + "&col=" + dim, 200},
		{"/v1/trend?dim=" + dim, 200},
		{"/v1/concepts?category=topic", 200},
		{"/v1/marginals/concepts?category=topic", 200},
		{"/v1/marginals/relfreq?category=topic&featured=" + dim, 200},
		{"/v1/marginals/assoc?row=" + row + "&col=" + dim, 200},
		{"/healthz", 200},
		{"/statsz", 200},
		{"/v1/count", 400},              // missing dim: parse error path
		{"/v1/count?dim=%5Bnope", 400},  // unparsable dimension
		{"/v1/definitely-not-a-route", 404},
	}
	for _, u := range urls {
		status, gen, body := getWithHeader(t, base+u.path)
		if status != u.wantStatus {
			t.Fatalf("GET %s: status %d, want %d (body %s)", u.path, status, u.wantStatus, body)
		}
		if gen != wantGen {
			t.Fatalf("GET %s: %s header = %q, want %q", u.path, GenerationHeader, gen, wantGen)
		}
		if status != http.StatusOK {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(body, &m); err != nil {
			t.Fatalf("GET %s: unmarshal: %v", u.path, err)
		}
		if g, ok := m["generation"].(float64); ok && fmt.Sprint(uint64(g)) != gen {
			t.Fatalf("GET %s: body generation %v, header %q", u.path, g, gen)
		}
	}

	// The cached (hit) path must carry the header too.
	_, gen, _ := getWithHeader(t, base+"/v1/count?dim="+dim)
	if gen != wantGen {
		t.Fatalf("cache-hit response %s header = %q, want %q", GenerationHeader, gen, wantGen)
	}
}

// TestErrorBodiesAreStructuredJSON pins the error-body satellite: every
// non-200 reply is {"error": "...", "status": N} with the HTTP status
// echoed in the body, so the coordinator can relay shard errors.
func TestErrorBodiesAreStructuredJSON(t *testing.T) {
	s := startServer(t, Config{Source: sliceSource(testDocs(20))})
	waitIngestDone(t, s)
	base := "http://" + s.Addr()

	cases := []struct {
		path       string
		wantStatus int
		wantSubstr string
	}{
		{"/v1/count", http.StatusBadRequest, "dim"},
		{"/v1/relfreq?featured=" + url.QueryEscape("outcome=reservation"), http.StatusBadRequest, "category"},
		{"/v1/trend?dim=a%5Bb%5D&dim=c%5Bd%5D", http.StatusBadRequest, "exactly one"},
		{"/v1/drilldown?row=a%5Bb%5D&col=c%5Bd%5D&limit=-2", http.StatusBadRequest, "limit"},
		{"/v1/marginals/relfreq?category=topic", http.StatusBadRequest, "featured"},
		{"/v1/marginals/assoc?row=a%5Bb%5D", http.StatusBadRequest, "col"},
		{"/v1/marginals/concepts", http.StatusBadRequest, "category"},
	}
	for _, c := range cases {
		resp, err := testClient.Get(base + c.path)
		if err != nil {
			t.Fatal(err)
		}
		var e ErrorResponse
		derr := json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if derr != nil {
			t.Fatalf("GET %s: error body is not JSON: %v", c.path, derr)
		}
		if resp.StatusCode != c.wantStatus {
			t.Fatalf("GET %s: status %d, want %d", c.path, resp.StatusCode, c.wantStatus)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("GET %s: Content-Type %q, want application/json", c.path, ct)
		}
		if e.Status != c.wantStatus {
			t.Fatalf("GET %s: body status %d, want %d (error %q)", c.path, e.Status, c.wantStatus, e.Error)
		}
		if !strings.Contains(e.Error, c.wantSubstr) {
			t.Fatalf("GET %s: error %q does not mention %q", c.path, e.Error, c.wantSubstr)
		}
	}
}

// TestMarginalEndpointsMatchDirectIndex pins the shard-side federation
// wire against direct mining calls over the same corpus: the integer
// marginals on the wire are exactly what the merge helpers expect, and
// finalizing them reproduces the float endpoints.
func TestMarginalEndpointsMatchDirectIndex(t *testing.T) {
	docs := testDocs(90)
	ix := batchIndex(docs)
	s := startServer(t, Config{Source: sliceSource(docs)})
	waitIngestDone(t, s)
	base := "http://" + s.Addr()

	featured, err := mining.ParseDim("outcome=reservation")
	if err != nil {
		t.Fatal(err)
	}
	rowDims := make([]mining.Dim, 0, 2)
	for _, l := range []string{"billing[topic]", "coverage[topic]"} {
		d, err := mining.ParseDim(l)
		if err != nil {
			t.Fatal(err)
		}
		rowDims = append(rowDims, d)
	}
	colDims := []mining.Dim{featured}

	var cdf ConceptDFResponse
	getOK(t, base+"/v1/marginals/concepts?category=topic", &cdf)
	if want := ix.ConceptDF("topic"); !reflect.DeepEqual(cdf.Concepts, want) {
		t.Fatalf("wire ConceptDF = %#v, direct %#v", cdf.Concepts, want)
	}

	var rf RelFreqMarginalsResponse
	getOK(t, base+"/v1/marginals/relfreq?category=topic&featured="+url.QueryEscape("outcome=reservation"), &rf)
	if want := ix.RelFreqMarginals("topic", featured); !reflect.DeepEqual(rf.Marginals, want) {
		t.Fatalf("wire RelFreqMarginals = %#v, direct %#v", rf.Marginals, want)
	}
	// Finalizing the wire marginals reproduces the float endpoint.
	var rel RelFreqResponse
	getOK(t, base+"/v1/relfreq?category=topic&featured="+url.QueryEscape("outcome=reservation"), &rel)
	fin := mining.FinalizeRelFreq(rf.Marginals)
	if len(fin) != len(rel.Rows) {
		t.Fatalf("finalized relfreq has %d rows, endpoint %d", len(fin), len(rel.Rows))
	}
	for i, r := range fin {
		got := rel.Rows[i]
		if r.Concept != got.Concept || r.InSubset != got.InSubset || r.Ratio != got.Ratio {
			t.Fatalf("finalized row %d = %+v, endpoint %+v", i, r, got)
		}
	}

	var am AssocMarginalsResponse
	getOK(t, base+"/v1/marginals/assoc?row="+url.QueryEscape("billing[topic]")+
		"&row="+url.QueryEscape("coverage[topic]")+"&col="+url.QueryEscape("outcome=reservation"), &am)
	if want := ix.AssocMarginals(rowDims, colDims); !reflect.DeepEqual(am.Marginals, want) {
		t.Fatalf("wire AssocMarginals = %#v, direct %#v", am.Marginals, want)
	}
	// Finalizing the wire marginals reproduces the monolithic table.
	tbl := mining.FinalizeAssoc(rowDims, colDims, 0.95, 4, am.Marginals)
	want := ix.AssociateN(rowDims, colDims, 0.95, 1)
	if !reflect.DeepEqual(tbl, want) {
		t.Fatalf("FinalizeAssoc(wire marginals) diverges from direct AssociateN")
	}
}
