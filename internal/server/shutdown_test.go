package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bivoc/internal/mining"
)

// TestGracefulShutdownDrainsInFlight proves the shutdown contract: once
// Shutdown is called, requests already accepted run to completion (no
// request dropped mid-flight), the ingest loop stops cleanly, and
// Shutdown returns without error. handlerDelay pads every handler so
// requests are genuinely in flight when the drain begins.
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	// A source that trickles forever until cancelled: shutdown must stop
	// it via context, not by exhausting it.
	src := func(ctx context.Context, _ func(string) bool, emit func(mining.Document) error) error {
		for i := 0; ; i++ {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(time.Millisecond):
			}
			if err := emit(testDoc(i)); err != nil {
				return err
			}
		}
	}
	s, err := New(Config{Source: src, SwapEvery: 20})
	if err != nil {
		t.Fatal(err)
	}
	s.handlerDelay = 20 * time.Millisecond
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	u := "http://" + s.Addr() + "/v1/count?dim=parity%3Deven"

	const clients = 8
	var (
		shutdownStarted atomic.Bool
		shutdownAt      time.Time
		stop            = make(chan struct{})
		wg              sync.WaitGroup
		mu              sync.Mutex
		drained         int // requests started before Shutdown, finished after
		failures        []error
	)
	client := testClient
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				began := time.Now()
				resp, err := client.Get(u)
				if err != nil {
					// A refused connection is only legal once the drain has
					// begun (checked after the failure, so a request racing
					// the listener close is not misattributed).
					if !shutdownStarted.Load() {
						mu.Lock()
						failures = append(failures, fmt.Errorf("pre-shutdown request failed: %w", err))
						mu.Unlock()
					}
					return
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil || resp.StatusCode != http.StatusOK {
					// An accepted request must complete with a full, valid
					// response even when the drain races it.
					mu.Lock()
					failures = append(failures, fmt.Errorf("request dropped mid-flight: status=%d err=%v", resp.StatusCode, rerr))
					mu.Unlock()
					return
				}
				var r CountResponse
				if err := json.Unmarshal(body, &r); err != nil {
					mu.Lock()
					failures = append(failures, fmt.Errorf("truncated body %q: %v", body, err))
					mu.Unlock()
					return
				}
				if shutdownStarted.Load() && began.Before(shutdownAt) {
					mu.Lock()
					drained++
					mu.Unlock()
				}
			}
		}()
	}

	// Let traffic and a few swaps build up, then pull the plug while
	// handlers sleep inside their 20ms delay.
	time.Sleep(150 * time.Millisecond)
	shutdownAt = time.Now()
	shutdownStarted.Store(true)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("graceful shutdown returned error: %v", err)
	}
	close(stop)
	wg.Wait()

	for _, f := range failures {
		t.Error(f)
	}
	if drained == 0 {
		t.Error("no request straddled the shutdown — drain path not exercised; raise handlerDelay")
	}
	if err := s.IngestErr(); err != nil {
		t.Errorf("shutdown-initiated cancellation surfaced as ingest error: %v", err)
	}
	if _, _, sealed := s.SnapshotInfo(); sealed {
		t.Error("cancelled-mid-stream ingest must not publish a sealed snapshot")
	}
	t.Logf("%d in-flight requests drained across shutdown", drained)
}

// TestRunStopsOnContextCancel covers the daemon entry point: Run blocks
// until the context is cancelled, then drains and returns nil.
func TestRunStopsOnContextCancel(t *testing.T) {
	s, err := New(Config{Source: sliceSource(testDocs(30))})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()

	// Wait until it serves, confirm liveness, then cancel.
	deadline := time.Now().Add(5 * time.Second)
	for s.Addr() == "" {
		if time.Now().After(deadline) {
			t.Fatal("Run never started listening")
		}
		time.Sleep(time.Millisecond)
	}
	waitIngestDone(t, s)
	var h HealthResponse
	getOK(t, "http://"+s.Addr()+"/healthz", &h)
	if h.Status != "ok" {
		t.Fatalf("healthz status %q before cancel", h.Status)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Run returned %v after context cancel", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after context cancel")
	}
	if _, err := testClient.Get("http://" + s.Addr() + "/healthz"); err == nil {
		t.Error("listener still accepting after Run returned")
	}
}
