package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bivoc/internal/mining"
)

// TestConcurrentQueriesDuringSwaps is the torn-read suite: N client
// goroutines hammer /v1/count while the ingest loop publishes a new
// snapshot every SwapEvery documents. Every document carries exactly
// one of parity=even / parity=odd, so for ANY self-consistent snapshot
// counts[even] + counts[odd] == total. A torn read — mixing data from
// two generations — breaks that identity. We also check each client
// observes monotonically non-decreasing generations, and that no
// response claims a generation newer than the server has published
// (a cache serving stale bytes under a bumped generation would).
//
// Run under -race via `make check` / `go test -race`.
func TestConcurrentQueriesDuringSwaps(t *testing.T) {
	const (
		totalDocs = 1000
		swapEvery = 25
		clients   = 8
	)
	docs := testDocs(totalDocs)
	// Trickle the docs so the swaps interleave with queries instead of
	// finishing before the clients ramp up.
	src := func(ctx context.Context, _ func(string) bool, emit func(mining.Document) error) error {
		for _, d := range docs {
			if err := emit(d); err != nil {
				return err
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(50 * time.Microsecond):
			}
		}
		return nil
	}
	s := startServer(t, Config{Source: src, SwapEvery: swapEvery})
	u := "http://" + s.Addr() + "/v1/count?" +
		url.Values{"dim": {"parity=even", "parity=odd"}}.Encode()

	client := testClient
	var queries atomic.Uint64
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastGen uint64
			for {
				if err := checkParityQuery(client, u, s, &lastGen); err != nil {
					errs <- err
					return
				}
				queries.Add(1)
				select {
				case <-s.IngestDone():
					// One last query against the sealed snapshot.
					if err := checkParityQuery(client, u, s, &lastGen); err != nil {
						errs <- err
					}
					queries.Add(1)
					return
				default:
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Generation(); got < totalDocs/swapEvery {
		t.Errorf("only %d generations published, want at least %d", got, totalDocs/swapEvery)
	}
	t.Logf("%d queries across %d clients over %d generations", queries.Load(), clients, s.Generation())
}

// checkParityQuery issues one parity count query and verifies the
// self-consistency invariants against the server's published state.
func checkParityQuery(client *http.Client, u string, s *Server, lastGen *uint64) error {
	preGen := s.Generation()
	resp, err := client.Get(u)
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	var r CountResponse
	if err := json.Unmarshal(body, &r); err != nil {
		return fmt.Errorf("unmarshal %s: %v", body, err)
	}
	postGen := s.Generation()
	if len(r.Counts) != 2 || r.Counts[0]+r.Counts[1] != r.Total {
		return fmt.Errorf("torn read: even=%v total=%d at gen %d", r.Counts, r.Total, r.Generation)
	}
	// Each generation holds a multiple of swapEvery docs until the seal,
	// and parity alternates, so within a snapshot the split is even.
	if diff := r.Counts[0] - r.Counts[1]; diff < 0 || diff > 1 {
		return fmt.Errorf("parity split impossible for any prefix: %v", r.Counts)
	}
	if r.Generation < preGen {
		return fmt.Errorf("response generation %d older than %d observed before the request", r.Generation, preGen)
	}
	if r.Generation > postGen {
		return fmt.Errorf("response generation %d newer than published %d", r.Generation, postGen)
	}
	if r.Generation < *lastGen {
		return fmt.Errorf("generation went backwards for one client: %d after %d", r.Generation, *lastGen)
	}
	*lastGen = r.Generation
	return nil
}

// TestCacheNeverServesStaleGeneration interleaves the same hot query
// with swaps and asserts the reported total always matches the
// reported generation's exact document count — if a cache hit ever
// crossed a swap, the (generation, total) pair would disagree.
func TestCacheNeverServesStaleGeneration(t *testing.T) {
	const swapEvery = 10
	feed := make(chan mining.Document)
	src := func(ctx context.Context, _ func(string) bool, emit func(mining.Document) error) error {
		for d := range feed {
			if err := emit(d); err != nil {
				return err
			}
		}
		return nil
	}
	s := startServer(t, Config{Source: src, SwapEvery: swapEvery})
	u := "http://" + s.Addr() + "/v1/count?" +
		url.Values{"dim": {"parity=even", "parity=odd"}}.Encode()
	docs := testDocs(100)

	var r CountResponse
	for batch := 0; batch < 10; batch++ {
		for _, d := range docs[batch*swapEvery : (batch+1)*swapEvery] {
			feed <- d
		}
		deadline := time.Now().Add(5 * time.Second)
		for s.Generation() < uint64(batch+1) {
			if time.Now().After(deadline) {
				t.Fatalf("swap %d did not land", batch+1)
			}
			time.Sleep(time.Millisecond)
		}
		// Query the same URL several times per generation: first miss
		// fills the cache, the rest must hit without going stale.
		for q := 0; q < 3; q++ {
			getOK(t, u, &r)
			wantTotal := int(r.Generation) * swapEvery
			if r.Total != wantTotal || r.Counts[0]+r.Counts[1] != wantTotal {
				t.Fatalf("generation %d reports total=%d counts=%v, want %d — stale cache",
					r.Generation, r.Total, r.Counts, wantTotal)
			}
		}
	}
	close(feed)
	waitIngestDone(t, s)
	hits, misses := s.CacheStats()
	if hits == 0 {
		t.Error("no cache hits recorded — the staleness check never exercised the cache")
	}
	// Exactly one miss per generation queried (3 queries each).
	if misses < 10 {
		t.Errorf("misses=%d, want at least one per generation", misses)
	}
	t.Logf("cache: %d hits, %d misses over %d generations", hits, misses, s.Generation())
}
