package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"net/url"
	"reflect"
	"testing"
	"time"

	"bivoc/internal/mining"
)

// segQueries exercises every /v1 endpoint family (both /v1/concepts
// modes included) against the testDoc corpus.
func segQueries() []string {
	return []string{
		"/v1/count?" + url.Values{"dim": {"parity=even", "parity=odd", "topic", "austin[place]"}}.Encode(),
		"/v1/associate?" + url.Values{"row": {"billing[topic]", "coverage[topic]", "roadside[topic]"}, "col": {"outcome=reservation", "outcome=unbooked", "outcome=service"}}.Encode(),
		"/v1/associate?" + url.Values{"row": {"topic"}, "col": {"parity=odd"}, "confidence": {"0.99"}}.Encode(),
		"/v1/relfreq?" + url.Values{"category": {"topic"}, "featured": {"outcome=reservation"}}.Encode(),
		"/v1/drilldown?" + url.Values{"row": {"austin[place]"}, "col": {"outcome=service"}}.Encode(),
		"/v1/trend?" + url.Values{"dim": {"billing[topic]"}}.Encode(),
		"/v1/concepts?category=topic",
		"/v1/concepts?field=outcome",
	}
}

// normalizeBody strips the snapshot-identity fields (generation,
// sealed) so servers that reached the same corpus through different
// swap cadences can be compared; everything else — including float
// formatting, which Go re-renders identically through a decode/encode
// round trip — must match.
func normalizeBody(t *testing.T, body []byte) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("unmarshal %s: %v", body, err)
	}
	delete(m, "generation")
	delete(m, "sealed")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSegmentedServerMatchesMonolithic is the serving-layer half of the
// tentpole oracle: the same corpus ingested under swap cadences that
// leave 1, 2 and 8 live segments answers every endpoint identically to
// a single-segment (monolithic) server, with compaction disabled so the
// segment counts are exact.
func TestSegmentedServerMatchesMonolithic(t *testing.T) {
	const total = 80
	docs := testDocs(total)

	mono := startServer(t, Config{Source: sliceSource(docs), MaxSegments: -1})
	waitIngestDone(t, mono)
	want := make(map[string][]byte)
	for _, q := range segQueries() {
		_, body := get(t, "http://"+mono.Addr()+q)
		want[q] = normalizeBody(t, body)
	}

	for _, segs := range []int{1, 2, 8} {
		segs := segs
		t.Run(fmt.Sprintf("segments-%d", segs), func(t *testing.T) {
			s := startServer(t, Config{Source: sliceSource(docs), SwapEvery: total / segs, MaxSegments: -1})
			waitIngestDone(t, s)
			segDocs, compactions := s.SegmentInfo()
			if len(segDocs) != segs || compactions != 0 {
				t.Fatalf("segment layout = %v (compactions %d), want %d segments, none compacted", segDocs, compactions, segs)
			}
			for _, q := range segQueries() {
				status, body := get(t, "http://"+s.Addr()+q)
				if status != 200 {
					t.Fatalf("GET %s: status %d: %s", q, status, body)
				}
				if got := normalizeBody(t, body); !reflect.DeepEqual(got, want[q]) {
					t.Errorf("GET %s diverges from monolithic:\n got %s\nwant %s", q, got, want[q])
				}
			}
		})
	}
}

// TestCompactionBoundsSegmentsAndPreservesAnswers pins the background
// compactor: past MaxSegments the segment count comes back under the
// bound, the served generation does not move (compaction is invisible),
// and every endpoint still answers byte-identically to the monolithic
// baseline.
func TestCompactionBoundsSegmentsAndPreservesAnswers(t *testing.T) {
	const total, maxSegs = 80, 3
	docs := testDocs(total)

	mono := startServer(t, Config{Source: sliceSource(docs), MaxSegments: -1})
	waitIngestDone(t, mono)

	s := startServer(t, Config{Source: sliceSource(docs), SwapEvery: 10, MaxSegments: maxSegs})
	waitIngestDone(t, s)
	genAfterSeal := s.Generation()

	deadline := time.Now().Add(5 * time.Second)
	for {
		segDocs, compactions := s.SegmentInfo()
		if len(segDocs) <= maxSegs && compactions > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("compactor never bounded the segment list: %v (compactions %d)", segDocs, compactions)
		}
		time.Sleep(time.Millisecond)
	}
	if gen := s.Generation(); gen != genAfterSeal {
		t.Errorf("compaction moved the generation %d → %d; it must republish in place", genAfterSeal, gen)
	}
	docsTotal := 0
	segDocs, _ := s.SegmentInfo()
	for _, n := range segDocs {
		docsTotal += n
	}
	if docsTotal != total {
		t.Errorf("compacted segments hold %d docs (%v), want %d", docsTotal, segDocs, total)
	}
	for _, q := range segQueries() {
		_, monoBody := get(t, "http://"+mono.Addr()+q)
		_, segBody := get(t, "http://"+s.Addr()+q)
		if !reflect.DeepEqual(normalizeBody(t, segBody), normalizeBody(t, monoBody)) {
			t.Errorf("GET %s diverges after compaction", q)
		}
	}

	var statsz StatszResponse
	getOK(t, "http://"+s.Addr()+"/statsz", &statsz)
	if statsz.Segments.Count != len(segDocs) || statsz.Segments.MaxSegments != maxSegs || statsz.Segments.Compactions == 0 {
		t.Errorf("statsz segments section = %+v, want count %d under bound %d with compactions > 0",
			statsz.Segments, len(segDocs), maxSegs)
	}
}

// TestWarmRestartSwapEveryCadence is the satellite-1 regression: after
// a warm restart over a persisted corpus, SwapEvery must count newly
// ingested documents only. The old accumulator counted recovered docs
// too, so a restart over 50 durable docs with SwapEvery=20 would fire
// at the 10th new doc (60 % 20 == 0) instead of the 20th.
func TestWarmRestartSwapEveryCadence(t *testing.T) {
	dir := t.TempDir()
	docs := testDocs(70)

	st1 := openStore(t, dir)
	s1 := startServer(t, Config{Source: sliceSource(docs[:50]), Persist: st1})
	waitIngestDone(t, s1)
	shutdownNow(t, s1)

	feed := make(chan mining.Document)
	src := func(ctx context.Context, already func(string) bool, emit func(mining.Document) error) error {
		for d := range feed {
			if already(d.ID) {
				continue
			}
			if err := emit(d); err != nil {
				return err
			}
		}
		return nil
	}
	st2 := openStore(t, dir)
	s2 := startServer(t, Config{Source: src, SwapEvery: 20, Persist: st2})
	if gen, n, _ := s2.SnapshotInfo(); gen != 0 || n != 50 {
		t.Fatalf("warm snapshot = gen %d with %d docs, want gen 0 with 50", gen, n)
	}

	// 10 new docs (plus replays of recovered ones, which must not count
	// either): under the old len(docs) keying this lands on 60 % 20 == 0
	// and fires a spurious swap.
	for _, d := range docs[40:60] {
		feed <- d
	}
	time.Sleep(50 * time.Millisecond) // a wrong swap would land synchronously; give it slack
	if gen := s2.Generation(); gen != 0 {
		t.Fatalf("swap fired after 10 new docs (gen %d): cadence is counting recovered documents", gen)
	}

	// 10 more makes 20 newly ingested — now the cadence fires.
	for _, d := range docs[60:70] {
		feed <- d
	}
	deadline := time.Now().Add(5 * time.Second)
	for s2.Generation() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("swap did not fire at 20 newly ingested docs")
		}
		time.Sleep(time.Millisecond)
	}
	if gen, n, _ := s2.SnapshotInfo(); gen != 1 || n != 70 {
		t.Fatalf("post-swap snapshot = gen %d with %d docs, want gen 1 with 70", gen, n)
	}
	close(feed)
	waitIngestDone(t, s2)
}

// shutdownNow shuts a startServer-started server down immediately (the
// registered cleanup then becomes a harmless double-shutdown error,
// so do it manually and unregister via fresh Shutdown semantics).
func shutdownNow(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestHealthzDegradedOnPersistFailure is the satellite-2 regression: a
// persistence failure must flip /healthz to "degraded" with the error
// in the body — the daemon stays up (200) but operators see that
// durability is gone.
func TestHealthzDegradedOnPersistFailure(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Every AppendWAL on the closed store fails, setting PersistErr.
	s := startServer(t, Config{Source: sliceSource(testDocs(10)), Persist: st})
	waitIngestDone(t, s)
	if s.PersistErr() == nil {
		t.Fatal("closed store did not surface a persistence error")
	}
	var health HealthResponse
	status, body := get(t, "http://"+s.Addr()+"/healthz")
	if status != 200 {
		t.Fatalf("/healthz status %d, want 200 (degraded, not dead)", status)
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" || health.PersistError == "" {
		t.Errorf("/healthz = %+v, want status degraded with persist_error set", health)
	}
}

// TestRespondCounterReconciliation is the satellite-3 regression:
// every request through respond is exactly one hit or one miss — error
// responses included — and compute failures are 500 unless marked as
// the caller's fault with badQuery (then 400).
func TestRespondCounterReconciliation(t *testing.T) {
	s, err := New(Config{Source: sliceSource(nil)})
	if err != nil {
		t.Fatal(err)
	}
	requests := 0
	do := func(key string, compute func(sn *snapshot) (any, error)) int {
		rec := httptest.NewRecorder()
		s.respond(rec, nil, key, compute)
		requests++
		return rec.Code
	}

	if code := do("ok", func(sn *snapshot) (any, error) { return map[string]int{"x": 1}, nil }); code != 200 {
		t.Fatalf("successful compute: status %d", code)
	}
	if code := do("ok", func(sn *snapshot) (any, error) { return map[string]int{"x": 1}, nil }); code != 200 {
		t.Fatalf("cached compute: status %d", code)
	}
	if code := do("boom", func(sn *snapshot) (any, error) { return nil, errors.New("index wedged") }); code != 500 {
		t.Errorf("internal compute error: status %d, want 500", code)
	}
	if code := do("bad", func(sn *snapshot) (any, error) { return nil, badQuery(errors.New("no such dimension")) }); code != 400 {
		t.Errorf("bad-query compute error: status %d, want 400", code)
	}
	// A failed compute must not poison the cache: the retry recomputes
	// (another miss), and a subsequent success is cacheable.
	if code := do("boom", func(sn *snapshot) (any, error) { return map[string]int{"x": 2}, nil }); code != 200 {
		t.Errorf("retry after error: status %d", code)
	}
	hits, misses := s.CacheStats()
	if int(hits+misses) != requests {
		t.Errorf("hits(%d)+misses(%d) = %d, want %d: every request is exactly one hit or miss", hits, misses, hits+misses, requests)
	}
	if hits != 1 || misses != 4 {
		t.Errorf("hits=%d misses=%d, want 1/4 (one cached repeat; errors count as misses)", hits, misses)
	}
}
