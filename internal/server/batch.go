package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// POST /v1/batch — many /v1 queries in one request, answered from one
// snapshot load so the whole batch is generation-consistent. The point
// is transport amortization: BENCH_server pins HTTP+JSON framing as the
// dominant per-request cost, so a dashboard issuing N small queries
// pays it once instead of N times. Every sub-query runs through the
// same prepare* function as its GET endpoint, hitting the same
// snapshot-LRU entries under the same canonical keys — a dim queried
// via batch and via /v1/count shares one cache line by construction.

// MaxBatchQueries bounds the sub-queries of one /v1/batch request.
const MaxBatchQueries = 1000

// MaxBatchBytes bounds the /v1/batch request body (1 MiB); the
// federation coordinator applies the same bound.
const MaxBatchBytes = 1 << 20

// BatchQuery is one sub-query of a /v1/batch request: the /v1 endpoint
// name without the prefix ("count", "associate", "relfreq",
// "drilldown", "trend", "concepts", "marginals/...") plus the query
// parameters that endpoint takes as a GET.
type BatchQuery struct {
	Endpoint string              `json:"endpoint"`
	Params   map[string][]string `json:"params"`
}

// BatchRequest is the /v1/batch request body.
type BatchRequest struct {
	Queries []BatchQuery `json:"queries"`
}

// BatchResult is one sub-query's outcome: the HTTP status the GET
// endpoint would have answered with, and the exact body it would have
// sent (an ErrorResponse when status is not 200).
type BatchResult struct {
	Status int             `json:"status"`
	Body   json.RawMessage `json:"body"`
}

// BatchResponse is the /v1/batch envelope. Generation and Sealed
// describe the single snapshot every sub-result was computed from.
type BatchResponse struct {
	Generation uint64        `json:"generation"`
	Sealed     bool          `json:"sealed"`
	Results    []BatchResult `json:"results"`
}

// errorRaw renders the body a failed sub-query contributes to the batch
// envelope — the ErrorResponse bytes writeErr would send, minus the
// trailing newline the envelope does not carry per-result.
func errorRaw(status int, err error) json.RawMessage {
	body, _ := json.Marshal(ErrorResponse{Error: err.Error(), Status: status})
	return body
}

// runBatchQuery answers one sub-query from sn, reusing the snapshot
// cache under the canonical key. Counter contract matches respond:
// exactly one hit or one miss per dispatched sub-query.
func (s *Server) runBatchQuery(sn *snapshot, bq BatchQuery) BatchResult {
	prep, ok := batchEndpoints[bq.Endpoint]
	if !ok {
		return BatchResult{
			Status: http.StatusBadRequest,
			Body:   errorRaw(http.StatusBadRequest, fmt.Errorf("unknown batch endpoint %q", bq.Endpoint)),
		}
	}
	pq, err := prep(s, url.Values(bq.Params))
	if err != nil {
		return BatchResult{Status: http.StatusBadRequest, Body: errorRaw(http.StatusBadRequest, err)}
	}
	if cb, ok := sn.cache.get(pq.key); ok {
		s.hits.Add(1)
		return BatchResult{Status: http.StatusOK, Body: bytes.TrimSuffix(cb.Plain, []byte("\n"))}
	}
	s.misses.Add(1)
	v, err := pq.compute(sn)
	if err != nil {
		status := http.StatusInternalServerError
		var bqe badQueryError
		if errors.As(err, &bqe) {
			status = http.StatusBadRequest
		}
		return BatchResult{Status: status, Body: errorRaw(status, err)}
	}
	body, err := marshalBody(v)
	if err != nil {
		return BatchResult{Status: http.StatusInternalServerError, Body: errorRaw(http.StatusInternalServerError, err)}
	}
	sn.cache.put(pq.key, &CachedBody{Plain: body})
	return BatchResult{Status: http.StatusOK, Body: bytes.TrimSuffix(body, []byte("\n"))}
}

// handleBatch answers POST /v1/batch. The envelope is 200 whenever the
// request itself parses; per-sub-query failures are carried inside
// Results so one bad dimension does not void its siblings.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if s.handlerDelay > 0 {
		time.Sleep(s.handlerDelay)
	}
	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxBatchBytes))
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding batch request: %w", err))
		return
	}
	if len(req.Queries) == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("batch request has no queries"))
		return
	}
	if len(req.Queries) > MaxBatchQueries {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("batch request has %d queries, limit is %d", len(req.Queries), MaxBatchQueries))
		return
	}
	sn := s.snap.Load()
	w.Header().Set(GenerationHeader, strconv.FormatUint(sn.gen, 10))
	resp := BatchResponse{
		Generation: sn.gen,
		Sealed:     sn.sealed,
		Results:    make([]BatchResult, len(req.Queries)),
	}
	for i, bq := range req.Queries {
		resp.Results[i] = s.runBatchQuery(sn, bq)
	}
	body, err := marshalBody(resp)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	WriteJSONBody(w, r, http.StatusOK, &CachedBody{Plain: body})
}
