package server

import (
	"container/list"
	"sync"
)

// lruCache memoizes marshaled query responses for ONE index snapshot.
// Each snapshot owns its own cache, so swapping the snapshot pointer
// invalidates every cached entry wholesale — there is no way for a hit
// to serve bytes computed over a different generation, because the
// cache a handler consults is reached *through* the snapshot it is
// answering from.
//
// Values are the final response bodies (*CachedBody), so a cached
// reply is byte-identical to the uncached one by construction — and the
// gzip form, derived lazily inside the CachedBody, is compressed at
// most once per cached body.
type lruCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type lruEntry struct {
	key  string
	body *CachedBody
}

// newLRUCache returns a cache holding at most capacity entries
// (capacity < 1 disables caching: every get misses, puts are dropped).
func newLRUCache(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// get returns the cached body for key and marks it most recently used.
func (c *lruCache) get(key string) (*CachedBody, bool) {
	if c.cap < 1 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).body, true
}

// put stores body under key, evicting the least recently used entry
// when the cache is full.
func (c *lruCache) put(key string, body *CachedBody) {
	if c.cap < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).body = body
		return
	}
	c.m[key] = c.ll.PushFront(&lruEntry{key: key, body: body})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*lruEntry).key)
	}
}

// len returns the number of cached entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
