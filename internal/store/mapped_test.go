package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"bivoc/internal/mining"
)

// writeSegmentFile encodes ix and writes it where a test wants it.
func writeSegFile(t *testing.T, path string, ix *mining.Index) []byte {
	t.Helper()
	data := EncodeSegment(ix.Export())
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return data
}

// TestMappedSegmentEquivalence pins the tentpole invariant at the store
// layer: an index served from a mapped segment answers every query —
// fast path and naive oracle — exactly as the materialized index the
// segment was written from, and re-exports to the identical bytes.
func TestMappedSegmentEquivalence(t *testing.T) {
	ix := sealedIndex(corpus(200, 21))
	path := filepath.Join(t.TempDir(), "seg.seg")
	data := writeSegFile(t, path, ix)

	m, err := OpenMapped(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	mapped := mining.FromBacking(m)
	mapped.Prepare()

	indexQueriesEqual(t, mapped, ix)
	if err := m.Err(); err != nil {
		t.Fatalf("sticky error after clean queries: %v", err)
	}

	// Per-document accessors agree with the materialized docs.
	for i := 0; i < ix.Len(); i++ {
		if !reflect.DeepEqual(mapped.Doc(i), ix.Doc(i)) {
			t.Fatalf("Doc(%d) diverges", i)
		}
		if mapped.DocID(i) != ix.Doc(i).ID || m.DocTime(i) != ix.Doc(i).Time {
			t.Fatalf("DocID/DocTime(%d) diverge", i)
		}
	}

	// Export over the mapped backing re-encodes byte-identically: a
	// compaction that re-encodes a mapped segment loses nothing.
	re := EncodeSegment(mapped.Export())
	if !reflect.DeepEqual(re, data) {
		t.Fatal("mapped re-encode is not byte-identical to the original segment")
	}
}

// TestMappedOracleEquivalence runs the mapped index against the naive
// set-algebra oracle — the same equivalence discipline the mining
// package pins for the materialized backing.
func TestMappedOracleEquivalence(t *testing.T) {
	ix := sealedIndex(corpus(150, 22))
	path := filepath.Join(t.TempDir(), "seg.seg")
	writeSegFile(t, path, ix)
	m, err := OpenMapped(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	mapped := mining.FromBacking(m)
	mapped.Prepare()

	weak := mining.ConceptDim("intent", "weak start")
	res := mining.FieldDim("outcome", "reservation")
	conj := mining.AndDim(weak, res)
	mining.UseNaiveSets = true
	naiveCount := mapped.Count(conj)
	naiveRel := mapped.RelativeFrequency("discount", conj)
	mining.UseNaiveSets = false
	if got := mapped.Count(conj); got != naiveCount {
		t.Fatalf("mapped fast Count %d, naive %d", got, naiveCount)
	}
	if got := mapped.RelativeFrequency("discount", conj); !reflect.DeepEqual(got, naiveRel) {
		t.Fatal("mapped fast RelativeFrequency diverges from naive")
	}
}

// TestOpenMappedRejectsDamage mirrors TestSegmentDecodeRejectsDamage
// for the mapped open path: truncations and bit flips anywhere die at
// the envelope, before any lazy read could serve them.
func TestOpenMappedRejectsDamage(t *testing.T) {
	dir := t.TempDir()
	good := EncodeSegment(sealedIndex(corpus(60, 23)).Export())
	check := func(name string, data []byte) {
		t.Helper()
		path := filepath.Join(dir, name+".seg")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if m, err := OpenMapped(path, nil); err == nil {
			m.Close()
			t.Errorf("%s: mapped open accepted damaged segment", name)
		} else if !IsCorrupt(err) {
			t.Errorf("%s: error does not satisfy IsCorrupt: %v", name, err)
		}
	}
	check("empty", nil)
	check("magic-only", good[:4])
	check("truncated-half", good[:len(good)/2])
	check("truncated-one", good[:len(good)-1])
	for _, off := range []int{0, 5, segHeaderLen + 3, len(good) / 2, len(good) - 5} {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x40
		check(fmt.Sprintf("flip-%d", off), bad)
	}
}

// TestOpenMappedRejectsLegacy builds a version-1 file (no directory)
// out of a version-2 segment's body; the eager decoder must accept it,
// the mapped reader must refuse it with IsCorrupt so the store's
// fallback engages.
func TestOpenMappedRejectsLegacy(t *testing.T) {
	ix := sealedIndex(corpus(40, 24))
	v2 := EncodeSegment(ix.Export())
	env, err := checkEnvelope(v2)
	if err != nil {
		t.Fatal(err)
	}
	var v1 []byte
	v1 = append(v1, segMagic[:]...)
	v1 = binary.LittleEndian.AppendUint32(v1, segLegacyVersion)
	v1 = append(v1, v2[segHeaderLen:env.bodyEnd]...) // body without directory
	bodyLen := uint64(len(v1) - segHeaderLen)
	crc := crc32.ChecksumIEEE(v1)
	v1 = binary.LittleEndian.AppendUint64(v1, bodyLen)
	v1 = binary.LittleEndian.AppendUint64(v1, uint64(ix.Len()))
	v1 = binary.LittleEndian.AppendUint32(v1, segLegacyVersion)
	v1 = binary.LittleEndian.AppendUint32(v1, crc)

	snap, err := DecodeSegment(v1)
	if err != nil {
		t.Fatalf("eager decoder rejects legacy file: %v", err)
	}
	legacy, err := mining.FromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	legacy.Prepare()
	indexQueriesEqual(t, legacy, ix)

	path := filepath.Join(t.TempDir(), "legacy.seg")
	if err := os.WriteFile(path, v1, 0o644); err != nil {
		t.Fatal(err)
	}
	if m, err := OpenMapped(path, nil); err == nil {
		m.Close()
		t.Fatal("mapped reader accepted a version-1 segment")
	} else if !IsCorrupt(err) {
		t.Fatalf("legacy rejection is not IsCorrupt: %v", err)
	}

	// The store-level loader transparently materializes it instead.
	st, err := Open(t.TempDir(), Options{MapSegments: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	lix, _, m, err := st.loadOrMap(path)
	if err != nil {
		t.Fatalf("loadOrMap on legacy file: %v", err)
	}
	if m != nil {
		t.Fatal("legacy file reported as mapped")
	}
	indexQueriesEqual(t, lix, ix)
}

// TestStoreMappedRecovery: a store opened with MapSegments serves its
// recovered lineage from mappings — same answers, stats reporting the
// mapped set — and a corrupted segment falls back to the materializing
// loader's verdict, then WAL recovery, never wrong bytes.
func TestStoreMappedRecovery(t *testing.T) {
	dir := t.TempDir()
	docs := corpus(120, 25)
	ix := sealedIndex(docs)

	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		if err := st.AppendWAL(d); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.WriteSegment(ix); err != nil {
		t.Fatal(err)
	}
	// No ResetWAL: the WAL still covers the same documents, so recovery
	// must dedup across the mapped segment.
	st.Close()

	st2, err := Open(dir, Options{MapSegments: true})
	if err != nil {
		t.Fatal(err)
	}
	rec := st2.Recovered()
	if rec.Index == nil || len(rec.WALDocs) != 0 {
		t.Fatalf("mapped recovery: index=%v wal=%d", rec.Index != nil, len(rec.WALDocs))
	}
	if _, ok := rec.Index.Backing().(*Mapped); !ok {
		t.Fatalf("recovered index backing is %T, want *Mapped", rec.Index.Backing())
	}
	indexQueriesEqual(t, rec.Index, ix)
	stats := st2.Stats()
	if stats.MappedSegments != 1 || stats.MappedBytes <= 0 {
		t.Fatalf("stats: %d mapped segments, %d bytes", stats.MappedSegments, stats.MappedBytes)
	}
	if stats.PostingsCache.Budget != DefaultPostingsBudget {
		t.Fatalf("postings cache budget %d", stats.PostingsCache.Budget)
	}
	if stats.PostingsCache.Hits == 0 || stats.PostingsCache.Bytes == 0 {
		t.Fatalf("query battery left no cache footprint: %+v", stats.PostingsCache)
	}
	st2.Close()

	// Corrupt the only segment: mapped open and materializing loader
	// both reject it, and recovery falls through to the WAL tail.
	seg := st2.Stats().SegmentPath
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 1
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	st3, err := Open(dir, Options{MapSegments: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	rec3 := st3.Recovered()
	if rec3.Index != nil || len(rec3.SkippedSegments) == 0 {
		t.Fatalf("damaged segment not skipped: index=%v skipped=%v", rec3.Index != nil, rec3.SkippedSegments)
	}
	if len(rec3.WALDocs) != len(docs) {
		t.Fatalf("WAL fallback recovered %d docs, want %d", len(rec3.WALDocs), len(docs))
	}
}

// TestStoreMapSegmentRemap drives the compaction handoff: append two
// segments, replace them with a merged one, remap the new generation,
// and require the mapping to answer exactly as the merged index.
func TestStoreMapSegmentRemap(t *testing.T) {
	dir := t.TempDir()
	docsA, docsB := corpus(60, 26), corpus(90, 27)
	for i := range docsB {
		docsB[i].ID = fmt.Sprintf("b-%05d", i) // disjoint IDs across segments
	}
	st, err := Open(dir, Options{MapSegments: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ixA, ixB := sealedIndex(docsA), sealedIndex(docsB)
	if _, err := st.AppendSegment(ixA); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AppendSegment(ixB); err != nil {
		t.Fatal(err)
	}
	merged := mining.MergeSegments(ixA, ixB)
	stats, err := st.ReplaceSegments([]uint64{1, 2}, merged)
	if err != nil {
		t.Fatal(err)
	}
	remapped, err := st.MapSegment(stats.SegmentGen)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := remapped.Backing().(*Mapped); !ok {
		t.Fatalf("remapped backing is %T", remapped.Backing())
	}
	indexQueriesEqual(t, remapped, merged)
	if got := st.Stats(); got.MappedSegments != 1 {
		t.Fatalf("stats after remap: %d mapped segments", got.MappedSegments)
	}
	// A dead generation cannot be remapped.
	if _, err := st.MapSegment(1); err == nil {
		t.Fatal("MapSegment accepted a superseded generation")
	}
}

// TestPostingsCacheBudget exercises eviction, the canonical-copy rule,
// and the hit/miss counters.
func TestPostingsCacheBudget(t *testing.T) {
	c := NewPostingsCache(3 * (8*100 + postEntryOverhead)) // room for 3 hundred-entry lists
	mk := func(n int) []int {
		posts := make([]int, n)
		for i := range posts {
			posts[i] = i
		}
		return posts
	}
	for i := 0; i < 5; i++ {
		c.put(postKey{seg: 1, off: uint32(i)}, mk(100))
	}
	st := c.StatsSnapshot()
	if st.Entries != 3 {
		t.Fatalf("entries after over-budget puts: %d, want 3", st.Entries)
	}
	if st.Bytes > st.Budget {
		t.Fatalf("bytes %d exceed budget %d", st.Bytes, st.Budget)
	}
	// Oldest two were evicted, newest three hit.
	for i := 0; i < 2; i++ {
		if _, ok := c.get(postKey{seg: 1, off: uint32(i)}); ok {
			t.Fatalf("entry %d survived eviction", i)
		}
	}
	for i := 2; i < 5; i++ {
		if _, ok := c.get(postKey{seg: 1, off: uint32(i)}); !ok {
			t.Fatalf("entry %d missing", i)
		}
	}
	st = c.StatsSnapshot()
	if st.Hits != 3 || st.Misses != 2 {
		t.Fatalf("hits/misses = %d/%d, want 3/2", st.Hits, st.Misses)
	}
	// Racing puts converge on the first copy.
	first := mk(10)
	if got := c.put(postKey{seg: 2, off: 0}, first); &got[0] != &first[0] {
		t.Fatal("first put did not return the caller's slice")
	}
	second := mk(10)
	if got := c.put(postKey{seg: 2, off: 0}, second); &got[0] != &first[0] {
		t.Fatal("second put did not converge on the cached copy")
	}
	// A list larger than the whole budget is served but not retained.
	huge := mk(10_000)
	if got := c.put(postKey{seg: 3, off: 0}, huge); &got[0] != &huge[0] {
		t.Fatal("over-budget put did not serve the decoded slice")
	}
	if _, ok := c.get(postKey{seg: 3, off: 0}); ok {
		t.Fatal("over-budget list was retained")
	}
}

// TestMappedHotQueryAllocs pins the steady-state promise: once the hot
// set is decoded, repeated counts over a mapped index stay on the
// cache path (hits, no new decoded bytes).
func TestMappedHotQueryAllocs(t *testing.T) {
	ix := sealedIndex(corpus(300, 28))
	path := filepath.Join(t.TempDir(), "seg.seg")
	writeSegFile(t, path, ix)
	cache := NewPostingsCache(0)
	m, err := OpenMapped(path, cache)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	mapped := mining.FromBacking(m)
	mapped.Prepare()

	dim := mining.AndDim(mining.ConceptDim("intent", "weak start"), mining.FieldDim("outcome", "reservation"))
	mapped.Count(dim) // warm: decodes + conjunction memo
	before := cache.StatsSnapshot()
	for i := 0; i < 50; i++ {
		mapped.Count(dim)
	}
	after := cache.StatsSnapshot()
	if after.Bytes != before.Bytes || after.Entries != before.Entries {
		t.Fatalf("hot queries grew the cache: %+v -> %+v", before, after)
	}
	if after.Misses != before.Misses {
		t.Fatalf("hot queries missed the cache: %+v -> %+v", before, after)
	}
}
