// Package store is the persistence subsystem of BIVoC: a versioned
// binary segment format for sealed mining indexes plus an append-only
// ingest write-ahead log, giving bivocd warm restarts (load the latest
// durable segment, replay the WAL tail) instead of re-paying the full
// O(corpus) pipeline rebuild on every launch.
//
// Layout of a data directory:
//
//	seg-<generation>.seg   immutable sealed-index segments (newest wins)
//	wal.log                append-only log of documents ingested since
//	                       the last segment was written
//	*.tmp                  in-flight atomic writes; orphans from crashes
//	                       are removed on Open
//
// Durability protocol: every ingested document is appended to the WAL
// (fsynced on a configurable cadence); when the ingest stream seals,
// the whole sealed index is written as a new segment — temp file,
// fsync, rename, directory fsync — and only then is the WAL reset. A
// crash at any point recovers to segment ∪ WAL-tail, deduplicated by
// document ID, so the worst case after a torn fsync window is a few
// re-ingested documents, never corruption and never silent loss of
// acknowledged-durable data.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// errCorrupt is wrapped by every decoder error so callers can
// distinguish "this file is damaged" from I/O errors.
var errCorrupt = errors.New("store: corrupt data")

// corruptf builds a decoder error wrapping errCorrupt.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errCorrupt, fmt.Sprintf(format, args...))
}

// IsCorrupt reports whether err marks damaged on-disk data (as opposed
// to an I/O failure reaching it).
func IsCorrupt(err error) bool { return errors.Is(err, errCorrupt) }

// writer accumulates the binary encoding: unsigned and zigzag varints,
// length-prefixed byte strings. All integers are varint — segment files
// for delta-encoded postings are dominated by small numbers.
type writer struct {
	buf []byte
	tmp [binary.MaxVarintLen64]byte
}

func (w *writer) uvarint(v uint64) {
	n := binary.PutUvarint(w.tmp[:], v)
	w.buf = append(w.buf, w.tmp[:n]...)
}

func (w *writer) varint(v int64) {
	n := binary.PutVarint(w.tmp[:], v)
	w.buf = append(w.buf, w.tmp[:n]...)
}

func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// u32 appends a fixed-width little-endian uint32 — the segment offset
// directory is fixed-width so a mapped reader can index it without
// decoding (see segment.go).
func (w *writer) u32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

// reader decodes the writer's encoding with strict bounds checking:
// every accessor returns an error instead of panicking, whatever the
// input bytes — the contract FuzzSegmentDecode enforces.
type reader struct {
	buf []byte
	off int
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, corruptf("truncated uvarint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		return 0, corruptf("truncated varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

// count reads a length/count prefix and sanity-bounds it: a count can
// never exceed the bytes remaining, so a bit-flipped length cannot make
// the decoder attempt a giant allocation.
func (r *reader) count(what string) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(r.buf)-r.off) {
		return 0, corruptf("%s count %d exceeds remaining %d bytes", what, v, len(r.buf)-r.off)
	}
	return int(v), nil
}

func (r *reader) str() (string, error) {
	n, err := r.count("string length")
	if err != nil {
		return "", err
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s, nil
}

func (r *reader) remaining() int { return len(r.buf) - r.off }

// intFromU converts a decoded uvarint into a non-negative int, guarding
// 32-bit overflow.
func intFromU(v uint64, what string) (int, error) {
	if v > uint64(math.MaxInt32) {
		return 0, corruptf("%s %d out of range", what, v)
	}
	return int(v), nil
}
