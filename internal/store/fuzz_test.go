package store

import (
	"bytes"
	"testing"

	"bivoc/internal/mining"
)

// FuzzSegmentDecode throws arbitrary bytes at the segment reader. The
// contract under fuzz: never panic, never hang, and — because the seed
// corpus contains real encoded segments whose mutations usually die at
// the CRC — any input that does decode must survive the full
// FromSnapshot validation or be rejected; nothing may load silently
// wrong. When a mutated input round-trips all the way to an index, we
// re-encode it and require the canonical bytes to decode again — the
// decoder and encoder must agree on every accepted file.
func FuzzSegmentDecode(f *testing.F) {
	// Seed corpus: real segments of several shapes and sizes, plus the
	// interesting almost-valid neighborhoods (truncations, bit flips).
	seeds := [][]byte{
		EncodeSegment(sealedIndex(nil).Export()),
		EncodeSegment(sealedIndex(corpus(1, 1)).Export()),
		EncodeSegment(sealedIndex(corpus(25, 2)).Export()),
		EncodeSegment(sealedIndex(corpus(120, 3)).Export()),
	}
	for _, s := range seeds {
		f.Add(s)
		f.Add(s[:len(s)*3/4])
		flipped := append([]byte(nil), s...)
		flipped[len(flipped)/3] ^= 0x10
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte("BVSG"))

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSegment(data)
		if err != nil {
			if !IsCorrupt(err) {
				t.Fatalf("decode error is not IsCorrupt: %v", err)
			}
			return
		}
		ix, err := mining.FromSnapshot(snap)
		if err != nil {
			// Structurally invalid but checksum-valid: only reachable by
			// hand-crafting, still must be a clean rejection.
			return
		}
		// Accepted input: canonical re-encoding must round-trip.
		re := EncodeSegment(ix.Export())
		snap2, err := DecodeSegment(re)
		if err != nil {
			t.Fatalf("re-encoding an accepted segment does not decode: %v", err)
		}
		if len(snap2.Docs) != len(snap.Docs) {
			t.Fatalf("re-encode changed doc count: %d != %d", len(snap2.Docs), len(snap.Docs))
		}
		if !bytes.Equal(EncodeSegment(ix.Export()), re) {
			t.Fatal("canonical encoding is not deterministic")
		}
	})
}

// FuzzWALReplay: arbitrary bytes through the WAL replayer — torn tails
// are data, not panics.
func FuzzWALReplay(f *testing.F) {
	var good []byte
	good = append(good, walMagic[:]...)
	good = append(good, 1, 0, 0, 0)
	for _, d := range corpus(8, 4) {
		good = append(good, appendWALRecord(nil, d)...)
	}
	f.Add(good)
	f.Add(good[:len(good)-2])
	f.Add(good[:walHeaderLen])
	f.Add([]byte{})
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x01
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		docs, goodLen, dropped, err := replayWALData(data)
		if err != nil {
			return
		}
		if goodLen+dropped != int64(len(data)) && len(data) >= walHeaderLen {
			t.Fatalf("accounting: good %d + dropped %d != %d", goodLen, dropped, len(data))
		}
		// Re-replaying the intact prefix must reproduce the same docs.
		if goodLen >= walHeaderLen {
			docs2, _, dropped2, err := replayWALData(data[:goodLen])
			if err != nil || dropped2 != 0 || len(docs2) != len(docs) {
				t.Fatalf("intact prefix does not replay cleanly: err=%v dropped=%d docs=%d/%d",
					err, dropped2, len(docs2), len(docs))
			}
		}
	})
}
