package store

import (
	"bytes"
	"reflect"
	"testing"

	"bivoc/internal/mining"
)

// FuzzSegmentDecode throws arbitrary bytes at the segment reader. The
// contract under fuzz: never panic, never hang, and — because the seed
// corpus contains real encoded segments whose mutations usually die at
// the CRC — any input that does decode must survive the full
// FromSnapshot validation or be rejected; nothing may load silently
// wrong. When a mutated input round-trips all the way to an index, we
// re-encode it and require the canonical bytes to decode again — the
// decoder and encoder must agree on every accepted file.
func FuzzSegmentDecode(f *testing.F) {
	// Seed corpus: real segments of several shapes and sizes, plus the
	// interesting almost-valid neighborhoods (truncations, bit flips).
	seeds := [][]byte{
		EncodeSegment(sealedIndex(nil).Export()),
		EncodeSegment(sealedIndex(corpus(1, 1)).Export()),
		EncodeSegment(sealedIndex(corpus(25, 2)).Export()),
		EncodeSegment(sealedIndex(corpus(120, 3)).Export()),
	}
	for _, s := range seeds {
		f.Add(s)
		f.Add(s[:len(s)*3/4])
		flipped := append([]byte(nil), s...)
		flipped[len(flipped)/3] ^= 0x10
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte("BVSG"))

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSegment(data)
		if err != nil {
			if !IsCorrupt(err) {
				t.Fatalf("decode error is not IsCorrupt: %v", err)
			}
			fuzzMapped(t, data, nil)
			return
		}
		ix, err := mining.FromSnapshot(snap)
		if err != nil {
			// Structurally invalid but checksum-valid: only reachable by
			// hand-crafting, still must be a clean rejection.
			fuzzMapped(t, data, nil)
			return
		}
		fuzzMapped(t, data, snap)
		// Accepted input: canonical re-encoding must round-trip.
		re := EncodeSegment(ix.Export())
		snap2, err := DecodeSegment(re)
		if err != nil {
			t.Fatalf("re-encoding an accepted segment does not decode: %v", err)
		}
		if len(snap2.Docs) != len(snap.Docs) {
			t.Fatalf("re-encode changed doc count: %d != %d", len(snap2.Docs), len(snap.Docs))
		}
		if !bytes.Equal(EncodeSegment(ix.Export()), re) {
			t.Fatal("canonical encoding is not deterministic")
		}
	})
}

// fuzzMapped drives the same bytes through the mapped reader's open
// path and, when it opens, through every lazy accessor: the mapped
// reader must never panic on any input, and on a version-2 file the
// eager decoder accepted it must serve exactly the decoded snapshot
// (that agreement is what lets the store fall back between the two
// loaders without a behavior change). When the eager decoder rejected
// the input, lazy reads may return empty results with a sticky error —
// but must stay in bounds.
func fuzzMapped(t *testing.T, data []byte, snap *mining.IndexSnapshot) {
	m, err := newMapped("fuzz", data, func([]byte) error { return nil }, NewPostingsCache(1<<20))
	if err != nil {
		if !IsCorrupt(err) {
			t.Fatalf("mapped open error is not IsCorrupt: %v", err)
		}
		if snap != nil && len(data) >= segHeaderLen && data[4] == SegmentVersion {
			t.Fatalf("eager decoder accepted a version-%d file the mapped reader rejects: %v", SegmentVersion, err)
		}
		return
	}
	// Exercise every accessor; decode twice so the second pass crosses
	// the cache.
	for range [2]int{} {
		m.EachConcept(func(cat, canon string, df int) {
			if got := len(m.ConceptPostings(cat, canon)); snap != nil && got != df && m.Err() == nil {
				t.Fatalf("concept %q/%q: %d postings, directory df %d", cat, canon, got, df)
			}
		})
		m.EachCategory(func(cat string, df int) { m.CategoryPostings(cat) })
		m.EachField(func(f, v string, df int) { m.FieldPostings(f, v) })
		for i := 0; i < m.DocCount(); i++ {
			m.Doc(i)
			m.DocID(i)
			m.DocTime(i)
		}
	}
	if snap == nil {
		return
	}
	// The eager decoder accepted this file: the mapped view must agree
	// on every byte it serves.
	if m.DocCount() != len(snap.Docs) {
		t.Fatalf("mapped DocCount %d, snapshot has %d docs", m.DocCount(), len(snap.Docs))
	}
	for i, want := range snap.Docs {
		if got := m.Doc(i); !reflect.DeepEqual(got, want) {
			t.Fatalf("mapped Doc(%d) = %+v, want %+v", i, got, want)
		}
		if m.DocID(i) != want.ID || m.DocTime(i) != want.Time {
			t.Fatalf("mapped DocID/DocTime(%d) diverge", i)
		}
	}
	for _, e := range snap.Concepts {
		if got := m.ConceptPostings(e.Key[0], e.Key[1]); !postingsEqual(got, e.Posts) {
			t.Fatalf("mapped concept %q/%q postings diverge", e.Key[0], e.Key[1])
		}
	}
	for _, e := range snap.Categories {
		if got := m.CategoryPostings(e.Category); !postingsEqual(got, e.Posts) {
			t.Fatalf("mapped category %q postings diverge", e.Category)
		}
	}
	for _, e := range snap.Fields {
		if got := m.FieldPostings(e.Key[0], e.Key[1]); !postingsEqual(got, e.Posts) {
			t.Fatalf("mapped field %q=%q postings diverge", e.Key[0], e.Key[1])
		}
	}
	if err := m.Err(); err != nil {
		t.Fatalf("mapped reads over an accepted file left a sticky error: %v", err)
	}
}

// postingsEqual treats nil and empty as equal (absent keys are nil on
// both readers, but a decoded empty list may be empty-non-nil).
func postingsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FuzzWALReplay: arbitrary bytes through the WAL replayer — torn tails
// are data, not panics.
func FuzzWALReplay(f *testing.F) {
	var good []byte
	good = append(good, walMagic[:]...)
	good = append(good, 1, 0, 0, 0)
	for _, d := range corpus(8, 4) {
		good = append(good, appendWALRecord(nil, d)...)
	}
	f.Add(good)
	f.Add(good[:len(good)-2])
	f.Add(good[:walHeaderLen])
	f.Add([]byte{})
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x01
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		docs, goodLen, dropped, err := replayWALData(data)
		if err != nil {
			return
		}
		if goodLen+dropped != int64(len(data)) && len(data) >= walHeaderLen {
			t.Fatalf("accounting: good %d + dropped %d != %d", goodLen, dropped, len(data))
		}
		// Re-replaying the intact prefix must reproduce the same docs.
		if goodLen >= walHeaderLen {
			docs2, _, dropped2, err := replayWALData(data[:goodLen])
			if err != nil || dropped2 != 0 || len(docs2) != len(docs) {
				t.Fatalf("intact prefix does not replay cleanly: err=%v dropped=%d docs=%d/%d",
					err, dropped2, len(docs2), len(docs))
			}
		}
	})
}
