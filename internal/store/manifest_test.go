package store

import (
	"os"
	"path/filepath"
	"testing"

	"bivoc/internal/mining"
)

// segmentBatches splits a corpus into sealed per-batch indexes, the
// shape the segmented serving layer appends.
func segmentBatches(docs []mining.Document, size int) []*mining.Index {
	var out []*mining.Index
	for lo := 0; lo < len(docs); lo += size {
		hi := lo + size
		if hi > len(docs) {
			hi = len(docs)
		}
		out = append(out, sealedIndex(docs[lo:hi]))
	}
	return out
}

// TestAppendSegmentLineage pins the multi-segment lineage: appends
// accumulate, stats report per-segment and total state, and a reopen
// recovers every live segment via the manifest.
func TestAppendSegmentLineage(t *testing.T) {
	dir := t.TempDir()
	docs := corpus(90, 7)
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ix := range segmentBatches(docs, 30) {
		if _, err := st.AppendSegment(ix); err != nil {
			t.Fatal(err)
		}
	}
	stats := st.Stats()
	if len(stats.Segments) != 3 || stats.SegmentGen != 3 || stats.SegmentDocs != 90 {
		t.Fatalf("after 3 appends: %d segments, gen %d, %d docs; want 3/3/90", len(stats.Segments), stats.SegmentGen, stats.SegmentDocs)
	}
	for i, seg := range stats.Segments {
		if seg.Gen != uint64(i+1) || seg.Docs != 30 || seg.Bytes <= 0 {
			t.Errorf("segment %d = %+v, want gen %d with 30 docs", i, seg, i+1)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rec := st2.Recovered()
	if len(rec.Segments) != 3 || rec.SegmentGen != 3 || rec.SegmentDocs != 90 {
		t.Fatalf("recovered %d segments, gen %d, %d docs; want 3/3/90", len(rec.Segments), rec.SegmentGen, rec.SegmentDocs)
	}
	if rec.Index != nil {
		t.Error("Recovery.Index set for a multi-segment lineage, want nil (use Segments)")
	}
	if got := rec.Docs(); len(got) != 90 {
		t.Fatalf("recovered %d docs, want 90", len(got))
	}
	// Fan-in over the recovered segments must match the full corpus.
	set := mining.NewSegmentSet(func() []*mining.Index {
		var ixs []*mining.Index
		for _, seg := range rec.Segments {
			ixs = append(ixs, seg.Index)
		}
		return ixs
	}()...)
	indexQueriesEqual(t, set, sealedIndex(docs))
}

// TestReplaceSegmentsCompaction pins the compaction path: the merged
// segment supersedes its inputs in the manifest, the superseded files
// are deleted, and a reopen sees the compacted lineage.
func TestReplaceSegmentsCompaction(t *testing.T) {
	dir := t.TempDir()
	docs := corpus(80, 11)
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ix := range segmentBatches(docs, 20) {
		if _, err := st.AppendSegment(ix); err != nil {
			t.Fatal(err)
		}
	}
	// Compact generations 1-3 into one; generation 4 stays.
	merged := mining.MergeSegments(
		sealedIndex(docs[:20]), sealedIndex(docs[20:40]), sealedIndex(docs[40:60]))
	stats, err := st.ReplaceSegments([]uint64{1, 2, 3}, merged)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Segments) != 2 || stats.SegmentGen != 5 || stats.SegmentDocs != 80 {
		t.Fatalf("after compaction: %d segments, gen %d, %d docs; want 2/5/80", len(stats.Segments), stats.SegmentGen, stats.SegmentDocs)
	}
	if stats.Segments[0].Gen != 4 || stats.Segments[1].Gen != 5 {
		t.Fatalf("post-compaction lineage %+v, want gens [4 5]", stats.Segments)
	}
	for _, g := range []uint64{1, 2, 3} {
		if _, err := os.Stat(st.segmentPath(g)); !os.IsNotExist(err) {
			t.Errorf("superseded segment gen %d still on disk (err=%v)", g, err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rec := st2.Recovered()
	if len(rec.Segments) != 2 || rec.SegmentDocs != 80 {
		t.Fatalf("recovered %d segments with %d docs, want 2/80", len(rec.Segments), rec.SegmentDocs)
	}
	if len(rec.SkippedSegments) != 0 {
		t.Errorf("clean compacted lineage reports skipped segments: %v", rec.SkippedSegments)
	}
}

// TestManifestDamagedSegmentSkipped pins degraded recovery: when one
// live segment of a multi-segment lineage is damaged, the rest still
// load and the loss is reported.
func TestManifestDamagedSegmentSkipped(t *testing.T) {
	dir := t.TempDir()
	docs := corpus(60, 3)
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ix := range segmentBatches(docs, 20) {
		if _, err := st.AppendSegment(ix); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip bytes inside segment 2's payload.
	path := filepath.Join(dir, "seg-0000000000000002.seg")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rec := st2.Recovered()
	if len(rec.Segments) != 2 || rec.SegmentDocs != 40 {
		t.Fatalf("recovered %d segments with %d docs, want the 2 intact ones with 40", len(rec.Segments), rec.SegmentDocs)
	}
	if len(rec.SkippedSegments) != 1 {
		t.Fatalf("skipped = %v, want exactly the damaged segment", rec.SkippedSegments)
	}
	// New generations must number past the damaged file.
	if _, err := st2.AppendSegment(sealedIndex(docs[20:40])); err != nil {
		t.Fatal(err)
	}
	if gen := st2.Stats().SegmentGen; gen != 4 {
		t.Errorf("next generation = %d, want 4 (past the damaged gen 2 and live gen 3)", gen)
	}
}

// TestManifestMissingFallsBack pins pre-manifest compatibility: a
// directory holding only segment files (no MANIFEST) recovers the
// newest readable one.
func TestManifestMissingFallsBack(t *testing.T) {
	dir := t.TempDir()
	docs := corpus(50, 5)
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.WriteSegment(sealedIndex(docs)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "MANIFEST")); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rec := st2.Recovered()
	if rec.Index == nil || rec.SegmentGen != 1 || rec.SegmentDocs != 50 {
		t.Fatalf("manifest-less recovery = gen %d, %d docs (index nil=%v); want gen 1 with 50", rec.SegmentGen, rec.SegmentDocs, rec.Index == nil)
	}
}
