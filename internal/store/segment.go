package store

import (
	"encoding/binary"
	"hash/crc32"
	"sort"

	"bivoc/internal/annotate"
	"bivoc/internal/mining"
)

// Segment format, version 1. A segment is the complete serialization of
// one sealed mining.Index — documents plus all three inverted-list
// families — laid out so the natural shape of the in-memory index (PR
// 5's born-sorted postings) becomes the natural shape on disk:
//
//	header   magic "BVSG" | version uint32 LE
//	body     string table   uvarint count, then len-prefixed strings
//	                        (sorted unique; every doc ID, concept
//	                        category/canonical, field name/value is a
//	                        uvarint reference into it)
//	         documents      uvarint count, then per document:
//	                        id ref · time varint · concepts (count,
//	                        then cat ref · canon ref · start · end) ·
//	                        fields (count, key-sorted, then key ref ·
//	                        value ref)
//	         postings ×3    concept {cat, canon} / category {cat} /
//	                        field {name, value} lists, key-sorted; each
//	                        list is a uvarint length followed by varint
//	                        deltas from the previous position (first
//	                        delta from -1), so sorted lists of nearby
//	                        document positions encode in ~1 byte/entry
//	footer   fixed 24 bytes: body length uint64 LE · document count
//	         uint64 LE · version uint32 LE · CRC-32 (IEEE, over header
//	         and body) uint32 LE
//
// The footer is written last and read first: a reader validates magic,
// version, length, and checksum before decoding a single body byte, so
// truncated, bit-flipped, or foreign files are rejected up front.
// DecodeSegment additionally bounds-checks every count and reference,
// and mining.FromSnapshot re-validates the postings contract — a
// segment either loads into an index byte-identical to the one written,
// or it errors; it never panics and never silently loads wrong data.

var segMagic = [4]byte{'B', 'V', 'S', 'G'}

const (
	// SegmentVersion is the current on-disk format version. Readers
	// reject other versions rather than guessing at compatibility.
	SegmentVersion = 1

	segHeaderLen = 8  // magic + version
	segFooterLen = 24 // bodyLen + docCount + version + crc32
)

// EncodeSegment serializes an index snapshot into segment bytes.
// Encoding is deterministic: the same snapshot always yields the same
// bytes (the string table is sorted, snapshot entries are key-sorted by
// mining.Export, and document fields are emitted key-sorted).
func EncodeSegment(snap *mining.IndexSnapshot) []byte {
	strs, ref := buildStringTable(snap)

	w := &writer{buf: make([]byte, 0, 1<<16)}
	w.buf = append(w.buf, segMagic[:]...)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, SegmentVersion)

	w.uvarint(uint64(len(strs)))
	for _, s := range strs {
		w.str(s)
	}

	w.uvarint(uint64(len(snap.Docs)))
	fieldKeys := make([]string, 0, 8)
	for _, d := range snap.Docs {
		w.uvarint(ref[d.ID])
		w.varint(int64(d.Time))
		w.uvarint(uint64(len(d.Concepts)))
		for _, c := range d.Concepts {
			w.uvarint(ref[c.Category])
			w.uvarint(ref[c.Canonical])
			w.varint(int64(c.Start))
			w.varint(int64(c.End))
		}
		fieldKeys = fieldKeys[:0]
		for k := range d.Fields {
			fieldKeys = append(fieldKeys, k)
		}
		sort.Strings(fieldKeys)
		w.uvarint(uint64(len(fieldKeys)))
		for _, k := range fieldKeys {
			w.uvarint(ref[k])
			w.uvarint(ref[d.Fields[k]])
		}
	}

	w.uvarint(uint64(len(snap.Concepts)))
	for _, e := range snap.Concepts {
		w.uvarint(ref[e.Key[0]])
		w.uvarint(ref[e.Key[1]])
		writePostings(w, e.Posts)
	}
	w.uvarint(uint64(len(snap.Categories)))
	for _, e := range snap.Categories {
		w.uvarint(ref[e.Category])
		writePostings(w, e.Posts)
	}
	w.uvarint(uint64(len(snap.Fields)))
	for _, e := range snap.Fields {
		w.uvarint(ref[e.Key[0]])
		w.uvarint(ref[e.Key[1]])
		writePostings(w, e.Posts)
	}

	bodyLen := uint64(len(w.buf) - segHeaderLen)
	crc := crc32.ChecksumIEEE(w.buf)
	w.buf = binary.LittleEndian.AppendUint64(w.buf, bodyLen)
	w.buf = binary.LittleEndian.AppendUint64(w.buf, uint64(len(snap.Docs)))
	w.buf = binary.LittleEndian.AppendUint32(w.buf, SegmentVersion)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc)
	return w.buf
}

// buildStringTable collects every string a snapshot references, sorted
// unique, plus the string → index map used while encoding.
func buildStringTable(snap *mining.IndexSnapshot) ([]string, map[string]uint64) {
	set := map[string]struct{}{}
	add := func(s string) { set[s] = struct{}{} }
	for _, d := range snap.Docs {
		add(d.ID)
		for _, c := range d.Concepts {
			add(c.Category)
			add(c.Canonical)
		}
		for k, v := range d.Fields {
			add(k)
			add(v)
		}
	}
	for _, e := range snap.Concepts {
		add(e.Key[0])
		add(e.Key[1])
	}
	for _, e := range snap.Categories {
		add(e.Category)
	}
	for _, e := range snap.Fields {
		add(e.Key[0])
		add(e.Key[1])
	}
	strs := make([]string, 0, len(set))
	for s := range set {
		strs = append(strs, s)
	}
	sort.Strings(strs)
	ref := make(map[string]uint64, len(strs))
	for i, s := range strs {
		ref[s] = uint64(i)
	}
	return strs, ref
}

// writePostings emits one sorted postings list as varint deltas.
func writePostings(w *writer, posts []int) {
	w.uvarint(uint64(len(posts)))
	prev := -1
	for _, p := range posts {
		w.uvarint(uint64(p - prev))
		prev = p
	}
}

// DecodeSegment parses segment bytes back into an index snapshot,
// validating the envelope (magic, version, length, CRC) before the body
// and bounds-checking every reference inside it. Errors satisfy
// IsCorrupt; the function never panics on any input.
func DecodeSegment(data []byte) (*mining.IndexSnapshot, error) {
	if len(data) < segHeaderLen+segFooterLen {
		return nil, corruptf("segment too short (%d bytes)", len(data))
	}
	if [4]byte(data[:4]) != segMagic {
		return nil, corruptf("bad segment magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != SegmentVersion {
		return nil, corruptf("unsupported segment version %d (want %d)", v, SegmentVersion)
	}
	foot := data[len(data)-segFooterLen:]
	bodyLen := binary.LittleEndian.Uint64(foot[0:8])
	docCount := binary.LittleEndian.Uint64(foot[8:16])
	if v := binary.LittleEndian.Uint32(foot[16:20]); v != SegmentVersion {
		return nil, corruptf("footer version %d disagrees with header", v)
	}
	if bodyLen != uint64(len(data)-segHeaderLen-segFooterLen) {
		return nil, corruptf("footer body length %d, file has %d body bytes",
			bodyLen, len(data)-segHeaderLen-segFooterLen)
	}
	wantCRC := binary.LittleEndian.Uint32(foot[20:24])
	if got := crc32.ChecksumIEEE(data[:len(data)-segFooterLen]); got != wantCRC {
		return nil, corruptf("checksum mismatch: file %08x, computed %08x", wantCRC, got)
	}

	r := &reader{buf: data[:len(data)-segFooterLen], off: segHeaderLen}

	nStrs, err := r.count("string table")
	if err != nil {
		return nil, err
	}
	strs := make([]string, nStrs)
	for i := range strs {
		if strs[i], err = r.str(); err != nil {
			return nil, err
		}
	}
	str := func(what string) (string, error) {
		idx, err := r.uvarint()
		if err != nil {
			return "", err
		}
		if idx >= uint64(len(strs)) {
			return "", corruptf("%s string ref %d out of table (size %d)", what, idx, len(strs))
		}
		return strs[idx], nil
	}

	nDocs, err := r.count("document")
	if err != nil {
		return nil, err
	}
	if uint64(nDocs) != docCount {
		return nil, corruptf("body has %d documents, footer says %d", nDocs, docCount)
	}
	snap := &mining.IndexSnapshot{Docs: make([]mining.Document, nDocs)}
	for i := range snap.Docs {
		d := &snap.Docs[i]
		if d.ID, err = str("doc id"); err != nil {
			return nil, err
		}
		tm, err := r.varint()
		if err != nil {
			return nil, err
		}
		d.Time = int(tm)
		nc, err := r.count("concept")
		if err != nil {
			return nil, err
		}
		if nc > 0 {
			d.Concepts = make([]annotate.Concept, nc)
			for j := range d.Concepts {
				c := &d.Concepts[j]
				if c.Category, err = str("concept category"); err != nil {
					return nil, err
				}
				if c.Canonical, err = str("concept canonical"); err != nil {
					return nil, err
				}
				start, err := r.varint()
				if err != nil {
					return nil, err
				}
				end, err := r.varint()
				if err != nil {
					return nil, err
				}
				c.Start, c.End = int(start), int(end)
			}
		}
		nf, err := r.count("field")
		if err != nil {
			return nil, err
		}
		if nf > 0 {
			d.Fields = make(map[string]string, nf)
			for j := 0; j < nf; j++ {
				k, err := str("field name")
				if err != nil {
					return nil, err
				}
				v, err := str("field value")
				if err != nil {
					return nil, err
				}
				if _, dup := d.Fields[k]; dup {
					return nil, corruptf("document %q repeats field %q", d.ID, k)
				}
				d.Fields[k] = v
			}
		}
	}

	nConc, err := r.count("concept postings")
	if err != nil {
		return nil, err
	}
	snap.Concepts = make([]mining.KeyedPostings, nConc)
	for i := range snap.Concepts {
		e := &snap.Concepts[i]
		if e.Key[0], err = str("postings category"); err != nil {
			return nil, err
		}
		if e.Key[1], err = str("postings canonical"); err != nil {
			return nil, err
		}
		if e.Posts, err = readPostings(r, nDocs); err != nil {
			return nil, err
		}
	}
	nCat, err := r.count("category postings")
	if err != nil {
		return nil, err
	}
	snap.Categories = make([]mining.CatPostings, nCat)
	for i := range snap.Categories {
		e := &snap.Categories[i]
		if e.Category, err = str("postings category"); err != nil {
			return nil, err
		}
		if e.Posts, err = readPostings(r, nDocs); err != nil {
			return nil, err
		}
	}
	nField, err := r.count("field postings")
	if err != nil {
		return nil, err
	}
	snap.Fields = make([]mining.KeyedPostings, nField)
	for i := range snap.Fields {
		e := &snap.Fields[i]
		if e.Key[0], err = str("postings field"); err != nil {
			return nil, err
		}
		if e.Key[1], err = str("postings value"); err != nil {
			return nil, err
		}
		if e.Posts, err = readPostings(r, nDocs); err != nil {
			return nil, err
		}
	}
	if r.remaining() != 0 {
		return nil, corruptf("%d trailing bytes after segment body", r.remaining())
	}
	return snap, nil
}

// readPostings decodes one delta-encoded list, enforcing strictly
// increasing positions inside [0, nDocs).
func readPostings(r *reader, nDocs int) ([]int, error) {
	n, err := r.count("postings")
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	posts := make([]int, n)
	prev := -1
	for i := range posts {
		dv, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		delta, err := intFromU(dv, "postings delta")
		if err != nil {
			return nil, err
		}
		if delta == 0 {
			return nil, corruptf("zero postings delta (duplicate position %d)", prev)
		}
		p := prev + delta
		if p >= nDocs {
			return nil, corruptf("postings position %d beyond %d documents", p, nDocs)
		}
		posts[i] = p
		prev = p
	}
	return posts, nil
}
